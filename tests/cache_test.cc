// Tests for the two-level compilation cache (src/cache/): sharded-LRU
// semantics, fingerprint keys, failure caching, concurrency, and the
// end-to-end guarantee that pipeline outputs are byte-identical with the
// cache on, off, and at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cache/compilation_cache.h"
#include "cache/fingerprint.h"
#include "cache/sharded_lru.h"
#include "core/span.h"
#include "engine/engine.h"
#include "bandit/personalizer.h"
#include "core/pipeline.h"
#include "core/recommend.h"
#include "experiments/experiments.h"
#include "sis/sis.h"
#include "workload/workload.h"

namespace qo {
namespace {

// ---------------------------------------------------------------------------
// ShardedLruCache semantics.
// ---------------------------------------------------------------------------

struct IntHasher {
  size_t operator()(int k) const { return static_cast<size_t>(k); }
};

using IntCache = cache::ShardedLruCache<int, int, IntHasher>;

TEST(ShardedLruTest, HitMissCounters) {
  IntCache c(/*capacity=*/8, /*num_shards=*/1);
  EXPECT_FALSE(c.Get(1).has_value());
  c.Insert(1, 100);
  auto hit = c.Get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 100);
  telemetry::CacheCounters counters = c.Counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(counters.entries, 1u);
  EXPECT_EQ(counters.capacity, 8u);
  EXPECT_DOUBLE_EQ(counters.hit_rate(), 0.5);
}

TEST(ShardedLruTest, EvictsLeastRecentlyUsedInOrder) {
  IntCache c(/*capacity=*/3, /*num_shards=*/1);
  c.Insert(1, 10);
  c.Insert(2, 20);
  c.Insert(3, 30);
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_TRUE(c.Get(1).has_value());
  c.Insert(4, 40);  // evicts 2
  EXPECT_FALSE(c.Get(2).has_value());
  // Recency is now 4 > 1 > 3: the next eviction takes 3.
  c.Insert(5, 50);
  EXPECT_FALSE(c.Get(3).has_value());
  EXPECT_TRUE(c.Get(1).has_value());
  EXPECT_TRUE(c.Get(4).has_value());
  EXPECT_TRUE(c.Get(5).has_value());
  EXPECT_EQ(c.Counters().evictions, 2u);
}

TEST(ShardedLruTest, CapacityBoundHoldsAcrossShards) {
  const size_t kCapacity = 64;
  cache::ShardedLruCache<int, int, IntHasher> c(kCapacity, /*num_shards=*/7);
  for (int i = 0; i < 10000; ++i) c.Insert(i, i);
  // Per-shard slices round up, so allow one extra entry per shard.
  EXPECT_LE(c.size(), kCapacity + c.num_shards());
  EXPECT_GE(c.Counters().evictions, 10000u - kCapacity - c.num_shards());
}

TEST(ShardedLruTest, InsertRaceKeepsFirstValue) {
  IntCache c(/*capacity=*/4, /*num_shards=*/1);
  EXPECT_EQ(c.Insert(7, 70), 70);
  // A second writer loses and receives the resident value.
  EXPECT_EQ(c.Insert(7, 71), 70);
  EXPECT_EQ(*c.Get(7), 70);
}

TEST(ShardedLruTest, GetOrComputeOnlyComputesOnMiss) {
  IntCache c(/*capacity=*/4, /*num_shards=*/2);
  int computed = 0;
  auto compute = [&] {
    ++computed;
    return 42;
  };
  EXPECT_EQ(c.GetOrCompute(9, compute), 42);
  EXPECT_EQ(c.GetOrCompute(9, compute), 42);
  EXPECT_EQ(computed, 1);
}

TEST(ShardedLruTest, ConcurrentMixedAccessIsConsistent) {
  cache::ShardedLruCache<int, int, IntHasher> c(/*capacity=*/128,
                                                /*num_shards=*/8);
  std::atomic<bool> wrong{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c, &wrong, t] {
      for (int i = 0; i < 2000; ++i) {
        int key = (i * 31 + t) % 512;
        int got = c.GetOrCompute(key, [key] { return key * 3; });
        if (got != key * 3) wrong = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  // Whatever the interleaving, a key can only ever map to its own value.
  EXPECT_FALSE(wrong);
  telemetry::CacheCounters counters = c.Counters();
  EXPECT_EQ(counters.lookups(), 8u * 2000u);
}

// ---------------------------------------------------------------------------
// Fingerprints.
// ---------------------------------------------------------------------------

TEST(FingerprintTest, CatalogFingerprintIsOrderIndependentAndSensitive) {
  scope::TableStats a;
  a.true_rows = 1e6;
  a.est_rows = 5e5;
  a.columns["k"] = {100.0, 90.0};
  scope::TableStats b;
  b.true_rows = 2e6;

  scope::Catalog ab, ba;
  ab.RegisterTable("/data/a", a);
  ab.RegisterTable("/data/b", b);
  ba.RegisterTable("/data/b", b);
  ba.RegisterTable("/data/a", a);
  EXPECT_EQ(ab.StatsFingerprint(), ba.StatsFingerprint());

  // Any stats drift must change the fingerprint (invalidation-by-miss).
  scope::Catalog drifted;
  scope::TableStats a2 = a;
  a2.est_rows = 5.1e5;
  drifted.RegisterTable("/data/a", a2);
  drifted.RegisterTable("/data/b", b);
  EXPECT_NE(ab.StatsFingerprint(), drifted.StatsFingerprint());

  scope::Catalog extra_col = ab;
  scope::TableStats a3 = a;
  a3.columns["v"] = {50.0, 50.0};
  extra_col.RegisterTable("/data/a", a3);
  EXPECT_NE(ab.StatsFingerprint(), extra_col.StatsFingerprint());
}

TEST(FingerprintTest, OptionsFingerprintSeparatesEngines) {
  opt::OptimizerOptions defaults;
  opt::OptimizerOptions tweaked;
  tweaked.broadcast_threshold_bytes *= 2.0;
  EXPECT_NE(cache::OptimizerOptionsFingerprint(defaults),
            cache::OptimizerOptionsFingerprint(tweaked));
  EXPECT_EQ(cache::OptimizerOptionsFingerprint(defaults),
            cache::OptimizerOptionsFingerprint(opt::OptimizerOptions{}));
}

/// Saves the QO_COMPILE_CACHE* environment on entry and restores it on exit,
/// so this test cannot leak its values into (or strip the CI matrix leg's
/// QO_COMPILE_CACHE=0 from) later tests in the binary.
class EnvGuard {
 public:
  EnvGuard() {
    for (const char* name : kNames) {
      const char* v = getenv(name);
      saved_.emplace_back(name, v == nullptr ? std::string()
                                             : std::string(v));
      if (v == nullptr) saved_.back().second = kUnset;
    }
  }
  ~EnvGuard() {
    for (const auto& [name, value] : saved_) {
      if (value == kUnset) {
        unsetenv(name);
      } else {
        setenv(name, value.c_str(), 1);
      }
    }
  }

 private:
  static constexpr const char* kUnset = "\x01unset";
  static constexpr const char* kNames[] = {"QO_COMPILE_CACHE",
                                           "QO_COMPILE_CACHE_CAPACITY",
                                           "QO_COMPILE_CACHE_SHARDS"};
  std::vector<std::pair<const char*, std::string>> saved_;
};

TEST(FingerprintTest, EnvKnobsParseAndDegrade) {
  EnvGuard guard;
  setenv("QO_COMPILE_CACHE", "0", 1);
  setenv("QO_COMPILE_CACHE_CAPACITY", "128", 1);
  setenv("QO_COMPILE_CACHE_SHARDS", "4", 1);
  cache::CompileCacheOptions off = cache::CompileCacheOptions::FromEnv();
  EXPECT_FALSE(off.enabled);
  EXPECT_EQ(off.compilation_capacity, 128u);
  EXPECT_EQ(off.front_end_capacity, 32u);
  EXPECT_EQ(off.num_shards, 4);

  setenv("QO_COMPILE_CACHE", "1", 1);
  setenv("QO_COMPILE_CACHE_CAPACITY", "not-a-number", 1);
  cache::CompileCacheOptions on = cache::CompileCacheOptions::FromEnv();
  EXPECT_TRUE(on.enabled);
  EXPECT_EQ(on.compilation_capacity,
            cache::CompileCacheOptions{}.compilation_capacity);
}

// ---------------------------------------------------------------------------
// Engine-level semantics.
// ---------------------------------------------------------------------------

std::vector<workload::JobInstance> Jobs(int templates = 12, int jobs = 24) {
  workload::WorkloadDriver driver(
      {.num_templates = templates, .jobs_per_day = jobs, .seed = 404});
  return driver.DayJobs(0);
}

engine::ScopeEngine CachedEngine() {
  cache::CompileCacheOptions options;
  options.enabled = true;
  return engine::ScopeEngine({}, {}, options);
}

engine::ScopeEngine UncachedEngine() {
  cache::CompileCacheOptions options;
  options.enabled = false;
  return engine::ScopeEngine({}, {}, options);
}

/// Full-fidelity serialization of a compilation for byte-identity checks.
std::string Serialize(const opt::CompilationOutput& out) {
  char cost[64];
  std::snprintf(cost, sizeof(cost), "%.17g", out.est_cost);
  return out.plan.ToString() + "|" + cost + "|" + out.signature.ToString();
}

TEST(CompilationCacheTest, CachedEqualsUncachedAcrossConfigs) {
  engine::ScopeEngine cached = CachedEngine();
  engine::ScopeEngine uncached = UncachedEngine();
  std::vector<opt::RuleConfig> configs = {
      opt::RuleConfig::Default(),
      opt::RuleConfig::DefaultWithFlip(opt::rules::kEagerAggregationLeft),
      opt::RuleConfig::DefaultWithFlip(opt::rules::kBroadcastJoinAggressive),
      opt::RuleConfig::DefaultWithFlip(opt::rules::kJoinCommute),
      opt::RuleConfig::DefaultWithFlip(opt::rules::kHashJoinImpl),
  };
  for (const auto& job : Jobs()) {
    for (const auto& config : configs) {
      auto a = cached.Compile(job, config);
      auto b = uncached.Compile(job, config);
      ASSERT_EQ(a.ok(), b.ok()) << job.job_id;
      if (!a.ok()) {
        // Failures must be identical too (the span fix-point observes them).
        EXPECT_EQ(a.status(), b.status()) << job.job_id;
        continue;
      }
      EXPECT_EQ(Serialize(*a), Serialize(*b)) << job.job_id;
      // And the cached engine must keep answering identically from cache.
      auto again = cached.Compile(job, config);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(Serialize(*a), Serialize(*again)) << job.job_id;
    }
  }
  telemetry::CompileCacheTelemetry t = cached.compile_cache_telemetry();
  EXPECT_TRUE(t.enabled);
  EXPECT_GT(t.compilations.hits, 0u);
  EXPECT_GT(t.compilations.misses, 0u);
  EXPECT_FALSE(uncached.compile_cache_enabled());
  EXPECT_EQ(uncached.compile_cache_telemetry().compilations.lookups(), 0u);
}

TEST(CompilationCacheTest, RepeatedCompileSharesOneEntry) {
  engine::ScopeEngine engine = CachedEngine();
  workload::JobInstance job = Jobs(4, 4)[0];
  auto first = engine.CompileShared(job, opt::RuleConfig::Default());
  auto second = engine.CompileShared(job, opt::RuleConfig::Default());
  ASSERT_TRUE(first.ok() && second.ok());
  // Same immutable entry, not a copy.
  EXPECT_EQ(first->get(), second->get());
  telemetry::CompileCacheTelemetry t = engine.compile_cache_telemetry();
  EXPECT_EQ(t.compilations.misses, 1u);
  EXPECT_EQ(t.compilations.hits, 1u);
  EXPECT_EQ(t.compilations.entries, 1u);
}

TEST(CompilationCacheTest, FrontEndMemoParsesEachJobOnce) {
  engine::ScopeEngine engine = CachedEngine();
  workload::JobInstance job = Jobs(4, 8)[0];
  auto span = advisor::ComputeJobSpan(engine, job);
  ASSERT_TRUE(span.ok());
  telemetry::CompileCacheTelemetry t = engine.compile_cache_telemetry();
  // The fix-point compiled `iterations` distinct configs but parsed once.
  EXPECT_GE(span->iterations, 2);
  EXPECT_EQ(t.front_end.misses, 1u);
  EXPECT_EQ(static_cast<int>(t.front_end.lookups()), span->iterations);
  EXPECT_EQ(static_cast<int>(t.compilations.misses), span->iterations);

  // The front-end plan is shared by every consumer of this job.
  auto fe1 = engine.CompileFrontEnd(job);
  auto fe2 = engine.CompileFrontEnd(job);
  ASSERT_TRUE(fe1.ok() && fe2.ok());
  EXPECT_EQ(fe1->get(), fe2->get());
}

TEST(CompilationCacheTest, ParseErrorsAreCachedAndIdentical) {
  engine::ScopeEngine cached = CachedEngine();
  engine::ScopeEngine uncached = UncachedEngine();
  workload::JobInstance job = Jobs(4, 4)[0];
  job.script = "THIS IS NOT SCOPE";
  auto a = cached.Compile(job, opt::RuleConfig::Default());
  auto b = cached.Compile(job, opt::RuleConfig::Default());
  auto c = uncached.Compile(job, opt::RuleConfig::Default());
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status(), b.status());
  EXPECT_EQ(a.status(), c.status());
}

TEST(CompilationCacheTest, LruBoundHoldsUnderWorkloadChurn) {
  cache::CompileCacheOptions options;
  options.enabled = true;
  options.compilation_capacity = 16;
  options.front_end_capacity = 8;
  options.num_shards = 2;
  engine::ScopeEngine engine({}, {}, options);
  for (const auto& job : Jobs(16, 64)) {
    auto out = engine.Compile(job, opt::RuleConfig::Default());
    (void)out;
  }
  telemetry::CompileCacheTelemetry t = engine.compile_cache_telemetry();
  // Rounded-up per-shard slices: at most one extra entry per shard.
  EXPECT_LE(t.compilations.entries, 16u + 2u);
  EXPECT_LE(t.front_end.entries, 8u + 2u);
  EXPECT_GT(t.compilations.evictions, 0u);
}

TEST(CompilationCacheTest, ConcurrentCompilesAreIdenticalToSerial) {
  engine::ScopeEngine cached = CachedEngine();
  engine::ScopeEngine uncached = UncachedEngine();
  std::vector<workload::JobInstance> jobs = Jobs(8, 32);
  std::vector<std::string> serial(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    auto out = uncached.Compile(jobs[i], opt::RuleConfig::Default());
    ASSERT_TRUE(out.ok());
    serial[i] = Serialize(*out);
  }
  // 8 threads hammer the shared cache, repeating each job 4 times so the
  // same keys are hit while still warm and while being inserted.
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (size_t r = 0; r < 4; ++r) {
        for (size_t i = t % 2; i < jobs.size(); i += 2) {
          auto out = cached.CompileShared(jobs[i], opt::RuleConfig::Default());
          if (!out.ok() || Serialize(**out) != serial[i]) mismatch = true;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch);
}

TEST(CompilationCacheTest, EvaluateFlipToleratesHandBuiltFeatures) {
  // Tools (e.g. examples/whatif_explorer) assemble JobFeatures by hand;
  // a null default_compilation must fall back to a cached default compile,
  // not crash, and must produce the same result as the populated path.
  engine::ScopeEngine engine = CachedEngine();
  bandit::PersonalizerService personalizer({.seed = 17});
  advisor::Recommender recommender(&engine, &personalizer, {});
  workload::JobInstance job = Jobs(6, 12)[0];
  auto span = advisor::ComputeJobSpan(engine, job);
  ASSERT_TRUE(span.ok());
  ASSERT_TRUE(span->span.Any());
  int rule = span->span.Positions()[0];

  advisor::JobFeatures populated;
  populated.row.job_id = job.job_id;
  populated.row.instance = job;
  populated.span = span->span;
  populated.default_compilation = span->default_compilation;
  advisor::JobFeatures bare = populated;
  bare.default_compilation = nullptr;

  for (int r : {rule, -1}) {
    advisor::Recommendation a = recommender.EvaluateFlip(populated, r);
    advisor::Recommendation b = recommender.EvaluateFlip(bare, r);
    EXPECT_EQ(a.est_cost_default, b.est_cost_default);
    EXPECT_EQ(a.est_cost_new, b.est_cost_new);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.reward, b.reward);
  }
}

// ---------------------------------------------------------------------------
// End to end: fig10-style pipeline output must be byte-identical across
// cache on/off and thread counts (the bar runtime_test set for threading).
// ---------------------------------------------------------------------------

/// Everything externally visible from a mini fig10 run: per-day pipeline
/// reports, the SIS upload history, and the hinted eval-day execution.
struct MiniFig10Output {
  std::string reports;
  std::vector<std::string> sis_files;
  size_t active_hints = 0;
  std::string eval_view;
};

MiniFig10Output RunMiniFig10(int threads, int compile_cache) {
  experiments::ExperimentEnv env({.num_templates = 24,
                                  .jobs_per_day = 48,
                                  .seed = 31,
                                  .threads = threads,
                                  .compile_cache = compile_cache});
  EXPECT_EQ(env.engine().compile_cache_enabled(), compile_cache == 1);
  sis::StatsInsightService sis;
  advisor::PipelineConfig config;
  config.flighting.total_budget_machine_hours = 1e6;
  config.validation.min_training_samples = 6;
  config.recommender.uniform_probes_per_job = 3;
  config.personalizer.epsilon = 0.2;
  advisor::QoAdvisorPipeline pipeline(&env.engine(), &sis, config,
                                      env.runtime());
  MiniFig10Output out;
  char buf[128];
  const int kTrainDays = 6;
  for (int day = 0; day < kTrainDays; ++day) {
    auto report = pipeline.RunDay(env.BuildDayView(day, &sis));
    EXPECT_TRUE(report.ok());
    if (!report.ok()) continue;
    std::snprintf(buf, sizeof(buf),
                  "d%d jobs=%zu fwd=%zu flights=%zu/%zu val=%zu up=%zu "
                  "budget=%.17g\n",
                  report->day, report->feature_gen.input_jobs,
                  report->recommender.forwarded, report->flights_success,
                  report->flight_requests, report->validated,
                  report->hints_uploaded, report->flight_budget_used_hours);
    out.reports += buf;
  }
  for (const auto& file : sis.history()) {
    out.sis_files.push_back(file.Serialize());
  }
  out.active_hints = sis.active_hints();
  // The eval day runs under whatever hints went live — the paper's Table 2 /
  // fig10 measurement path, exercising the hinted-recompile fallback too.
  telemetry::WorkloadView view = env.BuildDayView(kTrainDays, &sis);
  for (const auto& row : view.rows) {
    std::snprintf(buf, sizeof(buf), "%s c=%.17g l=%.17g pn=%.17g v=%d\n",
                  row.job_id.c_str(), row.est_cost, row.latency_sec,
                  row.pn_hours, row.total_vertices);
    out.eval_view += row.rule_signature.ToString(64) + buf;
  }
  return out;
}

TEST(CompilationCacheTest, PipelineOutputIdenticalAcrossCacheAndThreads) {
  MiniFig10Output reference = RunMiniFig10(/*threads=*/1, /*compile_cache=*/1);
  EXPECT_FALSE(reference.reports.empty());
  EXPECT_FALSE(reference.eval_view.empty());
  // The pipeline must actually have produced steering output to compare.
  EXPECT_FALSE(reference.sis_files.empty());
  for (int compile_cache : {1, 0}) {
    for (int threads : {1, 4}) {
      if (compile_cache == 1 && threads == 1) continue;  // the reference
      MiniFig10Output run = RunMiniFig10(threads, compile_cache);
      EXPECT_EQ(run.reports, reference.reports)
          << "cache=" << compile_cache << " threads=" << threads;
      EXPECT_EQ(run.sis_files, reference.sis_files)
          << "cache=" << compile_cache << " threads=" << threads;
      EXPECT_EQ(run.active_hints, reference.active_hints);
      EXPECT_EQ(run.eval_view, reference.eval_view)
          << "cache=" << compile_cache << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace qo

// Tests for the multi-flip (Sec. 8 future work) extension.
#include <gtest/gtest.h>

#include "core/multi_flip.h"
#include "core/span.h"
#include "workload/workload.h"

namespace qo::advisor {
namespace {

TEST(MultiFlipTest, NeverWorseThanDefaultAndMonotone) {
  workload::WorkloadDriver driver(
      {.num_templates = 25, .jobs_per_day = 40, .seed = 2025});
  engine::ScopeEngine engine;
  int with_flips = 0;
  for (const auto& job : driver.DayJobs(0)) {
    auto span = ComputeJobSpan(engine, job);
    ASSERT_TRUE(span.ok());
    if (span->span.None()) continue;
    // Seed with the span's default compilation (the pipeline path) — the
    // result must be identical to letting GreedyMultiFlip compile it.
    auto result = GreedyMultiFlip(engine, job, span->span, /*horizon=*/3,
                                  /*min_relative_gain=*/1e-3,
                                  span->default_compilation);
    ASSERT_TRUE(result.ok()) << result.status();
    auto recompiled = GreedyMultiFlip(engine, job, span->span, /*horizon=*/3);
    ASSERT_TRUE(recompiled.ok());
    EXPECT_EQ(result->est_cost_default, recompiled->est_cost_default);
    EXPECT_EQ(result->est_cost_final, recompiled->est_cost_final);
    EXPECT_EQ(result->flips, recompiled->flips);
    EXPECT_LE(result->est_cost_final, result->est_cost_default);
    // Trajectory is strictly decreasing (each step must improve).
    double prev = result->est_cost_default;
    for (double cost : result->est_cost_trajectory) {
      EXPECT_LT(cost, prev);
      prev = cost;
    }
    EXPECT_LE(result->flips.size(), 3u);
    // The returned configuration is compilable and reproduces the cost.
    if (!result->flips.empty()) {
      ++with_flips;
      auto compiled = engine.Compile(job, result->ToConfig());
      ASSERT_TRUE(compiled.ok());
      EXPECT_NEAR(compiled->est_cost, result->est_cost_final,
                  1e-9 * result->est_cost_final);
      EXPECT_EQ(result->ToConfig().DiffFromDefault().size(),
                result->flips.size());
    }
  }
  EXPECT_GT(with_flips, 0);
}

TEST(MultiFlipTest, HorizonOneMatchesBestSingleFlip) {
  workload::WorkloadDriver driver(
      {.num_templates = 15, .jobs_per_day = 30, .seed = 77});
  engine::ScopeEngine engine;
  for (const auto& job : driver.DayJobs(0)) {
    auto span = ComputeJobSpan(engine, job);
    ASSERT_TRUE(span.ok());
    if (span->span.None()) continue;
    auto multi = GreedyMultiFlip(engine, job, span->span, /*horizon=*/1);
    ASSERT_TRUE(multi.ok());
    // Exhaustive single-flip minimum.
    double best_single = multi->est_cost_default;
    for (int bit : span->span.Positions()) {
      auto compiled =
          engine.Compile(job, opt::RuleConfig::DefaultWithFlip(bit));
      if (compiled.ok()) best_single = std::min(best_single, compiled->est_cost);
    }
    EXPECT_NEAR(multi->est_cost_final, best_single,
                1e-3 * multi->est_cost_default + 1e-12);
  }
}

TEST(MultiFlipTest, WiderHorizonNeverHurts) {
  workload::WorkloadDriver driver(
      {.num_templates = 15, .jobs_per_day = 25, .seed = 5});
  engine::ScopeEngine engine;
  int deeper_helped = 0;
  for (const auto& job : driver.DayJobs(0)) {
    auto span = ComputeJobSpan(engine, job);
    ASSERT_TRUE(span.ok());
    if (span->span.None()) continue;
    auto h1 = GreedyMultiFlip(engine, job, span->span, 1);
    auto h3 = GreedyMultiFlip(engine, job, span->span, 3);
    ASSERT_TRUE(h1.ok() && h3.ok());
    EXPECT_LE(h3->est_cost_final,
              h1->est_cost_final * (1.0 + 1e-9));
    deeper_helped += h3->est_cost_final < h1->est_cost_final * (1 - 1e-6);
  }
  // On at least some jobs the second/third flip compounds.
  EXPECT_GE(deeper_helped, 0);  // informational; strict gain asserted above
}

}  // namespace
}  // namespace qo::advisor

// Guardrail layer tests: fault-injector determinism, hint-file parse
// hardening against injected corruption, watchdog revert/quarantine
// goldens, circuit-breaker state machine, and full-pipeline chaos
// determinism across thread counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hash.h"
#include "core/pipeline.h"
#include "experiments/experiments.h"
#include "guard/fault_injector.h"
#include "guard/guardrail.h"
#include "optimizer/rules.h"
#include "sis/sis.h"
#include "telemetry/workload_view.h"

namespace qo {
namespace {

// ---------------------------------------------------------------------------
// Fault injector: pure, seeded, call-order independent.
// ---------------------------------------------------------------------------

guard::FaultConfig AllSitesConfig(uint64_t seed, double p) {
  guard::FaultConfig c;
  c.seed = seed;
  c.compile_error_prob = p;
  c.flight_failure_prob = p;
  c.flight_timeout_prob = p;
  c.hint_corrupt_prob = p;
  c.reward_drop_prob = p;
  c.telemetry_drop_prob = p;
  c.hint_regression_prob = p;
  return c;
}

TEST(FaultInjectorTest, UnarmedNeverFires) {
  guard::FaultInjector off({.seed = 42});
  EXPECT_FALSE(off.armed());
  for (int day = 0; day < 10; ++day) {
    for (uint64_t key = 0; key < 50; ++key) {
      EXPECT_FALSE(off.ShouldInject(guard::FaultSite::kCompile, day, key));
    }
  }
  // A probability arms it; the seed alone does not.
  EXPECT_TRUE(guard::FaultInjector(AllSitesConfig(42, 0.1)).armed());
}

TEST(FaultInjectorTest, DecisionsArePureAndSeeded) {
  guard::FaultInjector a(AllSitesConfig(7, 0.3));
  guard::FaultInjector b(AllSitesConfig(7, 0.3));
  guard::FaultInjector c(AllSitesConfig(8, 0.3));
  size_t fired = 0, seed_diffs = 0;
  for (int day = 0; day < 5; ++day) {
    for (uint64_t key = 0; key < 200; ++key) {
      bool va = a.ShouldInject(guard::FaultSite::kFlightFailure, day, key);
      // Interleave unrelated queries on `b`: decisions must not depend on
      // call order (they are hashes, not sequential draws).
      b.ShouldInject(guard::FaultSite::kCompile, day + 3, key * 17);
      bool vb = b.ShouldInject(guard::FaultSite::kFlightFailure, day, key);
      EXPECT_EQ(va, vb);
      fired += va;
      seed_diffs +=
          va != c.ShouldInject(guard::FaultSite::kFlightFailure, day, key);
    }
  }
  // The rate tracks the probability loosely (1000 draws at p=0.3).
  EXPECT_GT(fired, 200u);
  EXPECT_LT(fired, 400u);
  // A different seed places faults elsewhere.
  EXPECT_GT(seed_diffs, 0u);
}

TEST(FaultInjectorTest, StringKeysHashLikeIntegerKeys) {
  guard::FaultInjector inj(AllSitesConfig(13, 0.5));
  EXPECT_EQ(inj.ShouldInject(guard::FaultSite::kTelemetry, 2, "job_1"),
            inj.ShouldInject(guard::FaultSite::kTelemetry, 2,
                             HashString("job_1")));
  // Different sites decide independently for the same (day, key).
  bool any_diff = false;
  for (uint64_t key = 0; key < 64 && !any_diff; ++key) {
    any_diff = inj.ShouldInject(guard::FaultSite::kCompile, 0, key) !=
               inj.ShouldInject(guard::FaultSite::kRewardJoin, 0, key);
  }
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// Hint-file hardening: strict parse + corruption corpus.
// ---------------------------------------------------------------------------

sis::HintFile SampleHintFile() {
  sis::HintFile file;
  file.day = 12;
  file.entries.push_back({"tpl_a", opt::rules::kEagerAggregationLeft, true});
  file.entries.push_back({"tpl_b", opt::rules::kJoinAssociativity, true});
  return file;
}

TEST(HintFileHardeningTest, SerializeParseRoundTrips) {
  sis::HintFile file = SampleHintFile();
  auto parsed = sis::HintFile::Parse(file.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->day, file.day);
  ASSERT_EQ(parsed->entries.size(), file.entries.size());
  for (size_t i = 0; i < file.entries.size(); ++i) {
    EXPECT_EQ(parsed->entries[i].template_name, file.entries[i].template_name);
    EXPECT_EQ(parsed->entries[i].rule_id, file.entries[i].rule_id);
    EXPECT_EQ(parsed->entries[i].enable, file.entries[i].enable);
  }
  // Round-trip fixpoint: parse(serialize(x)).serialize == serialize(x).
  EXPECT_EQ(parsed->Serialize(), file.Serialize());
}

TEST(HintFileHardeningTest, RejectsMalformedInput) {
  const std::string header = "# qo-advisor hints day=3\n";
  const char* bad[] = {
      "",                                    // empty: no header
      "tpl,1,on\n",                          // row before header
      "# qo-advisor hints\ntpl,1,on\n",      // header without day=
      "# qo-advisor hints day=x\n",          // non-numeric day
      "# qo-advisor hints day=99999999999\n",  // day overflow
  };
  for (const char* text : bad) {
    EXPECT_FALSE(sis::HintFile::Parse(text).ok()) << text;
  }
  const char* bad_rows[] = {
      "tpl_on\n",              // no commas
      "tpl,1\n",               // two fields
      "tpl,1,on,extra\n",      // four fields
      ",1,on\n",               // empty template
      "tpl,,on\n",             // empty rule id
      "tpl,9999,on\n",         // rule id out of range
      "tpl,1x,on\n",           // trailing garbage in rule id
      "tpl,-1,on\n",           // negative rule id
      "tpl,1,maybe\n",         // bad direction
      "tpl,1,on\ntpl,2,off\n"  // same template twice
  };
  for (const char* rows : bad_rows) {
    EXPECT_FALSE(sis::HintFile::Parse(header + rows).ok()) << rows;
  }
  EXPECT_FALSE(sis::HintFile::Parse(header + header).ok());  // dup header
}

TEST(HintFileHardeningTest, CorruptionCorpusIsNeverSilentlyInstalled) {
  guard::FaultConfig fc;
  fc.seed = 99;
  fc.hint_corrupt_prob = 1.0;
  guard::FaultInjector inj(fc);
  sis::HintFile file = SampleHintFile();
  std::string original = file.Serialize();
  size_t rejected = 0;
  for (int day = 0; day < 8; ++day) {
    std::string corrupt = inj.CorruptHintText(original, day);
    EXPECT_NE(corrupt, original);  // the mangle always changes the bytes
    auto parsed = sis::HintFile::Parse(corrupt);
    if (!parsed.ok()) {
      ++rejected;
      continue;
    }
    // A corrupt file that still parses (e.g. clean truncation at a row
    // boundary) must be a strict subset, never invented entries.
    EXPECT_LE(parsed->entries.size(), file.entries.size());
    for (const auto& e : parsed->entries) {
      EXPECT_LT(e.rule_id, opt::RuleRegistry::kNumRules);
    }
  }
  // The corpus covers parse-rejecting mutations.
  EXPECT_GT(rejected, 0u);
}

TEST(SisHistoryTest, RetentionBoundsHistoryWithoutTouchingCounters) {
  sis::StatsInsightService sis({.history_retention = 3});
  for (int i = 0; i < 10; ++i) {
    sis::HintFile f;
    f.day = i;
    f.entries.push_back({"tpl_" + std::to_string(i),
                         opt::rules::kEagerAggregationLeft, true});
    ASSERT_TRUE(sis.UploadHintFile(f).ok());
  }
  EXPECT_EQ(sis.history().size(), 3u);
  EXPECT_EQ(sis.history_dropped(), 7u);
  EXPECT_EQ(sis.history().front().day, 7);
  // Version and monotonic counters are unaffected by trimming.
  EXPECT_EQ(sis.current_version(), 10);
  EXPECT_EQ(sis.total_hints_uploaded(), 10u);
  EXPECT_EQ(sis.active_hints(), 10u);
  // Default config keeps the old unbounded-ish behavior.
  EXPECT_EQ(sis::SisConfig{}.history_retention, 128u);
}

// ---------------------------------------------------------------------------
// Watchdog: revert + quarantine goldens on synthetic views.
// ---------------------------------------------------------------------------

telemetry::WorkloadView MakeDay(int day, const std::string& tpl, double pn,
                                int copies) {
  telemetry::WorkloadView view;
  view.day = day;
  for (int i = 0; i < copies; ++i) {
    telemetry::WorkloadViewRow row;
    row.job_id = tpl + "_j" + std::to_string(i);
    row.normalized_job_name = tpl;
    row.day = day;
    row.pn_hours = pn;
    view.rows.push_back(std::move(row));
  }
  return view;
}

TEST(HintWatchdogTest, RevertsSustainedRegressionAndQuarantines) {
  sis::StatsInsightService sis;
  guard::HintWatchdog dog(
      {.regress_threshold = 0.25, .min_samples = 2, .hysteresis_days = 2,
       .quarantine_days = 14, .baseline_window = 8});

  // Days 0-2: un-hinted baseline at 1.0 PNhours.
  for (int day = 0; day < 3; ++day) {
    EXPECT_TRUE(dog.ObserveDay(MakeDay(day, "T", 1.0, 3), &sis).empty());
  }

  // A hint lands; the template starts regressing +50%.
  sis::HintFile hint;
  hint.day = 3;
  hint.entries.push_back({"T", opt::rules::kEagerAggregationLeft, true});
  ASSERT_TRUE(sis.UploadHintFile(hint).ok());

  // Day 3: first regressing day — inside hysteresis, no revert yet.
  EXPECT_TRUE(dog.ObserveDay(MakeDay(3, "T", 1.5, 3), &sis).empty());
  ASSERT_TRUE(sis.LookupHint("T").has_value());

  // Day 4: second consecutive regressing day — revert fires.
  auto actions = dog.ObserveDay(MakeDay(4, "T", 1.5, 3), &sis);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].template_name, "T");
  EXPECT_EQ(actions[0].rule_id, opt::rules::kEagerAggregationLeft);
  EXPECT_EQ(actions[0].day, 4);
  EXPECT_NEAR(actions[0].regression, 0.5, 1e-9);
  EXPECT_FALSE(sis.LookupHint("T").has_value());
  EXPECT_EQ(sis.hints_reverted(), 1u);
  EXPECT_EQ(dog.reverts(), 1u);
  EXPECT_EQ(dog.quarantines(), 1u);

  // The quarantine blocks the pair until day 4 + 14.
  EXPECT_TRUE(dog.Quarantined("T", opt::rules::kEagerAggregationLeft, 5));
  EXPECT_TRUE(dog.Quarantined("T", opt::rules::kEagerAggregationLeft, 17));
  EXPECT_FALSE(dog.Quarantined("T", opt::rules::kEagerAggregationLeft, 18));
  EXPECT_FALSE(dog.Quarantined("T", opt::rules::kJoinAssociativity, 5));
  EXPECT_EQ(dog.ActiveQuarantines(5), 1u);
  EXPECT_EQ(dog.ActiveQuarantines(18), 0u);
}

TEST(HintWatchdogTest, HysteresisResetsOnRecoveryAndRespectsMinSamples) {
  sis::StatsInsightService sis;
  guard::HintWatchdog dog({.regress_threshold = 0.25, .min_samples = 2,
                           .hysteresis_days = 2});
  for (int day = 0; day < 3; ++day) {
    dog.ObserveDay(MakeDay(day, "T", 1.0, 3), &sis);
  }
  sis::HintFile hint;
  hint.entries.push_back({"T", opt::rules::kEagerAggregationLeft, true});
  ASSERT_TRUE(sis.UploadHintFile(hint).ok());

  // Regressing, then recovered, then regressing: hysteresis restarts, so
  // no revert on the second regressing day after a recovery.
  EXPECT_TRUE(dog.ObserveDay(MakeDay(3, "T", 1.5, 3), &sis).empty());
  EXPECT_TRUE(dog.ObserveDay(MakeDay(4, "T", 1.0, 3), &sis).empty());
  EXPECT_TRUE(dog.ObserveDay(MakeDay(5, "T", 1.5, 3), &sis).empty());
  // An under-sampled day (1 run < min_samples=2) does not vote at all — it
  // neither advances nor resets the hysteresis counter.
  EXPECT_TRUE(dog.ObserveDay(MakeDay(6, "T", 9.0, 1), &sis).empty());
  ASSERT_TRUE(sis.LookupHint("T").has_value());
  // Day 5 was the first qualifying regressing vote; day 7 is the second, so
  // the revert fires here (the silent day 6 did not break the streak).
  EXPECT_EQ(dog.ObserveDay(MakeDay(7, "T", 1.5, 3), &sis).size(), 1u);
  EXPECT_FALSE(sis.LookupHint("T").has_value());
}

// ---------------------------------------------------------------------------
// Circuit breaker: trip, probation, half-open probe, re-arm / re-trip.
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, TripProbationProbeAndRearm) {
  guard::CircuitBreaker breaker(
      {.failure_rate_threshold = 0.5, .min_events = 4, .probation_days = 2});
  // Day 0: 3 failures of 4 => 75% >= 50% with enough events: trips.
  for (int i = 0; i < 4; ++i) breaker.Record(i < 3);
  EXPECT_TRUE(breaker.CloseDay(0));
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 1u);
  // Probation: days 1-2 disallowed, day 3 is the half-open probe.
  EXPECT_FALSE(breaker.AllowSteering(1));
  EXPECT_FALSE(breaker.AllowSteering(2));
  EXPECT_TRUE(breaker.AllowSteering(3));
  breaker.CloseDay(1);
  breaker.CloseDay(2);
  // Probe day succeeds: breaker re-arms.
  breaker.Record(false);
  EXPECT_FALSE(breaker.CloseDay(3));
  EXPECT_FALSE(breaker.open());
  EXPECT_TRUE(breaker.AllowSteering(4));
}

TEST(CircuitBreakerTest, FailedProbeRetrips) {
  guard::CircuitBreaker breaker(
      {.failure_rate_threshold = 0.5, .min_events = 4, .probation_days = 2});
  for (int i = 0; i < 4; ++i) breaker.Record(true);
  EXPECT_TRUE(breaker.CloseDay(0));
  breaker.CloseDay(1);
  breaker.CloseDay(2);
  // Probe day fails: re-trip, new probation window.
  breaker.Record(true);
  EXPECT_TRUE(breaker.CloseDay(3));
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.AllowSteering(4));
  EXPECT_FALSE(breaker.AllowSteering(5));
  EXPECT_TRUE(breaker.AllowSteering(6));
  // A probe day with zero traffic leaves the breaker half-open.
  breaker.CloseDay(4);
  breaker.CloseDay(5);
  EXPECT_FALSE(breaker.CloseDay(6));
  EXPECT_TRUE(breaker.open());
  EXPECT_TRUE(breaker.AllowSteering(7));  // still probing
  // Below min_events a bad day cannot trip a closed breaker.
  guard::CircuitBreaker calm(
      {.failure_rate_threshold = 0.5, .min_events = 4, .probation_days = 2});
  calm.Record(true);
  calm.Record(true);
  EXPECT_FALSE(calm.CloseDay(0));
  EXPECT_FALSE(calm.open());
}

// ---------------------------------------------------------------------------
// Full-pipeline chaos determinism: same fault seed => byte-identical day
// reports, SIS uploads and guard telemetry at any thread count.
// ---------------------------------------------------------------------------

guard::FaultConfig ChaosFaults() {
  guard::FaultConfig f;
  f.seed = 1337;
  f.compile_error_prob = 0.05;
  f.flight_failure_prob = 0.10;
  f.flight_timeout_prob = 0.05;
  f.hint_corrupt_prob = 0.25;
  f.reward_drop_prob = 0.05;
  f.telemetry_drop_prob = 0.03;
  f.hint_regression_prob = 0.30;
  f.hint_regression_factor = 1.8;
  return f;
}

struct ChaosRunOutput {
  std::vector<std::string> report_lines;
  std::vector<std::string> sis_files;
  int sis_version = 0;
  std::string guard_telemetry;
  uint64_t faults_injected = 0;
};

ChaosRunOutput RunChaosPipeline(int threads, int days) {
  experiments::ExperimentConfig econfig{.num_templates = 24,
                                        .jobs_per_day = 48,
                                        .seed = 31,
                                        .threads = threads};
  econfig.faults = ChaosFaults();
  experiments::ExperimentEnv env(econfig);
  sis::StatsInsightService sis;
  advisor::PipelineConfig config;
  config.flighting.total_budget_machine_hours = 1e6;
  config.validation.min_training_samples = 10;
  config.recommender.uniform_probes_per_job = 3;
  config.personalizer.epsilon = 0.2;
  config.runtime.num_threads = threads;
  config.guard.enabled = true;
  config.guard.faults = ChaosFaults();
  advisor::QoAdvisorPipeline pipeline(&env.engine(), &sis, config);
  ChaosRunOutput out;
  for (int day = 0; day < days; ++day) {
    auto report = pipeline.RunDay(env.BuildDayView(day, &sis));
    EXPECT_TRUE(report.ok());
    if (report.ok()) out.report_lines.push_back(report->ToString());
  }
  for (const auto& file : sis.history()) {
    out.sis_files.push_back(file.Serialize());
  }
  out.sis_version = sis.current_version();
  out.guard_telemetry = pipeline.steering_guard().telemetry().ToString();
  out.faults_injected = pipeline.steering_guard().telemetry().faults_injected();
  return out;
}

TEST(ChaosDeterminismTest, SameSeedIsByteIdenticalAcrossThreadCounts) {
  const int kDays = 6;
  ChaosRunOutput serial = RunChaosPipeline(1, kDays);
  ASSERT_EQ(serial.report_lines.size(), static_cast<size_t>(kDays));
  // The chaos config actually bites: faults were injected somewhere.
  EXPECT_GT(serial.faults_injected, 0u);
  ChaosRunOutput parallel = RunChaosPipeline(4, kDays);
  EXPECT_EQ(serial.report_lines, parallel.report_lines);
  EXPECT_EQ(serial.sis_files, parallel.sis_files);
  EXPECT_EQ(serial.sis_version, parallel.sis_version);
  EXPECT_EQ(serial.guard_telemetry, parallel.guard_telemetry);
}

TEST(ChaosDeterminismTest, SameSeedTwiceIsByteIdentical) {
  ChaosRunOutput a = RunChaosPipeline(2, 4);
  ChaosRunOutput b = RunChaosPipeline(2, 4);
  EXPECT_EQ(a.report_lines, b.report_lines);
  EXPECT_EQ(a.sis_files, b.sis_files);
  EXPECT_EQ(a.guard_telemetry, b.guard_telemetry);
}

// ---------------------------------------------------------------------------
// End-to-end guard demo: a deliberately-regressing hint is detected,
// auto-reverted within the hysteresis window, and quarantined.
// ---------------------------------------------------------------------------

TEST(GuardPipelineTest, RegressingHintIsAutoRevertedAndQuarantined) {
  experiments::ExperimentConfig econfig{.num_templates = 16,
                                        .jobs_per_day = 48,
                                        .seed = 5,
                                        .threads = 2};
  // Every hinted template regresses hard in production; nothing else fails.
  // The factor must overwhelm the hint's genuine improvement (validated
  // flips often halve PNhours here) plus the 25% watchdog threshold.
  econfig.faults.seed = 7;
  econfig.faults.hint_regression_prob = 1.0;
  econfig.faults.hint_regression_factor = 6.0;
  experiments::ExperimentEnv env(econfig);
  sis::StatsInsightService sis;
  advisor::PipelineConfig config;
  config.flighting.total_budget_machine_hours = 1e6;
  config.validation.min_training_samples = 10;
  config.recommender.uniform_probes_per_job = 3;
  config.personalizer.epsilon = 0.2;
  config.runtime.num_threads = 2;
  config.guard.enabled = true;
  advisor::QoAdvisorPipeline pipeline(&env.engine(), &sis, config);

  size_t total_reverted = 0;
  int first_hint_day = -1, first_revert_day = -1;
  for (int day = 0; day < 14; ++day) {
    auto report = pipeline.RunDay(env.BuildDayView(day, &sis));
    ASSERT_TRUE(report.ok()) << report.status();
    if (first_hint_day < 0 && report->hints_uploaded > 0) {
      first_hint_day = day;
    }
    if (first_revert_day < 0 && report->hints_reverted > 0) {
      first_revert_day = day;
    }
    total_reverted += report->hints_reverted;
  }
  // Hints were deployed, regressed (factor 2.0 >> threshold 0.25), and the
  // watchdog reverted them within the hysteresis window.
  ASSERT_GE(first_hint_day, 0) << "pipeline never produced a hint";
  ASSERT_GT(total_reverted, 0u) << "watchdog never reverted";
  EXPECT_GE(first_revert_day,
            first_hint_day + config.guard.watchdog.hysteresis_days);
  const auto& dog = pipeline.steering_guard().watchdog();
  EXPECT_EQ(dog.reverts(), total_reverted);
  EXPECT_GT(dog.quarantines(), 0u);
  EXPECT_GT(env.regressions_injected(), 0u);
  // Quarantined pairs stayed blocked: the guard counters saw the pipeline
  // refuse to re-recommend at least one of them, or the cool-down simply
  // outlived the run — either way the pair is still quarantined now.
  EXPECT_GT(dog.ActiveQuarantines(13), 0u);
  EXPECT_EQ(sis.hints_reverted(), total_reverted);
}

// Net impact stays non-negative under a 10% injected flight-failure rate:
// the retry path recovers most transient failures and validation filters
// the rest, so chaos must not turn steering harmful.
TEST(GuardPipelineTest, FlightChaosDoesNotMakeSteeringHarmful) {
  experiments::ExperimentConfig econfig{.num_templates = 24,
                                        .jobs_per_day = 60,
                                        .seed = 11,
                                        .threads = 2};
  econfig.faults.seed = 23;
  econfig.faults.flight_failure_prob = 0.10;
  experiments::ExperimentEnv env(econfig);
  sis::StatsInsightService sis;
  advisor::PipelineConfig config;
  config.flighting.total_budget_machine_hours = 1e6;
  config.validation.min_training_samples = 10;
  config.recommender.uniform_probes_per_job = 3;
  config.personalizer.epsilon = 0.2;
  config.runtime.num_threads = 2;
  config.guard.enabled = true;
  config.guard.faults = econfig.faults;
  advisor::QoAdvisorPipeline pipeline(&env.engine(), &sis, config);
  size_t retries = 0, recovered = 0, faults = 0, hints = 0;
  for (int day = 0; day < 14; ++day) {
    auto report = pipeline.RunDay(env.BuildDayView(day, &sis));
    ASSERT_TRUE(report.ok()) << report.status();
    retries += report->flight_retries;
    recovered += report->flights_recovered;
    faults += report->faults_injected;
    hints += report->hints_uploaded;
  }
  EXPECT_GT(faults, 0u) << "chaos config never injected a flight fault";
  EXPECT_GT(retries, 0u);
  EXPECT_GT(recovered, 0u);
  EXPECT_GT(hints, 0u) << "pipeline never deployed a hint under chaos";

  // Hinted vs default on matching jobs of held-out days: the net PNhours
  // delta must not be a regression (hints only land after validation, and
  // the watchdog guards the rest).
  double hinted_total = 0.0, default_total = 0.0;
  for (int day = 14; day < 16; ++day) {
    telemetry::WorkloadView hinted = env.BuildDayView(day, &sis);
    telemetry::WorkloadView plain = env.BuildDayView(day);
    ASSERT_EQ(hinted.rows.size(), plain.rows.size());
    for (size_t i = 0; i < hinted.rows.size(); ++i) {
      if (!sis.LookupHint(hinted.rows[i].normalized_job_name).has_value()) {
        continue;
      }
      hinted_total += hinted.rows[i].pn_hours;
      default_total += plain.rows[i].pn_hours;
    }
  }
  EXPECT_GT(default_total, 0.0) << "no hinted template matched on eval days";
  EXPECT_LE(hinted_total, default_total + 1e-9)
      << "steering under chaos regressed net PNhours";
}

}  // namespace
}  // namespace qo

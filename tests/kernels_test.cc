// Kernel-layer golden tests: every kernel's AVX2 implementation must be
// bit-identical to the scalar reference on full lanes, edge lanes, and
// scalar tails, and both must match a naive per-lane reference. The suite
// also covers the dispatch table (startup choice, QO_SIMD semantics via the
// test override, SimdActive reporting).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/kernels/kernels.h"

namespace qo::kernels {
namespace {

/// True when the AVX2 table is actually runnable here (compiled in AND the
/// CPU supports it). Bit-equivalence tests skip otherwise — the fallback
/// AVX2 table aliases the scalar table, which would make them vacuous.
bool Avx2Runnable() {
#if defined(__x86_64__) || defined(__i386__)
  return Avx2Compiled() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

/// Deterministic value stream with varied magnitudes and signs (including
/// values near the rounding-sensitive end of the mantissa) so a single
/// reassociated add or contracted FMA flips at least one result bit.
class ValueStream {
 public:
  explicit ValueStream(uint64_t seed) : state_(seed) {}
  double Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t bits = state_ >> 11;
    // Map into [-8, 8) with a long fraction tail.
    return static_cast<double>(static_cast<int64_t>(bits % 16000000) -
                               8000000) /
           1.0e6 * (1.0 + 1.0e-13 * static_cast<double>(bits % 97));
  }

 private:
  uint64_t state_;
};

/// Four per-lane rows of `columns` entries each, plus the pointer array the
/// row-major dot4 kernel consumes.
struct LaneRows {
  std::vector<double> storage[kLanes];
  const double* ptrs[kLanes];

  LaneRows(size_t columns, uint64_t seed) {
    ValueStream vs(seed);
    for (size_t j = 0; j < kLanes; ++j) {
      storage[j].resize(columns);
      for (double& x : storage[j]) x = vs.Next();
      ptrs[j] = storage[j].data();
    }
  }
};

// --- dot4 -------------------------------------------------------------------

/// Per-lane sequential accumulation — the legacy scalar dot-product order.
void Dot4Reference(const double* const* v, const double* const* w,
                   size_t columns, double* acc) {
  for (size_t j = 0; j < kLanes; ++j) {
    double a = acc[j];
    for (size_t i = 0; i < columns; ++i) {
      a += v[j][i] * w[j][i];
    }
    acc[j] = a;
  }
}

TEST(Dot4Test, ScalarMatchesPerLaneReference) {
  for (size_t columns : {0u, 1u, 2u, 3u, 7u, 64u, 257u}) {
    LaneRows v(columns, 11 + columns);
    LaneRows w(columns, 99 + columns);
    double expect[kLanes] = {0.5, -1.25, 0.0, 3.0};
    double got[kLanes] = {0.5, -1.25, 0.0, 3.0};
    Dot4Reference(v.ptrs, w.ptrs, columns, expect);
    ScalarTable().dot4(v.ptrs, w.ptrs, columns, got);
    for (size_t j = 0; j < kLanes; ++j) {
      EXPECT_EQ(expect[j], got[j]) << "columns=" << columns << " lane=" << j;
    }
  }
}

TEST(Dot4Test, Avx2BitIdenticalToScalar) {
  if (!Avx2Runnable()) GTEST_SKIP() << "AVX2 not runnable on this host";
  // Lengths cover the empty case, the pure set_pd tail (< 4), exact 4x4
  // transpose blocks, and block-plus-tail mixes.
  for (size_t columns : {0u, 1u, 3u, 4u, 17u, 256u, 1023u}) {
    LaneRows v(columns, 7 * columns + 1);
    LaneRows w(columns, 13 * columns + 5);
    double scalar[kLanes] = {0.0, 1.0, -2.0, 1.0e-12};
    double avx2[kLanes] = {0.0, 1.0, -2.0, 1.0e-12};
    ScalarTable().dot4(v.ptrs, w.ptrs, columns, scalar);
    Avx2Table().dot4(v.ptrs, w.ptrs, columns, avx2);
    EXPECT_EQ(0, std::memcmp(scalar, avx2, sizeof(scalar)))
        << "columns=" << columns;
  }
}

// --- critical_path4 ---------------------------------------------------------

/// A 6-stage diamond-with-join DAG in CSR form:
///   0 -> {2, 3}, 1 -> {3}, {2, 3} -> 4, 4 -> 5.
struct TestDag {
  size_t num_stages = 6;
  std::vector<int32_t> topo = {0, 1, 2, 3, 4, 5};
  std::vector<int32_t> up_offsets = {0, 0, 0, 1, 3, 5, 6};
  std::vector<int32_t> up_list = {0, 0, 1, 2, 3, 4};
  std::vector<double> waves = {1.5, 0.25, 2.0, 0.75, 1.0, 0.125};
  std::vector<double> tail = {1.0, 1.5, 1.25, 1.0, 2.0, 1.0};
};

/// Naive per-lane walk in the exact legacy FP association.
void CriticalPath4Reference(const TestDag& dag, double startup,
                            const double* noise, double* finish,
                            double* critical) {
  for (size_t j = 0; j < kLanes; ++j) {
    for (size_t t = 0; t < dag.num_stages; ++t) {
      const size_t s = static_cast<size_t>(dag.topo[t]);
      double ready = 0.0;
      for (int32_t o = dag.up_offsets[s]; o < dag.up_offsets[s + 1]; ++o) {
        const double fu = finish[static_cast<size_t>(dag.up_list[o]) * kLanes + j];
        ready = ready > fu ? ready : fu;
      }
      finish[s * kLanes + j] =
          ready + (startup + (dag.waves[s] * noise[s * kLanes + j]) * dag.tail[s]);
    }
    double c = 0.0;
    for (size_t s = 0; s < dag.num_stages; ++s) {
      const double f = finish[s * kLanes + j];
      c = c > f ? c : f;
    }
    critical[j] = c;
  }
}

TEST(CriticalPath4Test, ScalarMatchesPerLaneReference) {
  TestDag dag;
  ValueStream vs(42);
  std::vector<double> noise(dag.num_stages * kLanes);
  for (double& x : noise) x = 0.5 + std::fabs(vs.Next());
  std::vector<double> finish_expect(noise.size(), 0.0);
  std::vector<double> finish_got(noise.size(), 0.0);
  double critical_expect[kLanes] = {0, 0, 0, 0};
  double critical_got[kLanes] = {0, 0, 0, 0};
  CriticalPath4Reference(dag, 0.8, noise.data(), finish_expect.data(),
                         critical_expect);
  ScalarTable().critical_path4(dag.num_stages, dag.topo.data(),
                               dag.up_offsets.data(), dag.up_list.data(),
                               dag.waves.data(), dag.tail.data(), 0.8,
                               noise.data(), finish_got.data(), critical_got);
  for (size_t i = 0; i < finish_expect.size(); ++i) {
    EXPECT_EQ(finish_expect[i], finish_got[i]) << "slot=" << i;
  }
  for (size_t j = 0; j < kLanes; ++j) {
    EXPECT_EQ(critical_expect[j], critical_got[j]) << "lane=" << j;
    EXPECT_GT(critical_got[j], 0.0);
  }
}

TEST(CriticalPath4Test, Avx2BitIdenticalToScalar) {
  if (!Avx2Runnable()) GTEST_SKIP() << "AVX2 not runnable on this host";
  TestDag dag;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    ValueStream vs(seed);
    std::vector<double> noise(dag.num_stages * kLanes);
    for (double& x : noise) x = 0.25 + std::fabs(vs.Next());
    std::vector<double> finish_scalar(noise.size(), 0.0);
    std::vector<double> finish_avx2(noise.size(), 0.0);
    double critical_scalar[kLanes] = {0, 0, 0, 0};
    double critical_avx2[kLanes] = {0, 0, 0, 0};
    ScalarTable().critical_path4(
        dag.num_stages, dag.topo.data(), dag.up_offsets.data(),
        dag.up_list.data(), dag.waves.data(), dag.tail.data(), 0.8,
        noise.data(), finish_scalar.data(), critical_scalar);
    Avx2Table().critical_path4(
        dag.num_stages, dag.topo.data(), dag.up_offsets.data(),
        dag.up_list.data(), dag.waves.data(), dag.tail.data(), 0.8,
        noise.data(), finish_avx2.data(), critical_avx2);
    for (size_t i = 0; i < finish_scalar.size(); ++i) {
      EXPECT_EQ(finish_scalar[i], finish_avx2[i])
          << "seed=" << seed << " slot=" << i;
    }
    EXPECT_EQ(0, std::memcmp(critical_scalar, critical_avx2,
                             sizeof(critical_scalar)))
        << "seed=" << seed;
  }
}

TEST(CriticalPath4Test, EmptyDagLeavesCriticalAtZero) {
  double critical[kLanes] = {0, 0, 0, 0};
  const int32_t offsets[1] = {0};
  for (const KernelTable* kt : {&ScalarTable(), &Avx2Table()}) {
    kt->critical_path4(0, nullptr, offsets, nullptr, nullptr, nullptr, 0.8,
                       nullptr, nullptr, critical);
    for (size_t j = 0; j < kLanes; ++j) EXPECT_EQ(critical[j], 0.0);
  }
}

// --- clamp_range ------------------------------------------------------------

TEST(ClampRangeTest, MatchesStdClampOnEdgesAndTails) {
  // Lengths straddle the 4-wide vector body plus every tail length.
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 33u}) {
    std::vector<double> base(n);
    ValueStream vs(1000 + n);
    for (size_t i = 0; i < n; ++i) {
      // Mix interior values with exact-boundary hits.
      base[i] = (i % 5 == 0) ? 1.0 : (i % 5 == 1) ? 64.0 : vs.Next() * 40.0;
    }
    std::vector<double> expect = base;
    for (double& x : expect) x = std::max(1.0, std::min(x, 64.0));
    std::vector<double> scalar = base;
    ScalarTable().clamp_range(scalar.data(), n, 1.0, 64.0);
    EXPECT_EQ(expect, scalar) << "n=" << n;
    if (Avx2Runnable()) {
      std::vector<double> avx2 = base;
      Avx2Table().clamp_range(avx2.data(), n, 1.0, 64.0);
      EXPECT_EQ(scalar, avx2) << "n=" << n;
    }
  }
}

TEST(ClampRangeTest, DegenerateRangeCollapsesToBound) {
  // lo == hi: every element must land exactly on the bound.
  std::vector<double> xs = {-3.0, 2.0, 7.0, 2.0, 100.0};
  ScalarTable().clamp_range(xs.data(), xs.size(), 2.0, 2.0);
  for (double x : xs) EXPECT_EQ(x, 2.0);
}

// --- collect_nonzero_words --------------------------------------------------

/// Straightforward single-pass reference collector.
std::vector<uint32_t> CollectReference(const std::vector<uint64_t>& words,
                                       size_t begin, size_t end) {
  std::vector<uint32_t> out;
  for (size_t w = begin; w < end; ++w) {
    if (words[w] != 0) out.push_back(static_cast<uint32_t>(w));
  }
  return out;
}

TEST(CollectNonzeroWordsTest, MatchesReferenceAcrossBlockBoundaries) {
  constexpr size_t kWords = 21;  // not a multiple of the 4-word AVX2 block
  // Every single-hot-word placement, plus unaligned begin cursors.
  for (size_t hot = 0; hot < kWords; ++hot) {
    std::vector<uint64_t> words(kWords, 0);
    words[hot] = uint64_t{1} << (hot % 64);
    for (size_t begin : {size_t{0}, hot, hot + 1, (hot >= 3 ? hot - 3 : 0)}) {
      const std::vector<uint32_t> expect =
          CollectReference(words, begin, kWords);
      for (const KernelTable* kt : {&ScalarTable(), &Avx2Table()}) {
        std::vector<uint32_t> got(kWords, 0xffffffffu);
        const size_t n =
            kt->collect_nonzero_words(words.data(), begin, kWords, got.data());
        ASSERT_EQ(n, expect.size())
            << kt->name << " hot=" << hot << " begin=" << begin;
        for (size_t k = 0; k < n; ++k) {
          EXPECT_EQ(got[k], expect[k])
              << kt->name << " hot=" << hot << " begin=" << begin;
        }
      }
    }
  }
}

TEST(CollectNonzeroWordsTest, DensePatternsAndMixedBlocks) {
  // Patterns exercise all-hot, alternating, block-straddling and tail-only
  // hot words across a range that is not a multiple of the AVX2 block.
  constexpr size_t kWords = 27;
  ValueStream vs(77);
  for (int pattern = 0; pattern < 6; ++pattern) {
    std::vector<uint64_t> words(kWords, 0);
    for (size_t w = 0; w < kWords; ++w) {
      const bool hot = pattern == 0   ? true
                       : pattern == 1 ? (w % 2 == 0)
                       : pattern == 2 ? (w % 4 == 3)
                       : pattern == 3 ? (w >= 24)
                       : pattern == 4 ? (w < 2)
                                      : (vs.Next() > 0.0);
      if (hot) words[w] = static_cast<uint64_t>(w * 2654435761u) | 1u;
    }
    const std::vector<uint32_t> expect = CollectReference(words, 0, kWords);
    for (const KernelTable* kt : {&ScalarTable(), &Avx2Table()}) {
      std::vector<uint32_t> got(kWords, 0xffffffffu);
      const size_t n =
          kt->collect_nonzero_words(words.data(), 0, kWords, got.data());
      ASSERT_EQ(n, expect.size()) << kt->name << " pattern=" << pattern;
      for (size_t k = 0; k < n; ++k) {
        EXPECT_EQ(got[k], expect[k]) << kt->name << " pattern=" << pattern;
      }
    }
  }
}

TEST(CollectNonzeroWordsTest, AllZeroAndEmptyRanges) {
  std::vector<uint64_t> words(12, 0);
  uint32_t out[12];
  for (const KernelTable* kt : {&ScalarTable(), &Avx2Table()}) {
    EXPECT_EQ(kt->collect_nonzero_words(words.data(), 0, words.size(), out),
              0u)
        << kt->name;
    EXPECT_EQ(kt->collect_nonzero_words(words.data(), 5, 5, out), 0u)
        << kt->name;
  }
}

// --- dispatch ---------------------------------------------------------------

TEST(DispatchTest, TablesAreWellFormed) {
  for (const KernelTable* kt : {&ScalarTable(), &Avx2Table(), &Active()}) {
    ASSERT_NE(kt->name, nullptr);
    EXPECT_NE(kt->dot4, nullptr);
    EXPECT_NE(kt->critical_path4, nullptr);
    EXPECT_NE(kt->clamp_range, nullptr);
    EXPECT_NE(kt->collect_nonzero_words, nullptr);
  }
  EXPECT_STREQ(ScalarTable().name, "scalar");
  if (Avx2Compiled()) {
    EXPECT_STREQ(Avx2Table().name, "avx2");
  } else {
    // Fallback build: the AVX2 accessor aliases the scalar table.
    EXPECT_EQ(&Avx2Table(), &ScalarTable());
  }
}

TEST(DispatchTest, TestOverrideForcesTableAndRestores) {
  const KernelTable& startup = Active();
  SetActiveTableForTest(&ScalarTable());
  EXPECT_EQ(&Active(), &ScalarTable());
  EXPECT_FALSE(SimdActive());
  if (Avx2Runnable()) {
    SetActiveTableForTest(&Avx2Table());
    EXPECT_EQ(&Active(), &Avx2Table());
    EXPECT_TRUE(SimdActive());
  }
  SetActiveTableForTest(nullptr);
  EXPECT_EQ(&Active(), &startup);
}

}  // namespace
}  // namespace qo::kernels

// Deterministic parallel runtime tests: sharded work queue scheduling,
// ordered commit determinism, budget-gate admission under contention, and
// the end-to-end guarantee — a pipeline day and a flight batch produce
// byte-identical results for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/feature_gen.h"
#include "core/pipeline.h"
#include "experiments/experiments.h"
#include "runtime/budget_gate.h"
#include "runtime/runtime.h"
#include "runtime/work_queue.h"

namespace qo {
namespace {

using runtime::BudgetGate;
using runtime::ParallelRuntime;
using runtime::RuntimeOptions;
using runtime::ShardedWorkQueue;

// ---------------------------------------------------------------------------
// ShardedWorkQueue.
// ---------------------------------------------------------------------------

TEST(WorkQueueTest, DispatchesBestPriorityFirstAcrossShards) {
  ShardedWorkQueue queue(8);
  std::vector<int> order;
  queue.Push(0, /*priority=*/2.0, [&] { order.push_back(2); });
  queue.Push(1, /*priority=*/0.5, [&] { order.push_back(0); });
  queue.Push(2, /*priority=*/1.0, [&] { order.push_back(1); });
  for (int i = 0; i < 3; ++i) {
    auto lease = queue.PopBlocking();
    ASSERT_TRUE(lease.has_value());
    lease->fn();
    queue.Release(lease->shard);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(WorkQueueTest, EqualPriorityRunsInSubmissionOrderWithinShard) {
  ShardedWorkQueue queue(4);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    queue.Push(/*shard_key=*/1, /*priority=*/0.0,
               [&order, i] { order.push_back(i); });
  }
  for (int i = 0; i < 6; ++i) {
    auto lease = queue.PopBlocking();
    ASSERT_TRUE(lease.has_value());
    lease->fn();
    queue.Release(lease->shard);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(WorkQueueTest, ShardNeverCheckedOutTwiceConcurrently) {
  // 4 shards, 64 tasks, 8 workers: per-shard concurrency must stay at 1 and
  // per-shard execution order must equal submission order.
  ShardedWorkQueue queue(4);
  std::atomic<int> in_shard[4] = {{0}, {0}, {0}, {0}};
  std::atomic<bool> overlap{false};
  std::mutex mu;
  std::vector<std::vector<int>> shard_order(4);
  for (int i = 0; i < 64; ++i) {
    uint64_t shard = static_cast<uint64_t>(i) % 4;
    queue.Push(shard, 0.0, [&, i, shard] {
      if (in_shard[shard].fetch_add(1) != 0) overlap = true;
      std::this_thread::yield();
      {
        std::lock_guard<std::mutex> lock(mu);
        shard_order[shard].push_back(i);
      }
      in_shard[shard].fetch_sub(1);
    });
  }
  queue.Close();
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&] {
      while (auto lease = queue.PopBlocking()) {
        lease->fn();
        queue.Release(lease->shard);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(overlap.load());
  for (int s = 0; s < 4; ++s) {
    ASSERT_EQ(shard_order[s].size(), 16u);
    for (size_t i = 1; i < shard_order[s].size(); ++i) {
      EXPECT_LT(shard_order[s][i - 1], shard_order[s][i]);
    }
  }
}

// ---------------------------------------------------------------------------
// ParallelRuntime ordered commit.
// ---------------------------------------------------------------------------

TEST(ParallelRuntimeTest, TransformOrderedMatchesSerialForAnyThreadCount) {
  auto run = [](int threads) {
    ParallelRuntime rt({.num_threads = threads});
    return rt.TransformOrdered<int>(
        100, [](size_t i) { return i % 7; },
        [](size_t i) { return static_cast<double>(100 - i); },
        [](size_t i) { return static_cast<int>(i * i); });
  };
  std::vector<int> serial = run(1);
  EXPECT_EQ(serial.size(), 100u);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelRuntimeTest, CommitsStreamInSubmissionOrder) {
  ParallelRuntime rt({.num_threads = 4});
  std::vector<size_t> committed;
  rt.ForEachOrdered<size_t>(
      50, [](size_t i) { return i; }, [](size_t) { return 0.0; },
      [](size_t i) { return i; },
      [&](size_t i, size_t&& r) {
        EXPECT_EQ(i, r);
        committed.push_back(i);
      });
  ASSERT_EQ(committed.size(), 50u);
  for (size_t i = 0; i < committed.size(); ++i) EXPECT_EQ(committed[i], i);
}

TEST(ParallelRuntimeTest, NestedFanOutRunsInlineWithoutDeadlock) {
  ParallelRuntime rt({.num_threads = 2});
  std::vector<int> outer = rt.TransformOrdered<int>(
      8, [](size_t i) { return i; }, [](size_t) { return 0.0; },
      [&rt](size_t i) {
        // A task fanning out on its own runtime must degrade to inline
        // execution instead of deadlocking the pool.
        std::vector<int> inner = rt.TransformOrdered<int>(
            4, [](size_t j) { return j; }, [](size_t) { return 0.0; },
            [](size_t j) { return static_cast<int>(j); });
        int sum = 0;
        for (int v : inner) sum += v;
        return static_cast<int>(i) * 10 + sum;
      });
  for (size_t i = 0; i < outer.size(); ++i) {
    EXPECT_EQ(outer[i], static_cast<int>(i) * 10 + 6);
  }
}

TEST(ParallelRuntimeTest, CommitExceptionsDrainRemainingTasksBeforeRethrow) {
  ParallelRuntime rt({.num_threads = 4});
  std::atomic<int> ran{0};
  size_t commits = 0;
  EXPECT_THROW(
      rt.ForEachOrdered<int>(
          32, [](size_t i) { return i; }, [](size_t) { return 0.0; },
          [&](size_t i) -> int {
            ran.fetch_add(1);
            return static_cast<int>(i);
          },
          [&](size_t i, int&&) {
            if (i == 3) throw std::runtime_error("commit boom");
            ++commits;
          }),
      std::runtime_error);
  // Every queued task completed before the rethrow (no dangling frame
  // references), and commits stopped at the failing index.
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(commits, 3u);
}

TEST(ParallelRuntimeTest, WorkExceptionsRethrowOnCaller) {
  ParallelRuntime rt({.num_threads = 4});
  size_t commits = 0;
  EXPECT_THROW(
      rt.ForEachOrdered<int>(
          16, [](size_t i) { return i; }, [](size_t) { return 0.0; },
          [](size_t i) -> int {
            if (i == 5) throw std::runtime_error("boom");
            return static_cast<int>(i);
          },
          [&](size_t, int&&) { ++commits; }),
      std::runtime_error);
  EXPECT_EQ(commits, 5u);  // commits stop at the failed index
}

// ---------------------------------------------------------------------------
// BudgetGate.
// ---------------------------------------------------------------------------

TEST(BudgetGateTest, StrictCommitNeverOverspends) {
  BudgetGate gate(10.0);
  EXPECT_TRUE(gate.TrySpend(6.0));
  EXPECT_FALSE(gate.TrySpend(5.0));  // 6 + 5 > 10
  EXPECT_TRUE(gate.TrySpend(4.0));   // exactly to the cap
  EXPECT_DOUBLE_EQ(gate.committed(), 10.0);
  EXPECT_TRUE(gate.Exhausted());
  gate.Reset();
  EXPECT_DOUBLE_EQ(gate.committed(), 0.0);
  EXPECT_TRUE(gate.Admissible());
}

TEST(BudgetGateTest, ReservationsSettleToCommitOrRefund) {
  BudgetGate gate(10.0);
  gate.Reserve(4.0);
  gate.Reserve(8.0);
  EXPECT_DOUBLE_EQ(gate.reserved(), 12.0);
  EXPECT_TRUE(gate.CommitReserved(4.0));
  EXPECT_FALSE(gate.CommitReserved(8.0));  // 4 + 8 > 10: refused, refunded
  EXPECT_DOUBLE_EQ(gate.reserved(), 0.0);
  EXPECT_DOUBLE_EQ(gate.committed(), 4.0);
  gate.Refund(0.0);
  EXPECT_DOUBLE_EQ(gate.reserved(), 0.0);
}

TEST(BudgetGateTest, LegacySpendMayOvershootButPreCheckCloses) {
  BudgetGate gate(1.0);
  EXPECT_TRUE(gate.Admissible());
  gate.Spend(3.0);  // legacy FlightOne path
  EXPECT_DOUBLE_EQ(gate.committed(), 3.0);
  EXPECT_TRUE(gate.Exhausted());
}

TEST(BudgetGateTest, ConcurrentStrictSpendsNeverExceedCapacity) {
  BudgetGate gate(100.0);
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        gate.Reserve(0.25);
        if (gate.CommitReserved(0.25)) admitted.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(gate.committed(), 100.0 + 1e-9);
  EXPECT_DOUBLE_EQ(gate.reserved(), 0.0);
  EXPECT_EQ(admitted.load(), 400);  // 100.0 / 0.25
}

// ---------------------------------------------------------------------------
// FlightBatch: serial vs parallel byte-identity + budget under contention.
// ---------------------------------------------------------------------------

std::vector<flight::FlightRequest> MakeRequests(size_t count, uint64_t seed) {
  workload::WorkloadDriver driver(
      {.num_templates = 12, .jobs_per_day = static_cast<int>(count),
       .seed = seed});
  auto jobs = driver.DayJobs(0);
  std::vector<flight::FlightRequest> requests;
  for (size_t i = 0; i < jobs.size(); ++i) {
    flight::FlightRequest r;
    r.job = jobs[i];
    r.candidate = opt::RuleConfig::Default();
    // Mixed promise ordering so the batch sort actually reorders.
    r.est_cost_delta = (i % 2 == 0 ? -1.0 : 1.0) * static_cast<double>(i);
    requests.push_back(std::move(r));
  }
  return requests;
}

void ExpectResultsIdentical(const std::vector<flight::FlightResult>& a,
                            const std::vector<flight::FlightResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << i;
    EXPECT_EQ(a[i].job_id, b[i].job_id) << i;
    EXPECT_EQ(a[i].baseline.latency_sec, b[i].baseline.latency_sec) << i;
    EXPECT_EQ(a[i].baseline.pn_hours, b[i].baseline.pn_hours) << i;
    EXPECT_EQ(a[i].candidate.latency_sec, b[i].candidate.latency_sec) << i;
    EXPECT_EQ(a[i].candidate.pn_hours, b[i].candidate.pn_hours) << i;
    EXPECT_EQ(a[i].pn_hours_delta, b[i].pn_hours_delta) << i;
    EXPECT_EQ(a[i].latency_delta, b[i].latency_delta) << i;
    EXPECT_EQ(a[i].vertices_delta, b[i].vertices_delta) << i;
    EXPECT_EQ(a[i].data_read_delta, b[i].data_read_delta) << i;
    EXPECT_EQ(a[i].data_written_delta, b[i].data_written_delta) << i;
    EXPECT_EQ(a[i].machine_hours, b[i].machine_hours) << i;
  }
}

TEST(FlightBatchParallelTest, ParallelBatchIsByteIdenticalToSerial) {
  engine::ScopeEngine engine;
  flight::FlightingConfig config;
  config.queue_capacity = 64;
  flight::FlightingService serial(&engine, config);
  auto serial_results = serial.FlightBatch(MakeRequests(24, 77), 5);

  for (int threads : {2, 8}) {
    ParallelRuntime rt({.num_threads = threads});
    flight::FlightingService parallel(&engine, config, &rt);
    auto parallel_results = parallel.FlightBatch(MakeRequests(24, 77), 5);
    ExpectResultsIdentical(serial_results, parallel_results);
    EXPECT_DOUBLE_EQ(parallel.budget_used_hours(),
                     serial.budget_used_hours());
  }
}

TEST(FlightBatchParallelTest, ConstrainedBudgetIsByteIdenticalToSerial) {
  engine::ScopeEngine engine;
  // Probe the unconstrained total, then re-run with ~40% of it so admission
  // decisions (including strict refusals) fire mid-batch.
  flight::FlightingConfig probe_config;
  probe_config.queue_capacity = 64;
  flight::FlightingService probe(&engine, probe_config);
  probe.FlightBatch(MakeRequests(24, 78), 9);
  double total = probe.budget_used_hours();
  ASSERT_GT(total, 0.0);

  flight::FlightingConfig config;
  config.queue_capacity = 64;
  config.total_budget_machine_hours = 0.4 * total;
  flight::FlightingService serial(&engine, config);
  auto serial_results = serial.FlightBatch(MakeRequests(24, 78), 9);
  size_t rejected = 0;
  for (const auto& r : serial_results) {
    rejected += r.outcome == flight::FlightOutcome::kBudgetRejected;
  }
  EXPECT_GT(rejected, 0u);  // the constraint actually bit

  ParallelRuntime rt({.num_threads = 8});
  flight::FlightingService parallel(&engine, config, &rt);
  auto parallel_results = parallel.FlightBatch(MakeRequests(24, 78), 9);
  ExpectResultsIdentical(serial_results, parallel_results);
  EXPECT_DOUBLE_EQ(parallel.budget_used_hours(), serial.budget_used_hours());
}

TEST(FlightBatchParallelTest, BatchNeverOverspendsBudgetUnderContention) {
  engine::ScopeEngine engine;
  flight::FlightingConfig probe_config;
  probe_config.queue_capacity = 128;
  flight::FlightingService probe(&engine, probe_config);
  probe.FlightBatch(MakeRequests(48, 79), 3);
  double total = probe.budget_used_hours();

  flight::FlightingConfig config;
  config.queue_capacity = 128;
  config.total_budget_machine_hours = 0.3 * total;
  ParallelRuntime rt({.num_threads = 8});
  flight::FlightingService service(&engine, config, &rt);
  auto results = service.FlightBatch(MakeRequests(48, 79), 3);
  EXPECT_EQ(results.size(), 48u);
  EXPECT_GT(service.budget_used_hours(), 0.0);
  EXPECT_LE(service.budget_used_hours(),
            config.total_budget_machine_hours + 1e-9);
  EXPECT_DOUBLE_EQ(service.budget_gate().reserved(), 0.0);
}

// ---------------------------------------------------------------------------
// Feature generation determinism.
// ---------------------------------------------------------------------------

TEST(RuntimeDeterminismTest, GenerateFeaturesParallelMatchesSerial) {
  experiments::ExperimentEnv env(
      {.num_templates = 12, .jobs_per_day = 24, .seed = 5, .threads = 1});
  telemetry::WorkloadView view = env.BuildDayView(0);
  advisor::FeatureGenStats serial_stats;
  auto serial = advisor::GenerateFeatures(env.engine(), view, &serial_stats);

  ParallelRuntime rt({.num_threads = 8});
  advisor::FeatureGenStats parallel_stats;
  auto parallel =
      advisor::GenerateFeatures(env.engine(), view, &parallel_stats, &rt);

  EXPECT_EQ(serial_stats.input_jobs, parallel_stats.input_jobs);
  EXPECT_EQ(serial_stats.empty_span_dropped, parallel_stats.empty_span_dropped);
  EXPECT_EQ(serial_stats.compile_failures, parallel_stats.compile_failures);
  EXPECT_EQ(serial_stats.emitted, parallel_stats.emitted);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].row.job_id, parallel[i].row.job_id);
    EXPECT_EQ(serial[i].span, parallel[i].span);
    EXPECT_EQ(serial[i].default_compilation->est_cost,
              parallel[i].default_compilation->est_cost);
  }
}

// ---------------------------------------------------------------------------
// End-to-end pipeline determinism: 1, 2 and 8 threads must produce
// identical day reports and identical SIS contents.
// ---------------------------------------------------------------------------

struct PipelineRunOutput {
  std::vector<advisor::PipelineDayReport> reports;
  std::vector<std::string> sis_files;  ///< serialized upload history
  size_t active_hints = 0;
};

PipelineRunOutput RunPipelineDays(int threads, int days) {
  experiments::ExperimentEnv env({.num_templates = 24,
                                  .jobs_per_day = 48,
                                  .seed = 31,
                                  .threads = threads});
  sis::StatsInsightService sis;
  advisor::PipelineConfig config;
  config.flighting.total_budget_machine_hours = 1e6;
  config.validation.min_training_samples = 10;
  config.recommender.uniform_probes_per_job = 3;
  config.personalizer.epsilon = 0.2;
  config.runtime.num_threads = threads;
  advisor::QoAdvisorPipeline pipeline(&env.engine(), &sis, config);
  PipelineRunOutput out;
  for (int day = 0; day < days; ++day) {
    auto report = pipeline.RunDay(env.BuildDayView(day, &sis));
    EXPECT_TRUE(report.ok());
    if (report.ok()) out.reports.push_back(*report);
  }
  for (const auto& file : sis.history()) {
    out.sis_files.push_back(file.Serialize());
  }
  out.active_hints = sis.active_hints();
  return out;
}

void ExpectReportsEqual(const advisor::PipelineDayReport& a,
                        const advisor::PipelineDayReport& b) {
  EXPECT_EQ(a.day, b.day);
  EXPECT_EQ(a.feature_gen.input_jobs, b.feature_gen.input_jobs);
  EXPECT_EQ(a.feature_gen.empty_span_dropped, b.feature_gen.empty_span_dropped);
  EXPECT_EQ(a.feature_gen.compile_failures, b.feature_gen.compile_failures);
  EXPECT_EQ(a.feature_gen.emitted, b.feature_gen.emitted);
  EXPECT_EQ(a.recommender.jobs, b.recommender.jobs);
  EXPECT_EQ(a.recommender.lower_cost, b.recommender.lower_cost);
  EXPECT_EQ(a.recommender.equal_cost, b.recommender.equal_cost);
  EXPECT_EQ(a.recommender.higher_cost, b.recommender.higher_cost);
  EXPECT_EQ(a.recommender.recompile_failures, b.recommender.recompile_failures);
  EXPECT_EQ(a.recommender.noop_chosen, b.recommender.noop_chosen);
  EXPECT_EQ(a.recommender.forwarded, b.recommender.forwarded);
  EXPECT_EQ(a.flight_requests, b.flight_requests);
  EXPECT_EQ(a.flights_success, b.flights_success);
  EXPECT_EQ(a.flights_failure, b.flights_failure);
  EXPECT_EQ(a.flights_timeout, b.flights_timeout);
  EXPECT_EQ(a.flights_filtered, b.flights_filtered);
  EXPECT_EQ(a.validated, b.validated);
  EXPECT_EQ(a.hints_uploaded, b.hints_uploaded);
  EXPECT_EQ(a.flight_budget_used_hours, b.flight_budget_used_hours);
  EXPECT_EQ(a.validation_model_trained, b.validation_model_trained);
  // The canonical rendering covers every counter, guard fields included.
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(RuntimeDeterminismTest, PipelineDayRunsIdenticalAcrossThreadCounts) {
  const int kDays = 3;
  PipelineRunOutput serial = RunPipelineDays(1, kDays);
  ASSERT_EQ(serial.reports.size(), static_cast<size_t>(kDays));
  for (int threads : {2, 8}) {
    PipelineRunOutput parallel = RunPipelineDays(threads, kDays);
    ASSERT_EQ(parallel.reports.size(), serial.reports.size());
    for (size_t d = 0; d < serial.reports.size(); ++d) {
      ExpectReportsEqual(serial.reports[d], parallel.reports[d]);
    }
    // SIS contents — the pipeline's externally visible output — must be
    // byte-identical.
    EXPECT_EQ(serial.sis_files, parallel.sis_files);
    EXPECT_EQ(serial.active_hints, parallel.active_hints);
  }
}

}  // namespace
}  // namespace qo

// Advisor service tests: the env-snapshot-once contract of AdvisorOptions,
// the AdvisorApi request/response flow against per-tenant state, RCU
// snapshot-swap linearizability (a reader never observes a half-published
// snapshot), fully concurrent rank/reward/compile/upload from 8 threads x 4
// tenants with the background trainer live (the TSAN CI leg's target), and
// byte-identity of scripted per-tenant streams at 1 vs 4 serving threads —
// the service-layer extension of the runtime determinism contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "experiments/experiments.h"
#include "optimizer/rules.h"
#include "runtime/runtime.h"
#include "service/advisor_service.h"
#include "workload/workload.h"

namespace qo::service {
namespace {

// --- AdvisorOptions ---------------------------------------------------------

// Saves + restores one env var around a test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  void Set(const char* value) { ::setenv(name_.c_str(), value, 1); }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(AdvisorOptionsTest, DefaultsReadNothingFromEnv) {
  ScopedEnv threads("QO_THREADS", "9");
  AdvisorOptions options = AdvisorOptions::Defaults();
  EXPECT_EQ(options.runtime.num_threads, 1);
  EXPECT_EQ(options.retrain_period_ms, 0);
  EXPECT_FALSE(options.guard.enabled);
}

TEST(AdvisorOptionsTest, FromEnvSnapshotsOnce) {
  ScopedEnv threads("QO_THREADS", "3");
  ScopedEnv retrain("QO_SERVICE_RETRAIN_MS", "250");
  AdvisorOptions snapshot = AdvisorOptions::FromEnv();
  EXPECT_EQ(snapshot.runtime.num_threads, 3);
  EXPECT_EQ(snapshot.retrain_period_ms, 250);

  // Later env mutations are invisible to the captured snapshot; only a new
  // FromEnv() call observes them.
  threads.Set("7");
  retrain.Set("0");
  EXPECT_EQ(snapshot.runtime.num_threads, 3);
  EXPECT_EQ(snapshot.retrain_period_ms, 250);
  AdvisorOptions fresh = AdvisorOptions::FromEnv();
  EXPECT_EQ(fresh.runtime.num_threads, 7);
  EXPECT_EQ(fresh.retrain_period_ms, 0);
}

// --- Request/response flow --------------------------------------------------

// A tiny deterministic job for compile tests.
workload::JobInstance TestJob(int salt) {
  workload::WorkloadDriver driver({.num_templates = 4,
                                   .jobs_per_day = 8,
                                   .recurring_fraction = 1.0,
                                   .template_skew = 0.0,
                                   .seed = 42});
  std::vector<workload::JobInstance> jobs = driver.DayJobs(0);
  return jobs[static_cast<size_t>(salt) % jobs.size()];
}

RankRequest TestRank(const std::string& tenant, int i) {
  RankRequest rank;
  rank.tenant = tenant;
  rank.event_id = tenant + "-e" + std::to_string(i);
  rank.context.AddNamed("ctx", 1.0);
  for (int a = 0; a < 3; ++a) {
    bandit::RankableAction action;
    action.action_id = "a" + std::to_string(a);
    action.features.AddNamed("arm" + std::to_string(a), 1.0);
    rank.actions.push_back(std::move(action));
  }
  return rank;
}

TEST(AdvisorServiceTest, OpenTenantPublishesInitialSnapshot) {
  AdvisorService advisor;
  auto session = advisor.OpenTenant("t0");
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  std::shared_ptr<const ServiceSnapshot> snap = session->snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->sequence, 1u);
  EXPECT_EQ(snap->model_generation, 0u);
  ASSERT_NE(snap->hints, nullptr);
  EXPECT_EQ(snap->hints->version(), 0);
  EXPECT_EQ(snap->checksum, ServiceSnapshot::Fingerprint(*snap));

  EXPECT_TRUE(advisor.OpenTenant("t0").status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(advisor.Session("nope").status().IsNotFound());
  EXPECT_TRUE(advisor.Rank(TestRank("nope", 0)).status().IsNotFound());
  EXPECT_EQ(advisor.CurrentSnapshot("nope"), nullptr);
}

TEST(AdvisorServiceTest, RankRewardCompileUploadFlow) {
  AdvisorService advisor;
  auto session = advisor.OpenTenant("flow");
  ASSERT_TRUE(session.ok());

  // Rank returns a valid typed event bound to the initial snapshot.
  auto ranked = session->Rank(TestRank("flow", 0));
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  EXPECT_TRUE(ranked->event.valid());
  EXPECT_LT(ranked->chosen_index, 3u);
  EXPECT_EQ(ranked->snapshot_sequence, 1u);

  // Typed reward join; then a second reward on the same event must fail.
  auto rewarded = session->Reward(ranked->event, 0.5);
  ASSERT_TRUE(rewarded.ok()) << rewarded.status().ToString();
  EXPECT_EQ(rewarded->rewarded_events, 1u);
  EXPECT_FALSE(session->Reward(ranked->event, 0.5).ok());

  // String-fallback join for callers that only kept the id text.
  auto ranked2 = session->Rank(TestRank("flow", 1));
  ASSERT_TRUE(ranked2.ok());
  RewardRequest by_string;
  by_string.event_id = ranked2->event_id;
  by_string.reward = 1.0;
  auto rewarded2 = session->Reward(by_string);
  ASSERT_TRUE(rewarded2.ok()) << rewarded2.status().ToString();
  EXPECT_EQ(rewarded2->rewarded_events, 2u);

  // Compile before any hints: default config, version-0 snapshot view.
  workload::JobInstance job = TestJob(0);
  auto base = session->Compile(job);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_FALSE(base->hint_applied);
  EXPECT_EQ(base->rule_id, -1);
  EXPECT_EQ(base->sis_version, 0);

  // Upload a hint for the job's template; the republished snapshot carries
  // it to the very next compile.
  sis::HintFile hints;
  hints.day = 0;
  hints.entries.push_back({.template_name = job.template_name,
                           .rule_id = opt::rules::kBroadcastJoinAggressive,
                           .enable = true});
  auto upload = session->UploadHints(hints);
  ASSERT_TRUE(upload.ok()) << upload.status().ToString();
  EXPECT_EQ(upload->version, 1);
  EXPECT_EQ(upload->active_hints, 1u);
  EXPECT_GT(upload->snapshot_sequence, 1u);

  auto steered = session->Compile(job);
  ASSERT_TRUE(steered.ok());
  EXPECT_TRUE(steered->hint_applied);
  EXPECT_EQ(steered->rule_id, opt::rules::kBroadcastJoinAggressive);
  EXPECT_EQ(steered->sis_version, 1);

  // apply_hints=false bypasses the hint without touching the snapshot.
  auto unsteered = session->Compile(job, /*apply_hints=*/false);
  ASSERT_TRUE(unsteered.ok());
  EXPECT_FALSE(unsteered->hint_applied);
}

TEST(AdvisorServiceTest, TrainAndPublishAdvancesGenerations) {
  AdvisorService advisor;
  auto session = advisor.OpenTenant("train");
  ASSERT_TRUE(session.ok());

  // Nothing pending: no cycle, no publication.
  EXPECT_FALSE(session->TrainAndPublish());
  EXPECT_EQ(session->snapshot()->sequence, 1u);

  for (int i = 0; i < 8; ++i) {
    auto ranked = session->Rank(TestRank("train", i));
    ASSERT_TRUE(ranked.ok());
    ASSERT_TRUE(session->Reward(ranked->event, i % 2 == 0 ? 1.0 : 0.0).ok());
  }
  EXPECT_TRUE(session->TrainAndPublish());
  std::shared_ptr<const ServiceSnapshot> snap = session->snapshot();
  EXPECT_EQ(snap->model_generation, 1u);
  EXPECT_EQ(snap->sequence, 2u);
  EXPECT_GT(snap->model.updates(), 0u);
  EXPECT_EQ(snap->checksum, ServiceSnapshot::Fingerprint(*snap));

  // The drained batch is gone: a second cycle has nothing to train on.
  EXPECT_FALSE(session->TrainAndPublish());
}

// --- RCU linearizability ----------------------------------------------------

// Readers spin on the snapshot while a writer keeps retraining/uploading:
// every observed snapshot must be internally consistent (checksum matches a
// recomputed fingerprint — no half-published state) and sequences must be
// monotone per reader. TSAN covers the memory-order claims in CI.
TEST(AdvisorServiceConcurrencyTest, SnapshotSwapLinearizability) {
  AdvisorService advisor;
  auto session = advisor.OpenTenant("rcu");
  ASSERT_TRUE(session.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> non_monotone{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&advisor, &stop, &torn, &non_monotone] {
      uint64_t last_seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const ServiceSnapshot> snap =
            advisor.CurrentSnapshot("rcu");
        if (snap == nullptr || snap->hints == nullptr ||
            snap->checksum != ServiceSnapshot::Fingerprint(*snap)) {
          torn.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (snap->sequence < last_seq) {
          non_monotone.fetch_add(1, std::memory_order_relaxed);
        }
        last_seq = snap->sequence;
      }
    });
  }

  // Writer: interleave reward traffic, retrains and hint uploads.
  for (int i = 0; i < 200; ++i) {
    auto ranked = session->Rank(TestRank("rcu", i));
    ASSERT_TRUE(ranked.ok());
    ASSERT_TRUE(session->Reward(ranked->event, (i % 3) / 2.0).ok());
    if (i % 5 == 4) session->TrainAndPublish();
    if (i % 50 == 49) {
      sis::HintFile hints;
      hints.day = i / 50;
      hints.entries.push_back(
          {.template_name = "T" + std::to_string(i / 50),
           .rule_id = opt::rules::kBroadcastJoinAggressive,
           .enable = true});
      ASSERT_TRUE(session->UploadHints(hints).ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(non_monotone.load(), 0);
  EXPECT_GE(session->snapshot()->sequence, 40u);
}

// 8 serving threads x 4 tenants, every API op in the mix, background
// trainer swapping snapshots at 1ms — the full concurrent-serving shape.
// Assertions are counted (per-op EXPECTs from multiple threads are fine in
// gtest, but keeping shared state in atomics makes failures readable).
TEST(AdvisorServiceConcurrencyTest, ConcurrentServingAcrossTenants) {
  AdvisorOptions options;
  AdvisorService advisor(options);
  const int kTenants = 4;
  const int kThreads = 8;
  const int kOpsPerThread = 60;
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(advisor.OpenTenant("tenant" + std::to_string(t)).ok());
  }
  advisor.StartBackgroundTrainer(std::chrono::milliseconds(1));
  ASSERT_TRUE(advisor.background_trainer_running());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&advisor, &failures, w] {
      const std::string tenant = "tenant" + std::to_string(w % kTenants);
      auto session = advisor.Session(tenant);
      if (!session.ok()) {
        failures.fetch_add(1000);
        return;
      }
      workload::JobInstance job = TestJob(w);
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Unique event ids per (thread, op): rank + typed reward.
        auto ranked = session->Rank(
            TestRank(tenant + "-w" + std::to_string(w), i));
        if (!ranked.ok() || !ranked->event.valid()) failures.fetch_add(1);
        if (ranked.ok() && !session->Reward(ranked->event, 0.25).ok()) {
          failures.fetch_add(1);
        }
        if (!session->Compile(job).ok()) failures.fetch_add(1);
        if (i % 16 == 15) {
          char tpl[32];
          std::snprintf(tpl, sizeof(tpl), "W%d_%d", w, i);
          sis::HintFile hints;
          hints.day = w * kOpsPerThread + i;
          hints.entries.push_back(
              {.template_name = tpl,
               .rule_id = opt::rules::kEagerAggregationLeft,
               .enable = true});
          if (!session->UploadHints(hints).ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  advisor.StopBackgroundTrainer();
  EXPECT_FALSE(advisor.background_trainer_running());
  EXPECT_EQ(failures.load(), 0);

  // Post-run: every tenant's final snapshot is coherent and the learner
  // absorbed every reward (8 threads x 60 ops / 4 tenants each).
  for (int t = 0; t < kTenants; ++t) {
    auto snap = advisor.CurrentSnapshot("tenant" + std::to_string(t));
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->checksum, ServiceSnapshot::Fingerprint(*snap));
  }
}

// --- Determinism across thread counts --------------------------------------

// Scripted per-tenant streams: the tenant is the unit of parallelism, so
// transcripts must be byte-identical no matter how many runtime threads
// serve them (timing-dependent snapshot swaps are pinned by synchronous
// TrainAndPublish inside each stream).
std::string ScriptedStream(AdvisorService& advisor, int tenant_idx, int ops) {
  const std::string tenant = "s" + std::to_string(tenant_idx);
  auto session = advisor.Session(tenant);
  if (!session.ok()) return "open-failed";
  workload::JobInstance job = TestJob(tenant_idx);
  std::string transcript;
  char line[160];
  for (int i = 0; i < ops; ++i) {
    auto compiled = session->Compile(job);
    if (!compiled.ok()) return "compile-failed";
    auto ranked = session->Rank(TestRank(tenant, i));
    if (!ranked.ok()) return "rank-failed";
    if (!session->Reward(ranked->event, (i % 5) / 4.0).ok()) {
      return "reward-failed";
    }
    std::snprintf(line, sizeof(line), "%d %.6f %d %zu %s %.4f %llu\n", i,
                  compiled->compilation->est_cost, compiled->sis_version,
                  ranked->chosen_index, ranked->chosen_action_id.c_str(),
                  ranked->probability,
                  static_cast<unsigned long long>(ranked->snapshot_sequence));
    transcript += line;
    if (i % 10 == 9) session->TrainAndPublish();
    if (i == ops / 2) {
      sis::HintFile hints;
      hints.day = 0;
      hints.entries.push_back(
          {.template_name = job.template_name,
           .rule_id = opt::rules::kBroadcastJoinAggressive,
           .enable = true});
      if (!session->UploadHints(hints).ok()) return "upload-failed";
    }
  }
  return transcript;
}

std::vector<std::string> RunScripted(int num_threads, int tenants, int ops) {
  AdvisorOptions options;
  options.runtime.num_threads = num_threads;
  AdvisorService advisor(options);
  for (int t = 0; t < tenants; ++t) {
    char name[16];
    std::snprintf(name, sizeof(name), "s%d", t);
    EXPECT_TRUE(advisor.OpenTenant(name).ok());
  }
  runtime::ParallelRuntime runtime(options.runtime);
  return runtime.TransformOrdered<std::string>(
      static_cast<size_t>(tenants),
      [](size_t i) { return static_cast<uint64_t>(i); },
      [](size_t i) { return static_cast<double>(i); },
      [&advisor, ops](size_t i) {
        return ScriptedStream(advisor, static_cast<int>(i), ops);
      });
}

TEST(AdvisorServiceDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  const int kTenants = 3;
  const int kOps = 40;
  std::vector<std::string> serial = RunScripted(1, kTenants, kOps);
  std::vector<std::string> parallel = RunScripted(4, kTenants, kOps);
  ASSERT_EQ(serial.size(), parallel.size());
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(serial[static_cast<size_t>(t)],
              parallel[static_cast<size_t>(t)])
        << "tenant " << t << " transcript differs between 1 and 4 threads";
    EXPECT_GT(serial[static_cast<size_t>(t)].size(), 0u);
  }
}

// --- Offline pipeline through the service ----------------------------------

// A pipeline tenant borrows the harness engine and keeps the offline
// retrain cadence; RunPipelineDay republishes the snapshot each day.
TEST(AdvisorServicePipelineTest, RunPipelineDayPublishes) {
  experiments::ExperimentEnv env(
      {.num_templates = 20, .jobs_per_day = 40, .seed = 11});
  AdvisorService advisor;
  TenantConfig tenant;
  tenant.engine = &env.engine();
  tenant.service_owns_retrain = false;
  tenant.pipeline.validation.min_training_samples = 10;
  auto session = advisor.OpenTenant("pipe", tenant);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  uint64_t last_seq = session->snapshot()->sequence;
  for (int day = 0; day < 3; ++day) {
    telemetry::WorkloadView view = env.BuildDayView(day, &session->sis());
    auto report = session->RunPipelineDay(view);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->feature_gen.input_jobs, 0u);
    std::shared_ptr<const ServiceSnapshot> snap = session->snapshot();
    EXPECT_GT(snap->sequence, last_seq);
    EXPECT_EQ(snap->checksum, ServiceSnapshot::Fingerprint(*snap));
    last_seq = snap->sequence;
  }
  ASSERT_NE(session->pipeline(), nullptr);
}

}  // namespace
}  // namespace qo::service

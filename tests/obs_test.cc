// Observability tests: histogram bucket math and deterministic quantiles
// against hand-computed goldens, snapshot-merge associativity across shards,
// concurrent increment stress (exercised under TSAN in CI), registry
// collector plumbing, run-report formatting, the Chrome-trace sink, and —
// the load-bearing property — byte-identity of the fig10/table2 pipeline
// with metrics on vs off.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "experiments/experiments.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace qo::obs {
namespace {

// Restores env-derived metrics dispatch after each test that forces it.
struct MetricsOverrideGuard {
  explicit MetricsOverrideGuard(int state) { SetMetricsEnabledForTest(state); }
  ~MetricsOverrideGuard() { SetMetricsEnabledForTest(-1); }
};

// --- Bucket math ------------------------------------------------------------

TEST(HistogramBucketTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(hist::BucketIndex(v), v);
    EXPECT_EQ(hist::BucketLowerBound(v), v);
    EXPECT_EQ(hist::BucketUpperBound(v), v);
  }
}

TEST(HistogramBucketTest, HandComputedGoldens) {
  // [4, 8) splits into 4 sub-buckets of width 1: indices 4..7.
  EXPECT_EQ(hist::BucketIndex(4), 4u);
  EXPECT_EQ(hist::BucketIndex(5), 5u);
  EXPECT_EQ(hist::BucketIndex(7), 7u);
  // [8, 16) -> width-2 sub-buckets: 8,9 -> idx 8; 14,15 -> idx 11.
  EXPECT_EQ(hist::BucketIndex(8), 8u);
  EXPECT_EQ(hist::BucketIndex(9), 8u);
  EXPECT_EQ(hist::BucketIndex(14), 11u);
  EXPECT_EQ(hist::BucketIndex(15), 11u);
  // 100 lies in [64, 128), sub-bucket width 16: [96, 112) -> idx 4+(6-2)*4+2.
  EXPECT_EQ(hist::BucketIndex(100), 22u);
  EXPECT_EQ(hist::BucketLowerBound(22), 96u);
  EXPECT_EQ(hist::BucketUpperBound(22), 111u);
}

TEST(HistogramBucketTest, BoundsRoundTripEveryBucket) {
  for (size_t idx = 0; idx < hist::kNumBuckets; ++idx) {
    const uint64_t lo = hist::BucketLowerBound(idx);
    const uint64_t hi = hist::BucketUpperBound(idx);
    ASSERT_LE(lo, hi);
    EXPECT_EQ(hist::BucketIndex(lo), idx);
    EXPECT_EQ(hist::BucketIndex(hi), idx);
    if (idx + 1 < hist::kNumBuckets) {
      EXPECT_EQ(hist::BucketLowerBound(idx + 1), hi + 1);
    }
  }
  EXPECT_EQ(hist::BucketUpperBound(hist::kNumBuckets - 1), UINT64_MAX);
}

// --- Quantiles --------------------------------------------------------------

TEST(HistogramQuantileTest, DeterministicGoldensFor1To100) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, 100u);
  EXPECT_EQ(snap.sum, 5050u);
  // p50 -> rank 50 -> bucket [48, 55] (value 50 lands there): upper bound 55.
  EXPECT_EQ(snap.Quantile(0.50), 55u);
  // p95 -> rank 95 -> bucket [80, 95]: upper bound 95.
  EXPECT_EQ(snap.Quantile(0.95), 95u);
  // p99 -> rank 99 -> bucket [96, 111]: upper bound 111.
  EXPECT_EQ(snap.Quantile(0.99), 111u);
  EXPECT_EQ(snap.MaxValue(), 111u);
  // Extremes clamp to the first/last occupied rank.
  EXPECT_EQ(snap.Quantile(0.0), 1u);
  EXPECT_EQ(snap.Quantile(1.0), 111u);
}

TEST(HistogramQuantileTest, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_EQ(h.Snapshot().Quantile(0.5), 0u);
  EXPECT_EQ(h.Snapshot().MaxValue(), 0u);
  h.Record(42);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Snapshot().Quantile(q), hist::BucketUpperBound(
                                            hist::BucketIndex(42)));
  }
}

TEST(HistogramQuantileTest, QuantilesAreOrderIndependent) {
  Histogram forward;
  Histogram backward;
  for (uint64_t v = 1; v <= 1000; ++v) forward.Record(v * 7);
  for (uint64_t v = 1000; v >= 1; --v) backward.Record(v * 7);
  for (double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_EQ(forward.Snapshot().Quantile(q), backward.Snapshot().Quantile(q));
  }
}

// --- Merge associativity ----------------------------------------------------

TEST(SnapshotMergeTest, ShardMergesAssociativeInAnyGrouping) {
  Histogram h;
  // Record from several threads so multiple shards are populated.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t v = 0; v < 500; ++v) h.Record(v * (t + 1));
    });
  }
  for (auto& th : threads) th.join();

  const HistogramSnapshot full = h.Snapshot();
  EXPECT_EQ(full.total, 8u * 500u);

  // Left fold: ((s0 + s1) + s2) + s3.
  HistogramSnapshot left;
  for (unsigned s = 0; s < Histogram::kHistShards; ++s) {
    left.Merge(h.ShardSnapshot(s));
  }
  // Pairwise tree: (s0 + s2) + (s3 + s1).
  HistogramSnapshot a = h.ShardSnapshot(0);
  a.Merge(h.ShardSnapshot(2));
  HistogramSnapshot b = h.ShardSnapshot(3);
  b.Merge(h.ShardSnapshot(1));
  a.Merge(b);

  EXPECT_EQ(left.counts, full.counts);
  EXPECT_EQ(a.counts, full.counts);
  EXPECT_EQ(left.total, full.total);
  EXPECT_EQ(a.total, full.total);
  EXPECT_EQ(left.sum, full.sum);
  EXPECT_EQ(a.sum, full.sum);
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(left.Quantile(q), full.Quantile(q));
    EXPECT_EQ(a.Quantile(q), full.Quantile(q));
  }
}

TEST(SnapshotMergeTest, CounterShardsSumToValue) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), 60000u);
  uint64_t shard_sum = 0;
  for (unsigned s = 0; s < detail::kShards; ++s) shard_sum += c.ShardValue(s);
  EXPECT_EQ(shard_sum, 60000u);
}

// --- Concurrent stress (TSAN coverage) --------------------------------------

TEST(ConcurrencyStressTest, CountersHistogramsAndSnapshotsRace) {
  MetricsOverrideGuard on(1);
  Counter& counter = Registry::Get().counter("obs_test.stress_counter");
  Histogram& histo = Registry::Get().histogram("obs_test.stress_hist");
  Gauge& gauge = Registry::Get().gauge("obs_test.stress_gauge");
  counter.ResetForTest();
  histo.ResetForTest();

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.Add();
        histo.Record(static_cast<uint64_t>(i % 257));
        if (i % 512 == 0) gauge.Set(static_cast<double>(t));
      }
    });
  }
  // Snapshot concurrently with the writers: must be race-free (values are
  // only monotone-approximate while writers run).
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = Registry::Get().Snapshot();
    EXPECT_LE(snap.SeriesValue("obs_test.stress_counter"),
              static_cast<double>(kThreads) * kIters);
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(histo.Snapshot().total, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ConcurrencyStressTest, SpanSitesRaceOnFirstResolve) {
  MetricsOverrideGuard on(1);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 2000; ++i) {
        QO_OBS_SPAN("obs_test.stress_span");
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot snap =
      Registry::Get().histogram("span.obs_test.stress_span").Snapshot();
  EXPECT_GE(snap.total, static_cast<uint64_t>(kThreads) * 2000u);
}

// --- Registry + collectors --------------------------------------------------

TEST(RegistryTest, StablePointersAndHeterogeneousLookup) {
  Counter& a = Registry::Get().counter("obs_test.registry_counter");
  Counter& b = Registry::Get().counter(std::string("obs_test.registry_counter"));
  EXPECT_EQ(&a, &b);
  Histogram& h1 = Registry::Get().histogram("obs_test.registry_hist");
  Histogram& h2 = Registry::Get().histogram("obs_test.registry_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, CollectorsExportAndSumDuplicateSeries) {
  const int id1 = Registry::Get().AddCollector(
      [](SeriesSink& sink) { sink.Add("obs_test.collector_series", 2.0); });
  const int id2 = Registry::Get().AddCollector(
      [](SeriesSink& sink) { sink.Add("obs_test.collector_series", 3.0); });
  MetricsSnapshot snap = Registry::Get().Snapshot();
  EXPECT_EQ(snap.SeriesValue("obs_test.collector_series"), 5.0);
  Registry::Get().RemoveCollector(id1);
  Registry::Get().RemoveCollector(id2);
  snap = Registry::Get().Snapshot();
  EXPECT_FALSE(snap.HasSeries("obs_test.collector_series"));
}

TEST(SpanTest, DisabledSpansRecordNothing) {
  MetricsOverrideGuard off(0);
  Histogram& h = Registry::Get().histogram("span.obs_test.noop_span");
  const uint64_t before = h.Snapshot().total;
  for (int i = 0; i < 100; ++i) {
    QO_OBS_SPAN("obs_test.noop_span");
  }
  EXPECT_EQ(h.Snapshot().total, before);
}

TEST(SpanTest, SamplingRecordsEveryNthExecution) {
  MetricsOverrideGuard on(1);
  SetSampleEveryForTest(10);
  Histogram& h = Registry::Get().histogram("span.obs_test.sampled_span");
  const uint64_t before = h.Snapshot().total;
  for (int i = 0; i < 100; ++i) {
    QO_OBS_SPAN("obs_test.sampled_span");
  }
  SetSampleEveryForTest(0);
  // The site counter starts at this test's first execution, so exactly
  // executions 0, 10, ..., 90 record.
  EXPECT_EQ(h.Snapshot().total, before + 10);
}

TEST(SpanTest, DefaultSamplingRecordsEverySpan) {
  MetricsOverrideGuard on(1);
  SetSampleEveryForTest(1);
  Histogram& h = Registry::Get().histogram("span.obs_test.unsampled_span");
  const uint64_t before = h.Snapshot().total;
  for (int i = 0; i < 25; ++i) {
    QO_OBS_SPAN("obs_test.unsampled_span");
  }
  SetSampleEveryForTest(0);
  EXPECT_EQ(h.Snapshot().total, before + 25);
}

// --- Run report -------------------------------------------------------------

TEST(RunReportTest, JsonLineHasSeriesAndQuantiles) {
  MetricsOverrideGuard on(1);
  Registry::Get().counter("obs_test.report_counter").Add(7);
  Histogram& h = Registry::Get().histogram("obs_test.report_hist");
  h.ResetForTest();
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);

  const std::string line =
      RunReportJsonLine("report \"label\"", 3, Registry::Get().Snapshot());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"label\":\"report \\\"label\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"day\":3"), std::string::npos);
  EXPECT_NE(line.find("\"obs_test.report_counter\":7"), std::string::npos);
  EXPECT_NE(line.find("\"obs_test.report_hist\":{\"count\":100,\"sum_ns\":5050,"
                      "\"p50_ns\":55,\"p95_ns\":95,\"p99_ns\":111,"
                      "\"max_ns\":111}"),
            std::string::npos);
}

TEST(RunReportTest, TextDumpListsSeries) {
  MetricsOverrideGuard on(1);
  Registry::Get().counter("obs_test.text_counter").Add(11);
  const std::string text = RunReportText(Registry::Get().Snapshot());
  EXPECT_NE(text.find("obs_test.text_counter"), std::string::npos);
}

// --- Chrome trace sink ------------------------------------------------------

TEST(TraceTest, WritesChromeTraceJson) {
  MetricsOverrideGuard on(1);
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  SetTracePathForTest(path.c_str());
  EXPECT_TRUE(TraceEnabled());
  {
    QO_OBS_SPAN("obs_test.traced_span");
  }
  EXPECT_TRUE(FlushTraceNow());
  SetTracePathForTest(nullptr);

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_NE(content.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"obs_test.traced_span\""),
            std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.find("\"ts\":"), std::string::npos);
  EXPECT_NE(content.find("\"dur\":"), std::string::npos);
}

TEST(TraceTest, DisabledWithoutPathOrMetrics) {
  SetTracePathForTest(nullptr);  // env QO_TRACE unset in the test harness
  {
    MetricsOverrideGuard on(1);
    EXPECT_FALSE(TraceEnabled());
  }
  const std::string path = ::testing::TempDir() + "/obs_test_trace_off.json";
  SetTracePathForTest(path.c_str());
  {
    MetricsOverrideGuard off(0);
    EXPECT_FALSE(TraceEnabled());
  }
  SetTracePathForTest(nullptr);
}

// --- Byte-identity of the fig10/table2 pipeline, metrics on vs off ----------

experiments::AggregateImpactResult RunSmallImpact(int threads) {
  // 60x90 with 14 train days is the smallest scale at which the validation
  // model accumulates enough samples for hints to go live (see the
  // EndToEndPipelineImpactIsNetPositive comment in experiments_test), so the
  // matched_jobs > 0 guard below has teeth.
  experiments::ExperimentEnv env(
      {.num_templates = 60, .jobs_per_day = 90, .threads = threads});
  return experiments::RunAggregateImpact(env, /*train_days=*/14,
                                         /*eval_days=*/4);
}

TEST(MetricsIdentityTest, Fig10PipelineByteIdenticalMetricsOnOff) {
  SetMetricsEnabledForTest(1);
  experiments::AggregateImpactResult on1 = RunSmallImpact(/*threads=*/1);
  experiments::AggregateImpactResult on4 = RunSmallImpact(/*threads=*/4);
  SetMetricsEnabledForTest(0);
  experiments::AggregateImpactResult off1 = RunSmallImpact(/*threads=*/1);
  experiments::AggregateImpactResult off4 = RunSmallImpact(/*threads=*/4);
  SetMetricsEnabledForTest(-1);

  ASSERT_GT(on1.matched_jobs, 0);
  auto expect_equal = [](const experiments::AggregateImpactResult& a,
                         const experiments::AggregateImpactResult& b,
                         const char* label) {
    EXPECT_EQ(a.matched_jobs, b.matched_jobs) << label;
    EXPECT_EQ(a.active_hints, b.active_hints) << label;
    EXPECT_EQ(a.pn_hours_reduction, b.pn_hours_reduction) << label;
    EXPECT_EQ(a.latency_reduction, b.latency_reduction) << label;
    EXPECT_EQ(a.vertices_reduction, b.vertices_reduction) << label;
    EXPECT_EQ(a.pn_deltas, b.pn_deltas) << label;
    EXPECT_EQ(a.latency_deltas, b.latency_deltas) << label;
    EXPECT_EQ(a.vertices_deltas, b.vertices_deltas) << label;
  };
  expect_equal(on1, off1, "threads=1 on vs off");
  expect_equal(on1, on4, "on: threads 1 vs 4");
  expect_equal(on1, off4, "threads=4 off vs threads=1 on");
}

// The pipeline surfaces every legacy telemetry struct as registry series.
TEST(MetricsIdentityTest, PipelineRunExportsAllTelemetrySurfaces) {
  MetricsOverrideGuard on(1);
  // Earlier tests in this process have already recorded spans; zero
  // everything so the per-phase counts below are deterministic.
  Registry::Get().ZeroAllForTest();
  experiments::ExperimentEnv env(
      {.num_templates = 30, .jobs_per_day = 40, .threads = 1});
  sis::StatsInsightService sis;
  advisor::PipelineConfig config;
  config.runtime = env.runtime_options();
  advisor::QoAdvisorPipeline pipeline(&env.engine(), &sis, config,
                                      env.runtime());
  for (int day = 0; day < 2; ++day) {
    auto report = pipeline.RunDay(env.BuildDayView(day, &sis));
    ASSERT_TRUE(report.ok());
  }
  MetricsSnapshot snap = Registry::Get().Snapshot();
  // One representative series per ported surface.
  EXPECT_TRUE(snap.HasSeries("cache.enabled"));
  EXPECT_TRUE(snap.HasSeries("optimizer.memo.enabled"));
  EXPECT_TRUE(snap.HasSeries("exec.prepared_enabled"));
  EXPECT_TRUE(snap.HasSeries("bandit.ranks"));
  EXPECT_TRUE(snap.HasSeries("bandit.retention_window"));
  EXPECT_TRUE(snap.HasSeries("flight.budget_total_hours"));
  EXPECT_TRUE(snap.HasSeries("sis.active_hints"));
  EXPECT_TRUE(snap.HasSeries("pipeline.days"));
  EXPECT_EQ(snap.SeriesValue("pipeline.days"), 2.0);
  // Phase timers populated by the run.
  const HistogramSnapshot* compile = snap.FindHistogram("span.compile");
  ASSERT_NE(compile, nullptr);
  EXPECT_GT(compile->total, 0u);
  EXPECT_GT(compile->Quantile(0.5), 0u);
  const HistogramSnapshot* run_day = snap.FindHistogram("span.run_day");
  ASSERT_NE(run_day, nullptr);
  EXPECT_EQ(run_day->total, 2u);
}

}  // namespace
}  // namespace qo::obs

// Contextual bandit tests: featurization, model learning, the Personalizer
// service contract, and offline (IPS) evaluation.
#include <gtest/gtest.h>

#include "bandit/cb_model.h"
#include "bandit/features.h"
#include "bandit/personalizer.h"

#include "optimizer/rules.h"

namespace qo::bandit {
namespace {

TEST(FeaturesTest, ContextIncludesSpanAndCooccurrences) {
  JobContext ctx;
  ctx.span = BitVector256::FromPositions({41, 44, 50});
  ctx.row_count = 1e6;
  FeatureVector f = BuildContextFeatures(ctx);
  // 3 first-order + 3 pairs + 1 triple + 4 buckets + bias = 12.
  EXPECT_EQ(f.size(), 12u);
}

TEST(FeaturesTest, TriplesAreCapped) {
  std::vector<int> many;
  for (int i = 40; i < 70; ++i) many.push_back(i);
  JobContext ctx;
  ctx.span = BitVector256::FromPositions(many);
  FeatureVector f = BuildContextFeatures(ctx);
  // 30 singles + C(30,2)=435 pairs + C(12,3)=220 capped triples + 5 misc.
  EXPECT_EQ(f.size(), 30u + 435u + 220u + 5u);
}

TEST(FeaturesTest, ActionFeaturesEncodeRuleAndCategory) {
  FeatureVector noop = BuildActionFeatures(-1, true);
  EXPECT_EQ(noop.size(), 1u);
  FeatureVector flip = BuildActionFeatures(opt::rules::kHashJoinImpl, false);
  EXPECT_EQ(flip.size(), 2u);  // rule id + category
}

TEST(FeaturesTest, CombineAddsQuadraticInteractions) {
  FeatureVector shared;
  shared.AddNamed("a", 1.0);
  shared.AddNamed("b", 1.0);
  FeatureVector action;
  action.AddNamed("x", 1.0);
  auto combined = CombineFeatures(shared, action);
  EXPECT_EQ(combined.size(), 2u + 1u + 2u);  // shared + action + cross
}

TEST(FeaturesTest, HashingIsStable) {
  EXPECT_EQ(HashFeatureName("span_41"), HashFeatureName("span_41"));
  EXPECT_NE(HashFeatureName("span_41"), HashFeatureName("span_42"));
}

TEST(CbModelTest, LearnsLinearRewards) {
  // Two actions: action A pays 2.0, action B pays 0.5; contexts irrelevant.
  CbModel model({.learning_rate = 0.2, .epochs = 50});
  FeatureVector fa = BuildActionFeatures(10, false);
  FeatureVector fb = BuildActionFeatures(20, false);
  FeatureVector shared;
  shared.AddNamed("bias", 1.0);
  std::vector<LoggedExample> examples;
  for (int i = 0; i < 50; ++i) {
    examples.push_back({CombineFeatures(shared, fa), 2.0, 0.5});
    examples.push_back({CombineFeatures(shared, fb), 0.5, 0.5});
  }
  model.Train(examples);
  EXPECT_GT(model.Score(CombineFeatures(shared, fa)),
            model.Score(CombineFeatures(shared, fb)));
  EXPECT_NEAR(model.Score(CombineFeatures(shared, fa)), 2.0, 0.4);
  EXPECT_NEAR(model.Score(CombineFeatures(shared, fb)), 0.5, 0.4);
}

TEST(CbModelTest, LearnsContextDependentPolicy) {
  // Action A is good only in context 1; action B only in context 2.
  CbModel model({.learning_rate = 0.3, .epochs = 80});
  FeatureVector c1, c2;
  c1.AddNamed("ctx1", 1.0);
  c2.AddNamed("ctx2", 1.0);
  FeatureVector fa = BuildActionFeatures(10, false);
  FeatureVector fb = BuildActionFeatures(20, false);
  std::vector<LoggedExample> examples;
  for (int i = 0; i < 100; ++i) {
    examples.push_back({CombineFeatures(c1, fa), 2.0, 0.5});
    examples.push_back({CombineFeatures(c1, fb), 0.2, 0.5});
    examples.push_back({CombineFeatures(c2, fa), 0.2, 0.5});
    examples.push_back({CombineFeatures(c2, fb), 2.0, 0.5});
  }
  model.Train(examples);
  EXPECT_GT(model.Score(CombineFeatures(c1, fa)),
            model.Score(CombineFeatures(c1, fb)));
  EXPECT_LT(model.Score(CombineFeatures(c2, fa)),
            model.Score(CombineFeatures(c2, fb)));
}

std::vector<RankableAction> ThreeActions() {
  std::vector<RankableAction> actions;
  for (int i = 0; i < 3; ++i) {
    RankableAction a;
    a.action_id = "a";
    a.action_id += std::to_string(i);
    a.features = BuildActionFeatures(40 + i, false);
    actions.push_back(std::move(a));
  }
  return actions;
}

TEST(PersonalizerTest, RankRequiresActionsAndUniqueEventIds) {
  PersonalizerService service;
  RankRequest empty;
  empty.event_id = "e0";
  EXPECT_FALSE(service.Rank(empty).ok());

  RankRequest req;
  req.event_id = "e1";
  req.actions = ThreeActions();
  EXPECT_TRUE(service.Rank(req).ok());
  EXPECT_FALSE(service.Rank(req).ok());  // duplicate id
}

TEST(PersonalizerTest, UniformExplorationHasUniformPropensity) {
  PersonalizerService service({.seed = 4});
  RankRequest req;
  req.event_id = "e";
  req.actions = ThreeActions();
  req.explore_uniform = true;
  auto resp = service.Rank(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_NEAR(resp->probability, 1.0 / 3.0, 1e-12);
}

TEST(PersonalizerTest, RewardJoinSemantics) {
  PersonalizerService service;
  RankRequest req;
  req.event_id = "e1";
  req.actions = ThreeActions();
  ASSERT_TRUE(service.Rank(req).ok());
  EXPECT_TRUE(service.Reward("e1", 1.5).ok());
  // Double reward and unknown events are rejected.
  EXPECT_FALSE(service.Reward("e1", 1.0).ok());
  EXPECT_TRUE(service.Reward("ghost", 1.0).IsNotFound());
  EXPECT_EQ(service.rewarded_events(), 1u);
  EXPECT_EQ(service.logged_events(), 1u);
}

TEST(PersonalizerTest, ColdStartRanksUniformly) {
  // With an untrained model all scores tie at zero; ties break randomly, so
  // all actions should be chosen across many requests.
  PersonalizerService service({.epsilon = 0.0, .seed = 8});
  std::set<std::string> chosen;
  for (int i = 0; i < 60; ++i) {
    RankRequest req;
    req.event_id = "e";
    req.event_id += std::to_string(i);
    req.actions = ThreeActions();
    auto resp = service.Rank(req);
    ASSERT_TRUE(resp.ok());
    chosen.insert(resp->chosen_action_id);
  }
  EXPECT_EQ(chosen.size(), 3u);
}

TEST(PersonalizerTest, LearnsToPickTheGoodAction) {
  PersonalizerService service(
      {.epsilon = 0.1, .model = {.epochs = 5}, .seed = 6,
       .retrain_interval = 50});
  // Reward structure: action a1 pays 2.0, others 0.5.
  for (int i = 0; i < 400; ++i) {
    RankRequest req;
    req.event_id = "train";
    req.event_id += std::to_string(i);
    req.actions = ThreeActions();
    req.explore_uniform = true;
    auto resp = service.Rank(req);
    ASSERT_TRUE(resp.ok());
    double reward = resp->chosen_action_id == "a1" ? 2.0 : 0.5;
    ASSERT_TRUE(service.Reward(resp->event_id, reward).ok());
  }
  service.Retrain();
  int picked_good = 0;
  const int kTrials = 100;
  for (int i = 0; i < kTrials; ++i) {
    RankRequest req;
    req.event_id = "test";
    req.event_id += std::to_string(i);
    req.actions = ThreeActions();
    auto resp = service.Rank(req);
    ASSERT_TRUE(resp.ok());
    picked_good += resp->chosen_action_id == "a1";
  }
  // Greedy (1 - epsilon) plus a share of exploration.
  EXPECT_GT(picked_good, 75);
}

TEST(PersonalizerTest, OfflineEvaluationComparesPolicies) {
  PersonalizerService service({.seed = 2, .retrain_interval = 1000000});
  for (int i = 0; i < 200; ++i) {
    RankRequest req;
    req.event_id = "e";
    req.event_id += std::to_string(i);
    req.actions = ThreeActions();
    req.explore_uniform = true;
    auto resp = service.Rank(req);
    ASSERT_TRUE(resp.ok());
    service.Reward(resp->event_id,
                   resp->chosen_action_id == "a2" ? 3.0 : 0.1)
        .ok();
  }
  service.Retrain();
  auto eval = service.EvaluateOffline();
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->events, 200u);
  // The learned greedy policy should beat the uniform logging baseline.
  EXPECT_GT(eval->policy_ips_estimate, eval->logged_average_reward);
}

TEST(PersonalizerTest, EvaluateOfflineRequiresRewards) {
  PersonalizerService service;
  EXPECT_FALSE(service.EvaluateOffline().ok());
}

}  // namespace
}  // namespace qo::bandit

// Contextual bandit tests: featurization, the canonical sparse
// representation, model learning, the Personalizer service contract
// (including shared combined features, incremental retraining and log
// retention), and offline (IPS) evaluation.
#include <algorithm>
#include <gtest/gtest.h>

#include "bandit/cb_model.h"
#include "bandit/features.h"
#include "bandit/personalizer.h"

#include "common/kernels/kernels.h"
#include "optimizer/rules.h"

namespace qo::bandit {
namespace {

/// True when entries are strictly increasing by index (sorted + deduped).
bool IsCanonical(const std::vector<std::pair<uint32_t, double>>& entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].first >= entries[i].first) return false;
  }
  return true;
}

/// SoA overload: the index column is strictly increasing and the value
/// column stays parallel to it.
bool IsCanonical(const SparseVector& v) {
  if (v.values().size() != v.indices().size()) return false;
  for (size_t i = 1; i < v.indices().size(); ++i) {
    if (v.indices()[i - 1] >= v.indices()[i]) return false;
  }
  return true;
}

TEST(SparseVectorTest, CanonicalizeSortsCoalescesAndCachesNorm) {
  SparseVector v = SparseVector::Canonicalize(
      {{9, 1.0}, {3, 2.0}, {9, 0.5}, {1, -1.0}, {3, -2.0}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_TRUE(IsCanonical(v));
  EXPECT_EQ(v.indices(), (std::vector<uint32_t>{1, 3, 9}));
  // Index 3 coalesced to zero: the entry stays, at its summed value.
  EXPECT_EQ(v.values(), (std::vector<double>{-1.0, 0.0, 1.5}));
  EXPECT_DOUBLE_EQ(v.norm_sq(), 1.0 + 0.0 + 2.25);
}

TEST(SparseVectorTest, CanonicalizeReducesIndicesIntoModelSpace) {
  SparseVector v =
      SparseVector::Canonicalize({{FeatureVector::kDim + 7, 1.0}, {7, 1.0}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.indices()[0], 7u);
  EXPECT_DOUBLE_EQ(v.values()[0], 2.0);
}

TEST(FeaturesTest, ContextIncludesSpanAndCooccurrences) {
  JobContext ctx;
  ctx.span = BitVector256::FromPositions({41, 44, 50});
  ctx.row_count = 1e6;
  FeatureVector f = BuildContextFeatures(ctx);
  // 3 first-order + 3 pairs + 1 triple + 4 buckets + bias = 12 (no hash
  // collisions among these 12 in the 2^18 space).
  EXPECT_EQ(f.size(), 12u);
  EXPECT_TRUE(IsCanonical(f.entries));
}

TEST(FeaturesTest, TriplesAreCapped) {
  std::vector<int> many;
  for (int i = 40; i < 70; ++i) many.push_back(i);
  JobContext ctx;
  ctx.span = BitVector256::FromPositions(many);
  FeatureVector f = BuildContextFeatures(ctx);
  // 30 singles + C(30,2)=435 pairs + C(12,3)=220 capped triples + 5 misc,
  // minus any hashed-index collisions coalesced by canonicalization.
  EXPECT_LE(f.size(), 30u + 435u + 220u + 5u);
  EXPECT_GE(f.size(), 30u + 435u + 220u + 5u - 4u);
  EXPECT_TRUE(IsCanonical(f.entries));
}

TEST(FeaturesTest, ActionFeaturesEncodeRuleAndCategory) {
  FeatureVector noop = BuildActionFeatures(-1, true);
  EXPECT_EQ(noop.size(), 1u);
  FeatureVector flip = BuildActionFeatures(opt::rules::kHashJoinImpl, false);
  EXPECT_EQ(flip.size(), 2u);  // rule id + category
  EXPECT_TRUE(IsCanonical(flip.entries));
}

TEST(FeaturesTest, CombineAddsQuadraticInteractions) {
  FeatureVector shared;
  shared.AddNamed("a", 1.0);
  shared.AddNamed("b", 1.0);
  FeatureVector action;
  action.AddNamed("x", 1.0);
  SparseVector combined = CombineFeatures(shared, action);
  EXPECT_EQ(combined.size(), 2u + 1u + 2u);  // shared + action + cross
  EXPECT_TRUE(IsCanonical(combined));
  EXPECT_DOUBLE_EQ(combined.norm_sq(), 5.0);
}

TEST(FeaturesTest, CombineIsInvariantUnderInputPermutation) {
  FeatureVector shared_ab, shared_ba;
  shared_ab.AddNamed("a", 1.0);
  shared_ab.AddNamed("b", 2.0);
  shared_ba.AddNamed("b", 2.0);
  shared_ba.AddNamed("a", 1.0);
  FeatureVector action;
  action.AddNamed("x", 1.0);
  action.AddNamed("y", 0.5);
  SparseVector c1 = CombineFeatures(shared_ab, action);
  SparseVector c2 = CombineFeatures(shared_ba, action);
  EXPECT_EQ(c1.indices(), c2.indices());
  EXPECT_EQ(c1.values(), c2.values());
  EXPECT_DOUBLE_EQ(c1.norm_sq(), c2.norm_sq());

  // And a trained model scores the two identically — the canonical form is
  // what the model consumes, not the insertion order.
  CbModel model({.learning_rate = 0.3, .epochs = 5});
  std::vector<LoggedExample> examples;
  for (int i = 0; i < 10; ++i) {
    examples.push_back(
        {std::make_shared<const SparseVector>(c1), 1.5, 1.0});
  }
  model.Train(examples);
  EXPECT_DOUBLE_EQ(model.Score(c1), model.Score(c2));
}

TEST(FeaturesTest, HashingIsStable) {
  EXPECT_EQ(HashFeatureName("span_41"), HashFeatureName("span_41"));
  EXPECT_NE(HashFeatureName("span_41"), HashFeatureName("span_42"));
}

TEST(CbModelTest, LearnsLinearRewards) {
  // Two actions: action A pays 2.0, action B pays 0.5; contexts irrelevant.
  CbModel model({.learning_rate = 0.2, .epochs = 50});
  FeatureVector fa = BuildActionFeatures(10, false);
  FeatureVector fb = BuildActionFeatures(20, false);
  FeatureVector shared;
  shared.AddNamed("bias", 1.0);
  std::vector<LoggedExample> examples;
  for (int i = 0; i < 50; ++i) {
    examples.push_back({CombineFeaturesShared(shared, fa), 2.0, 0.5});
    examples.push_back({CombineFeaturesShared(shared, fb), 0.5, 0.5});
  }
  model.Train(examples);
  EXPECT_GT(model.Score(CombineFeatures(shared, fa)),
            model.Score(CombineFeatures(shared, fb)));
  EXPECT_NEAR(model.Score(CombineFeatures(shared, fa)), 2.0, 0.4);
  EXPECT_NEAR(model.Score(CombineFeatures(shared, fb)), 0.5, 0.4);
}

TEST(CbModelTest, LearnsContextDependentPolicy) {
  // Action A is good only in context 1; action B only in context 2.
  CbModel model({.learning_rate = 0.3, .epochs = 80});
  FeatureVector c1, c2;
  c1.AddNamed("ctx1", 1.0);
  c2.AddNamed("ctx2", 1.0);
  FeatureVector fa = BuildActionFeatures(10, false);
  FeatureVector fb = BuildActionFeatures(20, false);
  std::vector<LoggedExample> examples;
  for (int i = 0; i < 100; ++i) {
    examples.push_back({CombineFeaturesShared(c1, fa), 2.0, 0.5});
    examples.push_back({CombineFeaturesShared(c1, fb), 0.2, 0.5});
    examples.push_back({CombineFeaturesShared(c2, fa), 0.2, 0.5});
    examples.push_back({CombineFeaturesShared(c2, fb), 2.0, 0.5});
  }
  model.Train(examples);
  EXPECT_GT(model.Score(CombineFeatures(c1, fa)),
            model.Score(CombineFeatures(c1, fb)));
  EXPECT_LT(model.Score(CombineFeatures(c2, fa)),
            model.Score(CombineFeatures(c2, fb)));
}

TEST(CbModelTest, DuplicateIndexDecaysWeightOncePerExample) {
  // Regression test for the double-decay / norm-overcount bug: two raw
  // entries forced onto one hashed index must behave as a single coalesced
  // feature — L2 decay applied exactly once per example, norm_sq counting
  // the summed value once.
  CbModel model({.learning_rate = 0.5, .l2 = 0.2, .epochs = 1});
  auto single = std::make_shared<const SparseVector>(
      SparseVector::Canonicalize({{7, 1.0}}));
  auto collided = std::make_shared<const SparseVector>(
      SparseVector::Canonicalize({{7, 1.0}, {7, 1.0}}));
  ASSERT_EQ(collided->size(), 1u);
  EXPECT_DOUBLE_EQ(collided->values()[0], 2.0);
  // The collided feature's norm counts the coalesced value once: (1+1)^2,
  // not 1^2 + 1^2.
  EXPECT_DOUBLE_EQ(collided->norm_sq(), 4.0);

  // Step 1: plain example, reward 1 -> w7 = lr * (1 - 0) / max(1, 1) = 0.5.
  model.TrainEpoch({{single, 1.0, 1.0}});
  EXPECT_NEAR(model.Score(*single), 0.5, 1e-6);

  // Step 2: collided example, reward 0. pred = w7 * 2 = 1.0, norm_sq = 4,
  // grad = 0.5 * (0 - 1) / 4 = -0.125, and the weight decays ONCE:
  //   w7 = 0.5 * (1 - lr * l2) + grad * 2 = 0.5 * 0.9 - 0.25 = 0.2.
  // The pre-fix path decayed twice and interleaved the two updates,
  // yielding -0.07 instead.
  model.TrainEpoch({{collided, 0.0, 1.0}});
  EXPECT_NEAR(model.Score(*single), 0.2, 1e-6);
}

TEST(CbModelTest, ScoreBatchBitIdenticalToPerArmScoreAcrossTables) {
  // Train a model so the weights are non-trivial, then score a batch whose
  // shape exercises every ScoreBatch path: a full block of four, a
  // remainder block, arms of different lengths (per-lane tails), an empty
  // arm, and a null arm. Each arm's batch score must equal its individual
  // Score() bit for bit under both kernel tables.
  CbModel model({.learning_rate = 0.2, .epochs = 30});
  FeatureVector shared;
  shared.AddNamed("bias", 1.0);
  shared.AddNamed("ctx", 0.5);
  std::vector<LoggedExample> examples;
  for (int i = 0; i < 40; ++i) {
    FeatureVector fa = BuildActionFeatures(10 + (i % 5), false);
    examples.push_back(
        {CombineFeaturesShared(shared, fa), (i % 5) * 0.5, 0.5});
  }
  model.Train(examples);

  std::vector<std::shared_ptr<const SparseVector>> arms;
  for (int i = 0; i < 9; ++i) {
    FeatureVector fa = BuildActionFeatures(10 + i, i % 2 == 0);
    arms.push_back(CombineFeaturesShared(shared, fa));
  }
  arms.push_back(std::make_shared<const SparseVector>());  // empty arm
  arms.push_back(nullptr);                                 // null arm
  ASSERT_EQ(arms.size() % kernels::kLanes, 3u);  // remainder block exists

  std::vector<std::vector<double>> per_table;
  for (const kernels::KernelTable* kt :
       {&kernels::ScalarTable(), &kernels::Avx2Table()}) {
    kernels::SetActiveTableForTest(kt);
    std::vector<double> batch = model.ScoreBatch(arms);
    ASSERT_EQ(batch.size(), arms.size());
    for (size_t i = 0; i < arms.size(); ++i) {
      const double single = arms[i] ? model.Score(*arms[i]) : 0.0;
      EXPECT_EQ(batch[i], single) << kt->name << " arm=" << i;
    }
    per_table.push_back(std::move(batch));
  }
  kernels::SetActiveTableForTest(nullptr);
  EXPECT_EQ(per_table[0], per_table[1]);
}

std::vector<RankableAction> ThreeActions() {
  std::vector<RankableAction> actions;
  for (int i = 0; i < 3; ++i) {
    RankableAction a;
    a.action_id = "a";
    a.action_id += std::to_string(i);
    a.features = BuildActionFeatures(40 + i, false);
    actions.push_back(std::move(a));
  }
  return actions;
}

FeatureVector SmallContext() {
  JobContext ctx;
  ctx.span = BitVector256::FromPositions({41, 44, 50});
  ctx.row_count = 1e6;
  return BuildContextFeatures(ctx);
}

TEST(PersonalizerTest, RankRequiresActionsAndUniqueEventIds) {
  PersonalizerService service;
  RankRequest empty;
  empty.event_id = "e0";
  EXPECT_FALSE(service.Rank(empty).ok());

  RankRequest req;
  req.event_id = "e1";
  req.actions = ThreeActions();
  EXPECT_TRUE(service.Rank(req).ok());
  EXPECT_FALSE(service.Rank(req).ok());  // duplicate id
}

TEST(PersonalizerTest, RankRejectsMismatchedPrecombined) {
  PersonalizerService service;
  RankRequest req;
  req.event_id = "e1";
  req.actions = ThreeActions();
  req.precombined = {CombineFeaturesShared(SmallContext(), req.actions[0].features)};
  EXPECT_FALSE(service.Rank(req).ok());  // 1 precombined vs 3 actions

  // Correct size but a null entry is rejected too (nothing null may reach
  // the event log, where BestAction dereferences unchecked).
  req.precombined.resize(3);
  EXPECT_FALSE(service.Rank(req).ok());
}

TEST(PersonalizerTest, UniformExplorationHasUniformPropensity) {
  PersonalizerService service({.seed = 4});
  RankRequest req;
  req.event_id = "e";
  req.actions = ThreeActions();
  req.explore_uniform = true;
  auto resp = service.Rank(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_NEAR(resp->probability, 1.0 / 3.0, 1e-12);
}

TEST(PersonalizerTest, RewardJoinSemantics) {
  PersonalizerService service;
  RankRequest req;
  req.event_id = "e1";
  req.actions = ThreeActions();
  ASSERT_TRUE(service.Rank(req).ok());
  EXPECT_TRUE(service.Reward("e1", 1.5).ok());
  // Double reward and unknown events are rejected.
  EXPECT_FALSE(service.Reward("e1", 1.0).ok());
  EXPECT_TRUE(service.Reward("ghost", 1.0).IsNotFound());
  EXPECT_EQ(service.rewarded_events(), 1u);
  EXPECT_EQ(service.logged_events(), 1u);
  EXPECT_EQ(service.telemetry().reward_joins, 1u);
  EXPECT_EQ(service.telemetry().reward_failures, 2u);
}

TEST(PersonalizerTest, PrecombinedRanksIdenticallyAndSharesVectors) {
  // Two identically seeded services fed the same event stream; one combines
  // inline per Rank, the other shares precombined vectors per "job". Both
  // must produce identical choices, propensities and learned models.
  PersonalizerConfig config{.seed = 11, .retrain_interval = 40};
  PersonalizerService inline_service(config);
  PersonalizerService shared_service(config);
  FeatureVector context = SmallContext();
  std::vector<RankableAction> actions = ThreeActions();

  for (int i = 0; i < 120; ++i) {
    auto combined = CombineActionSet(context, actions);
    RankRequest plain;
    plain.event_id = "e";
    plain.event_id += std::to_string(i);
    plain.context = context;
    plain.actions = actions;
    plain.explore_uniform = (i % 2 == 0);
    RankRequest pre = plain;
    pre.precombined = combined;

    auto r1 = inline_service.Rank(plain);
    auto r2 = shared_service.Rank(pre);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->chosen_index, r2->chosen_index);
    EXPECT_EQ(r1->probability, r2->probability);
    // The logged event holds the caller's vectors, not copies: the probe
    // and acting arms of one job share one combine.
    for (const auto& c : combined) EXPECT_GT(c.use_count(), 1);
    double reward = r1->chosen_index == 1 ? 2.0 : 0.5;
    ASSERT_TRUE(inline_service.Reward(r1->event_id, reward).ok());
    ASSERT_TRUE(shared_service.Reward(r2->event_id, reward).ok());
  }
  inline_service.Retrain();
  shared_service.Retrain();
  for (const auto& action : actions) {
    SparseVector probe = CombineFeatures(context, action.features);
    EXPECT_DOUBLE_EQ(inline_service.model().Score(probe),
                     shared_service.model().Score(probe));
  }
  EXPECT_GT(shared_service.telemetry().precombined_reused, 0u);
  EXPECT_EQ(shared_service.telemetry().combines, 0u);
}

TEST(PersonalizerTest, IncrementalRetrainMatchesFullRetrain) {
  // With epochs = 1, retraining after every batch produces exactly the same
  // SGD update sequence as one retrain over all pending examples: the
  // incremental path must drop nothing and train nothing twice.
  PersonalizerConfig config{.model = {.epochs = 1},
                            .seed = 21,
                            .retrain_interval = 1000000};
  PersonalizerService incremental(config);
  PersonalizerService full(config);
  FeatureVector context = SmallContext();
  std::vector<RankableAction> actions = ThreeActions();

  for (int i = 0; i < 120; ++i) {
    RankRequest req;
    req.event_id = "e";
    req.event_id += std::to_string(i);
    req.context = context;
    req.actions = actions;
    req.explore_uniform = true;  // identical RNG consumption in both
    auto r1 = incremental.Rank(req);
    auto r2 = full.Rank(req);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    ASSERT_EQ(r1->chosen_index, r2->chosen_index);
    double reward = r1->chosen_index == 2 ? 1.5 : 0.5;
    ASSERT_TRUE(incremental.Reward(r1->event_id, reward).ok());
    ASSERT_TRUE(full.Reward(r2->event_id, reward).ok());
    if ((i + 1) % 40 == 0) incremental.Retrain();
  }
  full.Retrain();
  for (const auto& action : actions) {
    SparseVector probe = CombineFeatures(context, action.features);
    EXPECT_DOUBLE_EQ(incremental.model().Score(probe),
                     full.model().Score(probe));
  }
  EXPECT_EQ(incremental.telemetry().examples_trained,
            full.telemetry().examples_trained);
}

TEST(PersonalizerTest, RankPipelineByteIdenticalAcrossKernelTables) {
  // The full rank -> reward -> retrain loop replayed once per kernel table
  // (the QO_SIMD on/off states in one binary): choices, propensities, and
  // the learned model must be bit-identical — ScoreBatch feeds the softmax
  // tie-break RNG, so a single ulp of drift would change a choice.
  const std::vector<const kernels::KernelTable*> tables = {
      &kernels::ScalarTable(), &kernels::Avx2Table()};
  std::vector<std::vector<int>> choices(tables.size());
  std::vector<std::vector<double>> probabilities(tables.size());
  std::vector<std::vector<double>> final_scores(tables.size());
  FeatureVector context = SmallContext();
  std::vector<RankableAction> actions = ThreeActions();
  for (size_t t = 0; t < tables.size(); ++t) {
    kernels::SetActiveTableForTest(tables[t]);
    PersonalizerService service({.seed = 17, .retrain_interval = 25});
    for (int i = 0; i < 100; ++i) {
      RankRequest req;
      req.event_id = "e";
      req.event_id += std::to_string(i);
      req.context = context;
      req.actions = actions;
      auto r = service.Rank(req);
      ASSERT_TRUE(r.ok());
      choices[t].push_back(r->chosen_index);
      probabilities[t].push_back(r->probability);
      double reward = r->chosen_index == 1 ? 2.0 : 0.5;
      ASSERT_TRUE(service.Reward(r->event_id, reward).ok());
    }
    service.Retrain();
    for (const auto& action : actions) {
      final_scores[t].push_back(
          service.model().Score(CombineFeatures(context, action.features)));
    }
  }
  kernels::SetActiveTableForTest(nullptr);
  EXPECT_EQ(choices[0], choices[1]);
  EXPECT_EQ(probabilities[0], probabilities[1]);
  EXPECT_EQ(final_scores[0], final_scores[1]);
}

TEST(PersonalizerTest, RetentionBoundsResidentEvents) {
  PersonalizerService service({.seed = 13,
                               .retrain_interval = 16,
                               .retention_window = 64});
  // "Acting arm" events (every third) are never rewarded — retention must
  // reclaim them too.
  for (int i = 0; i < 400; ++i) {
    RankRequest req;
    req.event_id = "e";
    req.event_id += std::to_string(i);
    req.actions = ThreeActions();
    req.explore_uniform = true;
    auto resp = service.Rank(req);
    ASSERT_TRUE(resp.ok());
    if (i % 3 != 0) {
      ASSERT_TRUE(service.Reward(resp->event_id, 1.0).ok());
    }
    EXPECT_LE(service.resident_events(), 64u);
  }
  EXPECT_EQ(service.logged_events(), 400u);
  EXPECT_GT(service.telemetry().events_compacted, 0u);
  // A reward for an event beyond the retention window is an expired join.
  EXPECT_TRUE(service.Reward("e0", 1.0).IsNotFound());
  // The retained window still supports offline evaluation.
  EXPECT_TRUE(service.EvaluateOffline().ok());
}

TEST(PersonalizerTest, ColdStartRanksUniformly) {
  // With an untrained model all scores tie at zero; ties break randomly, so
  // all actions should be chosen across many requests.
  PersonalizerService service({.epsilon = 0.0, .seed = 8});
  std::set<std::string> chosen;
  for (int i = 0; i < 60; ++i) {
    RankRequest req;
    req.event_id = "e";
    req.event_id += std::to_string(i);
    req.actions = ThreeActions();
    auto resp = service.Rank(req);
    ASSERT_TRUE(resp.ok());
    chosen.insert(resp->chosen_action_id);
  }
  EXPECT_EQ(chosen.size(), 3u);
}

TEST(PersonalizerTest, LearnsToPickTheGoodAction) {
  PersonalizerService service(
      {.epsilon = 0.1, .model = {.epochs = 5}, .seed = 6,
       .retrain_interval = 50});
  // Reward structure: action a1 pays 2.0, others 0.5.
  for (int i = 0; i < 400; ++i) {
    RankRequest req;
    req.event_id = "train";
    req.event_id += std::to_string(i);
    req.actions = ThreeActions();
    req.explore_uniform = true;
    auto resp = service.Rank(req);
    ASSERT_TRUE(resp.ok());
    double reward = resp->chosen_action_id == "a1" ? 2.0 : 0.5;
    ASSERT_TRUE(service.Reward(resp->event_id, reward).ok());
  }
  service.Retrain();
  int picked_good = 0;
  const int kTrials = 100;
  for (int i = 0; i < kTrials; ++i) {
    RankRequest req;
    req.event_id = "test";
    req.event_id += std::to_string(i);
    req.actions = ThreeActions();
    auto resp = service.Rank(req);
    ASSERT_TRUE(resp.ok());
    picked_good += resp->chosen_action_id == "a1";
  }
  // Greedy (1 - epsilon) plus a share of exploration.
  EXPECT_GT(picked_good, 75);
}

TEST(PersonalizerTest, OfflineEvaluationComparesPolicies) {
  PersonalizerService service({.seed = 2, .retrain_interval = 1000000});
  for (int i = 0; i < 200; ++i) {
    RankRequest req;
    req.event_id = "e";
    req.event_id += std::to_string(i);
    req.actions = ThreeActions();
    req.explore_uniform = true;
    auto resp = service.Rank(req);
    ASSERT_TRUE(resp.ok());
    service.Reward(resp->event_id,
                   resp->chosen_action_id == "a2" ? 3.0 : 0.1)
        .ok();
  }
  service.Retrain();
  auto eval = service.EvaluateOffline();
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->events, 200u);
  // The learned greedy policy should beat the uniform logging baseline.
  EXPECT_GT(eval->policy_ips_estimate, eval->logged_average_reward);
}

TEST(PersonalizerTest, EvaluateOfflineRequiresRewards) {
  PersonalizerService service;
  EXPECT_FALSE(service.EvaluateOffline().ok());
}

}  // namespace
}  // namespace qo::bandit

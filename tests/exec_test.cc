// Execution simulator tests: stage decomposition (including shared-subtree
// DAG golden cases), metric determinism, byte-identity of the prepared
// execution path against the legacy per-run decomposition (standalone, under
// concurrency, and through the full fig10-12/table2 pipeline), and the
// variability model's statistical structure.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/kernels/kernels.h"
#include "common/stats.h"
#include "engine/engine.h"
#include "exec/cluster.h"
#include "experiments/experiments.h"
#include "optimizer/optimizer.h"
#include "scope/compiler.h"
#include "workload/workload.h"

namespace qo::exec {
namespace {

/// Exact (bitwise) equality over every JobMetrics field — the prepared
/// execution path must not perturb a single ulp.
void ExpectMetricsBitEqual(const JobMetrics& a, const JobMetrics& b) {
  EXPECT_EQ(a.latency_sec, b.latency_sec);
  EXPECT_EQ(a.pn_hours, b.pn_hours);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.data_read_bytes, b.data_read_bytes);
  EXPECT_EQ(a.data_written_bytes, b.data_written_bytes);
  EXPECT_EQ(a.max_memory_bytes, b.max_memory_bytes);
  EXPECT_EQ(a.avg_memory_bytes, b.avg_memory_bytes);
  EXPECT_EQ(a.cpu_hours, b.cpu_hours);
  EXPECT_EQ(a.io_hours, b.io_hours);
}

scope::Catalog SimCatalog() {
  scope::Catalog catalog;
  scope::TableStats fact;
  fact.true_rows = 4e7;
  fact.est_rows = 4e7;
  fact.avg_row_bytes = 80;
  fact.columns["k"] = {1e5, 1e5};
  fact.columns["grp"] = {30, 30};
  fact.columns["v"] = {1e6, 1e6};
  catalog.RegisterTable("fact", fact);
  scope::TableStats dim;
  dim.true_rows = 1e6;
  dim.est_rows = 1e6;
  dim.avg_row_bytes = 40;
  dim.columns["pk"] = {1e6, 1e6};
  dim.columns["attr"] = {100, 100};
  catalog.RegisterTable("dim", dim);
  return catalog;
}

opt::PhysicalPlan CompileTestPlan(const scope::Catalog& catalog) {
  const char* script = R"(
    f = EXTRACT k:long, grp:string, v:double FROM "fact";
    d = EXTRACT pk:long, attr:string FROM "dim";
    j = SELECT * FROM f JOIN d ON k == pk @ 1.0;
    a = SELECT grp, SUM(v) AS s FROM j GROUP BY grp;
    OUTPUT a TO "out";
  )";
  auto logical = scope::CompileSource(script, catalog);
  EXPECT_TRUE(logical.ok());
  opt::Optimizer optimizer(catalog);
  auto out = optimizer.Optimize(*logical, opt::RuleConfig::Default());
  EXPECT_TRUE(out.ok());
  return out->plan;
}

TEST(StageDecompositionTest, BoundariesAtExchanges) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterConfig config;
  auto stages = DecomposeIntoStages(plan, catalog, config);
  // Every node appears in exactly one stage.
  size_t assigned = 0;
  for (const auto& s : stages) assigned += s.node_ids.size();
  EXPECT_EQ(assigned, plan.size());
  // The number of stages is 1 + number of exchanges (each exchange opens
  // exactly one producer-side stage in a tree-shaped plan).
  EXPECT_EQ(stages.size(), 1u + static_cast<size_t>(plan.ExchangeCount()));
  for (const auto& s : stages) {
    EXPECT_GE(s.partitions, 1);
    EXPECT_GE(s.cpu_sec, 0.0);
  }
}

TEST(StageDecompositionTest, UpstreamEdgesPointAcrossStages) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  auto stages = DecomposeIntoStages(plan, catalog, {});
  for (size_t i = 0; i < stages.size(); ++i) {
    for (int up : stages[i].upstream) {
      EXPECT_NE(static_cast<size_t>(up), i);
      EXPECT_LT(static_cast<size_t>(up), stages.size());
    }
  }
}

TEST(ClusterSimTest, SameSeedSameMetrics) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  JobMetrics a = sim.Execute(plan, catalog, 123);
  JobMetrics b = sim.Execute(plan, catalog, 123);
  EXPECT_DOUBLE_EQ(a.latency_sec, b.latency_sec);
  EXPECT_DOUBLE_EQ(a.pn_hours, b.pn_hours);
  EXPECT_EQ(a.vertices, b.vertices);
}

TEST(ClusterSimTest, ByteCountersAreSeedIndependent) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  JobMetrics a = sim.Execute(plan, catalog, 1);
  JobMetrics b = sim.Execute(plan, catalog, 2);
  EXPECT_DOUBLE_EQ(a.data_read_bytes, b.data_read_bytes);
  EXPECT_DOUBLE_EQ(a.data_written_bytes, b.data_written_bytes);
  EXPECT_EQ(a.vertices, b.vertices);
  // Scans read at least the two input tables.
  EXPECT_GE(a.data_read_bytes, 4e7 * 80 + 1e6 * 40);
}

TEST(ClusterSimTest, LatencyVarianceExceedsPnHoursVariance) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  RunningStats latency, pn;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    JobMetrics m = sim.Execute(plan, catalog, seed);
    latency.Add(m.latency_sec);
    pn.Add(m.pn_hours);
  }
  // Paper Sec. 5.1: latency is far noisier than PNhours.
  EXPECT_GT(latency.cv(), 0.05);
  EXPECT_LT(pn.cv(), latency.cv());
}

TEST(ClusterSimTest, PnHoursIsCpuPlusIo) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  JobMetrics m = sim.Execute(plan, catalog, 5);
  EXPECT_NEAR(m.pn_hours, m.cpu_hours + m.io_hours, 1e-12);
  EXPECT_GT(m.cpu_hours, 0);
  EXPECT_GT(m.io_hours, 0);
}

TEST(ClusterSimTest, MoreTokensReduceLatencyOfWideJobs) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterConfig few = {};
  few.tokens = 4;
  ClusterConfig many = {};
  many.tokens = 512;
  // Average over seeds to defeat noise.
  double lat_few = 0, lat_many = 0;
  for (uint64_t s = 0; s < 20; ++s) {
    lat_few += ClusterSimulator(few).Execute(plan, catalog, s).latency_sec;
    lat_many += ClusterSimulator(many).Execute(plan, catalog, s).latency_sec;
  }
  EXPECT_LT(lat_many, lat_few);
}

TEST(ClusterSimTest, RelativeDeltaHelper) {
  EXPECT_NEAR(RelativeDelta(90, 100), -0.1, 1e-12);
  EXPECT_NEAR(RelativeDelta(110, 100), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(RelativeDelta(5, 0), 0.0);
}

TEST(ClusterSimTest, MetricsToStringMentionsFields) {
  JobMetrics m;
  m.latency_sec = 12.5;
  m.pn_hours = 0.5;
  m.vertices = 7;
  std::string s = m.ToString();
  EXPECT_NE(s.find("latency"), std::string::npos);
  EXPECT_NE(s.find("vertices=7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared-subtree DAGs: golden decomposition.
// ---------------------------------------------------------------------------

/// Two outputs sharing one scan; one consumer reads it through an exchange,
/// the other directly:
///
///   Output(3) <- HashAgg(2) <- ExchangeShuffle(1) <- Scan(0)
///   Output(5) <- Project(4) <-----------------------/
opt::PhysicalPlan SharedSubtreeDag() {
  opt::PhysicalPlan plan;
  auto add = [&](opt::PhysOpKind kind, std::vector<int> children, int parts,
                 double rows, double bytes) {
    opt::PhysicalNode n;
    n.kind = kind;
    n.children = std::move(children);
    n.partitions = parts;
    n.true_rows = rows;
    n.true_bytes = bytes;
    return plan.AddNode(std::move(n));
  };
  int scan = add(opt::PhysOpKind::kScan, {}, 8, 1e6, 8e7);
  int exchange = add(opt::PhysOpKind::kExchangeShuffle, {scan}, 4, 1e6, 8e7);
  int agg = add(opt::PhysOpKind::kHashAgg, {exchange}, 4, 1e3, 8e4);
  int out_a = add(opt::PhysOpKind::kOutput, {agg}, 1, 1e3, 8e4);
  int project = add(opt::PhysOpKind::kProject, {scan}, 8, 1e6, 4e7);
  int out_b = add(opt::PhysOpKind::kOutput, {project}, 1, 1e6, 4e7);
  plan.roots = {out_a, out_b};
  return plan;
}

TEST(StageDecompositionTest, SharedSubtreeDagGolden) {
  opt::PhysicalPlan plan = SharedSubtreeDag();
  scope::Catalog catalog;  // scans fall back to node bytes: no table stats
  auto stages = DecomposeIntoStages(plan, catalog, {});
  ASSERT_EQ(stages.size(), 3u);
  // Root A's pipeline, then the exchange-opened producer stage, then root
  // B's pipeline (stage creation follows the DFS visit order).
  EXPECT_EQ(stages[0].node_ids, (std::vector<int>{3, 2}));
  EXPECT_EQ(stages[1].node_ids, (std::vector<int>{1, 0}));
  EXPECT_EQ(stages[2].node_ids, (std::vector<int>{5, 4}));
  // Both consumers wait on the shared producer stage; the producer waits on
  // nothing.
  EXPECT_EQ(stages[0].upstream, (std::vector<int>{1}));
  EXPECT_TRUE(stages[1].upstream.empty());
  EXPECT_EQ(stages[2].upstream, (std::vector<int>{1}));
  // The exchange runs in its producer's partitions; the agg stage is 4-wide.
  EXPECT_EQ(stages[0].partitions, 4);
  EXPECT_EQ(stages[1].partitions, 8);
  EXPECT_EQ(stages[2].partitions, 8);
  // The shared scan's work lands in exactly one stage.
  size_t assigned = 0;
  for (const auto& s : stages) assigned += s.node_ids.size();
  EXPECT_EQ(assigned, plan.size());
}

// ---------------------------------------------------------------------------
// Prepared execution: byte-identity, batching, concurrency, counters.
// ---------------------------------------------------------------------------

TEST(PreparedExecutionTest, ByteIdenticalToUnpreparedAcrossSeeds) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  ExecutionProfile profile = sim.Prepare(plan, catalog);
  EXPECT_FALSE(profile.has_cycle);
  EXPECT_EQ(profile.topo_order.size(), profile.stages.size());
  for (uint64_t seed = 0; seed < 64; ++seed) {
    ExpectMetricsBitEqual(sim.Execute(plan, catalog, seed),
                          sim.Execute(profile, seed));
  }
}

TEST(PreparedExecutionTest, SharedSubtreeDagByteIdentical) {
  opt::PhysicalPlan plan = SharedSubtreeDag();
  scope::Catalog catalog;
  ClusterSimulator sim;
  ExecutionProfile profile = sim.Prepare(plan, catalog);
  for (uint64_t seed = 100; seed < 132; ++seed) {
    ExpectMetricsBitEqual(sim.Execute(plan, catalog, seed),
                          sim.Execute(profile, seed));
  }
}

TEST(PreparedExecutionTest, ExecuteRunsMatchesIndividualRuns) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  ExecutionProfile profile = sim.Prepare(plan, catalog);
  std::vector<JobMetrics> batch = sim.ExecuteRuns(profile, 7000, 20);
  ASSERT_EQ(batch.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    ExpectMetricsBitEqual(batch[i],
                          sim.Execute(profile, 7000 + static_cast<uint64_t>(i)));
  }
}

TEST(PreparedExecutionTest, ConcurrentProfileRunsMatchSerial) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  auto profile = sim.PrepareShared(plan, catalog);
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 64;
  std::vector<JobMetrics> serial;
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRunsPerThread; ++r) {
      serial.push_back(
          sim.Execute(*profile, static_cast<uint64_t>(t * 1000 + r)));
    }
  }
  // The same runs, fanned out: one immutable profile hammered from four
  // threads (the PR 2 runtime-pool usage pattern) must reproduce the serial
  // metrics exactly.
  std::vector<JobMetrics> parallel(serial.size());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        parallel[t * kRunsPerThread + r] =
            sim.Execute(*profile, static_cast<uint64_t>(t * 1000 + r));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectMetricsBitEqual(parallel[i], serial[i]);
  }
}

TEST(PreparedExecutionTest, TelemetryCountersTrack) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  EXPECT_EQ(sim.profile_prepares(), 0u);
  ExecutionProfile profile = sim.Prepare(plan, catalog);
  EXPECT_EQ(sim.profile_prepares(), 1u);
  sim.Execute(profile, 1);
  sim.ExecuteRuns(profile, 2, 3);
  EXPECT_EQ(sim.prepared_runs(), 4u);
  EXPECT_EQ(sim.unprepared_runs(), 0u);
  sim.Execute(plan, catalog, 1);  // legacy path: prepares inline
  EXPECT_EQ(sim.unprepared_runs(), 1u);
  EXPECT_EQ(sim.profile_prepares(), 2u);
}

TEST(PreparedExecutionTest, AAVarianceStructure) {
  // Paper Figs. 3/5 through the prepared path: A/A latency is noisy (CV
  // well above the 5% line) while PNhours stays bounded.
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  ExecutionProfile profile = sim.Prepare(plan, catalog);
  RunningStats latency, pn;
  for (const JobMetrics& m : sim.ExecuteRuns(profile, 0, 40)) {
    latency.Add(m.latency_sec);
    pn.Add(m.pn_hours);
  }
  EXPECT_GT(latency.cv(), 0.05);
  EXPECT_LT(pn.cv(), 0.15);
  EXPECT_LT(pn.cv(), latency.cv());
}

// ---------------------------------------------------------------------------
// Engine integration: the profile slot on shared compilations.
// ---------------------------------------------------------------------------

const workload::JobInstance& EngineTestJob() {
  static const auto* job = [] {
    workload::WorkloadDriver driver(
        {.num_templates = 6, .jobs_per_day = 8, .seed = 77});
    return new workload::JobInstance(driver.DayJobs(0)[0]);
  }();
  return *job;
}

TEST(EnginePreparedTest, ExecuteOverloadsAndKnobAgree) {
  // Pin both knobs so the test is independent of the CI matrix leg's
  // QO_PREPARED_EXEC / QO_COMPILE_CACHE environment.
  engine::ScopeEngine prepared({}, {}, cache::CompileCacheOptions::FromEnv(),
                               {.prepared = true});
  engine::ScopeEngine legacy({}, {}, cache::CompileCacheOptions::FromEnv(),
                             {.prepared = false});
  EXPECT_TRUE(prepared.prepared_exec_enabled());
  EXPECT_FALSE(legacy.prepared_exec_enabled());
  const workload::JobInstance& job = EngineTestJob();
  auto compiled = prepared.CompileShared(job, opt::RuleConfig::Default());
  ASSERT_TRUE(compiled.ok());
  auto compiled_legacy = legacy.CompileShared(job, opt::RuleConfig::Default());
  ASSERT_TRUE(compiled_legacy.ok());
  for (uint64_t salt : {0ull, 1ull, 17ull, 123456789ull}) {
    JobMetrics via_profile = prepared.Execute(job, **compiled, salt);
    JobMetrics via_plan = prepared.Execute(job, (*compiled)->plan, salt);
    JobMetrics via_legacy_engine =
        legacy.Execute(job, **compiled_legacy, salt);
    ExpectMetricsBitEqual(via_profile, via_plan);
    ExpectMetricsBitEqual(via_profile, via_legacy_engine);
  }
  std::vector<JobMetrics> batch = prepared.ExecuteRuns(job, **compiled, 50, 8);
  ASSERT_EQ(batch.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    ExpectMetricsBitEqual(batch[i], prepared.Execute(job, **compiled, 50 + i));
  }
}

TEST(EnginePreparedTest, ProfileSlotIsReusedAcrossRuns) {
  // The compile cache must be on regardless of the CI matrix leg's
  // QO_COMPILE_CACHE: slot reuse rides on both runs sharing one cached
  // CompilationOutput.
  engine::ScopeEngine engine({}, {}, {.enabled = true}, {});
  const workload::JobInstance& job = EngineTestJob();
  auto first = engine.Run(job, opt::RuleConfig::Default(), 1);
  ASSERT_TRUE(first.ok());
  auto again = engine.Run(job, opt::RuleConfig::Default(), 2);
  ASSERT_TRUE(again.ok());
  telemetry::ExecProfileTelemetry t = engine.exec_profile_telemetry();
  EXPECT_TRUE(t.prepared_enabled);
  // The compilation cache hands back the same CompilationOutput, so the
  // second run reuses the profile prepared by the first.
  EXPECT_EQ(t.prepares, 1u);
  EXPECT_EQ(t.profile_misses, 1u);
  EXPECT_GE(t.profile_hits, 1u);
  EXPECT_GT(t.reuse_rate(), 0.0);
  // And the profile both runs used is the one in the slot.
  auto profile = engine.PrepareProfile(job, *first->compilation);
  EXPECT_EQ(profile.get(), first->compilation->exec_profile.Load().get());
}

TEST(EnginePreparedTest, FromEnvKnobParses) {
  const char* saved = std::getenv("QO_PREPARED_EXEC");
  setenv("QO_PREPARED_EXEC", "0", 1);
  EXPECT_FALSE(engine::ExecOptions::FromEnv().prepared);
  setenv("QO_PREPARED_EXEC", "1", 1);
  EXPECT_TRUE(engine::ExecOptions::FromEnv().prepared);
  unsetenv("QO_PREPARED_EXEC");
  EXPECT_TRUE(engine::ExecOptions::FromEnv().prepared);
  if (saved != nullptr) setenv("QO_PREPARED_EXEC", saved, 1);
}

TEST(EnginePreparedTest, CatalogDriftInvalidatesProfileReuse) {
  // A profile bakes in scan sizes from the catalog; if a job's statistics
  // drift, the prepared overload must re-prepare rather than serve metrics
  // for the old table sizes.
  engine::ScopeEngine engine({}, {}, {.enabled = true}, {.prepared = true});
  workload::JobInstance job;
  job.job_id = "drift_job";
  job.script = R"(
    f = EXTRACT k:long, grp:string, v:double FROM "fact";
    d = EXTRACT pk:long, attr:string FROM "dim";
    j = SELECT * FROM f JOIN d ON k == pk @ 1.0;
    a = SELECT grp, SUM(v) AS s FROM j GROUP BY grp;
    OUTPUT a TO "out";
  )";
  job.catalog = SimCatalog();
  auto compiled = engine.CompileShared(job, opt::RuleConfig::Default());
  ASSERT_TRUE(compiled.ok());
  JobMetrics before = engine.Execute(job, **compiled, 3);
  // Drift: double the fact table on this job's private catalog copy.
  scope::TableStats fact = *job.catalog.Lookup("fact").value();
  fact.true_rows *= 2;
  job.catalog.RegisterTable("fact", fact);
  JobMetrics after_prepared = engine.Execute(job, **compiled, 3);
  JobMetrics after_plan = engine.Execute(job, (*compiled)->plan, 3);
  // The prepared path must track the drifted catalog exactly like the
  // legacy path does (and the drift must actually change the metrics).
  ExpectMetricsBitEqual(after_prepared, after_plan);
  EXPECT_NE(before.pn_hours, after_prepared.pn_hours);
}

// ---------------------------------------------------------------------------
// Full pipeline byte-identity: the fig10-12/table2 aggregate-impact runs
// (train + eval) must be unchanged by prepared execution, with the compile
// cache on or off and at 1 or 4 worker threads.
// ---------------------------------------------------------------------------

experiments::AggregateImpactResult RunPipeline(int prepared, int compile_cache,
                                               int threads) {
  experiments::ExperimentEnv env({.threads = threads,
                                  .compile_cache = compile_cache,
                                  .prepared_exec = prepared});
  return experiments::RunAggregateImpact(env, /*train_days=*/12,
                                         /*eval_days=*/3);
}

void ExpectAggregateEqual(const experiments::AggregateImpactResult& a,
                          const experiments::AggregateImpactResult& b,
                          const char* label) {
  EXPECT_EQ(a.matched_jobs, b.matched_jobs) << label;
  EXPECT_EQ(a.active_hints, b.active_hints) << label;
  EXPECT_EQ(a.pn_hours_reduction, b.pn_hours_reduction) << label;
  EXPECT_EQ(a.latency_reduction, b.latency_reduction) << label;
  EXPECT_EQ(a.vertices_reduction, b.vertices_reduction) << label;
  EXPECT_EQ(a.pn_deltas, b.pn_deltas) << label;
  EXPECT_EQ(a.latency_deltas, b.latency_deltas) << label;
  EXPECT_EQ(a.vertices_deltas, b.vertices_deltas) << label;
}

TEST(PreparedPipelineTest, AggregateImpactByteIdenticalAcrossMatrix) {
  experiments::AggregateImpactResult reference = RunPipeline(
      /*prepared=*/1, /*compile_cache=*/1, /*threads=*/1);
  // The pipeline must have produced hints and matched jobs for the
  // comparison to mean anything.
  ASSERT_GT(reference.matched_jobs, 0);
  ASSERT_GT(reference.active_hints, 0u);
  for (int compile_cache : {1, 0}) {
    for (int threads : {1, 4}) {
      char label[64];
      std::snprintf(label, sizeof(label), "cache=%d threads=%d", compile_cache,
                    threads);
      experiments::AggregateImpactResult unprepared =
          RunPipeline(0, compile_cache, threads);
      ExpectAggregateEqual(reference, unprepared, label);
      if (compile_cache == 1 && threads == 1) continue;  // the reference
      experiments::AggregateImpactResult prepared =
          RunPipeline(1, compile_cache, threads);
      ExpectAggregateEqual(reference, prepared, label);
    }
  }
}

TEST(KernelTableExecTest, ExecuteRunsBitIdenticalAcrossTables) {
  // The batched 4-lane sweep under the scalar and AVX2 kernel tables must
  // produce the same bytes as per-seed Execute for every seed, including
  // the remainder block (runs not a multiple of four).
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  ExecutionProfile profile = sim.Prepare(plan, catalog);
  std::vector<JobMetrics> reference;
  for (int i = 0; i < 23; ++i) {
    reference.push_back(sim.Execute(profile, 500 + static_cast<uint64_t>(i)));
  }
  for (const kernels::KernelTable* kt :
       {&kernels::ScalarTable(), &kernels::Avx2Table()}) {
    kernels::SetActiveTableForTest(kt);
    std::vector<JobMetrics> batch = sim.ExecuteRuns(profile, 500, 23);
    ASSERT_EQ(batch.size(), reference.size()) << kt->name;
    for (size_t i = 0; i < batch.size(); ++i) {
      SCOPED_TRACE(std::string(kt->name) + " run " + std::to_string(i));
      ExpectMetricsBitEqual(batch[i], reference[i]);
    }
  }
  kernels::SetActiveTableForTest(nullptr);
}

TEST(KernelTableExecTest, PipelineByteIdenticalAcrossTablesAndThreads) {
  // The QO_SIMD on/off acceptance matrix inside one binary: the full
  // fig10-12/table2 aggregate-impact pipeline at 1 and 4 worker threads
  // must be byte-identical under the scalar and AVX2 kernel tables.
  kernels::SetActiveTableForTest(&kernels::ScalarTable());
  experiments::AggregateImpactResult reference =
      RunPipeline(/*prepared=*/1, /*compile_cache=*/1, /*threads=*/1);
  ASSERT_GT(reference.matched_jobs, 0);
  for (const kernels::KernelTable* kt :
       {&kernels::ScalarTable(), &kernels::Avx2Table()}) {
    kernels::SetActiveTableForTest(kt);
    for (int threads : {1, 4}) {
      if (kt == &kernels::ScalarTable() && threads == 1) continue;
      char label[64];
      std::snprintf(label, sizeof(label), "table=%s threads=%d", kt->name,
                    threads);
      ExpectAggregateEqual(reference, RunPipeline(1, 1, threads), label);
    }
  }
  kernels::SetActiveTableForTest(nullptr);
}

// Parameterized: the variability knobs behave monotonically.
class NoiseKnobTest : public ::testing::TestWithParam<double> {};

TEST_P(NoiseKnobTest, HigherCongestionSigmaRaisesLatencyCv) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterConfig quiet = {};
  quiet.stage_congestion_sigma = 0.01;
  quiet.job_congestion_sigma = 0.01;
  quiet.straggler_prob = 0.0;
  ClusterConfig noisy = quiet;
  noisy.stage_congestion_sigma = GetParam();
  RunningStats cv_quiet, cv_noisy;
  for (uint64_t s = 0; s < 30; ++s) {
    cv_quiet.Add(ClusterSimulator(quiet).Execute(plan, catalog, s).latency_sec);
    cv_noisy.Add(ClusterSimulator(noisy).Execute(plan, catalog, s).latency_sec);
  }
  EXPECT_GT(cv_noisy.cv(), cv_quiet.cv());
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NoiseKnobTest,
                         ::testing::Values(0.2, 0.4, 0.8));

}  // namespace
}  // namespace qo::exec

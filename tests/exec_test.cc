// Execution simulator tests: stage decomposition, metric determinism, and
// the variability model's statistical structure.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "exec/cluster.h"
#include "optimizer/optimizer.h"
#include "scope/compiler.h"

namespace qo::exec {
namespace {

scope::Catalog SimCatalog() {
  scope::Catalog catalog;
  scope::TableStats fact;
  fact.true_rows = 4e7;
  fact.est_rows = 4e7;
  fact.avg_row_bytes = 80;
  fact.columns["k"] = {1e5, 1e5};
  fact.columns["grp"] = {30, 30};
  fact.columns["v"] = {1e6, 1e6};
  catalog.RegisterTable("fact", fact);
  scope::TableStats dim;
  dim.true_rows = 1e6;
  dim.est_rows = 1e6;
  dim.avg_row_bytes = 40;
  dim.columns["pk"] = {1e6, 1e6};
  dim.columns["attr"] = {100, 100};
  catalog.RegisterTable("dim", dim);
  return catalog;
}

opt::PhysicalPlan CompileTestPlan(const scope::Catalog& catalog) {
  const char* script = R"(
    f = EXTRACT k:long, grp:string, v:double FROM "fact";
    d = EXTRACT pk:long, attr:string FROM "dim";
    j = SELECT * FROM f JOIN d ON k == pk @ 1.0;
    a = SELECT grp, SUM(v) AS s FROM j GROUP BY grp;
    OUTPUT a TO "out";
  )";
  auto logical = scope::CompileSource(script, catalog);
  EXPECT_TRUE(logical.ok());
  opt::Optimizer optimizer(catalog);
  auto out = optimizer.Optimize(*logical, opt::RuleConfig::Default());
  EXPECT_TRUE(out.ok());
  return out->plan;
}

TEST(StageDecompositionTest, BoundariesAtExchanges) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterConfig config;
  auto stages = DecomposeIntoStages(plan, catalog, config);
  // Every node appears in exactly one stage.
  size_t assigned = 0;
  for (const auto& s : stages) assigned += s.node_ids.size();
  EXPECT_EQ(assigned, plan.size());
  // The number of stages is 1 + number of exchanges (each exchange opens
  // exactly one producer-side stage in a tree-shaped plan).
  EXPECT_EQ(stages.size(), 1u + static_cast<size_t>(plan.ExchangeCount()));
  for (const auto& s : stages) {
    EXPECT_GE(s.partitions, 1);
    EXPECT_GE(s.cpu_sec, 0.0);
  }
}

TEST(StageDecompositionTest, UpstreamEdgesPointAcrossStages) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  auto stages = DecomposeIntoStages(plan, catalog, {});
  for (size_t i = 0; i < stages.size(); ++i) {
    for (int up : stages[i].upstream) {
      EXPECT_NE(static_cast<size_t>(up), i);
      EXPECT_LT(static_cast<size_t>(up), stages.size());
    }
  }
}

TEST(ClusterSimTest, SameSeedSameMetrics) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  JobMetrics a = sim.Execute(plan, catalog, 123);
  JobMetrics b = sim.Execute(plan, catalog, 123);
  EXPECT_DOUBLE_EQ(a.latency_sec, b.latency_sec);
  EXPECT_DOUBLE_EQ(a.pn_hours, b.pn_hours);
  EXPECT_EQ(a.vertices, b.vertices);
}

TEST(ClusterSimTest, ByteCountersAreSeedIndependent) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  JobMetrics a = sim.Execute(plan, catalog, 1);
  JobMetrics b = sim.Execute(plan, catalog, 2);
  EXPECT_DOUBLE_EQ(a.data_read_bytes, b.data_read_bytes);
  EXPECT_DOUBLE_EQ(a.data_written_bytes, b.data_written_bytes);
  EXPECT_EQ(a.vertices, b.vertices);
  // Scans read at least the two input tables.
  EXPECT_GE(a.data_read_bytes, 4e7 * 80 + 1e6 * 40);
}

TEST(ClusterSimTest, LatencyVarianceExceedsPnHoursVariance) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  RunningStats latency, pn;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    JobMetrics m = sim.Execute(plan, catalog, seed);
    latency.Add(m.latency_sec);
    pn.Add(m.pn_hours);
  }
  // Paper Sec. 5.1: latency is far noisier than PNhours.
  EXPECT_GT(latency.cv(), 0.05);
  EXPECT_LT(pn.cv(), latency.cv());
}

TEST(ClusterSimTest, PnHoursIsCpuPlusIo) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterSimulator sim;
  JobMetrics m = sim.Execute(plan, catalog, 5);
  EXPECT_NEAR(m.pn_hours, m.cpu_hours + m.io_hours, 1e-12);
  EXPECT_GT(m.cpu_hours, 0);
  EXPECT_GT(m.io_hours, 0);
}

TEST(ClusterSimTest, MoreTokensReduceLatencyOfWideJobs) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterConfig few = {};
  few.tokens = 4;
  ClusterConfig many = {};
  many.tokens = 512;
  // Average over seeds to defeat noise.
  double lat_few = 0, lat_many = 0;
  for (uint64_t s = 0; s < 20; ++s) {
    lat_few += ClusterSimulator(few).Execute(plan, catalog, s).latency_sec;
    lat_many += ClusterSimulator(many).Execute(plan, catalog, s).latency_sec;
  }
  EXPECT_LT(lat_many, lat_few);
}

TEST(ClusterSimTest, RelativeDeltaHelper) {
  EXPECT_NEAR(RelativeDelta(90, 100), -0.1, 1e-12);
  EXPECT_NEAR(RelativeDelta(110, 100), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(RelativeDelta(5, 0), 0.0);
}

TEST(ClusterSimTest, MetricsToStringMentionsFields) {
  JobMetrics m;
  m.latency_sec = 12.5;
  m.pn_hours = 0.5;
  m.vertices = 7;
  std::string s = m.ToString();
  EXPECT_NE(s.find("latency"), std::string::npos);
  EXPECT_NE(s.find("vertices=7"), std::string::npos);
}

// Parameterized: the variability knobs behave monotonically.
class NoiseKnobTest : public ::testing::TestWithParam<double> {};

TEST_P(NoiseKnobTest, HigherCongestionSigmaRaisesLatencyCv) {
  scope::Catalog catalog = SimCatalog();
  opt::PhysicalPlan plan = CompileTestPlan(catalog);
  ClusterConfig quiet = {};
  quiet.stage_congestion_sigma = 0.01;
  quiet.job_congestion_sigma = 0.01;
  quiet.straggler_prob = 0.0;
  ClusterConfig noisy = quiet;
  noisy.stage_congestion_sigma = GetParam();
  RunningStats cv_quiet, cv_noisy;
  for (uint64_t s = 0; s < 30; ++s) {
    cv_quiet.Add(ClusterSimulator(quiet).Execute(plan, catalog, s).latency_sec);
    cv_noisy.Add(ClusterSimulator(noisy).Execute(plan, catalog, s).latency_sec);
  }
  EXPECT_GT(cv_noisy.cv(), cv_quiet.cv());
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NoiseKnobTest,
                         ::testing::Values(0.2, 0.4, 0.8));

}  // namespace
}  // namespace qo::exec

// Integration: workload generation -> compile -> simulate, across many
// templates; plus A/A variance structure checks (the paper's Sec. 5.1 core
// observation that latency is noisy while PNhours and I/O bytes are stable).
#include <gtest/gtest.h>

#include "common/stats.h"
#include "engine/engine.h"
#include "workload/workload.h"

namespace qo {
namespace {

TEST(EngineIntegrationTest, AllGeneratedJobsCompileAndRun) {
  workload::WorkloadDriver driver(
      {.num_templates = 30, .jobs_per_day = 40, .seed = 7});
  engine::ScopeEngine engine;
  auto jobs = driver.DayJobs(0);
  ASSERT_EQ(jobs.size(), 40u);
  int ran = 0;
  for (const auto& job : jobs) {
    auto result = engine.Run(job, opt::RuleConfig::Default(), 0);
    ASSERT_TRUE(result.ok()) << job.job_id << ": " << result.status()
                             << "\nscript:\n"
                             << job.script;
    EXPECT_GT(result->metrics.latency_sec, 0.0) << job.job_id;
    EXPECT_GT(result->metrics.pn_hours, 0.0) << job.job_id;
    EXPECT_GT(result->metrics.vertices, 0) << job.job_id;
    EXPECT_GT(result->metrics.data_read_bytes, 0.0) << job.job_id;
    ++ran;
  }
  EXPECT_EQ(ran, 40);
}

TEST(EngineIntegrationTest, DayJobsAreDeterministic) {
  workload::WorkloadDriver driver({.num_templates = 10, .jobs_per_day = 10,
                                   .seed = 99});
  auto a = driver.DayJobs(3);
  auto b = driver.DayJobs(3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_id, b[i].job_id);
    EXPECT_EQ(a[i].script, b[i].script);
    EXPECT_EQ(a[i].run_seed, b[i].run_seed);
  }
}

TEST(EngineIntegrationTest, SameSaltReplaysIdentically) {
  workload::WorkloadDriver driver({.num_templates = 5, .jobs_per_day = 5,
                                   .seed = 11});
  engine::ScopeEngine engine;
  auto jobs = driver.DayJobs(0);
  auto r1 = engine.Run(jobs[0], opt::RuleConfig::Default(), 42);
  auto r2 = engine.Run(jobs[0], opt::RuleConfig::Default(), 42);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->metrics.latency_sec, r2->metrics.latency_sec);
  EXPECT_DOUBLE_EQ(r1->metrics.pn_hours, r2->metrics.pn_hours);
}

TEST(EngineIntegrationTest, AAVarianceLatencyHighPnHoursBounded) {
  // Run each job 10 times (the paper's A/A protocol, Sec. 5.1) and compare
  // the coefficient of variation of latency vs PNhours.
  workload::WorkloadDriver driver(
      {.num_templates = 25, .jobs_per_day = 30, .seed = 1234});
  engine::ScopeEngine engine;
  auto jobs = driver.DayJobs(0);
  std::vector<double> latency_cv, pn_cv;
  for (const auto& job : jobs) {
    auto compiled = engine.Compile(job, opt::RuleConfig::Default());
    ASSERT_TRUE(compiled.ok());
    RunningStats lat, pn;
    for (uint64_t run = 0; run < 10; ++run) {
      auto m = engine.Execute(job, compiled->plan, run);
      lat.Add(m.latency_sec);
      pn.Add(m.pn_hours);
    }
    latency_cv.push_back(lat.cv());
    pn_cv.push_back(pn.cv());
  }
  // Fig. 3: the majority of jobs exceed 5% latency variance.
  EXPECT_GT(FractionAbove(latency_cv, 0.05), 0.7);
  // Fig. 5: PNhours is markedly more stable than latency.
  EXPECT_GT(Mean(latency_cv), Mean(pn_cv) * 2.0);
}

TEST(EngineIntegrationTest, IoBytesAreDeterministicAcrossAARuns) {
  workload::WorkloadDriver driver({.num_templates = 5, .jobs_per_day = 8,
                                   .seed = 5});
  engine::ScopeEngine engine;
  for (const auto& job : driver.DayJobs(0)) {
    auto compiled = engine.Compile(job, opt::RuleConfig::Default());
    ASSERT_TRUE(compiled.ok());
    auto m1 = engine.Execute(job, compiled->plan, 1);
    auto m2 = engine.Execute(job, compiled->plan, 2);
    // Sec. 4.3: "data read and data written remain constant" across runs.
    EXPECT_DOUBLE_EQ(m1.data_read_bytes, m2.data_read_bytes);
    EXPECT_DOUBLE_EQ(m1.data_written_bytes, m2.data_written_bytes);
  }
}

}  // namespace
}  // namespace qo

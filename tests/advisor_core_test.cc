// QO-Advisor core tests: span computation, feature generation,
// recommendation, validation model, hint generation, and the end-to-end
// daily pipeline.
#include <gtest/gtest.h>

#include "core/feature_gen.h"
#include "core/hint_gen.h"
#include "core/pipeline.h"
#include "core/recommend.h"
#include "core/span.h"
#include "core/validation.h"
#include "experiments/experiments.h"

namespace qo::advisor {
namespace {

engine::ScopeEngine& Engine() {
  static auto* engine = new engine::ScopeEngine();
  return *engine;
}

std::vector<workload::JobInstance> Jobs(uint64_t seed = 2024, int count = 40) {
  workload::WorkloadDriver driver(
      {.num_templates = 20, .jobs_per_day = count, .seed = seed});
  return driver.DayJobs(0);
}

// ---------------------------------------------------------------------------
// Span computation.
// ---------------------------------------------------------------------------

TEST(SpanTest, SpanNeverContainsRequiredOrSoleImplementationRules) {
  const auto& reg = opt::RuleRegistry::Get();
  for (const auto& job : Jobs()) {
    auto span = ComputeJobSpan(Engine(), job);
    ASSERT_TRUE(span.ok()) << span.status();
    EXPECT_TRUE(
        (span->span & reg.CategoryMask(opt::RuleCategory::kRequired)).None());
    for (int sole : {opt::rules::kScanImpl, opt::rules::kOutputImpl,
                     opt::rules::kFilterImpl, opt::rules::kProjectImpl,
                     opt::rules::kExchangeShuffleImpl,
                     opt::rules::kExchangeGatherImpl}) {
      EXPECT_FALSE(span->span.Test(sole)) << job.job_id;
    }
    EXPECT_GE(span->iterations, 1);
  }
}

TEST(SpanTest, SomeJobsHaveEmptySpans) {
  // ~30% of templates are trivial copy jobs whose plan no flip can change.
  int empty = 0, total = 0;
  for (const auto& job : Jobs(7, 60)) {
    auto span = ComputeJobSpan(Engine(), job);
    ASSERT_TRUE(span.ok());
    ++total;
    empty += span->span.None();
  }
  EXPECT_GT(empty, 0);
  EXPECT_LT(empty, total);
}

TEST(SpanTest, SpanRulesComeFromSignaturesSeen) {
  for (const auto& job : Jobs(3, 10)) {
    auto span = ComputeJobSpan(Engine(), job);
    ASSERT_TRUE(span.ok());
    // Rules used by the default plan (minus infra) must be in the span.
    const auto& reg = opt::RuleRegistry::Get();
    BitVector256 default_flippable =
        span->default_compilation->signature.AndNot(
            reg.CategoryMask(opt::RuleCategory::kRequired));
    default_flippable = default_flippable.AndNot(BitVector256::FromPositions(
        {opt::rules::kScanImpl, opt::rules::kOutputImpl,
         opt::rules::kFilterImpl, opt::rules::kProjectImpl,
         opt::rules::kExchangeShuffleImpl, opt::rules::kExchangeGatherImpl}));
    EXPECT_TRUE(span->span.Contains(default_flippable)) << job.job_id;
  }
}

// ---------------------------------------------------------------------------
// Feature generation.
// ---------------------------------------------------------------------------

telemetry::WorkloadView DayView(uint64_t seed = 11, int count = 30) {
  telemetry::WorkloadView view;
  for (const auto& job : Jobs(seed, count)) {
    auto result = Engine().Run(job, opt::RuleConfig::Default(), 0);
    if (!result.ok()) continue;
    view.rows.push_back(
        telemetry::MakeViewRow(job, *result->compilation, result->metrics));
  }
  return view;
}

TEST(FeatureGenTest, DropsEmptySpansAndReportsStats) {
  telemetry::WorkloadView view = DayView();
  FeatureGenStats stats;
  auto features = GenerateFeatures(Engine(), view, &stats);
  EXPECT_EQ(stats.input_jobs, view.rows.size());
  EXPECT_EQ(stats.emitted, features.size());
  EXPECT_EQ(stats.input_jobs,
            stats.emitted + stats.empty_span_dropped + stats.compile_failures);
  for (const auto& f : features) {
    EXPECT_TRUE(f.span.Any());
    EXPECT_GT(f.default_compilation->est_cost, 0);
    // Context carries the Table 1 features.
    bandit::JobContext ctx = f.ToContext();
    EXPECT_EQ(ctx.span, f.span);
    EXPECT_GT(ctx.est_cost, 0);
  }
}

// ---------------------------------------------------------------------------
// Recommendation.
// ---------------------------------------------------------------------------

TEST(RecommendTest, EvaluateFlipClassifiesOutcomes) {
  telemetry::WorkloadView view = DayView(13);
  auto features = GenerateFeatures(Engine(), view);
  ASSERT_FALSE(features.empty());
  bandit::PersonalizerService personalizer({.seed = 1});
  Recommender recommender(&Engine(), &personalizer, {});

  int classified = 0;
  for (const auto& f : features) {
    for (int bit : f.span.Positions()) {
      Recommendation rec = recommender.EvaluateFlip(f, bit);
      ++classified;
      switch (rec.outcome) {
        case RecompileOutcome::kLowerCost:
          EXPECT_LT(rec.est_cost_new, rec.est_cost_default);
          EXPECT_GT(rec.reward, 1.0);
          EXPECT_LE(rec.reward, 2.0);  // clipped (paper Sec. 4.2)
          break;
        case RecompileOutcome::kHigherCost:
          EXPECT_GT(rec.est_cost_new, rec.est_cost_default);
          EXPECT_LT(rec.reward, 1.0);
          break;
        case RecompileOutcome::kEqualCost:
          EXPECT_NEAR(rec.reward, 1.0, 1e-6);
          break;
        case RecompileOutcome::kRecompileFailure:
          EXPECT_EQ(rec.reward, 0.0);
          break;
      }
      // Flip direction must disagree with the default config.
      EXPECT_EQ(rec.enable,
                !opt::RuleConfig::Default().IsEnabled(bit));
    }
  }
  EXPECT_GT(classified, 20);
}

TEST(RecommendTest, NoopFlipIsIdentity) {
  telemetry::WorkloadView view = DayView(13);
  auto features = GenerateFeatures(Engine(), view);
  ASSERT_FALSE(features.empty());
  bandit::PersonalizerService personalizer({.seed = 1});
  Recommender recommender(&Engine(), &personalizer, {});
  Recommendation rec = recommender.EvaluateFlip(features[0], -1);
  EXPECT_EQ(rec.outcome, RecompileOutcome::kEqualCost);
  EXPECT_DOUBLE_EQ(rec.reward, 1.0);
  EXPECT_EQ(rec.ToConfig(), opt::RuleConfig::Default());
}

TEST(RecommendTest, ForwardedRecommendationsAllImproveEstCost) {
  telemetry::WorkloadView view = DayView(17);
  auto features = GenerateFeatures(Engine(), view);
  bandit::PersonalizerService personalizer({.seed = 9});
  Recommender recommender(&Engine(), &personalizer, {});
  RecommenderStats stats;
  auto recs = recommender.RecommendDay(features, 0, &stats);
  EXPECT_EQ(stats.jobs, features.size());
  EXPECT_EQ(stats.forwarded, recs.size());
  for (const auto& rec : recs) {
    EXPECT_TRUE(rec.ImprovesEstimatedCost());
    EXPECT_LT(rec.est_cost_new, rec.est_cost_default);
  }
  // The off-policy design logs one uniform event and one acting event per
  // job (uniform probes default to 1).
  EXPECT_EQ(personalizer.logged_events(), 2 * features.size());
  EXPECT_EQ(personalizer.rewarded_events(), features.size());
}

TEST(RecommendTest, AblationDisablesPruning) {
  telemetry::WorkloadView view = DayView(17);
  auto features = GenerateFeatures(Engine(), view);
  bandit::PersonalizerService personalizer({.seed = 9});
  RecommenderConfig config;
  config.prune_non_improving = false;
  config.use_contextual_bandit = false;
  Recommender recommender(&Engine(), &personalizer, config);
  RecommenderStats stats;
  auto recs = recommender.RecommendDay(features, 0, &stats);
  // Without pruning, non-improving flips flow through too.
  size_t improving = 0;
  for (const auto& rec : recs) improving += rec.ImprovesEstimatedCost();
  EXPECT_GT(recs.size(), improving);
}

// ---------------------------------------------------------------------------
// Validation model.
// ---------------------------------------------------------------------------

TEST(ValidationTest, RefusesToTrainOnTooFewSamples) {
  ValidationModel model({.min_training_samples = 10});
  std::vector<ValidationSample> samples(5);
  EXPECT_FALSE(model.Train(samples).ok());
  EXPECT_FALSE(model.trained());
}

TEST(ValidationTest, LearnsIoToPnRelationship) {
  // Synthetic ground truth: pn_delta = 0.8*read + 0.3*written + noise.
  Rng rng(5);
  std::vector<ValidationSample> samples;
  for (int i = 0; i < 200; ++i) {
    ValidationSample s;
    s.data_read_delta = rng.Uniform(-0.6, 0.6);
    s.data_written_delta = rng.Uniform(-0.6, 0.6);
    s.future_pn_delta = 0.8 * s.data_read_delta + 0.3 * s.data_written_delta +
                        rng.Normal(0, 0.01);
    samples.push_back(s);
  }
  ValidationModel model({.accept_threshold = -0.1,
                         .min_training_samples = 50});
  ASSERT_TRUE(model.Train(samples).ok());
  EXPECT_TRUE(model.trained());
  EXPECT_NEAR(model.regression().weights()[0], 0.8, 0.05);
  EXPECT_NEAR(model.regression().weights()[1], 0.3, 0.05);
  // Acceptance: a big read reduction is accepted, a regression is not.
  flight::FlightResult good;
  good.data_read_delta = -0.5;
  good.data_written_delta = -0.2;
  EXPECT_TRUE(model.Accept(good));
  flight::FlightResult bad;
  bad.data_read_delta = 0.2;
  bad.data_written_delta = 0.0;
  EXPECT_FALSE(model.Accept(bad));
  // Borderline: predicted just above the threshold is rejected.
  flight::FlightResult borderline;
  borderline.data_read_delta = -0.05;
  borderline.data_written_delta = 0.0;
  EXPECT_FALSE(model.Accept(borderline));
}

TEST(ValidationTest, UntrainedModelAcceptsNothing) {
  ValidationModel model;
  flight::FlightResult flight;
  flight.data_read_delta = -0.9;
  EXPECT_FALSE(model.Accept(flight));
}

// ---------------------------------------------------------------------------
// Hint generation.
// ---------------------------------------------------------------------------

TEST(HintGenTest, OneHintPerTemplateSkippingNoops) {
  std::vector<Recommendation> recs(4);
  recs[0].template_name = "A";
  recs[0].rule_id = opt::rules::kEagerAggregationLeft;
  recs[0].enable = true;
  recs[1].template_name = "A";  // duplicate template -> dropped
  recs[1].rule_id = opt::rules::kJoinAssociativity;
  recs[1].enable = true;
  recs[2].template_name = "B";
  recs[2].rule_id = -1;  // no-op -> dropped
  recs[3].template_name = "C";
  recs[3].rule_id = opt::rules::kJoinCommute;
  recs[3].enable = false;
  sis::HintFile file = BuildHintFile(recs, 9);
  EXPECT_EQ(file.day, 9);
  ASSERT_EQ(file.entries.size(), 2u);
  EXPECT_EQ(file.entries[0].template_name, "A");
  EXPECT_EQ(file.entries[0].rule_id, opt::rules::kEagerAggregationLeft);
  EXPECT_EQ(file.entries[1].template_name, "C");
  EXPECT_FALSE(file.entries[1].enable);
}

// ---------------------------------------------------------------------------
// End-to-end pipeline.
// ---------------------------------------------------------------------------

TEST(PipelineTest, MultiDayRunProducesConsistentReportsAndHints) {
  experiments::ExperimentEnv env(
      {.num_templates = 40, .jobs_per_day = 80, .seed = 31});
  sis::StatsInsightService sis;
  PipelineConfig config;
  config.flighting.total_budget_machine_hours = 1e6;
  config.validation.min_training_samples = 20;
  config.recommender.uniform_probes_per_job = 3;
  config.personalizer.epsilon = 0.2;
  QoAdvisorPipeline pipeline(&env.engine(), &sis, config);

  size_t total_hints = 0;
  for (int day = 0; day < 10; ++day) {
    telemetry::WorkloadView view = env.BuildDayView(day, &sis);
    auto report = pipeline.RunDay(view);
    ASSERT_TRUE(report.ok()) << report.status();
    // Report arithmetic must be internally consistent.
    EXPECT_EQ(report->flights_success + report->flights_failure +
                  report->flights_timeout + report->flights_filtered +
                  report->flights_budget_rejected,
              report->flight_requests);
    EXPECT_LE(report->validated, report->flights_success);
    EXPECT_LE(report->hints_uploaded, report->validated);
    EXPECT_LE(report->recommender.forwarded, report->recommender.jobs);
    // Every uniform probe rewards its own freshly ranked event, so no
    // Reward() may ever be rejected (the status used to be discarded).
    EXPECT_EQ(report->recommender.reward_failures, 0u);
    total_hints += report->hints_uploaded;
  }
  EXPECT_EQ(sis.active_hints() > 0, total_hints > 0);
  // The validation model must have trained within ten days.
  EXPECT_TRUE(pipeline.validation_model().trained());
  EXPECT_GE(pipeline.validation_samples().size(), 20u);
  // The pipeline sweeps many rule configs per job (span probes, multi-flip,
  // flighting); the per-job cross-config memo must have served a nonzero
  // share of those optimizer runs from a previously compiled config.
  telemetry::OptimizerTelemetry opt_telemetry =
      env.engine().optimizer_telemetry();
  if (opt_telemetry.memo_enabled) {
    EXPECT_GT(opt_telemetry.memo_full_hits + opt_telemetry.memo_norm_hits, 0u);
    EXPECT_GT(opt_telemetry.interned_symbols, 2u);
  }
}

TEST(PipelineTest, PersonalizerMemoryBoundedAcrossDays) {
  // One pipeline instance persists across days; the Personalizer's event
  // log must not grow without bound (retention drops events that have been
  // trained on / whose reward-join horizon has passed).
  experiments::ExperimentEnv env(
      {.num_templates = 40, .jobs_per_day = 80, .seed = 31});
  sis::StatsInsightService sis;
  PipelineConfig config;
  config.flighting.total_budget_machine_hours = 1e6;
  config.recommender.uniform_probes_per_job = 3;
  config.personalizer.retrain_interval = 64;
  config.personalizer.retention_window = 256;
  QoAdvisorPipeline pipeline(&env.engine(), &sis, config);
  for (int day = 0; day < 8; ++day) {
    auto report = pipeline.RunDay(env.BuildDayView(day, &sis));
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->recommender.reward_failures, 0u);
    EXPECT_LE(pipeline.personalizer().resident_events(), 256u);
  }
  // The run logged far more events than are retained...
  EXPECT_GT(pipeline.personalizer().logged_events(), 256u);
  EXPECT_GT(pipeline.personalizer().telemetry().events_compacted, 0u);
  // ...and every rewarded example still reaches the trainer: after a final
  // explicit retrain drains the pending batch, the incremental trainer has
  // consumed exactly one example per reward join — compaction never drops
  // an untrained example.
  pipeline.personalizer().Retrain();
  const auto& telemetry = pipeline.personalizer().telemetry();
  EXPECT_EQ(telemetry.examples_trained, telemetry.reward_joins);
  // The recommender's per-job combined-feature cache served every Rank.
  EXPECT_EQ(telemetry.combines, 0u);
  EXPECT_GT(telemetry.precombined_reused, 0u);
}

TEST(PipelineTest, HintedTemplatesCompileWithSingleFlip) {
  experiments::ExperimentEnv env(
      {.num_templates = 40, .jobs_per_day = 80, .seed = 31});
  sis::StatsInsightService sis;
  PipelineConfig config;
  config.flighting.total_budget_machine_hours = 1e6;
  config.validation.min_training_samples = 20;
  config.recommender.uniform_probes_per_job = 3;
  QoAdvisorPipeline pipeline(&env.engine(), &sis, config);
  for (int day = 0; day < 12 && sis.active_hints() < 2; ++day) {
    pipeline.RunDay(env.BuildDayView(day, &sis)).ok();
  }
  if (sis.active_hints() == 0) GTEST_SKIP() << "no hints in 12 days";
  for (const auto& job : env.driver().DayJobs(12)) {
    auto hint = sis.LookupHint(job.template_name);
    if (!hint.has_value()) continue;
    opt::RuleConfig config_with_hint = hint->ToConfig();
    EXPECT_EQ(config_with_hint.DiffFromDefault().size(), 1u);
    auto compiled = env.engine().Compile(job, config_with_hint);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
  }
}

}  // namespace
}  // namespace qo::advisor

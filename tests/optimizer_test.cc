// Optimizer tests: rule registry invariants, configurations, cardinality
// derivation, cost model, plan shapes, signatures, and a property sweep over
// all 256 single-rule flips.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "optimizer/rules.h"
#include "runtime/runtime.h"
#include "scope/compiler.h"

namespace qo::opt {
namespace {

// ---------------------------------------------------------------------------
// Rule registry and configurations.
// ---------------------------------------------------------------------------

TEST(RuleRegistryTest, Has256RulesInFourCategories) {
  const auto& reg = RuleRegistry::Get();
  size_t total = 0;
  for (auto cat :
       {RuleCategory::kRequired, RuleCategory::kOnByDefault,
        RuleCategory::kOffByDefault, RuleCategory::kImplementation}) {
    total += reg.ByCategory(cat).size();
    EXPECT_EQ(reg.ByCategory(cat).size(),
              static_cast<size_t>(reg.CategoryMask(cat).Count()));
  }
  EXPECT_EQ(total, 256u);
}

TEST(RuleRegistryTest, CategoryMasksArePartition) {
  const auto& reg = RuleRegistry::Get();
  BitVector256 all = reg.CategoryMask(RuleCategory::kRequired) |
                     reg.CategoryMask(RuleCategory::kOnByDefault) |
                     reg.CategoryMask(RuleCategory::kOffByDefault) |
                     reg.CategoryMask(RuleCategory::kImplementation);
  EXPECT_EQ(all.Count(), 256);
  EXPECT_TRUE((reg.CategoryMask(RuleCategory::kRequired) &
               reg.CategoryMask(RuleCategory::kOnByDefault))
                  .None());
}

TEST(RuleRegistryTest, BehavioralRulesHaveNames) {
  const auto& reg = RuleRegistry::Get();
  EXPECT_EQ(reg.name(rules::kJoinCommute), "JoinCommute");
  EXPECT_EQ(reg.name(rules::kEagerAggregationLeft), "EagerAggregationLeft");
  EXPECT_EQ(reg.name(rules::kHashJoinImpl), "HashJoinImpl");
  EXPECT_EQ(reg.category(rules::kEagerAggregationLeft),
            RuleCategory::kOffByDefault);
  // Merge join / stream agg are off-by-default alternative implementations.
  EXPECT_EQ(reg.category(rules::kMergeJoinImpl), RuleCategory::kOffByDefault);
  EXPECT_EQ(reg.category(rules::kStreamAggImpl), RuleCategory::kOffByDefault);
}

TEST(RuleConfigTest, DefaultEnablesExpectedCategories) {
  RuleConfig config = RuleConfig::Default();
  EXPECT_TRUE(config.IsEnabled(rules::kNormalizeScript));
  EXPECT_TRUE(config.IsEnabled(rules::kFilterPushdownIntoJoinLeft));
  EXPECT_TRUE(config.IsEnabled(rules::kHashJoinImpl));
  EXPECT_FALSE(config.IsEnabled(rules::kEagerAggregationLeft));
  EXPECT_FALSE(config.IsEnabled(rules::kBroadcastJoinAggressive));
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_TRUE(config.DiffFromDefault().empty());
}

TEST(RuleConfigTest, SingleFlipDiff) {
  RuleConfig config = RuleConfig::DefaultWithFlip(rules::kJoinAssociativity);
  EXPECT_TRUE(config.IsEnabled(rules::kJoinAssociativity));
  EXPECT_EQ(config.DiffFromDefault(),
            std::vector<int>{rules::kJoinAssociativity});
  config.Flip(rules::kJoinAssociativity);
  EXPECT_EQ(config, RuleConfig::Default());
}

TEST(RuleConfigTest, ValidateRejectsDisabledRequiredRule) {
  RuleConfig config = RuleConfig::DefaultWithFlip(rules::kBindReferences);
  auto status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCompileError());
  EXPECT_NE(status.message().find("BindReferences"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cardinality derivation.
// ---------------------------------------------------------------------------

scope::Catalog CardCatalog() {
  scope::Catalog catalog;
  scope::TableStats t;
  t.true_rows = 10000;
  t.est_rows = 5000;  // optimizer sees a stale estimate
  t.avg_row_bytes = 50;
  t.columns["k"] = {100, 80};
  t.columns["v"] = {1000, 900};
  catalog.RegisterTable("t", t);
  return catalog;
}

scope::Schema CardSchema() {
  scope::Schema s;
  s.columns = {{"k", scope::ColumnType::kLong},
               {"v", scope::ColumnType::kDouble}};
  return s;
}

TEST(CardinalityTest, ScanUsesModeSpecificRows) {
  scope::Catalog catalog = CardCatalog();
  StatsDeriver est(catalog, StatsMode::kEstimated);
  StatsDeriver tru(catalog, StatsMode::kTrue);
  EXPECT_DOUBLE_EQ(est.Scan("t", CardSchema()).rows, 5000);
  EXPECT_DOUBLE_EQ(tru.Scan("t", CardSchema()).rows, 10000);
  EXPECT_DOUBLE_EQ(est.Scan("t", CardSchema()).NdvOf("k"), 80);
  EXPECT_DOUBLE_EQ(tru.Scan("t", CardSchema()).NdvOf("k"), 100);
}

TEST(CardinalityTest, FilterTrueModeUsesAnnotation) {
  scope::Catalog catalog = CardCatalog();
  StatsDeriver est(catalog, StatsMode::kEstimated);
  StatsDeriver tru(catalog, StatsMode::kTrue);
  RelStats in_est = est.Scan("t", CardSchema());
  RelStats in_tru = tru.Scan("t", CardSchema());
  scope::Predicate pred;
  pred.column = "k";
  pred.op = scope::CompareOp::kEq;
  pred.literal = "5";
  pred.true_selectivity = 0.5;
  // Estimated: 1/ndv_est(k) = 1/80. True: the annotation.
  EXPECT_NEAR(est.Filter(in_est, {pred}).rows, 5000.0 / 80.0, 1e-9);
  EXPECT_NEAR(tru.Filter(in_tru, {pred}).rows, 5000.0, 1e-9);
}

TEST(CardinalityTest, FilterHeuristicsByOperator) {
  scope::Catalog catalog = CardCatalog();
  StatsDeriver est(catalog, StatsMode::kEstimated);
  RelStats in = est.Scan("t", CardSchema());
  auto sel_of = [&](scope::CompareOp op) {
    scope::Predicate p;
    p.column = "k";
    p.op = op;
    p.literal = "1";
    return est.PredicateSelectivity(p, in);
  };
  EXPECT_NEAR(sel_of(scope::CompareOp::kEq), 1.0 / 80, 1e-12);
  EXPECT_NEAR(sel_of(scope::CompareOp::kNe), 1.0 - 1.0 / 80, 1e-12);
  EXPECT_NEAR(sel_of(scope::CompareOp::kLt), 1.0 / 3.0, 1e-12);
}

TEST(CardinalityTest, JoinEstimateVsTrueFanout) {
  scope::Catalog catalog = CardCatalog();
  StatsDeriver est(catalog, StatsMode::kEstimated);
  StatsDeriver tru(catalog, StatsMode::kTrue);
  RelStats l_est = est.Scan("t", CardSchema());
  RelStats l_tru = tru.Scan("t", CardSchema());
  // est: |L||R| / max(ndv). true: L * fanout.
  RelStats j_est = est.Join(l_est, l_est, "k", "k", 2.0);
  RelStats j_tru = tru.Join(l_tru, l_tru, "k", "k", 2.0);
  EXPECT_NEAR(j_est.rows, 5000.0 * 5000.0 / 80.0, 1e-6);
  EXPECT_NEAR(j_tru.rows, 10000.0 * 2.0, 1e-6);
}

TEST(CardinalityTest, AggregateGroupsCappedByRows) {
  scope::Catalog catalog = CardCatalog();
  StatsDeriver est(catalog, StatsMode::kEstimated);
  RelStats in = est.Scan("t", CardSchema());
  RelStats agg = est.Aggregate(in, {"k"}, {});
  EXPECT_NEAR(agg.rows, 80.0, 1e-9);  // ndv(k)
  RelStats global = est.Aggregate(in, std::vector<qo::Symbol>{}, {});
  EXPECT_DOUBLE_EQ(global.rows, 1.0);
}

TEST(CardinalityTest, PartialAggregateBoundedByGroupsTimesPartitions) {
  scope::Catalog catalog = CardCatalog();
  StatsDeriver est(catalog, StatsMode::kEstimated);
  RelStats in = est.Scan("t", CardSchema());
  RelStats partial = est.PartialAggregate(in, {"k"}, 10);
  EXPECT_NEAR(partial.rows, 800.0, 1e-9);  // 80 groups x 10 partitions
  RelStats one_part = est.PartialAggregate(in, {"k"}, 1);
  EXPECT_NEAR(one_part.rows, 80.0, 1e-9);
}

TEST(CardinalityTest, UnionAddsRows) {
  scope::Catalog catalog = CardCatalog();
  StatsDeriver est(catalog, StatsMode::kEstimated);
  RelStats in = est.Scan("t", CardSchema());
  EXPECT_DOUBLE_EQ(est.UnionAll(in, in).rows, 10000.0);
}

// ---------------------------------------------------------------------------
// Cost model.
// ---------------------------------------------------------------------------

TEST(CostModelTest, ChoosePartitionsClampsAndScales) {
  EXPECT_EQ(ChoosePartitions(0), 1);
  EXPECT_EQ(ChoosePartitions(256.0e6), 1);
  EXPECT_EQ(ChoosePartitions(257.0e6), 2);
  EXPECT_EQ(ChoosePartitions(1.0e15), 500);
}

TEST(CostModelTest, BroadcastCostGrowsWithConsumers) {
  CostModel model;
  PhysicalNode node;
  node.kind = PhysOpKind::kExchangeBroadcast;
  node.est_rows = 1000;
  node.est_bytes = 1.0e6;
  node.partitions = 10;
  double c10 = model.LocalCost(node, {1000}, {1.0e6});
  node.partitions = 100;
  double c100 = model.LocalCost(node, {1000}, {1.0e6});
  EXPECT_GT(c100, c10 * 5);
}

TEST(CostModelTest, MergeJoinIncludesSortCost) {
  CostModel model;
  PhysicalNode hash, merge;
  hash.kind = PhysOpKind::kHashJoin;
  merge.kind = PhysOpKind::kMergeJoin;
  hash.partitions = merge.partitions = 4;
  std::vector<double> rows = {1.0e7, 1.0e7};
  std::vector<double> bytes = {1.0e9, 1.0e9};
  EXPECT_GT(model.LocalCost(merge, rows, bytes),
            model.LocalCost(hash, rows, bytes));
}

// ---------------------------------------------------------------------------
// End-to-end optimization properties.
// ---------------------------------------------------------------------------

scope::Catalog PlanCatalog() {
  scope::Catalog catalog;
  scope::TableStats fact;
  fact.true_rows = 5e7;
  fact.est_rows = 6e7;
  fact.avg_row_bytes = 80;
  fact.columns["k"] = {2e5, 1.5e5};
  fact.columns["grp"] = {50, 45};
  fact.columns["v"] = {1e6, 1e6};
  catalog.RegisterTable("fact", fact);
  scope::TableStats dim;
  dim.true_rows = 2e6;
  dim.est_rows = 2.2e6;
  dim.avg_row_bytes = 40;
  dim.columns["pk"] = {2e6, 2.2e6};
  dim.columns["attr"] = {300, 280};
  catalog.RegisterTable("dim", dim);
  return catalog;
}

const char* kPlanScript = R"(
  f = EXTRACT k:long, grp:string, v:double FROM "fact";
  d = EXTRACT pk:long, attr:string FROM "dim";
  fd = SELECT * FROM f JOIN d ON k == pk @ 1.0 WHERE grp == "g" @ 0.02;
  agg = SELECT attr, SUM(v) AS total FROM fd GROUP BY attr;
  OUTPUT agg TO "out";
)";

TEST(OptimizerPlanTest, DefaultPlanIsWellFormed) {
  scope::Catalog catalog = PlanCatalog();
  auto logical = scope::CompileSource(kPlanScript, catalog);
  ASSERT_TRUE(logical.ok()) << logical.status();
  Optimizer optimizer(catalog);
  auto out = optimizer.Optimize(*logical, RuleConfig::Default());
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(out->est_cost, 0);
  // Root must be the Output operator; all children ids must be valid.
  ASSERT_EQ(out->plan.roots.size(), 1u);
  EXPECT_EQ(out->plan.node(out->plan.roots[0]).kind, PhysOpKind::kOutput);
  for (const auto& node : out->plan.nodes) {
    for (int c : node.children) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, static_cast<int>(out->plan.size()));
    }
    EXPECT_GE(node.partitions, 1);
    EXPECT_GE(node.est_rows, 0);
    EXPECT_GE(node.true_rows, 0);
  }
  // Filter was pushed into the scan by normalization.
  bool scan_with_pred = false;
  for (const auto& node : out->plan.nodes) {
    if (node.kind == PhysOpKind::kScan && !node.predicates.empty()) {
      scan_with_pred = true;
    }
  }
  EXPECT_TRUE(scan_with_pred) << out->plan.ToString();
}

TEST(OptimizerPlanTest, SignatureContainsUsedImplementations) {
  scope::Catalog catalog = PlanCatalog();
  auto logical = scope::CompileSource(kPlanScript, catalog);
  ASSERT_TRUE(logical.ok());
  Optimizer optimizer(catalog);
  auto out = optimizer.Optimize(*logical, RuleConfig::Default());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->signature.Test(rules::kScanImpl));
  EXPECT_TRUE(out->signature.Test(rules::kOutputImpl));
  EXPECT_TRUE(out->signature.Test(rules::kHashAggImpl));
  // Join implemented somehow.
  EXPECT_TRUE(out->signature.Test(rules::kHashJoinImpl) ||
              out->signature.Test(rules::kBroadcastJoinImpl) ||
              out->signature.Test(rules::kMergeJoinImpl));
  // Required normalization rules always present.
  EXPECT_TRUE(out->signature.Test(rules::kNormalizeScript));
  // Disabled rules can never appear in the signature.
  EXPECT_FALSE(out->signature.Test(rules::kEagerAggregationLeft));
}

TEST(OptimizerPlanTest, DisablingFilterPushdownKeepsFilterAboveScan) {
  scope::Catalog catalog = PlanCatalog();
  auto logical = scope::CompileSource(kPlanScript, catalog);
  ASSERT_TRUE(logical.ok());
  Optimizer optimizer(catalog);
  auto config = RuleConfig::Default();
  config.Disable(rules::kFilterIntoScan);
  auto out = optimizer.Optimize(*logical, config);
  ASSERT_TRUE(out.ok());
  for (const auto& node : out->plan.nodes) {
    if (node.kind == PhysOpKind::kScan) {
      EXPECT_TRUE(node.predicates.empty());
    }
  }
  EXPECT_FALSE(out->signature.Test(rules::kFilterIntoScan));
}

TEST(OptimizerPlanTest, EnablingOffByDefaultRuleNeverRaisesEstCost) {
  // Adding alternatives to the search space can only help the estimate.
  scope::Catalog catalog = PlanCatalog();
  auto logical = scope::CompileSource(kPlanScript, catalog);
  ASSERT_TRUE(logical.ok());
  Optimizer optimizer(catalog);
  auto base = optimizer.Optimize(*logical, RuleConfig::Default());
  ASSERT_TRUE(base.ok());
  for (int rule :
       RuleRegistry::Get().ByCategory(RuleCategory::kOffByDefault)) {
    auto flipped =
        optimizer.Optimize(*logical, RuleConfig::DefaultWithFlip(rule));
    ASSERT_TRUE(flipped.ok()) << RuleRegistry::Get().name(rule);
    EXPECT_LE(flipped->est_cost, base->est_cost * (1.0 + 1e-9))
        << RuleRegistry::Get().name(rule);
  }
}

// Property sweep: flipping each of the 256 rules either produces a valid
// plan (positive cost, valid roots) or a clean CompileError — never a crash
// or a malformed result.
class AllFlipsTest : public ::testing::TestWithParam<int> {};

TEST_P(AllFlipsTest, FlipIsSafe) {
  static const scope::Catalog catalog = PlanCatalog();
  static const auto logical = scope::CompileSource(kPlanScript, catalog);
  ASSERT_TRUE(logical.ok());
  Optimizer optimizer(catalog);
  int rule = GetParam();
  auto out = optimizer.Optimize(*logical,
                                RuleConfig::DefaultWithFlip(rule));
  if (RuleRegistry::Get().category(rule) == RuleCategory::kRequired) {
    EXPECT_FALSE(out.ok());
    return;
  }
  if (out.ok()) {
    EXPECT_GT(out->est_cost, 0);
    EXPECT_FALSE(out->plan.roots.empty());
  } else {
    EXPECT_TRUE(out.status().IsCompileError()) << out.status();
  }
}

INSTANTIATE_TEST_SUITE_P(All256, AllFlipsTest, ::testing::Range(0, 256));

TEST(OptimizerPlanTest, DeterministicAcrossRepeatedCalls) {
  scope::Catalog catalog = PlanCatalog();
  auto logical = scope::CompileSource(kPlanScript, catalog);
  ASSERT_TRUE(logical.ok());
  Optimizer optimizer(catalog);
  auto a = optimizer.Optimize(*logical, RuleConfig::Default());
  auto b = optimizer.Optimize(*logical, RuleConfig::Default());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->est_cost, b->est_cost);
  EXPECT_EQ(a->signature, b->signature);
  EXPECT_EQ(a->plan.ToString(), b->plan.ToString());
}

// ---------------------------------------------------------------------------
// Cross-config memo golden: the memo is an invisible accelerator. Outputs
// must be byte-identical with it on vs off, at any thread count.
// ---------------------------------------------------------------------------

workload::JobInstance MemoJob() {
  workload::JobInstance job;
  job.template_name = "memo_golden";
  job.job_id = "memo_golden_0";
  job.script = kPlanScript;
  job.catalog = PlanCatalog();
  return job;
}

std::vector<RuleConfig> MemoConfigs() {
  std::vector<RuleConfig> configs;
  configs.push_back(RuleConfig::Default());
  // An unwired placeholder rule: never consulted, so the memo's full tier
  // can serve this config from the default-config compile.
  configs.push_back(RuleConfig::DefaultWithFlip(100));
  // A consulted off-by-default exploration rule (post-normalization phase):
  // eligible for the normalized tier, not the full tier.
  configs.push_back(RuleConfig::DefaultWithFlip(rules::kEagerAggregationLeft));
  // A consulted normalization rule: changes the normalized plan itself.
  RuleConfig no_pushdown = RuleConfig::Default();
  no_pushdown.Disable(rules::kFilterIntoScan);
  configs.push_back(no_pushdown);
  return configs;
}

std::string OutputKey(const CompilationOutput& out) {
  char cost[64];
  std::snprintf(cost, sizeof(cost), "%.17g", out.est_cost);
  return out.plan.ToString() + "|" + cost + "|" + out.signature.ToString();
}

TEST(CrossConfigMemoTest, OutputsIdenticalWithMemoOnAndOff) {
  workload::JobInstance job = MemoJob();
  engine::ScopeEngine with_memo({}, {}, {}, {},
                                opt::CrossConfigMemoOptions{.enabled = true});
  engine::ScopeEngine without_memo(
      {}, {}, {}, {}, opt::CrossConfigMemoOptions{.enabled = false});
  ASSERT_TRUE(with_memo.cross_config_memo_enabled());
  ASSERT_FALSE(without_memo.cross_config_memo_enabled());

  for (const RuleConfig& config : MemoConfigs()) {
    auto a = with_memo.Compile(job, config);
    auto b = without_memo.Compile(job, config);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(OutputKey(*a), OutputKey(*b));
  }

  // The config sweep must actually have exercised the memo: config 100 is
  // never consulted (full-tier hit) and the exploration flip reuses the
  // normalized plan (normalized-tier hit).
  telemetry::OptimizerTelemetry t = with_memo.optimizer_telemetry();
  EXPECT_GT(t.memo_full_hits, 0u);
  EXPECT_GT(t.memo_norm_hits, 0u);
  EXPECT_GT(t.memo_misses, 0u);
  EXPECT_EQ(without_memo.optimizer_telemetry().memo_lookups(), 0u);
}

TEST(CrossConfigMemoTest, ThreadCountDoesNotChangeOutputs) {
  workload::JobInstance job = MemoJob();
  std::vector<RuleConfig> configs = MemoConfigs();

  // Reference: serial compile through a memo-enabled engine.
  engine::ScopeEngine serial({}, {}, {}, {},
                             opt::CrossConfigMemoOptions{.enabled = true});
  std::vector<std::string> expected;
  for (const RuleConfig& config : configs) {
    auto out = serial.Compile(job, config);
    ASSERT_TRUE(out.ok()) << out.status();
    expected.push_back(OutputKey(*out));
  }

  // Same sweep fanned out over 4 worker threads, twice over so later
  // iterations race against fully warmed memo tiers.
  engine::ScopeEngine threaded({}, {}, {}, {},
                               opt::CrossConfigMemoOptions{.enabled = true});
  runtime::ParallelRuntime pool({.num_threads = 4});
  std::vector<std::string> got = pool.TransformOrdered<std::string>(
      configs.size() * 2, [](size_t i) { return i; },
      [](size_t) { return 0.0; },
      [&](size_t i) {
        auto out = threaded.Compile(job, configs[i % configs.size()]);
        return out.ok() ? OutputKey(*out) : out.status().ToString();
      });
  ASSERT_EQ(got.size(), expected.size() * 2);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i % expected.size()]) << "config " << i;
  }
}

TEST(OptimizerPlanTest, TrueRowsUseAnnotationsNotEstimates) {
  scope::Catalog catalog = PlanCatalog();
  auto logical = scope::CompileSource(kPlanScript, catalog);
  ASSERT_TRUE(logical.ok());
  Optimizer optimizer(catalog);
  auto out = optimizer.Optimize(*logical, RuleConfig::Default());
  ASSERT_TRUE(out.ok());
  // The scan of "fact" must carry est 6e7-ish and true 5e7-ish rows.
  for (const auto& node : out->plan.nodes) {
    if (node.kind == PhysOpKind::kScan && node.table_path == "fact" &&
        node.predicates.empty()) {
      EXPECT_DOUBLE_EQ(node.est_rows, 6e7);
      EXPECT_DOUBLE_EQ(node.true_rows, 5e7);
    }
  }
}

}  // namespace
}  // namespace qo::opt

// Integration tests asserting the paper's qualitative shapes on reduced
// workloads (the full-size reproductions live in bench/).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "experiments/experiments.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace qo::experiments {
namespace {

ExperimentConfig SmallConfig() {
  return {.num_templates = 40, .jobs_per_day = 60, .seed = 2022, .aa_runs = 8};
}

TEST(ExperimentsTest, BuildDayViewExecutesWholeDay) {
  ExperimentEnv env(SmallConfig());
  telemetry::WorkloadView view = env.BuildDayView(0);
  EXPECT_EQ(view.rows.size(), 60u);
  for (const auto& row : view.rows) {
    EXPECT_GT(row.pn_hours, 0);
    EXPECT_GT(row.est_cost, 0);
  }
}

TEST(ExperimentsTest, BuildDayViewAppliesSisHints) {
  ExperimentEnv env(SmallConfig());
  // Install a hint for the most popular template and check the signature of
  // its occurrences changes when the flip matters.
  sis::StatsInsightService sis;
  telemetry::WorkloadView before = env.BuildDayView(0);
  ASSERT_FALSE(before.rows.empty());
  sis::HintFile file;
  file.entries.push_back({before.rows[0].normalized_job_name,
                          opt::rules::kEagerAggregationLeft, true});
  ASSERT_TRUE(sis.UploadHintFile(file).ok());
  telemetry::WorkloadView after = env.BuildDayView(0, &sis);
  EXPECT_EQ(before.rows.size(), after.rows.size());
}

TEST(ExperimentsTest, AAVarianceShapes) {
  ExperimentEnv env(SmallConfig());
  VarianceResult latency = RunAAVariance(env, Metric::kLatency);
  VarianceResult pn = RunAAVariance(env, Metric::kPnHours);
  ASSERT_FALSE(latency.time_vs_cv.empty());
  // Fig. 3: the overwhelming majority of jobs exceed 5% latency variance.
  EXPECT_GT(latency.fraction_above_5pct, 0.7);
  // Fig. 5: PNhours is far more stable.
  EXPECT_LT(pn.fraction_above_5pct, 0.5);
  EXPECT_LT(pn.fraction_above_5pct, latency.fraction_above_5pct);
  // Normalized execution times are within [0, 1].
  for (auto& [t, cv] : latency.time_vs_cv) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
    EXPECT_GE(cv, 0.0);
  }
}

TEST(ExperimentsTest, RecurringStabilityShowsRegressions) {
  ExperimentEnv env(SmallConfig());
  StabilityResult latency = RunRecurringStability(env, Metric::kLatency);
  ASSERT_GT(latency.week0_week1.size(), 3u);
  // All kept points improved in week0 by construction.
  for (auto& [w0, w1] : latency.week0_week1) EXPECT_LT(w0, 0.0);
  // Fig. 2: a substantial share regresses in week1.
  EXPECT_GT(latency.regress_fraction, 0.15);
  EXPECT_LT(latency.regress_fraction, 0.9);
}

TEST(ExperimentsTest, CostVsLatencyDecorrelated) {
  ExperimentEnv env(SmallConfig());
  CostLatencyResult result = RunCostVsLatency(env, /*days=*/3);
  ASSERT_GT(result.cost_vs_latency.size(), 10u);
  // Fig. 6: "no real correlation" — a meaningful share of estimated-cost
  // winners still regress latency.
  EXPECT_GT(result.improved_cost_latency_regress_fraction, 0.2);
  EXPECT_LT(std::abs(result.correlation), 0.7);
}

TEST(ExperimentsTest, DataReadPredictsPnHours) {
  ExperimentEnv env(SmallConfig());
  IoPnResult read = RunIoVsPn(env, IoMetric::kDataRead, /*days=*/3);
  ASSERT_GT(read.io_vs_pn.size(), 10u);
  // Fig. 7: clear positive trend.
  EXPECT_GT(read.correlation, 0.4);
  EXPECT_GT(read.trend.slope, 0.0);
}

TEST(ExperimentsTest, ValidationModelGeneralizesTemporally) {
  ExperimentEnv env(SmallConfig());
  ValidationAccuracyResult result =
      RunValidationAccuracy(env, /*train_days=*/8, -0.1, /*test_days=*/4);
  ASSERT_GT(result.test_jobs, 0u);
  // Fig. 9: among accepted jobs the vast majority truly improve.
  if (result.accepted > 0) {
    EXPECT_GE(result.frac_actual_below_zero, 0.7);
  }
  EXPECT_GT(result.model_r2, 0.2);
}

TEST(ExperimentsTest, CbBeatsRandomOnEstimatedCost) {
  ExperimentEnv env(SmallConfig());
  RandomVsCbResult result = RunRandomVsCb(env, /*cb_train_days=*/6,
                                          /*eval_day=*/6);
  ASSERT_GT(result.jobs_with_span, 10u);
  // Paper Sec. 5.6 / Table 3: the span is non-empty for roughly two thirds
  // of the jobs, and CB finds more lower-cost plans with fewer failures and
  // fewer higher-cost plans than uniform random flips.
  double span_share = static_cast<double>(result.jobs_with_span) /
                      static_cast<double>(result.jobs_total);
  EXPECT_GT(span_share, 0.4);
  EXPECT_LT(span_share, 0.95);
  // At this reduced scale the CB has little training data, so require only
  // parity on wins (the full-scale Table 3 bench shows the 3x gap) while the
  // loss-avoidance effects are already decisive.
  EXPECT_GE(result.cb.lower_cost, result.random.lower_cost);
  EXPECT_LT(result.cb.higher_cost, result.random.higher_cost);
  EXPECT_LE(result.cb.recompile_failures, result.random.recompile_failures);
  EXPECT_LT(result.cb.total_est_cost, result.random.total_est_cost);
}

TEST(ExperimentsTest, CostFilterAblationFloodsFlighting) {
  ExperimentEnv env(SmallConfig());
  CostFilterAblationResult result = RunCostFilterAblation(env);
  // Sec. 5.2: without the estimated-cost filters far more jobs reach
  // flighting and the provisioned budget no longer suffices.
  EXPECT_GT(result.flights_requested_without_filter,
            2 * result.flights_requested_with_filter);
  EXPECT_GE(result.budget_hours_without_filter,
            result.budget_hours_with_filter);
  EXPECT_EQ(result.timeouts_with_filter, 0u);
}

TEST(ExperimentsTest, EndToEndPipelineImpactIsNetPositive) {
  // The validation model needs min_training_samples flighting observations
  // before any hint goes live, and at SmallConfig scale (40x60) no template
  // accumulates enough within 14 train days — the hint file stays empty and
  // nothing matches on the eval days. Run this end-to-end test on a slightly
  // larger workload so the Table-2 assertion is actually exercised.
  ExperimentConfig config = SmallConfig();
  config.num_templates = 60;
  config.jobs_per_day = 90;
  ExperimentEnv env(config);
  AggregateImpactResult result =
      RunAggregateImpact(env, /*train_days=*/14, /*eval_days=*/4);
  ASSERT_GT(result.matched_jobs, 0) << "no hints matched: the pipeline "
                                       "produced no live hints at this scale";
  ASSERT_GT(result.active_hints, 0u);
  // Table 2: net PNhours reduction on matched jobs.
  EXPECT_LT(result.pn_hours_reduction, 0.0);
  EXPECT_EQ(result.pn_deltas.size(),
            static_cast<size_t>(result.matched_jobs));
  // Drill-down series are sorted.
  for (size_t i = 1; i < result.pn_deltas.size(); ++i) {
    EXPECT_LE(result.pn_deltas[i - 1], result.pn_deltas[i]);
  }
}

TEST(ExperimentsTest, RunReportCarriesKeyPipelineSeries) {
  // The observability contract the bench scripts and CI artifacts rely on:
  // after an end-to-end run, one run-report line carries phase quantiles and
  // every legacy telemetry surface as series.
  obs::SetMetricsEnabledForTest(1);
  obs::Registry::Get().ZeroAllForTest();
  {
    ExperimentEnv env(SmallConfig());
    sis::StatsInsightService sis;
    advisor::PipelineConfig config;
    config.runtime = env.runtime_options();
    // Snapshot while the pipeline is alive: its collector exports the
    // bandit/flighting/SIS series.
    advisor::QoAdvisorPipeline pipeline(&env.engine(), &sis, config,
                                        env.runtime());
    for (int day = 0; day < 4; ++day) {
      ASSERT_TRUE(pipeline.RunDay(env.BuildDayView(day, &sis)).ok());
    }
    obs::MetricsSnapshot snap = obs::Registry::Get().Snapshot();
    const std::string line = obs::RunReportJsonLine("experiments_test", 0, snap);
    obs::SetMetricsEnabledForTest(-1);

    // Line is a single JSON object with both top-level sections populated.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"series\":{"), std::string::npos);
    EXPECT_NE(line.find("\"quantiles\":{"), std::string::npos);
    EXPECT_NE(line.find("\"span.compile\":{\"count\":"), std::string::npos);

    // Compile-phase latency quantiles are populated.
    const obs::HistogramSnapshot* compile = snap.FindHistogram("span.compile");
    ASSERT_NE(compile, nullptr);
    EXPECT_GT(compile->total, 0u);
    EXPECT_GT(compile->Quantile(0.5), 0u);

    // Memo telemetry surfaces with a meaningful hit rate (the memo rides on
    // the compile cache, so QO_COMPILE_CACHE=0 or QO_CROSS_CONFIG_MEMO=0
    // legitimately disables it — the CI matrix legs run this suite under
    // both), and the bandit's reward join never failed.
    const char* cache_env = std::getenv("QO_COMPILE_CACHE");
    const char* memo_env = std::getenv("QO_CROSS_CONFIG_MEMO");
    const bool memo_expected =
        !(cache_env != nullptr && std::string(cache_env) == "0") &&
        !(memo_env != nullptr && std::string(memo_env) == "0");
    EXPECT_EQ(snap.SeriesValue("optimizer.memo.enabled"),
              memo_expected ? 1.0 : 0.0);
    if (memo_expected) {
      EXPECT_GT(snap.SeriesValue("optimizer.memo.hit_rate"), 0.0);
    }
    ASSERT_TRUE(snap.HasSeries("bandit.reward_failures"));
    EXPECT_EQ(snap.SeriesValue("bandit.reward_failures"), 0.0);
    EXPECT_GT(snap.SeriesValue("bandit.ranks"), 0.0);
  }
  obs::SetMetricsEnabledForTest(-1);
}

}  // namespace
}  // namespace qo::experiments

// End-to-end smoke tests: script -> logical plan -> physical plan.
#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "scope/compiler.h"

namespace qo {
namespace {

scope::Catalog MakeCatalog() {
  scope::Catalog catalog;
  scope::TableStats facts;
  facts.true_rows = 5e7;
  facts.est_rows = 4e7;
  facts.avg_row_bytes = 120;
  facts.columns["user_id"] = {1e6, 8e5};
  facts.columns["event"] = {50, 40};
  facts.columns["amount"] = {1e5, 1e5};
  catalog.RegisterTable("wasb://facts", facts);
  scope::TableStats dims;
  dims.true_rows = 1e5;
  dims.est_rows = 1.2e5;
  dims.avg_row_bytes = 60;
  dims.columns["id"] = {1e5, 1e5};
  dims.columns["country"] = {200, 180};
  catalog.RegisterTable("wasb://dims", dims);
  return catalog;
}

const char* kScript = R"(
  facts = EXTRACT user_id:long, event:string, amount:double
          FROM "wasb://facts";
  dims = EXTRACT id:long, country:string FROM "wasb://dims";
  filtered = SELECT user_id, event, amount FROM facts
             WHERE event == "purchase" @ 0.02;
  joined = SELECT user_id, country, amount FROM filtered
           JOIN dims ON user_id == id @ 1.0;
  agg = SELECT country, SUM(amount) AS total FROM joined GROUP BY country;
  OUTPUT agg TO "wasb://out";
)";

TEST(OptimizerSmokeTest, CompilesDefaultConfig) {
  scope::Catalog catalog = MakeCatalog();
  auto plan = scope::CompileSource(kScript, catalog);
  ASSERT_TRUE(plan.ok()) << plan.status();
  opt::Optimizer optimizer(catalog);
  auto out = optimizer.Optimize(plan.value(), opt::RuleConfig::Default());
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(out->est_cost, 0.0);
  EXPECT_FALSE(out->plan.roots.empty());
  EXPECT_GT(out->plan.size(), 5u);
  // Required normalization rules must appear in every signature.
  EXPECT_TRUE(out->signature.Test(opt::rules::kNormalizeScript));
  // A plan with a join and agg must use some implementation rules.
  EXPECT_TRUE(out->signature.Test(opt::rules::kScanImpl));
  EXPECT_TRUE(out->signature.Test(opt::rules::kOutputImpl));
}

TEST(OptimizerSmokeTest, DisabledRequiredRuleFailsCompilation) {
  scope::Catalog catalog = MakeCatalog();
  auto plan = scope::CompileSource(kScript, catalog);
  ASSERT_TRUE(plan.ok());
  opt::Optimizer optimizer(catalog);
  auto config = opt::RuleConfig::DefaultWithFlip(opt::rules::kNormalizeScript);
  auto out = optimizer.Optimize(plan.value(), config);
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsCompileError());
}

TEST(OptimizerSmokeTest, DisablingAllJoinImplsFails) {
  scope::Catalog catalog = MakeCatalog();
  auto plan = scope::CompileSource(kScript, catalog);
  ASSERT_TRUE(plan.ok());
  opt::Optimizer optimizer(catalog);
  auto config = opt::RuleConfig::Default();
  config.Disable(opt::rules::kHashJoinImpl);
  config.Disable(opt::rules::kBroadcastJoinImpl);
  config.Disable(opt::rules::kMergeJoinImpl);
  auto out = optimizer.Optimize(plan.value(), config);
  EXPECT_FALSE(out.ok());
}

TEST(OptimizerSmokeTest, SingleFlipChangesCostDeterministically) {
  scope::Catalog catalog = MakeCatalog();
  auto plan = scope::CompileSource(kScript, catalog);
  ASSERT_TRUE(plan.ok());
  opt::Optimizer optimizer(catalog);
  auto base = optimizer.Optimize(plan.value(), opt::RuleConfig::Default());
  ASSERT_TRUE(base.ok());
  auto base2 = optimizer.Optimize(plan.value(), opt::RuleConfig::Default());
  ASSERT_TRUE(base2.ok());
  EXPECT_DOUBLE_EQ(base->est_cost, base2->est_cost) << "non-deterministic";
  // Enabling eager aggregation may change the plan; cost must stay positive.
  auto flipped = optimizer.Optimize(
      plan.value(),
      opt::RuleConfig::DefaultWithFlip(opt::rules::kEagerAggregationLeft));
  ASSERT_TRUE(flipped.ok()) << flipped.status();
  EXPECT_GT(flipped->est_cost, 0.0);
}

}  // namespace
}  // namespace qo

// Flighting service and Stats & Insight Service tests.
#include <gtest/gtest.h>

#include "flighting/flighting.h"
#include "sis/sis.h"
#include "workload/workload.h"

namespace qo {
namespace {

workload::JobInstance FirstJob(uint64_t seed = 4) {
  workload::WorkloadDriver driver(
      {.num_templates = 10, .jobs_per_day = 10, .seed = seed});
  return driver.DayJobs(0)[0];
}

TEST(FlightingTest, SuccessfulFlightReportsDeltas) {
  engine::ScopeEngine engine;
  flight::FlightingService service(&engine,
                                   {.failure_prob = 0, .filtered_prob = 0});
  flight::FlightRequest request;
  request.job = FirstJob();
  request.candidate = opt::RuleConfig::Default();
  auto result = service.FlightOne(request, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, flight::FlightOutcome::kSuccess);
  // A/B of identical configs: byte deltas must be exactly zero.
  EXPECT_DOUBLE_EQ(result->data_read_delta, 0.0);
  EXPECT_DOUBLE_EQ(result->data_written_delta, 0.0);
  EXPECT_DOUBLE_EQ(result->vertices_delta, 0.0);
  EXPECT_GT(result->machine_hours, 0.0);
  EXPECT_GT(service.budget_used_hours(), 0.0);
}

TEST(FlightingTest, EnvironmentalFailuresHappen) {
  engine::ScopeEngine engine;
  flight::FlightingService service(
      &engine, {.failure_prob = 1.0, .filtered_prob = 0, .seed = 1});
  flight::FlightRequest request;
  request.job = FirstJob();
  auto result = service.FlightOne(request, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, flight::FlightOutcome::kFailure);
  // Failures consume no machine time.
  EXPECT_DOUBLE_EQ(service.budget_used_hours(), 0.0);
}

TEST(FlightingTest, BudgetExhaustionStopsFlights) {
  engine::ScopeEngine engine;
  flight::FlightingConfig config;
  config.failure_prob = 0;
  config.filtered_prob = 0;
  config.total_budget_machine_hours = 1e-9;  // exhausted after one flight
  flight::FlightingService service(&engine, config);
  flight::FlightRequest request;
  request.job = FirstJob();
  ASSERT_TRUE(service.FlightOne(request, 1).ok());
  auto second = service.FlightOne(request, 2);
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted());
  service.ResetBudget();
  EXPECT_TRUE(service.FlightOne(request, 3).ok());
}

TEST(FlightingTest, BatchRespectsQueueCapacityAndOrdersByPromise) {
  engine::ScopeEngine engine;
  flight::FlightingConfig config;
  config.failure_prob = 0;
  config.filtered_prob = 0;
  config.queue_capacity = 3;
  flight::FlightingService service(&engine, config);
  workload::WorkloadDriver driver(
      {.num_templates = 10, .jobs_per_day = 10, .seed = 5});
  auto jobs = driver.DayJobs(0);
  std::vector<flight::FlightRequest> requests;
  for (size_t i = 0; i < 5; ++i) {
    flight::FlightRequest r;
    r.job = jobs[i];
    // Reverse promise order; the service should flight the lowest deltas
    // first.
    r.est_cost_delta = -0.1 * static_cast<double>(i);
    requests.push_back(std::move(r));
  }
  auto results = service.FlightBatch(std::move(requests), 1);
  // Queue capacity truncated to 3 requests; the first 3 submitted are kept,
  // then ordered most-promising-first.
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].job_id, jobs[2].job_id);
}

TEST(FlightingTest, BatchReportsBudgetRejectedWhenBudgetRunsOut) {
  engine::ScopeEngine engine;
  flight::FlightingConfig config;
  config.failure_prob = 0;
  config.filtered_prob = 0;
  config.total_budget_machine_hours = 1e-9;
  flight::FlightingService service(&engine, config);
  workload::WorkloadDriver driver(
      {.num_templates = 10, .jobs_per_day = 10, .seed = 6});
  auto jobs = driver.DayJobs(0);
  std::vector<flight::FlightRequest> requests;
  for (size_t i = 0; i < 4; ++i) {
    flight::FlightRequest r;
    r.job = jobs[i];
    requests.push_back(std::move(r));
  }
  auto results = service.FlightBatch(std::move(requests), 1);
  ASSERT_EQ(results.size(), 4u);
  int rejected = 0;
  for (const auto& r : results) {
    rejected += r.outcome == flight::FlightOutcome::kBudgetRejected;
  }
  EXPECT_GE(rejected, 3);
  // Legacy telemetry keeps counting rejections in the timeout total.
  EXPECT_EQ(service.telemetry().flights_timeout,
            static_cast<uint64_t>(rejected));
  EXPECT_EQ(service.telemetry().flights_timeout_per_job, 0u);
}

TEST(FlightingTest, AARunsProduceVaryingLatencies) {
  engine::ScopeEngine engine;
  flight::FlightingService service(&engine, {});
  auto metrics = service.RunAA(FirstJob(), opt::RuleConfig::Default(), 5, 3);
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->size(), 5u);
  std::set<double> latencies;
  for (const auto& m : *metrics) latencies.insert(m.latency_sec);
  EXPECT_GT(latencies.size(), 1u);
  // All runs read exactly the same bytes.
  for (const auto& m : *metrics) {
    EXPECT_DOUBLE_EQ(m.data_read_bytes, (*metrics)[0].data_read_bytes);
  }
}

TEST(FlightingTest, OutcomeNames) {
  EXPECT_STREQ(FlightOutcomeToString(flight::FlightOutcome::kSuccess),
               "success");
  EXPECT_STREQ(FlightOutcomeToString(flight::FlightOutcome::kFiltered),
               "filtered");
}

// ---------------------------------------------------------------------------
// SIS.
// ---------------------------------------------------------------------------

TEST(SisTest, HintFileRoundTrip) {
  sis::HintFile file;
  file.day = 17;
  file.entries.push_back({"TemplateA", opt::rules::kEagerAggregationLeft,
                          true});
  file.entries.push_back({"TemplateB", opt::rules::kJoinCommute, false});
  std::string text = file.Serialize();
  auto parsed = sis::HintFile::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->day, 17);
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].template_name, "TemplateA");
  EXPECT_TRUE(parsed->entries[0].enable);
  EXPECT_FALSE(parsed->entries[1].enable);
}

TEST(SisTest, ParseRejectsMalformedFiles) {
  EXPECT_FALSE(sis::HintFile::Parse("no header\n").ok());
  EXPECT_FALSE(sis::HintFile::Parse("# ok\nbadrow\n").ok());
  EXPECT_FALSE(sis::HintFile::Parse("# ok\na,1,sideways\n").ok());
}

TEST(SisTest, UploadValidatesEntries) {
  sis::StatsInsightService service;
  sis::HintFile ok_file;
  ok_file.entries.push_back(
      {"T1", opt::rules::kEagerAggregationLeft, true});
  EXPECT_TRUE(service.UploadHintFile(ok_file).ok());

  sis::HintFile bad_rule;
  bad_rule.entries.push_back({"T2", 999, true});
  EXPECT_FALSE(service.UploadHintFile(bad_rule).ok());

  sis::HintFile required_rule;
  required_rule.entries.push_back({"T2", opt::rules::kNormalizeScript, false});
  EXPECT_FALSE(service.UploadHintFile(required_rule).ok());

  sis::HintFile noop_hint;  // enabling an already-on rule
  noop_hint.entries.push_back({"T2", opt::rules::kHashJoinImpl, true});
  EXPECT_FALSE(service.UploadHintFile(noop_hint).ok());

  sis::HintFile duplicate;
  duplicate.entries.push_back({"T3", opt::rules::kJoinAssociativity, true});
  duplicate.entries.push_back({"T3", opt::rules::kEagerAggregationLeft, true});
  EXPECT_FALSE(service.UploadHintFile(duplicate).ok());

  // Failed uploads must not bump the version or install hints.
  EXPECT_EQ(service.current_version(), 1);
  EXPECT_EQ(service.active_hints(), 1u);
}

TEST(SisTest, NewestVersionWinsAndRevertWorks) {
  sis::StatsInsightService service;
  sis::HintFile v1;
  v1.entries.push_back({"T", opt::rules::kEagerAggregationLeft, true});
  ASSERT_TRUE(service.UploadHintFile(v1).ok());
  sis::HintFile v2;
  v2.entries.push_back({"T", opt::rules::kJoinAssociativity, true});
  ASSERT_TRUE(service.UploadHintFile(v2).ok());
  EXPECT_EQ(service.current_version(), 2);
  auto hint = service.LookupHint("T");
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->rule_id, opt::rules::kJoinAssociativity);
  // The induced config is a single flip from default.
  auto config = service.ConfigForTemplate("T");
  EXPECT_EQ(config.DiffFromDefault(),
            std::vector<int>{opt::rules::kJoinAssociativity});
  // Revert ("easily reversible", paper Sec. 2.4).
  EXPECT_TRUE(service.RevertHint("T").ok());
  EXPECT_FALSE(service.LookupHint("T").has_value());
  EXPECT_EQ(service.ConfigForTemplate("T"), opt::RuleConfig::Default());
  EXPECT_TRUE(service.RevertHint("T").IsNotFound());
}

TEST(SisTest, ConfigForUnknownTemplateIsDefault) {
  sis::StatsInsightService service;
  EXPECT_EQ(service.ConfigForTemplate("nope"), opt::RuleConfig::Default());
}

}  // namespace
}  // namespace qo

// Tests for the SCOPE-like language front end: lexer, parser, compiler.
#include <gtest/gtest.h>

#include "scope/compiler.h"
#include "scope/lexer.h"
#include "scope/parser.h"

namespace qo::scope {
namespace {

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenizesAllCategories) {
  auto tokens = Tokenize("rs = SELECT a, SUM(b) FROM t WHERE x >= 1.5 @ 0.3;");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = *tokens;
  EXPECT_EQ(ts[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(ts[0].text, "rs");
  EXPECT_TRUE(ts[1].IsSymbol("="));
  EXPECT_TRUE(ts[2].IsKeyword("SELECT"));
  EXPECT_EQ(ts.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

TEST(LexerTest, CommentsAndLinesTracked) {
  auto tokens = Tokenize("a -- comment with SELECT\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // a, b, EOF
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
}

TEST(LexerTest, StringLiteralsStripQuotes) {
  auto tokens = Tokenize("\"hello world\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "hello world");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
  EXPECT_FALSE(Tokenize("\"oops\nnext\"").ok());
}

TEST(LexerTest, NumbersIncludingNegativeAndDecimal) {
  auto tokens = Tokenize("1 2.5 -3 -4.25");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i + 1 < tokens->size(); ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kNumber) << i;
  }
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = Tokenize("== != <= >= < >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsSymbol("=="));
  EXPECT_TRUE((*tokens)[1].IsSymbol("!="));
  EXPECT_TRUE((*tokens)[2].IsSymbol("<="));
  EXPECT_TRUE((*tokens)[3].IsSymbol(">="));
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("a $ b").ok());
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

TEST(ParserTest, ParsesExtract) {
  auto script = ParseScript(
      "rs = EXTRACT a:int, b:string, c:double FROM \"path\";");
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script->statements.size(), 1u);
  const auto& ex = script->statements[0].extract;
  EXPECT_EQ(script->statements[0].kind, StatementKind::kExtract);
  EXPECT_EQ(ex.target, "rs");
  ASSERT_EQ(ex.columns.size(), 3u);
  EXPECT_EQ(ex.columns[1].name, "b");
  EXPECT_EQ(ex.columns[1].type, ColumnType::kString);
  EXPECT_EQ(ex.input_path, "path");
}

TEST(ParserTest, ParsesSelectWithEverything) {
  auto script = ParseScript(R"(
    out = SELECT a, SUM(b) AS total, COUNT(*) AS n FROM src
          JOIN other ON a == pk @ 1.5
          WHERE a > 5 @ 0.25 AND c == "x"
          GROUP BY a;
  )");
  ASSERT_TRUE(script.ok()) << script.status();
  const auto& sel = script->statements[0].select;
  ASSERT_EQ(sel.items.size(), 3u);
  EXPECT_EQ(sel.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(sel.items[1].alias, "total");
  EXPECT_EQ(sel.items[2].column, "*");
  EXPECT_EQ(sel.items[2].agg, AggFunc::kCount);
  ASSERT_EQ(sel.joins.size(), 1u);
  EXPECT_DOUBLE_EQ(sel.joins[0].true_fanout, 1.5);
  ASSERT_EQ(sel.where.size(), 2u);
  EXPECT_DOUBLE_EQ(sel.where[0].true_selectivity, 0.25);
  EXPECT_LT(sel.where[1].true_selectivity, 0.0);  // unannotated
  EXPECT_EQ(sel.group_by, std::vector<std::string>{"a"});
}

TEST(ParserTest, ParsesUnionAllAndOutput) {
  auto script = ParseScript(R"(
    u = left UNION ALL right;
    OUTPUT u TO "sink";
  )");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->statements[0].kind, StatementKind::kUnion);
  EXPECT_EQ(script->statements[0].union_stmt.left, "left");
  EXPECT_EQ(script->statements[1].kind, StatementKind::kOutput);
  EXPECT_EQ(script->OutputCount(), 1u);
}

struct BadScriptCase {
  const char* name;
  const char* source;
};

class ParserErrorTest : public ::testing::TestWithParam<BadScriptCase> {};

TEST_P(ParserErrorTest, RejectsMalformedScripts) {
  auto script = ParseScript(GetParam().source);
  EXPECT_FALSE(script.ok()) << GetParam().name;
  EXPECT_EQ(script.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadScriptCase{"empty", ""},
        BadScriptCase{"missing_semicolon", "rs = EXTRACT a:int FROM \"p\""},
        BadScriptCase{"bad_type", "rs = EXTRACT a:blob FROM \"p\";"},
        BadScriptCase{"no_columns", "rs = EXTRACT FROM \"p\";"},
        BadScriptCase{"join_single_equals",
                      "x = SELECT * FROM a JOIN b ON k = j;"},
        BadScriptCase{"selectivity_out_of_range",
                      "x = SELECT * FROM a WHERE c == 1 @ 1.5;"},
        BadScriptCase{"negative_fanout",
                      "x = SELECT * FROM a JOIN b ON k == j @ -2;"},
        BadScriptCase{"union_missing_all", "u = a UNION b;"},
        BadScriptCase{"output_missing_to", "OUTPUT rs \"p\";"},
        BadScriptCase{"dangling_assignment", "rs = ;"}),
    [](const ::testing::TestParamInfo<BadScriptCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Compiler.
// ---------------------------------------------------------------------------

Catalog TestCatalog() {
  Catalog catalog;
  TableStats t;
  t.true_rows = 1000;
  t.est_rows = 1000;
  t.columns["a"] = {100, 100};
  t.columns["b"] = {10, 10};
  catalog.RegisterTable("p", t);
  catalog.RegisterTable("q", t);
  return catalog;
}

TEST(CompilerTest, BuildsDagWithSharedSubplan) {
  // `filtered` is consumed by two outputs: the plan must share the node.
  auto plan = CompileSource(R"(
    rs = EXTRACT a:int, b:string FROM "p";
    filtered = SELECT * FROM rs WHERE a > 3;
    agg = SELECT b, COUNT(*) AS n FROM filtered GROUP BY b;
    OUTPUT filtered TO "o1";
    OUTPUT agg TO "o2";
  )",
                            TestCatalog());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->roots.size(), 2u);
  auto fan = plan->FanOut();
  int shared = 0;
  for (int f : fan) {
    if (f >= 2) ++shared;
  }
  EXPECT_GE(shared, 1) << plan->ToString();
}

TEST(CompilerTest, SchemaDerivation) {
  auto plan = CompileSource(R"(
    rs = EXTRACT a:int, b:string FROM "p";
    other = EXTRACT pk:int, c:double FROM "q";
    j = SELECT * FROM rs JOIN other ON a == pk;
    agg = SELECT b, SUM(c) AS total FROM j GROUP BY b;
    OUTPUT agg TO "o";
  )",
                            TestCatalog());
  ASSERT_TRUE(plan.ok()) << plan.status();
  const LogicalNode& out = plan->node(plan->roots[0]);
  ASSERT_EQ(out.schema.size(), 2u);
  EXPECT_EQ(out.schema.columns[0].name, "b");
  EXPECT_EQ(out.schema.columns[1].name, "total");
  EXPECT_EQ(out.schema.columns[1].type, ColumnType::kDouble);
}

TEST(CompilerTest, JoinSchemaConcatenatesBothSides) {
  auto plan = CompileSource(R"(
    rs = EXTRACT a:int, b:string FROM "p";
    other = EXTRACT pk:int, c:double FROM "q";
    j = SELECT * FROM rs JOIN other ON a == pk;
    OUTPUT j TO "o";
  )",
                            TestCatalog());
  ASSERT_TRUE(plan.ok());
  const LogicalNode& out = plan->node(plan->roots[0]);
  EXPECT_EQ(out.schema.size(), 4u);
}

struct CompileErrorCase {
  const char* name;
  const char* source;
};

class CompilerErrorTest : public ::testing::TestWithParam<CompileErrorCase> {};

TEST_P(CompilerErrorTest, RejectsSemanticErrors) {
  auto plan = CompileSource(GetParam().source, TestCatalog());
  ASSERT_FALSE(plan.ok()) << GetParam().name;
  EXPECT_EQ(plan.status().code(), StatusCode::kCompileError)
      << plan.status();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CompilerErrorTest,
    ::testing::Values(
        CompileErrorCase{"unknown_input",
                         "rs = EXTRACT a:int FROM \"nope\"; OUTPUT rs TO \"o\";"},
        CompileErrorCase{"unknown_rowset", "OUTPUT ghost TO \"o\";"},
        CompileErrorCase{
            "unknown_predicate_column",
            "rs = EXTRACT a:int FROM \"p\";"
            "f = SELECT * FROM rs WHERE ghost == 1; OUTPUT f TO \"o\";"},
        CompileErrorCase{
            "unknown_join_key",
            "rs = EXTRACT a:int FROM \"p\"; t = EXTRACT pk:int FROM \"q\";"
            "j = SELECT * FROM rs JOIN t ON ghost == pk; OUTPUT j TO \"o\";"},
        CompileErrorCase{
            "non_grouped_column",
            "rs = EXTRACT a:int, b:int FROM \"p\";"
            "g = SELECT a, b, SUM(a) AS s FROM rs GROUP BY a;"
            "OUTPUT g TO \"o\";"},
        CompileErrorCase{
            "redefined_rowset",
            "rs = EXTRACT a:int FROM \"p\"; rs = EXTRACT a:int FROM \"q\";"
            "OUTPUT rs TO \"o\";"},
        CompileErrorCase{"no_output", "rs = EXTRACT a:int FROM \"p\";"},
        CompileErrorCase{
            "union_arity_mismatch",
            "a1 = EXTRACT a:int FROM \"p\"; b1 = EXTRACT a:int, b:int FROM "
            "\"q\"; u = a1 UNION ALL b1; OUTPUT u TO \"o\";"}),
    [](const ::testing::TestParamInfo<CompileErrorCase>& info) {
      return info.param.name;
    });

TEST(CompilerTest, SelectStarWithoutFilterAliasesSameNode) {
  auto plan = CompileSource(R"(
    rs = EXTRACT a:int FROM "p";
    alias = SELECT * FROM rs;
    OUTPUT alias TO "o";
  )",
                            TestCatalog());
  ASSERT_TRUE(plan.ok());
  // No Project/Filter node should be created for a pure alias.
  for (const auto& node : plan->nodes) {
    EXPECT_NE(node.kind, LogicalOpKind::kProject);
    EXPECT_NE(node.kind, LogicalOpKind::kFilter);
  }
}

}  // namespace
}  // namespace qo::scope

// Unit and property tests for the common layer: Status/Result, BitVector256,
// Rng, and the statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/bitvector.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/symbol_table.h"
#include "common/table_printer.h"

namespace qo {
namespace {

// ---------------------------------------------------------------------------
// Status / Result.
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
  EXPECT_TRUE(Status::CompileError("x").IsCompileError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnsupported); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Status UseParse(int x, int* out) {
  QO_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  *out = doubled;
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(-1), 42);

  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(-1), -1);

  int out = 0;
  EXPECT_TRUE(UseParse(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseParse(0, &out).ok());
}

// ---------------------------------------------------------------------------
// BitVector256.
// ---------------------------------------------------------------------------

TEST(BitVectorTest, SetClearFlipTest) {
  BitVector256 v;
  EXPECT_TRUE(v.None());
  v.Set(0);
  v.Set(255);
  v.Set(64);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(255));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.Count(), 3);
  v.Flip(64);
  EXPECT_FALSE(v.Test(64));
  v.Clear(0);
  EXPECT_EQ(v.Count(), 1);
}

TEST(BitVectorTest, PositionsRoundTrip) {
  std::vector<int> positions = {0, 1, 63, 64, 127, 128, 191, 192, 255};
  BitVector256 v = BitVector256::FromPositions(positions);
  EXPECT_EQ(v.Positions(), positions);
  EXPECT_EQ(v.Count(), static_cast<int>(positions.size()));
}

TEST(BitVectorTest, SignatureStringMatchesPaperExample) {
  // "if only the first and the second rule were used ... the rule signature
  // will be 1100000000" (paper Sec. 2.1).
  BitVector256 v = BitVector256::FromPositions({0, 1});
  EXPECT_EQ(v.ToString(10), "1100000000");
}

TEST(BitVectorTest, SetAlgebra) {
  BitVector256 a = BitVector256::FromPositions({1, 2, 3});
  BitVector256 b = BitVector256::FromPositions({3, 4});
  EXPECT_EQ((a | b).Positions(), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ((a & b).Positions(), (std::vector<int>{3}));
  EXPECT_EQ((a ^ b).Positions(), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(a.AndNot(b).Positions(), (std::vector<int>{1, 2}));
  EXPECT_TRUE(a.Contains(BitVector256::FromPositions({1, 3})));
  EXPECT_FALSE(a.Contains(b));
}

TEST(BitVectorTest, FirstN) {
  BitVector256 v = BitVector256::FirstN(40);
  EXPECT_EQ(v.Count(), 40);
  EXPECT_TRUE(v.Test(39));
  EXPECT_FALSE(v.Test(40));
}

class BitVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitVectorPropertyTest, AlgebraLaws) {
  Rng rng(GetParam());
  BitVector256 a, b, c;
  for (int i = 0; i < 256; ++i) {
    if (rng.Bernoulli(0.3)) a.Set(i);
    if (rng.Bernoulli(0.3)) b.Set(i);
    if (rng.Bernoulli(0.3)) c.Set(i);
  }
  // De Morgan-ish identities expressible without complement.
  EXPECT_EQ((a | b).Count() + (a & b).Count(), a.Count() + b.Count());
  EXPECT_EQ(a.AndNot(b) | (a & b), a);
  EXPECT_EQ(((a | b) | c), (a | (b | c)));
  EXPECT_EQ(((a & b) & c), (a & (b & c)));
  EXPECT_EQ((a ^ b) ^ b, a);
  // Hash equality for equal values.
  BitVector256 a2 = a;
  EXPECT_EQ(a.Hash(), a2.Hash());
  // Positions ascending and consistent with Test().
  auto pos = a.Positions();
  for (size_t i = 1; i < pos.size(); ++i) EXPECT_LT(pos[i - 1], pos[i]);
  for (int p : pos) EXPECT_TRUE(a.Test(p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345, 777,
                                           31337));

// ---------------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.Uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
    int64_t k = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(k, -3);
    EXPECT_LE(k, 3);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(RngTest, ParetoIsHeavyTailedAboveScale) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(1.0, 1.5), 1.0);
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(9);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------------

TEST(StatsTest, RunningStatsMatchesClosedForm) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.cv(), s.stddev() / 2.5, 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 2.5);
}

TEST(StatsTest, PearsonPerfectAndInverse) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {2, 4, 6, 8};
  std::vector<double> zs = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(xs, zs), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, {1, 1, 1, 1}), 0.0);
}

TEST(StatsTest, FitLinearRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  auto fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 3.0, 1e-9);
  EXPECT_NEAR(fit->intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit->r2, 1.0, 1e-12);
}

TEST(StatsTest, FitLinearRejectsDegenerate) {
  EXPECT_FALSE(FitLinear({1.0}, {2.0}).ok());
  EXPECT_FALSE(FitLinear({1, 1, 1}, {2, 3, 4}).ok());
  EXPECT_FALSE(FitLinear({1, 2}, {1, 2, 3}).ok());
}

TEST(StatsTest, LinearRegressionRecoversPlane) {
  Rng rng(21);
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  for (int i = 0; i < 200; ++i) {
    double a = rng.Uniform(-1, 1);
    double b = rng.Uniform(-1, 1);
    features.push_back({a, b});
    targets.push_back(2.0 * a - 0.5 * b + 0.25);
  }
  LinearRegression model;
  ASSERT_TRUE(model.Fit(features, targets).ok());
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], -0.5, 1e-6);
  EXPECT_NEAR(model.intercept(), 0.25, 1e-6);
  EXPECT_NEAR(model.Score(features, targets), 1.0, 1e-9);
  EXPECT_NEAR(model.Predict({1.0, 1.0}), 1.75, 1e-6);
}

TEST(StatsTest, LinearRegressionRejectsRaggedInput) {
  LinearRegression model;
  EXPECT_FALSE(model.Fit({{1.0, 2.0}, {3.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(model.Fit({}, {}).ok());
}

TEST(StatsTest, PolynomialFitRecoversQuadratic) {
  std::vector<double> xs, ys;
  for (int i = -10; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 + 2.0 * i + 0.5 * i * i);
  }
  auto fit = FitPolynomial(xs, ys, 2);
  ASSERT_TRUE(fit.ok());
  ASSERT_EQ(fit->coefficients.size(), 3u);
  EXPECT_NEAR(fit->coefficients[0], 1.0, 1e-6);
  EXPECT_NEAR(fit->coefficients[1], 2.0, 1e-6);
  EXPECT_NEAR(fit->coefficients[2], 0.5, 1e-6);
  EXPECT_NEAR(fit->Predict(3.0), 1.0 + 6.0 + 4.5, 1e-6);
}

TEST(StatsTest, SolveLinearSystemSingularFails) {
  std::vector<double> out;
  EXPECT_FALSE(
      SolveLinearSystem({{1, 2}, {2, 4}}, {1, 2}, &out).ok());
}

TEST(StatsTest, FractionHelpers) {
  std::vector<double> xs = {-2, -1, 0, 1, 2};
  EXPECT_DOUBLE_EQ(FractionBelow(xs, 0.0), 0.4);
  EXPECT_DOUBLE_EQ(FractionAbove(xs, 0.0), 0.4);
  EXPECT_DOUBLE_EQ(FractionBelow({}, 0.0), 0.0);
}

// ---------------------------------------------------------------------------
// SymbolTable.
// ---------------------------------------------------------------------------

TEST(SymbolTableTest, InternIsIdempotentAndInjective) {
  SymbolTable table;
  Symbol a = table.Intern("fact");
  Symbol b = table.Intern("dim");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("fact"), a);
  EXPECT_EQ(table.Intern("dim"), b);
  EXPECT_EQ(table.Resolve(a), "fact");
  EXPECT_EQ(table.Resolve(b), "dim");
}

TEST(SymbolTableTest, WellKnownSymbolsArePreInterned) {
  SymbolTable table;
  EXPECT_EQ(table.Intern(""), kSymEmpty);
  EXPECT_EQ(table.Intern("*"), kSymStar);
  EXPECT_EQ(table.Resolve(kSymEmpty), "");
  EXPECT_EQ(table.Resolve(kSymStar), "*");
  EXPECT_EQ(table.size(), 2u);
  // The process-wide table used by Sym()/SymName() agrees on the constants.
  EXPECT_EQ(Sym(""), kSymEmpty);
  EXPECT_EQ(Sym("*"), kSymStar);
}

TEST(SymbolTableTest, ResolveRoundTripsManySymbols) {
  SymbolTable table;
  std::vector<Symbol> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(table.Intern(std::string("col_") + std::to_string(i)));
  }
  EXPECT_EQ(table.size(), 1002u);  // 1000 + "" + "*"
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Resolve(ids[i]), std::string("col_") + std::to_string(i));
    EXPECT_EQ(table.Intern(std::string("col_") + std::to_string(i)), ids[i]);
  }
}

TEST(SymbolTableTest, SymOfPrefersResolvedSymbol) {
  // SymOf is the lazy-intern helper structures use for fields that may not
  // have been interned yet (hand-built plans in tests).
  Symbol a = Sym("already_interned");
  EXPECT_EQ(SymOf(a, "ignored_text"), a);
  EXPECT_EQ(SymOf(kNoSymbol, "already_interned"), a);
}

TEST(SymbolTableTest, ConcurrentInternsAgree) {
  // Racing interns of the same strings must converge to one id per string
  // (double-checked insert), and every returned id must resolve back.
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr int kStrings = 200;
  std::vector<std::string> names;
  names.reserve(kStrings);
  for (int i = 0; i < kStrings; ++i) {
    std::string name = "s";
    name += std::to_string(i);
    names.push_back(name);
  }
  std::vector<std::vector<Symbol>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &seen, &names, t] {
      for (const std::string& name : names) {
        seen[t].push_back(table.Intern(name));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  for (int i = 0; i < kStrings; ++i) {
    EXPECT_EQ(table.Resolve(seen[0][i]), names[i]);
  }
}

TEST(TablePrinterTest, FormatsAlignedTable) {
  TablePrinter table({"a", "bbbb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4    |"), std::string::npos);
  EXPECT_EQ(TablePrinter::Pct(-0.143), "-14.3%");
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
}

}  // namespace
}  // namespace qo

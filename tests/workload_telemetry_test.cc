// Workload generator and telemetry view tests.
#include <gtest/gtest.h>

#include <set>

#include "engine/engine.h"
#include "scope/parser.h"
#include "telemetry/workload_view.h"
#include "workload/workload.h"

namespace qo::workload {
namespace {

TEST(TemplateGeneratorTest, GeneratesRequestedCount) {
  TemplateGenerator gen(1);
  auto templates = gen.Generate(25, 100);
  ASSERT_EQ(templates.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(templates[static_cast<size_t>(i)].id, 100 + i);
    EXPECT_FALSE(templates[static_cast<size_t>(i)].tables.empty());
    EXPECT_FALSE(templates[static_cast<size_t>(i)].outputs.empty());
  }
}

TEST(TemplateGeneratorTest, DeterministicForSeed) {
  TemplateGenerator a(7), b(7);
  auto ta = a.GenerateOne(3);
  auto tb = b.GenerateOne(3);
  EXPECT_EQ(ta.tables.size(), tb.tables.size());
  EXPECT_EQ(ta.selects.size(), tb.selects.size());
  EXPECT_EQ(ta.outputs, tb.outputs);
}

TEST(TemplateGeneratorTest, PopulationIsHeterogeneous) {
  TemplateGenerator gen(42);
  auto templates = gen.Generate(60);
  std::set<size_t> table_counts, select_counts;
  int with_union = 0, multi_output = 0, trivial = 0;
  for (const auto& t : templates) {
    table_counts.insert(t.tables.size());
    select_counts.insert(t.selects.size());
    with_union += !t.unions.empty();
    multi_output += t.outputs.size() > 1;
    bool has_structure = false;
    for (const auto& s : t.selects) {
      if (!s.filters.empty() || !s.joins.empty() || !s.group_by.empty()) {
        has_structure = true;
      }
    }
    trivial += !has_structure;
  }
  EXPECT_GT(table_counts.size(), 2u);
  EXPECT_GT(with_union, 0);
  EXPECT_GT(multi_output, 0);
  // About 30% trivial copy jobs (empty spans, paper Sec. 5.6 ~66% non-empty).
  EXPECT_GT(trivial, 6);
  EXPECT_LT(trivial, 36);
}

TEST(InstantiateTest, ScriptParsesAndStatsRegistered) {
  TemplateGenerator gen(5);
  JobTemplate tmpl = gen.GenerateOne(0);
  Rng rng(9);
  JobInstance inst = Instantiate(tmpl, 3, 1, &rng);
  EXPECT_EQ(inst.day, 3);
  EXPECT_EQ(inst.template_id, 0);
  auto parsed = scope::ParseScript(inst.script);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << inst.script;
  EXPECT_EQ(inst.catalog.size(), tmpl.tables.size());
  for (const auto& table : tmpl.tables) {
    EXPECT_TRUE(inst.catalog.Has(table.path));
  }
}

TEST(InstantiateTest, OccurrencesDriftButKeepStructure) {
  TemplateGenerator gen(5);
  JobTemplate tmpl = gen.GenerateOne(2);
  Rng rng(11);
  JobInstance a = Instantiate(tmpl, 0, 0, &rng);
  JobInstance b = Instantiate(tmpl, 1, 0, &rng);
  // Same operators (same statement skeleton)...
  auto pa = scope::ParseScript(a.script);
  auto pb = scope::ParseScript(b.script);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_EQ(pa->statements.size(), pb->statements.size());
  // ...different input cardinalities (drifted stats).
  auto sa = a.catalog.Lookup(tmpl.tables[0].path);
  auto sb = b.catalog.Lookup(tmpl.tables[0].path);
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_NE(sa.value()->true_rows, sb.value()->true_rows);
}

TEST(InstantiateTest, EstimatesAreBiasedNotExact) {
  TemplateGenerator gen(13);
  JobTemplate tmpl = gen.GenerateOne(1);
  Rng rng(3);
  JobInstance inst = Instantiate(tmpl, 0, 0, &rng);
  int differing = 0;
  for (const auto& table : tmpl.tables) {
    auto stats = inst.catalog.Lookup(table.path);
    ASSERT_TRUE(stats.ok());
    if (std::abs(stats.value()->est_rows - stats.value()->true_rows) >
        0.01 * stats.value()->true_rows) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(WorkloadDriverTest, RecurringFractionRoughlyRespected) {
  WorkloadDriver driver({.num_templates = 30, .jobs_per_day = 300,
                         .recurring_fraction = 0.65, .seed = 77});
  auto jobs = driver.DayJobs(0);
  int recurring = 0;
  for (const auto& j : jobs) recurring += j.recurring;
  double fraction = static_cast<double>(recurring) / jobs.size();
  EXPECT_GT(fraction, 0.55);
  EXPECT_LT(fraction, 0.75);
}

TEST(WorkloadDriverTest, OneOffJobsNeverRepeatAcrossDays) {
  WorkloadDriver driver({.num_templates = 5, .jobs_per_day = 50, .seed = 3});
  std::set<int> day0_ids, day1_ids;
  for (const auto& j : driver.DayJobs(0)) {
    if (!j.recurring) day0_ids.insert(j.template_id);
  }
  for (const auto& j : driver.DayJobs(1)) {
    if (!j.recurring) day1_ids.insert(j.template_id);
  }
  for (int id : day0_ids) EXPECT_EQ(day1_ids.count(id), 0u);
}

TEST(WorkloadDriverTest, RecurringTemplatesReappearAcrossDays) {
  WorkloadDriver driver({.num_templates = 10, .jobs_per_day = 80, .seed = 21});
  std::set<int> day0, day5;
  for (const auto& j : driver.DayJobs(0)) {
    if (j.recurring) day0.insert(j.template_id);
  }
  for (const auto& j : driver.DayJobs(5)) {
    if (j.recurring) day5.insert(j.template_id);
  }
  int shared = 0;
  for (int id : day0) shared += day5.count(id);
  EXPECT_GT(shared, 0);
}

TEST(WorkloadViewTest, RowAggregatesTable1Features) {
  WorkloadDriver driver({.num_templates = 5, .jobs_per_day = 5, .seed = 2});
  engine::ScopeEngine engine;
  auto jobs = driver.DayJobs(0);
  auto result = engine.Run(jobs[0], opt::RuleConfig::Default(), 0);
  ASSERT_TRUE(result.ok());
  telemetry::WorkloadViewRow row =
      telemetry::MakeViewRow(jobs[0], *result->compilation, result->metrics);
  EXPECT_EQ(row.job_id, jobs[0].job_id);
  EXPECT_EQ(row.normalized_job_name, jobs[0].template_name);
  EXPECT_GT(row.est_cost, 0);
  EXPECT_GT(row.est_cardinalities, 0);   // summed over operators
  EXPECT_GT(row.row_count, 0);           // actual rows
  EXPECT_GT(row.avg_row_length, 0);
  EXPECT_GT(row.latency_sec, 0);
  EXPECT_GT(row.total_vertices, 0);
  EXPECT_GT(row.bytes_read, 0);
  EXPECT_GT(row.pn_hours, 0);
  EXPECT_EQ(row.rule_signature, result->compilation->signature);
  // The snapshot allows recompilation.
  EXPECT_EQ(row.instance.script, jobs[0].script);
}

}  // namespace
}  // namespace qo::workload

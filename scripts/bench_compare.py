#!/usr/bin/env python3
"""Compare a fresh bench JSON against the recorded baseline; fail on regression.

Usage:
  scripts/bench_compare.py BASELINE_JSON FRESH_JSON [--tolerance 0.20]
                           [--min-seconds 0.05] [--micro-min-seconds 1e-6]
  scripts/bench_compare.py --service-report SERVICE_LOAD_JSONL

The second form skips the gate entirely: it reads the QO_OBS_REPORT JSONL
written by bench/service_load and prints a markdown summary (sustained qps
plus p50/p99 of the service.*_ns histograms) suitable for appending to
$GITHUB_STEP_SUMMARY. Informational only — always exits 0 on well-formed
input.

Both files use the schema written by scripts/bench_baseline.sh:
  figure_benches:   {"<name>": {"wall_seconds": float, "exit_code": int}}
  micro_benchmarks: [google-benchmark JSON entries]

When both sides have a <stem>.metrics.jsonl sibling (written by
bench_baseline.sh from each bench's QO_OBS_REPORT snapshot), a drift report
for cache/memo/reuse hit rates and span latency quantiles is printed after
the wall-time table. Metrics drift is informational only — it never fails
the gate (latency quantiles move with machine load; hit rates exist to
explain wall-time movements, not to gate on their own).

Rules:
  * A figure bench REGRESSES when its exit code turns nonzero, or its wall
    time exceeds baseline * (1 + tolerance).
  * A microbenchmark REGRESSES when its real_time exceeds
    baseline * (1 + tolerance).
  * The service_load sustained qps (from the metrics siblings' service_load
    run-report line) REGRESSES when the fresh qps drops below
    baseline * (1 - tolerance). Its request p99 is printed alongside but is
    informational only — tail latency on shared CI runners is too noisy to
    gate.
  * Benches faster than the floor (--min-seconds / --micro-min-seconds) in
    the baseline are reported but never fail the gate — too noisy.
  * Entries present on only one side are WARNED about on stderr but do not
    fail the gate by themselves (new benchmarks land before their baseline
    refresh; removals should be followed by one). Exception: a fresh-only
    figure bench with a nonzero exit code is a regression — a brand-new
    bench that crashes must not slide through as merely "added".

Exit codes: 0 = no regression, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys

TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if "figure_benches" not in data:
        print(f"error: {path} has no figure_benches (wrong schema?)",
              file=sys.stderr)
        raise SystemExit(2)
    return data


def micro_seconds(entry):
    unit = TIME_UNIT_SECONDS.get(entry.get("time_unit", "ns"), 1e-9)
    return float(entry.get("real_time", 0.0)) * unit


def micro_by_name(data):
    out = {}
    for entry in data.get("micro_benchmarks", []) or []:
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        out[entry["name"]] = entry
    return out


def metrics_sibling(path):
    stem = path[:-5] if path.endswith(".json") else path
    return stem + ".metrics.jsonl"


def load_metrics(path):
    """Per-label metrics snapshots from a .metrics.jsonl sibling.

    Each line is one {"label", "day", "series", "quantiles"} object written
    by the obs run-report sink; the last line per label wins (the day:-1
    whole-process snapshot is emitted last).
    """
    per_label = {}
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(obj, dict) and "label" in obj:
                    per_label[obj["label"]] = obj
    except OSError:
        return None
    return per_label


# Series with these suffixes are ratios worth eyeballing across runs.
RATE_SUFFIXES = ("hit_rate", "reuse_rate", "occupancy", "utilization")


def print_metrics_drift(base_path, fresh_path):
    """Informational hit-rate / span-quantile drift; never affects the gate."""
    base = load_metrics(metrics_sibling(base_path))
    fresh = load_metrics(metrics_sibling(fresh_path))
    if not base or not fresh:
        return
    shared = sorted(set(base) & set(fresh))
    if not shared:
        return
    print(f"\nmetrics drift (informational, {len(shared)} benches with "
          f"snapshots on both sides):")
    print(f"{'bench':36} {'metric':34} {'baseline':>12} {'fresh':>12}"
          f"  delta")
    for label in shared:
        b, f = base[label], fresh[label]
        b_series = b.get("series", {}) or {}
        f_series = f.get("series", {}) or {}
        for name in sorted(set(b_series) & set(f_series)):
            if not name.endswith(RATE_SUFFIXES):
                continue
            bv, fv = float(b_series[name]), float(f_series[name])
            if bv == 0.0 and fv == 0.0:
                continue
            print(f"{label:36} {name:34} {bv:12.4f} {fv:12.4f}"
                  f"  {fv - bv:+8.4f}")
        b_quant = b.get("quantiles", {}) or {}
        f_quant = f.get("quantiles", {}) or {}
        for name in sorted(set(b_quant) & set(f_quant)):
            if not name.startswith("span."):
                continue
            bq, fq = b_quant[name], f_quant[name]
            bv, fv = float(bq.get("p50_ns", 0)), float(fq.get("p50_ns", 0))
            if bv <= 0:
                continue
            print(f"{label:36} {name + '.p50':34} {fmt_secs(bv * 1e-9):>12}"
                  f" {fmt_secs(fv * 1e-9):>12}  {fv / bv - 1.0:+7.1%}")


def service_load_summary(per_label):
    """(qps, request_p99_ns) from a metrics dict's service_load line.

    Returns None when the dict is missing or holds no service_load label;
    either tuple slot may be None when the series/histogram is absent.
    """
    if not per_label:
        return None
    report = None
    for label in sorted(per_label):
        if label.startswith("service_load"):
            report = per_label[label]
    if report is None:
        return None
    series = report.get("series", {}) or {}
    quantiles = report.get("quantiles", {}) or {}
    qps = series.get("service.load.qps")
    p99 = (quantiles.get("service.request_ns") or {}).get("p99_ns")
    return (qps, p99)


def check_service_load(base_path, fresh_path, tolerance, regressions,
                       warnings):
    """Gate on sustained service_load qps; request p99 is informational."""
    base = service_load_summary(load_metrics(metrics_sibling(base_path)))
    fresh = service_load_summary(load_metrics(metrics_sibling(fresh_path)))
    base_qps = base[0] if base else None
    fresh_qps = fresh[0] if fresh else None
    if base_qps is None and fresh_qps is None:
        return
    if fresh_qps is None:
        warnings.append("service_load qps: in baseline only (no fresh "
                        "service_load metrics line)")
        return
    if base_qps is None:
        warnings.append("service_load qps: in fresh only (refresh the "
                        "baseline to arm the qps gate)")
        return
    bq, fq = float(base_qps), float(fresh_qps)
    delta = fq / bq - 1.0 if bq > 0 else 0.0
    status = "ok"
    if delta < -tolerance:
        status = "REGRESSED"
        regressions.append(f"service_load qps: {bq:,.0f} -> {fq:,.0f} "
                           f"({delta:+.1%} < -{tolerance:.0%})")
    elif delta > tolerance:
        status = "faster"
    print(f"\nservice_load gate (qps gated at {tolerance:.0%} tolerance):")
    print(f"  sustained qps:          {bq:>12,.0f} -> {fq:>12,.0f} "
          f" {delta:+7.1%}  {status}")
    base_p99, fresh_p99 = (base[1] if base else None), (fresh[1] if fresh
                                                        else None)
    if base_p99 and fresh_p99:
        bp, fp = float(base_p99), float(fresh_p99)
        print(f"  service.request_ns p99: {fmt_secs(bp * 1e-9):>12} ->"
              f" {fmt_secs(fp * 1e-9):>12}  {fp / bp - 1.0:+7.1%}"
              f"  (informational)")


def print_service_report(path):
    """Markdown summary of a bench/service_load JSONL run report.

    The last line whose label starts with "service_load" wins (the bench
    emits one whole-process line per run). Returns 0 on success, 2 when the
    file is missing or holds no service_load line.
    """
    per_label = load_metrics(path)
    if not per_label:
        print(f"error: cannot read service report {path}", file=sys.stderr)
        return 2
    report = None
    for label in sorted(per_label):
        if label.startswith("service_load"):
            report = per_label[label]
    if report is None:
        print(f"error: no service_load line in {path} "
              f"(labels: {sorted(per_label)})", file=sys.stderr)
        return 2

    series = report.get("series", {}) or {}
    quantiles = report.get("quantiles", {}) or {}
    print(f"### service_load ({report['label']})\n")
    qps = series.get("service.load.qps")
    wall_ms = series.get("service.load.wall_ms")
    requests = series.get("service.load.requests")
    if qps is not None:
        line = f"Sustained **{qps:,.0f} qps**"
        if requests is not None:
            line += f" ({requests:,.0f} requests"
            if wall_ms is not None:
                line += f" in {wall_ms / 1e3:.3f}s"
            line += ")"
        print(line + "\n")
    print("| histogram | count | p50 | p99 | max |")
    print("|---|---:|---:|---:|---:|")
    for name in sorted(quantiles):
        if not name.startswith("service."):
            continue
        q = quantiles[name]
        print(f"| `{name}` | {int(q.get('count', 0))} "
              f"| {fmt_secs(float(q.get('p50_ns', 0)) * 1e-9).strip()} "
              f"| {fmt_secs(float(q.get('p99_ns', 0)) * 1e-9).strip()} "
              f"| {fmt_secs(float(q.get('max_ns', 0)) * 1e-9).strip()} |")
    for name in ("service.rank_requests", "service.reward_requests",
                 "service.compile_requests", "service.hint_uploads",
                 "service.snapshot_publications"):
        if name in series:
            print(f"- `{name}`: {series[name]:,.0f}")
    return 0


def fmt_secs(s):
    if s >= 1.0:
        return f"{s:8.3f}s "
    if s >= 1e-3:
        return f"{s * 1e3:8.3f}ms"
    return f"{s * 1e6:8.3f}us"


def main():
    parser = argparse.ArgumentParser(
        description="Bench regression gate against BENCH_baseline.json")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("fresh", nargs="?")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed slowdown fraction (default 0.20 = 20%%)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="figure benches under this baseline wall time "
                             "never fail the gate")
    parser.add_argument("--micro-min-seconds", type=float, default=1e-6,
                        help="microbenchmarks under this baseline time never "
                             "fail the gate")
    parser.add_argument("--service-report", metavar="JSONL",
                        help="print a markdown summary of a service_load "
                             "run report instead of running the gate")
    args = parser.parse_args()

    if args.service_report is not None:
        return print_service_report(args.service_report)
    if args.baseline is None or args.fresh is None:
        parser.error("baseline and fresh are required unless "
                     "--service-report is given")

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    regressions = []
    warnings = []
    rows = []

    def record(kind, name, base_s, fresh_s, gated, note=""):
        delta = (fresh_s / base_s - 1.0) if base_s > 0 else 0.0
        status = "ok"
        if note:
            status = note
        elif delta > args.tolerance:
            status = "REGRESSED" if gated else "slower (ungated)"
            if gated:
                regressions.append(f"{kind} {name}: "
                                   f"{base_s:.4g}s -> {fresh_s:.4g}s "
                                   f"({delta:+.1%} > {args.tolerance:.0%})")
        elif delta < -args.tolerance:
            status = "faster"
        rows.append((kind, name, base_s, fresh_s, delta, status))

    # --- Figure benches: wall time + exit code. ---
    base_figs = baseline["figure_benches"]
    fresh_figs = fresh["figure_benches"]
    for name in sorted(set(base_figs) | set(fresh_figs)):
        if name not in fresh_figs:
            warnings.append(f"figure {name}: in baseline only (removed? "
                            f"refresh the baseline)")
            rows.append(("figure", name, base_figs[name]["wall_seconds"],
                         float("nan"), 0.0, "removed"))
            continue
        if name not in base_figs:
            exit_code = fresh_figs[name].get("exit_code", 0)
            if exit_code != 0:
                regressions.append(f"figure {name}: new bench exits with "
                                   f"code {exit_code}")
                rows.append(("figure", name, float("nan"),
                             fresh_figs[name]["wall_seconds"], 0.0, "EXIT!=0"))
                continue
            warnings.append(f"figure {name}: in fresh only (new bench — "
                            f"refresh the baseline)")
            rows.append(("figure", name, float("nan"),
                         fresh_figs[name]["wall_seconds"], 0.0, "added"))
            continue
        b, f = base_figs[name], fresh_figs[name]
        if f.get("exit_code", 0) != 0:
            regressions.append(f"figure {name}: exit code "
                               f"{f['exit_code']} (was {b.get('exit_code', 0)})")
            rows.append(("figure", name, b["wall_seconds"], f["wall_seconds"],
                         0.0, "EXIT!=0"))
            continue
        gated = b["wall_seconds"] >= args.min_seconds
        record("figure", name, b["wall_seconds"], f["wall_seconds"], gated)

    # --- Microbenchmarks: real_time by name. ---
    base_micro = micro_by_name(baseline)
    fresh_micro = micro_by_name(fresh)
    for name in sorted(set(base_micro) | set(fresh_micro)):
        if name not in fresh_micro:
            warnings.append(f"micro {name}: in baseline only (removed? "
                            f"refresh the baseline)")
            rows.append(("micro", name, micro_seconds(base_micro[name]),
                         float("nan"), 0.0, "removed"))
            continue
        if name not in base_micro:
            warnings.append(f"micro {name}: in fresh only (new bench — "
                            f"refresh the baseline)")
            rows.append(("micro", name, float("nan"),
                         micro_seconds(fresh_micro[name]), 0.0, "added"))
            continue
        base_s = micro_seconds(base_micro[name])
        fresh_s = micro_seconds(fresh_micro[name])
        gated = base_s >= args.micro_min_seconds
        record("micro", name, base_s, fresh_s, gated)

    print(f"{'kind':6} {'benchmark':44} {'baseline':>10} {'fresh':>10} "
          f"{'delta':>8}  status")
    for kind, name, base_s, fresh_s, delta, status in rows:
        base_txt = fmt_secs(base_s) if base_s == base_s else "       -  "
        fresh_txt = fmt_secs(fresh_s) if fresh_s == fresh_s else "       -  "
        print(f"{kind:6} {name:44} {base_txt:>10} {fresh_txt:>10} "
              f"{delta:+7.1%}  {status}")

    check_service_load(args.baseline, args.fresh, args.tolerance,
                       regressions, warnings)
    print_metrics_drift(args.baseline, args.fresh)

    if warnings:
        print(f"\n{len(warnings)} warning(s): benches present on one side "
              f"only:", file=sys.stderr)
        for w in warnings:
            print(f"  warning: {w}", file=sys.stderr)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.tolerance:.0%} tolerance "
          f"({len(rows)} benches compared)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

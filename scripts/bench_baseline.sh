#!/usr/bin/env bash
# Runs every figure/table/ablation bench plus the google-benchmark
# microbenchmarks and writes a machine-readable baseline JSON.
#
# Usage: scripts/bench_baseline.sh [BENCH_BIN_DIR] [OUTPUT_JSON]
#   BENCH_BIN_DIR  directory with the built bench binaries (default: build/bench)
#   OUTPUT_JSON    where to write the baseline     (default: BENCH_baseline.json)
#
# Output schema:
#   {
#     "schema_version": 1,
#     "figure_benches": {"<name>": {"wall_seconds": float, "exit_code": int}},
#     "micro_benchmarks": [<google-benchmark json entries>],
#     "context": {<google-benchmark context: host, cpu, etc.>}
#   }
#
# Each figure bench also runs with QO_OBS_REPORT pointed at a scratch file,
# so its whole-process metrics snapshot (cache/memo hit rates, phase latency
# quantiles, ...) lands as one JSONL line labeled with the bench name. The
# concatenation is written next to OUTPUT_JSON as
# <OUTPUT_JSON stem>.metrics.jsonl; scripts/bench_compare.py reads the
# sibling and prints hit-rate/quantile drift (informational, not gated).
set -euo pipefail

BENCH_DIR="${1:-build/bench}"
OUTPUT="${2:-BENCH_baseline.json}"

command -v jq >/dev/null || { echo "error: jq is required" >&2; exit 1; }
[[ -d "$BENCH_DIR" ]] || {
  echo "error: bench dir '$BENCH_DIR' not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
}

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# --- Figure/table/ablation benches: record wall time + exit code. ---
fig_json="$tmpdir/figures.json"
metrics_jsonl="$tmpdir/metrics.jsonl"
echo '{}' > "$fig_json"
: > "$metrics_jsonl"
for bin in "$BENCH_DIR"/*; do
  name="$(basename "$bin")"
  [[ -x "$bin" && -f "$bin" ]] || continue
  [[ "$name" == "micro_benchmarks" ]] && continue
  start_ns=$(date +%s%N)
  code=0
  QO_OBS_REPORT="$tmpdir/$name.metrics.jsonl" QO_OBS_LABEL="$name" \
    "$bin" > "$tmpdir/$name.out" 2>&1 || code=$?
  end_ns=$(date +%s%N)
  [[ -f "$tmpdir/$name.metrics.jsonl" ]] && \
    cat "$tmpdir/$name.metrics.jsonl" >> "$metrics_jsonl"
  wall=$(jq -n "($end_ns - $start_ns) / 1e9")
  if [[ $code -ne 0 ]]; then
    echo "warning: $name exited with $code" >&2
    tail -5 "$tmpdir/$name.out" >&2
  fi
  jq --arg name "$name" --argjson wall "$wall" --argjson code "$code" \
     '.[$name] = {wall_seconds: $wall, exit_code: $code}' \
     "$fig_json" > "$fig_json.tmp" && mv "$fig_json.tmp" "$fig_json"
  printf '%-40s %8.3fs (exit %d)\n' "$name" "$wall" "$code"
done

# --- Microbenchmarks: native google-benchmark JSON. ---
micro_json="$tmpdir/micro.json"
if [[ -x "$BENCH_DIR/micro_benchmarks" ]]; then
  "$BENCH_DIR/micro_benchmarks" \
    --benchmark_format=json \
    --benchmark_out="$micro_json" \
    --benchmark_out_format=json > /dev/null
else
  echo "warning: micro_benchmarks binary not found, emitting empty list" >&2
  echo '{"benchmarks": [], "context": {}}' > "$micro_json"
fi

jq -n \
  --slurpfile figures "$fig_json" \
  --slurpfile micro "$micro_json" \
  '{schema_version: 1,
    figure_benches: $figures[0],
    micro_benchmarks: $micro[0].benchmarks,
    context: $micro[0].context}' > "$OUTPUT"

# --- Per-figure metrics snapshots (QO_METRICS=0 runs produce none). ---
metrics_out="${OUTPUT%.json}.metrics.jsonl"
if [[ -s "$metrics_jsonl" ]]; then
  cp "$metrics_jsonl" "$metrics_out"
  echo "wrote $metrics_out: $(wc -l < "$metrics_out") metrics snapshots"
else
  echo "note: no metrics snapshots captured (QO_METRICS=0?), skipping $metrics_out"
fi

count=$(jq '.figure_benches | length' "$OUTPUT")
failures=$(jq '[.figure_benches[] | select(.exit_code != 0)] | length' "$OUTPUT")
micro_count=$(jq '.micro_benchmarks | length' "$OUTPUT")
echo "wrote $OUTPUT: $count figure benches ($failures failed), $micro_count microbenchmarks"
[[ "$failures" -eq 0 && "$micro_count" -gt 0 ]]

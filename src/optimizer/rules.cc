#include "optimizer/rules.h"

#include <array>

namespace qo::opt {

const char* RuleCategoryToString(RuleCategory c) {
  switch (c) {
    case RuleCategory::kRequired:
      return "required";
    case RuleCategory::kOnByDefault:
      return "on-by-default";
    case RuleCategory::kOffByDefault:
      return "off-by-default";
    case RuleCategory::kImplementation:
      return "implementation";
  }
  return "unknown";
}

namespace {

struct NamedRule {
  int id;
  const char* name;
};

// Behavioral rules wired into the optimizer. Every other id gets a generated
// placeholder name in its range's category.
constexpr std::array<NamedRule, 33> kNamedRules = {{
    {rules::kNormalizeScript, "NormalizeScript"},
    {rules::kBindReferences, "BindReferences"},
    {rules::kDerivePlanProperties, "DerivePlanProperties"},
    {rules::kValidateSchema, "ValidateSchema"},
    {rules::kFilterPushdownBelowProject, "FilterPushdownBelowProject"},
    {rules::kFilterPushdownIntoJoinLeft, "FilterPushdownIntoJoinLeft"},
    {rules::kFilterPushdownIntoJoinRight, "FilterPushdownIntoJoinRight"},
    {rules::kFilterPushdownBelowUnion, "FilterPushdownBelowUnion"},
    {rules::kFilterIntoScan, "FilterIntoScan"},
    {rules::kFilterMerge, "FilterMerge"},
    {rules::kProjectPruneBelowJoin, "ProjectPruneBelowJoin"},
    {rules::kProjectPruneBelowAgg, "ProjectPruneBelowAgg"},
    {rules::kProjectMerge, "ProjectMerge"},
    {rules::kJoinCommute, "JoinCommute"},
    {rules::kTwoPhaseAggregation, "TwoPhaseAggregation"},
    {rules::kEagerAggregationLeft, "EagerAggregationLeft"},
    {rules::kEagerAggregationRight, "EagerAggregationRight"},
    {rules::kJoinAssociativity, "JoinAssociativity"},
    {rules::kPushJoinThroughUnion, "PushJoinThroughUnion"},
    {rules::kBroadcastJoinAggressive, "BroadcastJoinAggressive"},
    {rules::kScanImpl, "ScanImpl"},
    {rules::kFilterImpl, "FilterImpl"},
    {rules::kProjectImpl, "ProjectImpl"},
    {rules::kHashJoinImpl, "HashJoinImpl"},
    {rules::kBroadcastJoinImpl, "BroadcastJoinImpl"},
    {rules::kMergeJoinImpl, "MergeJoinImpl"},
    {rules::kHashAggImpl, "HashAggImpl"},
    {rules::kStreamAggImpl, "StreamAggImpl"},
    {rules::kUnionAllImpl, "UnionAllImpl"},
    {rules::kOutputImpl, "OutputImpl"},
    {rules::kExchangeShuffleImpl, "ExchangeShuffleImpl"},
    {rules::kExchangeBroadcastImpl, "ExchangeBroadcastImpl"},
    {rules::kExchangeGatherImpl, "ExchangeGatherImpl"},
}};

RuleCategory CategoryForId(int id) {
  // Alternative physical implementations that SCOPE would treat as
  // experimental: present in the registry's implementation id range but
  // disabled by default (they only win on sorted/low-cardinality inputs and
  // are sensitive to estimates).
  if (id == rules::kMergeJoinImpl || id == rules::kStreamAggImpl) {
    return RuleCategory::kOffByDefault;
  }
  if (id < 40) return RuleCategory::kRequired;
  if (id < 160) return RuleCategory::kOnByDefault;
  if (id < 200) return RuleCategory::kOffByDefault;
  return RuleCategory::kImplementation;
}

}  // namespace

RuleRegistry::RuleRegistry() {
  rules_.resize(kNumRules);
  for (int id = 0; id < kNumRules; ++id) {
    RuleInfo info;
    info.id = id;
    info.category = CategoryForId(id);
    info.name = std::string(RuleCategoryToString(info.category)) + "_rule_" +
                std::to_string(id);
    rules_[id] = std::move(info);
  }
  for (const NamedRule& nr : kNamedRules) {
    rules_[nr.id].name = nr.name;
  }
  for (int id = 0; id < kNumRules; ++id) {
    switch (rules_[id].category) {
      case RuleCategory::kRequired:
        required_.push_back(id);
        required_mask_.Set(id);
        break;
      case RuleCategory::kOnByDefault:
        on_default_.push_back(id);
        on_default_mask_.Set(id);
        break;
      case RuleCategory::kOffByDefault:
        off_default_.push_back(id);
        off_default_mask_.Set(id);
        break;
      case RuleCategory::kImplementation:
        implementation_.push_back(id);
        implementation_mask_.Set(id);
        break;
    }
  }
}

const RuleRegistry& RuleRegistry::Get() {
  static const RuleRegistry* kRegistry = new RuleRegistry();
  return *kRegistry;
}

const std::vector<int>& RuleRegistry::ByCategory(RuleCategory c) const {
  switch (c) {
    case RuleCategory::kRequired:
      return required_;
    case RuleCategory::kOnByDefault:
      return on_default_;
    case RuleCategory::kOffByDefault:
      return off_default_;
    case RuleCategory::kImplementation:
      return implementation_;
  }
  return required_;
}

const BitVector256& RuleRegistry::CategoryMask(RuleCategory c) const {
  switch (c) {
    case RuleCategory::kRequired:
      return required_mask_;
    case RuleCategory::kOnByDefault:
      return on_default_mask_;
    case RuleCategory::kOffByDefault:
      return off_default_mask_;
    case RuleCategory::kImplementation:
      return implementation_mask_;
  }
  return required_mask_;
}

RuleConfig RuleConfig::Default() {
  const RuleRegistry& reg = RuleRegistry::Get();
  BitVector256 bits = reg.CategoryMask(RuleCategory::kRequired) |
                      reg.CategoryMask(RuleCategory::kOnByDefault) |
                      reg.CategoryMask(RuleCategory::kImplementation);
  return RuleConfig(bits);
}

RuleConfig RuleConfig::DefaultWithFlip(int rule_id) {
  RuleConfig config = Default();
  config.Flip(rule_id);
  return config;
}

std::vector<int> RuleConfig::DiffFromDefault() const {
  return (bits_ ^ Default().bits_).Positions();
}

Status RuleConfig::Validate() const {
  const BitVector256& required =
      RuleRegistry::Get().CategoryMask(RuleCategory::kRequired);
  // Validate reads every required bit at once; record them all as consulted
  // so a memoized validation failure only replays for configs that disable
  // the same required rules.
  if (consulted_ != nullptr) *consulted_ |= required;
  if (!bits_.Contains(required)) {
    BitVector256 missing = required.AndNot(bits_);
    return Status::CompileError(
        "required rule disabled: " +
        RuleRegistry::Get().name(missing.Positions().front()));
  }
  return Status::OK();
}

}  // namespace qo::opt

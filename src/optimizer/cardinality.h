// Cardinality derivation in two modes.
//
//  - kEstimated: what the optimizer believes. Uses the catalog's
//    optimizer-visible statistics and textbook independence/uniformity
//    heuristics (equality selectivity 1/NDV, range selectivity 1/3, ...).
//  - kTrue: ground truth used by the execution simulator. Uses the catalog's
//    true statistics plus the `@`-annotations embedded in scripts (predicate
//    selectivities, join fanouts).
//
// The deliberate divergence between the two modes reproduces the paper's
// Sec. 5.2 finding that estimated cost improvements do not reliably predict
// runtime improvements.
#ifndef QO_OPTIMIZER_CARDINALITY_H_
#define QO_OPTIMIZER_CARDINALITY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "scope/ast.h"
#include "scope/catalog.h"
#include "scope/types.h"

namespace qo::opt {

enum class StatsMode {
  kEstimated,
  kTrue,
};

/// Derived relational properties of an operator output.
struct RelStats {
  double rows = 0.0;
  /// Per-output-column distinct value counts (capped at `rows`).
  std::unordered_map<std::string, double> ndv;

  double NdvOf(const std::string& column) const {
    auto it = ndv.find(column);
    return it == ndv.end() ? rows : it->second;
  }
};

/// Stateless derivation engine; one instance per (catalog, mode).
class StatsDeriver {
 public:
  StatsDeriver(const scope::Catalog& catalog, StatsMode mode)
      : catalog_(catalog), mode_(mode) {}

  StatsMode mode() const { return mode_; }

  RelStats Scan(const std::string& table_path,
                const scope::Schema& schema) const;

  RelStats Filter(const RelStats& input,
                  const std::vector<scope::Predicate>& predicates) const;

  RelStats Project(const RelStats& input,
                   const std::vector<scope::SelectItem>& projections) const;

  /// Inner equi-join. `true_fanout` is consulted only in kTrue mode.
  RelStats Join(const RelStats& left, const RelStats& right,
                const std::string& left_key, const std::string& right_key,
                double true_fanout) const;

  RelStats Aggregate(const RelStats& input,
                     const std::vector<std::string>& group_by,
                     const std::vector<scope::SelectItem>& aggs) const;

  /// Local pre-aggregation over `partitions` partitions: each partition can
  /// emit at most the full group count, so output = min(rows, groups * P).
  RelStats PartialAggregate(const RelStats& input,
                            const std::vector<std::string>& group_by,
                            int partitions) const;

  RelStats UnionAll(const RelStats& left, const RelStats& right) const;

  /// Selectivity of one predicate under this mode.
  double PredicateSelectivity(const scope::Predicate& pred,
                              const RelStats& input) const;

 private:
  const scope::Catalog& catalog_;
  StatsMode mode_;
};

}  // namespace qo::opt

#endif  // QO_OPTIMIZER_CARDINALITY_H_

// Cardinality derivation in two modes.
//
//  - kEstimated: what the optimizer believes. Uses the catalog's
//    optimizer-visible statistics and textbook independence/uniformity
//    heuristics (equality selectivity 1/NDV, range selectivity 1/3, ...).
//  - kTrue: ground truth used by the execution simulator. Uses the catalog's
//    true statistics plus the `@`-annotations embedded in scripts (predicate
//    selectivities, join fanouts).
//
// The deliberate divergence between the two modes reproduces the paper's
// Sec. 5.2 finding that estimated cost improvements do not reliably predict
// runtime improvements.
//
// Column identity is interned: NDV maps are keyed by `Symbol` ids and the
// derivation methods take ids, so the memo's per-expression stats work is
// integer probes. String overloads intern-and-delegate for callers that
// still hold names (tests, diagnostics).
#ifndef QO_OPTIMIZER_CARDINALITY_H_
#define QO_OPTIMIZER_CARDINALITY_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/symbol_table.h"
#include "scope/ast.h"
#include "scope/catalog.h"
#include "scope/types.h"

namespace qo::opt {

enum class StatsMode {
  kEstimated,
  kTrue,
};

/// Flat map Symbol -> double in structure-of-arrays form: a sorted symbol
/// column and a parallel value column. Relations carry a handful of
/// columns, so binary-searched vectors beat hash tables on both probes and
/// — the hot part — the whole-map copies stats derivation does for every
/// memo group. The split layout additionally hands the dense value column
/// straight to the bulk NDV-cap kernel (kernels::KernelTable::clamp_range)
/// and lets Join/UnionAll run sorted two-pointer merges over the key
/// columns instead of per-key binary-search inserts. Every derivation
/// writes each key's value independently (no cross-entry accumulation), so
/// the change of iteration order relative to the hash map this replaced
/// cannot change any output.
class NdvMap {
 public:
  /// Sorted symbol column.
  const std::vector<Symbol>& keys() const { return keys_; }
  /// Value column parallel to `keys()`.
  const std::vector<double>& values() const { return values_; }
  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// The value for `key`, or null when absent.
  const double* Find(Symbol key) const {
    size_t pos = LowerBound(key);
    return pos < keys_.size() && keys_[pos] == key ? &values_[pos] : nullptr;
  }

  size_t count(Symbol key) const { return Find(key) != nullptr ? 1 : 0; }

  /// Insert-or-find, keeping the columns sorted (new keys start at 0.0).
  double& operator[](Symbol key) {
    size_t pos = LowerBound(key);
    if (pos < keys_.size() && keys_[pos] == key) return values_[pos];
    keys_.insert(keys_.begin() + static_cast<ptrdiff_t>(pos), key);
    return *values_.insert(values_.begin() + static_cast<ptrdiff_t>(pos),
                           0.0);
  }

  void Reserve(size_t n) {
    keys_.reserve(n);
    values_.reserve(n);
  }

  /// Appends an entry; `key` must be strictly greater than every present
  /// key (the merge-based derivations emit in sorted order).
  void AppendSorted(Symbol key, double value) {
    keys_.push_back(key);
    values_.push_back(value);
  }

  /// Raw value column for in-place bulk kernels (the NDV cap). The caller
  /// must not reorder entries.
  double* MutableValues() { return values_.data(); }

 private:
  size_t LowerBound(Symbol key) const {
    return static_cast<size_t>(
        std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
  }

  std::vector<Symbol> keys_;
  std::vector<double> values_;
};

/// Derived relational properties of an operator output.
struct RelStats {
  double rows = 0.0;
  /// Per-output-column distinct value counts (capped at `rows`), keyed by
  /// the column's interned OutputName.
  NdvMap ndv;

  double NdvOf(Symbol column) const {
    const double* n = ndv.Find(column);
    return n == nullptr ? rows : *n;
  }
  double NdvOf(const std::string& column) const { return NdvOf(Sym(column)); }
};

/// Stateless derivation engine; one instance per (catalog, mode).
class StatsDeriver {
 public:
  StatsDeriver(const scope::Catalog& catalog, StatsMode mode)
      : catalog_(catalog), mode_(mode) {}

  StatsMode mode() const { return mode_; }

  RelStats Scan(Symbol table_path, const scope::Schema& schema) const;
  RelStats Scan(const std::string& table_path,
                const scope::Schema& schema) const {
    return Scan(Sym(table_path), schema);
  }

  RelStats Filter(const RelStats& input,
                  const std::vector<scope::Predicate>& predicates) const;

  RelStats Project(const RelStats& input,
                   const std::vector<scope::SelectItem>& projections) const;

  /// Inner equi-join. `true_fanout` is consulted only in kTrue mode.
  RelStats Join(const RelStats& left, const RelStats& right, Symbol left_key,
                Symbol right_key, double true_fanout) const;
  RelStats Join(const RelStats& left, const RelStats& right,
                const std::string& left_key, const std::string& right_key,
                double true_fanout) const {
    return Join(left, right, Sym(left_key), Sym(right_key), true_fanout);
  }

  RelStats Aggregate(const RelStats& input,
                     const std::vector<Symbol>& group_by,
                     const std::vector<scope::SelectItem>& aggs) const;
  RelStats Aggregate(const RelStats& input,
                     const std::vector<std::string>& group_by,
                     const std::vector<scope::SelectItem>& aggs) const {
    return Aggregate(input, InternAll(group_by), aggs);
  }

  /// Local pre-aggregation over `partitions` partitions: each partition can
  /// emit at most the full group count, so output = min(rows, groups * P).
  RelStats PartialAggregate(const RelStats& input,
                            const std::vector<Symbol>& group_by,
                            int partitions) const;
  RelStats PartialAggregate(const RelStats& input,
                            const std::vector<std::string>& group_by,
                            int partitions) const {
    return PartialAggregate(input, InternAll(group_by), partitions);
  }

  RelStats UnionAll(const RelStats& left, const RelStats& right) const;

  /// Selectivity of one predicate under this mode.
  double PredicateSelectivity(const scope::Predicate& pred,
                              const RelStats& input) const;

 private:
  static std::vector<Symbol> InternAll(const std::vector<std::string>& names) {
    std::vector<Symbol> syms;
    syms.reserve(names.size());
    for (const auto& n : names) syms.push_back(Sym(n));
    return syms;
  }

  const scope::Catalog& catalog_;
  StatsMode mode_;
};

}  // namespace qo::opt

#endif  // QO_OPTIMIZER_CARDINALITY_H_

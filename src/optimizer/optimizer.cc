#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "optimizer/cardinality.h"

namespace qo::opt {

namespace {

using scope::LogicalOpKind;
using scope::LogicalNode;
using scope::LogicalPlan;
using scope::Predicate;
using scope::Schema;
using scope::SelectItem;

// ---------------------------------------------------------------------------
// Physical properties (data distribution) requested/delivered during search.
// ---------------------------------------------------------------------------

struct PhysProp {
  enum class Kind {
    kAny,        ///< request only: no requirement
    kRandom,     ///< delivered only: partitioned with no alignment
    kHash,       ///< hash partitioned on `key`
    kBroadcast,  ///< replicated to `partitions_hint` consumer partitions
    kSingleton,  ///< single partition
  };
  Kind kind = Kind::kAny;
  std::string key;            ///< rendered into exchange_key (display only)
  Symbol key_sym = kSymEmpty; ///< identity used for hashing/equality
  int partitions_hint = 0;  ///< consumer partitions for kBroadcast requests

  static PhysProp Any() { return {Kind::kAny, "", kSymEmpty, 0}; }
  static PhysProp Random() { return {Kind::kRandom, "", kSymEmpty, 0}; }
  static PhysProp Hash(std::string k, Symbol s) {
    return {Kind::kHash, std::move(k), s, 0};
  }
  static PhysProp Broadcast(int consumers) {
    return {Kind::kBroadcast, "", kSymEmpty, consumers};
  }
  static PhysProp Singleton() { return {Kind::kSingleton, "", kSymEmpty, 0}; }

  uint64_t HashValue() const {
    // Injective pack of (kind, partitions_hint, key_sym): unlike the old
    // byte-wise string hash, distinct properties can never collide in the
    // winners table.
    return (static_cast<uint64_t>(kind) << 56) |
           (static_cast<uint64_t>(static_cast<uint32_t>(partitions_hint) &
                                  0xffffffu)
            << 32) |
           static_cast<uint64_t>(key_sym);
  }

  /// True if a delivered property satisfies this requirement.
  bool SatisfiedBy(const PhysProp& delivered) const {
    switch (kind) {
      case Kind::kAny:
        return true;
      case Kind::kHash:
        return (delivered.kind == Kind::kHash &&
                delivered.key_sym == key_sym) ||
               delivered.kind == Kind::kSingleton;
      case Kind::kSingleton:
        return delivered.kind == Kind::kSingleton;
      case Kind::kBroadcast:
        return delivered.kind == Kind::kBroadcast;
      case Kind::kRandom:
        return true;  // never used as a requirement
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Normalization: destructive rewrites applied before cost-based search.
// Real optimizers apply these heuristically rather than cost-based, which is
// exactly why disabling one can occasionally *improve* the final plan.
// ---------------------------------------------------------------------------

class Normalizer {
 public:
  Normalizer(LogicalPlan* plan, const RuleConfig& config)
      : plan_(plan), config_(config) {}

  /// Runs all enabled rewrites to fixpoint; returns the bit set of rules
  /// that actually changed the plan.
  BitVector256 Run() {
    for (int& root : plan_->roots) root = Rewrite(root);
    PruneColumns();
    return fired_;
  }

 private:
  bool Enabled(int rule) const { return config_.IsEnabled(rule); }

  int Rewrite(int id) {
    auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
    LogicalNode node = plan_->node(id);  // copy: children may be replaced
    for (int& c : node.children) c = Rewrite(c);
    int current = plan_->AddNode(std::move(node));
    // Apply local rules until none fires (bounded for safety).
    for (int iter = 0; iter < 16; ++iter) {
      int next = ApplyLocalRules(current);
      if (next == current) break;
      current = next;
    }
    memo_[id] = current;
    return current;
  }

  /// Applies local rules to a *newly created* node until fixpoint (new
  /// nodes are not covered by the id-based memo in Rewrite).
  int RunLocalFixpoint(int id) {
    for (int iter = 0; iter < 16; ++iter) {
      int next = ApplyLocalRules(id);
      if (next == id) break;
      id = next;
    }
    return id;
  }

  int ApplyLocalRules(int id) {
    const LogicalNode& n = plan_->node(id);
    if (n.kind != LogicalOpKind::kFilter) {
      if (n.kind == LogicalOpKind::kProject && Enabled(rules::kProjectMerge)) {
        int merged = TryProjectMerge(id);
        if (merged != id) return merged;
      }
      return id;
    }
    const LogicalNode& child = plan_->node(n.children[0]);
    switch (child.kind) {
      case LogicalOpKind::kFilter:
        if (Enabled(rules::kFilterMerge)) return MergeFilters(id);
        break;
      case LogicalOpKind::kProject:
        if (Enabled(rules::kFilterPushdownBelowProject)) {
          int pushed = PushFilterBelowProject(id);
          if (pushed != id) return pushed;
        }
        break;
      case LogicalOpKind::kJoin: {
        int pushed = PushFilterIntoJoin(id);
        if (pushed != id) return pushed;
        break;
      }
      case LogicalOpKind::kUnionAll:
        if (Enabled(rules::kFilterPushdownBelowUnion)) {
          return PushFilterBelowUnion(id);
        }
        break;
      case LogicalOpKind::kScan:
        if (Enabled(rules::kFilterIntoScan)) return PushFilterIntoScan(id);
        break;
      default:
        break;
    }
    return id;
  }

  int MergeFilters(int id) {
    const LogicalNode& outer = plan_->node(id);
    const LogicalNode& inner = plan_->node(outer.children[0]);
    LogicalNode merged = inner;
    merged.predicates.insert(merged.predicates.end(),
                             outer.predicates.begin(),
                             outer.predicates.end());
    fired_.Set(rules::kFilterMerge);
    return plan_->AddNode(std::move(merged));
  }

  int PushFilterBelowProject(int id) {
    const LogicalNode& filter = plan_->node(id);
    const LogicalNode& project = plan_->node(filter.children[0]);
    const Schema& input = plan_->node(project.children[0]).schema;
    // Translate each predicate column through the projection; bail if any
    // column is computed (aggregates never appear in kProject).
    std::vector<Predicate> translated;
    for (const Predicate& p : filter.predicates) {
      const SelectItem* source = nullptr;
      Symbol pred_sym = scope::ColumnSymOf(p);
      for (const SelectItem& item : project.projections) {
        if (scope::OutputSymOf(item) == pred_sym) {
          source = &item;
          break;
        }
      }
      if (source == nullptr || source->column.empty() ||
          !input.HasColumn(scope::ColumnSymOf(*source))) {
        return id;
      }
      Predicate q = p;
      q.column = source->column;
      q.column_sym = scope::ColumnSymOf(*source);
      translated.push_back(std::move(q));
    }
    LogicalNode new_filter;
    new_filter.kind = LogicalOpKind::kFilter;
    new_filter.children = {project.children[0]};
    new_filter.predicates = std::move(translated);
    new_filter.schema = input;
    int nf = RunLocalFixpoint(plan_->AddNode(std::move(new_filter)));
    LogicalNode new_project = project;
    new_project.children = {nf};
    fired_.Set(rules::kFilterPushdownBelowProject);
    return plan_->AddNode(std::move(new_project));
  }

  int PushFilterIntoJoin(int id) {
    const LogicalNode filter = plan_->node(id);
    const LogicalNode join = plan_->node(filter.children[0]);
    const Schema& left = plan_->node(join.children[0]).schema;
    const Schema& right = plan_->node(join.children[1]).schema;
    std::vector<Predicate> to_left, to_right, rest;
    for (const Predicate& p : filter.predicates) {
      Symbol pred_sym = scope::ColumnSymOf(p);
      if (left.HasColumn(pred_sym) &&
          Enabled(rules::kFilterPushdownIntoJoinLeft)) {
        to_left.push_back(p);
      } else if (right.HasColumn(pred_sym) &&
                 Enabled(rules::kFilterPushdownIntoJoinRight)) {
        to_right.push_back(p);
      } else {
        rest.push_back(p);
      }
    }
    if (to_left.empty() && to_right.empty()) return id;
    LogicalNode new_join = join;
    if (!to_left.empty()) {
      LogicalNode f;
      f.kind = LogicalOpKind::kFilter;
      f.children = {join.children[0]};
      f.predicates = std::move(to_left);
      f.schema = left;
      new_join.children[0] = RunLocalFixpoint(plan_->AddNode(std::move(f)));
      fired_.Set(rules::kFilterPushdownIntoJoinLeft);
    }
    if (!to_right.empty()) {
      LogicalNode f;
      f.kind = LogicalOpKind::kFilter;
      f.children = {join.children[1]};
      f.predicates = std::move(to_right);
      f.schema = right;
      new_join.children[1] = RunLocalFixpoint(plan_->AddNode(std::move(f)));
      fired_.Set(rules::kFilterPushdownIntoJoinRight);
    }
    int nj = plan_->AddNode(std::move(new_join));
    if (rest.empty()) return nj;
    LogicalNode new_filter = filter;
    new_filter.children = {nj};
    new_filter.predicates = std::move(rest);
    return plan_->AddNode(std::move(new_filter));
  }

  int PushFilterBelowUnion(int id) {
    const LogicalNode filter = plan_->node(id);
    const LogicalNode union_node = plan_->node(filter.children[0]);
    LogicalNode new_union = union_node;
    for (int side = 0; side < 2; ++side) {
      LogicalNode f;
      f.kind = LogicalOpKind::kFilter;
      f.children = {union_node.children[side]};
      f.predicates = filter.predicates;
      f.schema = plan_->node(union_node.children[side]).schema;
      new_union.children[side] = RunLocalFixpoint(plan_->AddNode(std::move(f)));
    }
    fired_.Set(rules::kFilterPushdownBelowUnion);
    return plan_->AddNode(std::move(new_union));
  }

  int PushFilterIntoScan(int id) {
    const LogicalNode& filter = plan_->node(id);
    LogicalNode scan = plan_->node(filter.children[0]);
    scan.predicates.insert(scan.predicates.end(), filter.predicates.begin(),
                           filter.predicates.end());
    fired_.Set(rules::kFilterIntoScan);
    return plan_->AddNode(std::move(scan));
  }

  int TryProjectMerge(int id) {
    const LogicalNode& outer = plan_->node(id);
    const LogicalNode& inner = plan_->node(outer.children[0]);
    if (inner.kind != LogicalOpKind::kProject) return id;
    std::vector<SelectItem> merged_items;
    for (const SelectItem& item : outer.projections) {
      const SelectItem* source = nullptr;
      Symbol item_sym = scope::ColumnSymOf(item);
      for (const SelectItem& in_item : inner.projections) {
        if (scope::OutputSymOf(in_item) == item_sym) {
          source = &in_item;
          break;
        }
      }
      if (source == nullptr || source->column.empty()) return id;
      SelectItem m;
      m.column = source->column;
      m.column_sym = scope::ColumnSymOf(*source);
      m.alias = item.OutputName();
      m.alias_sym = scope::OutputSymOf(item);
      m.out_sym = m.alias.empty() ? m.column_sym : m.alias_sym;
      merged_items.push_back(std::move(m));
    }
    LogicalNode merged = outer;
    merged.children = {inner.children[0]};
    merged.projections = std::move(merged_items);
    fired_.Set(rules::kProjectMerge);
    return plan_->AddNode(std::move(merged));
  }

  /// Column pruning below joins and aggregates: inserts narrowing Projects
  /// when a child carries columns no consumer needs.
  void PruneColumns() {
    // Only joins and aggregates are pruned below; consult the rule bits only
    // when such a node exists so configs differing in the prune rules on
    // join/agg-free jobs stay footprint-compatible (cross-config memo).
    std::vector<int> order = TopologicalOrder();
    bool has_join = false, has_agg = false;
    for (int id : order) {
      LogicalOpKind k = plan_->node(id).kind;
      has_join |= k == LogicalOpKind::kJoin;
      has_agg |= k == LogicalOpKind::kAggregate;
    }
    bool join_on = has_join && Enabled(rules::kProjectPruneBelowJoin);
    bool agg_on = has_agg && Enabled(rules::kProjectPruneBelowAgg);
    if (!join_on && !agg_on) return;
    // Required column sets, propagated from the roots down.
    std::unordered_map<int, std::unordered_set<Symbol>> required;
    for (int root : plan_->roots) {
      for (const auto& c : plan_->node(root).schema.columns) {
        required[root].insert(c.sym);
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const LogicalNode& n = plan_->node(*it);
      std::unordered_set<Symbol>& req = required[*it];
      // Columns this node itself consumes.
      for (const Predicate& p : n.predicates) {
        req.insert(scope::ColumnSymOf(p));
      }
      for (const SelectItem& s : n.projections) {
        Symbol col_sym = scope::ColumnSymOf(s);
        if (col_sym != kSymStar) req.insert(col_sym);
      }
      for (Symbol g : n.group_by_syms) req.insert(g);
      if (n.kind == LogicalOpKind::kJoin) {
        req.insert(n.left_key_sym);
        req.insert(n.right_key_sym);
      }
      for (int c : n.children) {
        const Schema& cs = plan_->node(c).schema;
        for (const auto& col : cs.columns) {
          bool needed = req.count(col.sym) > 0;
          // Projections / aggregates cut the dependency chain; other
          // operators pass requirements through.
          if (n.kind == LogicalOpKind::kFilter ||
              n.kind == LogicalOpKind::kUnionAll ||
              n.kind == LogicalOpKind::kOutput ||
              n.kind == LogicalOpKind::kJoin) {
            if (needed) required[c].insert(col.sym);
          } else if (needed) {
            required[c].insert(col.sym);
          }
        }
        // Node-consumed columns also flow to whichever child has them.
        for (Symbol col : std::vector<Symbol>(req.begin(), req.end())) {
          if (cs.HasColumn(col)) required[c].insert(col);
        }
      }
    }
    // Insert pruning projects below joins/aggregates. Note: AddNode may
    // reallocate the arena, so nodes are re-fetched by id after every
    // insertion instead of held by reference.
    for (int id : order) {
      bool is_join = plan_->node(id).kind == LogicalOpKind::kJoin;
      bool is_agg = plan_->node(id).kind == LogicalOpKind::kAggregate;
      if ((is_join && !join_on) || (is_agg && !agg_on) ||
          (!is_join && !is_agg)) {
        continue;
      }
      const size_t n_children = plan_->node(id).children.size();
      for (size_t ci = 0; ci < n_children; ++ci) {
        int c = plan_->node(id).children[ci];
        if (plan_->node(c).kind == LogicalOpKind::kProject) continue;
        const auto& req = required[c];
        std::vector<scope::Column> kept;
        for (const auto& col : plan_->node(c).schema.columns) {
          if (req.count(col.sym) > 0) kept.push_back(col);
        }
        if (kept.empty() ||
            kept.size() >= plan_->node(c).schema.columns.size()) {
          continue;
        }
        // Prune only when it meaningfully narrows rows; marginal projects
        // cost more CPU than the width they save.
        double kept_width = 0.0;
        for (const auto& col : kept) {
          kept_width += scope::ColumnTypeWidth(col.type);
        }
        if (kept_width > 0.75 * plan_->node(c).schema.RowWidthBytes()) {
          continue;
        }
        LogicalNode proj;
        proj.kind = LogicalOpKind::kProject;
        proj.children = {c};
        for (const auto& col : kept) {
          SelectItem item;
          item.column = col.name;
          item.column_sym = col.sym;
          item.alias_sym = kSymEmpty;
          item.out_sym = col.sym;
          proj.projections.push_back(std::move(item));
          proj.schema.columns.push_back(col);
        }
        int proj_id = plan_->AddNode(std::move(proj));
        plan_->node(id).children[ci] = proj_id;
        fired_.Set(is_join ? rules::kProjectPruneBelowJoin
                           : rules::kProjectPruneBelowAgg);
      }
    }
  }

  std::vector<int> TopologicalOrder() const {
    std::vector<int> order;
    std::unordered_set<int> seen;
    std::function<void(int)> visit = [&](int id) {
      if (!seen.insert(id).second) return;
      for (int c : plan_->node(id).children) visit(c);
      order.push_back(id);
    };
    for (int r : plan_->roots) visit(r);
    return order;  // children before parents
  }

  LogicalPlan* plan_;
  const RuleConfig& config_;
  BitVector256 fired_;
  std::unordered_map<int, int> memo_;
};

// ---------------------------------------------------------------------------
// Memo structures.
// ---------------------------------------------------------------------------

struct MExpr {
  LogicalOpKind kind = LogicalOpKind::kScan;
  std::vector<int> children;  ///< group ids
  std::string table_path;
  Symbol table_sym = kNoSymbol;
  std::vector<Predicate> predicates;
  std::vector<SelectItem> projections;
  std::vector<std::string> group_by;
  std::vector<Symbol> group_by_syms;
  std::string left_key;
  std::string right_key;
  Symbol left_key_sym = kNoSymbol;
  Symbol right_key_sym = kNoSymbol;
  double true_fanout = 1.0;
  std::string output_path;
  bool partial_agg = false;  ///< local pre-aggregation (eager agg)
  BitVector256 derivation;   ///< transformation rules that produced this expr
  uint32_t applied = 0;      ///< transformation-rule bitmask already tried

  /// Structural identity hash over interned ids — replaces the old string
  /// key. Field counts are chained in as separators so adjacent lists can't
  /// alias. A 64-bit collision within one group's handful of exprs
  /// (~2^-64 per pair) would only drop a duplicate alternative, never
  /// corrupt a plan.
  uint64_t Fingerprint() const {
    uint64_t h = HashU64(static_cast<uint64_t>(kind), 0x9e3779b97f4a7c15ULL);
    h = HashU64(children.size(), h);
    for (int c : children) h = HashU64(static_cast<uint64_t>(c), h);
    h = HashU64(SymOf(table_sym, table_path), h);
    h = HashU64(SymOf(left_key_sym, left_key), h);
    h = HashU64(SymOf(right_key_sym, right_key), h);
    h = HashU64(partial_agg ? 1 : 0, h);
    h = HashU64(predicates.size(), h);
    for (const Predicate& p : predicates) {
      h = HashU64(scope::ColumnSymOf(p), h);
      h = HashU64(static_cast<uint64_t>(p.op), h);
      h = HashU64(p.literal_sym != kNoSymbol ? p.literal_sym : Sym(p.literal),
                  h);
    }
    h = HashU64(projections.size(), h);
    for (const SelectItem& s : projections) {
      h = HashU64(static_cast<uint64_t>(s.agg), h);
      h = HashU64(scope::ColumnSymOf(s), h);
      h = HashU64(SymOf(s.alias_sym, s.alias), h);
    }
    h = HashU64(group_by.size(), h);
    if (group_by_syms.size() == group_by.size()) {
      // Maintained syms: hash in place, no temporary vector per call.
      for (Symbol g : group_by_syms) h = HashU64(g, h);
    } else {
      for (const std::string& g : group_by) h = HashU64(Sym(g), h);
    }
    return MixHash(h);
  }

  /// group_by as interned ids; interns lazily when the syms were not
  /// maintained (hand-built plans in tests).
  std::vector<Symbol> GroupBySymsResolved() const {
    if (group_by_syms.size() == group_by.size()) return group_by_syms;
    std::vector<Symbol> out;
    out.reserve(group_by.size());
    for (const std::string& g : group_by) out.push_back(Sym(g));
    return out;
  }
};

struct Winner {
  bool feasible = false;
  double cost = 1e300;
  int phys = -1;
  PhysProp delivered;
  BitVector256 rules;
};

struct Group {
  /// deque: appending alternatives never moves existing exprs, so the
  /// search holds references across AddExprToGroup instead of deep-copying
  /// every MExpr it touches.
  std::deque<MExpr> exprs;
  /// Output schema, built once in MakeGroup and shared (refcount bump, not
  /// column-vector copy) into every PhysicalNode implemented from this
  /// group. Never null for a constructed group.
  std::shared_ptr<const Schema> schema;
  RelStats est;
  RelStats tru;
  bool explored = false;
  std::unordered_map<uint64_t, Winner> winners;
  std::unordered_set<uint64_t> fingerprints;
};

// Local indices for the `applied` bitmask.
enum TransformIndex {
  kTxJoinCommute = 0,
  kTxJoinAssoc = 1,
  kTxEagerAggLeft = 2,
  kTxEagerAggRight = 3,
  kTxJoinThroughUnion = 4,
};

// ---------------------------------------------------------------------------
// The memo optimizer.
// ---------------------------------------------------------------------------

class MemoOptimizer {
 public:
  MemoOptimizer(const scope::Catalog& catalog, const OptimizerOptions& options,
                const RuleConfig& config)
      : catalog_(catalog),
        options_(options),
        config_(config),  // by value: the copy carries this compile's sink
        est_(catalog, StatsMode::kEstimated),
        tru_(catalog, StatsMode::kTrue),
        cost_model_(options.cost_params) {}

  /// Full compilation. Rule bits consulted while validating + normalizing
  /// are recorded into `norm_sink`, the rest into `post_sink` (either may
  /// be null); on success `normalized_out` (if non-null) receives the
  /// normalized plan for cross-config reuse.
  Result<CompilationOutput> Run(
      const LogicalPlan& input, BitVector256* norm_sink,
      BitVector256* post_sink,
      std::shared_ptr<const NormalizedPlan>* normalized_out) {
    config_.TrackConsulted(norm_sink);
    QO_RETURN_IF_ERROR(config_.Validate());
    auto norm = std::make_shared<NormalizedPlan>();
    norm->plan = input;  // normalization mutates a copy
    // Defensive for hand-built plans: no-op when the compiler interned.
    scope::InternPlanSymbols(&norm->plan);
    {
      Normalizer normalizer(&norm->plan, config_);
      norm->fired = normalizer.Run();
    }
    std::shared_ptr<const NormalizedPlan> frozen = std::move(norm);
    if (normalized_out != nullptr) *normalized_out = frozen;
    return RunPostNormalize(*frozen, post_sink);
  }

  /// Cost-based search over an already validated + normalized plan.
  Result<CompilationOutput> RunPostNormalize(const NormalizedPlan& norm,
                                             BitVector256* post_sink) {
    config_.TrackConsulted(post_sink);
    RegisterScanSchemas(norm.plan);
    // One up-front block for the candidate arena: typical searches stay
    // under this, so AddNode never reallocates (PhysicalNode is string- and
    // vector-heavy; doubling growth moved every candidate ~log N times).
    scratch_.nodes.reserve(128);

    // Build memo groups from the normalized DAG.
    std::unordered_map<int, int> node_to_group;
    std::vector<int> root_groups;
    for (int r : norm.plan.roots) {
      QO_ASSIGN_OR_RETURN(int g, BuildGroup(norm.plan, r, &node_to_group));
      root_groups.push_back(g);
    }

    // Optimize every output root.
    std::vector<int> root_phys;
    BitVector256 signature = norm.fired;
    for (int g : root_groups) {
      Winner w = OptimizeGroup(g, PhysProp::Any(), 0);
      if (!w.feasible) {
        return Status::CompileError(
            "no physical plan under this rule configuration");
      }
      root_phys.push_back(w.phys);
      signature |= w.rules;
    }
    // Required normalization rules fire on every compilation.
    signature.Set(rules::kNormalizeScript);
    signature.Set(rules::kBindReferences);
    signature.Set(rules::kDerivePlanProperties);
    signature.Set(rules::kValidateSchema);

    CompilationOutput out;
    out.signature = signature;
    out.est_cost = Compact(root_phys, &out.plan);
    return out;
  }

 private:
  // ----- Memo construction -------------------------------------------------

  Result<int> BuildGroup(const LogicalPlan& plan, int node_id,
                         std::unordered_map<int, int>* node_to_group) {
    auto it = node_to_group->find(node_id);
    if (it != node_to_group->end()) return it->second;
    const LogicalNode& n = plan.node(node_id);
    MExpr expr;
    expr.kind = n.kind;
    expr.table_path = n.table_path;
    expr.table_sym = n.table_sym;
    expr.predicates = n.predicates;
    expr.projections = n.projections;
    expr.group_by = n.group_by;
    expr.group_by_syms = n.group_by_syms;
    expr.left_key = n.left_key;
    expr.right_key = n.right_key;
    expr.left_key_sym = n.left_key_sym;
    expr.right_key_sym = n.right_key_sym;
    expr.true_fanout = n.true_fanout;
    expr.output_path = n.output_path;
    for (int c : n.children) {
      QO_ASSIGN_OR_RETURN(int g, BuildGroup(plan, c, node_to_group));
      expr.children.push_back(g);
    }
    int gid = MakeGroup(std::move(expr), n.schema);
    (*node_to_group)[node_id] = gid;
    return gid;
  }

  int MakeGroup(MExpr&& expr, Schema schema) {
    Group group;
    group.schema = std::make_shared<const Schema>(std::move(schema));
    group.est = DeriveStats(expr, est_);
    group.tru = DeriveStats(expr, tru_);
    group.fingerprints.insert(expr.Fingerprint());
    group.exprs.push_back(std::move(expr));
    groups_.push_back(std::move(group));
    return static_cast<int>(groups_.size()) - 1;
  }

  RelStats DeriveStats(const MExpr& e, const StatsDeriver& deriver) const {
    auto child = [&](size_t i) -> const RelStats& {
      return deriver.mode() == StatsMode::kTrue ? groups_[e.children[i]].tru
                                                : groups_[e.children[i]].est;
    };
    switch (e.kind) {
      case LogicalOpKind::kScan: {
        RelStats s =
            deriver.Scan(SymOf(e.table_sym, e.table_path), SchemaOfScan(e));
        if (!e.predicates.empty()) s = deriver.Filter(s, e.predicates);
        return s;
      }
      case LogicalOpKind::kFilter:
        return deriver.Filter(child(0), e.predicates);
      case LogicalOpKind::kProject:
        return deriver.Project(child(0), e.projections);
      case LogicalOpKind::kJoin:
        return deriver.Join(child(0), child(1),
                            SymOf(e.left_key_sym, e.left_key),
                            SymOf(e.right_key_sym, e.right_key),
                            e.true_fanout);
      case LogicalOpKind::kAggregate:
        if (e.partial_agg) {
          int parts = ChoosePartitions(child(0).rows * 64.0);
          return deriver.PartialAggregate(child(0), e.GroupBySymsResolved(),
                                          parts);
        }
        return deriver.Aggregate(child(0), e.GroupBySymsResolved(),
                                 e.projections);
      case LogicalOpKind::kUnionAll:
        return deriver.UnionAll(child(0), child(1));
      case LogicalOpKind::kOutput:
        return child(0);
    }
    return RelStats{};
  }

  // Scans derive stats from their full extracted schema (before embedded
  // predicates); the group schema already equals it.
  Schema SchemaOfScan(const MExpr& e) const {
    auto it = scan_schema_.find(SymOf(e.table_sym, e.table_path));
    return it != scan_schema_.end() ? it->second : Schema{};
  }

  /// Remembers scan schemas before BuildGroup runs. The normalized arena
  /// still contains every original scan node (rewrites only append), so
  /// registering from it is equivalent to registering from the input plan.
  void RegisterScanSchemas(const LogicalPlan& plan) {
    for (const auto& n : plan.nodes) {
      if (n.kind == LogicalOpKind::kScan) {
        scan_schema_[SymOf(n.table_sym, n.table_path)] = n.schema;
      }
    }
  }
  // ----- Exploration --------------------------------------------------------

  void ExploreGroup(int gid) {
    if (groups_[gid].explored) return;
    groups_[gid].explored = true;
    for (size_t i = 0;
         i < groups_[gid].exprs.size() &&
         groups_[gid].exprs.size() <
             static_cast<size_t>(options_.max_exprs_per_group);
         ++i) {
      // Explore children first so their alternatives are visible to
      // pattern-matching rules here. Safe by reference: both arenas are
      // deques, so recursive exploration can append without moving exprs[i].
      for (int c : groups_[gid].exprs[i].children) ExploreGroup(c);
      TryJoinCommute(gid, i);
      TryJoinAssociativity(gid, i);
      TryEagerAggregation(gid, i, /*left_side=*/true);
      TryEagerAggregation(gid, i, /*left_side=*/false);
      TryJoinThroughUnion(gid, i);
    }
  }

  bool AlreadyApplied(int gid, size_t i, TransformIndex tx) {
    return (groups_[gid].exprs[i].applied & (1u << tx)) != 0;
  }
  void MarkApplied(int gid, size_t i, TransformIndex tx) {
    groups_[gid].exprs[i].applied |= (1u << tx);
  }

  void AddExprToGroup(int gid, MExpr&& expr) {
    Group& g = groups_[gid];
    if (g.exprs.size() >= static_cast<size_t>(options_.max_exprs_per_group)) {
      return;
    }
    if (!g.fingerprints.insert(expr.Fingerprint()).second) return;
    g.exprs.push_back(std::move(expr));
  }

  void TryJoinCommute(int gid, size_t i) {
    // Structural guards run before the rule-bit probe so the bit is only
    // consulted when the rule could actually fire (keeps the cross-config
    // memo footprint tight on join-free jobs).
    if (groups_[gid].exprs[i].kind != LogicalOpKind::kJoin) return;
    if (!config_.IsEnabled(rules::kJoinCommute)) return;
    if (AlreadyApplied(gid, i, kTxJoinCommute)) return;
    MarkApplied(gid, i, kTxJoinCommute);
    const MExpr& e = groups_[gid].exprs[i];
    MExpr swapped = e;
    std::swap(swapped.children[0], swapped.children[1]);
    std::swap(swapped.left_key, swapped.right_key);
    std::swap(swapped.left_key_sym, swapped.right_key_sym);
    // Preserve ground-truth output rows: rows = L*f = R*f'.
    double l_rows = groups_[e.children[0]].tru.rows;
    double r_rows = std::max(1.0, groups_[e.children[1]].tru.rows);
    swapped.true_fanout = e.true_fanout * l_rows / r_rows;
    swapped.applied |= (1u << kTxJoinCommute);  // avoid ping-pong
    swapped.derivation.Set(rules::kJoinCommute);
    AddExprToGroup(gid, std::move(swapped));
  }

  void TryJoinAssociativity(int gid, size_t i) {
    if (groups_[gid].exprs[i].kind != LogicalOpKind::kJoin) return;
    if (!config_.IsEnabled(rules::kJoinAssociativity)) return;
    if (AlreadyApplied(gid, i, kTxJoinAssoc)) return;
    MarkApplied(gid, i, kTxJoinAssoc);
    const MExpr& e = groups_[gid].exprs[i];  // (A join B) join C
    int left_gid = e.children[0];
    for (const MExpr* j2p : CollectPatternExprs(left_gid,
                                                LogicalOpKind::kJoin)) {
      const MExpr& j2 = *j2p;
      int a_gid = j2.children[0];
      int b_gid = j2.children[1];
      // The key joining to C must come from B.
      if (!groups_[b_gid].schema->HasColumn(
              SymOf(e.left_key_sym, e.left_key))) {
        continue;
      }
      if (!groups_[a_gid].schema->HasColumn(
              SymOf(j2.left_key_sym, j2.left_key))) {
        continue;
      }
      // inner = B join C.
      MExpr inner;
      inner.kind = LogicalOpKind::kJoin;
      inner.children = {b_gid, e.children[1]};
      inner.left_key = e.left_key;
      inner.right_key = e.right_key;
      inner.left_key_sym = e.left_key_sym;
      inner.right_key_sym = e.right_key_sym;
      inner.true_fanout = e.true_fanout;
      inner.derivation = e.derivation | j2.derivation;
      inner.derivation.Set(rules::kJoinAssociativity);
      Schema inner_schema = ConcatSchemas(*groups_[b_gid].schema,
                                          *groups_[e.children[1]].schema);
      int inner_gid = MakeGroup(std::move(inner), std::move(inner_schema));
      // outer = A join inner.
      MExpr outer;
      outer.kind = LogicalOpKind::kJoin;
      outer.children = {a_gid, inner_gid};
      outer.left_key = j2.left_key;
      outer.right_key = j2.right_key;
      outer.left_key_sym = j2.left_key_sym;
      outer.right_key_sym = j2.right_key_sym;
      outer.true_fanout = j2.true_fanout * e.true_fanout;
      outer.derivation = e.derivation | j2.derivation;
      outer.derivation.Set(rules::kJoinAssociativity);
      outer.applied |= (1u << kTxJoinAssoc);
      AddExprToGroup(gid, std::move(outer));
      break;  // one reassociation per expr keeps the space bounded
    }
  }

  void TryEagerAggregation(int gid, size_t i, bool left_side) {
    int rule = left_side ? rules::kEagerAggregationLeft
                         : rules::kEagerAggregationRight;
    TransformIndex tx = left_side ? kTxEagerAggLeft : kTxEagerAggRight;
    {
      const MExpr& probe = groups_[gid].exprs[i];
      if (probe.kind != LogicalOpKind::kAggregate || probe.partial_agg) return;
    }
    if (!config_.IsEnabled(rule)) return;
    if (AlreadyApplied(gid, i, tx)) return;
    MarkApplied(gid, i, tx);
    const MExpr& e = groups_[gid].exprs[i];
    std::vector<Symbol> e_group_syms = e.GroupBySymsResolved();
    int child_gid = e.children[0];
    for (const MExpr* joinp : CollectPatternExprs(child_gid,
                                                  LogicalOpKind::kJoin)) {
      const MExpr& join = *joinp;
      int side_gid = join.children[left_side ? 0 : 1];
      const Schema& side_schema = *groups_[side_gid].schema;
      const std::string& join_key = left_side ? join.left_key : join.right_key;
      Symbol join_key_sym = left_side ? SymOf(join.left_key_sym, join.left_key)
                                      : SymOf(join.right_key_sym,
                                              join.right_key);
      // All grouping keys and aggregate inputs must come from this side.
      bool applicable = true;
      for (Symbol g : e_group_syms) {
        if (!side_schema.HasColumn(g)) applicable = false;
      }
      for (const SelectItem& item : e.projections) {
        Symbol col_sym = scope::ColumnSymOf(item);
        if (col_sym != kSymStar && !side_schema.HasColumn(col_sym)) {
          applicable = false;
        }
      }
      if (!applicable) continue;
      // Partial aggregate keyed by (group keys + join key).
      MExpr partial;
      partial.kind = LogicalOpKind::kAggregate;
      partial.partial_agg = true;
      partial.children = {side_gid};
      partial.group_by = e.group_by;
      partial.group_by_syms = e_group_syms;
      bool key_in_groups = false;
      for (Symbol g : e_group_syms) {
        if (g == join_key_sym) key_in_groups = true;
      }
      if (!key_in_groups) {
        partial.group_by.push_back(join_key);
        partial.group_by_syms.push_back(join_key_sym);
      }
      partial.projections = e.projections;
      partial.derivation = e.derivation | join.derivation;
      partial.derivation.Set(rule);
      Schema partial_schema;
      for (const auto& col : side_schema.columns) {
        Symbol col_sym = SymOf(col.sym, col.name);
        bool keep = col_sym == join_key_sym;
        for (Symbol g : e_group_syms) {
          if (g == col_sym) keep = true;
        }
        for (const SelectItem& item : e.projections) {
          if (scope::ColumnSymOf(item) == col_sym) keep = true;
        }
        if (keep) partial_schema.columns.push_back(col);
      }
      int partial_gid = MakeGroup(std::move(partial), std::move(partial_schema));
      // New join over the pre-aggregated side.
      MExpr new_join = join;
      new_join.children[left_side ? 0 : 1] = partial_gid;
      new_join.derivation.Set(rule);
      Schema join_schema = ConcatSchemas(
          *groups_[new_join.children[0]].schema,
          *groups_[new_join.children[1]].schema);
      int join_gid = MakeGroup(std::move(new_join), std::move(join_schema));
      // Final aggregate in the original group.
      MExpr final_agg = e;
      final_agg.children = {join_gid};
      final_agg.applied |= (1u << tx);
      final_agg.derivation.Set(rule);
      AddExprToGroup(gid, std::move(final_agg));
      break;
    }
  }

  void TryJoinThroughUnion(int gid, size_t i) {
    if (groups_[gid].exprs[i].kind != LogicalOpKind::kJoin) return;
    if (!config_.IsEnabled(rules::kPushJoinThroughUnion)) return;
    if (AlreadyApplied(gid, i, kTxJoinThroughUnion)) return;
    MarkApplied(gid, i, kTxJoinThroughUnion);
    const MExpr& e = groups_[gid].exprs[i];
    int left_gid = e.children[0];
    for (const MExpr* up : CollectPatternExprs(left_gid,
                                               LogicalOpKind::kUnionAll)) {
      const MExpr& u = *up;
      int join_gids[2];
      for (int side = 0; side < 2; ++side) {
        MExpr nj = e;
        nj.children = {u.children[side], e.children[1]};
        nj.derivation.Set(rules::kPushJoinThroughUnion);
        Schema s = ConcatSchemas(*groups_[u.children[side]].schema,
                                 *groups_[e.children[1]].schema);
        join_gids[side] = MakeGroup(std::move(nj), std::move(s));
      }
      MExpr new_union;
      new_union.kind = LogicalOpKind::kUnionAll;
      new_union.children = {join_gids[0], join_gids[1]};
      new_union.derivation = e.derivation | u.derivation;
      new_union.derivation.Set(rules::kPushJoinThroughUnion);
      new_union.applied |= (1u << kTxJoinThroughUnion);
      AddExprToGroup(gid, std::move(new_union));
      break;
    }
  }

  static Schema ConcatSchemas(const Schema& l, const Schema& r) {
    Schema out = l;
    for (const auto& c : r.columns) {
      if (!out.HasColumn(SymOf(c.sym, c.name))) out.columns.push_back(c);
    }
    return out;
  }

  /// True for column-pruning projects (no renames, no computed columns) —
  /// pattern-matching rules may safely look through them.
  static bool IsPureProject(const MExpr& e) {
    if (e.kind != LogicalOpKind::kProject) return false;
    for (const SelectItem& item : e.projections) {
      if (item.agg != scope::AggFunc::kNone || !item.alias.empty() ||
          item.column == "*") {
        return false;
      }
    }
    return true;
  }

  /// Expressions of `kind` in group `gid`, looking through one level of
  /// pure pruning projects (which rules 46/47 insert below joins and
  /// aggregates and would otherwise hide the patterns). Returns pointers
  /// into the expr deques — stable across MakeGroup/AddExprToGroup, so
  /// callers match patterns without copying whole MExprs.
  std::vector<const MExpr*> CollectPatternExprs(int gid,
                                                LogicalOpKind kind) const {
    std::vector<const MExpr*> out;
    for (const MExpr& e : groups_[gid].exprs) {
      if (e.kind == kind) {
        out.push_back(&e);
      } else if (IsPureProject(e)) {
        for (const MExpr& b : groups_[e.children[0]].exprs) {
          if (b.kind == kind) out.push_back(&b);
        }
      }
    }
    return out;
  }

  // ----- Implementation -----------------------------------------------------

  Winner OptimizeGroup(int gid, const PhysProp& required, int depth) {
    uint64_t key = required.HashValue();
    auto found = groups_[gid].winners.find(key);
    if (found != groups_[gid].winners.end()) return found->second;
    // Insert an infeasible placeholder to stop runaway recursion.
    groups_[gid].winners[key] = Winner{};
    if (depth > 64) return Winner{};

    ExploreGroup(gid);

    Winner best;
    const size_t n_exprs = groups_[gid].exprs.size();
    for (size_t i = 0; i < n_exprs; ++i) {
      // By reference: the deque arenas keep exprs pinned while recursive
      // OptimizeGroup calls grow groups_ underneath this loop.
      ImplementExpr(gid, groups_[gid].exprs[i], required, depth, &best);
    }
    // Enforcer: satisfy the requirement by exchanging the Any-winner.
    if (required.kind != PhysProp::Kind::kAny) {
      Winner any = OptimizeGroup(gid, PhysProp::Any(), depth + 1);
      if (any.feasible) {
        AddEnforcer(gid, any, required, &best);
      }
    }
    groups_[gid].winners[key] = best;
    return best;
  }

  void ConsiderCandidate(const Winner& candidate, Winner* best) {
    if (!candidate.feasible) return;
    if (!best->feasible || candidate.cost < best->cost) *best = candidate;
  }

  /// Creates a physical node for `expr` in group `gid`, annotating sizes.
  int MakePhysNode(PhysOpKind kind, const MExpr& expr, int gid,
                   std::vector<int> phys_children, double est_rows,
                   double true_rows, int partitions,
                   const std::shared_ptr<const Schema>& schema) {
    PhysicalNode node;
    node.kind = kind;
    node.children = std::move(phys_children);
    node.schema = schema;  // group-shared: refcount bump, no column copy
    node.table_path = expr.table_path;
    node.predicates = expr.predicates;
    node.projections = expr.projections;
    node.group_by = expr.group_by;
    node.left_key = expr.left_key;
    node.right_key = expr.right_key;
    node.true_fanout = expr.true_fanout;
    node.output_path = expr.output_path;
    node.est_rows = est_rows;
    const double row_width = schema->RowWidthBytes();
    node.est_bytes = est_rows * row_width;
    node.true_rows = true_rows;
    node.true_bytes = true_rows * row_width;
    node.partitions = partitions;
    std::vector<double> child_rows, child_bytes;
    child_rows.reserve(node.children.size());
    child_bytes.reserve(node.children.size());
    for (int c : node.children) {
      child_rows.push_back(scratch_.node(c).est_rows);
      child_bytes.push_back(scratch_.node(c).est_bytes);
    }
    node.local_cost = cost_model_.LocalCost(node, child_rows, child_bytes);
    (void)gid;
    return scratch_.AddNode(std::move(node));
  }

  /// Wraps `input` with an exchange that delivers `prop`.
  /// Returns -1 when the needed exchange rule is disabled.
  int MakeExchange(int input_phys, const PhysProp& prop, int gid,
                   BitVector256* rules_used) {
    const PhysicalNode& child = scratch_.node(input_phys);
    PhysOpKind kind;
    int partitions;
    std::string key;
    switch (prop.kind) {
      case PhysProp::Kind::kHash:
        if (!config_.IsEnabled(rules::kExchangeShuffleImpl)) return -1;
        kind = PhysOpKind::kExchangeShuffle;
        partitions = ChoosePartitions(child.est_bytes);
        key = prop.key;
        rules_used->Set(rules::kExchangeShuffleImpl);
        break;
      case PhysProp::Kind::kBroadcast:
        if (!config_.IsEnabled(rules::kExchangeBroadcastImpl)) return -1;
        kind = PhysOpKind::kExchangeBroadcast;
        partitions = std::max(1, prop.partitions_hint);
        rules_used->Set(rules::kExchangeBroadcastImpl);
        break;
      case PhysProp::Kind::kSingleton:
        if (!config_.IsEnabled(rules::kExchangeGatherImpl)) return -1;
        kind = PhysOpKind::kExchangeGather;
        partitions = 1;
        rules_used->Set(rules::kExchangeGatherImpl);
        break;
      default:
        return -1;
    }
    PhysicalNode node;
    node.kind = kind;
    node.children = {input_phys};
    node.schema = child.schema;
    node.exchange_key = key;
    node.est_rows = child.est_rows;
    node.est_bytes = child.est_bytes;
    node.true_rows = child.true_rows;
    node.true_bytes = child.true_bytes;
    node.partitions = partitions;
    node.local_cost = cost_model_.LocalCost(node, {child.est_rows},
                                            {child.est_bytes});
    (void)gid;
    return scratch_.AddNode(std::move(node));
  }

  void AddEnforcer(int gid, const Winner& any, const PhysProp& required,
                   Winner* best) {
    if (required.SatisfiedBy(any.delivered)) {
      ConsiderCandidate(any, best);
      return;
    }
    Winner w = any;
    int ex = MakeExchange(any.phys, required, gid, &w.rules);
    if (ex < 0) return;
    w.phys = ex;
    w.cost = any.cost + scratch_.node(ex).local_cost;
    w.delivered = required;
    if (required.kind == PhysProp::Kind::kHash) {
      w.delivered.kind = PhysProp::Kind::kHash;
    }
    ConsiderCandidate(w, best);
  }

  void ImplementExpr(int gid, const MExpr& expr, const PhysProp& required,
                     int depth, Winner* best) {
    const Group& group = groups_[gid];
    const double est_rows = group.est.rows;
    const double tru_rows = group.tru.rows;
    const std::shared_ptr<const Schema>& schema = group.schema;
    switch (expr.kind) {
      case LogicalOpKind::kScan: {
        if (!config_.IsEnabled(rules::kScanImpl)) return;
        if (!required.SatisfiedBy(PhysProp::Random())) return;
        // Parallelism follows the bytes the scan *reads* (the full table),
        // not its possibly-filtered output.
        double table_bytes = est_rows * schema->RowWidthBytes();
        auto table_stats = catalog_.Lookup(SymOf(expr.table_sym,
                                                 expr.table_path));
        if (table_stats.ok()) {
          table_bytes = table_stats.value()->est_bytes();
        }
        Winner w;
        w.feasible = true;
        int parts = ChoosePartitions(table_bytes);
        w.phys = MakePhysNode(PhysOpKind::kScan, expr, gid, {}, est_rows,
                              tru_rows, parts, schema);
        w.cost = scratch_.node(w.phys).local_cost;
        w.delivered = PhysProp::Random();
        w.rules = expr.derivation;
        w.rules.Set(rules::kScanImpl);
        if (!expr.predicates.empty()) w.rules.Set(rules::kFilterIntoScan);
        ConsiderCandidate(w, best);
        return;
      }
      case LogicalOpKind::kFilter:
      case LogicalOpKind::kProject: {
        int impl_rule = expr.kind == LogicalOpKind::kFilter
                            ? rules::kFilterImpl
                            : rules::kProjectImpl;
        if (!config_.IsEnabled(impl_rule)) return;
        // Pass the requirement through to the child (broadcast cannot pass).
        PhysProp child_req = required;
        if (required.kind == PhysProp::Kind::kBroadcast) {
          child_req = PhysProp::Any();
        }
        if (expr.kind == LogicalOpKind::kProject &&
            child_req.kind == PhysProp::Kind::kHash) {
          // Translate the key through the projection.
          const SelectItem* source = nullptr;
          for (const SelectItem& item : expr.projections) {
            if (scope::OutputSymOf(item) == child_req.key_sym &&
                item.agg == scope::AggFunc::kNone) {
              source = &item;
            }
          }
          if (source == nullptr || source->column.empty()) {
            child_req = PhysProp::Any();  // fall back to enforcer above
          } else {
            child_req.key = source->column;
            child_req.key_sym = scope::ColumnSymOf(*source);
          }
        }
        Winner child = OptimizeGroup(expr.children[0], child_req, depth + 1);
        if (!child.feasible) return;
        if (!required.SatisfiedBy(child.delivered) &&
            required.kind != PhysProp::Kind::kAny) {
          return;  // enforcer path will handle it
        }
        PhysOpKind kind = expr.kind == LogicalOpKind::kFilter
                              ? PhysOpKind::kFilter
                              : PhysOpKind::kProject;
        Winner w;
        w.feasible = true;
        int parts = scratch_.node(child.phys).partitions;
        w.phys = MakePhysNode(kind, expr, gid, {child.phys}, est_rows,
                              tru_rows, parts, schema);
        w.cost = child.cost + scratch_.node(w.phys).local_cost;
        w.delivered = child.delivered;
        w.rules = child.rules | expr.derivation;
        w.rules.Set(impl_rule);
        ConsiderCandidate(w, best);
        return;
      }
      case LogicalOpKind::kJoin: {
        ImplementJoin(gid, expr, required, depth, best);
        return;
      }
      case LogicalOpKind::kAggregate: {
        ImplementAggregate(gid, expr, required, depth, best);
        return;
      }
      case LogicalOpKind::kUnionAll: {
        if (!config_.IsEnabled(rules::kUnionAllImpl)) return;
        if (!required.SatisfiedBy(PhysProp::Random())) return;
        Winner l = OptimizeGroup(expr.children[0], PhysProp::Any(), depth + 1);
        Winner r = OptimizeGroup(expr.children[1], PhysProp::Any(), depth + 1);
        if (!l.feasible || !r.feasible) return;
        Winner w;
        w.feasible = true;
        int parts = scratch_.node(l.phys).partitions +
                    scratch_.node(r.phys).partitions;
        parts = std::min(parts, 256);
        w.phys = MakePhysNode(PhysOpKind::kUnionAll, expr, gid,
                              {l.phys, r.phys}, est_rows, tru_rows, parts,
                              schema);
        w.cost = l.cost + r.cost + scratch_.node(w.phys).local_cost;
        w.delivered = PhysProp::Random();
        w.rules = l.rules | r.rules | expr.derivation;
        w.rules.Set(rules::kUnionAllImpl);
        ConsiderCandidate(w, best);
        return;
      }
      case LogicalOpKind::kOutput: {
        if (!config_.IsEnabled(rules::kOutputImpl)) return;
        Winner child = OptimizeGroup(expr.children[0], PhysProp::Any(),
                                     depth + 1);
        if (!child.feasible) return;
        Winner w;
        w.feasible = true;
        int parts = scratch_.node(child.phys).partitions;
        w.phys = MakePhysNode(PhysOpKind::kOutput, expr, gid, {child.phys},
                              est_rows, tru_rows, parts, schema);
        w.cost = child.cost + scratch_.node(w.phys).local_cost;
        w.delivered = child.delivered;
        w.rules = child.rules | expr.derivation;
        w.rules.Set(rules::kOutputImpl);
        ConsiderCandidate(w, best);
        return;
      }
    }
  }

  void ImplementJoin(int gid, const MExpr& expr, const PhysProp& required,
                     int depth, Winner* best) {
    const Group& group = groups_[gid];
    const std::shared_ptr<const Schema>& schema = group.schema;
    const double est_rows = group.est.rows;
    const double tru_rows = group.tru.rows;

    Symbol left_key_sym = SymOf(expr.left_key_sym, expr.left_key);
    Symbol right_key_sym = SymOf(expr.right_key_sym, expr.right_key);

    // Hash join: shuffle both sides on the join keys.
    auto shuffled_join = [&](PhysOpKind kind, int impl_rule) {
      if (!config_.IsEnabled(impl_rule)) return;
      Winner l = OptimizeGroup(expr.children[0],
                               PhysProp::Hash(expr.left_key, left_key_sym),
                               depth + 1);
      Winner r = OptimizeGroup(expr.children[1],
                               PhysProp::Hash(expr.right_key, right_key_sym),
                               depth + 1);
      if (!l.feasible || !r.feasible) return;
      PhysProp delivered = PhysProp::Hash(expr.left_key, left_key_sym);
      if (!required.SatisfiedBy(delivered)) return;
      Winner w;
      w.feasible = true;
      int parts = std::max(scratch_.node(l.phys).partitions,
                           scratch_.node(r.phys).partitions);
      w.phys = MakePhysNode(kind, expr, gid, {l.phys, r.phys}, est_rows,
                            tru_rows, parts, schema);
      w.cost = l.cost + r.cost + scratch_.node(w.phys).local_cost;
      w.delivered = delivered;
      w.rules = l.rules | r.rules | expr.derivation;
      w.rules.Set(impl_rule);
      ConsiderCandidate(w, best);
    };
    shuffled_join(PhysOpKind::kHashJoin, rules::kHashJoinImpl);
    shuffled_join(PhysOpKind::kMergeJoin, rules::kMergeJoinImpl);

    // Broadcast join: replicate the (small) right side.
    if (config_.IsEnabled(rules::kBroadcastJoinImpl)) {
      double threshold =
          config_.IsEnabled(rules::kBroadcastJoinAggressive)
              ? options_.broadcast_threshold_aggressive_bytes
              : options_.broadcast_threshold_bytes;
      const Group& right = groups_[expr.children[1]];
      double right_bytes = right.est.rows * right.schema->RowWidthBytes();
      if (right_bytes <= threshold) {
        Winner l = OptimizeGroup(expr.children[0], PhysProp::Any(), depth + 1);
        if (l.feasible) {
          int consumers = scratch_.node(l.phys).partitions;
          Winner r = OptimizeGroup(expr.children[1],
                                   PhysProp::Broadcast(consumers), depth + 1);
          if (r.feasible && required.SatisfiedBy(l.delivered)) {
            Winner w;
            w.feasible = true;
            w.phys = MakePhysNode(PhysOpKind::kBroadcastJoin, expr, gid,
                                  {l.phys, r.phys}, est_rows, tru_rows,
                                  consumers, schema);
            w.cost = l.cost + r.cost + scratch_.node(w.phys).local_cost;
            w.delivered = l.delivered;
            w.rules = l.rules | r.rules | expr.derivation;
            w.rules.Set(rules::kBroadcastJoinImpl);
            if (config_.IsEnabled(rules::kBroadcastJoinAggressive) &&
                right_bytes > options_.broadcast_threshold_bytes) {
              w.rules.Set(rules::kBroadcastJoinAggressive);
            }
            ConsiderCandidate(w, best);
          }
        }
      }
    }
  }

  void ImplementAggregate(int gid, const MExpr& expr, const PhysProp& required,
                          int depth, Winner* best) {
    const Group& group = groups_[gid];
    const std::shared_ptr<const Schema>& schema = group.schema;
    const double est_rows = group.est.rows;
    const double tru_rows = group.tru.rows;

    if (expr.partial_agg) {
      // Local pre-aggregation: no data movement, preserves distribution.
      // Either aggregate implementation can realize the partial phase.
      bool hash_ok = config_.IsEnabled(rules::kHashAggImpl);
      bool stream_ok = config_.IsEnabled(rules::kStreamAggImpl);
      if (!hash_ok && !stream_ok) return;
      Winner child = OptimizeGroup(expr.children[0], PhysProp::Any(),
                                   depth + 1);
      if (!child.feasible) return;
      if (!required.SatisfiedBy(child.delivered)) return;
      Winner w;
      w.feasible = true;
      int parts = scratch_.node(child.phys).partitions;
      w.phys = MakePhysNode(PhysOpKind::kPartialHashAgg, expr, gid,
                            {child.phys}, est_rows, tru_rows, parts, schema);
      w.cost = child.cost + scratch_.node(w.phys).local_cost;
      w.delivered = child.delivered;
      w.rules = child.rules | expr.derivation;
      w.rules.Set(hash_ok ? rules::kHashAggImpl : rules::kStreamAggImpl);
      ConsiderCandidate(w, best);
      return;
    }

    const bool global = expr.group_by.empty();
    Symbol key_sym =
        global ? kSymEmpty
               : (expr.group_by_syms.size() == expr.group_by.size()
                      ? expr.group_by_syms[0]
                      : Sym(expr.group_by[0]));
    PhysProp agg_req = global ? PhysProp::Singleton()
                              : PhysProp::Hash(expr.group_by[0], key_sym);
    PhysProp delivered = global ? PhysProp::Singleton()
                                : PhysProp::Hash(expr.group_by[0], key_sym);

    // Single-phase hash aggregation: shuffle raw rows to the group keys.
    if (config_.IsEnabled(rules::kHashAggImpl) &&
        required.SatisfiedBy(delivered)) {
      Winner child = OptimizeGroup(expr.children[0], agg_req, depth + 1);
      if (child.feasible) {
        Winner w;
        w.feasible = true;
        int parts = scratch_.node(child.phys).partitions;
        w.phys = MakePhysNode(PhysOpKind::kHashAgg, expr, gid, {child.phys},
                              est_rows, tru_rows, parts, schema);
        w.cost = child.cost + scratch_.node(w.phys).local_cost;
        w.delivered = delivered;
        w.rules = child.rules | expr.derivation;
        w.rules.Set(rules::kHashAggImpl);
        ConsiderCandidate(w, best);
      }
    }

    // Stream (sort-based) aggregation.
    if (config_.IsEnabled(rules::kStreamAggImpl) && !global &&
        required.SatisfiedBy(delivered)) {
      Winner child = OptimizeGroup(expr.children[0], agg_req, depth + 1);
      if (child.feasible) {
        Winner w;
        w.feasible = true;
        int parts = scratch_.node(child.phys).partitions;
        w.phys = MakePhysNode(PhysOpKind::kStreamAgg, expr, gid, {child.phys},
                              est_rows, tru_rows, parts, schema);
        w.cost = child.cost + scratch_.node(w.phys).local_cost;
        w.delivered = delivered;
        w.rules = child.rules | expr.derivation;
        w.rules.Set(rules::kStreamAggImpl);
        ConsiderCandidate(w, best);
      }
    }

    // Two-phase aggregation: local partial agg, then shuffle the (smaller)
    // partial results, then final agg.
    if (config_.IsEnabled(rules::kTwoPhaseAggregation) &&
        config_.IsEnabled(rules::kHashAggImpl) &&
        required.SatisfiedBy(delivered)) {
      Winner child = OptimizeGroup(expr.children[0], PhysProp::Any(),
                                   depth + 1);
      if (!child.feasible) return;
      int child_parts = scratch_.node(child.phys).partitions;
      std::vector<Symbol> group_syms = expr.GroupBySymsResolved();
      RelStats partial_est = est_.PartialAggregate(
          groups_[expr.children[0]].est, group_syms, child_parts);
      RelStats partial_tru = tru_.PartialAggregate(
          groups_[expr.children[0]].tru, group_syms, child_parts);
      BitVector256 rules_used = child.rules | expr.derivation;
      rules_used.Set(rules::kTwoPhaseAggregation);
      rules_used.Set(rules::kHashAggImpl);
      int partial = MakePhysNode(PhysOpKind::kPartialHashAgg, expr, gid,
                                 {child.phys}, partial_est.rows,
                                 partial_tru.rows, child_parts, schema);
      PhysProp move_prop = global ? PhysProp::Singleton()
                                  : PhysProp::Hash(expr.group_by[0], key_sym);
      int exchange = MakeExchange(partial, move_prop, gid, &rules_used);
      if (exchange < 0) return;
      int final_parts = scratch_.node(exchange).partitions;
      int final_agg = MakePhysNode(PhysOpKind::kHashAgg, expr, gid,
                                   {exchange}, est_rows, tru_rows, final_parts,
                                   schema);
      Winner w;
      w.feasible = true;
      w.phys = final_agg;
      w.cost = child.cost + scratch_.node(partial).local_cost +
               scratch_.node(exchange).local_cost +
               scratch_.node(final_agg).local_cost;
      w.delivered = delivered;
      w.rules = rules_used;
      ConsiderCandidate(w, best);
    }
  }

  // ----- Winner extraction --------------------------------------------------

  /// Copies the reachable subgraph into `out`, returning the total estimated
  /// cost of the final plan.
  double Compact(const std::vector<int>& root_phys, PhysicalPlan* out) {
    std::unordered_map<int, int> remap;
    double total = 0.0;
    std::function<int(int)> copy = [&](int id) -> int {
      auto it = remap.find(id);
      if (it != remap.end()) return it->second;
      // Steal, don't copy: remap guarantees one visit per scratch node, and
      // the scratch arena dies with this MemoOptimizer.
      PhysicalNode node = std::move(scratch_.node(id));
      std::vector<int> new_children;
      new_children.reserve(node.children.size());
      for (int c : node.children) new_children.push_back(copy(c));
      node.children = std::move(new_children);
      total += node.local_cost;
      int nid = out->AddNode(std::move(node));
      remap[id] = nid;
      return nid;
    };
    for (int r : root_phys) out->roots.push_back(copy(r));
    return total;
  }

  const scope::Catalog& catalog_;
  OptimizerOptions options_;
  RuleConfig config_;
  StatsDeriver est_;
  StatsDeriver tru_;
  CostModel cost_model_;
  /// deque: MakeGroup during exploration never moves existing groups, so
  /// Group/Schema references held across recursive OptimizeGroup calls stay
  /// valid (a growing vector would invalidate them mid-implementation).
  std::deque<Group> groups_;
  PhysicalPlan scratch_;
  std::unordered_map<Symbol, Schema> scan_schema_;
};

}  // namespace

Optimizer::Optimizer(const scope::Catalog& catalog, OptimizerOptions options)
    : catalog_(catalog), options_(options) {}

Result<CompilationOutput> Optimizer::Optimize(const scope::LogicalPlan& plan,
                                              const RuleConfig& config) const {
  return OptimizeTracked(plan, config, nullptr, nullptr, nullptr);
}

Result<CompilationOutput> Optimizer::OptimizeTracked(
    const scope::LogicalPlan& plan, const RuleConfig& config,
    BitVector256* norm_consulted, BitVector256* post_consulted,
    std::shared_ptr<const NormalizedPlan>* normalized_out) const {
  MemoOptimizer memo(catalog_, options_, config);
  return memo.Run(plan, norm_consulted, post_consulted, normalized_out);
}

Result<CompilationOutput> Optimizer::OptimizeFromNormalized(
    const NormalizedPlan& normalized, const RuleConfig& config,
    BitVector256* post_consulted) const {
  MemoOptimizer memo(catalog_, options_, config);
  return memo.RunPostNormalize(normalized, post_consulted);
}

}  // namespace qo::opt

#include "optimizer/physical_plan.h"

#include <functional>
#include <utility>

namespace qo::opt {

ExecProfileSlot& ExecProfileSlot::operator=(const ExecProfileSlot& o) {
  // Copy-assignment replaces the plan, so the profile is stale: reset.
  if (this != &o) {
    std::lock_guard<std::mutex> lock(mu_);
    value_.reset();
  }
  return *this;
}

ExecProfileSlot& ExecProfileSlot::operator=(ExecProfileSlot&& o) noexcept {
  if (this != &o) {
    Ptr moved = o.Take();
    std::lock_guard<std::mutex> lock(mu_);
    value_ = std::move(moved);
  }
  return *this;
}

ExecProfileSlot::~ExecProfileSlot() = default;

ExecProfileSlot::Ptr ExecProfileSlot::Load() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}

ExecProfileSlot::Ptr ExecProfileSlot::TryStore(Ptr p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (value_ == nullptr) value_ = std::move(p);
  return value_;
}

ExecProfileSlot::Ptr ExecProfileSlot::Take() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(value_);
}

const char* PhysOpKindToString(PhysOpKind k) {
  switch (k) {
    case PhysOpKind::kScan:
      return "Scan";
    case PhysOpKind::kFilter:
      return "Filter";
    case PhysOpKind::kProject:
      return "Project";
    case PhysOpKind::kHashJoin:
      return "HashJoin";
    case PhysOpKind::kBroadcastJoin:
      return "BroadcastJoin";
    case PhysOpKind::kMergeJoin:
      return "MergeJoin";
    case PhysOpKind::kHashAgg:
      return "HashAgg";
    case PhysOpKind::kPartialHashAgg:
      return "PartialHashAgg";
    case PhysOpKind::kStreamAgg:
      return "StreamAgg";
    case PhysOpKind::kUnionAll:
      return "UnionAll";
    case PhysOpKind::kOutput:
      return "Output";
    case PhysOpKind::kExchangeShuffle:
      return "ExchangeShuffle";
    case PhysOpKind::kExchangeBroadcast:
      return "ExchangeBroadcast";
    case PhysOpKind::kExchangeGather:
      return "ExchangeGather";
  }
  return "Unknown";
}

bool IsExchange(PhysOpKind k) {
  return k == PhysOpKind::kExchangeShuffle ||
         k == PhysOpKind::kExchangeBroadcast ||
         k == PhysOpKind::kExchangeGather;
}

double PhysicalPlan::TotalEstimatedCost() const {
  double total = 0.0;
  for (const auto& n : nodes) total += n.local_cost;
  return total;
}

int PhysicalPlan::ExchangeCount() const {
  int count = 0;
  for (const auto& n : nodes) {
    if (IsExchange(n.kind)) ++count;
  }
  return count;
}

std::string PhysicalPlan::ToString() const {
  std::string out;
  std::function<void(int, int)> dump = [&](int id, int depth) {
    const PhysicalNode& n = nodes[id];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += PhysOpKindToString(n.kind);
    out += '#';
    out += std::to_string(n.id);
    if (n.kind == PhysOpKind::kScan) {
      out += ' ';
      out += n.table_path;
    }
    if (n.kind == PhysOpKind::kExchangeShuffle) {
      out += " by ";
      out += n.exchange_key;
    }
    if (n.kind == PhysOpKind::kHashJoin || n.kind == PhysOpKind::kMergeJoin ||
        n.kind == PhysOpKind::kBroadcastJoin) {
      out += " on ";
      out += n.left_key;
      out += "==";
      out += n.right_key;
    }
    out += " [rows=";
    out += std::to_string(static_cast<long long>(n.est_rows));
    out += " P=";
    out += std::to_string(n.partitions);
    out += "]\n";
    for (int c : n.children) dump(c, depth + 1);
  };
  for (int r : roots) dump(r, 0);
  return out;
}

}  // namespace qo::opt

// Physical (distributed) plans produced by the optimizer and consumed by the
// execution simulator.
#ifndef QO_OPTIMIZER_PHYSICAL_PLAN_H_
#define QO_OPTIMIZER_PHYSICAL_PLAN_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "scope/ast.h"
#include "scope/types.h"

namespace qo::exec {
struct ExecutionProfile;  // exec/cluster.h; kept opaque to avoid a cycle
}  // namespace qo::exec

namespace qo::opt {

/// Physical operator kinds. Exchange operators are the stage boundaries of
/// the distributed plan — every exchange moves bytes across the network and
/// splits the plan into vertices.
enum class PhysOpKind {
  kScan,
  kFilter,
  kProject,
  kHashJoin,
  kBroadcastJoin,  ///< right child is broadcast to every left partition
  kMergeJoin,      ///< sorts both sides before merging
  kHashAgg,
  kPartialHashAgg,  ///< local pre-aggregation (two-phase agg, eager agg)
  kStreamAgg,
  kUnionAll,
  kOutput,
  kExchangeShuffle,    ///< hash repartition on `exchange_key`
  kExchangeBroadcast,  ///< replicate input to consumer partitions
  kExchangeGather,     ///< merge to a single partition
};

const char* PhysOpKindToString(PhysOpKind k);

/// True if the operator is an exchange (stage boundary).
bool IsExchange(PhysOpKind k);

/// One physical operator. Cardinality annotations:
///  - `est_rows` / `est_bytes`: what the optimizer believed at compile time
///    (drives cost and the partition count choice).
///  - `true_rows` / `true_bytes`: filled in by the execution simulator's
///    ground-truth statistics pass. Partition counts stay as compiled, so
///    estimation errors propagate into real resource usage — as in SCOPE.
struct PhysicalNode {
  int id = -1;
  PhysOpKind kind = PhysOpKind::kScan;
  std::vector<int> children;
  /// Output schema, shared with the memo group that produced this node.
  /// Immutable once built: the optimizer creates one Schema per memo group
  /// and every physical candidate (often hundreds per group across rule
  /// configs) holds a reference instead of a deep column-vector copy. May be
  /// null for hand-assembled nodes in tests; consumers that read it must
  /// tolerate null (an absent schema means width 0).
  std::shared_ptr<const scope::Schema> schema;

  // Payload (meaningful per kind).
  std::string table_path;
  std::vector<scope::Predicate> predicates;
  std::vector<scope::SelectItem> projections;
  std::vector<std::string> group_by;
  std::string left_key;
  std::string right_key;
  double true_fanout = 1.0;  ///< ground-truth join fanout (simulator only)
  std::string output_path;
  std::string exchange_key;

  // Compile-time annotations.
  double est_rows = 0.0;
  double est_bytes = 0.0;
  int partitions = 1;
  double local_cost = 0.0;  ///< estimated cost of this operator alone

  // Ground-truth annotations (set by qo::exec during simulation).
  double true_rows = 0.0;
  double true_bytes = 0.0;
};

/// A full physical plan (DAG; one root per OUTPUT statement).
struct PhysicalPlan {
  std::vector<PhysicalNode> nodes;
  std::vector<int> roots;

  /// Takes the node by rvalue: PhysicalNode is string/vector-heavy and
  /// AddNode runs once per candidate the search ever considers, so the
  /// by-value extra move was measurable.
  int AddNode(PhysicalNode&& node) {
    node.id = static_cast<int>(nodes.size());
    nodes.push_back(std::move(node));
    return nodes.back().id;
  }

  const PhysicalNode& node(int id) const { return nodes[id]; }
  PhysicalNode& node(int id) { return nodes[id]; }
  size_t size() const { return nodes.size(); }

  /// Total estimated cost (sum of local costs; the scalar SCOPE reports).
  double TotalEstimatedCost() const;

  /// Number of exchange operators (distributed stage boundaries).
  int ExchangeCount() const;

  /// Indented multi-line dump for debugging and golden tests.
  std::string ToString() const;
};

/// Thread-safe lazy slot holding the execution simulator's prepared profile
/// for a plan (exec::ExecutionProfile, opaque here). It lives on the shared,
/// otherwise-immutable CompilationOutput so that every consumer of a cached
/// compilation — flighting's A/A and A/B arms, the experiment eval loops,
/// recommendation — amortizes one stage decomposition across all runs.
///
/// Concurrency: Load/TryStore are internally synchronized; racing prepares
/// are benign (first store wins, and Prepare is deterministic, so the loser
/// computed the same profile). Copying a CompilationOutput resets the slot —
/// a copy may be executed under a different cluster config — while moving
/// transfers it.
class ExecProfileSlot {
 public:
  using Ptr = std::shared_ptr<const exec::ExecutionProfile>;

  ExecProfileSlot() = default;
  ExecProfileSlot(const ExecProfileSlot&) {}
  ExecProfileSlot(ExecProfileSlot&& o) noexcept : value_(o.Take()) {}
  ExecProfileSlot& operator=(const ExecProfileSlot& o);
  ExecProfileSlot& operator=(ExecProfileSlot&& o) noexcept;
  ~ExecProfileSlot();

  /// The stored profile, or null when none has been prepared yet.
  Ptr Load() const;

  /// Stores `p` if the slot is empty and returns the slot's content
  /// afterwards (the winning profile under concurrent prepares).
  Ptr TryStore(Ptr p) const;

 private:
  Ptr Take() noexcept;

  mutable std::mutex mu_;
  mutable Ptr value_;
};

/// Everything the "SCOPE compiler + optimizer" returns for one job: the plan,
/// its total estimated cost, and the rule signature (paper Sec. 2.1).
struct CompilationOutput {
  PhysicalPlan plan;
  double est_cost = 0.0;
  BitVector256 signature;
  /// Lazily-prepared execution profile for `plan` (internally synchronized;
  /// the only mutable part of a shared compilation). See ExecProfileSlot.
  ExecProfileSlot exec_profile;
};

}  // namespace qo::opt

#endif  // QO_OPTIMIZER_PHYSICAL_PLAN_H_

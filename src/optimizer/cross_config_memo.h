// Per-job cross-config optimizer memo (the tentpole of the interned-symbol
// refactor).
//
// The steering pipeline compiles every job under many rule configurations:
// the span fix-point probes batches of flips, the recommender evaluates one
// DefaultWithFlip per span bit, multi-flip search and flighting recompile
// more. Most of those configs differ only in rule bits the optimizer never
// reads for this particular job — a join-rule flip on a join-free job, or a
// flip of one of the ~220 placeholder rule ids that are not wired to any
// behavior. The L2 compilation cache keys on the *full* 256-bit config, so
// each such flip is a miss and a full recompile.
//
// This memo keys on the compile's *footprint* instead: the exact set of rule
// bits the optimizer consulted (RuleConfig::TrackConsulted) and their values.
// A compilation is a pure function of (front-end plan, catalog, optimizer
// options, values of consulted bits) — the first three are fixed by the
// front-end cache entry this memo hangs off — so any config that agrees on
// every consulted bit provably produces byte-identical output.
//
// Two tiers:
//  - Full tier: footprint of the whole compile -> CompilationOutput (or the
//    deterministic compile error). Serves flips of rules this job never
//    consults.
//  - Normalized tier: footprint of validate+normalize only -> the normalized
//    logical plan. Normalization consults only the rewrite-rule bits, so
//    flips of exploration/implementation rules reuse the normalized plan and
//    rerun just the cost-based search.
//
// Entries are compared by linear scan under a mutex: per job the number of
// distinct footprints is tiny (one per consulted-bit combination actually
// exercised), and a scan over <= ~100 32-byte masks is cheaper than
// maintaining an index. Capacity is bounded by dropping new inserts when
// full; since every entry is provably equal to a fresh compile, eviction
// policy can change hit *counts* but never output bytes.
//
// Env knob: QO_CROSS_CONFIG_MEMO=0 disables the memo (byte-identity leg in
// CI compiles everything the slow way and diffs the figures).
#ifndef QO_OPTIMIZER_CROSS_CONFIG_MEMO_H_
#define QO_OPTIMIZER_CROSS_CONFIG_MEMO_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "optimizer/optimizer.h"

namespace qo::opt {

struct CrossConfigMemoOptions {
  bool enabled = true;

  /// Reads QO_CROSS_CONFIG_MEMO (set to "0" to disable); unset keeps the
  /// default.
  static CrossConfigMemoOptions FromEnv();
};

/// Thread-safe two-tier footprint memo. One instance per cached front-end
/// entry (same lifetime as the logical plan it describes).
class CrossConfigMemo {
 public:
  /// Full-tier probe: if some stored compile's footprint agrees with
  /// `config`, stores its result into `status` / `output` and returns true.
  /// The output is shared, not copied — entries hold the same immutable
  /// CompilationOutput the compilation cache serves.
  bool FindFull(const BitVector256& config, Status* status,
                std::shared_ptr<const CompilationOutput>* output) const;

  /// Normalized-tier probe: returns the stored normalized plan whose
  /// validate+normalize footprint agrees with `config`, or null. On a hit,
  /// `norm_consulted` (if non-null) receives the matched entry's footprint —
  /// callers union it with the post-search footprint to insert a full-tier
  /// entry for the finished compile.
  std::shared_ptr<const NormalizedPlan> FindNorm(
      const BitVector256& config, BitVector256* norm_consulted) const;

  /// Records a full compile: `consulted` is every bit the compile read,
  /// `config` the configuration it ran under, `output` the shared immutable
  /// result (null for a failed compile — the error replays from `status`).
  /// No-op when at capacity or a matching footprint is already stored.
  /// Refcount-only: inserting never deep-copies the output.
  void InsertFull(const BitVector256& consulted, const BitVector256& config,
                  const Status& status,
                  std::shared_ptr<const CompilationOutput> output);

  /// Records a validate+normalize result the same way.
  void InsertNorm(const BitVector256& consulted, const BitVector256& config,
                  std::shared_ptr<const NormalizedPlan> plan);

 private:
  struct FullEntry {
    BitVector256 consulted;
    BitVector256 values;  ///< config bits at the consulted positions
    Status status;
    /// Shared with the compilation cache; null when !status.ok().
    std::shared_ptr<const CompilationOutput> output;
  };
  struct NormEntry {
    BitVector256 consulted;
    BitVector256 values;
    std::shared_ptr<const NormalizedPlan> plan;
  };

  // Bounds sized for one job's sweep: the span fix-point plus a 256-flip
  // recommender pass produce well under 96 distinct full footprints, and
  // normalization reads ~10 bits so its footprint count stays single-digit.
  static constexpr size_t kMaxFullEntries = 96;
  static constexpr size_t kMaxNormEntries = 16;

  mutable std::mutex mu_;
  std::vector<FullEntry> full_;
  std::vector<NormEntry> norm_;
};

}  // namespace qo::opt

#endif  // QO_OPTIMIZER_CROSS_CONFIG_MEMO_H_

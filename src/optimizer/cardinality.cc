#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/kernels/kernels.h"

namespace qo::opt {

namespace {

double CapNdv(double ndv, double rows) {
  return std::max(1.0, std::min(ndv, rows));
}

/// Bulk CapNdv over a whole NDV column: x = max(1.0, min(x, rows)) per
/// entry, through the dispatched clamp kernel. NDVs and row counts are
/// finite by construction (the kernel's NaN-free precondition).
void CapNdvAll(NdvMap* ndv, double rows) {
  kernels::Active().clamp_range(ndv->MutableValues(), ndv->size(), 1.0, rows);
}

}  // namespace

RelStats StatsDeriver::Scan(Symbol table_path,
                            const scope::Schema& schema) const {
  RelStats out;
  auto stats = catalog_.Lookup(table_path);
  if (!stats.ok()) {
    // Unregistered input: assume a small table so compilation can proceed.
    out.rows = 1000.0;
    for (const auto& col : schema.columns) {
      out.ndv[SymOf(col.sym, col.name)] = 100.0;
    }
    return out;
  }
  const scope::TableStats& t = *stats.value();
  out.rows = mode_ == StatsMode::kTrue ? t.true_rows : t.est_rows;
  for (const auto& col : schema.columns) {
    Symbol col_sym = SymOf(col.sym, col.name);
    const scope::ColumnStats& cs = catalog_.LookupColumn(table_path, col_sym);
    double ndv = mode_ == StatsMode::kTrue ? cs.true_ndv : cs.est_ndv;
    out.ndv[col_sym] = CapNdv(ndv, out.rows);
  }
  return out;
}

double StatsDeriver::PredicateSelectivity(const scope::Predicate& pred,
                                          const RelStats& input) const {
  if (mode_ == StatsMode::kTrue && pred.true_selectivity >= 0.0) {
    return pred.true_selectivity;
  }
  // Textbook heuristics (System R defaults), using the mode's NDV.
  double ndv = std::max(1.0, input.NdvOf(scope::ColumnSymOf(pred)));
  switch (pred.op) {
    case scope::CompareOp::kEq:
      return 1.0 / ndv;
    case scope::CompareOp::kNe:
      return 1.0 - 1.0 / ndv;
    case scope::CompareOp::kLt:
    case scope::CompareOp::kLe:
    case scope::CompareOp::kGt:
    case scope::CompareOp::kGe:
      return 1.0 / 3.0;
  }
  return 0.5;
}

RelStats StatsDeriver::Filter(
    const RelStats& input,
    const std::vector<scope::Predicate>& predicates) const {
  RelStats out = input;
  double sel = 1.0;
  for (const auto& pred : predicates) {
    sel *= PredicateSelectivity(pred, input);
  }
  out.rows = std::max(0.0, input.rows * sel);
  CapNdvAll(&out.ndv, out.rows);
  return out;
}

RelStats StatsDeriver::Project(
    const RelStats& input,
    const std::vector<scope::SelectItem>& projections) const {
  RelStats out;
  out.rows = input.rows;
  for (const auto& item : projections) {
    Symbol col_sym = scope::ColumnSymOf(item);
    if (col_sym == kSymStar) {
      out.ndv = input.ndv;
      continue;
    }
    out.ndv[scope::OutputSymOf(item)] = input.NdvOf(col_sym);
  }
  return out;
}

RelStats StatsDeriver::Join(const RelStats& left, const RelStats& right,
                            Symbol left_key, Symbol right_key,
                            double true_fanout) const {
  RelStats out;
  if (mode_ == StatsMode::kTrue) {
    // Ground truth: FK-style fanout per left row.
    out.rows = left.rows * true_fanout;
  } else {
    // Classic equi-join estimate: |L||R| / max(ndv_l, ndv_r).
    double ndv_l = std::max(1.0, left.NdvOf(left_key));
    double ndv_r = std::max(1.0, right.NdvOf(right_key));
    out.rows = left.rows * right.rows / std::max(ndv_l, ndv_r);
  }
  out.rows = std::max(0.0, out.rows);
  // Sorted two-pointer merge of the key columns (left wins on a shared
  // column, as the insert-then-skip loop this replaces did), then one bulk
  // cap over the merged value column.
  const std::vector<Symbol>& lk = left.ndv.keys();
  const std::vector<double>& lv = left.ndv.values();
  const std::vector<Symbol>& rk = right.ndv.keys();
  const std::vector<double>& rv = right.ndv.values();
  out.ndv.Reserve(lk.size() + rk.size());
  size_t i = 0, j = 0;
  while (i < lk.size() && j < rk.size()) {
    if (lk[i] < rk[j]) {
      out.ndv.AppendSorted(lk[i], lv[i]);
      ++i;
    } else if (rk[j] < lk[i]) {
      out.ndv.AppendSorted(rk[j], rv[j]);
      ++j;
    } else {
      out.ndv.AppendSorted(lk[i], lv[i]);
      ++i;
      ++j;
    }
  }
  for (; i < lk.size(); ++i) out.ndv.AppendSorted(lk[i], lv[i]);
  for (; j < rk.size(); ++j) out.ndv.AppendSorted(rk[j], rv[j]);
  CapNdvAll(&out.ndv, out.rows);
  return out;
}

RelStats StatsDeriver::Aggregate(
    const RelStats& input, const std::vector<Symbol>& group_by,
    const std::vector<scope::SelectItem>& aggs) const {
  RelStats out;
  if (group_by.empty()) {
    out.rows = input.rows > 0 ? 1.0 : 0.0;
  } else {
    double groups = 1.0;
    for (Symbol g : group_by) {
      groups *= std::max(1.0, input.NdvOf(g));
    }
    // Damped product: full independence over-counts combined NDVs badly.
    groups = std::pow(groups, mode_ == StatsMode::kEstimated ? 1.0 : 0.9);
    out.rows = std::min(groups, input.rows);
  }
  for (Symbol g : group_by) {
    out.ndv[g] = CapNdv(input.NdvOf(g), out.rows);
  }
  for (const auto& item : aggs) {
    out.ndv[scope::OutputSymOf(item)] = out.rows;
  }
  return out;
}

RelStats StatsDeriver::PartialAggregate(const RelStats& input,
                                        const std::vector<Symbol>& group_by,
                                        int partitions) const {
  RelStats out = input;
  double groups = 1.0;
  for (Symbol g : group_by) {
    groups *= std::max(1.0, input.NdvOf(g));
  }
  groups = std::min(groups, input.rows);
  out.rows = std::min(input.rows, groups * std::max(1, partitions));
  CapNdvAll(&out.ndv, out.rows);
  return out;
}

RelStats StatsDeriver::UnionAll(const RelStats& left,
                                const RelStats& right) const {
  RelStats out;
  out.rows = left.rows + right.rows;
  // Output keys are exactly the left keys (sorted): probe the right column
  // with a forward-only pointer instead of a binary search per key, falling
  // back to right.rows for absent columns (the NdvOf default).
  const std::vector<Symbol>& lk = left.ndv.keys();
  const std::vector<double>& lv = left.ndv.values();
  const std::vector<Symbol>& rk = right.ndv.keys();
  const std::vector<double>& rv = right.ndv.values();
  out.ndv.Reserve(lk.size());
  size_t j = 0;
  for (size_t i = 0; i < lk.size(); ++i) {
    while (j < rk.size() && rk[j] < lk[i]) ++j;
    const double right_ndv =
        j < rk.size() && rk[j] == lk[i] ? rv[j] : right.rows;
    out.ndv.AppendSorted(lk[i], lv[i] + right_ndv);
  }
  CapNdvAll(&out.ndv, out.rows);
  return out;
}

}  // namespace qo::opt

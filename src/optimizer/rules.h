// The optimizer rule registry and rule configurations.
//
// Mirrors the SCOPE rule machinery the paper steers (Sec. 2.1): 256 rules in
// four categories — required (must always be enabled), on-by-default,
// off-by-default, and implementation (logical -> physical mapping). A *rule
// configuration* is a 256-bit vector of enabled rules; a *rule signature* is
// the bit vector of rules that directly contributed to the final plan.
#ifndef QO_OPTIMIZER_RULES_H_
#define QO_OPTIMIZER_RULES_H_

#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"

namespace qo::opt {

/// SCOPE rule categories (paper Sec. 2.1).
enum class RuleCategory {
  kRequired,        ///< must always be enabled to get valid plans
  kOnByDefault,     ///< cost-based / rewrite rules enabled by default
  kOffByDefault,    ///< experimental or estimate-sensitive rules
  kImplementation,  ///< map logical operators to physical ones
};

const char* RuleCategoryToString(RuleCategory c);

/// Stable rule identifiers. The id is the bit position in signatures,
/// configurations and spans. Ranges:
///   [0, 40)    required
///   [40, 160)  on-by-default
///   [160, 200) off-by-default
///   [200, 256) implementation
///
/// Only a subset of ids corresponds to behavioral rules wired into this
/// optimizer; the remaining ids are registered placeholders (real optimizers
/// carry many rules that rarely fire — the paper reports an average job span
/// of only ~10 out of 256).
namespace rules {

// --- Required normalization (fire on every job). ---
inline constexpr int kNormalizeScript = 0;
inline constexpr int kBindReferences = 1;
inline constexpr int kDerivePlanProperties = 2;
inline constexpr int kValidateSchema = 3;

// --- On-by-default rewrites / explorations. ---
inline constexpr int kFilterPushdownBelowProject = 40;
inline constexpr int kFilterPushdownIntoJoinLeft = 41;
inline constexpr int kFilterPushdownIntoJoinRight = 42;
inline constexpr int kFilterPushdownBelowUnion = 43;
inline constexpr int kFilterIntoScan = 44;
inline constexpr int kFilterMerge = 45;
inline constexpr int kProjectPruneBelowJoin = 46;
inline constexpr int kProjectPruneBelowAgg = 47;
inline constexpr int kProjectMerge = 48;
inline constexpr int kJoinCommute = 49;
inline constexpr int kTwoPhaseAggregation = 50;

// --- Off-by-default explorations (estimate-sensitive). ---
inline constexpr int kEagerAggregationLeft = 160;
inline constexpr int kEagerAggregationRight = 161;
inline constexpr int kJoinAssociativity = 162;
inline constexpr int kPushJoinThroughUnion = 163;
inline constexpr int kBroadcastJoinAggressive = 164;

// --- Implementation rules. ---
inline constexpr int kScanImpl = 200;
inline constexpr int kFilterImpl = 201;
inline constexpr int kProjectImpl = 202;
inline constexpr int kHashJoinImpl = 203;
inline constexpr int kBroadcastJoinImpl = 204;
inline constexpr int kMergeJoinImpl = 205;
inline constexpr int kHashAggImpl = 206;
inline constexpr int kStreamAggImpl = 207;
inline constexpr int kUnionAllImpl = 208;
inline constexpr int kOutputImpl = 209;
inline constexpr int kExchangeShuffleImpl = 210;
inline constexpr int kExchangeBroadcastImpl = 211;
inline constexpr int kExchangeGatherImpl = 212;

}  // namespace rules

/// Metadata for one registered rule.
struct RuleInfo {
  int id = 0;
  std::string name;
  RuleCategory category = RuleCategory::kOnByDefault;
};

/// The global registry of all 256 rules.
class RuleRegistry {
 public:
  /// Returns the process-wide registry (immutable after construction).
  static const RuleRegistry& Get();

  static constexpr int kNumRules = BitVector256::kBits;

  const RuleInfo& info(int id) const { return rules_[id]; }
  RuleCategory category(int id) const { return rules_[id].category; }
  const std::string& name(int id) const { return rules_[id].name; }

  /// All rule ids of the given category.
  const std::vector<int>& ByCategory(RuleCategory c) const;

  /// Bit mask of rules in the given category.
  const BitVector256& CategoryMask(RuleCategory c) const;

 private:
  RuleRegistry();
  std::vector<RuleInfo> rules_;
  std::vector<int> required_, on_default_, off_default_, implementation_;
  BitVector256 required_mask_, on_default_mask_, off_default_mask_,
      implementation_mask_;
};

/// An optimizer rule configuration: the set of enabled rules for one
/// compilation. QO-Advisor only ever produces configurations at edit
/// distance 1 from the default (paper Sec. 2.4, "single rule flip").
class RuleConfig {
 public:
  /// The default SCOPE configuration: required + on-by-default +
  /// implementation enabled, off-by-default disabled.
  static RuleConfig Default();

  /// Default configuration with one rule flipped. `rule_id` in [0, 256).
  static RuleConfig DefaultWithFlip(int rule_id);

  /// Copies carry the rule bits but never the consulted sink: a tracked
  /// config copied into another scope must not keep writing into a sink it
  /// does not own (the sink may not outlive the copy).
  RuleConfig(const RuleConfig& o) : bits_(o.bits_) {}
  RuleConfig& operator=(const RuleConfig& o) {
    bits_ = o.bits_;
    consulted_ = nullptr;
    return *this;
  }

  bool IsEnabled(int rule_id) const {
    if (consulted_ != nullptr) consulted_->Set(rule_id);
    return bits_.Test(rule_id);
  }
  void Enable(int rule_id) { bits_.Set(rule_id); }
  void Disable(int rule_id) { bits_.Clear(rule_id); }
  void Flip(int rule_id) { bits_.Flip(rule_id); }

  /// Routes every subsequent rule-bit probe into `sink` (or stops recording
  /// when null). The consulted set is the compile's *footprint*: two configs
  /// that agree on every consulted bit provably produce the same output,
  /// which is what the cross-config memo keys on.
  void TrackConsulted(BitVector256* sink) { consulted_ = sink; }

  const BitVector256& bits() const { return bits_; }

  /// Rules where this config differs from the default.
  std::vector<int> DiffFromDefault() const;

  /// Error if any required rule is disabled (such configurations can never
  /// produce valid plans; the optimizer rejects them upfront).
  Status Validate() const;

  bool operator==(const RuleConfig& o) const { return bits_ == o.bits_; }

 private:
  explicit RuleConfig(BitVector256 bits) : bits_(bits) {}
  BitVector256 bits_;
  /// Not owned; never compared or copied *into* keys — excluded from ==.
  BitVector256* consulted_ = nullptr;
};

}  // namespace qo::opt

#endif  // QO_OPTIMIZER_RULES_H_

// The optimizer's cost model: per-operator estimated costs from estimated
// cardinalities and partition counts.
//
// Like SCOPE's, this cost model is "a combination of data statistics and
// other heuristics tuned over the years" (paper Sec. 2.1) — i.e., it is a
// *useful but imperfect* signal. Its constants deliberately differ from the
// execution simulator's ground-truth timing model.
#ifndef QO_OPTIMIZER_COST_MODEL_H_
#define QO_OPTIMIZER_COST_MODEL_H_

#include "optimizer/physical_plan.h"

namespace qo::opt {

/// Tunable cost constants (estimated seconds per row / per byte).
struct CostParams {
  double scan_byte = 1.0e-8;       ///< storage read throughput
  double scan_row = 2.0e-8;        ///< extraction CPU per row
  double filter_row = 1.0e-8;
  double project_row = 6.0e-9;
  double hash_build_row = 4.0e-8;
  double hash_probe_row = 2.0e-8;
  double sort_row_log = 6.0e-9;    ///< per row per log2(rows)
  double merge_row = 1.2e-8;
  double agg_row = 3.0e-8;
  double agg_group = 1.0e-8;
  double union_row = 2.0e-9;
  double output_byte = 1.5e-8;
  double shuffle_byte = 2.0e-8;    ///< network + ser/de per shuffled byte
  double broadcast_byte = 2.0e-8;  ///< per byte per consumer partition
  double partition_overhead = 0.05;  ///< fixed startup cost per partition
};

/// Computes per-operator local costs.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams params) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Estimated local cost of `node`. `child_rows` / `child_bytes` are the
  /// estimated output sizes of the children in order (empty for leaves).
  double LocalCost(const PhysicalNode& node,
                   const std::vector<double>& child_rows,
                   const std::vector<double>& child_bytes) const;

 private:
  CostParams params_;
};

/// Partition count selection from estimated bytes: one partition per
/// `bytes_per_partition` of input, clamped to [1, max_partitions]. This is
/// the compile-time parallelism decision; estimation errors therefore
/// propagate to real execution (as in SCOPE).
int ChoosePartitions(double est_bytes, double bytes_per_partition = 256.0e6,
                     int max_partitions = 500);

}  // namespace qo::opt

#endif  // QO_OPTIMIZER_COST_MODEL_H_

// The cascades-style SCOPE query optimizer.
//
// Compilation pipeline:
//   1. validate the rule configuration (required rules must be enabled),
//   2. normalization: destructive rewrites on the logical DAG (filter
//      pushdown family, project pruning/merging) gated by their rule bits,
//   3. memo-based top-down exploration (join commute/associativity, eager
//      aggregation, join-through-union) and implementation (hash/broadcast/
//      merge joins, one/two-phase aggregation, exchange enforcers) under a
//      per-group expression budget,
//   4. winner extraction into a PhysicalPlan plus the *rule signature* — the
//      set of rules that directly contributed to the final plan (Sec. 2.1).
//
// Like SCOPE's optimizer, the search is deliberately not exhaustive (budgets
// and guard heuristics), so flipping a single rule can move the result in
// either direction of estimated cost — the behaviour QO-Advisor steers.
#ifndef QO_OPTIMIZER_OPTIMIZER_H_
#define QO_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "common/status.h"
#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"
#include "optimizer/rules.h"
#include "scope/catalog.h"
#include "scope/logical_plan.h"

namespace qo::opt {

/// Knobs for the optimizer search.
struct OptimizerOptions {
  /// Maximum logical expressions kept per memo group (exploration budget).
  int max_exprs_per_group = 20;
  /// Broadcast join is considered when the build side is estimated below
  /// this many bytes. The default guard is deliberately conservative (as in
  /// production systems, where a mis-broadcast can take down a stage);
  /// kBroadcastJoinAggressive raises it, which is profitable on the many
  /// instances with mid-sized build sides — if the estimates can be trusted.
  double broadcast_threshold_bytes = 24.0e6;
  double broadcast_threshold_aggressive_bytes = 2.0e9;
  CostParams cost_params;
};

/// A validated + normalized logical plan, exported by OptimizeTracked so the
/// cross-config memo can restart other configs after the rewrite phase.
/// Opaque to callers; only meaningful back in OptimizeFromNormalized.
struct NormalizedPlan {
  scope::LogicalPlan plan;
  BitVector256 fired;  ///< normalization rules that changed the plan
};

/// Compiles logical plans into distributed physical plans under a given rule
/// configuration.
class Optimizer {
 public:
  explicit Optimizer(const scope::Catalog& catalog,
                     OptimizerOptions options = {});

  /// Optimizes `plan`; returns the physical plan, its estimated cost and the
  /// rule signature. CompileError when the configuration admits no valid
  /// plan (required rule disabled, or no enabled implementation for some
  /// operator).
  Result<CompilationOutput> Optimize(const scope::LogicalPlan& plan,
                                     const RuleConfig& config) const;

  /// Optimize with cross-config memo instrumentation. Every rule bit the
  /// validate+normalize phase consults is recorded into `norm_consulted`,
  /// every bit the post-normalization search consults into `post_consulted`
  /// (either may be null), and on success `normalized_out` (if non-null)
  /// receives the normalized plan for reuse via OptimizeFromNormalized.
  /// The compilation output is a pure function of (plan, catalog, options,
  /// values of the consulted bits), which is the memo's soundness argument.
  Result<CompilationOutput> OptimizeTracked(
      const scope::LogicalPlan& plan, const RuleConfig& config,
      BitVector256* norm_consulted, BitVector256* post_consulted,
      std::shared_ptr<const NormalizedPlan>* normalized_out) const;

  /// Re-runs only the post-normalization search over a previously exported
  /// NormalizedPlan, recording consulted bits into `post_consulted` (may be
  /// null). Only valid for configs that agree with the exporting config on
  /// every bit it consulted during validate+normalize.
  Result<CompilationOutput> OptimizeFromNormalized(
      const NormalizedPlan& normalized, const RuleConfig& config,
      BitVector256* post_consulted) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  const scope::Catalog& catalog_;
  OptimizerOptions options_;
};

}  // namespace qo::opt

#endif  // QO_OPTIMIZER_OPTIMIZER_H_

// The cascades-style SCOPE query optimizer.
//
// Compilation pipeline:
//   1. validate the rule configuration (required rules must be enabled),
//   2. normalization: destructive rewrites on the logical DAG (filter
//      pushdown family, project pruning/merging) gated by their rule bits,
//   3. memo-based top-down exploration (join commute/associativity, eager
//      aggregation, join-through-union) and implementation (hash/broadcast/
//      merge joins, one/two-phase aggregation, exchange enforcers) under a
//      per-group expression budget,
//   4. winner extraction into a PhysicalPlan plus the *rule signature* — the
//      set of rules that directly contributed to the final plan (Sec. 2.1).
//
// Like SCOPE's optimizer, the search is deliberately not exhaustive (budgets
// and guard heuristics), so flipping a single rule can move the result in
// either direction of estimated cost — the behaviour QO-Advisor steers.
#ifndef QO_OPTIMIZER_OPTIMIZER_H_
#define QO_OPTIMIZER_OPTIMIZER_H_

#include "common/status.h"
#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"
#include "optimizer/rules.h"
#include "scope/catalog.h"
#include "scope/logical_plan.h"

namespace qo::opt {

/// Knobs for the optimizer search.
struct OptimizerOptions {
  /// Maximum logical expressions kept per memo group (exploration budget).
  int max_exprs_per_group = 20;
  /// Broadcast join is considered when the build side is estimated below
  /// this many bytes. The default guard is deliberately conservative (as in
  /// production systems, where a mis-broadcast can take down a stage);
  /// kBroadcastJoinAggressive raises it, which is profitable on the many
  /// instances with mid-sized build sides — if the estimates can be trusted.
  double broadcast_threshold_bytes = 24.0e6;
  double broadcast_threshold_aggressive_bytes = 2.0e9;
  CostParams cost_params;
};

/// Compiles logical plans into distributed physical plans under a given rule
/// configuration.
class Optimizer {
 public:
  explicit Optimizer(const scope::Catalog& catalog,
                     OptimizerOptions options = {});

  /// Optimizes `plan`; returns the physical plan, its estimated cost and the
  /// rule signature. CompileError when the configuration admits no valid
  /// plan (required rule disabled, or no enabled implementation for some
  /// operator).
  Result<CompilationOutput> Optimize(const scope::LogicalPlan& plan,
                                     const RuleConfig& config) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  const scope::Catalog& catalog_;
  OptimizerOptions options_;
};

}  // namespace qo::opt

#endif  // QO_OPTIMIZER_OPTIMIZER_H_

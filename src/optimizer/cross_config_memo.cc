#include "optimizer/cross_config_memo.h"

#include <cstdlib>
#include <cstring>
#include <utility>

namespace qo::opt {

CrossConfigMemoOptions CrossConfigMemoOptions::FromEnv() {
  CrossConfigMemoOptions options;
  const char* enabled = std::getenv("QO_CROSS_CONFIG_MEMO");
  if (enabled != nullptr && std::strcmp(enabled, "0") == 0) {
    options.enabled = false;
  }
  return options;
}

bool CrossConfigMemo::FindFull(
    const BitVector256& config, Status* status,
    std::shared_ptr<const CompilationOutput>* output) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const FullEntry& e : full_) {
    if ((config & e.consulted) == e.values) {
      *status = e.status;
      if (e.status.ok()) *output = e.output;
      return true;
    }
  }
  return false;
}

std::shared_ptr<const NormalizedPlan> CrossConfigMemo::FindNorm(
    const BitVector256& config, BitVector256* norm_consulted) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const NormEntry& e : norm_) {
    if ((config & e.consulted) == e.values) {
      if (norm_consulted != nullptr) *norm_consulted = e.consulted;
      return e.plan;
    }
  }
  return nullptr;
}

void CrossConfigMemo::InsertFull(
    const BitVector256& consulted, const BitVector256& config,
    const Status& status, std::shared_ptr<const CompilationOutput> output) {
  BitVector256 values = config & consulted;
  std::lock_guard<std::mutex> lock(mu_);
  if (full_.size() >= kMaxFullEntries) return;
  for (const FullEntry& e : full_) {
    // An existing entry already covering this config makes the new one
    // redundant (both replay to the same output).
    if ((config & e.consulted) == e.values) return;
  }
  FullEntry e;
  e.consulted = consulted;
  e.values = values;
  e.status = status;
  if (status.ok()) e.output = std::move(output);
  full_.push_back(std::move(e));
}

void CrossConfigMemo::InsertNorm(const BitVector256& consulted,
                                 const BitVector256& config,
                                 std::shared_ptr<const NormalizedPlan> plan) {
  BitVector256 values = config & consulted;
  std::lock_guard<std::mutex> lock(mu_);
  if (norm_.size() >= kMaxNormEntries) return;
  for (const NormEntry& e : norm_) {
    if ((config & e.consulted) == e.values) return;
  }
  NormEntry e;
  e.consulted = consulted;
  e.values = values;
  e.plan = std::move(plan);
  norm_.push_back(std::move(e));
}

}  // namespace qo::opt

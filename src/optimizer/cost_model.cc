#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace qo::opt {

int ChoosePartitions(double est_bytes, double bytes_per_partition,
                     int max_partitions) {
  int p = static_cast<int>(std::ceil(est_bytes / bytes_per_partition));
  return std::clamp(p, 1, max_partitions);
}

double CostModel::LocalCost(const PhysicalNode& node,
                            const std::vector<double>& child_rows,
                            const std::vector<double>& child_bytes) const {
  auto rows_in = [&](size_t i) {
    return i < child_rows.size() ? child_rows[i] : 0.0;
  };
  auto bytes_in = [&](size_t i) {
    return i < child_bytes.size() ? child_bytes[i] : 0.0;
  };
  const double p_overhead =
      params_.partition_overhead * static_cast<double>(node.partitions);
  switch (node.kind) {
    case PhysOpKind::kScan:
      return node.est_bytes * params_.scan_byte +
             node.est_rows * params_.scan_row + p_overhead;
    case PhysOpKind::kFilter:
      return rows_in(0) * params_.filter_row;
    case PhysOpKind::kProject:
      return rows_in(0) * params_.project_row;
    case PhysOpKind::kHashJoin:
      // Child 1 is the build side by convention.
      return rows_in(1) * params_.hash_build_row +
             rows_in(0) * params_.hash_probe_row + p_overhead;
    case PhysOpKind::kBroadcastJoin:
      // Every partition builds a full replica of the broadcast side.
      return rows_in(1) * static_cast<double>(node.partitions) *
                 params_.hash_build_row +
             rows_in(0) * params_.hash_probe_row + p_overhead;
    case PhysOpKind::kMergeJoin: {
      double sort_cost = 0.0;
      for (size_t i = 0; i < 2; ++i) {
        double r = rows_in(i);
        if (r > 1.0) sort_cost += r * std::log2(r) * params_.sort_row_log;
      }
      return sort_cost + (rows_in(0) + rows_in(1)) * params_.merge_row +
             p_overhead;
    }
    case PhysOpKind::kHashAgg:
    case PhysOpKind::kPartialHashAgg:
      return rows_in(0) * params_.agg_row +
             node.est_rows * params_.agg_group + p_overhead;
    case PhysOpKind::kStreamAgg: {
      double r = rows_in(0);
      double sort_cost =
          r > 1.0 ? r * std::log2(r) * params_.sort_row_log : 0.0;
      return sort_cost + r * params_.agg_row * 0.5 + p_overhead;
    }
    case PhysOpKind::kUnionAll:
      return (rows_in(0) + rows_in(1)) * params_.union_row;
    case PhysOpKind::kOutput:
      return node.est_bytes * params_.output_byte + p_overhead;
    case PhysOpKind::kExchangeShuffle:
      return bytes_in(0) * params_.shuffle_byte + p_overhead;
    case PhysOpKind::kExchangeBroadcast:
      // Replicated to every consumer partition.
      return bytes_in(0) * params_.broadcast_byte *
                 static_cast<double>(node.partitions) +
             p_overhead;
    case PhysOpKind::kExchangeGather:
      return bytes_in(0) * params_.shuffle_byte + params_.partition_overhead;
  }
  return 0.0;
}

}  // namespace qo::opt

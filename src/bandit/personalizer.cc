#include "bandit/personalizer.h"

#include <algorithm>

#include "obs/span.h"

namespace qo::bandit {

std::vector<std::shared_ptr<const SparseVector>> CombineActionSet(
    const FeatureVector& context, const std::vector<RankableAction>& actions) {
  std::vector<std::shared_ptr<const SparseVector>> combined;
  combined.reserve(actions.size());
  for (const auto& action : actions) {
    combined.push_back(CombineFeaturesShared(context, action.features));
  }
  return combined;
}

PersonalizerService::PersonalizerService(PersonalizerConfig config)
    : config_(config), model_(config.model), rng_(config.seed) {}

Result<RankResponse> PersonalizerService::Rank(const RankRequest& request,
                                               const CbModel* serving_model) {
  QO_OBS_SPAN("rank");
  if (request.actions.empty()) {
    return Status::InvalidArgument("Rank requires at least one action");
  }
  if (!request.precombined.empty()) {
    if (request.precombined.size() != request.actions.size()) {
      return Status::InvalidArgument(
          "precombined features disagree with action set: " +
          std::to_string(request.precombined.size()) + " vs " +
          std::to_string(request.actions.size()));
    }
    for (const auto& combined : request.precombined) {
      if (combined == nullptr) {
        return Status::InvalidArgument("null precombined feature vector");
      }
    }
  }
  const EventId event{event_syms_.Intern(request.event_id)};
  if (event_index_.count(event) > 0) {
    return Status::InvalidArgument("duplicate event id: " + request.event_id);
  }
  LoggedEvent ev;
  ev.id = event;
  if (!request.precombined.empty()) {
    // Shared combined-feature cache hit: adopt the caller's vectors. The
    // probes and acting arm of one job all log the same shared_ptrs.
    ev.action_features = request.precombined;
    telemetry_.precombined_reused += request.precombined.size();
  } else {
    ev.action_features.reserve(request.actions.size());
    for (const auto& action : request.actions) {
      ev.action_features.push_back(
          CombineFeaturesShared(request.context, action.features));
    }
    telemetry_.combines += request.actions.size();
  }
  const size_t n = request.actions.size();
  size_t chosen;
  double probability;
  if (request.explore_uniform) {
    chosen = rng_.UniformInt(n);
    probability = 1.0 / static_cast<double>(n);
  } else {
    // The serving model may be a frozen snapshot (the advisor service's RCU
    // published model); the learner's own model is the offline default.
    size_t best = BestAction(
        serving_model != nullptr ? *serving_model : model_, ev, &rng_);
    if (rng_.Bernoulli(config_.epsilon)) {
      chosen = rng_.UniformInt(n);
    } else {
      chosen = best;
    }
    double uniform_part = config_.epsilon / static_cast<double>(n);
    probability = chosen == best ? (1.0 - config_.epsilon) + uniform_part
                                 : uniform_part;
  }
  ev.chosen = chosen;
  ev.probability = probability;
  event_index_[event] = log_base_ + log_.size();
  log_.push_back(std::move(ev));
  ++telemetry_.ranks;
  CompactLog();

  RankResponse resp;
  resp.event_id = request.event_id;
  resp.event = event;
  resp.chosen_index = chosen;
  resp.chosen_action_id = request.actions[chosen].action_id;
  resp.probability = probability;
  return resp;
}

size_t PersonalizerService::BestAction(const CbModel& model,
                                       const LoggedEvent& ev,
                                       Rng* rng) const {
  constexpr double kTieTolerance = 1e-9;
  // Score every arm in one vectorized batch, then replay the selection
  // loop over the precomputed scores. The replay draws from `rng` exactly
  // when the sequential loop would have (draws depend only on score
  // comparisons, and batch scores are bit-identical to Score()), so the
  // RNG stream is unchanged.
  const std::vector<double> scores = model.ScoreBatch(ev.action_features);
  size_t best = 0;
  double best_score = -1e300;
  size_t ties = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const double s = scores[i];
    if (s > best_score + kTieTolerance) {
      best_score = s;
      best = i;
      ties = 1;
    } else if (rng != nullptr && s > best_score - kTieTolerance) {
      // Reservoir-sample among near-ties for uniform cold-start ranking.
      ++ties;
      if (rng->UniformInt(ties) == 0) best = i;
    }
  }
  return best;
}

Status PersonalizerService::Reward(const std::string& event_id,
                                   double reward) {
  // Find (not Intern): an id that was never ranked must not grow the table.
  const EventId event{event_syms_.Find(event_id)};
  if (!event.valid()) {
    ++telemetry_.reward_failures;
    return Status::NotFound("unknown event id: " + event_id);
  }
  return Reward(event, reward);
}

Status PersonalizerService::Reward(EventId event, double reward) {
  QO_OBS_SPAN("reward");
  auto it = event_index_.find(event);
  if (it == event_index_.end()) {
    ++telemetry_.reward_failures;
    return Status::NotFound(
        "unknown event id: " +
        (event.valid() ? event_syms_.Resolve(event.value) : "<invalid>"));
  }
  LoggedEvent& ev = log_[it->second - log_base_];
  if (ev.has_reward) {
    ++telemetry_.reward_failures;
    return Status::FailedPrecondition("event already rewarded: " +
                                      event_syms_.Resolve(event.value));
  }
  ev.has_reward = true;
  ev.reward = reward;
  ++rewarded_;
  ++telemetry_.reward_joins;
  // Queue for the next incremental retrain; the features stay shared with
  // the event log (and the Recommender's cache) — no copy.
  pending_.push_back({ev.action_features[ev.chosen], reward, ev.probability});
  if (rewarded_ - rewarded_at_last_train_ >= config_.retrain_interval) {
    Retrain();
  }
  return Status::OK();
}

void PersonalizerService::Retrain() {
  QO_OBS_SPAN("retrain");
  if (!pending_.empty()) {
    model_.Train(pending_);
    telemetry_.examples_trained += pending_.size();
    // clear() keeps the batch buffer's capacity (bounded by the retrain
    // interval) so the next interval fills it without reallocating.
    pending_.clear();
  }
  ++telemetry_.retrains;
  rewarded_at_last_train_ = rewarded_;
  CompactLog();
}

std::vector<LoggedExample> PersonalizerService::TakePendingBatch() {
  std::vector<LoggedExample> batch = std::move(pending_);
  pending_.clear();
  ++telemetry_.retrains;
  telemetry_.examples_trained += batch.size();
  rewarded_at_last_train_ = rewarded_;
  CompactLog();
  return batch;
}

void PersonalizerService::CompactLog() {
  if (config_.retention_window == 0) return;
  // The front of the window is always safe to drop: a rewarded event was
  // captured into pending_ at Reward time (training never rereads the log),
  // and an unrewarded event older than the window has exceeded the
  // reward-join horizon.
  while (log_.size() > config_.retention_window) {
    event_index_.erase(log_.front().id);
    log_.pop_front();
    ++log_base_;
    ++telemetry_.events_compacted;
  }
}

Result<PersonalizerService::OfflineEvaluation>
PersonalizerService::EvaluateOffline() const {
  OfflineEvaluation eval;
  double ips_sum = 0.0;
  double logged_sum = 0.0;
  for (const LoggedEvent& ev : log_) {
    if (!ev.has_reward) continue;
    ++eval.events;
    logged_sum += ev.reward;
    // IPS: reward counts only when the target (greedy) policy agrees with
    // the logged action, re-weighted by the logging propensity.
    if (BestAction(model_, ev, nullptr) == ev.chosen) {
      ips_sum += ev.reward / std::max(ev.probability, 1e-6);
    }
  }
  if (eval.events == 0) {
    return Status::FailedPrecondition("no rewarded events to evaluate");
  }
  eval.logged_average_reward = logged_sum / static_cast<double>(eval.events);
  eval.policy_ips_estimate = ips_sum / static_cast<double>(eval.events);
  return eval;
}

}  // namespace qo::bandit

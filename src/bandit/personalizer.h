// A local stand-in for the Azure Personalizer service (paper Sec. 4.2 /
// Sec. 6 "Do not reinvent the wheel").
//
// Exposes the same contract QO-Advisor depends on:
//  - Rank(context, actions) -> (chosen action, probability, event id),
//  - Reward(event id, reward) joined against a high-fidelity event log,
//  - periodic retraining of the underlying contextual bandit model,
//  - counterfactual (IPS) evaluation of a policy over the logged data.
//
// Training is incremental: a rewarded event's combined features are queued
// (by shared_ptr, no copy) into a pending batch at Reward time, and
// Retrain() consumes only that batch — the event log is never rescanned.
// The log itself is bounded by a retention policy (see
// PersonalizerConfig::retention_window): one service instance can run for
// an unbounded number of pipeline days in constant memory.
#ifndef QO_BANDIT_PERSONALIZER_H_
#define QO_BANDIT_PERSONALIZER_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bandit/cb_model.h"
#include "bandit/features.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/symbol_table.h"
#include "telemetry/bandit_telemetry.h"

namespace qo::bandit {

/// One rankable action.
struct RankableAction {
  std::string action_id;
  FeatureVector features;
};

/// Typed event identity: a dense id interned in the service's own
/// SymbolTable at Rank time and carried through RankResponse back into the
/// reward join. The join map is keyed by this integer, so a Reward() with a
/// typed id never hashes or compares the event-id string — the string form
/// survives only for request construction and error messages.
struct EventId {
  Symbol value = kNoSymbol;

  bool valid() const { return value != kNoSymbol; }
  friend bool operator==(EventId, EventId) = default;
};

struct EventIdHash {
  size_t operator()(EventId id) const { return id.value; }
};

struct RankRequest {
  std::string event_id;
  FeatureVector context;
  std::vector<RankableAction> actions;
  /// When true, the service ranks uniformly at random regardless of the
  /// model — the logging arm of the paper's off-policy design (Sec. 4.2).
  bool explore_uniform = false;
  /// Optional shared combined (context x action) vectors, one per action
  /// (see CombineActionSet). When non-empty it must match actions.size();
  /// the service then logs these shared vectors instead of recombining
  /// context x action per call. This is how the Recommender's per-job
  /// combined-feature cache flows through every uniform probe and the
  /// acting arm of one job: one combine, many Rank calls.
  std::vector<std::shared_ptr<const SparseVector>> precombined;
};

struct RankResponse {
  std::string event_id;
  /// Typed id for the reward join: Reward(event) is an integer-keyed map
  /// probe, no string hashing. Always valid on an OK response.
  EventId event;
  size_t chosen_index = 0;
  std::string chosen_action_id;
  double probability = 1.0;  ///< propensity of the chosen action
};

struct PersonalizerConfig {
  /// Exploration rate of the learned policy (epsilon-greedy).
  double epsilon = 0.10;
  CbModelConfig model = {};
  uint64_t seed = 7;
  /// Retrain after this many new rewarded events.
  size_t retrain_interval = 256;
  /// Retention policy: keep at most this many events resident in the log
  /// (0 = unlimited). When the log grows past the window the oldest events
  /// are dropped: rewarded events have already been captured for training
  /// (and consumed by any intervening retrain), and unrewarded events past
  /// the window have exceeded the reward-join horizon — a later Reward()
  /// for them returns NotFound, as a production join window would.
  /// EvaluateOffline() evaluates over the retained window.
  size_t retention_window = 16384;
};

/// Builds the shared combined-feature set for one (context, action set)
/// pair — the unit the Recommender caches per job and hands to every Rank
/// call via RankRequest::precombined.
std::vector<std::shared_ptr<const SparseVector>> CombineActionSet(
    const FeatureVector& context, const std::vector<RankableAction>& actions);

/// The service. Thread-compatible, not thread-safe (matches the offline
/// daily-pipeline usage).
/// Thread-safety: Rank/Reward/Retrain mutate the event log, the learning
/// state and a shared Rng, and a retrain between two Rank calls changes
/// every later choice — so the runtime never fans these out. The parallel
/// recommendation path pre-evaluates recompilations concurrently and keeps
/// all Personalizer traffic on the committing thread, in submission order.
class PersonalizerService {
 public:
  explicit PersonalizerService(PersonalizerConfig config = {});

  /// Ranks the actions; logs the decision for later reward joining.
  /// InvalidArgument when the request has no actions, a duplicate event id,
  /// or a precombined set whose size disagrees with the action set.
  ///
  /// `serving_model` overrides the model used for scoring (epsilon-greedy
  /// argmax) without touching the learning state — the advisor service
  /// passes its published RCU snapshot's model here, so ranking reads a
  /// frozen model while the trainer works on the next one. Null scores with
  /// the learner's own model (the offline pipeline's behaviour).
  ///
  /// [[deprecated]]-in-comment for service callers: prefer
  /// service::TenantSession::Rank, which snapshots the serving model and
  /// serializes per-tenant traffic for you.
  Result<RankResponse> Rank(const RankRequest& request,
                            const CbModel* serving_model = nullptr);

  /// Attaches a reward to a previously ranked event and queues the chosen
  /// arm's features for the next incremental retrain. NotFound for unknown
  /// (or retention-expired) event ids; FailedPrecondition for
  /// already-rewarded events. The typed-id overload is the hot join: one
  /// integer map probe, no string hashing.
  Status Reward(EventId event, double reward);
  /// String-keyed compatibility join. [[deprecated]]-in-comment: prefer
  /// carrying RankResponse::event through to Reward(EventId) — this overload
  /// pays a string hash to recover the typed id.
  Status Reward(const std::string& event_id, double reward);

  /// Trains the model on the examples rewarded since the last retrain (the
  /// pending batch), then compacts the event log per the retention policy.
  void Retrain();

  /// Moves out the pending batch without training, advancing the retrain
  /// watermark and compacting the log. The advisor service's trainer drains
  /// the batch under the tenant lock, trains a model copy outside it, and
  /// publishes the result as a new snapshot — Retrain() is equivalent to
  /// TakePendingBatch + Train + AdoptModel in one (single-threaded) step.
  std::vector<LoggedExample> TakePendingBatch();

  /// Replaces the learner's model (the write-back half of the service
  /// trainer's drain/train/publish cycle).
  void AdoptModel(CbModel model) { model_ = std::move(model); }

  /// Counterfactual IPS estimate of the *current greedy policy*'s average
  /// reward over the retained log window, and of the logging baseline.
  /// Requires at least one retained rewarded event.
  struct OfflineEvaluation {
    double logged_average_reward = 0.0;
    double policy_ips_estimate = 0.0;
    size_t events = 0;
  };
  Result<OfflineEvaluation> EvaluateOffline() const;

  /// Total events ever logged (monotonic, unaffected by retention).
  size_t logged_events() const { return log_base_ + log_.size(); }
  /// Events currently resident in the log (bounded by retention_window).
  size_t resident_events() const { return log_.size(); }
  size_t rewarded_events() const { return rewarded_; }
  const CbModel& model() const { return model_; }
  /// By value: the snapshot is the stored counters plus point-in-time
  /// retention occupancy (resident_events / retention_window).
  telemetry::BanditTelemetry telemetry() const {
    telemetry::BanditTelemetry t = telemetry_;
    t.resident_events = log_.size();
    t.retention_window = config_.retention_window;
    return t;
  }

 private:
  struct LoggedEvent {
    EventId id;
    std::vector<std::shared_ptr<const SparseVector>> action_features;
    size_t chosen = 0;
    double probability = 1.0;
    bool has_reward = false;
    double reward = 0.0;
  };

  /// Greedy argmax under `model`. Near-ties are broken uniformly
  /// at random when `rng` is provided — an untrained model therefore ranks
  /// uniformly-at-random, exactly the CB cold-start behaviour the paper
  /// describes (Sec. 3.1). Pass nullptr for deterministic (first-wins)
  /// selection, used by offline evaluation.
  size_t BestAction(const CbModel& model, const LoggedEvent& ev,
                    Rng* rng) const;

  /// Drops the oldest events while the log exceeds retention_window.
  void CompactLog();

  PersonalizerConfig config_;
  CbModel model_;
  Rng rng_;
  /// Service-local intern table for event ids — not the process-wide one:
  /// event ids are unique per event, so interning them globally would bloat
  /// the compile path's table. Growth is scoped to the service instance;
  /// Resolve(id.value) recovers the string for error messages.
  SymbolTable event_syms_;
  /// Event log as a sliding window: log_[k] has global index log_base_ + k.
  std::deque<LoggedEvent> log_;
  size_t log_base_ = 0;
  /// typed event id -> global event index (compacted events erased). An
  /// integer-keyed probe: the reward join never hashes the id string.
  std::unordered_map<EventId, size_t, EventIdHash> event_index_;
  /// Examples rewarded since the last retrain (features shared with log_).
  std::vector<LoggedExample> pending_;
  size_t rewarded_ = 0;
  size_t rewarded_at_last_train_ = 0;
  telemetry::BanditTelemetry telemetry_;
};

}  // namespace qo::bandit

#endif  // QO_BANDIT_PERSONALIZER_H_

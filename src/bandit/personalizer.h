// A local stand-in for the Azure Personalizer service (paper Sec. 4.2 /
// Sec. 6 "Do not reinvent the wheel").
//
// Exposes the same contract QO-Advisor depends on:
//  - Rank(context, actions) -> (chosen action, probability, event id),
//  - Reward(event id, reward) joined against a high-fidelity event log,
//  - periodic retraining of the underlying contextual bandit model,
//  - counterfactual (IPS) evaluation of a policy over the logged data.
#ifndef QO_BANDIT_PERSONALIZER_H_
#define QO_BANDIT_PERSONALIZER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bandit/cb_model.h"
#include "bandit/features.h"
#include "common/rng.h"
#include "common/status.h"

namespace qo::bandit {

/// One rankable action.
struct RankableAction {
  std::string action_id;
  FeatureVector features;
};

struct RankRequest {
  std::string event_id;
  FeatureVector context;
  std::vector<RankableAction> actions;
  /// When true, the service ranks uniformly at random regardless of the
  /// model — the logging arm of the paper's off-policy design (Sec. 4.2).
  bool explore_uniform = false;
};

struct RankResponse {
  std::string event_id;
  size_t chosen_index = 0;
  std::string chosen_action_id;
  double probability = 1.0;  ///< propensity of the chosen action
};

struct PersonalizerConfig {
  /// Exploration rate of the learned policy (epsilon-greedy).
  double epsilon = 0.10;
  CbModelConfig model = {};
  uint64_t seed = 7;
  /// Retrain after this many new rewarded events.
  size_t retrain_interval = 256;
};

/// The service. Thread-compatible, not thread-safe (matches the offline
/// daily-pipeline usage).
/// Thread-safety: Rank/Reward/Retrain mutate the event log, the learning
/// state and a shared Rng, and a retrain between two Rank calls changes
/// every later choice — so the runtime never fans these out. The parallel
/// recommendation path pre-evaluates recompilations concurrently and keeps
/// all Personalizer traffic on the committing thread, in submission order.
class PersonalizerService {
 public:
  explicit PersonalizerService(PersonalizerConfig config = {});

  /// Ranks the actions; logs the decision for later reward joining.
  /// InvalidArgument when the request has no actions or a duplicate event id.
  Result<RankResponse> Rank(const RankRequest& request);

  /// Attaches a reward to a previously ranked event. NotFound for unknown
  /// event ids; FailedPrecondition for already-rewarded events.
  Status Reward(const std::string& event_id, double reward);

  /// Forces a retrain over all rewarded events.
  void Retrain();

  /// Counterfactual IPS estimate of the *current greedy policy*'s average
  /// reward over the logged data, and of the logging baseline. Requires at
  /// least one rewarded event.
  struct OfflineEvaluation {
    double logged_average_reward = 0.0;
    double policy_ips_estimate = 0.0;
    size_t events = 0;
  };
  Result<OfflineEvaluation> EvaluateOffline() const;

  size_t logged_events() const { return log_.size(); }
  size_t rewarded_events() const { return rewarded_; }
  const CbModel& model() const { return model_; }

 private:
  struct LoggedEvent {
    std::vector<std::vector<std::pair<uint32_t, double>>> action_features;
    size_t chosen = 0;
    double probability = 1.0;
    bool has_reward = false;
    double reward = 0.0;
  };

  /// Greedy argmax under the current model. Near-ties are broken uniformly
  /// at random when `rng` is provided — an untrained model therefore ranks
  /// uniformly-at-random, exactly the CB cold-start behaviour the paper
  /// describes (Sec. 3.1). Pass nullptr for deterministic (first-wins)
  /// selection, used by offline evaluation.
  size_t BestAction(const LoggedEvent& ev, Rng* rng) const;

  PersonalizerConfig config_;
  CbModel model_;
  Rng rng_;
  std::vector<LoggedEvent> log_;
  std::unordered_map<std::string, size_t> event_index_;
  size_t rewarded_ = 0;
  size_t rewarded_at_last_train_ = 0;
};

}  // namespace qo::bandit

#endif  // QO_BANDIT_PERSONALIZER_H_

// Sparse feature vectors and the QO-Advisor featurizer.
//
// The paper's key representation finding (Sec. 6): complex plan
// featurizations were ineffective, while the *job span itself* — the set of
// rule bits that can affect the plan — plus second and third order
// co-occurrence indicators over the span was critical. We reproduce that
// featurization, plus the marginal input-stream properties (row counts) of
// Sec. 3.2.
#ifndef QO_BANDIT_FEATURES_H_
#define QO_BANDIT_FEATURES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.h"

namespace qo::bandit {

/// Hashed sparse feature vector (feature hashing into a fixed space).
struct FeatureVector {
  static constexpr uint32_t kDim = 1u << 18;

  std::vector<std::pair<uint32_t, double>> entries;

  void Add(uint32_t index, double value) {
    entries.emplace_back(index % kDim, value);
  }
  /// Adds a named feature via hashing.
  void AddNamed(const std::string& name, double value);

  size_t size() const { return entries.size(); }
};

/// Stable 64-bit string hash (FNV-1a).
uint64_t HashFeatureName(const std::string& name);

/// Context features for one job.
struct JobContext {
  BitVector256 span;          ///< the job span (Sec. 2.1)
  double row_count = 0.0;     ///< summed actual row counts (Table 1)
  double est_cost = 0.0;      ///< default-config estimated cost
  double bytes_read = 0.0;
  int total_vertices = 0;
};

/// Builds the shared (context) features: span indicators, 2nd/3rd order span
/// co-occurrences, and log-bucketed input-stream properties.
FeatureVector BuildContextFeatures(const JobContext& context);

/// Builds the per-action features: the flipped rule's id and category
/// (Sec. 4.2), or the dedicated no-op indicator for action 0.
FeatureVector BuildActionFeatures(int rule_id, bool is_noop);

/// Dot-product helper combining shared and action features with quadratic
/// (shared x action) interactions, mirroring VW's `-q` pairing that Azure
/// Personalizer uses.
std::vector<std::pair<uint32_t, double>> CombineFeatures(
    const FeatureVector& shared, const FeatureVector& action);

}  // namespace qo::bandit

#endif  // QO_BANDIT_FEATURES_H_

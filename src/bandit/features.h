// Sparse feature vectors and the QO-Advisor featurizer.
//
// The paper's key representation finding (Sec. 6): complex plan
// featurizations were ineffective, while the *job span itself* — the set of
// rule bits that can affect the plan — plus second and third order
// co-occurrence indicators over the span was critical. We reproduce that
// featurization, plus the marginal input-stream properties (row counts) of
// Sec. 3.2.
#ifndef QO_BANDIT_FEATURES_H_
#define QO_BANDIT_FEATURES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvector.h"

namespace qo::bandit {

/// Canonical hashed sparse vector in structure-of-arrays form: a sorted
/// index column and a parallel value column, exactly one entry per index
/// (hash-collided duplicates are coalesced by summing their values at
/// construction), squared L2 norm cached.
///
/// The canonical form is what makes the trainer correct *by construction*:
/// a linear sweep over the columns touches each model weight exactly once,
/// so per-example L2 decay applies once per weight (not once per colliding
/// occurrence) and `norm_sq()` counts a collided feature once at its summed
/// value. The split columns are also what the vectorized scoring path
/// consumes: `CbModel::ScoreBatch` packs the dense value column of four
/// arms into lane-major blocks without touching index/value interleaving
/// or the 4-byte padding a pair layout carries. Immutable after
/// construction and shared by value or via `shared_ptr` between the
/// Personalizer's event log, the trainer and the Recommender's per-job
/// combined-feature cache.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds the canonical form from raw (index, value) pairs in any order,
  /// possibly with repeated indices. Indices are reduced into the model's
  /// hashed space (FeatureVector::kDim) so the result is always safe to
  /// score against a CbModel.
  static SparseVector Canonicalize(
      std::vector<std::pair<uint32_t, double>> raw);

  /// Wraps already-canonical columns (sorted unique indices < kDim, values
  /// parallel, norm_sq = sum of squared values). The combine arena emits
  /// through this; callers are responsible for the precondition.
  static SparseVector FromCanonical(std::vector<uint32_t> indices,
                                    std::vector<double> values,
                                    double norm_sq);

  /// Sorted feature indices, one entry per index.
  const std::vector<uint32_t>& indices() const { return indices_; }
  /// Values parallel to `indices()`.
  const std::vector<double>& values() const { return values_; }
  /// Cached squared L2 norm of the coalesced values.
  double norm_sq() const { return norm_sq_; }
  size_t size() const { return indices_.size(); }

 private:
  std::vector<uint32_t> indices_;
  std::vector<double> values_;
  double norm_sq_ = 0.0;
};

/// Hashed sparse feature builder (feature hashing into a fixed space).
/// Add/AddNamed append raw entries; Canonicalize() sorts and coalesces them
/// in place. The featurizer entry points below always return canonicalized
/// vectors, so downstream combination starts from deduplicated inputs.
struct FeatureVector {
  static constexpr uint32_t kDim = 1u << 18;

  std::vector<std::pair<uint32_t, double>> entries;

  void Add(uint32_t index, double value) {
    entries.emplace_back(index % kDim, value);
  }
  /// Adds a named feature via hashing.
  void AddNamed(const std::string& name, double value);

  /// Sorts entries by index and coalesces duplicates (summing values).
  void Canonicalize();

  size_t size() const { return entries.size(); }
};

/// Stable 64-bit string hash (FNV-1a).
uint64_t HashFeatureName(const std::string& name);

/// Context features for one job.
struct JobContext {
  BitVector256 span;          ///< the job span (Sec. 2.1)
  double row_count = 0.0;     ///< summed actual row counts (Table 1)
  double est_cost = 0.0;      ///< default-config estimated cost
  double bytes_read = 0.0;
  int total_vertices = 0;
};

/// Builds the shared (context) features: span indicators, 2nd/3rd order span
/// co-occurrences, and log-bucketed input-stream properties. Canonical.
FeatureVector BuildContextFeatures(const JobContext& context);

/// Builds the per-action features: the flipped rule's id and category
/// (Sec. 4.2), or the dedicated no-op indicator for action 0. Canonical.
FeatureVector BuildActionFeatures(int rule_id, bool is_noop);

/// Combines shared and action features with quadratic (shared x action)
/// interactions, mirroring VW's `-q` pairing that Azure Personalizer uses.
/// The result is canonical (sorted, coalesced, norm cached).
SparseVector CombineFeatures(const FeatureVector& shared,
                             const FeatureVector& action);

/// CombineFeatures into a shareable immutable vector — the unit of the
/// combined-feature cache (one combine serves every Rank call, the event
/// log and the trainer for a given (context, action) pair).
std::shared_ptr<const SparseVector> CombineFeaturesShared(
    const FeatureVector& shared, const FeatureVector& action);

}  // namespace qo::bandit

#endif  // QO_BANDIT_FEATURES_H_

#include "bandit/features.h"

#include <algorithm>
#include <cmath>

#include "optimizer/rules.h"

namespace qo::bandit {

namespace {

/// Stable two-pass LSD radix sort by index. Feature indices live in the
/// kDim = 2^18 hashed space, which factors exactly into two 9-bit digits —
/// two counting passes beat comparison sorting on the large combined
/// vectors (a 30-bit span combines to ~2000 entries) and this kernel sits
/// on the pipeline's hottest path (one canonicalization per combine).
void RadixSortByIndex(std::vector<std::pair<uint32_t, double>>* entries) {
  static_assert(FeatureVector::kDim == (1u << 18),
                "radix digit layout assumes an 18-bit index space");
  constexpr uint32_t kRadixBits = 9;
  constexpr uint32_t kBuckets = 1u << kRadixBits;
  constexpr uint32_t kMask = kBuckets - 1;
  auto& e = *entries;
  std::vector<std::pair<uint32_t, double>> scratch(e.size());
  uint32_t counts[kBuckets];
  for (uint32_t shift : {0u, kRadixBits}) {
    std::fill(std::begin(counts), std::end(counts), 0u);
    for (const auto& [index, value] : e) ++counts[(index >> shift) & kMask];
    uint32_t offset = 0;
    for (uint32_t b = 0; b < kBuckets; ++b) {
      uint32_t c = counts[b];
      counts[b] = offset;
      offset += c;
    }
    for (const auto& entry : e) {
      scratch[counts[(entry.first >> shift) & kMask]++] = entry;
    }
    e.swap(scratch);
  }
}

/// Shared canonicalization kernel: sort by index, coalesce runs of equal
/// indices by summing their values. Returns the squared L2 norm of the
/// coalesced values.
double SortAndCoalesce(std::vector<std::pair<uint32_t, double>>* entries) {
  // Small vectors (single actions, short spans) sort faster by comparison;
  // the radix passes win once the counting arrays amortize.
  constexpr size_t kRadixThreshold = 256;
  if (entries->size() >= kRadixThreshold) {
    RadixSortByIndex(entries);
  } else {
    std::sort(entries->begin(), entries->end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  auto& e = *entries;
  size_t out = 0;
  double norm_sq = 0.0;
  for (size_t i = 0; i < e.size();) {
    const uint32_t index = e[i].first;
    double sum = e[i].second;
    for (++i; i < e.size() && e[i].first == index; ++i) sum += e[i].second;
    norm_sq += sum * sum;
    e[out++] = {index, sum};
  }
  e.resize(out);
  return norm_sq;
}

}  // namespace

SparseVector SparseVector::Canonicalize(
    std::vector<std::pair<uint32_t, double>> raw) {
  for (auto& [index, value] : raw) index %= FeatureVector::kDim;
  SparseVector v;
  v.entries_ = std::move(raw);
  v.norm_sq_ = SortAndCoalesce(&v.entries_);
  return v;
}

uint64_t HashFeatureName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void FeatureVector::AddNamed(const std::string& name, double value) {
  Add(static_cast<uint32_t>(HashFeatureName(name)), value);
}

void FeatureVector::Canonicalize() { SortAndCoalesce(&entries); }

namespace {

int LogBucket(double v) {
  if (v <= 1.0) return 0;
  return static_cast<int>(std::log10(v));
}

// Unsigned operands throughout: feature indices are uint32_t, and funneling
// them through int (as an earlier revision did) relied on
// implementation-defined narrowing for the upper half of the index space.
// For all in-range inputs (span bits, kDim-reduced indices) the arithmetic —
// and therefore every hashed feature id — is unchanged.
uint32_t MixPair(uint32_t a, uint32_t b) {
  uint64_t h = (static_cast<uint64_t>(a) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<uint64_t>(b) + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 29;
  return static_cast<uint32_t>(h);
}

uint32_t MixTriple(uint32_t a, uint32_t b, uint32_t c) {
  uint64_t h = MixPair(a, b);
  h = h * 0x94d049bb133111ebULL + (static_cast<uint64_t>(c) + 1);
  h ^= h >> 31;
  return static_cast<uint32_t>(h);
}

uint32_t Bit(int span_bit) { return static_cast<uint32_t>(span_bit); }

}  // namespace

FeatureVector BuildContextFeatures(const JobContext& context) {
  FeatureVector f;
  std::vector<int> span_bits = context.span.Positions();

  // First-order span indicators.
  for (int b : span_bits) {
    f.AddNamed("span_" + std::to_string(b), 1.0);
  }
  // Second and third order co-occurrence indicators — "critical to our
  // success" (paper Sec. 6). Triples are capped to keep vectors small on
  // long-tailed spans.
  for (size_t i = 0; i < span_bits.size(); ++i) {
    for (size_t j = i + 1; j < span_bits.size(); ++j) {
      f.Add(0x40000000u ^ MixPair(Bit(span_bits[i]), Bit(span_bits[j])), 1.0);
    }
  }
  const size_t kTripleCap = 12;
  size_t n3 = std::min(span_bits.size(), kTripleCap);
  for (size_t i = 0; i < n3; ++i) {
    for (size_t j = i + 1; j < n3; ++j) {
      for (size_t k = j + 1; k < n3; ++k) {
        f.Add(0x80000000u ^ MixTriple(Bit(span_bits[i]), Bit(span_bits[j]),
                                      Bit(span_bits[k])),
              1.0);
      }
    }
  }
  // Input-stream properties give marginal improvement (Sec. 3.2).
  f.AddNamed("rowcount_b" + std::to_string(LogBucket(context.row_count)), 1.0);
  f.AddNamed("estcost_b" + std::to_string(LogBucket(context.est_cost)), 1.0);
  f.AddNamed("read_b" + std::to_string(LogBucket(context.bytes_read)), 1.0);
  f.AddNamed("vertices_b" +
                 std::to_string(LogBucket(context.total_vertices)),
             1.0);
  f.AddNamed("bias", 1.0);
  f.Canonicalize();
  return f;
}

FeatureVector BuildActionFeatures(int rule_id, bool is_noop) {
  FeatureVector f;
  if (is_noop) {
    f.AddNamed("action_noop", 1.0);
    return f;
  }
  f.AddNamed("action_rule_" + std::to_string(rule_id), 1.0);
  const auto& registry = opt::RuleRegistry::Get();
  f.AddNamed(std::string("action_cat_") +
                 opt::RuleCategoryToString(registry.category(rule_id)),
             1.0);
  f.Canonicalize();
  return f;
}

SparseVector CombineFeatures(const FeatureVector& shared,
                             const FeatureVector& action) {
  std::vector<std::pair<uint32_t, double>> combined;
  combined.reserve(shared.size() + action.size() +
                   shared.size() * action.size());
  for (const auto& [i, v] : shared.entries) combined.emplace_back(i, v);
  for (const auto& [i, v] : action.entries) combined.emplace_back(i, v);
  // Quadratic shared x action interactions.
  for (const auto& [si, sv] : shared.entries) {
    for (const auto& [ai, av] : action.entries) {
      combined.emplace_back(MixPair(si, ai) % FeatureVector::kDim, sv * av);
    }
  }
  return SparseVector::Canonicalize(std::move(combined));
}

std::shared_ptr<const SparseVector> CombineFeaturesShared(
    const FeatureVector& shared, const FeatureVector& action) {
  return std::make_shared<const SparseVector>(CombineFeatures(shared, action));
}

}  // namespace qo::bandit

#include "bandit/features.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/kernels/kernels.h"
#include "optimizer/rules.h"

namespace qo::bandit {

namespace {

/// Comparison sort + coalesce for small pair vectors (single actions, short
/// spans): sort by index, coalesce runs of equal indices by summing their
/// values. Returns the squared L2 norm of the coalesced values. Large raw
/// vectors take the CombineArena path below instead.
double SortAndCoalesce(std::vector<std::pair<uint32_t, double>>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  auto& e = *entries;
  size_t out = 0;
  double norm_sq = 0.0;
  for (size_t i = 0; i < e.size();) {
    const uint32_t index = e[i].first;
    double sum = e[i].second;
    for (++i; i < e.size() && e[i].first == index; ++i) sum += e[i].second;
    norm_sq += sum * sum;
    e[out++] = {index, sum};
  }
  e.resize(out);
  return norm_sq;
}

/// Bump arena over the dense hashed feature space: raw (index, value)
/// inserts accumulate straight into a value column guarded by a presence
/// bitmap, and Emit() walks the bitmap in ascending index order — the
/// combined vector materializes already sorted and coalesced, retiring the
/// radix-sort canonicalization pass that used to follow every combine.
///
/// Bit-identity with the retired stable sort: duplicates accumulate in
/// insertion order (`+=` on an already-present slot) exactly as the stable
/// sort's coalesce loop summed a run, and Emit's ascending scan accumulates
/// norm_sq in the same sorted-index order.
///
/// One arena per thread (2 MiB value column + 32 KiB bitmap), reused across
/// combines; Emit clears only the touched bitmap words, so cost scales with
/// the vector, not the space. Stale values beyond cleared bits are
/// harmless — an insert on a clear bit overwrites.
///
/// A second-level summary bitmap (one bit per first-level word, 64 words
/// total — a single cache line) lets Emit find the hot words without
/// scanning the whole 32 KiB bitmap: the kernel collect runs over the
/// summary, and only words with live bits are visited.
class CombineArena {
 public:
  static constexpr uint32_t kDim = FeatureVector::kDim;
  static constexpr size_t kWords = kDim / 64;
  static constexpr size_t kSummaryWords = kWords / 64;

  CombineArena()
      : value_(kDim, 0.0),
        bits_(kWords, 0),
        summary_(kSummaryWords, 0),
        hot_summary_(kSummaryWords) {}

  void Add(uint32_t index, double value) {
    const uint32_t w = index >> 6;
    uint64_t& word = bits_[w];
    const uint64_t mask = 1ULL << (index & 63u);
    if (word & mask) {
      value_[index] += value;
    } else {
      word |= mask;
      summary_[w >> 6] |= 1ULL << (w & 63u);
      value_[index] = value;
    }
  }

  /// Drains the arena into canonical SoA columns. `size_hint` is the raw
  /// insert count (an upper bound on distinct indices).
  SparseVector Emit(size_t size_hint) {
    const kernels::KernelTable& kt = kernels::Active();
    std::vector<uint32_t> indices;
    std::vector<double> values;
    indices.reserve(size_hint);
    values.reserve(size_hint);
    double norm_sq = 0.0;
    // One bulk kernel call over the summary line finds every region with a
    // hot word — the drain loop then touches only live first-level words
    // and never goes back through the dispatch pointer.
    const size_t hot = kt.collect_nonzero_words(summary_.data(), 0,
                                                kSummaryWords,
                                                hot_summary_.data());
    for (size_t k = 0; k < hot; ++k) {
      const size_t s = hot_summary_[k];
      uint64_t sword = summary_[s];
      summary_[s] = 0;
      while (sword != 0) {
        const size_t w = s * 64 + static_cast<size_t>(std::countr_zero(sword));
        sword &= sword - 1;
        uint64_t word = bits_[w];
        bits_[w] = 0;
        while (word != 0) {
          const uint32_t index =
              static_cast<uint32_t>(w * 64) +
              static_cast<uint32_t>(std::countr_zero(word));
          word &= word - 1;
          const double sum = value_[index];
          indices.push_back(index);
          values.push_back(sum);
          norm_sq += sum * sum;
        }
      }
    }
    return SparseVector::FromCanonical(std::move(indices), std::move(values),
                                       norm_sq);
  }

  /// Emit() variant draining into a sorted-coalesced pair vector, for the
  /// FeatureVector canonicalization path (which keeps the pair layout).
  void EmitPairs(std::vector<std::pair<uint32_t, double>>* out) {
    const kernels::KernelTable& kt = kernels::Active();
    out->clear();
    const size_t hot = kt.collect_nonzero_words(summary_.data(), 0,
                                                kSummaryWords,
                                                hot_summary_.data());
    for (size_t k = 0; k < hot; ++k) {
      const size_t s = hot_summary_[k];
      uint64_t sword = summary_[s];
      summary_[s] = 0;
      while (sword != 0) {
        const size_t w = s * 64 + static_cast<size_t>(std::countr_zero(sword));
        sword &= sword - 1;
        uint64_t word = bits_[w];
        bits_[w] = 0;
        while (word != 0) {
          const uint32_t index =
              static_cast<uint32_t>(w * 64) +
              static_cast<uint32_t>(std::countr_zero(word));
          word &= word - 1;
          out->emplace_back(index, value_[index]);
        }
      }
    }
  }

 private:
  std::vector<double> value_;
  std::vector<uint64_t> bits_;
  std::vector<uint64_t> summary_;
  std::vector<uint32_t> hot_summary_;
};

CombineArena& ThreadArena() {
  thread_local CombineArena arena;
  return arena;
}

/// Raw-entry count at which the arena pays for its bitmap scan. Below it,
/// the comparison sort path wins; this is the same cutover the retired
/// radix sort used, which also keeps the small-vector duplicate-coalescing
/// order (unstable std::sort) byte-identical to the previous tree.
constexpr size_t kArenaThreshold = 256;

SparseVector CanonicalizePairs(std::vector<std::pair<uint32_t, double>> raw) {
  if (raw.size() >= kArenaThreshold) {
    CombineArena& arena = ThreadArena();
    for (const auto& [index, value] : raw) arena.Add(index, value);
    return arena.Emit(raw.size());
  }
  const double norm_sq = SortAndCoalesce(&raw);
  std::vector<uint32_t> indices;
  std::vector<double> values;
  indices.reserve(raw.size());
  values.reserve(raw.size());
  for (const auto& [index, value] : raw) {
    indices.push_back(index);
    values.push_back(value);
  }
  return SparseVector::FromCanonical(std::move(indices), std::move(values),
                                     norm_sq);
}

}  // namespace

SparseVector SparseVector::Canonicalize(
    std::vector<std::pair<uint32_t, double>> raw) {
  for (auto& [index, value] : raw) index %= FeatureVector::kDim;
  return CanonicalizePairs(std::move(raw));
}

SparseVector SparseVector::FromCanonical(std::vector<uint32_t> indices,
                                         std::vector<double> values,
                                         double norm_sq) {
  SparseVector v;
  v.indices_ = std::move(indices);
  v.values_ = std::move(values);
  v.norm_sq_ = norm_sq;
  return v;
}

uint64_t HashFeatureName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void FeatureVector::AddNamed(const std::string& name, double value) {
  Add(static_cast<uint32_t>(HashFeatureName(name)), value);
}

void FeatureVector::Canonicalize() {
  // Same cutover as the combined path: the arena reproduces the retired
  // stable radix sort bit for bit on large vectors (long-span context
  // features), the comparison sort keeps the legacy small-vector behavior.
  if (entries.size() >= kArenaThreshold) {
    CombineArena& arena = ThreadArena();
    for (const auto& [index, value] : entries) arena.Add(index, value);
    arena.EmitPairs(&entries);
  } else {
    SortAndCoalesce(&entries);
  }
}

namespace {

int LogBucket(double v) {
  if (v <= 1.0) return 0;
  return static_cast<int>(std::log10(v));
}

// Unsigned operands throughout: feature indices are uint32_t, and funneling
// them through int (as an earlier revision did) relied on
// implementation-defined narrowing for the upper half of the index space.
// For all in-range inputs (span bits, kDim-reduced indices) the arithmetic —
// and therefore every hashed feature id — is unchanged.
uint32_t MixPair(uint32_t a, uint32_t b) {
  uint64_t h = (static_cast<uint64_t>(a) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<uint64_t>(b) + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 29;
  return static_cast<uint32_t>(h);
}

uint32_t MixTriple(uint32_t a, uint32_t b, uint32_t c) {
  uint64_t h = MixPair(a, b);
  h = h * 0x94d049bb133111ebULL + (static_cast<uint64_t>(c) + 1);
  h ^= h >> 31;
  return static_cast<uint32_t>(h);
}

uint32_t Bit(int span_bit) { return static_cast<uint32_t>(span_bit); }

}  // namespace

FeatureVector BuildContextFeatures(const JobContext& context) {
  FeatureVector f;
  std::vector<int> span_bits = context.span.Positions();

  // First-order span indicators.
  for (int b : span_bits) {
    f.AddNamed("span_" + std::to_string(b), 1.0);
  }
  // Second and third order co-occurrence indicators — "critical to our
  // success" (paper Sec. 6). Triples are capped to keep vectors small on
  // long-tailed spans.
  for (size_t i = 0; i < span_bits.size(); ++i) {
    for (size_t j = i + 1; j < span_bits.size(); ++j) {
      f.Add(0x40000000u ^ MixPair(Bit(span_bits[i]), Bit(span_bits[j])), 1.0);
    }
  }
  const size_t kTripleCap = 12;
  size_t n3 = std::min(span_bits.size(), kTripleCap);
  for (size_t i = 0; i < n3; ++i) {
    for (size_t j = i + 1; j < n3; ++j) {
      for (size_t k = j + 1; k < n3; ++k) {
        f.Add(0x80000000u ^ MixTriple(Bit(span_bits[i]), Bit(span_bits[j]),
                                      Bit(span_bits[k])),
              1.0);
      }
    }
  }
  // Input-stream properties give marginal improvement (Sec. 3.2).
  f.AddNamed("rowcount_b" + std::to_string(LogBucket(context.row_count)), 1.0);
  f.AddNamed("estcost_b" + std::to_string(LogBucket(context.est_cost)), 1.0);
  f.AddNamed("read_b" + std::to_string(LogBucket(context.bytes_read)), 1.0);
  f.AddNamed("vertices_b" +
                 std::to_string(LogBucket(context.total_vertices)),
             1.0);
  f.AddNamed("bias", 1.0);
  f.Canonicalize();
  return f;
}

FeatureVector BuildActionFeatures(int rule_id, bool is_noop) {
  FeatureVector f;
  if (is_noop) {
    f.AddNamed("action_noop", 1.0);
    return f;
  }
  f.AddNamed("action_rule_" + std::to_string(rule_id), 1.0);
  const auto& registry = opt::RuleRegistry::Get();
  f.AddNamed(std::string("action_cat_") +
                 opt::RuleCategoryToString(registry.category(rule_id)),
             1.0);
  f.Canonicalize();
  return f;
}

SparseVector CombineFeatures(const FeatureVector& shared,
                             const FeatureVector& action) {
  const size_t raw_size =
      shared.size() + action.size() + shared.size() * action.size();
  if (raw_size >= kArenaThreshold) {
    // Hot path (~2000 raw entries per combine): accumulate straight into
    // the per-thread arena — no intermediate pair vector, no sort pass.
    CombineArena& arena = ThreadArena();
    for (const auto& [i, v] : shared.entries) arena.Add(i, v);
    for (const auto& [i, v] : action.entries) arena.Add(i, v);
    // Quadratic shared x action interactions.
    for (const auto& [si, sv] : shared.entries) {
      for (const auto& [ai, av] : action.entries) {
        arena.Add(MixPair(si, ai) % FeatureVector::kDim, sv * av);
      }
    }
    return arena.Emit(raw_size);
  }
  std::vector<std::pair<uint32_t, double>> combined;
  combined.reserve(raw_size);
  for (const auto& [i, v] : shared.entries) combined.emplace_back(i, v);
  for (const auto& [i, v] : action.entries) combined.emplace_back(i, v);
  // Quadratic shared x action interactions.
  for (const auto& [si, sv] : shared.entries) {
    for (const auto& [ai, av] : action.entries) {
      combined.emplace_back(MixPair(si, ai) % FeatureVector::kDim, sv * av);
    }
  }
  return SparseVector::Canonicalize(std::move(combined));
}

std::shared_ptr<const SparseVector> CombineFeaturesShared(
    const FeatureVector& shared, const FeatureVector& action) {
  return std::make_shared<const SparseVector>(CombineFeatures(shared, action));
}

}  // namespace qo::bandit

#include "bandit/features.h"

#include <cmath>

#include "optimizer/rules.h"

namespace qo::bandit {

uint64_t HashFeatureName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void FeatureVector::AddNamed(const std::string& name, double value) {
  Add(static_cast<uint32_t>(HashFeatureName(name)), value);
}

namespace {

int LogBucket(double v) {
  if (v <= 1.0) return 0;
  return static_cast<int>(std::log10(v));
}

uint32_t MixPair(int a, int b) {
  uint64_t h = (static_cast<uint64_t>(a) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<uint64_t>(b) + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 29;
  return static_cast<uint32_t>(h);
}

uint32_t MixTriple(int a, int b, int c) {
  uint64_t h = MixPair(a, b);
  h = h * 0x94d049bb133111ebULL + (static_cast<uint64_t>(c) + 1);
  h ^= h >> 31;
  return static_cast<uint32_t>(h);
}

}  // namespace

FeatureVector BuildContextFeatures(const JobContext& context) {
  FeatureVector f;
  std::vector<int> span_bits = context.span.Positions();

  // First-order span indicators.
  for (int b : span_bits) {
    f.AddNamed("span_" + std::to_string(b), 1.0);
  }
  // Second and third order co-occurrence indicators — "critical to our
  // success" (paper Sec. 6). Triples are capped to keep vectors small on
  // long-tailed spans.
  for (size_t i = 0; i < span_bits.size(); ++i) {
    for (size_t j = i + 1; j < span_bits.size(); ++j) {
      f.Add(0x40000000u ^ MixPair(span_bits[i], span_bits[j]), 1.0);
    }
  }
  const size_t kTripleCap = 12;
  size_t n3 = std::min(span_bits.size(), kTripleCap);
  for (size_t i = 0; i < n3; ++i) {
    for (size_t j = i + 1; j < n3; ++j) {
      for (size_t k = j + 1; k < n3; ++k) {
        f.Add(0x80000000u ^
                  MixTriple(span_bits[i], span_bits[j], span_bits[k]),
              1.0);
      }
    }
  }
  // Input-stream properties give marginal improvement (Sec. 3.2).
  f.AddNamed("rowcount_b" + std::to_string(LogBucket(context.row_count)), 1.0);
  f.AddNamed("estcost_b" + std::to_string(LogBucket(context.est_cost)), 1.0);
  f.AddNamed("read_b" + std::to_string(LogBucket(context.bytes_read)), 1.0);
  f.AddNamed("vertices_b" +
                 std::to_string(LogBucket(context.total_vertices)),
             1.0);
  f.AddNamed("bias", 1.0);
  return f;
}

FeatureVector BuildActionFeatures(int rule_id, bool is_noop) {
  FeatureVector f;
  if (is_noop) {
    f.AddNamed("action_noop", 1.0);
    return f;
  }
  f.AddNamed("action_rule_" + std::to_string(rule_id), 1.0);
  const auto& registry = opt::RuleRegistry::Get();
  f.AddNamed(std::string("action_cat_") +
                 opt::RuleCategoryToString(registry.category(rule_id)),
             1.0);
  return f;
}

std::vector<std::pair<uint32_t, double>> CombineFeatures(
    const FeatureVector& shared, const FeatureVector& action) {
  std::vector<std::pair<uint32_t, double>> combined;
  combined.reserve(shared.size() + action.size() +
                   shared.size() * action.size());
  for (const auto& [i, v] : shared.entries) combined.emplace_back(i, v);
  for (const auto& [i, v] : action.entries) combined.emplace_back(i, v);
  // Quadratic shared x action interactions.
  for (const auto& [si, sv] : shared.entries) {
    for (const auto& [ai, av] : action.entries) {
      uint32_t idx = MixPair(static_cast<int>(si), static_cast<int>(ai)) %
                     FeatureVector::kDim;
      combined.emplace_back(idx, sv * av);
    }
  }
  return combined;
}

}  // namespace qo::bandit

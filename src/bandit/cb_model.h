// Linear contextual-bandit model with importance-weighted SGD training.
//
// Scores canonical (shared, action) combined vectors with a hashed linear
// model; learns from logged (features, reward, logging-probability) triples
// using inverse propensity scoring — the standard off-policy reduction to
// regression (paper Sec. 3.1, [2, 40]).
//
// All features are canonical SparseVectors (sorted, coalesced, norm
// cached), so Score and TrainEpoch are branch-light linear sweeps that
// touch each weight exactly once per example: L2 decay applies once per
// weight and the normalized-LMS bound uses the true coalesced norm.
#ifndef QO_BANDIT_CB_MODEL_H_
#define QO_BANDIT_CB_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bandit/features.h"

namespace qo::bandit {

/// One logged interaction, ready for training. Features are shared with the
/// Personalizer's event log and the Recommender's per-job combined-feature
/// cache — building an example never deep-copies a feature vector.
struct LoggedExample {
  std::shared_ptr<const SparseVector> features;  ///< combined features
  double reward = 0.0;
  double probability = 1.0;  ///< probability the logging policy chose this
};

struct CbModelConfig {
  double learning_rate = 0.05;
  double l2 = 1e-6;
  int epochs = 3;
  /// IPS weights are clipped at this value to bound variance.
  double max_importance_weight = 10.0;
};

/// The hashed linear scorer.
class CbModel {
 public:
  explicit CbModel(CbModelConfig config = {});

  /// Predicted reward for a combined feature vector.
  double Score(const SparseVector& features) const;

  /// Predicted rewards for every arm of a rank request at once. Arms are
  /// processed in lane blocks of four: the weight gathers for four arms are
  /// packed column-major and swept by the dispatched dot4 kernel up to the
  /// shortest arm, then each lane finishes its tail scalar — continuing the
  /// same sequential accumulation — so every returned score is bit-identical
  /// to calling Score() on that arm alone. Null arms score 0.0.
  std::vector<double> ScoreBatch(
      const std::vector<std::shared_ptr<const SparseVector>>& arms) const;

  /// One SGD pass over the examples with IPS weighting (examples with low
  /// logging probability get up-weighted, subject to clipping). Examples
  /// with null features are skipped.
  void TrainEpoch(const std::vector<LoggedExample>& examples);

  /// Runs config.epochs passes.
  void Train(const std::vector<LoggedExample>& examples);

  size_t updates() const { return updates_; }
  const CbModelConfig& config() const { return config_; }

 private:
  CbModelConfig config_;
  std::vector<float> weights_;
  size_t updates_ = 0;
};

}  // namespace qo::bandit

#endif  // QO_BANDIT_CB_MODEL_H_

#include "bandit/cb_model.h"

#include <algorithm>

namespace qo::bandit {

CbModel::CbModel(CbModelConfig config) : config_(config) {
  weights_.assign(FeatureVector::kDim, 0.0f);
}

double CbModel::Score(const SparseVector& features) const {
  double s = 0.0;
  for (const auto& [i, v] : features.entries()) {
    s += static_cast<double>(weights_[i]) * v;
  }
  return s;
}

void CbModel::TrainEpoch(const std::vector<LoggedExample>& examples) {
  // The per-example L2 decay factor is constant across the epoch; the
  // canonical features guarantee each weight appears once per example, so
  // applying it inside the update sweep decays each touched weight exactly
  // once per example.
  const double decay = 1.0 - config_.learning_rate * config_.l2;
  for (const LoggedExample& ex : examples) {
    if (ex.features == nullptr) continue;
    const SparseVector& features = *ex.features;
    double iw = 1.0 / std::max(ex.probability, 1e-6);
    iw = std::min(iw, config_.max_importance_weight);
    double pred = Score(features);
    // Normalized LMS: scale by the squared feature norm (cached at
    // canonicalization) so one update moves the prediction by at most
    // (learning_rate * iw) of the error, regardless of how many hashed
    // features are active.
    double grad_scale = config_.learning_rate * iw * (ex.reward - pred) /
                        std::max(1.0, features.norm_sq());
    for (const auto& [i, v] : features.entries()) {
      float& w = weights_[i];
      w = static_cast<float>(w * decay + grad_scale * v);
    }
    ++updates_;
  }
}

void CbModel::Train(const std::vector<LoggedExample>& examples) {
  for (int e = 0; e < config_.epochs; ++e) TrainEpoch(examples);
}

}  // namespace qo::bandit

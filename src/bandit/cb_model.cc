#include "bandit/cb_model.h"

#include <algorithm>

namespace qo::bandit {

CbModel::CbModel(CbModelConfig config) : config_(config) {
  weights_.assign(FeatureVector::kDim, 0.0f);
}

double CbModel::Score(
    const std::vector<std::pair<uint32_t, double>>& features) const {
  double s = 0.0;
  for (const auto& [i, v] : features) {
    s += static_cast<double>(weights_[i]) * v;
  }
  return s;
}

void CbModel::TrainEpoch(const std::vector<LoggedExample>& examples) {
  for (const LoggedExample& ex : examples) {
    double iw = 1.0 / std::max(ex.probability, 1e-6);
    iw = std::min(iw, config_.max_importance_weight);
    double pred = Score(ex.features);
    // Normalized LMS: scale by the squared feature norm so one update moves
    // the prediction by at most (learning_rate * iw) of the error,
    // regardless of how many hashed features are active.
    double norm_sq = 0.0;
    for (const auto& [i, v] : ex.features) norm_sq += v * v;
    double grad_scale = config_.learning_rate * iw * (ex.reward - pred) /
                        std::max(1.0, norm_sq);
    for (const auto& [i, v] : ex.features) {
      float& w = weights_[i];
      w = static_cast<float>(w * (1.0 - config_.learning_rate * config_.l2) +
                             grad_scale * v);
    }
    ++updates_;
  }
}

void CbModel::Train(const std::vector<LoggedExample>& examples) {
  for (int e = 0; e < config_.epochs; ++e) TrainEpoch(examples);
}

}  // namespace qo::bandit

#include "bandit/cb_model.h"

#include <algorithm>

#include "common/kernels/kernels.h"

namespace qo::bandit {

CbModel::CbModel(CbModelConfig config) : config_(config) {
  weights_.assign(FeatureVector::kDim, 0.0f);
}

double CbModel::Score(const SparseVector& features) const {
  const std::vector<uint32_t>& idx = features.indices();
  const std::vector<double>& val = features.values();
  double s = 0.0;
  for (size_t k = 0; k < idx.size(); ++k) {
    s += static_cast<double>(weights_[idx[k]]) * val[k];
  }
  return s;
}

std::vector<double> CbModel::ScoreBatch(
    const std::vector<std::shared_ptr<const SparseVector>>& arms) const {
  using kernels::kLanes;
  std::vector<double> scores(arms.size(), 0.0);
  const kernels::KernelTable& kt = kernels::Active();
  // Per-thread gather scratch, grown to the widest block seen: four
  // lane-contiguous weight rows. The value rows need no packing at all —
  // each arm's dense value column is already a contiguous row.
  thread_local std::vector<double> gathered_weights;

  size_t block = 0;
  for (; block + kLanes <= arms.size(); block += kLanes) {
    const SparseVector* lane_arm[kLanes];
    size_t min_n = SIZE_MAX;
    bool all_present = true;
    for (size_t j = 0; j < kLanes; ++j) {
      lane_arm[j] = arms[block + j].get();
      if (lane_arm[j] == nullptr) {
        all_present = false;
        break;
      }
      min_n = std::min(min_n, lane_arm[j]->size());
    }
    if (!all_present) {
      for (size_t j = 0; j < kLanes; ++j) {
        const SparseVector* a = arms[block + j].get();
        scores[block + j] = a != nullptr ? Score(*a) : 0.0;
      }
      continue;
    }
    // Gather the common prefix (up to the shortest arm) of each lane's
    // weights into a contiguous row; the kernel transposes on load, so the
    // values go in as the arms' own columns with zero copying.
    if (gathered_weights.size() < min_n * kLanes) {
      gathered_weights.resize(min_n * kLanes);
    }
    const double* v_rows[kLanes];
    const double* w_rows[kLanes];
    for (size_t j = 0; j < kLanes; ++j) {
      const std::vector<uint32_t>& idx = lane_arm[j]->indices();
      double* row = gathered_weights.data() + j * min_n;
      for (size_t i = 0; i < min_n; ++i) {
        row[i] = static_cast<double>(weights_[idx[i]]);
      }
      v_rows[j] = lane_arm[j]->values().data();
      w_rows[j] = row;
    }
    double acc[kLanes] = {0.0, 0.0, 0.0, 0.0};
    kt.dot4(v_rows, w_rows, min_n, acc);
    // Each lane's tail continues the same sequential accumulation, so the
    // final sum has the exact Score() operation order.
    for (size_t j = 0; j < kLanes; ++j) {
      const std::vector<uint32_t>& idx = lane_arm[j]->indices();
      const std::vector<double>& val = lane_arm[j]->values();
      double s = acc[j];
      for (size_t i = min_n; i < idx.size(); ++i) {
        s += static_cast<double>(weights_[idx[i]]) * val[i];
      }
      scores[block + j] = s;
    }
  }
  for (; block < arms.size(); ++block) {
    const SparseVector* a = arms[block].get();
    scores[block] = a != nullptr ? Score(*a) : 0.0;
  }
  return scores;
}

void CbModel::TrainEpoch(const std::vector<LoggedExample>& examples) {
  // The per-example L2 decay factor is constant across the epoch; the
  // canonical features guarantee each weight appears once per example, so
  // applying it inside the update sweep decays each touched weight exactly
  // once per example.
  const double decay = 1.0 - config_.learning_rate * config_.l2;
  for (const LoggedExample& ex : examples) {
    if (ex.features == nullptr) continue;
    const SparseVector& features = *ex.features;
    double iw = 1.0 / std::max(ex.probability, 1e-6);
    iw = std::min(iw, config_.max_importance_weight);
    double pred = Score(features);
    // Normalized LMS: scale by the squared feature norm (cached at
    // canonicalization) so one update moves the prediction by at most
    // (learning_rate * iw) of the error, regardless of how many hashed
    // features are active.
    double grad_scale = config_.learning_rate * iw * (ex.reward - pred) /
                        std::max(1.0, features.norm_sq());
    const std::vector<uint32_t>& idx = features.indices();
    const std::vector<double>& val = features.values();
    for (size_t k = 0; k < idx.size(); ++k) {
      float& w = weights_[idx[k]];
      w = static_cast<float>(w * decay + grad_scale * val[k]);
    }
    ++updates_;
  }
}

void CbModel::Train(const std::vector<LoggedExample>& examples) {
  for (int e = 0; e < config_.epochs; ++e) TrainEpoch(examples);
}

}  // namespace qo::bandit

// Structured run reports over a MetricsSnapshot.
//
// The JSONL form is the machine-readable sink: one JSON object per line,
//
//   {"label": "daily_pipeline", "day": 3,
//    "series":    {"cache.front_end.hits": 123, "bandit.ranks": 456, ...},
//    "quantiles": {"span.compile": {"count": 99, "sum_ns": ...,
//                  "p50_ns": ..., "p95_ns": ..., "p99_ns": ..., "max_ns": ...},
//                  "tpl.T001.compile": {...}, ...}}
//
// appended to the path in QO_OBS_REPORT by the pipeline examples, the
// experiment harness (one cumulative line per process at ExperimentEnv
// destruction — how scripts/bench_baseline.sh captures a metrics snapshot
// per figure bench), and CI.
//
// The text form replaces hand-formatted per-subsystem printf blocks: one
// generic dump of every series and every non-empty quantile in the
// registry.
#ifndef QO_OBS_REPORT_H_
#define QO_OBS_REPORT_H_

#include <memory>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace qo::obs {

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// One JSONL run-report line (no trailing newline). `day` < 0 means "whole
/// process" and is emitted as -1. Histograms with zero recordings are
/// skipped; series are emitted in sorted name order, so two snapshots with
/// the same data always produce the same line.
std::string RunReportJsonLine(std::string_view label, int day,
                              const MetricsSnapshot& snap);

/// Human-readable registry-wide dump: every series plus p50/p95/p99 for
/// every non-empty histogram.
std::string RunReportText(const MetricsSnapshot& snap);

/// Append-only JSONL writer.
class RunReportWriter {
 public:
  explicit RunReportWriter(std::string path) : path_(std::move(path)) {}

  /// QO_OBS_REPORT-configured writer; null when the variable is unset/empty
  /// or metrics are disabled.
  static std::unique_ptr<RunReportWriter> FromEnv();

  /// Appends `line` + '\n'. Returns false on I/O failure.
  bool Append(std::string_view line) const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// QO_OBS_LABEL, or `fallback` when unset — lets scripts tag each process's
/// report line (e.g. with the bench binary name).
std::string ObsLabelFromEnv(std::string_view fallback);

}  // namespace qo::obs

#endif  // QO_OBS_REPORT_H_

// Chrome-trace-format span sink: set QO_TRACE=<path> and every completed
// QO_OBS_SPAN (plus the engine's hand-instrumented compile/execute spans)
// is recorded as a "complete" (ph:"X") event. The file written at process
// exit (or via FlushTraceNow) loads directly in chrome://tracing and
// Perfetto (ui.perfetto.dev), showing where a run's wall-clock goes per
// thread.
//
// Tracing rides on the metrics dispatch check: QO_METRICS=0 disables spans
// entirely, so QO_TRACE only has an effect while metrics are enabled.
// Recording appends to a mutex-guarded buffer — tracing is a debugging
// sink, not a hot-path one.
#ifndef QO_OBS_TRACE_H_
#define QO_OBS_TRACE_H_

#include <cstdint>
#include <string>

namespace qo::obs {

/// True when a trace path is configured (QO_TRACE or the test hook) and
/// metrics are enabled.
bool TraceEnabled();

/// Records one completed span. `start_ns`/`end_ns` are MonotonicNowNs()
/// readings; the event is stamped with a small dense id for the calling
/// thread. No-op when tracing is disabled.
void TraceRecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns);

/// Writes all events recorded so far to the configured path (rewriting the
/// file). Also installed as an atexit handler the first time tracing turns
/// on. Returns false when tracing is off or the file cannot be written.
bool FlushTraceNow();

/// Test hook: points the tracer at `path` (nullptr restores the QO_TRACE
/// env behaviour) and clears any buffered events.
void SetTracePathForTest(const char* path);

/// The configured trace path ("" when tracing is off).
std::string TracePath();

}  // namespace qo::obs

#endif  // QO_OBS_TRACE_H_

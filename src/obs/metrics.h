// Process-wide metrics registry: counters, gauges, and fixed-bucket
// exponential (log-linear) histograms with deterministic quantile
// extraction.
//
// Design points, mirroring what the production pipeline needs (the paper
// ships hints only because flighting/validation/rollback are continuously
// observable, Sec. 2.5):
//
//  - Hot paths pay one relaxed atomic: counters are sharded across
//    cache-line-padded per-thread slots, histogram records are a single
//    relaxed fetch_add on a (shard, bucket) slot. No locks anywhere on the
//    record path.
//  - Everything is off-by-default-cheap: when QO_METRICS=0 the span macros
//    and instrumented call sites check one cached bool and do nothing.
//    Metrics never feed back into computation, so all outputs are
//    byte-identical with metrics on or off (asserted by obs_test and the
//    figure-bench identity checks in CI).
//  - Quantiles are deterministic: buckets are fixed log-linear boundaries
//    (4 sub-buckets per power of two) and Quantile() returns the upper
//    bound of the bucket containing the requested rank — the same counts
//    always produce the same p50/p95/p99, independent of record order.
//  - Snapshots merge associatively: a merged snapshot of per-shard (or
//    per-histogram) snapshots equals the snapshot of the merged data, in
//    any grouping (asserted by obs_test), so sinks can aggregate freely.
//
// The registry hands out stable pointers (metrics live in deques and are
// never deallocated), so call sites cache the pointer once and record
// lock-free afterwards. Subsystems whose counters live outside the registry
// (the engine's sharded compile cache, the Personalizer, the flighting
// service) attach *collectors* — callbacks that export their telemetry
// snapshots as named series at Snapshot() time. This is how the four legacy
// telemetry structs surface as registry series without moving their
// hot-path counters.
#ifndef QO_OBS_METRICS_H_
#define QO_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qo::obs {

/// True unless QO_METRICS=0 (cached after the first call) or a test
/// override is installed. The single dispatch check every instrumented
/// call site performs.
bool MetricsEnabled();

/// Test hook: 0/1 forces metrics off/on, -1 restores the env-derived value.
void SetMetricsEnabledForTest(int state);

/// Monotonic nanoseconds (steady clock). Purely observational — never feeds
/// back into any computation.
uint64_t MonotonicNowNs();

// ---------------------------------------------------------------------------
// Histogram bucket math (log-linear: 4 sub-buckets per power of two).
// Exposed as constexpr free functions so tests can hand-compute goldens.
// ---------------------------------------------------------------------------
namespace hist {

/// Buckets 0..3 hold the exact values 0..3; from there each power of two
/// [2^e, 2^(e+1)) splits into 4 equal sub-buckets. e ranges 2..63, so the
/// last bucket's upper bound is 2^64 - 1: every uint64 value maps somewhere.
inline constexpr size_t kNumBuckets = 4 + 62 * 4;  // 252

constexpr size_t BucketIndex(uint64_t v) {
  if (v < 4) return static_cast<size_t>(v);
  const int e = 63 - std::countl_zero(v);  // floor(log2 v), >= 2
  const size_t sub = static_cast<size_t>((v >> (e - 2)) & 3);
  return 4 + static_cast<size_t>(e - 2) * 4 + sub;
}

constexpr uint64_t BucketLowerBound(size_t idx) {
  if (idx < 4) return idx;
  const int e = 2 + static_cast<int>((idx - 4) / 4);
  const uint64_t sub = (idx - 4) % 4;
  return (uint64_t{1} << e) + sub * (uint64_t{1} << (e - 2));
}

constexpr uint64_t BucketUpperBound(size_t idx) {
  if (idx < 4) return idx;
  const int e = 2 + static_cast<int>((idx - 4) / 4);
  return BucketLowerBound(idx) + (uint64_t{1} << (e - 2)) - 1;
}

}  // namespace hist

/// Mergeable point-in-time view of one histogram (or one histogram shard).
struct HistogramSnapshot {
  std::array<uint64_t, hist::kNumBuckets> counts{};
  uint64_t total = 0;  ///< sum of counts
  uint64_t sum = 0;    ///< sum of recorded values (saturating in practice)

  /// Element-wise accumulate. Merging is commutative and associative.
  void Merge(const HistogramSnapshot& other);

  /// Deterministic quantile: the upper bound of the bucket containing rank
  /// ceil(q * total) (rank clamped to [1, total]). 0 when empty.
  uint64_t Quantile(double q) const;

  /// Upper bound of the highest non-empty bucket. 0 when empty.
  uint64_t MaxValue() const;
};

// ---------------------------------------------------------------------------
// Metric types. All record paths are lock-free relaxed atomics; all types
// are neither copyable nor movable (the registry hands out stable pointers).
// ---------------------------------------------------------------------------

namespace detail {
/// Round-robin per-thread shard assignment, shared by counters and
/// histograms. A thread keeps its shard for life, so two increments from
/// one thread never contend with each other.
unsigned ThreadShard();
inline constexpr unsigned kShards = 8;
}  // namespace detail

/// Monotonic counter, sharded across cache-line-padded per-thread slots:
/// Add() is one relaxed fetch_add with no false sharing between threads.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    slots_[detail::ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  /// One shard's value — exposed for the snapshot-merge associativity tests.
  uint64_t ShardValue(unsigned shard) const {
    return slots_[shard % detail::kShards].v.load(std::memory_order_relaxed);
  }
  void ResetForTest();

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  std::array<Slot, detail::kShards> slots_{};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log-linear histogram, sharded by recording thread: Record()
/// is two relaxed fetch_adds (bucket + value sum) on this thread's shard.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    Shard& s = shards_[detail::ThreadShard() % kHistShards];
    s.buckets[hist::BucketIndex(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }
  /// Merged view across all shards.
  HistogramSnapshot Snapshot() const;
  /// One shard's view — exposed for the merge-associativity tests.
  HistogramSnapshot ShardSnapshot(unsigned shard) const;
  uint64_t Count() const { return Snapshot().total; }
  void ResetForTest();

  static constexpr unsigned kHistShards = 4;

 private:
  struct Shard {
    std::array<std::atomic<uint64_t>, hist::kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kHistShards> shards_{};
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// Accumulating sink collectors write named series into. Duplicate names
/// sum, so several instances of one subsystem (e.g. two engines) aggregate
/// into one process-wide series.
class SeriesSink {
 public:
  explicit SeriesSink(std::map<std::string, double>* out) : out_(out) {}
  void Add(std::string_view name, double value) {
    (*out_)[std::string(name)] += value;
  }

 private:
  std::map<std::string, double>* out_;
};

/// Point-in-time view of the whole registry: counters, gauges and collector
/// series flattened into one sorted series list, plus histogram snapshots.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> series;  ///< sorted by name
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;  ///< sorted

  /// Value of a series by exact name; `fallback` when absent.
  double SeriesValue(std::string_view name, double fallback = 0.0) const;
  bool HasSeries(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
};

/// The process-wide named metric directory. Lookup/registration takes a
/// mutex; call sites cache the returned pointer (stable for process life)
/// and never touch the lock again.
class Registry {
 public:
  static Registry& Get();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Registers a telemetry exporter invoked at Snapshot() time. The
  /// callback must not call back into the registry (the lock is held) and
  /// must be removed before whatever it captures is destroyed.
  int AddCollector(std::function<void(SeriesSink&)> collector);
  void RemoveCollector(int id);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every counter/gauge/histogram without deallocating anything:
  /// cached pointers at call sites stay valid. Collectors are untouched.
  void ZeroAllForTest();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  // Deques: grow-only, stable addresses.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  // Sorted name -> metric maps (heterogeneous lookup via std::less<>).
  std::map<std::string, Counter*, std::less<>> counter_names_;
  std::map<std::string, Gauge*, std::less<>> gauge_names_;
  std::map<std::string, Histogram*, std::less<>> histogram_names_;
  std::map<int, std::function<void(SeriesSink&)>> collectors_;
  int next_collector_id_ = 0;
};

}  // namespace qo::obs

#endif  // QO_OBS_METRICS_H_

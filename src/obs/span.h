// Scoped phase timers: QO_OBS_SPAN("compile") at the top of a scope records
// the scope's wall-clock into the registry histogram "span.compile" (and
// into the Chrome trace when QO_TRACE is set).
//
//   void Optimize(...) {
//     QO_OBS_SPAN("optimize");
//     ...
//   }
//
// Cost discipline: the macro materializes one function-local static
// SpanSite (name + lazily resolved histogram pointer, resolved once per
// site) and an RAII ScopedSpan. When metrics are off the constructor is a
// single branch on a cached bool and the destructor does nothing — spans
// compile down to a no-op dispatch check, never a lock or clock read.
// Timing is purely observational: span durations never feed back into any
// computation, so all outputs stay byte-identical with spans on or off.
//
// Sampling: QO_OBS_SAMPLE=N records only every Nth execution of each site
// (default 1 = every span). Compile-dominated workloads pay two clock
// reads plus a histogram lock per span in the memo search inner loops —
// ~6% of span_distribution wall-clock — while the span *distribution*
// is already converged after a fraction of the events. Sampling keeps the
// histograms statistically representative at 1/N the cost; skipped spans
// are a single relaxed counter increment. Per-site counters keep every
// site represented regardless of how unevenly sites fire.
#ifndef QO_OBS_SPAN_H_
#define QO_OBS_SPAN_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"

namespace qo::obs {

/// Process-wide span sampling period: QO_OBS_SAMPLE clamped to >= 1,
/// cached on first use (1 when unset). Test override wins over the env.
uint32_t SampleEvery();

/// Forces the sampling period (pass 0 to restore the env-derived value).
void SetSampleEveryForTest(uint32_t every);

/// One instrumented call site: the span name (a string literal) plus the
/// cached "span.<name>" histogram, resolved on first use. Safe to share
/// across threads (the duplicate-resolve race stores the same pointer).
class SpanSite {
 public:
  explicit constexpr SpanSite(const char* name) : name_(name) {}
  SpanSite(const SpanSite&) = delete;
  SpanSite& operator=(const SpanSite&) = delete;

  const char* name() const { return name_; }
  Histogram& hist();

  /// True when this execution of the site should be recorded: every Nth
  /// call per site under QO_OBS_SAMPLE=N. Exact under serial use; under
  /// concurrency the relaxed counter may record marginally more or fewer
  /// than 1/N, which is fine for an observational histogram.
  bool ShouldSample() {
    const uint32_t every = SampleEvery();
    if (every <= 1) return true;
    return calls_.fetch_add(1, std::memory_order_relaxed) % every == 0;
  }

 private:
  const char* name_;
  std::atomic<Histogram*> hist_{nullptr};
  std::atomic<uint32_t> calls_{0};
};

/// RAII timer over one site. Inert when metrics are disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site) {
    if (MetricsEnabled() && site.ShouldSample()) {
      site_ = &site;
      start_ns_ = MonotonicNowNs();
    }
  }
  ~ScopedSpan() {
    if (site_ != nullptr) Finish();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Finish();  // histogram record + optional trace event

  SpanSite* site_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace qo::obs

#define QO_OBS_SPAN_CAT2(a, b) a##b
#define QO_OBS_SPAN_CAT(a, b) QO_OBS_SPAN_CAT2(a, b)

/// Times the rest of the enclosing scope under "span.<name>". `name` must
/// be a string literal (it is stored by pointer for the process lifetime).
#define QO_OBS_SPAN(name)                                              \
  static ::qo::obs::SpanSite QO_OBS_SPAN_CAT(qo_obs_site_, __LINE__){  \
      name};                                                           \
  [[maybe_unused]] ::qo::obs::ScopedSpan QO_OBS_SPAN_CAT(              \
      qo_obs_scope_, __LINE__){QO_OBS_SPAN_CAT(qo_obs_site_, __LINE__)}

#endif  // QO_OBS_SPAN_H_

#include "obs/span.h"

#include <cstdlib>
#include <string>

#include "obs/trace.h"

namespace qo::obs {

namespace {

uint32_t SampleEveryFromEnv() {
  const char* v = std::getenv("QO_OBS_SAMPLE");
  if (v == nullptr) return 1;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 1 ? static_cast<uint32_t>(parsed) : 1;
}

std::atomic<uint32_t>& SampleOverride() {
  static std::atomic<uint32_t> override_state{0};
  return override_state;
}

}  // namespace

uint32_t SampleEvery() {
  const uint32_t forced = SampleOverride().load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const uint32_t from_env = SampleEveryFromEnv();
  return from_env;
}

void SetSampleEveryForTest(uint32_t every) {
  SampleOverride().store(every, std::memory_order_relaxed);
}

Histogram& SpanSite::hist() {
  Histogram* h = hist_.load(std::memory_order_acquire);
  if (h == nullptr) {
    h = &Registry::Get().histogram(std::string("span.") + name_);
    hist_.store(h, std::memory_order_release);  // benign race: same pointer
  }
  return *h;
}

void ScopedSpan::Finish() {
  const uint64_t end_ns = MonotonicNowNs();
  site_->hist().Record(end_ns >= start_ns_ ? end_ns - start_ns_ : 0);
  if (TraceEnabled()) {
    TraceRecordSpan(site_->name(), start_ns_, end_ns);
  }
}

}  // namespace qo::obs

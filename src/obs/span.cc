#include "obs/span.h"

#include <string>

#include "obs/trace.h"

namespace qo::obs {

Histogram& SpanSite::hist() {
  Histogram* h = hist_.load(std::memory_order_acquire);
  if (h == nullptr) {
    h = &Registry::Get().histogram(std::string("span.") + name_);
    hist_.store(h, std::memory_order_release);  // benign race: same pointer
  }
  return *h;
}

void ScopedSpan::Finish() {
  const uint64_t end_ns = MonotonicNowNs();
  site_->hist().Record(end_ns >= start_ns_ ? end_ns - start_ns_ : 0);
  if (TraceEnabled()) {
    TraceRecordSpan(site_->name(), start_ns_, end_ns);
  }
}

}  // namespace qo::obs

#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace qo::obs {

namespace {

struct TraceEvent {
  const char* name;  ///< span-site string literal (static storage)
  uint64_t start_ns;
  uint64_t dur_ns;
  uint32_t tid;
};

class Tracer {
 public:
  static Tracer& Get() {
    static Tracer* tracer = new Tracer();  // never destroyed
    return *tracer;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(const char* name, uint64_t start_ns, uint64_t end_ns) {
    const uint32_t tid = ThreadTraceId();
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_.load(std::memory_order_relaxed)) return;
    events_.push_back({name, start_ns - t0_ns_,
                       end_ns >= start_ns ? end_ns - start_ns : 0, tid});
  }

  bool Flush() {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty()) return false;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
    for (size_t i = 0; i < events_.size(); ++i) {
      const TraceEvent& ev = events_[i];
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"cat\":\"qo\",\"ph\":\"X\","
                   "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                   i == 0 ? "" : ",", ev.name, ev.tid,
                   static_cast<double>(ev.start_ns) / 1e3,
                   static_cast<double>(ev.dur_ns) / 1e3);
    }
    std::fputs("]}\n", f);
    std::fclose(f);
    return true;
  }

  void SetPath(const char* path) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    if (path == nullptr) {
      const char* env = std::getenv("QO_TRACE");
      path_ = env == nullptr ? "" : env;
    } else {
      path_ = path;
    }
    t0_ns_ = MonotonicNowNs();
    enabled_.store(!path_.empty(), std::memory_order_relaxed);
    ArmAtExit();
  }

  std::string path() const {
    std::lock_guard<std::mutex> lock(mu_);
    return path_;
  }

 private:
  Tracer() { SetPath(nullptr); }

  void ArmAtExit() {
    if (enabled_.load(std::memory_order_relaxed) && !atexit_armed_) {
      atexit_armed_ = true;
      std::atexit([] { FlushTraceNow(); });
    }
  }

  static uint32_t ThreadTraceId() {
    static std::atomic<uint32_t> next{1};
    thread_local const uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  bool atexit_armed_ = false;
  std::string path_;
  uint64_t t0_ns_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace

bool TraceEnabled() { return Tracer::Get().enabled() && MetricsEnabled(); }

void TraceRecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  Tracer& tracer = Tracer::Get();
  if (!tracer.enabled()) return;
  tracer.Record(name, start_ns, end_ns);
}

bool FlushTraceNow() { return Tracer::Get().Flush(); }

void SetTracePathForTest(const char* path) { Tracer::Get().SetPath(path); }

std::string TracePath() { return Tracer::Get().path(); }

}  // namespace qo::obs

#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace qo::obs {

namespace {

bool MetricsEnabledFromEnv() {
  const char* v = std::getenv("QO_METRICS");
  return v == nullptr || std::strcmp(v, "0") != 0;
}

std::atomic<int>& MetricsOverride() {
  static std::atomic<int> override_state{-1};
  return override_state;
}

}  // namespace

bool MetricsEnabled() {
  const int forced = MetricsOverride().load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = MetricsEnabledFromEnv();
  return from_env;
}

void SetMetricsEnabledForTest(int state) {
  MetricsOverride().store(state, std::memory_order_relaxed);
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace detail {

unsigned ThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

// --- HistogramSnapshot ------------------------------------------------------

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < hist::kNumBuckets; ++i) counts[i] += other.counts[i];
  total += other.total;
  sum += other.sum;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (total == 0) return 0;
  double want = q * static_cast<double>(total);
  uint64_t rank = static_cast<uint64_t>(want);
  if (static_cast<double>(rank) < want) ++rank;  // ceil
  rank = std::clamp<uint64_t>(rank, 1, total);
  uint64_t cum = 0;
  for (size_t i = 0; i < hist::kNumBuckets; ++i) {
    cum += counts[i];
    if (cum >= rank) return hist::BucketUpperBound(i);
  }
  return hist::BucketUpperBound(hist::kNumBuckets - 1);
}

uint64_t HistogramSnapshot::MaxValue() const {
  for (size_t i = hist::kNumBuckets; i > 0; --i) {
    if (counts[i - 1] != 0) return hist::BucketUpperBound(i - 1);
  }
  return 0;
}

// --- Counter / Histogram ----------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::ResetForTest() {
  for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (unsigned s = 0; s < kHistShards; ++s) snap.Merge(ShardSnapshot(s));
  return snap;
}

HistogramSnapshot Histogram::ShardSnapshot(unsigned shard) const {
  const Shard& s = shards_[shard % kHistShards];
  HistogramSnapshot snap;
  for (size_t i = 0; i < hist::kNumBuckets; ++i) {
    const uint64_t c = s.buckets[i].load(std::memory_order_relaxed);
    snap.counts[i] = c;
    snap.total += c;
  }
  snap.sum = s.sum.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::ResetForTest() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

// --- MetricsSnapshot --------------------------------------------------------

double MetricsSnapshot::SeriesValue(std::string_view name,
                                    double fallback) const {
  auto it = std::lower_bound(
      series.begin(), series.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != series.end() && it->first == name) return it->second;
  return fallback;
}

bool MetricsSnapshot::HasSeries(std::string_view name) const {
  auto it = std::lower_bound(
      series.begin(), series.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  return it != series.end() && it->first == name;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != histograms.end() && it->first == name) return &it->second;
  return nullptr;
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::Get() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_names_.find(name);
  if (it != counter_names_.end()) return *it->second;
  Counter& fresh = counters_.emplace_back();
  counter_names_.emplace(std::string(name), &fresh);
  return fresh;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_names_.find(name);
  if (it != gauge_names_.end()) return *it->second;
  Gauge& fresh = gauges_.emplace_back();
  gauge_names_.emplace(std::string(name), &fresh);
  return fresh;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_names_.find(name);
  if (it != histogram_names_.end()) return *it->second;
  Histogram& fresh = histograms_.emplace_back();
  histogram_names_.emplace(std::string(name), &fresh);
  return fresh;
}

int Registry::AddCollector(std::function<void(SeriesSink&)> collector) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_collector_id_++;
  collectors_.emplace(id, std::move(collector));
  return id;
}

void Registry::RemoveCollector(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> series;
  for (const auto& [name, counter] : counter_names_) {
    series[name] += static_cast<double>(counter->Value());
  }
  for (const auto& [name, gauge] : gauge_names_) {
    series[name] += gauge->Value();
  }
  SeriesSink sink(&series);
  for (const auto& [id, collector] : collectors_) collector(sink);

  MetricsSnapshot snap;
  snap.series.assign(series.begin(), series.end());
  snap.histograms.reserve(histogram_names_.size());
  for (const auto& [name, histogram] : histogram_names_) {
    snap.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snap;
}

void Registry::ZeroAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_) c.ResetForTest();
  for (Gauge& g : gauges_) g.ResetForTest();
  for (Histogram& h : histograms_) h.ResetForTest();
}

}  // namespace qo::obs

#include "obs/report.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace qo::obs {

namespace {

/// Shortest-round-trip-ish number formatting: integers print as integers
/// (series are mostly counters), everything else as %.10g.
void AppendNumber(std::string* out, double v) {
  char buf[48];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no NaN/Inf
  }
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendQuantiles(std::string* out, const HistogramSnapshot& h) {
  *out += "{\"count\":";
  AppendU64(out, h.total);
  *out += ",\"sum_ns\":";
  AppendU64(out, h.sum);
  *out += ",\"p50_ns\":";
  AppendU64(out, h.Quantile(0.50));
  *out += ",\"p95_ns\":";
  AppendU64(out, h.Quantile(0.95));
  *out += ",\"p99_ns\":";
  AppendU64(out, h.Quantile(0.99));
  *out += ",\"max_ns\":";
  AppendU64(out, h.MaxValue());
  *out += "}";
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RunReportJsonLine(std::string_view label, int day,
                              const MetricsSnapshot& snap) {
  std::string out = "{\"label\":\"";
  out += JsonEscape(label);
  out += "\",\"day\":";
  AppendNumber(&out, day);
  out += ",\"series\":{";
  bool first = true;
  for (const auto& [name, value] : snap.series) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(name);
    out += "\":";
    AppendNumber(&out, value);
  }
  out += "},\"quantiles\":{";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    if (hist.total == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(name);
    out += "\":";
    AppendQuantiles(&out, hist);
  }
  out += "}}";
  return out;
}

std::string RunReportText(const MetricsSnapshot& snap) {
  std::string out = "run report:\n";
  for (const auto& [name, value] : snap.series) {
    char line[192];
    if (value == std::floor(value) && std::fabs(value) < 9.007e15) {
      std::snprintf(line, sizeof(line), "  %-40s %.0f\n", name.c_str(), value);
    } else {
      std::snprintf(line, sizeof(line), "  %-40s %.4g\n", name.c_str(), value);
    }
    out += line;
  }
  for (const auto& [name, hist] : snap.histograms) {
    if (hist.total == 0) continue;
    char line[224];
    std::snprintf(line, sizeof(line),
                  "  %-40s count=%" PRIu64 " p50=%" PRIu64 "ns p95=%" PRIu64
                  "ns p99=%" PRIu64 "ns max=%" PRIu64 "ns\n",
                  name.c_str(), hist.total, hist.Quantile(0.50),
                  hist.Quantile(0.95), hist.Quantile(0.99), hist.MaxValue());
    out += line;
  }
  return out;
}

std::unique_ptr<RunReportWriter> RunReportWriter::FromEnv() {
  if (!MetricsEnabled()) return nullptr;
  const char* path = std::getenv("QO_OBS_REPORT");
  if (path == nullptr || path[0] == '\0') return nullptr;
  return std::make_unique<RunReportWriter>(path);
}

bool RunReportWriter::Append(std::string_view line) const {
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
      std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

std::string ObsLabelFromEnv(std::string_view fallback) {
  const char* label = std::getenv("QO_OBS_LABEL");
  if (label == nullptr || label[0] == '\0') return std::string(fallback);
  return label;
}

}  // namespace qo::obs

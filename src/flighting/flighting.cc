#include "flighting/flighting.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "obs/span.h"

namespace qo::flight {

namespace {

/// A provisional (speculative) flight: `ran` records whether engine time was
/// actually burned — and therefore reserved against the budget gate.
struct Provisional {
  FlightResult result;
  bool ran = false;
};

FlightResult BudgetRejected(const std::string& job_id) {
  FlightResult r;
  r.outcome = FlightOutcome::kBudgetRejected;
  r.job_id = job_id;
  return r;
}

}  // namespace

const char* FlightOutcomeToString(FlightOutcome o) {
  switch (o) {
    case FlightOutcome::kSuccess:
      return "success";
    case FlightOutcome::kFailure:
      return "failure";
    case FlightOutcome::kTimeout:
      return "timeout";
    case FlightOutcome::kFiltered:
      return "filtered";
    case FlightOutcome::kBudgetRejected:
      return "budget_rejected";
  }
  return "unknown";
}

FlightingService::FlightingService(const engine::ScopeEngine* engine,
                                   FlightingConfig config,
                                   runtime::ParallelRuntime* runtime,
                                   const guard::FaultInjector* injector)
    : engine_(engine),
      config_(config),
      runtime_(runtime),
      injector_(injector),
      gate_(config.total_budget_machine_hours) {}

FlightResult FlightingService::RunFlight(const FlightRequest& request,
                                         uint64_t run_salt) const {
  QO_OBS_SPAN("flight");
  FlightResult result;
  result.job_id = request.job.job_id;

  // Per-flight RNG: environmental outcomes depend only on (seed, run_salt),
  // never on how many flights ran before — the property that lets batches
  // fan out without reordering anyone else's draws.
  Rng rng(config_.seed + 0x9e3779b97f4a7c15ULL * (run_salt + 1));

  // Environmental failures happen before any machine time is spent. The
  // injected variety redraws per (job, salt), so a guard-layer retry under a
  // fresh salt can genuinely recover from a transient failure.
  if (injector_ != nullptr && injector_->armed() &&
      injector_->ShouldInject(guard::FaultSite::kFlightFailure,
                              request.job.day,
                              HashString(request.job.job_id) ^ run_salt)) {
    result.outcome = FlightOutcome::kFailure;
    result.fault_injected = true;
    return result;
  }
  if (rng.Bernoulli(config_.failure_prob)) {
    result.outcome = FlightOutcome::kFailure;
    return result;
  }
  if (rng.Bernoulli(config_.filtered_prob)) {
    result.outcome = FlightOutcome::kFiltered;
    return result;
  }

  auto base = engine_->Run(request.job, request.baseline, run_salt * 2 + 1);
  if (!base.ok()) {
    result.outcome = FlightOutcome::kFailure;
    return result;
  }
  auto cand = engine_->Run(request.job, request.candidate, run_salt * 2 + 2);
  if (!cand.ok()) {
    result.outcome = FlightOutcome::kFailure;
    return result;
  }
  result.baseline = base->metrics;
  result.candidate = cand->metrics;
  result.machine_hours = base->metrics.pn_hours + cand->metrics.pn_hours;

  double hours = std::max(base->metrics.latency_sec,
                          cand->metrics.latency_sec) /
                 3600.0;
  if (hours > config_.per_job_timeout_hours) {
    result.outcome = FlightOutcome::kTimeout;
    return result;
  }
  // Injected timeout storms: the arms ran (machine time was burned) but the
  // flight never reported back in time.
  if (injector_ != nullptr && injector_->armed() &&
      injector_->ShouldInject(guard::FaultSite::kFlightTimeout,
                              request.job.day,
                              HashString(request.job.job_id) ^ run_salt)) {
    result.outcome = FlightOutcome::kTimeout;
    result.fault_injected = true;
    return result;
  }
  result.outcome = FlightOutcome::kSuccess;
  result.pn_hours_delta =
      exec::RelativeDelta(cand->metrics.pn_hours, base->metrics.pn_hours);
  result.latency_delta =
      exec::RelativeDelta(cand->metrics.latency_sec, base->metrics.latency_sec);
  result.vertices_delta = exec::RelativeDelta(
      static_cast<double>(cand->metrics.vertices),
      static_cast<double>(base->metrics.vertices));
  result.data_read_delta = exec::RelativeDelta(
      cand->metrics.data_read_bytes, base->metrics.data_read_bytes);
  result.data_written_delta = exec::RelativeDelta(
      cand->metrics.data_written_bytes, base->metrics.data_written_bytes);
  return result;
}

Result<FlightResult> FlightingService::FlightOne(const FlightRequest& request,
                                                 uint64_t run_salt) {
  if (gate_.Exhausted()) {
    return Status::ResourceExhausted("flighting budget exhausted");
  }
  FlightResult result = RunFlight(request, run_salt);
  CountOutcome(result.outcome, result.fault_injected);
  if (result.outcome == FlightOutcome::kFailure ||
      result.outcome == FlightOutcome::kFiltered) {
    return result;  // no machine time consumed
  }
  // Legacy admission: the pre-check above gates entry, the actual hours land
  // here — the final flight may overshoot the cap by its own size.
  gate_.Spend(result.machine_hours);
  return result;
}

std::vector<FlightResult> FlightingService::FlightBatch(
    std::vector<FlightRequest> requests, uint64_t run_salt) {
  ++batches_;
  // Fixed-size queue: excess requests are dropped up front.
  if (requests.size() > config_.queue_capacity) {
    requests.resize(config_.queue_capacity);
  }
  // Most promising (lowest estimated-cost delta) first, so partial budget
  // still yields useful suggestions (Sec. 4.3).
  std::stable_sort(requests.begin(), requests.end(),
                   [](const FlightRequest& a, const FlightRequest& b) {
                     return a.est_cost_delta < b.est_cost_delta;
                   });
  const size_t n = requests.size();
  std::vector<FlightResult> results;
  results.reserve(n);

  // Worker side: speculative flights. Committed budget is monotone within a
  // batch, so once the gate is exhausted the in-order commit below is
  // certain to reject this request — skip the engine work entirely. Engine
  // hours burned speculatively are held as a reservation until settled.
  auto work = [&](size_t i) -> Provisional {
    Provisional p;
    if (gate_.Exhausted()) {
      p.result = BudgetRejected(requests[i].job.job_id);
      return p;
    }
    p.result = RunFlight(requests[i], run_salt + i);
    if (p.result.outcome == FlightOutcome::kSuccess ||
        p.result.outcome == FlightOutcome::kTimeout) {
      p.ran = true;
      gate_.Reserve(p.result.machine_hours);
    }
    return p;
  };

  // Commit side (calling thread, strict submission order): budget admission.
  // Mirrors FlightOne's ordering — budget pre-check first, then
  // environmental outcomes (which spend nothing), then strict admission of
  // the actual hours so committed spend never exceeds the cap.
  auto commit = [&](size_t i, Provisional&& p) {
    if (gate_.Exhausted()) {
      if (p.ran) gate_.Refund(p.result.machine_hours);
      results.push_back(BudgetRejected(requests[i].job.job_id));
      CountOutcome(FlightOutcome::kBudgetRejected);
      return;
    }
    if (!p.ran) {  // environmental failure or filtered: refunded up front
      CountOutcome(p.result.outcome, p.result.fault_injected);
      results.push_back(std::move(p.result));
      return;
    }
    if (!gate_.CommitReserved(p.result.machine_hours)) {
      // Admitting this flight would overspend the budget.
      results.push_back(BudgetRejected(requests[i].job.job_id));
      CountOutcome(FlightOutcome::kBudgetRejected);
      return;
    }
    CountOutcome(p.result.outcome, p.result.fault_injected);
    results.push_back(std::move(p.result));
  };

  runtime::ForEachOrdered<Provisional>(
      runtime_, n,
      [&](size_t i) {
        return static_cast<uint64_t>(requests[i].job.template_id);
      },
      // Queue priority = the request's cost delta, so dispatch against other
      // work sharing the pool also runs most-promising-first (ties fall back
      // to the sorted submission order).
      [&](size_t i) { return requests[i].est_cost_delta; }, work, commit);
  return results;
}

Result<std::vector<exec::JobMetrics>> FlightingService::RunAA(
    const workload::JobInstance& job, const opt::RuleConfig& config, int runs,
    uint64_t run_salt) {
  // Shared with the compilation cache: an A/A of a job the pipeline already
  // compiled pays no compile time at all. The batched ExecuteRuns likewise
  // shares one prepared execution profile across all A/A runs — only the
  // stochastic draws differ per run (paper Sec. 4.3).
  QO_ASSIGN_OR_RETURN(std::shared_ptr<const opt::CompilationOutput> compiled,
                      engine_->CompileShared(job, config));
  std::vector<exec::JobMetrics> metrics =
      engine_->ExecuteRuns(job, *compiled, run_salt * 1000, runs);
  for (const exec::JobMetrics& m : metrics) gate_.Spend(m.pn_hours);
  aa_runs_ += metrics.size();
  return metrics;
}

void FlightingService::CountOutcome(FlightOutcome outcome,
                                    bool fault_injected) {
  if (fault_injected) ++flights_fault_injected_;
  switch (outcome) {
    case FlightOutcome::kSuccess:
      ++flights_success_;
      break;
    case FlightOutcome::kFailure:
      ++flights_failure_;
      break;
    case FlightOutcome::kTimeout:
      ++flights_timeout_;
      break;
    case FlightOutcome::kFiltered:
      ++flights_filtered_;
      break;
    case FlightOutcome::kBudgetRejected:
      ++flights_budget_rejected_;
      break;
  }
}

telemetry::FlightTelemetry FlightingService::telemetry() const {
  telemetry::FlightTelemetry t;
  t.flights_success = flights_success_;
  t.flights_failure = flights_failure_;
  // Legacy total: per-job timeouts and budget rejections were one counter
  // before the outcomes were split; the snapshot keeps the sum stable and
  // exposes the split alongside.
  t.flights_timeout = flights_timeout_ + flights_budget_rejected_;
  t.flights_timeout_per_job = flights_timeout_;
  t.flights_budget_rejected = flights_budget_rejected_;
  t.flights_fault_injected = flights_fault_injected_;
  t.flights_filtered = flights_filtered_;
  t.batches = batches_;
  t.aa_runs = aa_runs_;
  t.budget_used_hours = gate_.committed();
  t.budget_total_hours = config_.total_budget_machine_hours;
  return t;
}

}  // namespace qo::flight

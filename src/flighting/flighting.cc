#include "flighting/flighting.h"

#include <algorithm>

namespace qo::flight {

const char* FlightOutcomeToString(FlightOutcome o) {
  switch (o) {
    case FlightOutcome::kSuccess:
      return "success";
    case FlightOutcome::kFailure:
      return "failure";
    case FlightOutcome::kTimeout:
      return "timeout";
    case FlightOutcome::kFiltered:
      return "filtered";
  }
  return "unknown";
}

FlightingService::FlightingService(const engine::ScopeEngine* engine,
                                   FlightingConfig config)
    : engine_(engine), config_(config), rng_(config.seed) {}

Result<FlightResult> FlightingService::FlightOne(const FlightRequest& request,
                                                 uint64_t run_salt) {
  if (budget_used_hours_ >= config_.total_budget_machine_hours) {
    return Status::ResourceExhausted("flighting budget exhausted");
  }
  FlightResult result;
  result.job_id = request.job.job_id;

  // Environmental failures happen before any machine time is spent.
  if (rng_.Bernoulli(config_.failure_prob)) {
    result.outcome = FlightOutcome::kFailure;
    return result;
  }
  if (rng_.Bernoulli(config_.filtered_prob)) {
    result.outcome = FlightOutcome::kFiltered;
    return result;
  }

  auto base = engine_->Run(request.job, request.baseline, run_salt * 2 + 1);
  if (!base.ok()) {
    result.outcome = FlightOutcome::kFailure;
    return result;
  }
  auto cand = engine_->Run(request.job, request.candidate, run_salt * 2 + 2);
  if (!cand.ok()) {
    result.outcome = FlightOutcome::kFailure;
    return result;
  }
  result.baseline = base->metrics;
  result.candidate = cand->metrics;
  result.machine_hours =
      base->metrics.pn_hours + cand->metrics.pn_hours;
  budget_used_hours_ += result.machine_hours;

  double hours = std::max(base->metrics.latency_sec,
                          cand->metrics.latency_sec) /
                 3600.0;
  if (hours > config_.per_job_timeout_hours) {
    result.outcome = FlightOutcome::kTimeout;
    return result;
  }
  result.outcome = FlightOutcome::kSuccess;
  result.pn_hours_delta =
      exec::RelativeDelta(cand->metrics.pn_hours, base->metrics.pn_hours);
  result.latency_delta =
      exec::RelativeDelta(cand->metrics.latency_sec, base->metrics.latency_sec);
  result.vertices_delta = exec::RelativeDelta(
      static_cast<double>(cand->metrics.vertices),
      static_cast<double>(base->metrics.vertices));
  result.data_read_delta = exec::RelativeDelta(
      cand->metrics.data_read_bytes, base->metrics.data_read_bytes);
  result.data_written_delta = exec::RelativeDelta(
      cand->metrics.data_written_bytes, base->metrics.data_written_bytes);
  return result;
}

std::vector<FlightResult> FlightingService::FlightBatch(
    std::vector<FlightRequest> requests, uint64_t run_salt) {
  // Fixed-size queue: excess requests are dropped up front.
  if (requests.size() > config_.queue_capacity) {
    requests.resize(config_.queue_capacity);
  }
  // Most promising (lowest estimated-cost delta) first, so partial budget
  // still yields useful suggestions (Sec. 4.3).
  std::stable_sort(requests.begin(), requests.end(),
                   [](const FlightRequest& a, const FlightRequest& b) {
                     return a.est_cost_delta < b.est_cost_delta;
                   });
  std::vector<FlightResult> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto r = FlightOne(requests[i], run_salt + i);
    if (!r.ok()) {
      // Budget exhausted: everything left reports as timeout.
      FlightResult timed_out;
      timed_out.outcome = FlightOutcome::kTimeout;
      timed_out.job_id = requests[i].job.job_id;
      results.push_back(std::move(timed_out));
      continue;
    }
    results.push_back(std::move(r).value());
  }
  return results;
}

Result<std::vector<exec::JobMetrics>> FlightingService::RunAA(
    const workload::JobInstance& job, const opt::RuleConfig& config, int runs,
    uint64_t run_salt) {
  QO_ASSIGN_OR_RETURN(opt::CompilationOutput compiled,
                      engine_->Compile(job, config));
  std::vector<exec::JobMetrics> metrics;
  metrics.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    exec::JobMetrics m =
        engine_->Execute(job, compiled.plan, run_salt * 1000 + i);
    budget_used_hours_ += m.pn_hours;
    metrics.push_back(m);
  }
  return metrics;
}

}  // namespace qo::flight

// The SCOPE Flighting Service simulator: pre-production A/B (and A/A) runs
// under a constrained budget (paper Secs. 2.1 and 4.3).
//
// Jobs are flighted through a fixed-size queue; each flight re-runs the job
// with the default and the candidate configuration and reports metric
// deltas. The service enforces:
//   (1) a per-job flighting timeout,
//   (2) a total machine-hour budget,
//   (3) the four paper outcomes: failure (e.g. expired inputs), timeout,
//       filtered (unsupported job classes), success.
//
// FlightBatch has an asynchronous path: when constructed with a
// ParallelRuntime, the A/B flights fan out across the pool (sharded by
// template id) while budget admission happens at an ordered commit on the
// calling thread. Each flight's environmental draws come from a per-flight
// RNG derived from (config.seed, run_salt), so a flight is a pure function
// of its request — parallel batches are byte-identical to serial ones.
#ifndef QO_FLIGHTING_FLIGHTING_H_
#define QO_FLIGHTING_FLIGHTING_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/engine.h"
#include "exec/metrics.h"
#include "guard/fault_injector.h"
#include "optimizer/rules.h"
#include "runtime/budget_gate.h"
#include "runtime/runtime.h"
#include "telemetry/flight_telemetry.h"
#include "workload/template_gen.h"

namespace qo::flight {

enum class FlightOutcome {
  kSuccess,
  kFailure,         ///< job information or input data expired
  kTimeout,         ///< exceeded the per-job flighting time cap
  kFiltered,        ///< job class not supported by the service
  kBudgetRejected,  ///< never admitted: the machine-hour budget ran out
};

const char* FlightOutcomeToString(FlightOutcome o);

/// One flighting request: re-run `job` under baseline vs candidate configs.
struct FlightRequest {
  workload::JobInstance job;
  opt::RuleConfig baseline = opt::RuleConfig::Default();
  opt::RuleConfig candidate = opt::RuleConfig::Default();
  /// Estimated-cost delta from recompilation; used for priority ordering
  /// (lower first) by the pipeline.
  double est_cost_delta = 0.0;
};

/// Result of one A/B flight.
struct FlightResult {
  FlightOutcome outcome = FlightOutcome::kFailure;
  std::string job_id;
  exec::JobMetrics baseline;
  exec::JobMetrics candidate;
  // Relative deltas (candidate/baseline - 1); valid only on success.
  double pn_hours_delta = 0.0;
  double latency_delta = 0.0;
  double vertices_delta = 0.0;
  double data_read_delta = 0.0;
  double data_written_delta = 0.0;
  /// Machine-hours consumed by this flight (both arms).
  double machine_hours = 0.0;
  /// True when the outcome was forced by the fault injector (chaos runs).
  bool fault_injected = false;
};

struct FlightingConfig {
  size_t queue_capacity = 64;     ///< max requests accepted per batch
  double per_job_timeout_hours = 24.0;
  double total_budget_machine_hours = 2000.0;
  double failure_prob = 0.04;
  double filtered_prob = 0.03;
  uint64_t seed = 31;
};

/// The flighting service. Holds a reference to the engine (pre-production
/// cluster); each batch is processed in priority order until the machine-
/// hour budget runs out.
class FlightingService {
 public:
  /// `runtime` may be null (serial). The service does not own it.
  /// `injector` (not owned, may be null) adds deterministic flight-level
  /// faults: environment failures before any machine time is spent, and
  /// per-job timeouts after the arms ran. Decisions are pure per
  /// (job, run_salt), so chaos batches stay byte-identical at any thread
  /// count — and a retry under a fresh salt redraws its fate.
  FlightingService(const engine::ScopeEngine* engine,
                   FlightingConfig config = {},
                   runtime::ParallelRuntime* runtime = nullptr,
                   const guard::FaultInjector* injector = nullptr);

  /// Flights one request now (ignores the queue; still consumes budget).
  /// ResourceExhausted when the budget is already spent. Legacy admission:
  /// the pre-check may let the final flight overshoot the budget cap.
  Result<FlightResult> FlightOne(const FlightRequest& request,
                                 uint64_t run_salt);

  /// Accepts up to queue_capacity requests, orders them by estimated-cost
  /// delta (most promising first, Sec. 4.3), and flights until the machine-
  /// hour budget runs out; requests that never ran report kBudgetRejected.
  /// Flights
  /// fan out across the runtime's pool when one is attached; admission is
  /// decided at an ordered commit, so results are byte-identical for any
  /// thread count and committed spend never exceeds the budget.
  std::vector<FlightResult> FlightBatch(std::vector<FlightRequest> requests,
                                        uint64_t run_salt);

  /// Runs the same configuration `runs` times (A/A testing, Sec. 5.1).
  Result<std::vector<exec::JobMetrics>> RunAA(
      const workload::JobInstance& job, const opt::RuleConfig& config,
      int runs, uint64_t run_salt);

  double budget_used_hours() const { return gate_.committed(); }
  double budget_remaining_hours() const {
    return config_.total_budget_machine_hours - gate_.committed();
  }
  void ResetBudget() { gate_.Reset(); }

  const FlightingConfig& config() const { return config_; }
  const runtime::BudgetGate& budget_gate() const { return gate_; }

  /// Snapshot of committed outcome counts and budget health. Counted at the
  /// serial commit points (FlightOne / the batch commit / RunAA), so
  /// speculative flights refunded by budget admission are not included.
  telemetry::FlightTelemetry telemetry() const;

 private:
  /// The pure flight computation: environmental draws + both engine arms,
  /// no budget interaction. Thread-safety: const and deterministic per
  /// (request, run_salt) — safe to call concurrently.
  FlightResult RunFlight(const FlightRequest& request,
                         uint64_t run_salt) const;

  /// Commit-side outcome bookkeeping (calling thread only).
  void CountOutcome(FlightOutcome outcome, bool fault_injected = false);

  const engine::ScopeEngine* engine_;
  FlightingConfig config_;
  runtime::ParallelRuntime* runtime_;
  const guard::FaultInjector* injector_;
  runtime::BudgetGate gate_;
  // Mutated only on the service's calling thread (the batch commit runs
  // there), so plain integers suffice.
  uint64_t flights_success_ = 0;
  uint64_t flights_failure_ = 0;
  uint64_t flights_timeout_ = 0;
  uint64_t flights_filtered_ = 0;
  uint64_t flights_budget_rejected_ = 0;
  uint64_t flights_fault_injected_ = 0;
  uint64_t batches_ = 0;
  uint64_t aa_runs_ = 0;
};

}  // namespace qo::flight

#endif  // QO_FLIGHTING_FLIGHTING_H_

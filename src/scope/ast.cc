#include "scope/ast.h"

namespace qo::scope {

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "";
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Predicate::ToString() const {
  return column + " " + CompareOpToString(op) + " " + literal;
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (agg != AggFunc::kNone) {
    return std::string(AggFuncToString(agg)) + "_" + column;
  }
  return column;
}

Symbol OutputSymOf(const SelectItem& item) {
  return item.out_sym != kNoSymbol ? item.out_sym : Sym(item.OutputName());
}

std::string SelectItem::ToString() const {
  std::string out;
  if (agg != AggFunc::kNone) {
    out = std::string(AggFuncToString(agg)) + "(" + column + ")";
  } else {
    out = column;
  }
  if (!alias.empty()) {
    out += " AS ";
    out += alias;
  }
  return out;
}

}  // namespace qo::scope

#include "scope/logical_plan.h"

#include <functional>

namespace qo::scope {

const char* LogicalOpKindToString(LogicalOpKind k) {
  switch (k) {
    case LogicalOpKind::kScan:
      return "Scan";
    case LogicalOpKind::kFilter:
      return "Filter";
    case LogicalOpKind::kProject:
      return "Project";
    case LogicalOpKind::kJoin:
      return "Join";
    case LogicalOpKind::kAggregate:
      return "Aggregate";
    case LogicalOpKind::kUnionAll:
      return "UnionAll";
    case LogicalOpKind::kOutput:
      return "Output";
  }
  return "Unknown";
}

void InternSelectItem(SelectItem* item) {
  item->column_sym = Sym(item->column);
  item->alias_sym = Sym(item->alias);
  // OutputName() is alias / "AGG_column" / column; precompute its id so the
  // optimizer's name matching is a single integer compare.
  item->out_sym =
      item->alias.empty() && item->agg != AggFunc::kNone
          ? Sym(item->OutputName())
          : (item->alias.empty() ? item->column_sym : item->alias_sym);
}

void InternPlanSymbols(LogicalPlan* plan) {
  if (plan->symbols_interned) return;
  for (LogicalNode& n : plan->nodes) {
    n.table_sym = Sym(n.table_path);
    n.left_key_sym = Sym(n.left_key);
    n.right_key_sym = Sym(n.right_key);
    n.group_by_syms.clear();
    n.group_by_syms.reserve(n.group_by.size());
    for (const std::string& g : n.group_by) n.group_by_syms.push_back(Sym(g));
    for (Column& c : n.schema.columns) c.sym = Sym(c.name);
    for (Predicate& p : n.predicates) {
      p.column_sym = Sym(p.column);
      p.literal_sym = Sym(p.literal);
    }
    for (SelectItem& item : n.projections) InternSelectItem(&item);
  }
  plan->symbols_interned = true;
}

std::vector<int> LogicalPlan::FanOut() const {
  std::vector<int> fan(nodes.size(), 0);
  for (const auto& n : nodes) {
    for (int c : n.children) ++fan[c];
  }
  return fan;
}

std::string LogicalPlan::ToString() const {
  std::string out;
  std::function<void(int, int)> dump = [&](int id, int depth) {
    const LogicalNode& n = nodes[id];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += LogicalOpKindToString(n.kind);
    out += '#';
    out += std::to_string(n.id);
    switch (n.kind) {
      case LogicalOpKind::kScan:
        out += ' ';
        out += n.table_path;
        break;
      case LogicalOpKind::kFilter: {
        out += " [";
        for (size_t i = 0; i < n.predicates.size(); ++i) {
          if (i > 0) out += " AND ";
          out += n.predicates[i].ToString();
        }
        out += "]";
        break;
      }
      case LogicalOpKind::kJoin:
        out += " on ";
        out += n.left_key;
        out += "==";
        out += n.right_key;
        break;
      case LogicalOpKind::kAggregate: {
        out += " by(";
        for (size_t i = 0; i < n.group_by.size(); ++i) {
          if (i > 0) out += ",";
          out += n.group_by[i];
        }
        out += ")";
        break;
      }
      case LogicalOpKind::kOutput:
        out += " -> ";
        out += n.output_path;
        break;
      default:
        break;
    }
    out += "\n";
    for (int c : n.children) dump(c, depth + 1);
  };
  for (int r : roots) dump(r, 0);
  return out;
}

}  // namespace qo::scope

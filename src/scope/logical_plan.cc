#include "scope/logical_plan.h"

#include <functional>

namespace qo::scope {

const char* LogicalOpKindToString(LogicalOpKind k) {
  switch (k) {
    case LogicalOpKind::kScan:
      return "Scan";
    case LogicalOpKind::kFilter:
      return "Filter";
    case LogicalOpKind::kProject:
      return "Project";
    case LogicalOpKind::kJoin:
      return "Join";
    case LogicalOpKind::kAggregate:
      return "Aggregate";
    case LogicalOpKind::kUnionAll:
      return "UnionAll";
    case LogicalOpKind::kOutput:
      return "Output";
  }
  return "Unknown";
}

std::vector<int> LogicalPlan::FanOut() const {
  std::vector<int> fan(nodes.size(), 0);
  for (const auto& n : nodes) {
    for (int c : n.children) ++fan[c];
  }
  return fan;
}

std::string LogicalPlan::ToString() const {
  std::string out;
  std::function<void(int, int)> dump = [&](int id, int depth) {
    const LogicalNode& n = nodes[id];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += LogicalOpKindToString(n.kind);
    out += '#';
    out += std::to_string(n.id);
    switch (n.kind) {
      case LogicalOpKind::kScan:
        out += ' ';
        out += n.table_path;
        break;
      case LogicalOpKind::kFilter: {
        out += " [";
        for (size_t i = 0; i < n.predicates.size(); ++i) {
          if (i > 0) out += " AND ";
          out += n.predicates[i].ToString();
        }
        out += "]";
        break;
      }
      case LogicalOpKind::kJoin:
        out += " on ";
        out += n.left_key;
        out += "==";
        out += n.right_key;
        break;
      case LogicalOpKind::kAggregate: {
        out += " by(";
        for (size_t i = 0; i < n.group_by.size(); ++i) {
          if (i > 0) out += ",";
          out += n.group_by[i];
        }
        out += ")";
        break;
      }
      case LogicalOpKind::kOutput:
        out += " -> ";
        out += n.output_path;
        break;
      default:
        break;
    }
    out += "\n";
    for (int c : n.children) dump(c, depth + 1);
  };
  for (int r : roots) dump(r, 0);
  return out;
}

}  // namespace qo::scope

#include "scope/parser.h"

#include <cstdlib>

#include "scope/lexer.h"

namespace qo::scope {

namespace {

/// Token cursor with error helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Script> Parse() {
    Script script;
    while (!Peek().IsEnd()) {
      auto stmt = ParseStatement();
      if (!stmt.ok()) return stmt.status();
      script.statements.push_back(std::move(stmt).value());
    }
    if (script.statements.empty()) {
      return Status::ParseError("empty script");
    }
    return script;
  }

 private:
  struct TokenView {
    const Token* t;
    bool IsEnd() const { return t->kind == TokenKind::kEnd; }
  };

  TokenView Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return TokenView{&tokens_[idx]};
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool MatchSymbol(const char* sym) {
    if (Peek().t->IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(const char* kw) {
    if (Peek().t->IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const char* sym) {
    if (!MatchSymbol(sym)) {
      return Errorf(std::string("expected '") + sym + "'");
    }
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Errorf(std::string("expected ") + kw);
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().t->kind != TokenKind::kIdentifier) {
      return Errorf("expected identifier");
    }
    return Advance().text;
  }
  Result<std::string> ExpectString() {
    if (Peek().t->kind != TokenKind::kString) {
      return Errorf("expected string literal");
    }
    return Advance().text;
  }

  Status Errorf(const std::string& msg) {
    return Status::ParseError(msg + " at line " +
                              std::to_string(Peek().t->line) + " (got '" +
                              Peek().t->text + "')");
  }

  Result<Statement> ParseStatement() {
    Statement stmt;
    stmt.line = Peek().t->line;
    if (Peek().t->IsKeyword("OUTPUT")) {
      Advance();
      stmt.kind = StatementKind::kOutput;
      QO_ASSIGN_OR_RETURN(stmt.output.source, ExpectIdentifier());
      QO_RETURN_IF_ERROR(ExpectKeyword("TO"));
      QO_ASSIGN_OR_RETURN(stmt.output.output_path, ExpectString());
      QO_RETURN_IF_ERROR(ExpectSymbol(";"));
      return stmt;
    }
    // Assignment forms: target = EXTRACT ... | SELECT ... | src UNION ALL src
    QO_ASSIGN_OR_RETURN(std::string target, ExpectIdentifier());
    QO_RETURN_IF_ERROR(ExpectSymbol("="));
    if (Peek().t->IsKeyword("EXTRACT")) {
      Advance();
      stmt.kind = StatementKind::kExtract;
      stmt.extract.target = target;
      QO_RETURN_IF_ERROR(ParseExtractColumns(&stmt.extract.columns));
      QO_RETURN_IF_ERROR(ExpectKeyword("FROM"));
      QO_ASSIGN_OR_RETURN(stmt.extract.input_path, ExpectString());
      QO_RETURN_IF_ERROR(ExpectSymbol(";"));
      return stmt;
    }
    if (Peek().t->IsKeyword("SELECT")) {
      Advance();
      stmt.kind = StatementKind::kSelect;
      stmt.select.target = target;
      QO_RETURN_IF_ERROR(ParseSelectBody(&stmt.select));
      QO_RETURN_IF_ERROR(ExpectSymbol(";"));
      return stmt;
    }
    if (Peek().t->kind == TokenKind::kIdentifier) {
      // rs = left UNION ALL right;
      stmt.kind = StatementKind::kUnion;
      stmt.union_stmt.target = target;
      QO_ASSIGN_OR_RETURN(stmt.union_stmt.left, ExpectIdentifier());
      QO_RETURN_IF_ERROR(ExpectKeyword("UNION"));
      QO_RETURN_IF_ERROR(ExpectKeyword("ALL"));
      QO_ASSIGN_OR_RETURN(stmt.union_stmt.right, ExpectIdentifier());
      QO_RETURN_IF_ERROR(ExpectSymbol(";"));
      return stmt;
    }
    return Errorf("expected EXTRACT, SELECT or rowset name");
  }

  Status ParseExtractColumns(std::vector<Column>* out) {
    while (true) {
      auto name = ExpectIdentifier();
      if (!name.ok()) return name.status();
      QO_RETURN_IF_ERROR(ExpectSymbol(":"));
      auto type_name = ExpectIdentifier();
      if (!type_name.ok()) return type_name.status();
      Column col;
      col.name = std::move(name).value();
      if (!ParseColumnType(type_name.value(), &col.type)) {
        return Errorf("unknown type '" + type_name.value() + "'");
      }
      out->push_back(std::move(col));
      if (!MatchSymbol(",")) break;
    }
    if (out->empty()) return Errorf("EXTRACT requires at least one column");
    return Status::OK();
  }

  Status ParseSelectBody(SelectStatement* sel) {
    // Select list.
    while (true) {
      SelectItem item;
      if (MatchSymbol("*")) {
        item.column = "*";
      } else {
        auto word = ExpectIdentifier();
        if (!word.ok()) return word.status();
        std::string text = std::move(word).value();
        AggFunc agg;
        if (IsAggName(text, &agg) && Peek().t->IsSymbol("(")) {
          Advance();  // (
          item.agg = agg;
          if (MatchSymbol("*")) {
            item.column = "*";
          } else {
            QO_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
          }
          QO_RETURN_IF_ERROR(ExpectSymbol(")"));
        } else {
          item.column = text;
        }
      }
      if (MatchKeyword("AS")) {
        QO_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      }
      sel->items.push_back(std::move(item));
      if (!MatchSymbol(",")) break;
    }
    QO_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    QO_ASSIGN_OR_RETURN(sel->from, ExpectIdentifier());
    // Joins.
    while (MatchKeyword("JOIN")) {
      JoinClause jc;
      QO_ASSIGN_OR_RETURN(jc.rowset, ExpectIdentifier());
      QO_RETURN_IF_ERROR(ExpectKeyword("ON"));
      QO_ASSIGN_OR_RETURN(jc.left_column, ExpectIdentifier());
      QO_RETURN_IF_ERROR(ExpectSymbol("=="));
      QO_ASSIGN_OR_RETURN(jc.right_column, ExpectIdentifier());
      if (MatchSymbol("@")) {
        if (Peek().t->kind != TokenKind::kNumber) {
          return Errorf("expected fanout number after '@'");
        }
        jc.true_fanout = std::strtod(Advance().text.c_str(), nullptr);
        if (jc.true_fanout < 0.0) {
          return Errorf("join fanout must be non-negative");
        }
      }
      sel->joins.push_back(std::move(jc));
    }
    // WHERE conjuncts.
    if (MatchKeyword("WHERE")) {
      while (true) {
        Predicate pred;
        QO_ASSIGN_OR_RETURN(pred.column, ExpectIdentifier());
        QO_RETURN_IF_ERROR(ParseCompareOp(&pred.op));
        QO_RETURN_IF_ERROR(ParseLiteral(&pred.literal));
        if (MatchSymbol("@")) {
          if (Peek().t->kind != TokenKind::kNumber) {
            return Errorf("expected selectivity number after '@'");
          }
          pred.true_selectivity = std::strtod(Advance().text.c_str(), nullptr);
          if (pred.true_selectivity < 0.0 || pred.true_selectivity > 1.0) {
            return Errorf("selectivity must be within [0, 1]");
          }
        }
        sel->where.push_back(std::move(pred));
        if (!MatchKeyword("AND")) break;
      }
    }
    // GROUP BY.
    if (MatchKeyword("GROUP")) {
      QO_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        QO_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        sel->group_by.push_back(std::move(col));
        if (!MatchSymbol(",")) break;
      }
    }
    return Status::OK();
  }

  Status ParseCompareOp(CompareOp* op) {
    const Token& t = *Peek().t;
    if (t.kind != TokenKind::kSymbol) return Errorf("expected comparison");
    if (t.text == "==") {
      *op = CompareOp::kEq;
    } else if (t.text == "!=") {
      *op = CompareOp::kNe;
    } else if (t.text == "<") {
      *op = CompareOp::kLt;
    } else if (t.text == "<=") {
      *op = CompareOp::kLe;
    } else if (t.text == ">") {
      *op = CompareOp::kGt;
    } else if (t.text == ">=") {
      *op = CompareOp::kGe;
    } else {
      return Errorf("expected comparison operator");
    }
    Advance();
    return Status::OK();
  }

  Status ParseLiteral(std::string* out) {
    const Token& t = *Peek().t;
    if (t.kind == TokenKind::kNumber || t.kind == TokenKind::kString ||
        t.kind == TokenKind::kIdentifier) {
      *out = Advance().text;
      return Status::OK();
    }
    return Errorf("expected literal");
  }

  static bool IsAggName(const std::string& word, AggFunc* out) {
    std::string upper;
    for (char c : word) {
      upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    if (upper == "SUM") {
      *out = AggFunc::kSum;
    } else if (upper == "COUNT") {
      *out = AggFunc::kCount;
    } else if (upper == "MIN") {
      *out = AggFunc::kMin;
    } else if (upper == "MAX") {
      *out = AggFunc::kMax;
    } else if (upper == "AVG") {
      *out = AggFunc::kAvg;
    } else {
      return false;
    }
    return true;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Script> ParseScript(const std::string& source) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace qo::scope

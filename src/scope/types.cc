#include "scope/types.h"

namespace qo::scope {

const char* ColumnTypeToString(ColumnType t) {
  switch (t) {
    case ColumnType::kInt:
      return "int";
    case ColumnType::kLong:
      return "long";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
    case ColumnType::kBool:
      return "bool";
  }
  return "unknown";
}

bool ParseColumnType(const std::string& name, ColumnType* out) {
  if (name == "int") {
    *out = ColumnType::kInt;
  } else if (name == "long") {
    *out = ColumnType::kLong;
  } else if (name == "double") {
    *out = ColumnType::kDouble;
  } else if (name == "string") {
    *out = ColumnType::kString;
  } else if (name == "bool") {
    *out = ColumnType::kBool;
  } else {
    return false;
  }
  return true;
}

int ColumnTypeWidth(ColumnType t) {
  switch (t) {
    case ColumnType::kInt:
      return 4;
    case ColumnType::kLong:
      return 8;
    case ColumnType::kDouble:
      return 8;
    case ColumnType::kString:
      return 24;
    case ColumnType::kBool:
      return 1;
  }
  return 8;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].name;
    out += ":";
    out += ColumnTypeToString(columns[i].type);
  }
  out += ")";
  return out;
}

}  // namespace qo::scope

// Tokenizer for the SCOPE-like scripting language.
#ifndef QO_SCOPE_LEXER_H_
#define QO_SCOPE_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace qo::scope {

enum class TokenKind {
  kIdentifier,
  kKeyword,
  kNumber,
  kString,   ///< double-quoted literal, value stored without quotes
  kSymbol,   ///< one of = == != < <= > >= , ; ( ) : * @
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 1;

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return kind == TokenKind::kSymbol && text == sym;
  }
};

/// Tokenizes `source`. Keywords are case-insensitive and normalized to upper
/// case; identifiers keep their original case. `--` starts a line comment.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace qo::scope

#endif  // QO_SCOPE_LEXER_H_

// Abstract syntax tree for the SCOPE-like scripting language.
//
// A script ("job") is a sequence of statements. Rowset-producing statements
// bind a name that later statements can reference, which is how multiple SQL
// statements are stitched into a single operator DAG by the compiler.
//
// Grammar sketch (see parser.cc for the full recursive-descent grammar):
//
//   script     := statement+
//   statement  := extract | assign | output
//   extract    := id '=' 'EXTRACT' cols 'FROM' string ';'
//   assign     := id '=' select ';'
//   select     := 'SELECT' selectList 'FROM' source (join)* (where)?
//                 (groupBy)? | source 'UNION' 'ALL' source
//   output     := 'OUTPUT' id 'TO' string ';'
#ifndef QO_SCOPE_AST_H_
#define QO_SCOPE_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "scope/types.h"

namespace qo::scope {

/// Aggregate functions available in the select list.
enum class AggFunc {
  kNone,  ///< plain column reference / expression
  kSum,
  kCount,
  kMin,
  kMax,
  kAvg,
};

const char* AggFuncToString(AggFunc f);

/// Comparison operators usable in WHERE predicates and join conditions.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpToString(CompareOp op);

/// A single conjunct `column <op> literal` in a WHERE clause. Literal is kept
/// as text plus an optional selectivity annotation: the synthetic workload
/// generator knows the ground-truth selectivity of each predicate and embeds
/// it as `@sel` so the execution simulator can compute true cardinalities
/// while the optimizer only sees estimated statistics.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  std::string literal;
  /// Ground-truth fraction of rows passing; < 0 means unknown (the simulator
  /// falls back to catalog heuristics).
  double true_selectivity = -1.0;
  /// Interned ids of column/literal; filled by InternPlanSymbols.
  Symbol column_sym = kNoSymbol;
  Symbol literal_sym = kNoSymbol;

  std::string ToString() const;
};

/// One item of a SELECT list: optional aggregate over a column, with an
/// optional output alias. `column == "*"` with kNone denotes "all columns";
/// `column == "*"` with kCount denotes COUNT(*).
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  std::string column;
  std::string alias;  ///< empty = inherit column name
  /// Interned ids (InternPlanSymbols): `column`, `alias` (empty -> kSymEmpty)
  /// and the precomputed OutputName(), so hot-path name matching is an
  /// integer compare.
  Symbol column_sym = kNoSymbol;
  Symbol alias_sym = kNoSymbol;
  Symbol out_sym = kNoSymbol;

  std::string OutputName() const;
  std::string ToString() const;
};

/// Lazy-intern accessors: use the precomputed id when the intern pass ran,
/// otherwise fall back to interning the string (hand-built AST in tests).
inline Symbol ColumnSymOf(const SelectItem& item) {
  return item.column_sym != kNoSymbol ? item.column_sym : Sym(item.column);
}
Symbol OutputSymOf(const SelectItem& item);  // intern of OutputName()
inline Symbol ColumnSymOf(const Predicate& pred) {
  return pred.column_sym != kNoSymbol ? pred.column_sym : Sym(pred.column);
}

/// Equi-join clause: `JOIN <rowset> ON <left_col> == <right_col> [@ fanout]`.
/// The optional `@ fanout` annotation records the ground-truth join fanout
/// (output rows per left input row) for the execution simulator; the
/// optimizer never reads it. Default 1.0 models a foreign-key join.
struct JoinClause {
  std::string rowset;
  std::string left_column;
  std::string right_column;
  double true_fanout = 1.0;
};

/// Statement kinds.
enum class StatementKind {
  kExtract,
  kSelect,
  kUnion,
  kOutput,
};

/// `rs = EXTRACT a:int, b:string FROM "path";`
struct ExtractStatement {
  std::string target;
  std::vector<Column> columns;
  std::string input_path;
};

/// `rs = SELECT ... FROM src [JOIN r ON a == b]* [WHERE preds] [GROUP BY c,...];`
struct SelectStatement {
  std::string target;
  std::vector<SelectItem> items;
  std::string from;
  std::vector<JoinClause> joins;
  std::vector<Predicate> where;  ///< conjunctive predicates
  std::vector<std::string> group_by;
};

/// `rs = left UNION ALL right;`
struct UnionStatement {
  std::string target;
  std::string left;
  std::string right;
};

/// `OUTPUT rs TO "path";`
struct OutputStatement {
  std::string source;
  std::string output_path;
};

/// A single parsed statement (tagged union).
struct Statement {
  StatementKind kind = StatementKind::kExtract;
  ExtractStatement extract;
  SelectStatement select;
  UnionStatement union_stmt;
  OutputStatement output;
  int line = 0;  ///< 1-based source line for diagnostics
};

/// A full parsed script.
struct Script {
  std::vector<Statement> statements;

  size_t OutputCount() const {
    size_t n = 0;
    for (const auto& s : statements) {
      if (s.kind == StatementKind::kOutput) ++n;
    }
    return n;
  }
};

}  // namespace qo::scope

#endif  // QO_SCOPE_AST_H_

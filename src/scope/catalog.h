// Catalog of input tables with both ground-truth and optimizer-visible
// statistics.
//
// The split is the heart of the reproduction: the paper's central finding
// (Sec. 5.2) is that optimizer estimated costs do not predict runtime
// outcomes. We model that by giving the optimizer access only to
// `OptimizerStats` (stale / biased), while the execution simulator consumes
// the ground-truth fields.
//
// Storage is interned: paths and column names are resolved to global
// `Symbol` ids at registration, tables live in a dense vector indexed by an
// id->slot array, and per-table column stats live in sym-sorted parallel
// vectors. The compile hot path (`Lookup(Symbol)` / `LookupColumn(Symbol,
// Symbol)`) therefore does integer array reads instead of
// `unordered_map<std::string>` probes; the string overloads survive for
// registration-time and diagnostic callers.
#ifndef QO_SCOPE_CATALOG_H_
#define QO_SCOPE_CATALOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"

namespace qo::scope {

/// Per-column statistics. `ndv` is the number of distinct values.
struct ColumnStats {
  double true_ndv = 1000.0;
  double est_ndv = 1000.0;  ///< what the optimizer believes
};

/// Statistics for one input table.
struct TableStats {
  double true_rows = 1e6;
  double est_rows = 1e6;  ///< optimizer-visible row count (may be stale)
  double avg_row_bytes = 100.0;
  std::unordered_map<std::string, ColumnStats> columns;

  double true_bytes() const { return true_rows * avg_row_bytes; }
  double est_bytes() const { return est_rows * avg_row_bytes; }
};

/// Maps input paths (the FROM "...") strings in EXTRACT statements) to their
/// statistics.
class Catalog {
 public:
  /// Registers stats for a path, replacing any previous entry.
  void RegisterTable(const std::string& path, TableStats stats);

  /// Looks up stats; NotFound if the path was never registered.
  /// Thread-safety: const read; safe to call concurrently as long as no
  /// thread is calling RegisterTable (the runtime only reads catalogs).
  Result<const TableStats*> Lookup(const std::string& path) const;

  /// Interned-id lookup: one bounds check + one array read.
  Result<const TableStats*> Lookup(Symbol path) const;

  bool Has(const std::string& path) const {
    return FindTable(Sym(path)) != nullptr;
  }
  size_t size() const { return tables_.size(); }

  /// Column stats for `path`.`column`; falls back to a default-constructed
  /// ColumnStats when the column was never described. The reference stays
  /// valid until the table is re-registered.
  const ColumnStats& LookupColumn(const std::string& path,
                                  const std::string& column) const;

  /// Interned-id column lookup: dense-slot table read plus a search of the
  /// table's sym-sorted column vector (integer compares only).
  const ColumnStats& LookupColumn(Symbol path, Symbol column) const;

  /// Deterministic content hash over every registered table and column
  /// statistic (true + optimizer-visible). Two catalogs with identical
  /// statistics produce identical fingerprints regardless of registration
  /// order — this keys the compilation caches (src/cache/), where any stats
  /// drift must invalidate by missing. O(1): maintained incrementally by
  /// RegisterTable, so the compile hot path pays nothing per lookup.
  /// Hashes interned ids, not strings: valid within one process only.
  uint64_t StatsFingerprint() const;

 private:
  struct InternedTable {
    Symbol path = kNoSymbol;
    uint64_t content_hash = 0;  ///< incremental fingerprint contribution
    TableStats stats;           ///< registration payload (string-keyed map)
    std::vector<Symbol> col_syms;         ///< sorted ascending
    std::vector<ColumnStats> col_stats;   ///< parallel to col_syms
  };

  const InternedTable* FindTable(Symbol path) const {
    if (path >= slot_by_sym_.size()) return nullptr;
    int32_t slot = slot_by_sym_[path];
    return slot < 0 ? nullptr : &tables_[static_cast<size_t>(slot)];
  }

  std::vector<InternedTable> tables_;   ///< dense, registration order
  std::vector<int32_t> slot_by_sym_;    ///< symbol id -> slot in tables_, -1
  /// Commutative sum of per-table content hashes (see StatsFingerprint).
  uint64_t fingerprint_sum_ = 0;
};

}  // namespace qo::scope

#endif  // QO_SCOPE_CATALOG_H_

// Recursive-descent parser for the SCOPE-like scripting language.
#ifndef QO_SCOPE_PARSER_H_
#define QO_SCOPE_PARSER_H_

#include <string>

#include "common/status.h"
#include "scope/ast.h"

namespace qo::scope {

/// Parses a script source into an AST.
///
/// Supported statements:
///   rs = EXTRACT a:int, b:string FROM "wasb://input";
///   rs2 = SELECT a, SUM(b) AS total FROM rs
///         JOIN dim ON a == dim_key
///         WHERE a > 10 @ 0.3 AND b == "x"
///         GROUP BY a;
///   u = rs UNION ALL rs2;
///   OUTPUT rs2 TO "wasb://out";
///
/// The optional `@ <number>` after a predicate records its ground-truth
/// selectivity for the execution simulator (the optimizer never reads it).
Result<Script> ParseScript(const std::string& source);

}  // namespace qo::scope

#endif  // QO_SCOPE_PARSER_H_

// The SCOPE front-end compiler: AST -> logical operator DAG.
#ifndef QO_SCOPE_COMPILER_H_
#define QO_SCOPE_COMPILER_H_

#include <string>

#include "common/status.h"
#include "scope/ast.h"
#include "scope/catalog.h"
#include "scope/logical_plan.h"

namespace qo::scope {

/// Compiles a parsed script against a catalog.
///
/// Responsibilities:
///  - resolve rowset names to producer nodes (building a DAG when a rowset is
///    consumed by several statements),
///  - check every EXTRACT path against the catalog,
///  - derive schemas bottom-up and reject references to unknown columns,
///  - synthesize Filter / Project / Aggregate nodes from SELECT clauses.
///
/// Returns CompileError for semantic errors (unknown rowset, unknown column,
/// aggregate misuse, missing OUTPUT, ...).
Result<LogicalPlan> CompileScript(const Script& script, const Catalog& catalog);

/// Convenience: parse + compile in one step.
Result<LogicalPlan> CompileSource(const std::string& source,
                                  const Catalog& catalog);

}  // namespace qo::scope

#endif  // QO_SCOPE_COMPILER_H_

// Core value/schema types for the SCOPE-like scripting language.
#ifndef QO_SCOPE_TYPES_H_
#define QO_SCOPE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/symbol_table.h"

namespace qo::scope {

/// Column data types supported by the script language.
enum class ColumnType {
  kInt,
  kLong,
  kDouble,
  kString,
  kBool,
};

const char* ColumnTypeToString(ColumnType t);

/// Parses a type name ("int", "long", "double", "string", "bool"); returns
/// false if unknown.
bool ParseColumnType(const std::string& name, ColumnType* out);

/// Typical serialized width in bytes, used by the statistics layer.
int ColumnTypeWidth(ColumnType t);

/// A named, typed column.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kString;
  /// Interned id of `name`; filled by InternPlanSymbols (see logical_plan.h).
  /// Excluded from equality: it is derived from `name`.
  Symbol sym = kNoSymbol;

  bool operator==(const Column& o) const {
    return name == o.name && type == o.type;
  }
};

/// Ordered list of columns carried by a rowset.
struct Schema {
  std::vector<Column> columns;

  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
  bool HasColumn(const std::string& name) const {
    return FindColumn(name) >= 0;
  }
  /// Interned-id variants: integer compares, no string traffic. Only valid
  /// on schemas that went through InternPlanSymbols (col.sym filled).
  int FindColumn(Symbol sym) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].sym == sym) return static_cast<int>(i);
    }
    return -1;
  }
  bool HasColumn(Symbol sym) const { return FindColumn(sym) >= 0; }
  size_t size() const { return columns.size(); }

  /// Sum of per-column type widths: the average row length implied by types.
  double RowWidthBytes() const {
    double w = 0;
    for (const auto& c : columns) w += ColumnTypeWidth(c.type);
    return w;
  }

  std::string ToString() const;

  bool operator==(const Schema& o) const { return columns == o.columns; }
};

}  // namespace qo::scope

#endif  // QO_SCOPE_TYPES_H_

// Logical operator DAGs produced by the SCOPE compiler.
//
// A SCOPE job can contain multiple OUTPUT statements and rowsets referenced
// by more than one consumer, so the logical plan is a DAG (not a tree) with
// one root per output (paper Sec. 4.1).
#ifndef QO_SCOPE_LOGICAL_PLAN_H_
#define QO_SCOPE_LOGICAL_PLAN_H_

#include <string>
#include <vector>

#include "scope/ast.h"
#include "scope/types.h"

namespace qo::scope {

enum class LogicalOpKind {
  kScan,       ///< EXTRACT from an input path
  kFilter,     ///< conjunctive predicates
  kProject,    ///< column selection / renaming
  kJoin,       ///< inner equi-join
  kAggregate,  ///< GROUP BY + aggregate functions
  kUnionAll,
  kOutput,  ///< writes a rowset to an output path
};

const char* LogicalOpKindToString(LogicalOpKind k);

/// One logical operator. Payload fields are meaningful per kind:
///  - kScan:      table_path, (schema = extracted columns), predicates may be
///                pushed into the scan by the optimizer.
///  - kFilter:    predicates
///  - kProject:   projections
///  - kJoin:      left_key / right_key (equi-join columns)
///  - kAggregate: group_by + projections (agg items)
///  - kOutput:    output_path
struct LogicalNode {
  int id = -1;
  LogicalOpKind kind = LogicalOpKind::kScan;
  std::vector<int> children;
  Schema schema;

  std::string table_path;
  std::vector<Predicate> predicates;
  std::vector<SelectItem> projections;
  std::vector<std::string> group_by;
  std::string left_key;
  std::string right_key;
  double true_fanout = 1.0;  ///< ground-truth join fanout (simulator only)
  std::string output_path;

  /// Interned ids of the string payloads above, filled by InternPlanSymbols.
  /// The strings stay authoritative for rendering/diagnostics; the optimizer
  /// hot path reads only the ids.
  Symbol table_sym = kNoSymbol;
  Symbol left_key_sym = kNoSymbol;
  Symbol right_key_sym = kNoSymbol;
  std::vector<Symbol> group_by_syms;
};

/// Arena-allocated logical DAG. Node ids index into `nodes`.
struct LogicalPlan {
  std::vector<LogicalNode> nodes;
  std::vector<int> roots;  ///< ids of kOutput nodes, in script order
  /// Set by InternPlanSymbols; lets repeated intern passes return early.
  bool symbols_interned = false;

  /// Appends a node, assigning its id. Children must already exist.
  int AddNode(LogicalNode&& node) {
    node.id = static_cast<int>(nodes.size());
    nodes.push_back(std::move(node));
    return nodes.back().id;
  }

  const LogicalNode& node(int id) const { return nodes[id]; }
  LogicalNode& node(int id) { return nodes[id]; }
  size_t size() const { return nodes.size(); }

  /// Number of consumers per node (DAG sharing degree).
  std::vector<int> FanOut() const;

  /// Multi-line indented dump for debugging / golden tests.
  std::string ToString() const;
};

/// Fills every Symbol field in the plan (node payloads, schema columns,
/// predicates, projections) from the global SymbolTable. Idempotent and
/// cheap on re-entry; the compiler runs it once per compiled script and the
/// optimizer runs it defensively on hand-built plans.
void InternPlanSymbols(LogicalPlan* plan);

/// Interns the Symbol fields of one SelectItem in place.
void InternSelectItem(SelectItem* item);

}  // namespace qo::scope

#endif  // QO_SCOPE_LOGICAL_PLAN_H_

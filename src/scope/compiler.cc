#include "scope/compiler.h"

#include <unordered_map>

#include "scope/parser.h"

namespace qo::scope {

namespace {

class Compiler {
 public:
  Compiler(const Script& script, const Catalog& catalog)
      : script_(script), catalog_(catalog) {}

  Result<LogicalPlan> Compile() {
    for (const Statement& stmt : script_.statements) {
      Status s;
      switch (stmt.kind) {
        case StatementKind::kExtract:
          s = CompileExtract(stmt);
          break;
        case StatementKind::kSelect:
          s = CompileSelect(stmt);
          break;
        case StatementKind::kUnion:
          s = CompileUnion(stmt);
          break;
        case StatementKind::kOutput:
          s = CompileOutput(stmt);
          break;
      }
      if (!s.ok()) return s;
    }
    if (plan_.roots.empty()) {
      return Status::CompileError("script has no OUTPUT statement");
    }
    return std::move(plan_);
  }

 private:
  Status Bind(const std::string& name, int node_id, int line) {
    if (bindings_.count(name) > 0) {
      return Status::CompileError("rowset '" + name + "' redefined at line " +
                                  std::to_string(line));
    }
    bindings_[name] = node_id;
    return Status::OK();
  }

  Result<int> Resolve(const std::string& name, int line) const {
    auto it = bindings_.find(name);
    if (it == bindings_.end()) {
      return Status::CompileError("unknown rowset '" + name + "' at line " +
                                  std::to_string(line));
    }
    return it->second;
  }

  Status CompileExtract(const Statement& stmt) {
    const ExtractStatement& ex = stmt.extract;
    if (!catalog_.Has(ex.input_path)) {
      return Status::CompileError("input not in catalog: " + ex.input_path);
    }
    LogicalNode node;
    node.kind = LogicalOpKind::kScan;
    node.table_path = ex.input_path;
    node.schema.columns = ex.columns;
    int id = plan_.AddNode(std::move(node));
    return Bind(ex.target, id, stmt.line);
  }

  Status CompileUnion(const Statement& stmt) {
    const UnionStatement& u = stmt.union_stmt;
    QO_ASSIGN_OR_RETURN(int left, Resolve(u.left, stmt.line));
    QO_ASSIGN_OR_RETURN(int right, Resolve(u.right, stmt.line));
    const Schema& ls = plan_.node(left).schema;
    const Schema& rs = plan_.node(right).schema;
    if (ls.size() != rs.size()) {
      return Status::CompileError("UNION ALL schema arity mismatch at line " +
                                  std::to_string(stmt.line));
    }
    LogicalNode node;
    node.kind = LogicalOpKind::kUnionAll;
    node.children = {left, right};
    node.schema = ls;
    int id = plan_.AddNode(std::move(node));
    return Bind(u.target, id, stmt.line);
  }

  Status CompileOutput(const Statement& stmt) {
    const OutputStatement& out = stmt.output;
    QO_ASSIGN_OR_RETURN(int src, Resolve(out.source, stmt.line));
    LogicalNode node;
    node.kind = LogicalOpKind::kOutput;
    node.children = {src};
    node.schema = plan_.node(src).schema;
    node.output_path = out.output_path;
    plan_.roots.push_back(plan_.AddNode(std::move(node)));
    return Status::OK();
  }

  Status CompileSelect(const Statement& stmt) {
    const SelectStatement& sel = stmt.select;
    QO_ASSIGN_OR_RETURN(int current, Resolve(sel.from, stmt.line));

    // Joins (left-deep in script order).
    for (const JoinClause& jc : sel.joins) {
      QO_ASSIGN_OR_RETURN(int right, Resolve(jc.rowset, stmt.line));
      const Schema& ls = plan_.node(current).schema;
      const Schema& rs = plan_.node(right).schema;
      if (!ls.HasColumn(jc.left_column)) {
        return Status::CompileError("join key '" + jc.left_column +
                                    "' not found on left side at line " +
                                    std::to_string(stmt.line));
      }
      if (!rs.HasColumn(jc.right_column)) {
        return Status::CompileError("join key '" + jc.right_column +
                                    "' not found on right side at line " +
                                    std::to_string(stmt.line));
      }
      LogicalNode join;
      join.kind = LogicalOpKind::kJoin;
      join.children = {current, right};
      join.left_key = jc.left_column;
      join.right_key = jc.right_column;
      join.true_fanout = jc.true_fanout;
      join.schema = ls;
      for (const Column& c : rs.columns) {
        if (!join.schema.HasColumn(c.name)) join.schema.columns.push_back(c);
      }
      current = plan_.AddNode(std::move(join));
    }

    // WHERE.
    if (!sel.where.empty()) {
      const Schema& schema = plan_.node(current).schema;
      for (const Predicate& p : sel.where) {
        if (!schema.HasColumn(p.column)) {
          return Status::CompileError("predicate column '" + p.column +
                                      "' not found at line " +
                                      std::to_string(stmt.line));
        }
      }
      LogicalNode filter;
      filter.kind = LogicalOpKind::kFilter;
      filter.children = {current};
      filter.predicates = sel.where;
      filter.schema = plan_.node(current).schema;
      current = plan_.AddNode(std::move(filter));
    }

    // Aggregation / projection.
    bool has_agg = !sel.group_by.empty();
    for (const SelectItem& item : sel.items) {
      if (item.agg != AggFunc::kNone) has_agg = true;
    }
    if (has_agg) {
      QO_ASSIGN_OR_RETURN(int agg_id, BuildAggregate(sel, current, stmt.line));
      current = agg_id;
    } else if (!(sel.items.size() == 1 && sel.items[0].column == "*")) {
      QO_ASSIGN_OR_RETURN(int proj_id, BuildProject(sel, current, stmt.line));
      current = proj_id;
    }
    return Bind(sel.target, current, stmt.line);
  }

  Result<int> BuildProject(const SelectStatement& sel, int child, int line) {
    const Schema& in = plan_.node(child).schema;
    LogicalNode proj;
    proj.kind = LogicalOpKind::kProject;
    proj.children = {child};
    for (const SelectItem& item : sel.items) {
      if (item.column == "*") {
        for (const Column& c : in.columns) {
          proj.schema.columns.push_back(c);
          SelectItem pass;
          pass.column = c.name;
          proj.projections.push_back(pass);
        }
        continue;
      }
      int idx = in.FindColumn(item.column);
      if (idx < 0) {
        return Status::CompileError("projected column '" + item.column +
                                    "' not found at line " +
                                    std::to_string(line));
      }
      proj.schema.columns.push_back(
          Column{item.OutputName(), in.columns[static_cast<size_t>(idx)].type});
      proj.projections.push_back(item);
    }
    return plan_.AddNode(std::move(proj));
  }

  Result<int> BuildAggregate(const SelectStatement& sel, int child, int line) {
    const Schema& in = plan_.node(child).schema;
    LogicalNode agg;
    agg.kind = LogicalOpKind::kAggregate;
    agg.children = {child};
    agg.group_by = sel.group_by;
    for (const std::string& g : sel.group_by) {
      int idx = in.FindColumn(g);
      if (idx < 0) {
        return Status::CompileError("GROUP BY column '" + g +
                                    "' not found at line " +
                                    std::to_string(line));
      }
      agg.schema.columns.push_back(in.columns[static_cast<size_t>(idx)]);
    }
    for (const SelectItem& item : sel.items) {
      if (item.agg == AggFunc::kNone) {
        // Plain columns in an aggregate select must be group-by keys.
        if (item.column == "*") {
          return Status::CompileError(
              "'*' not allowed with GROUP BY at line " + std::to_string(line));
        }
        bool is_key = false;
        for (const std::string& g : sel.group_by) {
          if (g == item.column) is_key = true;
        }
        if (!is_key) {
          return Status::CompileError("column '" + item.column +
                                      "' must appear in GROUP BY at line " +
                                      std::to_string(line));
        }
        continue;  // already in schema via group_by
      }
      if (item.column != "*") {
        int idx = in.FindColumn(item.column);
        if (idx < 0) {
          return Status::CompileError("aggregated column '" + item.column +
                                      "' not found at line " +
                                      std::to_string(line));
        }
      }
      ColumnType out_type = ColumnType::kDouble;
      if (item.agg == AggFunc::kCount) out_type = ColumnType::kLong;
      agg.schema.columns.push_back(Column{item.OutputName(), out_type});
      agg.projections.push_back(item);
    }
    if (agg.projections.empty() && agg.group_by.empty()) {
      return Status::CompileError("aggregate with no keys or functions");
    }
    return plan_.AddNode(std::move(agg));
  }

  const Script& script_;
  const Catalog& catalog_;
  LogicalPlan plan_;
  std::unordered_map<std::string, int> bindings_;
};

}  // namespace

Result<LogicalPlan> CompileScript(const Script& script,
                                  const Catalog& catalog) {
  Compiler compiler(script, catalog);
  auto plan = compiler.Compile();
  // Intern once per compile so every downstream consumer (optimizer,
  // cardinality, caches) works with integer ids.
  if (plan.ok()) InternPlanSymbols(&plan.value());
  return plan;
}

Result<LogicalPlan> CompileSource(const std::string& source,
                                  const Catalog& catalog) {
  auto script = ParseScript(source);
  if (!script.ok()) return script.status();
  return CompileScript(script.value(), catalog);
}

}  // namespace qo::scope

#include "scope/catalog.h"

#include <algorithm>

#include "common/hash.h"

namespace qo::scope {

namespace {

/// Content hash of one interned table entry. Mixes interned ids instead of
/// hashing path/column bytes; equal strings share one global id, so content
/// equality is preserved within a process. Avalanched so entries can be
/// combined (and incrementally removed) with plain + / - arithmetic.
uint64_t TableHash(Symbol path, const TableStats& stats,
                   const std::vector<Symbol>& col_syms,
                   const std::vector<ColumnStats>& col_stats) {
  uint64_t t = HashU64(path, 0xcafef00dd15ea5e5ULL);
  t = HashDouble(stats.true_rows, t);
  t = HashDouble(stats.est_rows, t);
  t = HashDouble(stats.avg_row_bytes, t);
  uint64_t cols = col_syms.size();
  // Column order must not matter: combine with +.
  for (size_t i = 0; i < col_syms.size(); ++i) {
    uint64_t c = HashU64(col_syms[i], 0xc01d57a75ULL);
    c = HashDouble(col_stats[i].true_ndv, c);
    c = HashDouble(col_stats[i].est_ndv, c);
    cols += MixHash(c);
  }
  t = HashU64(cols, t);
  return MixHash(t);
}

}  // namespace

void Catalog::RegisterTable(const std::string& path, TableStats stats) {
  InternedTable entry;
  entry.path = Sym(path);
  entry.col_syms.reserve(stats.columns.size());
  for (const auto& [column, cstats] : stats.columns) {
    entry.col_syms.push_back(Sym(column));
  }
  std::sort(entry.col_syms.begin(), entry.col_syms.end());
  entry.col_stats.resize(entry.col_syms.size());
  for (const auto& [column, cstats] : stats.columns) {
    size_t idx = static_cast<size_t>(
        std::lower_bound(entry.col_syms.begin(), entry.col_syms.end(),
                         Sym(column)) -
        entry.col_syms.begin());
    entry.col_stats[idx] = cstats;
  }
  entry.stats = std::move(stats);
  entry.content_hash =
      TableHash(entry.path, entry.stats, entry.col_syms, entry.col_stats);

  // Maintain the fingerprint sum incrementally: the compile path reads
  // StatsFingerprint once per cache lookup, so it must stay O(1) there.
  if (entry.path >= slot_by_sym_.size()) {
    slot_by_sym_.resize(entry.path + 1, -1);
  }
  int32_t slot = slot_by_sym_[entry.path];
  if (slot >= 0) {
    fingerprint_sum_ -= tables_[static_cast<size_t>(slot)].content_hash;
    fingerprint_sum_ += entry.content_hash;
    tables_[static_cast<size_t>(slot)] = std::move(entry);
    return;
  }
  slot_by_sym_[entry.path] = static_cast<int32_t>(tables_.size());
  fingerprint_sum_ += entry.content_hash;
  tables_.push_back(std::move(entry));
}

Result<const TableStats*> Catalog::Lookup(const std::string& path) const {
  const InternedTable* t = FindTable(Sym(path));
  if (t == nullptr) {
    return Status::NotFound("table not in catalog: " + path);
  }
  return &t->stats;
}

Result<const TableStats*> Catalog::Lookup(Symbol path) const {
  const InternedTable* t = FindTable(path);
  if (t == nullptr) {
    return Status::NotFound("table not in catalog: " + SymName(path));
  }
  return &t->stats;
}

uint64_t Catalog::StatsFingerprint() const {
  // Registration order must not matter: fingerprint_sum_ is a commutative
  // sum of per-entry hashes, so the result is a pure function of content.
  return MixHash(0x9e3779b97f4a7c15ULL + tables_.size() + fingerprint_sum_);
}

const ColumnStats& Catalog::LookupColumn(Symbol path, Symbol column) const {
  static const ColumnStats kDefaultColumnStats{};
  const InternedTable* t = FindTable(path);
  if (t == nullptr) return kDefaultColumnStats;
  auto it = std::lower_bound(t->col_syms.begin(), t->col_syms.end(), column);
  if (it == t->col_syms.end() || *it != column) return kDefaultColumnStats;
  return t->col_stats[static_cast<size_t>(it - t->col_syms.begin())];
}

const ColumnStats& Catalog::LookupColumn(const std::string& path,
                                         const std::string& column) const {
  return LookupColumn(Sym(path), Sym(column));
}

}  // namespace qo::scope

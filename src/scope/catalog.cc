#include "scope/catalog.h"

#include "common/hash.h"

namespace qo::scope {

namespace {

/// Content hash of one (path, stats) entry. Avalanched so entries can be
/// combined (and incrementally removed) with plain + / - arithmetic.
uint64_t TableHash(const std::string& path, const TableStats& stats) {
  uint64_t t = HashString(path, 0xcafef00dd15ea5e5ULL);
  t = HashDouble(stats.true_rows, t);
  t = HashDouble(stats.est_rows, t);
  t = HashDouble(stats.avg_row_bytes, t);
  uint64_t cols = stats.columns.size();
  // Column order in the unordered_map must not matter: combine with +.
  for (const auto& [column, cstats] : stats.columns) {
    uint64_t c = HashString(column, 0xc01d57a75ULL);
    c = HashDouble(cstats.true_ndv, c);
    c = HashDouble(cstats.est_ndv, c);
    cols += MixHash(c);
  }
  t = HashU64(cols, t);
  return MixHash(t);
}

}  // namespace

void Catalog::RegisterTable(const std::string& path, TableStats stats) {
  // Maintain the fingerprint sum incrementally: the compile path reads
  // StatsFingerprint once per cache lookup, so it must stay O(1) there.
  auto it = tables_.find(path);
  if (it != tables_.end()) fingerprint_sum_ -= TableHash(path, it->second);
  fingerprint_sum_ += TableHash(path, stats);
  tables_[path] = std::move(stats);
}

Result<const TableStats*> Catalog::Lookup(const std::string& path) const {
  auto it = tables_.find(path);
  if (it == tables_.end()) {
    return Status::NotFound("table not in catalog: " + path);
  }
  return &it->second;
}

uint64_t Catalog::StatsFingerprint() const {
  // Registration order must not matter: fingerprint_sum_ is a commutative
  // sum of per-entry hashes, so the result is a pure function of content.
  return MixHash(0x9e3779b97f4a7c15ULL + tables_.size() + fingerprint_sum_);
}

ColumnStats Catalog::LookupColumn(const std::string& path,
                                  const std::string& column) const {
  auto it = tables_.find(path);
  if (it == tables_.end()) return ColumnStats{};
  auto cit = it->second.columns.find(column);
  if (cit == it->second.columns.end()) return ColumnStats{};
  return cit->second;
}

}  // namespace qo::scope

#include "scope/catalog.h"

namespace qo::scope {

void Catalog::RegisterTable(const std::string& path, TableStats stats) {
  tables_[path] = std::move(stats);
}

Result<const TableStats*> Catalog::Lookup(const std::string& path) const {
  auto it = tables_.find(path);
  if (it == tables_.end()) {
    return Status::NotFound("table not in catalog: " + path);
  }
  return &it->second;
}

ColumnStats Catalog::LookupColumn(const std::string& path,
                                  const std::string& column) const {
  auto it = tables_.find(path);
  if (it == tables_.end()) return ColumnStats{};
  auto cit = it->second.columns.find(column);
  if (cit == it->second.columns.end()) return ColumnStats{};
  return cit->second;
}

}  // namespace qo::scope

#include "scope/lexer.h"

#include <cctype>
#include <unordered_set>

namespace qo::scope {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "EXTRACT", "FROM",  "SELECT", "WHERE", "GROUP", "BY",  "JOIN",
      "ON",      "OUTPUT", "TO",    "AS",    "UNION", "ALL", "AND",
  };
  return *kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- to end of line.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      std::string word = source.substr(start, i - start);
      std::string upper = ToUpper(word);
      Token t;
      if (Keywords().count(upper) > 0) {
        t.kind = TokenKind::kKeyword;
        t.text = upper;
      } else {
        t.kind = TokenKind::kIdentifier;
        t.text = word;
      }
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       (source[i] == '.' && !seen_dot))) {
        if (source[i] == '.') seen_dot = true;
        ++i;
      }
      tokens.push_back({TokenKind::kNumber, source.substr(start, i - start),
                        line});
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\n') {
          return Status::ParseError("unterminated string literal at line " +
                                    std::to_string(line));
        }
        ++i;
      }
      if (i >= n) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(line));
      }
      tokens.push_back({TokenKind::kString, source.substr(start, i - start),
                        line});
      ++i;  // closing quote
      continue;
    }
    // Multi-char symbols first.
    auto two = (i + 1 < n) ? source.substr(i, 2) : std::string();
    if (two == "==" || two == "!=" || two == "<=" || two == ">=") {
      tokens.push_back({TokenKind::kSymbol, two, line});
      i += 2;
      continue;
    }
    if (c == '=' || c == '<' || c == '>' || c == ',' || c == ';' ||
        c == '(' || c == ')' || c == ':' || c == '*' || c == '@') {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), line});
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at line " + std::to_string(line));
  }
  tokens.push_back({TokenKind::kEnd, "", line});
  return tokens;
}

}  // namespace qo::scope

// Reusable experiment harnesses for every table and figure in the paper's
// evaluation (Sec. 5). Each function returns structured results; the bench
// binaries print them as the rows/series the paper reports, and tests assert
// the qualitative shapes.
#ifndef QO_EXPERIMENTS_EXPERIMENTS_H_
#define QO_EXPERIMENTS_EXPERIMENTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "flighting/flighting.h"
#include "guard/fault_injector.h"
#include "runtime/runtime.h"
#include "sis/sis.h"
#include "telemetry/workload_view.h"
#include "workload/workload.h"

namespace qo::experiments {

struct ExperimentConfig {
  int num_templates = 90;
  int jobs_per_day = 150;
  uint64_t seed = 2022;
  int aa_runs = 10;  ///< paper Sec. 5.1 runs each job 10 times
  /// Worker threads for the experiment harness and any pipeline it drives.
  /// 0 reads QO_THREADS from the environment (the bench binaries' knob);
  /// 1 forces serial. Results are byte-identical for every value.
  int threads = 0;
  /// Two-level compilation cache for the harness's engine: -1 reads
  /// QO_COMPILE_CACHE from the environment (default on), 0 forces it off,
  /// 1 forces it on. Results are byte-identical for every value.
  int compile_cache = -1;
  /// Prepared execution profiles for the harness's engine: -1 reads
  /// QO_PREPARED_EXEC from the environment (default on), 0 forces the
  /// legacy per-run decomposition, 1 forces prepared execution. Results are
  /// byte-identical for every value.
  int prepared_exec = -1;
  /// Chaos faults for the production-day simulation: injected steered-run
  /// compile failures (falling back to the default config, as SCOPE does)
  /// and sticky hinted regressions (the watchdog's prey). Defaults read the
  /// QO_FAULT_* knobs; with those unset this is inert.
  guard::FaultConfig faults = guard::FaultConfig::FromEnv();
};

/// Shared environment: workload + engine + helpers to execute a day and
/// build its denormalized view (optionally applying SIS hints, which is how
/// hints reach "the next occurrence of the job template").
class ExperimentEnv {
 public:
  explicit ExperimentEnv(ExperimentConfig config = {});
  /// Emits a whole-process run-report line (day -1) to QO_OBS_REPORT when
  /// that knob is set — this is how each bench binary leaves its metrics
  /// snapshot next to its figure output.
  ~ExperimentEnv();
  ExperimentEnv(const ExperimentEnv&) = delete;
  ExperimentEnv& operator=(const ExperimentEnv&) = delete;

  /// Appends one run-report line for `day` (or the whole process when
  /// day < 0) to QO_OBS_REPORT. No-op (returning false) when the knob is
  /// unset or metrics are disabled.
  bool EmitRunReport(int day) const;

  const ExperimentConfig& config() const { return config_; }
  const engine::ScopeEngine& engine() const { return engine_; }
  const workload::WorkloadDriver& driver() const { return driver_; }
  /// The harness's parallel runtime (internally synchronized, hence usable
  /// through a const env). Null is never returned.
  runtime::ParallelRuntime* runtime() const { return &runtime_; }
  /// Options to propagate into a pipeline config so RunDay shares the
  /// harness's thread count.
  const runtime::RuntimeOptions& runtime_options() const {
    return runtime_.options();
  }

  /// Executes every job of `day` (under SIS hints when provided) and builds
  /// the view the offline pipeline ingests. Job executions fan out across
  /// the runtime sharded by template; rows commit in job order.
  telemetry::WorkloadView BuildDayView(
      int day, const sis::StatsInsightService* sis = nullptr) const;

  const guard::FaultInjector& fault_injector() const { return injector_; }
  /// Steered production runs that fell back to the default configuration
  /// because of an injected compile failure (cumulative across days).
  uint64_t steered_fallbacks() const { return steered_fallbacks_; }
  /// Steered production runs whose metrics were inflated by a sticky
  /// injected hint regression (cumulative across days).
  uint64_t regressions_injected() const { return regressions_injected_; }

 private:
  ExperimentConfig config_;
  workload::WorkloadDriver driver_;
  engine::ScopeEngine engine_;
  mutable runtime::ParallelRuntime runtime_;
  guard::FaultInjector injector_;
  /// Atomic: bumped from the parallel run lambda, but the total is
  /// deterministic because every injection decision is pure.
  mutable std::atomic<uint64_t> steered_fallbacks_{0};
  /// Bumped only at the ordered commit (calling thread).
  mutable uint64_t regressions_injected_ = 0;
};

// ---------------------------------------------------------------------------
// Fig. 2 / Fig. 4: recurring-job stability. Improvements found by an A/B in
// week0 cannot always be repeated on the same recurring job in week1.
// ---------------------------------------------------------------------------
struct StabilityResult {
  /// (week0 delta, week1 delta) per job; delta = new/old - 1.
  std::vector<std::pair<double, double>> week0_week1;
  /// Fraction of week0-improving jobs that regress (delta > 0) in week1.
  double regress_fraction = 0.0;
};

enum class Metric { kLatency, kPnHours };

StabilityResult RunRecurringStability(const ExperimentEnv& env, Metric metric,
                                      int week0_day = 0, int week1_day = 7);

// ---------------------------------------------------------------------------
// Fig. 3 / Fig. 5: A/A variance of latency / PNhours over 10 runs.
// ---------------------------------------------------------------------------
struct VarianceResult {
  /// (normalized execution time, coefficient of variation) per job.
  std::vector<std::pair<double, double>> time_vs_cv;
  double fraction_above_5pct = 0.0;
};

VarianceResult RunAAVariance(const ExperimentEnv& env, Metric metric,
                             int day = 0);

// ---------------------------------------------------------------------------
// Fig. 6: estimated-cost delta vs latency delta over ~5 days of jobs with
// cost-improving rule flips.
// ---------------------------------------------------------------------------
struct CostLatencyResult {
  std::vector<std::pair<double, double>> cost_vs_latency;
  double correlation = 0.0;
  /// Among jobs whose estimated cost improved, fraction with latency
  /// regression (paper: over 40%).
  double improved_cost_latency_regress_fraction = 0.0;
};

CostLatencyResult RunCostVsLatency(const ExperimentEnv& env, int days = 5);

// ---------------------------------------------------------------------------
// Fig. 7 / Fig. 8: DataRead / DataWritten delta vs PNhours delta, with the
// paper's one-dimensional polynomial trend line.
// ---------------------------------------------------------------------------
struct IoPnResult {
  std::vector<std::pair<double, double>> io_vs_pn;
  LinearFit trend;
  double correlation = 0.0;
};

enum class IoMetric { kDataRead, kDataWritten };

IoPnResult RunIoVsPn(const ExperimentEnv& env, IoMetric metric, int days = 4);

// ---------------------------------------------------------------------------
// Fig. 9: validation model accuracy — train on two weeks of flighting data,
// evaluate on a held-out day.
// ---------------------------------------------------------------------------
struct ValidationAccuracyResult {
  std::vector<std::pair<double, double>> predicted_vs_actual;
  size_t test_jobs = 0;
  size_t accepted = 0;  ///< predicted delta below the threshold
  /// Of the accepted jobs: fraction with actual delta below the threshold
  /// (paper: 85%) and below zero (paper: 91%).
  double frac_actual_below_threshold = 0.0;
  double frac_actual_below_zero = 0.0;
  double model_r2 = 0.0;
};

ValidationAccuracyResult RunValidationAccuracy(const ExperimentEnv& env,
                                               int train_days = 14,
                                               double threshold = -0.1,
                                               int test_days = 3);

// ---------------------------------------------------------------------------
// Table 2 + Figs. 10/11/12: end-to-end pipeline impact. Train the pipeline
// for `train_days`, then compare hinted vs default plans on the evaluation
// day's matching jobs.
// ---------------------------------------------------------------------------
struct AggregateImpactResult {
  int matched_jobs = 0;
  size_t active_hints = 0;
  /// Total-percentage reductions (negative = saving), as in Table 2.
  double pn_hours_reduction = 0.0;
  double latency_reduction = 0.0;
  double vertices_reduction = 0.0;
  /// Per-job deltas, sorted ascending (the drill-down figures).
  std::vector<double> pn_deltas;
  std::vector<double> latency_deltas;
  std::vector<double> vertices_deltas;
};

AggregateImpactResult RunAggregateImpact(const ExperimentEnv& env,
                                         int train_days = 24,
                                         int eval_days = 5);

// ---------------------------------------------------------------------------
// Table 3: biased (contextual bandit) vs uniform-random rule flips.
// ---------------------------------------------------------------------------
struct FlipOutcomeCounts {
  size_t lower_cost = 0;
  size_t equal_cost = 0;
  size_t higher_cost = 0;
  size_t recompile_failures = 0;
  double total_est_cost = 0.0;  ///< summed est cost of the chosen plans

  size_t total() const {
    return lower_cost + equal_cost + higher_cost + recompile_failures;
  }
};

struct RandomVsCbResult {
  FlipOutcomeCounts random;
  FlipOutcomeCounts cb;
  double default_total_est_cost = 0.0;
  size_t jobs_with_span = 0;
  size_t jobs_total = 0;
};

RandomVsCbResult RunRandomVsCb(const ExperimentEnv& env,
                               int cb_train_days = 18, int eval_day = 18);

// ---------------------------------------------------------------------------
// Sec. 5.2 ablation: disabling the estimated-cost filters floods flighting.
// ---------------------------------------------------------------------------
struct CostFilterAblationResult {
  size_t flights_requested_with_filter = 0;
  size_t flights_requested_without_filter = 0;
  double budget_hours_with_filter = 0.0;
  double budget_hours_without_filter = 0.0;
  size_t timeouts_without_filter = 0;
  size_t timeouts_with_filter = 0;
};

CostFilterAblationResult RunCostFilterAblation(const ExperimentEnv& env,
                                               int day = 0);

}  // namespace qo::experiments

#endif  // QO_EXPERIMENTS_EXPERIMENTS_H_

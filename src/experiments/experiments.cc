#include "experiments/experiments.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "core/feature_gen.h"
#include "core/recommend.h"
#include "obs/report.h"
#include "obs/span.h"

namespace qo::experiments {

namespace {

using advisor::JobFeatures;
using advisor::Recommendation;
using advisor::RecompileOutcome;
using advisor::Recommender;

double MetricOf(const exec::JobMetrics& m, Metric metric) {
  return metric == Metric::kLatency ? m.latency_sec : m.pn_hours;
}

/// Runs a paired A/B of `flip` against the default config for one job.
/// Returns false on compile failure.
bool AbDeltas(const engine::ScopeEngine& engine,
              const workload::JobInstance& job, const opt::RuleConfig& flip,
              uint64_t salt, exec::JobMetrics* base_out,
              exec::JobMetrics* cand_out) {
  auto base = engine.Run(job, opt::RuleConfig::Default(), salt * 2 + 1);
  auto cand = engine.Run(job, flip, salt * 2 + 2);
  if (!base.ok() || !cand.ok()) return false;
  *base_out = base->metrics;
  *cand_out = cand->metrics;
  return true;
}

/// Featurizes one day's recurring jobs (spans + default compilations).
std::vector<JobFeatures> DayFeatures(const ExperimentEnv& env, int day,
                                     bool recurring_only = true) {
  telemetry::WorkloadView view = env.BuildDayView(day);
  telemetry::WorkloadView filtered;
  filtered.day = day;
  for (auto& row : view.rows) {
    if (!recurring_only || row.recurring) filtered.rows.push_back(row);
  }
  return advisor::GenerateFeatures(env.engine(), filtered, nullptr,
                                   env.runtime());
}

runtime::RuntimeOptions HarnessRuntimeOptions(const ExperimentConfig& config) {
  runtime::RuntimeOptions options = runtime::RuntimeOptions::FromEnv();
  if (config.threads > 0) options.num_threads = config.threads;
  return options;
}

cache::CompileCacheOptions HarnessCacheOptions(const ExperimentConfig& config) {
  cache::CompileCacheOptions options = cache::CompileCacheOptions::FromEnv();
  if (config.compile_cache >= 0) options.enabled = config.compile_cache != 0;
  return options;
}

engine::ExecOptions HarnessExecOptions(const ExperimentConfig& config) {
  engine::ExecOptions options = engine::ExecOptions::FromEnv();
  if (config.prepared_exec >= 0) options.prepared = config.prepared_exec != 0;
  return options;
}

/// A recommender wired to a throwaway personalizer, for experiments that
/// need EvaluateFlip without learning.
struct FlipEvaluator {
  explicit FlipEvaluator(const engine::ScopeEngine* engine)
      : personalizer({.seed = 17}), recommender(engine, &personalizer, {}) {}
  bandit::PersonalizerService personalizer;
  Recommender recommender;
};

/// All single flips of a job's span that lower the estimated cost — the
/// population that survives the Recommendation stage and reaches flighting.
std::vector<Recommendation> ImprovingFlips(const FlipEvaluator& eval,
                                           const JobFeatures& f) {
  std::vector<Recommendation> out;
  for (int bit : f.span.Positions()) {
    Recommendation rec = eval.recommender.EvaluateFlip(f, bit);
    if (rec.outcome == RecompileOutcome::kLowerCost) out.push_back(rec);
  }
  return out;
}

/// The single best (highest-reward) cost-improving flip, or nullopt.
std::optional<Recommendation> BestImprovingFlip(const FlipEvaluator& eval,
                                                const JobFeatures& f) {
  std::vector<Recommendation> flips = ImprovingFlips(eval, f);
  if (flips.empty()) return std::nullopt;
  auto best = std::max_element(flips.begin(), flips.end(),
                               [](const Recommendation& a,
                                  const Recommendation& b) {
                                 return a.reward < b.reward;
                               });
  return *best;
}

}  // namespace

ExperimentEnv::ExperimentEnv(ExperimentConfig config)
    : config_(config),
      driver_({.num_templates = config.num_templates,
               .jobs_per_day = config.jobs_per_day,
               .seed = config.seed}),
      engine_({}, {}, HarnessCacheOptions(config), HarnessExecOptions(config)),
      runtime_(HarnessRuntimeOptions(config)),
      injector_(config.faults) {}

ExperimentEnv::~ExperimentEnv() {
  // Emitted here rather than at process exit: the engine's collector is
  // still registered, so the line carries every series.
  EmitRunReport(-1);
}

bool ExperimentEnv::EmitRunReport(int day) const {
  std::unique_ptr<obs::RunReportWriter> writer = obs::RunReportWriter::FromEnv();
  if (writer == nullptr) return false;
  return writer->Append(obs::RunReportJsonLine(
      obs::ObsLabelFromEnv("experiment_env"), day,
      obs::Registry::Get().Snapshot()));
}

telemetry::WorkloadView ExperimentEnv::BuildDayView(
    int day, const sis::StatsInsightService* sis) const {
  QO_OBS_SPAN("build_day_view");
  telemetry::WorkloadView view;
  view.day = day;
  const std::vector<workload::JobInstance> jobs = driver_.DayJobs(day);
  runtime::ForEachOrdered<Result<engine::JobRunResult>>(
      &runtime_, jobs.size(),
      [&](size_t i) { return static_cast<uint64_t>(jobs[i].template_id); },
      [](size_t i) { return static_cast<double>(i); },
      [&](size_t i) -> Result<engine::JobRunResult> {
        const workload::JobInstance& job = jobs[i];
        bool hinted =
            sis != nullptr && sis->LookupHint(job.template_name).has_value();
        opt::RuleConfig config = hinted
                                     ? sis->ConfigForTemplate(job.template_name)
                                     : opt::RuleConfig::Default();
        // Injected steered-compile failure: the hinted configuration fails
        // on this occurrence, SCOPE falls back to the default plan. Pure per
        // (day, job), so the atomic total is thread-count-independent.
        if (hinted && injector_.armed() &&
            injector_.ShouldInject(guard::FaultSite::kCompile, day,
                                   job.job_id)) {
          config = opt::RuleConfig::Default();
          steered_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
        auto result = engine_.Run(job, config, static_cast<uint64_t>(day));
        if (!result.ok()) {
          // A hinted configuration may fail on a drifted occurrence; SCOPE
          // falls back to the default configuration in that case.
          result = engine_.Run(job, opt::RuleConfig::Default(),
                               static_cast<uint64_t>(day));
        }
        return result;
      },
      [&](size_t i, Result<engine::JobRunResult>&& result) {
        if (!result.ok()) return;
        exec::JobMetrics metrics = result->metrics;
        // Injected hint regression: sticky per template (day-independent
        // key), modeling a hint that is genuinely bad in production — every
        // steered occurrence runs inflated until the watchdog reverts it.
        if (sis != nullptr && injector_.armed() &&
            sis->LookupHint(jobs[i].template_name).has_value() &&
            injector_.ShouldInject(guard::FaultSite::kHintRegression,
                                   /*day=*/0, jobs[i].template_name)) {
          metrics.pn_hours *= injector_.config().hint_regression_factor;
          metrics.latency_sec *= injector_.config().hint_regression_factor;
          ++regressions_injected_;
        }
        view.rows.push_back(telemetry::MakeViewRow(
            jobs[i], *result->compilation, metrics));
      });
  return view;
}

// ---------------------------------------------------------------------------
// Fig. 2 / Fig. 4.
// ---------------------------------------------------------------------------

StabilityResult RunRecurringStability(const ExperimentEnv& env, Metric metric,
                                      int week0_day, int week1_day) {
  StabilityResult result;
  FlipEvaluator eval(&env.engine());
  Rng rng(env.config().seed ^ 0xf00d);

  // Week1 occurrences by template.
  std::unordered_map<int, workload::JobInstance> week1;
  for (const auto& job : env.driver().DayJobs(week1_day)) {
    if (job.recurring) week1.emplace(job.template_id, job);
  }

  size_t improving = 0, regressed = 0;
  for (const JobFeatures& f : DayFeatures(env, week0_day)) {
    auto it = week1.find(f.row.template_id);
    if (it == week1.end()) continue;
    std::vector<int> bits = f.span.Positions();
    int rule = bits[rng.UniformInt(bits.size())];
    opt::RuleConfig flip = opt::RuleConfig::DefaultWithFlip(rule);
    exec::JobMetrics b0, c0, b1, c1;
    if (!AbDeltas(env.engine(), f.row.instance, flip, rng.Next(), &b0, &c0)) {
      continue;
    }
    double w0 = exec::RelativeDelta(MetricOf(c0, metric), MetricOf(b0, metric));
    if (w0 >= 0.0) continue;  // keep only week0 improvements, as in Fig. 2
    if (!AbDeltas(env.engine(), it->second, flip, rng.Next(), &b1, &c1)) {
      continue;
    }
    double w1 = exec::RelativeDelta(MetricOf(c1, metric), MetricOf(b1, metric));
    result.week0_week1.emplace_back(w0, w1);
    ++improving;
    if (w1 > 0.0) ++regressed;
  }
  result.regress_fraction =
      improving == 0 ? 0.0
                     : static_cast<double>(regressed) /
                           static_cast<double>(improving);
  return result;
}

// ---------------------------------------------------------------------------
// Fig. 3 / Fig. 5.
// ---------------------------------------------------------------------------

VarianceResult RunAAVariance(const ExperimentEnv& env, Metric metric,
                             int day) {
  VarianceResult result;
  std::vector<std::pair<double, double>> raw;  // (mean latency, cv)
  double max_mean_latency = 0.0;
  for (const auto& job : env.driver().DayJobs(day)) {
    auto compiled = env.engine().CompileShared(job, opt::RuleConfig::Default());
    if (!compiled.ok()) continue;
    RunningStats value, latency;
    // One prepared profile serves all A/A runs of the job; salts 1000..
    // match the historical per-run loop exactly.
    for (const exec::JobMetrics& m : env.engine().ExecuteRuns(
             job, **compiled, 1000, env.config().aa_runs)) {
      value.Add(MetricOf(m, metric));
      latency.Add(m.latency_sec);
    }
    raw.emplace_back(latency.mean(), value.cv());
    max_mean_latency = std::max(max_mean_latency, latency.mean());
  }
  size_t above = 0;
  for (auto& [t, cv] : raw) {
    result.time_vs_cv.emplace_back(
        max_mean_latency > 0 ? t / max_mean_latency : 0.0, cv);
    if (cv > 0.05) ++above;
  }
  result.fraction_above_5pct =
      raw.empty() ? 0.0
                  : static_cast<double>(above) / static_cast<double>(raw.size());
  return result;
}

// ---------------------------------------------------------------------------
// Fig. 6.
// ---------------------------------------------------------------------------

CostLatencyResult RunCostVsLatency(const ExperimentEnv& env, int days) {
  CostLatencyResult result;
  FlipEvaluator eval(&env.engine());
  Rng rng(env.config().seed ^ 0xcafe);
  size_t improved = 0, regressed = 0;
  for (int day = 0; day < days; ++day) {
    for (const JobFeatures& f : DayFeatures(env, day)) {
      std::optional<Recommendation> best = BestImprovingFlip(eval, f);
      if (!best.has_value()) continue;
      const Recommendation& rec = *best;
      exec::JobMetrics base, cand;
      if (!AbDeltas(env.engine(), f.row.instance, rec.ToConfig(), rng.Next(),
                    &base, &cand)) {
        continue;
      }
      double cost_delta = rec.est_cost_new / rec.est_cost_default - 1.0;
      double latency_delta =
          exec::RelativeDelta(cand.latency_sec, base.latency_sec);
      result.cost_vs_latency.emplace_back(cost_delta, latency_delta);
      ++improved;
      if (latency_delta > 0.0) ++regressed;
    }
  }
  std::vector<double> xs, ys;
  for (auto& [x, y] : result.cost_vs_latency) {
    xs.push_back(x);
    ys.push_back(y);
  }
  result.correlation = PearsonCorrelation(xs, ys);
  result.improved_cost_latency_regress_fraction =
      improved == 0 ? 0.0
                    : static_cast<double>(regressed) /
                          static_cast<double>(improved);
  return result;
}

// ---------------------------------------------------------------------------
// Fig. 7 / Fig. 8.
// ---------------------------------------------------------------------------

IoPnResult RunIoVsPn(const ExperimentEnv& env, IoMetric metric, int days) {
  IoPnResult result;
  FlipEvaluator eval(&env.engine());
  Rng rng(env.config().seed ^ 0xbeef);
  for (int day = 0; day < days; ++day) {
    for (const JobFeatures& f : DayFeatures(env, day)) {
      // Every cost-improving flip of this job reaches flighting (this is the
      // historical flighting telemetry the paper's Figs. 7/8 are drawn from).
      for (const Recommendation& rec : ImprovingFlips(eval, f)) {
        exec::JobMetrics base, cand;
        if (!AbDeltas(env.engine(), f.row.instance, rec.ToConfig(),
                      rng.Next(), &base, &cand)) {
          continue;
        }
        double io_delta =
            metric == IoMetric::kDataRead
                ? exec::RelativeDelta(cand.data_read_bytes,
                                      base.data_read_bytes)
                : exec::RelativeDelta(cand.data_written_bytes,
                                      base.data_written_bytes);
        double pn_delta = exec::RelativeDelta(cand.pn_hours, base.pn_hours);
        result.io_vs_pn.emplace_back(io_delta, pn_delta);
      }
    }
  }
  std::vector<double> xs, ys;
  for (auto& [x, y] : result.io_vs_pn) {
    xs.push_back(x);
    ys.push_back(y);
  }
  result.correlation = PearsonCorrelation(xs, ys);
  auto fit = FitLinear(xs, ys);
  if (fit.ok()) result.trend = fit.value();
  return result;
}

// ---------------------------------------------------------------------------
// Fig. 9.
// ---------------------------------------------------------------------------

namespace {

/// One (flight, future outcome) observation for the validation study.
struct FlightObservation {
  advisor::ValidationSample sample;
};

std::vector<FlightObservation> CollectFlightObservations(
    const ExperimentEnv& env, int first_day, int last_day, Rng* rng) {
  std::vector<FlightObservation> out;
  FlipEvaluator eval(&env.engine());
  for (int day = first_day; day < last_day; ++day) {
    for (const JobFeatures& f : DayFeatures(env, day)) {
      // The validation dataset is drawn from the flips the pipeline actually
      // flights: recommendations with improved estimated cost (Sec. 4.3).
      for (const Recommendation& rec : ImprovingFlips(eval, f)) {
        // The flight run.
        exec::JobMetrics base, cand;
        if (!AbDeltas(env.engine(), f.row.instance, rec.ToConfig(),
                      rng->Next(), &base, &cand)) {
          continue;
        }
        flight::FlightResult flight;
        flight.data_read_delta =
            exec::RelativeDelta(cand.data_read_bytes, base.data_read_bytes);
        flight.data_written_delta = exec::RelativeDelta(
            cand.data_written_bytes, base.data_written_bytes);
        flight.pn_hours_delta =
            exec::RelativeDelta(cand.pn_hours, base.pn_hours);
        // The "future" occurrence: a later run of the same recurring job.
        exec::JobMetrics fb, fc;
        if (!AbDeltas(env.engine(), f.row.instance, rec.ToConfig(),
                      rng->Next(), &fb, &fc)) {
          continue;
        }
        FlightObservation obs;
        obs.sample = advisor::MakeSample(
            flight, exec::RelativeDelta(fc.pn_hours, fb.pn_hours));
        out.push_back(obs);
      }
    }
  }
  return out;
}

}  // namespace

ValidationAccuracyResult RunValidationAccuracy(const ExperimentEnv& env,
                                               int train_days,
                                               double threshold,
                                               int test_days) {
  ValidationAccuracyResult result;
  Rng rng(env.config().seed ^ 0x7e57);
  auto train = CollectFlightObservations(env, 0, train_days, &rng);
  std::vector<advisor::ValidationSample> samples;
  samples.reserve(train.size());
  for (auto& obs : train) samples.push_back(obs.sample);
  advisor::ValidationModel model(
      {.accept_threshold = threshold, .min_training_samples = 10});
  if (!model.Train(samples).ok()) return result;

  auto test = CollectFlightObservations(env, train_days,
                                        train_days + test_days, &rng);
  result.test_jobs = test.size();
  size_t below_threshold = 0, below_zero = 0;
  std::vector<std::vector<double>> test_features;
  std::vector<double> test_targets;
  for (const auto& obs : test) {
    double predicted = model.PredictPnDelta(obs.sample.data_read_delta,
                                            obs.sample.data_written_delta);
    double actual = obs.sample.future_pn_delta;
    result.predicted_vs_actual.emplace_back(predicted, actual);
    test_features.push_back(
        {obs.sample.data_read_delta, obs.sample.data_written_delta});
    test_targets.push_back(actual);
    if (predicted < threshold) {
      ++result.accepted;
      if (actual < threshold) ++below_threshold;
      if (actual < 0.0) ++below_zero;
    }
  }
  if (result.accepted > 0) {
    result.frac_actual_below_threshold =
        static_cast<double>(below_threshold) /
        static_cast<double>(result.accepted);
    result.frac_actual_below_zero = static_cast<double>(below_zero) /
                                    static_cast<double>(result.accepted);
  }
  result.model_r2 = model.regression().Score(test_features, test_targets);
  return result;
}

// ---------------------------------------------------------------------------
// Table 2 + Figs. 10/11/12.
// ---------------------------------------------------------------------------

AggregateImpactResult RunAggregateImpact(const ExperimentEnv& env,
                                         int train_days, int eval_days) {
  AggregateImpactResult result;
  sis::StatsInsightService sis;
  advisor::PipelineConfig pipeline_config;
  pipeline_config.flighting.total_budget_machine_hours = 1.0e6;
  pipeline_config.validation.min_training_samples = 30;
  pipeline_config.recommender.uniform_probes_per_job = 3;
  pipeline_config.personalizer.retrain_interval = 128;
  pipeline_config.personalizer.epsilon = 0.15;
  // Borrow the harness's pool instead of spawning a second one.
  advisor::QoAdvisorPipeline pipeline(&env.engine(), &sis, pipeline_config,
                                      env.runtime());

  for (int day = 0; day < train_days; ++day) {
    telemetry::WorkloadView view = env.BuildDayView(day, &sis);
    pipeline.RunDay(view).ok();
  }
  result.active_hints = sis.active_hints();

  double base_pn = 0, cand_pn = 0, base_lat = 0, cand_lat = 0;
  double base_vert = 0, cand_vert = 0;
  Rng rng(env.config().seed ^ 0xab1e);
  // Collect the hint-matched evaluation jobs serially (the salt sequence
  // must match the serial path: one Next() per matched job, in day/job
  // order), then fan the paired A/B runs out across the pool.
  struct EvalJob {
    workload::JobInstance job;
    opt::RuleConfig config;
    uint64_t salt = 0;
  };
  std::vector<EvalJob> eval_jobs;
  for (int day = train_days; day < train_days + eval_days; ++day) {
    for (const auto& job : env.driver().DayJobs(day)) {
      auto hint = sis.LookupHint(job.template_name);
      if (!hint.has_value()) continue;
      eval_jobs.push_back({job, hint->ToConfig(), rng.Next()});
    }
  }
  struct AbOutcome {
    bool ok = false;
    exec::JobMetrics base;
    exec::JobMetrics cand;
  };
  runtime::ForEachOrdered<AbOutcome>(
      env.runtime(), eval_jobs.size(),
      [&](size_t i) {
        return static_cast<uint64_t>(eval_jobs[i].job.template_id);
      },
      [](size_t i) { return static_cast<double>(i); },
      [&](size_t i) {
        AbOutcome out;
        out.ok = AbDeltas(env.engine(), eval_jobs[i].job, eval_jobs[i].config,
                          eval_jobs[i].salt, &out.base, &out.cand);
        return out;
      },
      [&](size_t, AbOutcome&& out) {
        if (!out.ok) return;
        const exec::JobMetrics& base = out.base;
        const exec::JobMetrics& cand = out.cand;
        ++result.matched_jobs;
        base_pn += base.pn_hours;
        cand_pn += cand.pn_hours;
        base_lat += base.latency_sec;
        cand_lat += cand.latency_sec;
        base_vert += base.vertices;
        cand_vert += cand.vertices;
        result.pn_deltas.push_back(
            exec::RelativeDelta(cand.pn_hours, base.pn_hours));
        result.latency_deltas.push_back(
            exec::RelativeDelta(cand.latency_sec, base.latency_sec));
        result.vertices_deltas.push_back(exec::RelativeDelta(
            static_cast<double>(cand.vertices),
            static_cast<double>(base.vertices)));
      });
  result.pn_hours_reduction = exec::RelativeDelta(cand_pn, base_pn);
  result.latency_reduction = exec::RelativeDelta(cand_lat, base_lat);
  result.vertices_reduction = exec::RelativeDelta(cand_vert, base_vert);
  std::sort(result.pn_deltas.begin(), result.pn_deltas.end());
  std::sort(result.latency_deltas.begin(), result.latency_deltas.end());
  std::sort(result.vertices_deltas.begin(), result.vertices_deltas.end());
  return result;
}

// ---------------------------------------------------------------------------
// Table 3.
// ---------------------------------------------------------------------------

RandomVsCbResult RunRandomVsCb(const ExperimentEnv& env, int cb_train_days,
                               int eval_day) {
  RandomVsCbResult result;
  // Train the bandit through the Recommendation task's off-policy loop,
  // with extra uniform probes per job to accelerate convergence.
  bandit::PersonalizerService personalizer(
      {.epsilon = 0.05, .seed = env.config().seed, .retrain_interval = 128});
  advisor::RecommenderConfig rec_config;
  rec_config.uniform_probes_per_job = 5;
  Recommender recommender(&env.engine(), &personalizer, rec_config);
  for (int day = 0; day < cb_train_days; ++day) {
    recommender.RecommendDay(DayFeatures(env, day), day, nullptr,
                             env.runtime());
  }
  personalizer.Retrain();

  Rng rng(env.config().seed ^ 0x7ab1e3);
  std::vector<JobFeatures> features = DayFeatures(env, eval_day, false);
  telemetry::WorkloadView all_view = env.BuildDayView(eval_day);
  result.jobs_total = all_view.rows.size();
  result.jobs_with_span = features.size();

  auto tally = [](FlipOutcomeCounts* counts, const Recommendation& rec) {
    switch (rec.outcome) {
      case RecompileOutcome::kLowerCost:
        ++counts->lower_cost;
        counts->total_est_cost += rec.est_cost_new;
        break;
      case RecompileOutcome::kEqualCost:
        ++counts->equal_cost;
        counts->total_est_cost += rec.est_cost_default;
        break;
      case RecompileOutcome::kHigherCost:
        ++counts->higher_cost;
        counts->total_est_cost += rec.est_cost_new;
        break;
      case RecompileOutcome::kRecompileFailure:
        ++counts->recompile_failures;
        // Failed recompilations fall back to the default plan's cost.
        counts->total_est_cost += rec.est_cost_default;
        break;
    }
  };

  FlipEvaluator eval(&env.engine());
  for (const JobFeatures& f : features) {
    result.default_total_est_cost += f.default_compilation->est_cost;
    std::vector<int> bits = f.span.Positions();
    // Random arm.
    int random_rule = bits[rng.UniformInt(bits.size())];
    tally(&result.random, eval.recommender.EvaluateFlip(f, random_rule));
    // CB arm: greedy choice over the learned policy (action 0 = no-op).
    bandit::RankRequest request;
    request.event_id = "t3_" + f.row.job_id;
    request.context = bandit::BuildContextFeatures(f.ToContext());
    bandit::RankableAction noop;
    noop.action_id = "noop";
    noop.features = bandit::BuildActionFeatures(-1, true);
    request.actions.push_back(std::move(noop));
    for (int bit : bits) {
      bandit::RankableAction a;
      a.action_id = std::to_string(bit);
      a.features = bandit::BuildActionFeatures(bit, false);
      request.actions.push_back(std::move(a));
    }
    auto rank = personalizer.Rank(request);
    int cb_rule = -1;
    if (rank.ok() && rank->chosen_index > 0) {
      cb_rule = bits[rank->chosen_index - 1];
    }
    tally(&result.cb, eval.recommender.EvaluateFlip(f, cb_rule));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Sec. 5.2 ablation.
// ---------------------------------------------------------------------------

CostFilterAblationResult RunCostFilterAblation(const ExperimentEnv& env,
                                               int day) {
  CostFilterAblationResult result;
  std::vector<JobFeatures> features = DayFeatures(env, day);

  auto run_arm = [&](bool with_filter, double budget_hours, size_t* requested,
                     double* budget, size_t* timeouts) {
    bandit::PersonalizerService personalizer({.seed = 23});
    advisor::RecommenderConfig rec_config;
    rec_config.use_contextual_bandit = false;  // random flips, as in Sec. 5.2
    rec_config.prune_non_improving = with_filter;
    Recommender recommender(&env.engine(), &personalizer, rec_config);
    std::vector<Recommendation> recs =
        recommender.RecommendDay(features, day, nullptr, env.runtime());
    *requested = recs.size();
    flight::FlightingConfig fc;
    fc.total_budget_machine_hours = budget_hours;
    fc.queue_capacity = 512;
    flight::FlightingService flighting(&env.engine(), fc, env.runtime());
    std::vector<flight::FlightRequest> requests;
    for (const auto& rec : recs) {
      flight::FlightRequest req;
      req.job = rec.instance;
      req.candidate = rec.ToConfig();
      req.est_cost_delta = rec.est_cost_default > 0.0
                               ? rec.est_cost_new / rec.est_cost_default - 1.0
                               : 0.0;
      requests.push_back(std::move(req));
    }
    auto flights = flighting.FlightBatch(std::move(requests), 99);
    for (const auto& fl : flights) {
      // "Timeouts" in the Sec. 5.2 sense: jobs the budget could not serve —
      // per-job timeouts plus outright budget rejections.
      if (fl.outcome == flight::FlightOutcome::kTimeout ||
          fl.outcome == flight::FlightOutcome::kBudgetRejected) {
        ++(*timeouts);
      }
    }
    *budget = flighting.budget_used_hours();
  };

  // The daily budget is provisioned for the filtered pipeline (2x headroom
  // over what it actually consumes); the unfiltered arm runs under the same
  // provision and blows through it.
  run_arm(true, 1.0e9, &result.flights_requested_with_filter,
          &result.budget_hours_with_filter, &result.timeouts_with_filter);
  double provisioned = std::max(1.0, 2.0 * result.budget_hours_with_filter);
  run_arm(true, provisioned, &result.flights_requested_with_filter,
          &result.budget_hours_with_filter, &result.timeouts_with_filter);
  run_arm(false, provisioned, &result.flights_requested_without_filter,
          &result.budget_hours_without_filter,
          &result.timeouts_without_filter);
  return result;
}

}  // namespace qo::experiments

// Recurring job templates and their per-occurrence instantiation.
//
// More than 60% of SCOPE jobs are recurring: "periodically arriving
// template-scripts with different input cardinalities and filter predicates"
// (paper Sec. 2.1). A JobTemplate here is a structural spec (inputs, joins,
// filters, aggregation, outputs) from which each occurrence generates:
//   - the script text (same operators; drifted selectivity annotations),
//   - a per-instance catalog (drifted true statistics + stale optimizer
//     estimates).
#ifndef QO_WORKLOAD_TEMPLATE_GEN_H_
#define QO_WORKLOAD_TEMPLATE_GEN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "scope/ast.h"
#include "scope/catalog.h"
#include "scope/types.h"

namespace qo::workload {

/// An input table of a template.
struct TableSpec {
  std::string path;
  std::vector<scope::Column> columns;
  double base_rows = 1e6;
  /// Base NDV per column (others default to base_rows / 100).
  std::unordered_map<std::string, double> base_ndv;
  /// Systematic optimizer-estimate bias for this table (stale statistics):
  /// est_rows = true_rows * est_bias (fixed per template, drifts per day).
  double est_bias = 1.0;
};

/// A filter in a template; selectivity drifts per occurrence.
struct FilterSpec {
  std::string column;
  scope::CompareOp op = scope::CompareOp::kEq;
  std::string literal;
  double base_selectivity = 0.1;
};

/// An equi-join step in a template's chain.
struct JoinSpec {
  std::string rowset;      ///< right-side rowset name
  std::string left_column;
  std::string right_column;
  double base_fanout = 1.0;
};

/// One SELECT statement of the template.
struct SelectSpec {
  std::string target;
  std::string from;
  std::vector<scope::SelectItem> items;
  std::vector<JoinSpec> joins;
  std::vector<FilterSpec> filters;
  std::vector<std::string> group_by;
};

/// One UNION ALL statement.
struct UnionSpec {
  std::string target;
  std::string left;
  std::string right;
};

/// A structural job template.
struct JobTemplate {
  int id = 0;
  std::string name;
  bool recurring = true;
  std::vector<TableSpec> tables;
  std::vector<SelectSpec> selects;
  std::vector<UnionSpec> unions;  ///< rendered before the selects
  std::vector<std::string> outputs;  ///< rowsets written (>=1)
};

/// A concrete occurrence of a template on a given day.
struct JobInstance {
  int template_id = 0;
  std::string template_name;
  std::string job_id;  ///< unique per occurrence
  int day = 0;
  bool recurring = true;
  std::string script;      ///< with ground-truth @ annotations
  scope::Catalog catalog;  ///< per-occurrence statistics
  uint64_t run_seed = 0;   ///< base seed for execution randomness
};

/// Generates random-but-plausible job templates. All draws are deterministic
/// given the seed.
class TemplateGenerator {
 public:
  explicit TemplateGenerator(uint64_t seed) : rng_(seed) {}

  /// Creates `count` templates with ids [first_id, first_id+count).
  std::vector<JobTemplate> Generate(int count, int first_id = 0);

  /// Creates one template (public for tests).
  JobTemplate GenerateOne(int id);

 private:
  Rng rng_;
};

/// Instantiates a template for one occurrence: drifts input sizes,
/// selectivities and the optimizer's stale estimates, then renders the
/// script text.
JobInstance Instantiate(const JobTemplate& tmpl, int day, int occurrence,
                        Rng* rng);

/// Renders the script text for a template given concrete per-occurrence
/// selectivities/fanouts. Exposed for tests.
std::string RenderScript(const JobTemplate& tmpl,
                         const std::unordered_map<std::string, double>& sels,
                         const std::unordered_map<std::string, double>& fans);

}  // namespace qo::workload

#endif  // QO_WORKLOAD_TEMPLATE_GEN_H_

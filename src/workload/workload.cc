#include "workload/workload.h"

namespace qo::workload {

WorkloadDriver::WorkloadDriver(WorkloadConfig config) : config_(config) {
  TemplateGenerator gen(config_.seed);
  templates_ = gen.Generate(config_.num_templates);
}

std::vector<JobInstance> WorkloadDriver::DayJobs(int day) const {
  Rng rng(config_.seed ^ (0x5851f42d4c957f2dULL *
                          static_cast<uint64_t>(day + 1)));
  std::vector<JobInstance> jobs;
  jobs.reserve(static_cast<size_t>(config_.jobs_per_day));
  // One-off jobs reuse the generator with day-scoped ids so they never
  // repeat across days.
  TemplateGenerator oneoff_gen(config_.seed ^ 0x9e3779b97f4a7c15ULL ^
                               static_cast<uint64_t>(day));
  int oneoff_id = 1000000 + day * 10000;
  for (int i = 0; i < config_.jobs_per_day; ++i) {
    if (rng.Bernoulli(config_.recurring_fraction) && !templates_.empty()) {
      size_t idx = rng.Zipf(templates_.size(), config_.template_skew);
      jobs.push_back(Instantiate(templates_[idx], day, i, &rng));
    } else {
      JobTemplate t = oneoff_gen.GenerateOne(oneoff_id++);
      t.recurring = false;
      jobs.push_back(Instantiate(t, day, i, &rng));
    }
  }
  return jobs;
}

}  // namespace qo::workload

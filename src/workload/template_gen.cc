#include "workload/template_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace qo::workload {

namespace {

using scope::Column;
using scope::ColumnType;
using scope::CompareOp;
using scope::SelectItem;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Key for the per-occurrence selectivity/fanout maps.
std::string FilterKey(size_t select_idx, size_t filter_idx) {
  return "s" + std::to_string(select_idx) + "_f" + std::to_string(filter_idx);
}
std::string JoinKey(size_t select_idx, size_t join_idx) {
  return "s" + std::to_string(select_idx) + "_j" + std::to_string(join_idx);
}

}  // namespace

JobTemplate TemplateGenerator::GenerateOne(int id) {
  JobTemplate t;
  t.id = id;
  t.name = "Template_" + std::to_string(id);

  Rng rng = rng_.Fork(static_cast<uint64_t>(id) + 1);
  const std::string prefix = "store://t" + std::to_string(id) + "/";

  // About a third of SCOPE jobs are plain copy/extract pipelines whose plan
  // no rule flip can change (empty span; the paper reports ~66% of jobs
  // have a non-empty span).
  const bool trivial = rng.Bernoulli(0.30);

  // --- Fact table: 6-16 columns, 1e6..5e9 rows (lognormal). ---
  const int n_dims = trivial ? 0 : static_cast<int>(rng.UniformInt(0, 3));
  const bool with_union = !trivial && rng.Bernoulli(0.15);
  const bool with_agg = !trivial && rng.Bernoulli(0.70);
  const bool extra_output = !trivial && rng.Bernoulli(0.25);

  TableSpec fact;
  fact.path = prefix + "fact";
  fact.base_rows = std::exp(rng.Normal(std::log(4.0e7), 1.4));
  fact.base_rows = std::clamp(fact.base_rows, 1.0e6, 5.0e9);
  fact.est_bias = rng.LogNormal(0.0, 0.6);
  const int n_cols = static_cast<int>(rng.UniformInt(6, 16));
  // Key columns for joins first, then attributes.
  std::vector<std::string> key_cols, attr_cols, numeric_cols, groupable_cols;
  for (int j = 0; j < n_dims; ++j) {
    std::string name = "f_key" + std::to_string(j);
    fact.columns.push_back({name, ColumnType::kLong});
    key_cols.push_back(name);
  }
  for (int c = 0; c < n_cols; ++c) {
    std::string name = "f_col" + std::to_string(c);
    double pick = rng.Uniform();
    if (pick < 0.35) {
      fact.columns.push_back({name, ColumnType::kString});
      fact.base_ndv[name] = rng.Uniform(10.0, 5.0e4);
      attr_cols.push_back(name);
      groupable_cols.push_back(name);
    } else if (pick < 0.7) {
      fact.columns.push_back({name, ColumnType::kDouble});
      fact.base_ndv[name] = fact.base_rows / rng.Uniform(2.0, 50.0);
      numeric_cols.push_back(name);
      attr_cols.push_back(name);
    } else {
      fact.columns.push_back({name, ColumnType::kInt});
      fact.base_ndv[name] = rng.Uniform(100.0, 1.0e6);
      attr_cols.push_back(name);
      groupable_cols.push_back(name);
    }
  }
  if (numeric_cols.empty()) {
    fact.columns.push_back({"f_val", ColumnType::kDouble});
    fact.base_ndv["f_val"] = fact.base_rows / 10.0;
    numeric_cols.push_back("f_val");
  }
  if (groupable_cols.empty()) {
    fact.columns.push_back({"f_grp", ColumnType::kString});
    fact.base_ndv["f_grp"] = rng.Uniform(10.0, 2.0e4);
    groupable_cols.push_back("f_grp");
  }
  t.tables.push_back(fact);

  // --- Dimension tables. ---
  for (int j = 0; j < n_dims; ++j) {
    TableSpec dim;
    dim.path = prefix + "dim" + std::to_string(j);
    dim.base_rows = fact.base_rows * rng.Uniform(0.0005, 0.08);
    dim.base_rows = std::clamp(dim.base_rows, 1000.0, 2.0e8);
    dim.est_bias = rng.LogNormal(0.0, 0.5);
    std::string pk = "d" + std::to_string(j) + "_pk";
    dim.columns.push_back({pk, ColumnType::kLong});
    dim.base_ndv[pk] = dim.base_rows;  // unique primary key
    const int extra = static_cast<int>(rng.UniformInt(2, 6));
    for (int c = 0; c < extra; ++c) {
      std::string name = "d";
      name += std::to_string(j);
      name += "_a";
      name += std::to_string(c);
      dim.columns.push_back({name, c % 2 == 0 ? ColumnType::kString
                                              : ColumnType::kDouble});
      dim.base_ndv[name] = rng.Uniform(5.0, dim.base_rows);
    }
    // The fact FK references an *active subset* of the dimension — a small
    // share of customers/products account for most fact rows. This is what
    // makes eager (pre-join) aggregation profitable on some templates.
    t.tables[0].base_ndv[key_cols[static_cast<size_t>(j)]] =
        std::max(10.0, dim.base_rows * rng.Uniform(0.01, 1.0));
    t.tables.push_back(std::move(dim));
  }

  // --- Optional UNION ALL: a sibling fact extract with identical schema. ---
  std::string chain = "fact_rs";
  if (with_union) {
    TableSpec fact_b = t.tables[0];
    fact_b.path = prefix + "fact_b";
    fact_b.base_rows *= rng.Uniform(0.2, 1.0);
    fact_b.est_bias = rng.LogNormal(0.0, 0.6);
    t.tables.push_back(std::move(fact_b));
    UnionSpec u;
    u.target = "unioned";
    u.left = "fact_rs";
    u.right = "fact_b_rs";
    t.unions.push_back(std::move(u));
    chain = "unioned";
  }

  // --- Filter statement over the chain start. ---
  const int n_filters = trivial ? 0 : static_cast<int>(rng.UniformInt(0, 3));
  {
    SelectSpec s;
    s.target = "filtered";
    s.from = chain;
    SelectItem star;
    star.column = "*";
    s.items.push_back(star);
    for (int f = 0; f < n_filters && !attr_cols.empty(); ++f) {
      FilterSpec fs;
      fs.column = attr_cols[rng.UniformInt(attr_cols.size())];
      if (rng.Bernoulli(0.5)) {
        fs.op = CompareOp::kEq;
        fs.literal = "\"v" + std::to_string(rng.UniformInt(100)) + "\"";
        fs.base_selectivity = std::exp(rng.Uniform(std::log(0.01),
                                                   std::log(0.7)));
      } else {
        fs.op = rng.Bernoulli(0.5) ? CompareOp::kGt : CompareOp::kLe;
        fs.literal = FormatDouble(rng.Uniform(0.0, 1000.0));
        fs.base_selectivity = rng.Uniform(0.15, 0.85);
      }
      s.filters.push_back(std::move(fs));
    }
    if (!s.filters.empty() || true) t.selects.push_back(std::move(s));
    chain = "filtered";
  }

  // --- Join chain over the dimensions. ---
  if (n_dims > 0) {
    SelectSpec s;
    s.target = "joined";
    s.from = chain;
    SelectItem star;
    star.column = "*";
    s.items.push_back(star);
    for (int j = 0; j < n_dims; ++j) {
      JoinSpec js;
      js.rowset = "dim" + std::to_string(j) + "_rs";
      js.left_column = key_cols[static_cast<size_t>(j)];
      js.right_column = "d" + std::to_string(j) + "_pk";
      // FK joins with occasional row-amplifying fanouts (e.g. joining
      // against slowly-changing dimensions or line-item expansions).
      js.base_fanout = rng.LogNormal(0.25, 0.55);
      s.joins.push_back(std::move(js));
    }
    t.selects.push_back(std::move(s));
    chain = "joined";
  }

  // --- Aggregation. ---
  if (with_agg) {
    SelectSpec s;
    s.target = "aggregated";
    s.from = chain;
    const int n_keys = static_cast<int>(rng.UniformInt(1, 2));
    for (int k = 0; k < n_keys && k < static_cast<int>(groupable_cols.size());
         ++k) {
      std::string col = groupable_cols[rng.UniformInt(groupable_cols.size())];
      bool dup = false;
      for (const auto& g : s.group_by) dup = dup || g == col;
      if (dup) continue;
      s.group_by.push_back(col);
      SelectItem key_item;
      key_item.column = col;
      s.items.push_back(std::move(key_item));
    }
    if (s.group_by.empty()) {
      s.group_by.push_back(groupable_cols[0]);
      SelectItem key_item;
      key_item.column = groupable_cols[0];
      s.items.push_back(std::move(key_item));
    }
    SelectItem sum_item;
    sum_item.agg = scope::AggFunc::kSum;
    sum_item.column = numeric_cols[rng.UniformInt(numeric_cols.size())];
    sum_item.alias = "total";
    s.items.push_back(std::move(sum_item));
    if (rng.Bernoulli(0.5)) {
      SelectItem cnt;
      cnt.agg = scope::AggFunc::kCount;
      cnt.column = "*";
      cnt.alias = "cnt";
      s.items.push_back(std::move(cnt));
    }
    t.selects.push_back(std::move(s));
    chain = "aggregated";
  }

  t.outputs.push_back(chain);
  if (extra_output && t.selects.size() > 1) {
    // Also materialize the pre-aggregation rowset (multi-output DAG).
    t.outputs.push_back(t.selects[t.selects.size() - 2].target);
  }
  return t;
}

std::vector<JobTemplate> TemplateGenerator::Generate(int count, int first_id) {
  std::vector<JobTemplate> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(GenerateOne(first_id + i));
  return out;
}

std::string RenderScript(
    const JobTemplate& tmpl,
    const std::unordered_map<std::string, double>& sels,
    const std::unordered_map<std::string, double>& fans) {
  std::string s;
  // EXTRACT statements: rowset name = <basename>_rs.
  for (const TableSpec& table : tmpl.tables) {
    std::string base = table.path.substr(table.path.find_last_of('/') + 1);
    s += base + "_rs = EXTRACT ";
    for (size_t i = 0; i < table.columns.size(); ++i) {
      if (i > 0) s += ", ";
      s += table.columns[i].name;
      s += ":";
      s += scope::ColumnTypeToString(table.columns[i].type);
    }
    s += " FROM \"" + table.path + "\";\n";
  }
  for (const UnionSpec& u : tmpl.unions) {
    s += u.target + " = " + u.left + " UNION ALL " + u.right + ";\n";
  }
  for (size_t si = 0; si < tmpl.selects.size(); ++si) {
    const SelectSpec& sel = tmpl.selects[si];
    s += sel.target + " = SELECT ";
    for (size_t i = 0; i < sel.items.size(); ++i) {
      if (i > 0) s += ", ";
      s += sel.items[i].ToString();
    }
    s += " FROM " + sel.from;
    for (size_t ji = 0; ji < sel.joins.size(); ++ji) {
      const JoinSpec& j = sel.joins[ji];
      auto it = fans.find(JoinKey(si, ji));
      double fanout = it != fans.end() ? it->second : j.base_fanout;
      s += "\n  JOIN " + j.rowset + " ON " + j.left_column + " == " +
           j.right_column + " @ " + FormatDouble(fanout);
    }
    for (size_t fi = 0; fi < sel.filters.size(); ++fi) {
      const FilterSpec& f = sel.filters[fi];
      auto it = sels.find(FilterKey(si, fi));
      double sel_value = it != sels.end() ? it->second : f.base_selectivity;
      s += fi == 0 ? "\n  WHERE " : " AND ";
      s += f.column;
      s += " ";
      s += scope::CompareOpToString(f.op);
      s += " ";
      s += f.literal;
      s += " @ " + FormatDouble(sel_value);
    }
    for (const std::string& g : sel.group_by) {
      s += (&g == &sel.group_by.front()) ? "\n  GROUP BY " : ", ";
      s += g;
    }
    s += ";\n";
  }
  for (size_t oi = 0; oi < tmpl.outputs.size(); ++oi) {
    s += "OUTPUT " + tmpl.outputs[oi] + " TO \"store://out/" + tmpl.name +
         "_" + std::to_string(oi) + "\";\n";
  }
  return s;
}

JobInstance Instantiate(const JobTemplate& tmpl, int day, int occurrence,
                        Rng* rng) {
  JobInstance inst;
  inst.template_id = tmpl.id;
  inst.template_name = tmpl.name;
  inst.day = day;
  inst.recurring = tmpl.recurring;
  inst.job_id = tmpl.name + "_d" + std::to_string(day) + "_o" +
                std::to_string(occurrence);
  inst.run_seed = rng->Next();

  // Drift the inputs and register per-occurrence statistics.
  for (const TableSpec& table : tmpl.tables) {
    double day_drift = rng->LogNormal(0.0, 0.16);
    double true_rows = std::max(100.0, table.base_rows * day_drift);
    scope::TableStats stats;
    stats.true_rows = true_rows;
    // Stale estimates: template-level bias plus day jitter.
    stats.est_rows =
        std::max(10.0, true_rows * table.est_bias * rng->LogNormal(0.0, 0.12));
    stats.avg_row_bytes = 0.0;
    for (const auto& col : table.columns) {
      stats.avg_row_bytes += scope::ColumnTypeWidth(col.type);
    }
    double scale = true_rows / std::max(1.0, table.base_rows);
    for (const auto& col : table.columns) {
      scope::ColumnStats cs;
      auto it = table.base_ndv.find(col.name);
      double base = it != table.base_ndv.end() ? it->second
                                               : table.base_rows / 100.0;
      cs.true_ndv = std::max(1.0, std::min(base * std::sqrt(scale), true_rows));
      cs.est_ndv = std::max(1.0, cs.true_ndv * rng->LogNormal(0.0, 0.45));
      stats.columns[col.name] = cs;
    }
    inst.catalog.RegisterTable(table.path, std::move(stats));
  }

  // Drift filter selectivities and join fanouts.
  std::unordered_map<std::string, double> sels, fans;
  for (size_t si = 0; si < tmpl.selects.size(); ++si) {
    const SelectSpec& sel = tmpl.selects[si];
    for (size_t fi = 0; fi < sel.filters.size(); ++fi) {
      double v = sel.filters[fi].base_selectivity * rng->LogNormal(0.0, 0.25);
      sels[FilterKey(si, fi)] = std::clamp(v, 0.0005, 0.95);
    }
    for (size_t ji = 0; ji < sel.joins.size(); ++ji) {
      double v = sel.joins[ji].base_fanout * rng->LogNormal(0.0, 0.12);
      fans[JoinKey(si, ji)] = std::clamp(v, 0.01, 50.0);
    }
  }
  inst.script = RenderScript(tmpl, sels, fans);
  return inst;
}

}  // namespace qo::workload

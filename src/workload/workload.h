// Daily workload driver: draws job submissions (recurring template
// occurrences + one-off jobs) for each simulated day.
#ifndef QO_WORKLOAD_WORKLOAD_H_
#define QO_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "workload/template_gen.h"

namespace qo::workload {

struct WorkloadConfig {
  int num_templates = 80;
  int jobs_per_day = 150;
  /// Fraction of daily submissions drawn from recurring templates (the paper
  /// reports >60% of SCOPE jobs are recurring).
  double recurring_fraction = 0.65;
  /// Zipf skew of template popularity (0 = uniform).
  double template_skew = 0.5;
  uint64_t seed = 20211101;  ///< the month QO-Advisor shipped
};

/// Deterministic workload: the same (config, day) always produces the same
/// job instances, which is what lets A/A and week-over-week experiments
/// isolate cluster variance from workload drift.
class WorkloadDriver {
 public:
  explicit WorkloadDriver(WorkloadConfig config = {});

  const WorkloadConfig& config() const { return config_; }
  const std::vector<JobTemplate>& templates() const { return templates_; }

  /// All submissions for `day` (0-based). Recurring occurrences carry their
  /// template id; one-off jobs get synthetic single-use templates.
  std::vector<JobInstance> DayJobs(int day) const;

 private:
  WorkloadConfig config_;
  std::vector<JobTemplate> templates_;
};

}  // namespace qo::workload

#endif  // QO_WORKLOAD_WORKLOAD_H_

// The end-to-end QO-Advisor daily pipeline (paper Fig. 1 and Sec. 2.5):
//
//   workload view -> Feature Generation -> Recommendation (contextual
//   bandit + recompilation) -> Flighting -> Validation -> Hint Generation
//   -> SIS upload.
//
// One pipeline instance persists across days: the Personalizer keeps
// learning (incrementally — each retrain consumes only the examples
// rewarded since the last one, and its event log is bounded by
// PersonalizerConfig::retention_window, so memory stays constant over an
// unbounded run), the validation model retrains as flight telemetry
// accumulates, and hints land in the SIS where the optimizer picks them up
// for the next occurrence of each template.
#ifndef QO_CORE_PIPELINE_H_
#define QO_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "bandit/personalizer.h"
#include "core/feature_gen.h"
#include "core/hint_gen.h"
#include "core/recommend.h"
#include "core/validation.h"
#include "flighting/flighting.h"
#include "guard/guardrail.h"
#include "runtime/runtime.h"
#include "sis/sis.h"
#include "telemetry/workload_view.h"

namespace qo::advisor {

struct PipelineConfig {
  RecommenderConfig recommender;
  ValidationModelConfig validation;
  flight::FlightingConfig flighting;
  bandit::PersonalizerConfig personalizer;
  /// Flight at most this many jobs per day (budget guard, Sec. 4.3).
  size_t max_flights_per_day = 48;
  /// One representative job per template is flighted (Sec. 4.3).
  bool one_flight_per_template = true;
  /// Consider only recurring jobs (the paper's current scope, Sec. 2.1).
  bool recurring_only = true;
  /// Parallel runtime for the span/recompilation and flighting fan-outs.
  /// Deterministic: any num_threads produces byte-identical day reports,
  /// SIS uploads and learning state.
  runtime::RuntimeOptions runtime;
  /// Guardrails + chaos fault injection. Defaults read QO_GUARD and the
  /// QO_FAULT_* knobs; with those unset everything here is inert and the
  /// pipeline behaves bit-for-bit as before.
  guard::GuardConfig guard = guard::GuardConfig::FromEnv();
};

/// Per-day pipeline telemetry.
struct PipelineDayReport {
  int day = 0;
  FeatureGenStats feature_gen;
  RecommenderStats recommender;
  size_t flight_requests = 0;
  size_t flights_success = 0;
  size_t flights_failure = 0;
  size_t flights_timeout = 0;  ///< real per-job flighting timeouts
  size_t flights_filtered = 0;
  size_t flights_budget_rejected = 0;  ///< never admitted: budget ran out
  size_t validated = 0;
  size_t hints_uploaded = 0;
  double flight_budget_used_hours = 0.0;
  bool validation_model_trained = false;
  // Guardrail activity (zero when the guard layer is disabled).
  size_t hints_reverted = 0;      ///< watchdog auto-reverts this day
  size_t quarantine_blocked = 0;  ///< candidates blocked by quarantine
  size_t breaker_blocked = 0;     ///< candidates blocked by open breakers
  size_t flight_retries = 0;
  size_t flights_recovered = 0;   ///< retries that turned into success
  size_t telemetry_rows_dropped = 0;
  size_t faults_injected = 0;     ///< injected faults the day acted on
  bool hint_file_rejected = false;
  bool steering_disabled = false;  ///< global breaker was open today

  /// Canonical one-line rendering of every counter — what the chaos
  /// determinism tests compare byte-for-byte across thread counts.
  std::string ToString() const;
};

/// The daily-pipeline orchestrator.
class QoAdvisorPipeline {
 public:
  /// When `runtime` is non-null the pipeline borrows it (sharing one pool
  /// with the caller, e.g. the experiment harness) and ignores
  /// config.runtime; otherwise it owns a pool built from config.runtime.
  /// Likewise `personalizer`: non-null borrows the caller's learner (the
  /// advisor service passes its tenant's, so serving and pipeline traffic
  /// share one event log/model) and ignores config.personalizer; null owns
  /// one built from config.personalizer.
  QoAdvisorPipeline(const engine::ScopeEngine* engine,
                    sis::StatsInsightService* sis, PipelineConfig config = {},
                    runtime::ParallelRuntime* runtime = nullptr,
                    bandit::PersonalizerService* personalizer = nullptr);
  /// Deregisters the pipeline's registry collector.
  ~QoAdvisorPipeline();
  QoAdvisorPipeline(const QoAdvisorPipeline&) = delete;
  QoAdvisorPipeline& operator=(const QoAdvisorPipeline&) = delete;

  /// Runs the full pipeline over one day's denormalized view.
  Result<PipelineDayReport> RunDay(const telemetry::WorkloadView& view);

  bandit::PersonalizerService& personalizer() { return *personalizer_; }
  runtime::ParallelRuntime& runtime() { return *runtime_; }
  flight::FlightingService& flighting() { return flighting_; }
  ValidationModel& validation_model() { return validation_; }
  /// Guardrail state (watchdog, breakers, counters) — read-mostly for
  /// tests/demos; the pipeline drives it on the serial path.
  guard::SteeringGuard& steering_guard() { return guard_; }
  const guard::FaultInjector& fault_injector() const { return injector_; }
  const std::vector<ValidationSample>& validation_samples() const {
    return validation_samples_;
  }
  const PipelineConfig& config() const { return config_; }

 private:
  /// Picks one representative recommendation per template (Sec. 4.3).
  std::vector<Recommendation> PickRepresentatives(
      std::vector<Recommendation> recs) const;

  const engine::ScopeEngine* engine_;
  sis::StatsInsightService* sis_;
  PipelineConfig config_;
  /// Owned pool (null when a caller's runtime is borrowed). Declared before
  /// runtime_/flighting_, which point at it.
  std::unique_ptr<runtime::ParallelRuntime> owned_runtime_;
  runtime::ParallelRuntime* runtime_;
  /// Declared before flighting_/recommender_, which hold a pointer to it.
  guard::FaultInjector injector_;
  guard::SteeringGuard guard_;
  /// Owned learner (null when a caller's personalizer is borrowed).
  std::unique_ptr<bandit::PersonalizerService> owned_personalizer_;
  bandit::PersonalizerService* personalizer_;
  flight::FlightingService flighting_;
  Recommender recommender_;
  ValidationModel validation_;
  std::vector<ValidationSample> validation_samples_;
  /// Cumulative across RunDay calls, exported as "pipeline.*" series by the
  /// registry collector below (the bandit/flighting/SIS surfaces ride along
  /// in the same callback).
  struct Cumulative {
    uint64_t days = 0;
    uint64_t flight_requests = 0;
    uint64_t validated = 0;
    uint64_t hints_uploaded = 0;
  } cum_;
  int collector_id_ = -1;
};

}  // namespace qo::advisor

#endif  // QO_CORE_PIPELINE_H_

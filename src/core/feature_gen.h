// Feature Generation: the first task of the daily QO-Advisor pipeline
// (paper Sec. 4.1). Consumes the denormalized workload view, computes job
// spans, and emits aggregated job-level features for the Recommendation
// task. Jobs with an empty span are dropped — no flip can change their plan.
#ifndef QO_CORE_FEATURE_GEN_H_
#define QO_CORE_FEATURE_GEN_H_

#include <memory>
#include <vector>

#include "bandit/features.h"
#include "core/span.h"
#include "telemetry/workload_view.h"

namespace qo::runtime {
class ParallelRuntime;
}  // namespace qo::runtime

namespace qo::advisor {

/// Per-job features handed to the Recommendation task.
struct JobFeatures {
  telemetry::WorkloadViewRow row;
  BitVector256 span;
  /// Shared with the engine's compilation cache (immutable).
  std::shared_ptr<const opt::CompilationOutput> default_compilation;

  /// The bandit context built from the span and Table 1 features.
  bandit::JobContext ToContext() const {
    bandit::JobContext ctx;
    ctx.span = span;
    ctx.row_count = row.row_count;
    ctx.est_cost = row.est_cost;
    ctx.bytes_read = row.bytes_read;
    ctx.total_vertices = row.total_vertices;
    return ctx;
  }
};

struct FeatureGenStats {
  size_t input_jobs = 0;
  size_t empty_span_dropped = 0;
  size_t compile_failures = 0;
  size_t emitted = 0;
};

/// Runs feature generation over a day's view. With a runtime attached, the
/// span computations (the pipeline's hottest recompilation loop) fan out
/// across the pool sharded by template id; results commit in row order, so
/// output and stats are byte-identical to the serial path.
std::vector<JobFeatures> GenerateFeatures(
    const engine::ScopeEngine& engine, const telemetry::WorkloadView& view,
    FeatureGenStats* stats = nullptr,
    runtime::ParallelRuntime* runtime = nullptr);

}  // namespace qo::advisor

#endif  // QO_CORE_FEATURE_GEN_H_

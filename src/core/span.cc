#include "core/span.h"

namespace qo::advisor {

Result<SpanResult> ComputeJobSpan(const engine::ScopeEngine& engine,
                                  const workload::JobInstance& job,
                                  int max_iterations) {
  const auto& registry = opt::RuleRegistry::Get();
  const BitVector256& required =
      registry.CategoryMask(opt::RuleCategory::kRequired);
  const BitVector256 flippable =
      registry.CategoryMask(opt::RuleCategory::kOnByDefault) |
      registry.CategoryMask(opt::RuleCategory::kOffByDefault) |
      registry.CategoryMask(opt::RuleCategory::kImplementation);

  // Implementation rules that are the *only* way to implement their
  // operator. Flipping one of these can never produce an alternative plan —
  // recompilation simply fails — so the span heuristic skips them (they are
  // infrastructure, like SCOPE's single-implementation physical operators).
  BitVector256 sole_impls = BitVector256::FromPositions({
      opt::rules::kScanImpl,
      opt::rules::kFilterImpl,
      opt::rules::kProjectImpl,
      opt::rules::kOutputImpl,
      opt::rules::kExchangeShuffleImpl,
      opt::rules::kExchangeGatherImpl,
  });

  SpanResult result;
  QO_ASSIGN_OR_RETURN(result.default_compilation,
                      engine.CompileShared(job, opt::RuleConfig::Default()));
  result.iterations = 1;

  // Seed: flippable rules used by the default plan.
  BitVector256 seen = result.default_compilation->signature & flippable;
  result.span = seen;

  // Fix-point loop: enable all off-by-default rules, disable everything seen
  // so far, recompile, and absorb newly used rules.
  opt::RuleConfig config = opt::RuleConfig::Default();
  for (int pos :
       registry.ByCategory(opt::RuleCategory::kOffByDefault)) {
    config.Enable(pos);
  }
  while (result.iterations < max_iterations) {
    opt::RuleConfig attempt = config;
    // Sole implementations stay enabled: disabling them guarantees failure
    // and would end discovery before alternatives can surface.
    for (int pos : seen.AndNot(sole_impls).Positions()) attempt.Disable(pos);
    auto compiled = engine.CompileShared(job, attempt);
    ++result.iterations;
    if (!compiled.ok()) {
      result.ended_by_failure = true;
      break;
    }
    BitVector256 used = (*compiled)->signature & flippable;
    BitVector256 fresh = used.AndNot(seen);
    if (fresh.None()) break;
    seen |= fresh;
    result.span |= fresh;
  }
  // Required rules and sole-implementation rules are never part of the span.
  result.span = result.span.AndNot(required).AndNot(sole_impls);
  return result;
}

}  // namespace qo::advisor

// The Validation model (paper Secs. 3.2, 4.3 and 5.3).
//
// A supervised linear regression predicting the future PNhours delta of a
// rule flip from the DataRead and DataWritten deltas observed in a single
// flighting run. A recommendation is accepted only when the predicted delta
// clears a safety threshold (-0.1 in production: at least a 10% PNhours
// reduction is expected).
#ifndef QO_CORE_VALIDATION_H_
#define QO_CORE_VALIDATION_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "flighting/flighting.h"

namespace qo::advisor {

/// One training point: flighted deltas -> the PNhours delta observed on a
/// later occurrence (what the model must predict).
struct ValidationSample {
  double data_read_delta = 0.0;
  double data_written_delta = 0.0;
  double flight_pn_delta = 0.0;   ///< PNhours delta seen in the flight itself
  double future_pn_delta = 0.0;   ///< the regression target
};

struct ValidationModelConfig {
  /// Predicted PNhours delta must be below this to accept (Sec. 4.3).
  double accept_threshold = -0.10;
  /// Minimum samples before the model is considered trained.
  size_t min_training_samples = 40;
};

/// The validation model.
class ValidationModel {
 public:
  explicit ValidationModel(ValidationModelConfig config = {})
      : config_(config) {}

  /// Fits PNhours delta ~ (DataRead delta, DataWritten delta).
  /// FailedPrecondition with fewer than min_training_samples points.
  Status Train(const std::vector<ValidationSample>& samples);

  bool trained() const { return trained_; }

  /// Predicted future PNhours delta for a flight result.
  double PredictPnDelta(const flight::FlightResult& flight) const;
  double PredictPnDelta(double data_read_delta,
                        double data_written_delta) const;

  /// Acceptance decision: prediction below the safety threshold.
  bool Accept(const flight::FlightResult& flight) const {
    return trained_ && PredictPnDelta(flight) < config_.accept_threshold;
  }

  const ValidationModelConfig& config() const { return config_; }
  const LinearRegression& regression() const { return regression_; }

 private:
  ValidationModelConfig config_;
  LinearRegression regression_;
  bool trained_ = false;
};

/// Builds validation samples from flight results by pairing each successful
/// flight with a later (re-executed) occurrence of the same job — the
/// "week0 train / week1 test" protocol of Sec. 4.3.
ValidationSample MakeSample(const flight::FlightResult& flight,
                            double future_pn_delta);

}  // namespace qo::advisor

#endif  // QO_CORE_VALIDATION_H_

#include "core/multi_flip.h"

namespace qo::advisor {

Result<MultiFlipResult> GreedyMultiFlip(
    const engine::ScopeEngine& engine, const workload::JobInstance& job,
    const BitVector256& span, int horizon, double min_relative_gain,
    std::shared_ptr<const opt::CompilationOutput> default_compilation) {
  MultiFlipResult result;
  if (default_compilation == nullptr) {
    QO_ASSIGN_OR_RETURN(default_compilation,
                        engine.CompileShared(job, opt::RuleConfig::Default()));
  }
  result.est_cost_default = default_compilation->est_cost;
  result.est_cost_final = default_compilation->est_cost;

  opt::RuleConfig current = opt::RuleConfig::Default();
  BitVector256 remaining = span;
  for (int step = 0; step < horizon && remaining.Any(); ++step) {
    int best_flip = -1;
    double best_cost = result.est_cost_final;
    for (int bit : remaining.Positions()) {
      opt::RuleConfig candidate = current;
      candidate.Flip(bit);
      auto compiled = engine.CompileShared(job, candidate);
      if (!compiled.ok()) continue;  // this flip breaks compilation; skip
      if ((*compiled)->est_cost <
          best_cost * (1.0 - min_relative_gain)) {
        best_cost = (*compiled)->est_cost;
        best_flip = bit;
      }
    }
    if (best_flip < 0) break;  // no flip improves enough
    current.Flip(best_flip);
    remaining.Clear(best_flip);
    result.flips.push_back(best_flip);
    result.est_cost_trajectory.push_back(best_cost);
    result.est_cost_final = best_cost;
  }
  return result;
}

}  // namespace qo::advisor

// Hint Generation: the final pipeline task (paper Sec. 4.4).
//
// Gathers validated (job template, rule flip) pairs, explodes them to all
// jobs of the template (implicitly — SIS serves hints by template name), and
// writes the SIS-format hint file.
#ifndef QO_CORE_HINT_GEN_H_
#define QO_CORE_HINT_GEN_H_

#include <vector>

#include "core/recommend.h"
#include "sis/sis.h"

namespace qo::advisor {

/// Builds a hint file from validated recommendations, keeping one hint per
/// template (first wins; recommendations are per representative job).
sis::HintFile BuildHintFile(const std::vector<Recommendation>& validated,
                            int day);

}  // namespace qo::advisor

#endif  // QO_CORE_HINT_GEN_H_

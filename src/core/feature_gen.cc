#include "core/feature_gen.h"

#include "runtime/runtime.h"

namespace qo::advisor {

std::vector<JobFeatures> GenerateFeatures(const engine::ScopeEngine& engine,
                                          const telemetry::WorkloadView& view,
                                          FeatureGenStats* stats,
                                          runtime::ParallelRuntime* runtime) {
  FeatureGenStats local;
  std::vector<JobFeatures> out;
  const auto& rows = view.rows;
  local.input_jobs = rows.size();
  runtime::ForEachOrdered<Result<SpanResult>>(
      runtime, rows.size(),
      [&](size_t i) { return static_cast<uint64_t>(rows[i].template_id); },
      [](size_t i) { return static_cast<double>(i); },
      [&](size_t i) { return ComputeJobSpan(engine, rows[i].instance); },
      [&](size_t i, Result<SpanResult>&& span) {
        if (!span.ok()) {
          ++local.compile_failures;
          return;
        }
        if (span->span.None()) {
          ++local.empty_span_dropped;
          return;
        }
        JobFeatures f;
        f.row = rows[i];
        f.span = span->span;
        f.default_compilation = std::move(span->default_compilation);
        out.push_back(std::move(f));
      });
  local.emitted = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace qo::advisor

#include "core/feature_gen.h"

namespace qo::advisor {

std::vector<JobFeatures> GenerateFeatures(const engine::ScopeEngine& engine,
                                          const telemetry::WorkloadView& view,
                                          FeatureGenStats* stats) {
  FeatureGenStats local;
  std::vector<JobFeatures> out;
  local.input_jobs = view.rows.size();
  for (const auto& row : view.rows) {
    auto span = ComputeJobSpan(engine, row.instance);
    if (!span.ok()) {
      ++local.compile_failures;
      continue;
    }
    if (span->span.None()) {
      ++local.empty_span_dropped;
      continue;
    }
    JobFeatures f;
    f.row = row;
    f.span = span->span;
    f.default_compilation = std::move(span->default_compilation);
    out.push_back(std::move(f));
  }
  local.emitted = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace qo::advisor

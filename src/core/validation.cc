#include "core/validation.h"

namespace qo::advisor {

Status ValidationModel::Train(const std::vector<ValidationSample>& samples) {
  if (samples.size() < config_.min_training_samples) {
    return Status::FailedPrecondition(
        "need at least " + std::to_string(config_.min_training_samples) +
        " samples, have " + std::to_string(samples.size()));
  }
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  features.reserve(samples.size());
  for (const ValidationSample& s : samples) {
    features.push_back({s.data_read_delta, s.data_written_delta});
    targets.push_back(s.future_pn_delta);
  }
  QO_RETURN_IF_ERROR(regression_.Fit(features, targets));
  trained_ = true;
  return Status::OK();
}

double ValidationModel::PredictPnDelta(double data_read_delta,
                                       double data_written_delta) const {
  return regression_.Predict({data_read_delta, data_written_delta});
}

double ValidationModel::PredictPnDelta(
    const flight::FlightResult& flight) const {
  return PredictPnDelta(flight.data_read_delta, flight.data_written_delta);
}

ValidationSample MakeSample(const flight::FlightResult& flight,
                            double future_pn_delta) {
  ValidationSample s;
  s.data_read_delta = flight.data_read_delta;
  s.data_written_delta = flight.data_written_delta;
  s.flight_pn_delta = flight.pn_hours_delta;
  s.future_pn_delta = future_pn_delta;
  return s;
}

}  // namespace qo::advisor

#include "core/pipeline.h"

#include <cstdio>
#include <set>

#include "obs/span.h"

namespace qo::advisor {

std::string PipelineDayReport::ToString() const {
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "day=%d jobs=%zu emitted=%zu compile_fail=%zu fwd=%zu "
      "faults_rec=%zu rewards_dropped=%zu req=%zu ok=%zu fail=%zu to=%zu "
      "filt=%zu budget_rej=%zu val=%zu hints=%zu budget=%.6f trained=%d "
      "reverted=%zu quarantined=%zu breaker_blocked=%zu retries=%zu "
      "recovered=%zu rows_dropped=%zu faults=%zu hint_rej=%d disabled=%d",
      day, feature_gen.input_jobs, feature_gen.emitted,
      feature_gen.compile_failures, recommender.forwarded,
      recommender.faults_injected, recommender.rewards_dropped,
      flight_requests, flights_success, flights_failure, flights_timeout,
      flights_filtered, flights_budget_rejected, validated, hints_uploaded,
      flight_budget_used_hours, validation_model_trained ? 1 : 0,
      hints_reverted, quarantine_blocked, breaker_blocked, flight_retries,
      flights_recovered, telemetry_rows_dropped, faults_injected,
      hint_file_rejected ? 1 : 0, steering_disabled ? 1 : 0);
  return line;
}

QoAdvisorPipeline::QoAdvisorPipeline(const engine::ScopeEngine* engine,
                                     sis::StatsInsightService* sis,
                                     PipelineConfig config,
                                     runtime::ParallelRuntime* runtime,
                                     bandit::PersonalizerService* personalizer)
    : engine_(engine),
      sis_(sis),
      config_(config),
      owned_runtime_(runtime != nullptr
                         ? nullptr
                         : std::make_unique<runtime::ParallelRuntime>(
                               config.runtime)),
      runtime_(runtime != nullptr ? runtime : owned_runtime_.get()),
      injector_(config.guard.faults),
      guard_(config.guard),
      owned_personalizer_(personalizer != nullptr
                              ? nullptr
                              : std::make_unique<bandit::PersonalizerService>(
                                    config.personalizer)),
      personalizer_(personalizer != nullptr ? personalizer
                                            : owned_personalizer_.get()),
      flighting_(engine, config.flighting, runtime_, &injector_),
      recommender_(engine, personalizer_, config.recommender, &injector_),
      validation_(config.validation) {
  // One collector covers every surface the pipeline owns or borrows:
  // Personalizer (bandit.*), flighting (flight.*), SIS hint lifecycle
  // (sis.*) and the pipeline's own cumulative day counters (pipeline.*).
  collector_id_ =
      obs::Registry::Get().AddCollector([this](obs::SeriesSink& sink) {
        telemetry::ExportSeries(personalizer_->telemetry(), sink);
        telemetry::ExportSeries(flighting_.telemetry(), sink);
        sink.Add("sis.version", static_cast<double>(sis_->current_version()));
        sink.Add("sis.active_hints",
                 static_cast<double>(sis_->active_hints()));
        sink.Add("sis.hints_uploaded",
                 static_cast<double>(sis_->total_hints_uploaded()));
        sink.Add("sis.hints_reverted",
                 static_cast<double>(sis_->hints_reverted()));
        sink.Add("pipeline.days", static_cast<double>(cum_.days));
        sink.Add("pipeline.flight_requests",
                 static_cast<double>(cum_.flight_requests));
        sink.Add("pipeline.validated", static_cast<double>(cum_.validated));
        sink.Add("pipeline.hints_uploaded",
                 static_cast<double>(cum_.hints_uploaded));
        telemetry::ExportSeries(guard_.telemetry(), sink);
      });
}

QoAdvisorPipeline::~QoAdvisorPipeline() {
  obs::Registry::Get().RemoveCollector(collector_id_);
}

std::vector<Recommendation> QoAdvisorPipeline::PickRepresentatives(
    std::vector<Recommendation> recs) const {
  if (!config_.one_flight_per_template) return recs;
  std::set<int> seen;
  std::vector<Recommendation> out;
  for (auto& rec : recs) {
    if (seen.insert(rec.template_id).second) {
      out.push_back(std::move(rec));
    }
  }
  return out;
}

Result<PipelineDayReport> QoAdvisorPipeline::RunDay(
    const telemetry::WorkloadView& view) {
  QO_OBS_SPAN("run_day");
  PipelineDayReport report;
  report.day = view.day;

  // --- Stale-telemetry faults: rows that never arrived at the view. ---
  // Dropped before anything (watchdog included) sees them; pure per
  // (day, job), counted on this serial path only.
  telemetry::WorkloadView arrived_storage;
  const telemetry::WorkloadView* arrived = &view;
  if (injector_.armed() &&
      injector_.config().telemetry_drop_prob > 0.0) {
    arrived_storage.day = view.day;
    for (const auto& row : view.rows) {
      if (injector_.ShouldInject(guard::FaultSite::kTelemetry, view.day,
                                 row.job_id)) {
        ++report.telemetry_rows_dropped;
        ++guard_.counters().faults_telemetry_drop;
        continue;
      }
      arrived_storage.rows.push_back(row);
    }
    arrived = &arrived_storage;
  }

  // --- Post-deployment watchdog: monitor yesterday's hints against today's
  // production telemetry; auto-revert sustained regressions and quarantine
  // the (template, rule) pairs. Monitoring continues even on days the
  // breaker keeps steering off.
  if (guard_.enabled()) {
    std::vector<guard::WatchdogAction> reverts =
        guard_.watchdog().ObserveDay(*arrived, sis_);
    report.hints_reverted = reverts.size();
  }

  // --- Global circuit breaker: when open, the day runs unsteered — no
  // recommendation, flighting or hint upload; production jobs keep running
  // on default configurations and the watchdog keeps watching.
  if (guard_.enabled() && !guard_.SteeringAllowed(view.day)) {
    report.steering_disabled = true;
    guard_.CloseDay(view.day);
    ++cum_.days;
    return report;
  }

  // --- Feature Generation (recurring jobs only, Sec. 2.1). ---
  telemetry::WorkloadView filtered;
  filtered.day = view.day;
  for (const auto& row : arrived->rows) {
    if (!config_.recurring_only || row.recurring) filtered.rows.push_back(row);
  }
  std::vector<JobFeatures> features = [&] {
    QO_OBS_SPAN("feature_gen");
    return GenerateFeatures(*engine_, filtered, &report.feature_gen, runtime_);
  }();

  // --- Recommendation (CB + recompilation + pruning). ---
  std::vector<Recommendation> recs = recommender_.RecommendDay(
      features, view.day, &report.recommender, runtime_);

  // Guard bookkeeping for the recommendation boundary's injected faults.
  guard_.counters().faults_compile += report.recommender.faults_injected;
  guard_.counters().faults_reward_drop += report.recommender.rewards_dropped;

  // --- Flight selection: one representative per template, budget-capped.
  std::vector<Recommendation> candidates = PickRepresentatives(std::move(recs));
  // Guardrail filters: quarantined (template, rule) pairs stay blocked for
  // their cool-down; templates with an open breaker sit the day out.
  if (guard_.enabled()) {
    std::vector<Recommendation> allowed;
    allowed.reserve(candidates.size());
    for (auto& rec : candidates) {
      if (guard_.watchdog().Quarantined(rec.template_name, rec.rule_id,
                                        view.day)) {
        ++report.quarantine_blocked;
        ++guard_.counters().quarantine_blocked;
        continue;
      }
      if (!guard_.TemplateAllowed(rec.template_name, view.day)) {
        ++report.breaker_blocked;
        ++guard_.counters().template_blocked;
        continue;
      }
      allowed.push_back(std::move(rec));
    }
    candidates = std::move(allowed);
  }
  if (candidates.size() > config_.max_flights_per_day) {
    candidates.resize(config_.max_flights_per_day);
  }
  std::vector<flight::FlightRequest> requests;
  requests.reserve(candidates.size());
  for (const Recommendation& rec : candidates) {
    flight::FlightRequest req;
    req.job = rec.instance;
    req.baseline = opt::RuleConfig::Default();
    req.candidate = rec.ToConfig();
    req.est_cost_delta = rec.est_cost_default > 0.0
                             ? rec.est_cost_new / rec.est_cost_default - 1.0
                             : 0.0;
    requests.push_back(std::move(req));
  }
  report.flight_requests = requests.size();
  double budget_before = flighting_.budget_used_hours();
  std::vector<flight::FlightResult> flights = flighting_.FlightBatch(
      std::move(requests), static_cast<uint64_t>(view.day) * 7919);
  report.flight_budget_used_hours =
      flighting_.budget_used_hours() - budget_before;

  // Align flights back to their recommendations by job id.
  auto find_rec = [&](const std::string& job_id) -> const Recommendation* {
    for (const auto& rec : candidates) {
      if (rec.job_id == job_id) return &rec;
    }
    return nullptr;
  };

  // --- Graceful degradation: re-flight transient failures under fresh
  // salts (the simulated form of retry-with-backoff — each attempt is an
  // independent later submission). Serial, so retry traffic and its budget
  // spend are deterministic for any thread count.
  if (guard_.enabled() && config_.guard.flight_max_retries > 0) {
    uint64_t retry_no = 0;
    for (flight::FlightResult& fl : flights) {
      if (fl.outcome != flight::FlightOutcome::kFailure) continue;
      const Recommendation* rec = find_rec(fl.job_id);
      if (rec == nullptr) continue;
      flight::FlightRequest req{rec->instance, opt::RuleConfig::Default(),
                                rec->ToConfig(), 0.0};
      for (int attempt = 0; attempt < config_.guard.flight_max_retries &&
                            fl.outcome == flight::FlightOutcome::kFailure;
           ++attempt) {
        ++report.flight_retries;
        ++guard_.counters().flight_retries;
        auto retry = flighting_.FlightOne(
            req, static_cast<uint64_t>(view.day) * 15485863 + ++retry_no);
        if (!retry.ok()) break;  // budget exhausted: give up on retries
        if (retry->outcome == flight::FlightOutcome::kFailure) continue;
        if (retry->outcome == flight::FlightOutcome::kSuccess) {
          ++report.flights_recovered;
          ++guard_.counters().flight_recoveries;
        }
        // The injected-fault flag stays sticky across the replacement so
        // the day report still counts the fault the retry recovered from.
        bool was_injected = fl.fault_injected;
        fl = *retry;
        fl.fault_injected |= was_injected;
      }
    }
  }

  // --- Validation: gather samples, retrain, accept/reject. ---
  std::vector<Recommendation> validated;
  {
    QO_OBS_SPAN("validate");
    for (const flight::FlightResult& flight : flights) {
      if (flight.fault_injected) {
        ++report.faults_injected;
        ++guard_.counters().faults_flight;
      }
      // Steering-health events for the breakers: completed flights vote
      // success/failure (timeouts count as failures — a timeout storm must
      // trip the breaker); budget rejections and filtered jobs say nothing
      // about steering health.
      if (guard_.enabled() &&
          (flight.outcome == flight::FlightOutcome::kSuccess ||
           flight.outcome == flight::FlightOutcome::kFailure ||
           flight.outcome == flight::FlightOutcome::kTimeout)) {
        const Recommendation* rec = find_rec(flight.job_id);
        guard_.RecordSteeringEvent(
            rec != nullptr ? rec->template_name : flight.job_id,
            flight.outcome != flight::FlightOutcome::kSuccess);
      }
      switch (flight.outcome) {
        case flight::FlightOutcome::kSuccess:
          ++report.flights_success;
          break;
        case flight::FlightOutcome::kFailure:
          ++report.flights_failure;
          continue;
        case flight::FlightOutcome::kTimeout:
          ++report.flights_timeout;
          continue;
        case flight::FlightOutcome::kFiltered:
          ++report.flights_filtered;
          continue;
        case flight::FlightOutcome::kBudgetRejected:
          ++report.flights_budget_rejected;
          continue;
      }
      const Recommendation* rec = find_rec(flight.job_id);
      if (rec == nullptr) continue;
      // The regression target is the PNhours delta of a *future* occurrence:
      // emulate the next run of the recurring job with a fresh seed.
      auto future = flighting_.FlightOne(
          {rec->instance, opt::RuleConfig::Default(), rec->ToConfig(), 0.0},
          static_cast<uint64_t>(view.day) * 104729 + validation_samples_.size());
      if (future.ok() && future->outcome == flight::FlightOutcome::kSuccess) {
        validation_samples_.push_back(
            MakeSample(flight, future->pn_hours_delta));
      }
      if (!validation_.trained() &&
          validation_samples_.size() >=
              config_.validation.min_training_samples) {
        validation_.Train(validation_samples_).ok();
      }
      if (validation_.Accept(flight)) {
        validated.push_back(*rec);
        ++report.validated;
      }
    }
    report.validation_model_trained = validation_.trained();
  }

  // --- Hint Generation + SIS upload. ---
  if (!validated.empty()) {
    QO_OBS_SPAN("hint_gen");
    sis::HintFile file = BuildHintFile(validated, view.day);
    if (injector_.armed() && injector_.config().hint_corrupt_prob > 0.0) {
      // Chaos path: the file travels as serialized text, where a corrupt
      // write must be caught by the strict parser before installation —
      // a bad file is rejected whole, never half-applied.
      std::string text = file.Serialize();
      if (injector_.ShouldInject(guard::FaultSite::kHintFile, view.day,
                                 uint64_t{0})) {
        text = injector_.CorruptHintText(text, view.day);
        ++report.faults_injected;
        ++guard_.counters().faults_hint_file;
      }
      auto parsed = sis::HintFile::Parse(text);
      if (!parsed.ok()) {
        report.hint_file_rejected = true;
        ++guard_.counters().hint_files_rejected;
      } else {
        auto version = sis_->UploadHintFile(*parsed);
        if (version.ok()) report.hints_uploaded = parsed->entries.size();
      }
    } else {
      auto version = sis_->UploadHintFile(file);
      if (version.ok()) report.hints_uploaded = file.entries.size();
    }
  }

  // End of day: breakers evaluate the day's steering-health events.
  if (guard_.enabled()) guard_.CloseDay(view.day);

  ++cum_.days;
  cum_.flight_requests += report.flight_requests;
  cum_.validated += report.validated;
  cum_.hints_uploaded += report.hints_uploaded;
  return report;
}

}  // namespace qo::advisor

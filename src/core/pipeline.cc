#include "core/pipeline.h"

#include <set>

#include "obs/span.h"

namespace qo::advisor {

QoAdvisorPipeline::QoAdvisorPipeline(const engine::ScopeEngine* engine,
                                     sis::StatsInsightService* sis,
                                     PipelineConfig config,
                                     runtime::ParallelRuntime* runtime)
    : engine_(engine),
      sis_(sis),
      config_(config),
      owned_runtime_(runtime != nullptr
                         ? nullptr
                         : std::make_unique<runtime::ParallelRuntime>(
                               config.runtime)),
      runtime_(runtime != nullptr ? runtime : owned_runtime_.get()),
      personalizer_(config.personalizer),
      flighting_(engine, config.flighting, runtime_),
      recommender_(engine, &personalizer_, config.recommender),
      validation_(config.validation) {
  // One collector covers every surface the pipeline owns or borrows:
  // Personalizer (bandit.*), flighting (flight.*), SIS hint lifecycle
  // (sis.*) and the pipeline's own cumulative day counters (pipeline.*).
  collector_id_ =
      obs::Registry::Get().AddCollector([this](obs::SeriesSink& sink) {
        telemetry::ExportSeries(personalizer_.telemetry(), sink);
        telemetry::ExportSeries(flighting_.telemetry(), sink);
        sink.Add("sis.version", static_cast<double>(sis_->current_version()));
        sink.Add("sis.active_hints",
                 static_cast<double>(sis_->active_hints()));
        sink.Add("sis.hints_uploaded",
                 static_cast<double>(sis_->total_hints_uploaded()));
        sink.Add("sis.hints_reverted",
                 static_cast<double>(sis_->hints_reverted()));
        sink.Add("pipeline.days", static_cast<double>(cum_.days));
        sink.Add("pipeline.flight_requests",
                 static_cast<double>(cum_.flight_requests));
        sink.Add("pipeline.validated", static_cast<double>(cum_.validated));
        sink.Add("pipeline.hints_uploaded",
                 static_cast<double>(cum_.hints_uploaded));
      });
}

QoAdvisorPipeline::~QoAdvisorPipeline() {
  obs::Registry::Get().RemoveCollector(collector_id_);
}

std::vector<Recommendation> QoAdvisorPipeline::PickRepresentatives(
    std::vector<Recommendation> recs) const {
  if (!config_.one_flight_per_template) return recs;
  std::set<int> seen;
  std::vector<Recommendation> out;
  for (auto& rec : recs) {
    if (seen.insert(rec.template_id).second) {
      out.push_back(std::move(rec));
    }
  }
  return out;
}

Result<PipelineDayReport> QoAdvisorPipeline::RunDay(
    const telemetry::WorkloadView& view) {
  QO_OBS_SPAN("run_day");
  PipelineDayReport report;
  report.day = view.day;

  // --- Feature Generation (recurring jobs only, Sec. 2.1). ---
  telemetry::WorkloadView filtered;
  filtered.day = view.day;
  for (const auto& row : view.rows) {
    if (!config_.recurring_only || row.recurring) filtered.rows.push_back(row);
  }
  std::vector<JobFeatures> features = [&] {
    QO_OBS_SPAN("feature_gen");
    return GenerateFeatures(*engine_, filtered, &report.feature_gen, runtime_);
  }();

  // --- Recommendation (CB + recompilation + pruning). ---
  std::vector<Recommendation> recs = recommender_.RecommendDay(
      features, view.day, &report.recommender, runtime_);

  // --- Flight selection: one representative per template, budget-capped.
  std::vector<Recommendation> candidates = PickRepresentatives(std::move(recs));
  if (candidates.size() > config_.max_flights_per_day) {
    candidates.resize(config_.max_flights_per_day);
  }
  std::vector<flight::FlightRequest> requests;
  requests.reserve(candidates.size());
  for (const Recommendation& rec : candidates) {
    flight::FlightRequest req;
    req.job = rec.instance;
    req.baseline = opt::RuleConfig::Default();
    req.candidate = rec.ToConfig();
    req.est_cost_delta = rec.est_cost_default > 0.0
                             ? rec.est_cost_new / rec.est_cost_default - 1.0
                             : 0.0;
    requests.push_back(std::move(req));
  }
  report.flight_requests = requests.size();
  double budget_before = flighting_.budget_used_hours();
  std::vector<flight::FlightResult> flights = flighting_.FlightBatch(
      std::move(requests), static_cast<uint64_t>(view.day) * 7919);
  report.flight_budget_used_hours =
      flighting_.budget_used_hours() - budget_before;

  // Align flights back to their recommendations by job id.
  auto find_rec = [&](const std::string& job_id) -> const Recommendation* {
    for (const auto& rec : candidates) {
      if (rec.job_id == job_id) return &rec;
    }
    return nullptr;
  };

  // --- Validation: gather samples, retrain, accept/reject. ---
  std::vector<Recommendation> validated;
  {
    QO_OBS_SPAN("validate");
    for (const flight::FlightResult& flight : flights) {
      switch (flight.outcome) {
        case flight::FlightOutcome::kSuccess:
          ++report.flights_success;
          break;
        case flight::FlightOutcome::kFailure:
          ++report.flights_failure;
          continue;
        case flight::FlightOutcome::kTimeout:
          ++report.flights_timeout;
          continue;
        case flight::FlightOutcome::kFiltered:
          ++report.flights_filtered;
          continue;
      }
      const Recommendation* rec = find_rec(flight.job_id);
      if (rec == nullptr) continue;
      // The regression target is the PNhours delta of a *future* occurrence:
      // emulate the next run of the recurring job with a fresh seed.
      auto future = flighting_.FlightOne(
          {rec->instance, opt::RuleConfig::Default(), rec->ToConfig(), 0.0},
          static_cast<uint64_t>(view.day) * 104729 + validation_samples_.size());
      if (future.ok() && future->outcome == flight::FlightOutcome::kSuccess) {
        validation_samples_.push_back(
            MakeSample(flight, future->pn_hours_delta));
      }
      if (!validation_.trained() &&
          validation_samples_.size() >=
              config_.validation.min_training_samples) {
        validation_.Train(validation_samples_).ok();
      }
      if (validation_.Accept(flight)) {
        validated.push_back(*rec);
        ++report.validated;
      }
    }
    report.validation_model_trained = validation_.trained();
  }

  // --- Hint Generation + SIS upload. ---
  if (!validated.empty()) {
    QO_OBS_SPAN("hint_gen");
    sis::HintFile file = BuildHintFile(validated, view.day);
    auto version = sis_->UploadHintFile(file);
    if (version.ok()) report.hints_uploaded = file.entries.size();
  }

  ++cum_.days;
  cum_.flight_requests += report.flight_requests;
  cum_.validated += report.validated;
  cum_.hints_uploaded += report.hints_uploaded;
  return report;
}

}  // namespace qo::advisor

// Job span computation (paper Secs. 2.1 and 4.1).
//
// The span of a job is the set of rules which, if enabled or disabled, can
// affect the final query plan. It is computed with the fix-point heuristic
// of [29]: starting from the default configuration, turn ON all
// off-by-default rules and turn OFF every on-by-default / implementation
// rule that appears in the current rule signature; recompile; any *newly
// used* rules join the span and are flipped off in turn; repeat until no new
// rule appears or recompilation fails.
#ifndef QO_CORE_SPAN_H_
#define QO_CORE_SPAN_H_

#include <memory>

#include "common/bitvector.h"
#include "common/status.h"
#include "engine/engine.h"
#include "workload/template_gen.h"

namespace qo::advisor {

struct SpanResult {
  /// Rules that can change the plan (never includes required rules).
  BitVector256 span;
  /// Fix-point iterations performed (including the initial compile).
  int iterations = 0;
  /// True when the loop ended because a recompilation failed.
  bool ended_by_failure = false;
  /// The default-configuration compilation, shared with the engine's cache.
  /// Later stages (multi-flip baselines, recommendation, Table 3) read this
  /// instead of recompiling the default config.
  std::shared_ptr<const opt::CompilationOutput> default_compilation;
};

/// Computes the span for one job instance. CompileError when even the
/// default configuration fails.
/// Thread-safety: pure — a fix-point of const ScopeEngine::Compile calls,
/// deterministic per job; safe to call concurrently (the feature-generation
/// stage fans it out across the runtime sharded by template).
Result<SpanResult> ComputeJobSpan(const engine::ScopeEngine& engine,
                                  const workload::JobInstance& job,
                                  int max_iterations = 8);

}  // namespace qo::advisor

#endif  // QO_CORE_SPAN_H_

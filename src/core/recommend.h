// Rule Recommendation: the contextual-bandit stage of the pipeline
// (paper Secs. 3.2 and 4.2).
//
// For each job the action set is (1 + S): change nothing, or flip one of the
// S rules in the job span. Rewards are the clipped ratio of default to
// recompiled estimated cost. Learning is off-policy: a uniform-at-random
// logging arm generates the training data, while the learned policy's arm
// decides what moves forward — at the cost of doubling recompilations,
// which is acceptable because recompiles are cheap (Sec. 4.2).
#ifndef QO_CORE_RECOMMEND_H_
#define QO_CORE_RECOMMEND_H_

#include <vector>

#include "bandit/personalizer.h"
#include "core/feature_gen.h"
#include "guard/fault_injector.h"

namespace qo::runtime {
class ParallelRuntime;
}  // namespace qo::runtime

namespace qo::advisor {

/// Outcome category of a recompilation with a rule flip (Table 3 rows).
enum class RecompileOutcome {
  kLowerCost,
  kEqualCost,
  kHigherCost,
  kRecompileFailure,
};

/// One recommendation for one job.
struct Recommendation {
  std::string job_id;
  std::string template_name;
  int template_id = 0;
  /// Rule to flip; -1 means "change nothing" was chosen.
  int rule_id = -1;
  bool enable = false;  ///< flip direction (valid when rule_id >= 0)
  double est_cost_default = 0.0;
  double est_cost_new = 0.0;
  RecompileOutcome outcome = RecompileOutcome::kEqualCost;
  double reward = 1.0;  ///< clipped default/new cost ratio
  /// True when the outcome was forced by the fault injector (chaos runs).
  bool fault_injected = false;
  /// Copy of the instance + span for downstream stages.
  workload::JobInstance instance;
  BitVector256 span;

  bool ImprovesEstimatedCost() const {
    return outcome == RecompileOutcome::kLowerCost;
  }
  opt::RuleConfig ToConfig() const {
    return rule_id < 0 ? opt::RuleConfig::Default()
                       : opt::RuleConfig::DefaultWithFlip(rule_id);
  }
};

struct RecommenderConfig {
  /// Reward clipping bound (Sec. 4.2: "we clip any range greater than 2.0").
  double reward_clip = 2.0;
  /// When false, the acted arm also picks uniformly at random — the Table 3
  /// "Random" baseline.
  bool use_contextual_bandit = true;
  /// When true (always, except in the Sec. 5.2 ablation), jobs whose flip
  /// does not improve estimated cost are short-circuited out.
  bool prune_non_improving = true;
  /// Relative estimated-cost change must be at most this to move forward
  /// (negative = improvement required).
  double max_est_cost_delta = -1e-4;
  /// Uniform logging probes per job per day. The paper logs one; raising it
  /// accelerates off-policy convergence at the cost of extra recompiles.
  int uniform_probes_per_job = 1;
};

struct RecommenderStats {
  size_t jobs = 0;
  size_t lower_cost = 0;
  size_t equal_cost = 0;
  size_t higher_cost = 0;
  size_t recompile_failures = 0;
  size_t noop_chosen = 0;
  size_t forwarded = 0;  ///< recommendations that passed pruning
  /// Reward() calls the Personalizer rejected (should be zero: every probe
  /// rewards its own freshly ranked event).
  size_t reward_failures = 0;
  /// Chaos-run bookkeeping: recompile failures forced by the fault injector
  /// (a subset of recompile_failures) and reward joins it dropped.
  size_t faults_injected = 0;
  size_t rewards_dropped = 0;
};

/// The Recommendation task. Holds the Personalizer handle; one instance
/// lives across pipeline days so the policy keeps learning.
class Recommender {
 public:
  /// `injector` (not owned, may be null) injects deterministic recompile
  /// errors per (job, rule) and drops reward joins per event — the chaos
  /// faults of the Recommendation boundary. Decisions are pure, so the
  /// parallel flip pre-evaluation and the serial loop agree byte-for-byte.
  Recommender(const engine::ScopeEngine* engine,
              bandit::PersonalizerService* personalizer,
              RecommenderConfig config = {},
              const guard::FaultInjector* injector = nullptr);

  /// Processes one day of featurized jobs. Returns recommendations that
  /// survived pruning (candidates for flighting).
  ///
  /// With a runtime attached, every span flip is pre-evaluated in parallel
  /// (sharded by template id) and the serial bandit loop below reads from
  /// that cache instead of recompiling inline. EvaluateFlip is pure, so the
  /// cached and lazily evaluated paths produce byte-identical
  /// recommendations — the Personalizer's order-dependent learning state is
  /// only ever touched from the calling thread.
  ///
  /// The (context x actions) combined feature vectors are built once per
  /// job (CombineActionSet) and shared by every Rank call for that job —
  /// all uniform probes plus the acting arm — via
  /// RankRequest::precombined, so the Personalizer never recombines per
  /// request.
  std::vector<Recommendation> RecommendDay(
      const std::vector<JobFeatures>& jobs, int day,
      RecommenderStats* stats = nullptr,
      runtime::ParallelRuntime* runtime = nullptr);

  /// Evaluates one specific flip (used by tests and the Table 3 bench).
  /// Thread-safety: const and pure — one recompilation under the flipped
  /// config, deterministic per (job, rule_id); safe to call concurrently.
  Recommendation EvaluateFlip(const JobFeatures& job, int rule_id) const;

 private:
  /// Builds the (1 + S) action list for a job span.
  static std::vector<bandit::RankableAction> BuildActions(
      const BitVector256& span);

  const engine::ScopeEngine* engine_;
  bandit::PersonalizerService* personalizer_;
  RecommenderConfig config_;
  const guard::FaultInjector* injector_;
};

}  // namespace qo::advisor

#endif  // QO_CORE_RECOMMEND_H_

#include "core/recommend.h"

#include <algorithm>
#include <map>

#include "common/hash.h"
#include "obs/span.h"
#include "runtime/runtime.h"

namespace qo::advisor {

namespace {

/// Action ids: index 0 is the no-op, index i>0 flips span bit i-1.
int RuleIdOfAction(const std::vector<int>& span_bits, size_t action_index) {
  if (action_index == 0) return -1;
  return span_bits[action_index - 1];
}

/// The flip-specific outcome of one recompilation — everything EvaluateFlip
/// derives beyond the job's identity fields. The parallel pre-evaluation
/// caches these slim records instead of full Recommendations (which copy
/// the job instance and its catalog per span bit).
struct FlipEval {
  bool enable = false;
  double est_cost_new = 0.0;
  RecompileOutcome outcome = RecompileOutcome::kEqualCost;
  double reward = 1.0;
  bool fault_injected = false;
};

/// The default-configuration estimated cost of a job. JobFeatures built by
/// GenerateFeatures always carry the span's default compilation; features
/// assembled by hand (tools, tests) may leave it null, in which case this
/// compiles the default through the engine's cache (an O(1) hit whenever
/// the span was ever computed). 0.0 when even the default fails to compile.
double DefaultEstCost(const engine::ScopeEngine& engine,
                      const JobFeatures& job) {
  if (job.default_compilation != nullptr) {
    return job.default_compilation->est_cost;
  }
  auto compiled =
      engine.CompileShared(job.row.instance, opt::RuleConfig::Default());
  return compiled.ok() ? (*compiled)->est_cost : 0.0;
}

FlipEval EvaluateFlipCore(const engine::ScopeEngine& engine,
                          double reward_clip, const JobFeatures& job,
                          int rule_id,
                          const guard::FaultInjector* injector) {
  FlipEval e;
  double est_cost_default = DefaultEstCost(engine, job);
  e.enable = !opt::RuleConfig::Default().IsEnabled(rule_id);
  // Injected recompile errors: pure per (job, rule), so the parallel
  // pre-evaluation cache and any inline evaluation reach the same verdict.
  if (injector != nullptr && injector->armed() &&
      injector->ShouldInject(
          guard::FaultSite::kCompile, job.row.day,
          HashString(job.row.job_id) ^
              (static_cast<uint64_t>(rule_id) * 0x9e3779b97f4a7c15ULL))) {
    e.outcome = RecompileOutcome::kRecompileFailure;
    e.est_cost_new = 0.0;
    e.reward = 0.0;
    e.fault_injected = true;
    return e;
  }
  // CompileShared: a repeated evaluation of this flip (across pre-evaluation,
  // the bandit loop and later experiment passes) is an O(1) cache hit.
  auto recompiled = engine.CompileShared(
      job.row.instance, opt::RuleConfig::DefaultWithFlip(rule_id));
  if (!recompiled.ok()) {
    e.outcome = RecompileOutcome::kRecompileFailure;
    e.est_cost_new = 0.0;
    e.reward = 0.0;
    return e;
  }
  e.est_cost_new = (*recompiled)->est_cost;
  const double kTolerance = 1e-9;
  if (e.est_cost_new < est_cost_default * (1.0 - kTolerance)) {
    e.outcome = RecompileOutcome::kLowerCost;
  } else if (e.est_cost_new > est_cost_default * (1.0 + kTolerance)) {
    e.outcome = RecompileOutcome::kHigherCost;
  } else {
    e.outcome = RecompileOutcome::kEqualCost;
  }
  // Reward: fractional reduction in estimated cost, expressed as the ratio
  // default/new and clipped to bound outliers (Sec. 4.2).
  double ratio =
      e.est_cost_new > 0.0 ? est_cost_default / e.est_cost_new : 0.0;
  e.reward = std::clamp(ratio, 0.0, reward_clip);
  return e;
}

/// Rebuilds the full Recommendation from the job's identity fields plus a
/// (possibly cached) flip evaluation.
Recommendation MaterializeFlip(const JobFeatures& job, int rule_id,
                               const FlipEval& e, double est_cost_default) {
  Recommendation rec;
  rec.job_id = job.row.job_id;
  rec.template_name = job.row.normalized_job_name;
  rec.template_id = job.row.template_id;
  rec.rule_id = rule_id;
  rec.instance = job.row.instance;
  rec.span = job.span;
  rec.est_cost_default = est_cost_default;
  rec.enable = e.enable;
  rec.est_cost_new = e.est_cost_new;
  rec.outcome = e.outcome;
  rec.reward = e.reward;
  rec.fault_injected = e.fault_injected;
  return rec;
}

}  // namespace

Recommender::Recommender(const engine::ScopeEngine* engine,
                         bandit::PersonalizerService* personalizer,
                         RecommenderConfig config,
                         const guard::FaultInjector* injector)
    : engine_(engine),
      personalizer_(personalizer),
      config_(config),
      injector_(injector) {}

std::vector<bandit::RankableAction> Recommender::BuildActions(
    const BitVector256& span) {
  std::vector<bandit::RankableAction> actions;
  bandit::RankableAction noop;
  noop.action_id = "noop";
  noop.features = bandit::BuildActionFeatures(-1, /*is_noop=*/true);
  actions.push_back(std::move(noop));
  for (int bit : span.Positions()) {
    bandit::RankableAction a;
    a.action_id = "flip_" + std::to_string(bit);
    a.features = bandit::BuildActionFeatures(bit, /*is_noop=*/false);
    actions.push_back(std::move(a));
  }
  return actions;
}

Recommendation Recommender::EvaluateFlip(const JobFeatures& job,
                                         int rule_id) const {
  double est_cost_default = DefaultEstCost(*engine_, job);
  if (rule_id < 0) {
    // No-op action: no recompilation, identity outcome.
    FlipEval noop;
    noop.est_cost_new = est_cost_default;
    return MaterializeFlip(job, rule_id, noop, est_cost_default);
  }
  return MaterializeFlip(
      job, rule_id,
      EvaluateFlipCore(*engine_, config_.reward_clip, job, rule_id, injector_),
      est_cost_default);
}

std::vector<Recommendation> Recommender::RecommendDay(
    const std::vector<JobFeatures>& jobs, int day, RecommenderStats* stats,
    runtime::ParallelRuntime* runtime) {
  QO_OBS_SPAN("recommend");
  // Recompilation is the expensive half of this task; the bandit math is
  // cheap but stateful (Rank/Reward mutate the Personalizer, and a retrain
  // between two jobs changes every later choice). So: pre-evaluate every
  // span flip across the pool, keep the bandit loop serial, and serve its
  // EvaluateFlip calls from the cache.
  std::vector<std::map<int, FlipEval>> flip_cache;
  if (runtime != nullptr && runtime->parallel()) {
    flip_cache = runtime->TransformOrdered<std::map<int, FlipEval>>(
        jobs.size(),
        [&](size_t i) { return static_cast<uint64_t>(jobs[i].row.template_id); },
        [](size_t i) { return static_cast<double>(i); },
        [&](size_t i) {
          std::map<int, FlipEval> flips;
          for (int bit : jobs[i].span.Positions()) {
            flips.emplace(bit, EvaluateFlipCore(*engine_, config_.reward_clip,
                                                jobs[i], bit, injector_));
          }
          return flips;
        });
  }
  auto evaluate = [&](size_t job_index, const JobFeatures& job,
                      int rule) -> Recommendation {
    if (rule >= 0 && !flip_cache.empty()) {
      auto it = flip_cache[job_index].find(rule);
      if (it != flip_cache[job_index].end()) {
        return MaterializeFlip(job, rule, it->second,
                               DefaultEstCost(*engine_, job));
      }
    }
    return EvaluateFlip(job, rule);
  };

  RecommenderStats local;
  std::vector<Recommendation> forwarded;
  for (size_t job_index = 0; job_index < jobs.size(); ++job_index) {
    const JobFeatures& job = jobs[job_index];
    ++local.jobs;
    bandit::FeatureVector context =
        bandit::BuildContextFeatures(job.ToContext());
    std::vector<bandit::RankableAction> actions = BuildActions(job.span);
    // Combined-feature cache: one (context x actions) combine per job,
    // shared (by pointer) across every probe and the acting arm below, and
    // from there with the Personalizer's event log and trainer.
    std::vector<std::shared_ptr<const bandit::SparseVector>> combined =
        bandit::CombineActionSet(context, actions);
    std::vector<int> span_bits = job.span.Positions();

    // --- Logging arm: uniform-at-random, always rewarded. ---
    for (int probe_idx = 0; probe_idx < config_.uniform_probes_per_job;
         ++probe_idx) {
      bandit::RankRequest log_request;
      log_request.event_id = "u_" + std::to_string(day) + "_" +
                             std::to_string(probe_idx) + "_" + job.row.job_id;
      log_request.context = context;
      log_request.actions = actions;
      log_request.explore_uniform = true;
      log_request.precombined = combined;
      auto log_rank = personalizer_->Rank(log_request);
      if (log_rank.ok()) {
        int rule = RuleIdOfAction(span_bits, log_rank->chosen_index);
        Recommendation probe = evaluate(job_index, job, rule);
        if (probe.fault_injected) ++local.faults_injected;
        // Injected reward-join drops: the probe ran but its outcome never
        // made it back to the learner (paper Sec. 4.2's reward join going
        // stale). The event stays unrewarded in the log.
        if (injector_ != nullptr && injector_->armed() &&
            injector_->ShouldInject(guard::FaultSite::kRewardJoin, day,
                                    log_rank->event_id)) {
          ++local.rewards_dropped;
        } else if (!personalizer_->Reward(log_rank->event, probe.reward)
                        .ok()) {
          // Typed join: the id rode back on the RankResponse, so the reward
          // lands with one integer map probe — no string hashing.
          ++local.reward_failures;
        }
      }
    }

    // --- Acting arm: learned policy (or uniform for the random baseline). ---
    bandit::RankRequest act_request;
    act_request.event_id =
        "g_" + std::to_string(day) + "_" + job.row.job_id;
    act_request.context = std::move(context);
    act_request.actions = std::move(actions);
    act_request.explore_uniform = !config_.use_contextual_bandit;
    act_request.precombined = std::move(combined);
    auto act_rank = personalizer_->Rank(act_request);
    if (!act_rank.ok()) continue;
    int rule = RuleIdOfAction(span_bits, act_rank->chosen_index);
    if (rule < 0) {
      ++local.noop_chosen;
      ++local.equal_cost;
      continue;
    }
    Recommendation rec = evaluate(job_index, job, rule);
    if (rec.fault_injected) ++local.faults_injected;
    switch (rec.outcome) {
      case RecompileOutcome::kLowerCost:
        ++local.lower_cost;
        break;
      case RecompileOutcome::kEqualCost:
        ++local.equal_cost;
        break;
      case RecompileOutcome::kHigherCost:
        ++local.higher_cost;
        break;
      case RecompileOutcome::kRecompileFailure:
        ++local.recompile_failures;
        break;
    }
    // Short-circuit: only flips that improve estimated cost move forward
    // (Sec. 5.6), unless pruning is disabled for the Sec. 5.2 ablation.
    double delta = rec.est_cost_default > 0.0
                       ? rec.est_cost_new / rec.est_cost_default - 1.0
                       : 0.0;
    bool pass = rec.outcome == RecompileOutcome::kLowerCost &&
                delta <= config_.max_est_cost_delta;
    if (!config_.prune_non_improving) {
      pass = rec.outcome != RecompileOutcome::kRecompileFailure;
    }
    if (pass) {
      ++local.forwarded;
      forwarded.push_back(std::move(rec));
    }
  }
  if (stats != nullptr) *stats = local;
  return forwarded;
}

}  // namespace qo::advisor

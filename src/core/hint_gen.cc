#include "core/hint_gen.h"

#include <set>

namespace qo::advisor {

sis::HintFile BuildHintFile(const std::vector<Recommendation>& validated,
                            int day) {
  sis::HintFile file;
  file.day = day;
  std::set<std::string> seen;
  for (const Recommendation& rec : validated) {
    if (rec.rule_id < 0) continue;
    if (!seen.insert(rec.template_name).second) continue;
    sis::HintEntry entry;
    entry.template_name = rec.template_name;
    entry.rule_id = rec.rule_id;
    entry.enable = rec.enable;
    file.entries.push_back(std::move(entry));
  }
  return file;
}

}  // namespace qo::advisor

// Multi-flip steering — the paper's Sec. 8 future-work direction
// ("in future work we will propose multiple rule flips, e.g., by utilizing
// techniques from combinatorial contextual bandits or short-horizon episodic
// reinforcement learning").
//
// This implements the short-horizon greedy episode: starting from the
// default configuration, repeatedly evaluate every single flip in the job
// span, commit the flip with the best estimated-cost improvement, and stop
// when no flip improves or the horizon is exhausted. Each committed flip is
// re-validated by recompilation, so the result is always a real,
// compilable configuration at edit distance <= horizon from the default.
#ifndef QO_CORE_MULTI_FLIP_H_
#define QO_CORE_MULTI_FLIP_H_

#include <memory>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "engine/engine.h"
#include "workload/template_gen.h"

namespace qo::advisor {

struct MultiFlipResult {
  /// Flips committed, in commit order.
  std::vector<int> flips;
  double est_cost_default = 0.0;
  double est_cost_final = 0.0;
  /// Estimated cost after each committed flip (same length as `flips`).
  std::vector<double> est_cost_trajectory;

  opt::RuleConfig ToConfig() const {
    opt::RuleConfig config = opt::RuleConfig::Default();
    for (int f : flips) config.Flip(f);
    return config;
  }
  double ImprovementRatio() const {
    return est_cost_final > 0.0 ? est_cost_default / est_cost_final : 0.0;
  }
};

/// Greedy multi-flip search over `span` with the given episode horizon.
/// `min_relative_gain` is the per-step improvement required to keep going
/// (guards against chasing cost-model noise).
///
/// `default_compilation` lets callers that already compiled the default
/// configuration (every SpanResult holds it) seed the episode without a
/// redundant recompile; null compiles it through the engine's cache.
Result<MultiFlipResult> GreedyMultiFlip(
    const engine::ScopeEngine& engine, const workload::JobInstance& job,
    const BitVector256& span, int horizon = 3,
    double min_relative_gain = 1e-3,
    std::shared_ptr<const opt::CompilationOutput> default_compilation =
        nullptr);

}  // namespace qo::advisor

#endif  // QO_CORE_MULTI_FLIP_H_

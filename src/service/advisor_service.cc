#include "service/advisor_service.h"

#include <limits>
#include <utility>

namespace qo::service {

namespace {

/// When the service owns retrain cadence, the learner's inline
/// retrain-on-interval is disabled: models advance only through
/// TrainAndPublish, which trains outside the tenant mutex.
TenantConfig WithRetrainOwnership(TenantConfig cfg) {
  if (cfg.service_owns_retrain) {
    cfg.personalizer.retrain_interval = std::numeric_limits<size_t>::max();
  }
  return cfg;
}

}  // namespace

uint64_t ServiceSnapshot::Fingerprint(const ServiceSnapshot& snap) {
  uint64_t h = 0x9e3779b97f4a7c15ULL * (snap.sequence + 1);
  h ^= 0xbf58476d1ce4e5b9ULL * (snap.model_generation + 1);
  h ^= 0x94d049bb133111ebULL * (static_cast<uint64_t>(snap.model.updates()) + 1);
  if (snap.hints != nullptr) {
    h ^= 0xd6e8feb86659fd93ULL *
         (static_cast<uint64_t>(snap.hints->version()) + 1);
    h ^= 0xa0761d6478bd642fULL *
         (static_cast<uint64_t>(snap.hints->active_hints()) + 1);
  }
  return h;
}

AdvisorService::TenantState::TenantState(std::string tenant_name,
                                         TenantConfig cfg,
                                         const AdvisorOptions& options)
    : name(std::move(tenant_name)),
      config(WithRetrainOwnership(std::move(cfg))),
      owned_engine(config.engine != nullptr
                       ? nullptr
                       : std::make_unique<engine::ScopeEngine>(
                             opt::OptimizerOptions{}, exec::ClusterConfig{},
                             options.compile_cache, options.exec,
                             options.memo)),
      engine(config.engine != nullptr ? config.engine : owned_engine.get()),
      sis(config.sis),
      personalizer(config.personalizer) {}

AdvisorService::AdvisorService(AdvisorOptions options)
    : options_(std::move(options)),
      rank_requests_(&obs::Registry::Get().counter("service.rank_requests")),
      reward_requests_(
          &obs::Registry::Get().counter("service.reward_requests")),
      compile_requests_(
          &obs::Registry::Get().counter("service.compile_requests")),
      hint_uploads_(&obs::Registry::Get().counter("service.hint_uploads")),
      publications_(
          &obs::Registry::Get().counter("service.snapshot_publications")),
      rank_ns_(&obs::Registry::Get().histogram("service.rank_ns")),
      reward_ns_(&obs::Registry::Get().histogram("service.reward_ns")),
      compile_ns_(&obs::Registry::Get().histogram("service.compile_ns")),
      request_ns_(&obs::Registry::Get().histogram("service.request_ns")) {
  if (options_.retrain_period_ms > 0) {
    StartBackgroundTrainer(
        std::chrono::milliseconds(options_.retrain_period_ms));
  }
}

AdvisorService::~AdvisorService() { StopBackgroundTrainer(); }

Result<TenantSession> AdvisorService::OpenTenant(const std::string& tenant,
                                                 TenantConfig config) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  std::unique_lock<std::shared_mutex> lock(tenants_mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant, nullptr);
  if (!inserted) {
    return Status::AlreadyExists("tenant already open: " + tenant);
  }
  it->second =
      std::make_unique<TenantState>(tenant, std::move(config), options_);
  TenantState& t = *it->second;
  // Sequence 1: cold model, empty hint view. Published before the tenant is
  // visible to any API call, so readers never observe a null snapshot.
  std::lock_guard<std::mutex> tenant_lock(t.mu);
  PublishLocked(t);
  return TenantSession(this, tenant);
}

Result<TenantSession> AdvisorService::Session(const std::string& tenant) {
  if (FindTenant(tenant) == nullptr) {
    return Status::NotFound("unknown tenant: " + tenant);
  }
  return TenantSession(this, tenant);
}

AdvisorService::TenantState* AdvisorService::FindTenant(
    const std::string& tenant) const {
  std::shared_lock<std::shared_mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.get() : nullptr;
}

void AdvisorService::PublishLocked(TenantState& t) {
  auto snap = std::make_shared<ServiceSnapshot>();
  snap->sequence = ++t.publications;
  snap->model_generation = t.model_generation;
  snap->model = t.personalizer.model();  // frozen copy, cheap (weights only)
  snap->hints = t.sis.BuildSnapshotView();
  snap->checksum = ServiceSnapshot::Fingerprint(*snap);
  t.snapshot.store(std::shared_ptr<const ServiceSnapshot>(std::move(snap)));
  publications_->Add();
}

Result<RankResponse> AdvisorService::Rank(const RankRequest& request) {
  const uint64_t start = obs::MetricsEnabled() ? obs::MonotonicNowNs() : 0;
  TenantState* t = FindTenant(request.tenant);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant: " + request.tenant);
  }
  // Snapshot load (pointer copy only): ranking scores against this frozen
  // model even if a retrain publishes a successor mid-call.
  std::shared_ptr<const ServiceSnapshot> snap = t->snapshot.load();
  bandit::RankRequest rank;
  rank.event_id = request.event_id;
  rank.context = request.context;
  rank.actions = request.actions;
  rank.explore_uniform = request.explore_uniform;
  RankResponse resp;
  {
    std::lock_guard<std::mutex> lock(t->mu);
    auto ranked = t->personalizer.Rank(rank, &snap->model);
    if (!ranked.ok()) return ranked.status();
    resp.event_id = std::move(ranked->event_id);
    resp.event = ranked->event;
    resp.chosen_index = ranked->chosen_index;
    resp.chosen_action_id = std::move(ranked->chosen_action_id);
    resp.probability = ranked->probability;
  }
  resp.snapshot_sequence = snap->sequence;
  rank_requests_->Add();
  if (start != 0) {
    const uint64_t d = obs::MonotonicNowNs() - start;
    rank_ns_->Record(d);
    request_ns_->Record(d);
  }
  return resp;
}

Result<RewardResponse> AdvisorService::Reward(const RewardRequest& request) {
  const uint64_t start = obs::MetricsEnabled() ? obs::MonotonicNowNs() : 0;
  TenantState* t = FindTenant(request.tenant);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant: " + request.tenant);
  }
  RewardResponse resp;
  {
    std::lock_guard<std::mutex> lock(t->mu);
    // Typed join when the caller carried RankResponse::event through;
    // string fallback otherwise (one extra hash to recover the id).
    Status s = request.event.valid()
                   ? t->personalizer.Reward(request.event, request.reward)
                   : t->personalizer.Reward(request.event_id, request.reward);
    if (!s.ok()) return s;
    resp.rewarded_events = t->personalizer.rewarded_events();
  }
  reward_requests_->Add();
  if (start != 0) {
    const uint64_t d = obs::MonotonicNowNs() - start;
    reward_ns_->Record(d);
    request_ns_->Record(d);
  }
  return resp;
}

Result<CompileResponse> AdvisorService::Compile(const CompileRequest& request) {
  const uint64_t start = obs::MetricsEnabled() ? obs::MonotonicNowNs() : 0;
  TenantState* t = FindTenant(request.tenant);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant: " + request.tenant);
  }
  // No tenant lock anywhere on this path: hints come from the immutable
  // snapshot view, and the engine (compile cache included) is internally
  // synchronized.
  std::shared_ptr<const ServiceSnapshot> snap = t->snapshot.load();
  CompileResponse resp;
  resp.sis_version = snap->hints->version();
  opt::RuleConfig config = opt::RuleConfig::Default();
  if (request.apply_hints) {
    if (auto hint = snap->hints->LookupHint(request.job.template_name)) {
      config = hint->ToConfig();
      resp.hint_applied = true;
      resp.rule_id = hint->rule_id;
    }
  }
  auto compiled = t->engine->CompileShared(request.job, config);
  if (!compiled.ok()) return compiled.status();
  resp.compilation = *compiled;
  compile_requests_->Add();
  if (start != 0) {
    const uint64_t d = obs::MonotonicNowNs() - start;
    compile_ns_->Record(d);
    request_ns_->Record(d);
  }
  return resp;
}

Result<UploadHintsResponse> AdvisorService::UploadHints(
    const UploadHintsRequest& request) {
  TenantState* t = FindTenant(request.tenant);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant: " + request.tenant);
  }
  UploadHintsResponse resp;
  {
    std::lock_guard<std::mutex> lock(t->mu);
    auto version = t->sis.UploadHintFile(request.file);
    if (!version.ok()) return version.status();
    resp.version = *version;
    resp.active_hints = t->sis.active_hints();
    // Republish immediately: the new hints become visible to concurrent
    // Compile calls the moment this store lands.
    PublishLocked(*t);
    resp.snapshot_sequence = t->publications;
  }
  hint_uploads_->Add();
  return resp;
}

std::shared_ptr<const ServiceSnapshot> AdvisorService::CurrentSnapshot(
    const std::string& tenant) const {
  TenantState* t = FindTenant(tenant);
  if (t == nullptr) return nullptr;
  return t->snapshot.load();
}

bool AdvisorService::TrainAndPublish(const std::string& tenant) {
  TenantState* t = FindTenant(tenant);
  if (t == nullptr) return false;
  std::vector<bandit::LoggedExample> batch;
  bandit::CbModel model;
  {
    std::lock_guard<std::mutex> lock(t->mu);
    batch = t->personalizer.TakePendingBatch();
    if (batch.empty()) return false;
    model = t->personalizer.model();
  }
  // The expensive step runs with no lock held: readers keep ranking against
  // the current snapshot and rewarding into the next pending batch.
  model.Train(batch);
  {
    std::lock_guard<std::mutex> lock(t->mu);
    t->personalizer.AdoptModel(model);
    ++t->model_generation;
    PublishLocked(*t);
  }
  return true;
}

size_t AdvisorService::TrainAndPublishAll() {
  size_t published = 0;
  for (const std::string& tenant : tenants()) {
    if (TrainAndPublish(tenant)) ++published;
  }
  return published;
}

void AdvisorService::StartBackgroundTrainer(std::chrono::milliseconds period) {
  if (trainer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(trainer_mu_);
    trainer_stop_ = false;
  }
  trainer_ = std::thread(&AdvisorService::TrainerLoop, this, period);
}

void AdvisorService::StopBackgroundTrainer() {
  if (!trainer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(trainer_mu_);
    trainer_stop_ = true;
  }
  trainer_cv_.notify_all();
  trainer_.join();
}

void AdvisorService::TrainerLoop(std::chrono::milliseconds period) {
  std::unique_lock<std::mutex> lock(trainer_mu_);
  while (!trainer_stop_) {
    trainer_cv_.wait_for(lock, period, [this] { return trainer_stop_; });
    if (trainer_stop_) break;
    lock.unlock();
    TrainAndPublishAll();
    lock.lock();
  }
}

Result<advisor::PipelineDayReport> AdvisorService::RunPipelineDay(
    const std::string& tenant, const telemetry::WorkloadView& view) {
  TenantState* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant: " + tenant);
  }
  std::lock_guard<std::mutex> lock(t->mu);
  if (t->pipeline == nullptr) {
    advisor::PipelineConfig config = t->config.pipeline;
    // The service is the single env-snapshot authority: thread the captured
    // options in, overriding whatever the PipelineConfig defaults read.
    config.runtime = options_.runtime;
    config.guard = options_.guard;
    t->pipeline = std::make_unique<advisor::QoAdvisorPipeline>(
        t->engine, &t->sis, config, /*runtime=*/nullptr, &t->personalizer);
  }
  auto report = t->pipeline->RunDay(view);
  // The day may have uploaded hints and advanced the learner — republish so
  // serving traffic sees the post-day state.
  if (report.ok()) PublishLocked(*t);
  return report;
}

std::vector<std::string> AdvisorService::tenants() const {
  std::shared_lock<std::shared_mutex> lock(tenants_mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) names.push_back(name);
  return names;
}

// --- TenantSession -------------------------------------------------------

Result<RankResponse> TenantSession::Rank(RankRequest request) {
  request.tenant = tenant_;
  return service_->Rank(request);
}

Result<RewardResponse> TenantSession::Reward(RewardRequest request) {
  request.tenant = tenant_;
  return service_->Reward(request);
}

Result<CompileResponse> TenantSession::Compile(CompileRequest request) {
  request.tenant = tenant_;
  return service_->Compile(request);
}

Result<UploadHintsResponse> TenantSession::UploadHints(
    UploadHintsRequest request) {
  request.tenant = tenant_;
  return service_->UploadHints(request);
}

Result<RewardResponse> TenantSession::Reward(bandit::EventId event,
                                             double reward) {
  RewardRequest request;
  request.tenant = tenant_;
  request.event = event;
  request.reward = reward;
  return service_->Reward(request);
}

Result<CompileResponse> TenantSession::Compile(
    const workload::JobInstance& job, bool apply_hints) {
  CompileRequest request;
  request.tenant = tenant_;
  request.job = job;
  request.apply_hints = apply_hints;
  return service_->Compile(request);
}

Result<UploadHintsResponse> TenantSession::UploadHints(
    const sis::HintFile& file) {
  UploadHintsRequest request;
  request.tenant = tenant_;
  request.file = file;
  return service_->UploadHints(request);
}

Result<advisor::PipelineDayReport> TenantSession::RunPipelineDay(
    const telemetry::WorkloadView& view) {
  return service_->RunPipelineDay(tenant_, view);
}

bool TenantSession::TrainAndPublish() {
  return service_->TrainAndPublish(tenant_);
}

std::shared_ptr<const ServiceSnapshot> TenantSession::snapshot() const {
  return service_->CurrentSnapshot(tenant_);
}

const engine::ScopeEngine& TenantSession::engine() const {
  return *service_->FindTenant(tenant_)->engine;
}

const sis::StatsInsightService& TenantSession::sis() const {
  return service_->FindTenant(tenant_)->sis;
}

advisor::QoAdvisorPipeline* TenantSession::pipeline() const {
  return service_->FindTenant(tenant_)->pipeline.get();
}

}  // namespace qo::service

// The unified advisor API: typed request/response pairs for the four
// operations a steered optimizer deployment serves continuously — rank
// (choose a rule flip to try), reward (close the feedback loop), compile
// (steer a job by the published hints) and hint upload (publish a new hint
// file) — plus the abstract AdvisorApi they hang off.
//
// This façade replaces three scattered entry points callers used to wire
// together by hand: ScopeEngine::CompileShared + a manual SIS lookup,
// PersonalizerService::Rank/Reward, and StatsInsightService::UploadHintFile.
// Every call is tenant-addressed; AdvisorService routes it to that tenant's
// isolated state (engine + compile cache, personalizer, SIS) and serves
// reads from the tenant's published RCU snapshot (see advisor_service.h).
#ifndef QO_SERVICE_ADVISOR_API_H_
#define QO_SERVICE_ADVISOR_API_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bandit/personalizer.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "sis/sis.h"
#include "workload/template_gen.h"

namespace qo::service {

/// Rank: choose one of `actions` for `context`, logging the decision for a
/// later reward join under `event_id`.
struct RankRequest {
  std::string tenant;
  std::string event_id;
  bandit::FeatureVector context;
  std::vector<bandit::RankableAction> actions;
  /// Uniform-at-random logging arm (see bandit::RankRequest).
  bool explore_uniform = false;
};

struct RankResponse {
  std::string event_id;
  /// Typed id for the reward join — carry this into RewardRequest::event
  /// and the join is one integer map probe, no string hashing.
  bandit::EventId event;
  size_t chosen_index = 0;
  std::string chosen_action_id;
  double probability = 1.0;  ///< propensity of the chosen action
  /// Publication sequence of the model snapshot that scored this request
  /// (the tenant's RCU snapshot at load time).
  uint64_t snapshot_sequence = 0;
};

/// Reward: attach an outcome to a previously ranked event. The typed
/// `event` (from RankResponse) is the hot join; `event_id` is the string
/// fallback for callers that only kept the id text.
struct RewardRequest {
  std::string tenant;
  bandit::EventId event;
  std::string event_id;  ///< used only when `event` is invalid
  double reward = 0.0;
};

struct RewardResponse {
  /// Rewarded events accumulated by the tenant's learner so far.
  size_t rewarded_events = 0;
};

/// Compile: steer `job` by the tenant's published hint snapshot (or compile
/// the default configuration when `apply_hints` is false).
struct CompileRequest {
  std::string tenant;
  workload::JobInstance job;
  bool apply_hints = true;
};

struct CompileResponse {
  /// Shared with the tenant engine's compilation cache; must not be mutated.
  std::shared_ptr<const opt::CompilationOutput> compilation;
  bool hint_applied = false;
  int rule_id = -1;  ///< the flip a hint applied; -1 = default config
  /// Version of the hint snapshot consulted (SIS version at publish time).
  int sis_version = 0;
};

/// UploadHints: validate + install a hint file as the tenant's next SIS
/// version and republish the tenant snapshot so concurrent compiles see it.
struct UploadHintsRequest {
  std::string tenant;
  sis::HintFile file;
};

struct UploadHintsResponse {
  int version = 0;          ///< installed SIS version
  size_t active_hints = 0;  ///< active hint count after the upload
  uint64_t snapshot_sequence = 0;  ///< publication that carries the hints
};

/// The unified advisor surface. One implementation — AdvisorService — serves
/// all four operations concurrently; the interface exists so tools and tests
/// can wrap or fake the service without threading four subsystem pointers.
class AdvisorApi {
 public:
  virtual ~AdvisorApi() = default;

  virtual Result<RankResponse> Rank(const RankRequest& request) = 0;
  virtual Result<RewardResponse> Reward(const RewardRequest& request) = 0;
  virtual Result<CompileResponse> Compile(const CompileRequest& request) = 0;
  virtual Result<UploadHintsResponse> UploadHints(
      const UploadHintsRequest& request) = 0;
};

}  // namespace qo::service

#endif  // QO_SERVICE_ADVISOR_API_H_

#include "service/advisor_options.h"

#include <cstdlib>

namespace qo::service {

namespace {

std::string EnvString(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}

}  // namespace

AdvisorOptions AdvisorOptions::FromEnv() {
  AdvisorOptions o;
  // The subsystem FromEnv constructors already parse their own knobs; the
  // point here is *when* they run — exactly once, all together, at the
  // moment the caller asked for the snapshot.
  o.runtime = runtime::RuntimeOptions::FromEnv();
  o.compile_cache = cache::CompileCacheOptions::FromEnv();
  o.exec = engine::ExecOptions::FromEnv();
  o.memo = opt::CrossConfigMemoOptions::FromEnv();
  o.guard = guard::GuardConfig::FromEnv();
  const char* metrics = std::getenv("QO_METRICS");
  o.obs.metrics = metrics == nullptr || std::string(metrics) != "0";
  o.obs.report_path = EnvString("QO_OBS_REPORT");
  o.obs.label = EnvString("QO_OBS_LABEL");
  o.obs.trace_path = EnvString("QO_TRACE");
  if (const char* sample = std::getenv("QO_OBS_SAMPLE")) {
    o.obs.span_sample_every = std::atoi(sample);
    if (o.obs.span_sample_every < 1) o.obs.span_sample_every = 1;
  }
  const char* simd = std::getenv("QO_SIMD");
  o.obs.simd = simd == nullptr || std::string(simd) != "0";
  if (const char* ms = std::getenv("QO_SERVICE_RETRAIN_MS")) {
    o.retrain_period_ms = std::atoi(ms);
    if (o.retrain_period_ms < 0) o.retrain_period_ms = 0;
  }
  return o;
}

}  // namespace qo::service

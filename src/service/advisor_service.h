// The always-on advisor service: per-tenant steering state served to
// concurrent rank/reward/compile/upload traffic with RCU-style snapshot
// publication.
//
// Production QO-Advisor is not a batch job — it is a service the SCOPE
// compile path and the recommendation pipeline call continuously (paper
// Secs. 2.5, 4.2, 4.4). This layer reproduces that shape:
//
//  - Each tenant owns isolated state: a ScopeEngine (with its compile
//    cache), a PersonalizerService (learner + event log), and a
//    StatsInsightService (versioned hints). A short per-tenant mutex guards
//    the mutable learner/SIS state.
//  - Reads that must never wait on training go through an RCU snapshot: a
//    shared_ptr<const ServiceSnapshot> holding a frozen CbModel copy and an
//    immutable sis::SnapshotView, published through a SnapshotSlot whose
//    micro-mutex is held only for the pointer/refcount copy — never across
//    training, compilation or any other long work. Rank scores against the
//    snapshot model; Compile resolves hints against the snapshot view
//    without touching the tenant mutex (the engine is internally
//    synchronized).
//  - The retrain/ingest loop (background thread, or TrainAndPublish called
//    at points the owner picks) drains the pending reward batch and copies
//    the model under the tenant mutex, trains the copy OUTSIDE the mutex,
//    then adopts + republishes under the mutex again. Readers only ever
//    contend with those two short critical sections, never with training.
//
// Determinism: one tenant's request stream is served sequentially (the
// tenant mutex) and all cross-tenant state is either immutable or purely
// observational, so per-tenant output streams are byte-identical for any
// number of serving threads — asserted by bench/service_load.cc and
// tests/service_test.cc. Snapshot *timing* (which publication a given rank
// observes) is the one deliberately scheduling-dependent degree of freedom;
// the deterministic harnesses pin it by calling TrainAndPublish
// synchronously instead of enabling the background loop.
#ifndef QO_SERVICE_ADVISOR_SERVICE_H_
#define QO_SERVICE_ADVISOR_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bandit/cb_model.h"
#include "bandit/personalizer.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "service/advisor_api.h"
#include "service/advisor_options.h"
#include "sis/sis.h"
#include "telemetry/workload_view.h"

namespace qo::service {

/// One immutable publication of a tenant's serving state. Built by a writer
/// holding the tenant mutex, swapped into the tenant's SnapshotSlot, held
/// alive by whichever readers loaded it — classic RCU: writers swap in
/// successors without waiting for readers to drain, readers keep their
/// loaded snapshot valid via the shared_ptr refcount.
struct ServiceSnapshot {
  /// Publication number, monotonic per tenant (starts at 1).
  uint64_t sequence = 0;
  /// Retrain cycles folded into `model` (0 = cold-start model).
  uint64_t model_generation = 0;
  /// Frozen scorer — a copy, never shared with the learner's live model.
  bandit::CbModel model;
  /// Immutable hint view (never null; empty view before the first upload).
  std::shared_ptr<const sis::SnapshotView> hints;
  /// Integrity fingerprint over the fields above, computed at publish time.
  /// Readers recompute it to assert a snapshot is never observed
  /// half-published (tests/service_test.cc).
  uint64_t checksum = 0;

  /// The fingerprint `checksum` must equal.
  static uint64_t Fingerprint(const ServiceSnapshot& snap);
};

/// Per-tenant construction parameters for OpenTenant.
struct TenantConfig {
  bandit::PersonalizerConfig personalizer;
  sis::SisConfig sis;
  /// Borrow an existing engine (e.g. the experiment harness's, so hints
  /// steer the same cache production runs hit) instead of owning one built
  /// from AdvisorOptions. The borrowed engine must outlive the service.
  const engine::ScopeEngine* engine = nullptr;
  /// When true (default) the service owns retrain cadence: the learner's
  /// inline retrain-on-interval is disabled and models only advance through
  /// TrainAndPublish / the background loop. False keeps the offline
  /// pipeline's retrain-every-N-rewards behaviour (used by pipeline
  /// tenants, where RunPipelineDay drives the learner serially).
  bool service_owns_retrain = true;
  /// Config for the tenant's offline daily pipeline (RunPipelineDay).
  /// runtime/guard are overridden from AdvisorOptions — the service is the
  /// single env-snapshot authority. The personalizer field is ignored: the
  /// pipeline borrows the tenant's learner.
  advisor::PipelineConfig pipeline;
};

/// The publication point of a tenant's RCU snapshot. Semantically this is
/// std::atomic<std::shared_ptr<const ServiceSnapshot>>; it is implemented
/// over a dedicated micro-mutex instead because libstdc++'s _Sp_atomic
/// packs a spin-lock bit into the refcount word, which ThreadSanitizer
/// cannot model (every load/store pair reports a false race and the TSAN CI
/// leg goes permanently red). The mutex is held only for the
/// pointer+refcount copy — a handful of nanoseconds, never across training
/// or compilation — so the property the design needs survives: a reader
/// can momentarily contend with a pointer swap, but never waits on a
/// writer's real work.
class SnapshotSlot {
 public:
  std::shared_ptr<const ServiceSnapshot> load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
  }
  void store(std::shared_ptr<const ServiceSnapshot> next) {
    std::shared_ptr<const ServiceSnapshot> prev;
    {
      std::lock_guard<std::mutex> lock(mu_);
      prev = std::move(ptr_);
      ptr_ = std::move(next);
    }
    // `prev` dies here, outside the lock: dropping the last reference frees
    // a whole model copy and must not extend the critical section.
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServiceSnapshot> ptr_;
};

class AdvisorService;

/// A tenant-bound handle over the AdvisorApi: fills in the tenant field,
/// exposes the tenant's snapshot and (read-only) subsystems. Copyable and
/// cheap — it is a (service, tenant-name) pair, not a resource. This is the
/// entry point that replaces hand-wiring ScopeEngine::CompileShared +
/// PersonalizerService::Rank/Reward + StatsInsightService uploads.
class TenantSession {
 public:
  TenantSession() = default;

  const std::string& tenant() const { return tenant_; }
  bool valid() const { return service_ != nullptr; }

  /// AdvisorApi calls with the tenant field filled from this session.
  Result<RankResponse> Rank(RankRequest request);
  Result<RewardResponse> Reward(RewardRequest request);
  Result<CompileResponse> Compile(CompileRequest request);
  Result<UploadHintsResponse> UploadHints(UploadHintsRequest request);

  /// Payload-level conveniences over the request structs above.
  Result<RewardResponse> Reward(bandit::EventId event, double reward);
  Result<CompileResponse> Compile(const workload::JobInstance& job,
                                  bool apply_hints = true);
  Result<UploadHintsResponse> UploadHints(const sis::HintFile& file);

  /// Runs one day of the offline recommendation pipeline (feature gen ->
  /// bandit -> flighting -> validation -> hint gen -> SIS) against this
  /// tenant's learner and SIS, then republishes the snapshot so serving
  /// traffic sees the new hints/model. Serialized by the tenant mutex.
  Result<advisor::PipelineDayReport> RunPipelineDay(
      const telemetry::WorkloadView& view);

  /// One synchronous retrain/publish cycle; false when nothing was pending.
  bool TrainAndPublish();

  /// The tenant's current RCU snapshot (pointer-copy load, never null).
  std::shared_ptr<const ServiceSnapshot> snapshot() const;

  /// The tenant's engine — for executing compilations returned by
  /// Compile(). Internally synchronized; safe to use concurrently.
  const engine::ScopeEngine& engine() const;
  /// Read-only view of the tenant's SIS (live state, not the snapshot).
  /// Safe only while no concurrent writer runs; concurrent readers should
  /// use snapshot()->hints instead.
  const sis::StatsInsightService& sis() const;
  /// The tenant's offline pipeline — null until the first RunPipelineDay.
  /// Same single-writer caveat as sis(): for post-run inspection (guard
  /// telemetry, validation samples), not concurrent access.
  advisor::QoAdvisorPipeline* pipeline() const;

 private:
  friend class AdvisorService;
  TenantSession(AdvisorService* service, std::string tenant)
      : service_(service), tenant_(std::move(tenant)) {}

  AdvisorService* service_ = nullptr;
  std::string tenant_;
};

/// The service. Construct once per process (or test) from an AdvisorOptions
/// snapshot, open tenants, then serve AdvisorApi traffic from any number of
/// threads. All four API calls are safe to issue concurrently with each
/// other and with the retrain loop.
class AdvisorService : public AdvisorApi {
 public:
  explicit AdvisorService(AdvisorOptions options = AdvisorOptions::Defaults());
  /// Stops the background trainer and drops all tenants.
  ~AdvisorService() override;
  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  /// Creates the tenant (idempotent-hostile: AlreadyExists on reopen) and
  /// returns a bound session. Publishes the tenant's initial snapshot
  /// (sequence 1: cold model, empty hint view) before returning, so readers
  /// never observe a null snapshot.
  Result<TenantSession> OpenTenant(const std::string& tenant,
                                   TenantConfig config = {});
  /// A session for an already-open tenant; NotFound otherwise.
  Result<TenantSession> Session(const std::string& tenant);

  // AdvisorApi — routed by request.tenant.
  Result<RankResponse> Rank(const RankRequest& request) override;
  Result<RewardResponse> Reward(const RewardRequest& request) override;
  Result<CompileResponse> Compile(const CompileRequest& request) override;
  Result<UploadHintsResponse> UploadHints(
      const UploadHintsRequest& request) override;

  /// The tenant's current snapshot (never null for an open tenant; null for
  /// unknown tenants).
  std::shared_ptr<const ServiceSnapshot> CurrentSnapshot(
      const std::string& tenant) const;

  /// One retrain/publish cycle for one tenant: drain + copy under the
  /// tenant mutex, train outside it, adopt + publish under it again.
  /// Returns false when no rewards were pending (nothing published).
  bool TrainAndPublish(const std::string& tenant);
  /// TrainAndPublish over every open tenant; returns how many published.
  size_t TrainAndPublishAll();

  /// Starts the background retrain/ingest loop at `period` (idempotent).
  /// The loop calls TrainAndPublishAll between waits; snapshot timing then
  /// depends on scheduling, so deterministic harnesses leave this off.
  void StartBackgroundTrainer(std::chrono::milliseconds period);
  void StopBackgroundTrainer();
  bool background_trainer_running() const { return trainer_.joinable(); }

  Result<advisor::PipelineDayReport> RunPipelineDay(
      const std::string& tenant, const telemetry::WorkloadView& view);

  const AdvisorOptions& options() const { return options_; }
  /// Open tenant names, sorted.
  std::vector<std::string> tenants() const;

 private:
  friend class TenantSession;

  struct TenantState {
    std::string name;
    TenantConfig config;
    /// Owned engine (null when config.engine borrows the caller's).
    std::unique_ptr<engine::ScopeEngine> owned_engine;
    const engine::ScopeEngine* engine = nullptr;
    /// Guards sis/personalizer/pipeline and snapshot *publication* (readers
    /// load the snapshot lock-free; only writers serialize here).
    std::mutex mu;
    sis::StatsInsightService sis;
    bandit::PersonalizerService personalizer;
    /// Lazily built on first RunPipelineDay (borrows engine/personalizer/
    /// sis above).
    std::unique_ptr<advisor::QoAdvisorPipeline> pipeline;
    /// The RCU publication point (micro-mutex inside; see SnapshotSlot).
    /// Stores happen under mu; loads take only the slot's own lock.
    SnapshotSlot snapshot;
    uint64_t publications = 0;      ///< == last published sequence
    uint64_t model_generation = 0;  ///< retrains folded into the learner

    TenantState(std::string tenant_name, TenantConfig cfg,
                const AdvisorOptions& options);
  };

  TenantState* FindTenant(const std::string& tenant) const;
  /// Builds + release-publishes the next snapshot from the tenant's live
  /// state. Caller holds t.mu.
  void PublishLocked(TenantState& t);
  void TrainerLoop(std::chrono::milliseconds period);

  AdvisorOptions options_;
  mutable std::shared_mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;

  // Background retrain/ingest loop.
  std::thread trainer_;
  std::mutex trainer_mu_;
  std::condition_variable trainer_cv_;
  bool trainer_stop_ = false;

  // Cached registry metrics (stable pointers; see obs/metrics.h). Purely
  // observational.
  obs::Counter* rank_requests_;
  obs::Counter* reward_requests_;
  obs::Counter* compile_requests_;
  obs::Counter* hint_uploads_;
  obs::Counter* publications_;
  obs::Histogram* rank_ns_;
  obs::Histogram* reward_ns_;
  obs::Histogram* compile_ns_;
  obs::Histogram* request_ns_;
};

}  // namespace qo::service

#endif  // QO_SERVICE_ADVISOR_SERVICE_H_

// One aggregate for every environment knob the advisor stack reads.
//
// Before the service layer, six option structs each read the environment at
// their own construction time (RuntimeOptions/CompileCacheOptions/
// ExecOptions/CrossConfigMemoOptions/GuardConfig via FromEnv defaults, plus
// the QO_METRICS/QO_OBS_*/QO_TRACE observability knobs cached on first
// use). A long-running process could therefore observe *different* env
// values per subsystem depending on construction order. AdvisorOptions
// fixes the inconsistency: FromEnv() snapshots every knob exactly once, and
// the AdvisorService threads the captured values explicitly into each
// subsystem it builds — nothing downstream of the service re-reads the
// environment.
//
// Knob map (legacy reader -> field):
//   QO_THREADS                 -> runtime.num_threads
//   QO_COMPILE_CACHE[_*]       -> compile_cache.{enabled,capacities,shards}
//   QO_PREPARED_EXEC           -> exec.prepared
//   QO_CROSS_CONFIG_MEMO       -> memo.enabled
//   QO_GUARD + QO_FAULT_*      -> guard.{enabled,faults}
//   QO_METRICS                 -> obs.metrics
//   QO_OBS_REPORT / QO_OBS_LABEL / QO_TRACE -> obs.{report_path,label,trace_path}
//   QO_OBS_SAMPLE              -> obs.span_sample_every
//   QO_SIMD                    -> obs.simd (captured for run reports only;
//                                 kernel dispatch reads the env itself once)
//   QO_SERVICE_RETRAIN_MS      -> retrain_period_ms
#ifndef QO_SERVICE_ADVISOR_OPTIONS_H_
#define QO_SERVICE_ADVISOR_OPTIONS_H_

#include <string>

#include "cache/compilation_cache.h"
#include "engine/engine.h"
#include "guard/guardrail.h"
#include "optimizer/cross_config_memo.h"
#include "runtime/runtime.h"

namespace qo::service {

/// Observability knobs as captured values (the legacy readers cache these
/// process-wide on first use; the service records what was captured so run
/// reports and load benches can be wired without re-reading the env).
struct ObsOptions {
  /// QO_METRICS != "0". Purely observational either way — outputs are
  /// byte-identical with metrics on or off.
  bool metrics = true;
  /// QO_OBS_REPORT: JSONL run-report sink path ("" = no report).
  std::string report_path;
  /// QO_OBS_LABEL: label stamped on each report line.
  std::string label;
  /// QO_TRACE: Chrome-trace sink path ("" = no trace).
  std::string trace_path;
  /// QO_OBS_SAMPLE: record every Nth span per site (1 = every span).
  /// Purely observational — sampled histograms, identical outputs.
  int span_sample_every = 1;
  /// QO_SIMD != "0": vectorized kernel dispatch active (modulo CPU
  /// support). Captured so run reports can attribute timings to the
  /// kernel table in use; the data plane is byte-identical either way.
  bool simd = true;
};

/// Everything an AdvisorService (and the subsystems it constructs) is
/// allowed to know about its environment. Defaults are the no-env defaults
/// of each subsystem — constructing AdvisorOptions{} performs no env reads.
struct AdvisorOptions {
  runtime::RuntimeOptions runtime;
  cache::CompileCacheOptions compile_cache;
  engine::ExecOptions exec;
  opt::CrossConfigMemoOptions memo;
  /// Guardrails + fault injection. Default-inert (enabled=false, no fault
  /// probabilities), matching GuardConfig{}.
  guard::GuardConfig guard;
  ObsOptions obs;
  /// Background retrain/ingest loop period in milliseconds; 0 keeps
  /// retraining manual (the owner calls TrainAndPublish at points of its
  /// choosing — the deterministic mode benches and tests use).
  int retrain_period_ms = 0;

  /// All-default options; reads nothing from the environment.
  static AdvisorOptions Defaults() { return {}; }

  /// Snapshots every QO_* knob above in one pass. Call once at service
  /// start and thread the result explicitly; later env mutations are
  /// invisible to a service constructed from this snapshot.
  static AdvisorOptions FromEnv();
};

}  // namespace qo::service

#endif  // QO_SERVICE_ADVISOR_OPTIONS_H_

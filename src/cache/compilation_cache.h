// The two-level compilation cache behind ScopeEngine::Compile.
//
// Level 1 (front-end memo): rendered script -> parsed + resolved
// LogicalPlan, keyed by (script hash, catalog-stats fingerprint). The front
// end is config-independent, so the span fix-point's up-to-8 recompiles,
// multi-flip search, recommendation recompiles and flighting all parse each
// job occurrence exactly once — and occurrences of the same template whose
// rendered script and statistics are identical share one parse across the
// whole batch.
//
// Level 2 (compilation cache): full CompilationOutput keyed by (script hash,
// catalog-stats fingerprint, RuleConfig bits). Repeated (job, config)
// compilations across pipeline stages — default compiles in view building,
// span seeding, multi-flip baselines, recommendation's DefaultWithFlip
// probes, and the A/B flights that recompile both arms — hit instead of
// recompute.
//
// Both levels cache failures too: a config that fails to compile keeps
// failing identically from cache (the span fix-point and flip evaluation
// depend on observing those failures deterministically).
//
// Invalidation is by fingerprint: statistics drift or script edits change
// the key, and stale entries age out of the sharded LRU. Entries are
// immutable shared_ptr<const ...>, so results are byte-identical with the
// cache on, off, and at any thread count.
//
// Env knobs (read by Options::FromEnv, the ScopeEngine default):
//   QO_COMPILE_CACHE=0            disable both levels
//   QO_COMPILE_CACHE_CAPACITY=N   level-2 entry bound (level 1 gets N/4)
//   QO_COMPILE_CACHE_SHARDS=N     shard count for both levels
#ifndef QO_CACHE_COMPILATION_CACHE_H_
#define QO_CACHE_COMPILATION_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/sharded_lru.h"
#include "common/bitvector.h"
#include "common/status.h"
#include "optimizer/cross_config_memo.h"
#include "optimizer/physical_plan.h"
#include "scope/logical_plan.h"
#include "telemetry/cache_telemetry.h"

namespace qo::cache {

/// Level-1 key: everything the config-independent front end reads.
struct FrontEndKey {
  uint64_t script_hash = 0;
  uint64_t catalog_fingerprint = 0;

  bool operator==(const FrontEndKey& o) const {
    return script_hash == o.script_hash &&
           catalog_fingerprint == o.catalog_fingerprint;
  }
};

/// Level-2 key: the front-end key plus the full rule configuration.
struct CompilationKey {
  FrontEndKey front_end;
  BitVector256 config;

  bool operator==(const CompilationKey& o) const {
    return front_end == o.front_end && config == o.config;
  }
};

struct FrontEndKeyHasher {
  size_t operator()(const FrontEndKey& k) const;
};

struct CompilationKeyHasher {
  size_t operator()(const CompilationKey& k) const;
};

/// An immutable cached front-end result: the logical plan, or the compile
/// error that producing it raised. The cross-config memo rides on the entry
/// because its stored results are valid exactly as long as this plan +
/// catalog fingerprint pair is — eviction or stats drift retires both
/// together. `mutable` + internal mutex, same discipline as the prepared
/// execution-profile slot on CompilationOutput.
struct CachedFrontEnd {
  Status status;
  scope::LogicalPlan plan;  ///< meaningful only when status.ok()
  mutable opt::CrossConfigMemo cross_config_memo;
};

/// An immutable cached compilation: the full optimizer output, or the
/// compile error the (job, config) pair deterministically produces. The
/// output is held by shared_ptr so the cross-config memo, every L2 entry it
/// serves, and every CompileShared caller reference one CompilationOutput —
/// a memo hit is a refcount bump, never a deep plan copy.
struct CachedCompilation {
  Status status;
  /// Null exactly when !status.ok().
  std::shared_ptr<const opt::CompilationOutput> output;
};

using FrontEndPtr = std::shared_ptr<const CachedFrontEnd>;
using CompilationPtr = std::shared_ptr<const CachedCompilation>;

struct CompileCacheOptions {
  bool enabled = true;
  /// Level-2 bound (full compilations; the dominant footprint).
  size_t compilation_capacity = 16384;
  /// Level-1 bound (logical plans; one entry serves many configs).
  size_t front_end_capacity = 4096;
  int num_shards = 16;

  /// Reads the QO_COMPILE_CACHE* environment knobs documented above;
  /// unset variables keep the defaults.
  static CompileCacheOptions FromEnv();
};

/// Thread-safe two-level cache. Owned by a ScopeEngine (keys do not cover
/// optimizer options; the engine folds its options fingerprint into the
/// catalog fingerprint, so sharing across engines stays sound).
class CompilationCache {
 public:
  explicit CompilationCache(CompileCacheOptions options);

  /// Level 1: returns the cached front-end result for `key`, computing it
  /// with `compile` (called without any cache lock) on miss.
  FrontEndPtr GetOrParse(const FrontEndKey& key,
                         const std::function<Result<scope::LogicalPlan>()>&
                             compile);

  /// Level 2: returns the cached compilation for `key`, computing it with
  /// `compile` on miss. The miss handler returns an already-shared output so
  /// a producer that also retains the result (the cross-config memo) never
  /// forces a copy.
  CompilationPtr GetOrCompile(
      const CompilationKey& key,
      const std::function<
          Result<std::shared_ptr<const opt::CompilationOutput>>()>& compile);

  const CompileCacheOptions& options() const { return options_; }

  /// Merged hit/miss/eviction counters for both levels.
  telemetry::CompileCacheTelemetry Telemetry() const;

  void Clear();

 private:
  CompileCacheOptions options_;
  ShardedLruCache<FrontEndKey, FrontEndPtr, FrontEndKeyHasher> front_end_;
  ShardedLruCache<CompilationKey, CompilationPtr, CompilationKeyHasher>
      compilations_;
};

}  // namespace qo::cache

#endif  // QO_CACHE_COMPILATION_CACHE_H_

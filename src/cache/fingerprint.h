// Deterministic fingerprints for the compilation-cache keys.
//
// A cache entry is only valid while every compile input it was derived from
// is unchanged, so keys are built from content hashes (common/hash.h): the
// rendered script text, the per-occurrence catalog statistics
// (Catalog::StatsFingerprint), and the engine's optimizer options. There is
// no explicit invalidation — drifted statistics or an edited script change
// the fingerprint and simply miss (the stale entry ages out of the LRU).
#ifndef QO_CACHE_FINGERPRINT_H_
#define QO_CACHE_FINGERPRINT_H_

#include <cstdint>

#include "common/hash.h"
#include "optimizer/optimizer.h"

namespace qo::cache {

/// Fingerprint of everything in OptimizerOptions that can change a
/// compilation result. Folded into every cache key so engines with different
/// options can never alias, even if they ever share a cache.
uint64_t OptimizerOptionsFingerprint(const opt::OptimizerOptions& options);

}  // namespace qo::cache

#endif  // QO_CACHE_FINGERPRINT_H_

#include "cache/fingerprint.h"

namespace qo::cache {

uint64_t OptimizerOptionsFingerprint(const opt::OptimizerOptions& options) {
  // CostParams is a flat POD of doubles; hash it field-by-field (not by
  // memcpy of the struct) so padding can never leak into the fingerprint.
  const opt::CostParams& c = options.cost_params;
  const double fields[] = {
      static_cast<double>(options.max_exprs_per_group),
      options.broadcast_threshold_bytes,
      options.broadcast_threshold_aggressive_bytes,
      c.scan_byte,
      c.scan_row,
      c.filter_row,
      c.project_row,
      c.hash_build_row,
      c.hash_probe_row,
      c.sort_row_log,
      c.merge_row,
      c.agg_row,
      c.agg_group,
      c.union_row,
      c.output_byte,
      c.shuffle_byte,
      c.broadcast_byte,
      c.partition_overhead,
  };
  uint64_t h = 0x5161e1a7c0de0001ULL;  // domain-separates from other hashes
  for (double f : fields) h = HashDouble(f, h);
  return MixHash(h);
}

}  // namespace qo::cache

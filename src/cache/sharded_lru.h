// A sharded, thread-safe, LRU-bounded map used by the compilation caches.
//
// Sharding follows the ShardedWorkQueue convention (src/runtime/): an entry
// lives in shard `hash(key) % num_shards`, each shard owns an independent
// mutex + LRU list, so concurrent lookups of unrelated keys never contend.
// Values are handed out by copy — callers store shared_ptr<const T>, which
// makes a hit O(1) and lets an entry outlive its own eviction.
//
// Determinism note: hit/miss/eviction *timing* depends on thread
// interleaving, but a cached value is always byte-identical to what the
// compute function would produce (entries are immutable once inserted), so
// cached and uncached runs of a pure function agree for any thread count.
#ifndef QO_CACHE_SHARDED_LRU_H_
#define QO_CACHE_SHARDED_LRU_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "telemetry/cache_telemetry.h"

namespace qo::cache {

template <typename Key, typename Value, typename Hasher>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry bound across shards (each shard gets an
  /// equal slice, rounded up). `num_shards` <= 0 falls back to 1.
  ShardedLruCache(size_t capacity, int num_shards)
      : capacity_(capacity),
        shards_(static_cast<size_t>(num_shards > 0 ? num_shards : 1)) {
    per_shard_capacity_ = (capacity_ + shards_.size() - 1) / shards_.size();
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  }

  /// Returns the cached value and refreshes its recency, or nullopt.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the shard's least-recently-used
  /// entries beyond capacity. Returns the resident value: on an insert race
  /// the first writer wins and later writers receive the existing entry, so
  /// every caller observes one consistent value per key.
  Value Insert(const Key& key, Value value) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    while (shard.index.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    return shard.lru.front().second;
  }

  /// Get-or-insert in one call. `compute` runs WITHOUT the shard lock (it
  /// may be arbitrarily expensive — a full compilation); two threads racing
  /// on the same missing key both compute, and Insert keeps the first.
  Value GetOrCompute(const Key& key, const std::function<Value()>& compute) {
    if (std::optional<Value> hit = Get(key)) return std::move(*hit);
    return Insert(key, compute());
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
    }
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.index.size();
    }
    return n;
  }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  /// Merged counter snapshot across shards.
  telemetry::CacheCounters Counters() const {
    telemetry::CacheCounters out;
    out.capacity = capacity_;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      out.hits += shard.hits;
      out.misses += shard.misses;
      out.evictions += shard.evictions;
      out.entries += shard.index.size();
    }
    return out;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<Key, Value>> lru;  ///< front = most recent
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hasher>
        index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardOf(const Key& key) {
    return shards_[Hasher{}(key) % shards_.size()];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace qo::cache

#endif  // QO_CACHE_SHARDED_LRU_H_

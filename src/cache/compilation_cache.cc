#include "cache/compilation_cache.h"

#include <cstdlib>
#include <string>

#include "cache/fingerprint.h"

namespace qo::cache {

namespace {

/// Parses a positive integer env var; returns `fallback` when unset, empty
/// or unparsable (a misspelled knob degrades to defaults, never to UB).
size_t EnvSize(const char* name, size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || v == 0) return fallback;
  return static_cast<size_t>(v);
}

}  // namespace

CompileCacheOptions CompileCacheOptions::FromEnv() {
  CompileCacheOptions options;
  const char* enabled = std::getenv("QO_COMPILE_CACHE");
  if (enabled != nullptr && std::string(enabled) == "0") {
    options.enabled = false;
  }
  options.compilation_capacity =
      EnvSize("QO_COMPILE_CACHE_CAPACITY", options.compilation_capacity);
  // One front-end entry serves every config of a job, so a quarter of the
  // level-2 bound keeps level 1 effectively unevicted in practice.
  options.front_end_capacity = options.compilation_capacity / 4 > 0
                                   ? options.compilation_capacity / 4
                                   : 1;
  options.num_shards = static_cast<int>(
      EnvSize("QO_COMPILE_CACHE_SHARDS",
              static_cast<size_t>(options.num_shards)));
  return options;
}

size_t FrontEndKeyHasher::operator()(const FrontEndKey& k) const {
  return static_cast<size_t>(
      MixHash(k.script_hash ^ MixHash(k.catalog_fingerprint)));
}

size_t CompilationKeyHasher::operator()(const CompilationKey& k) const {
  return static_cast<size_t>(
      MixHash(FrontEndKeyHasher{}(k.front_end) ^ k.config.Hash()));
}

CompilationCache::CompilationCache(CompileCacheOptions options)
    : options_(options),
      front_end_(options.front_end_capacity, options.num_shards),
      compilations_(options.compilation_capacity, options.num_shards) {}

FrontEndPtr CompilationCache::GetOrParse(
    const FrontEndKey& key,
    const std::function<Result<scope::LogicalPlan>()>& compile) {
  return front_end_.GetOrCompute(key, [&]() -> FrontEndPtr {
    auto entry = std::make_shared<CachedFrontEnd>();
    Result<scope::LogicalPlan> result = compile();
    if (result.ok()) {
      entry->plan = std::move(result).value();
    } else {
      entry->status = result.status();
    }
    return entry;
  });
}

CompilationPtr CompilationCache::GetOrCompile(
    const CompilationKey& key,
    const std::function<
        Result<std::shared_ptr<const opt::CompilationOutput>>()>& compile) {
  return compilations_.GetOrCompute(key, [&]() -> CompilationPtr {
    auto entry = std::make_shared<CachedCompilation>();
    Result<std::shared_ptr<const opt::CompilationOutput>> result = compile();
    if (result.ok()) {
      entry->output = std::move(result).value();
    } else {
      entry->status = result.status();
    }
    return entry;
  });
}

telemetry::CompileCacheTelemetry CompilationCache::Telemetry() const {
  telemetry::CompileCacheTelemetry t;
  t.enabled = options_.enabled;
  t.front_end = front_end_.Counters();
  t.compilations = compilations_.Counters();
  return t;
}

void CompilationCache::Clear() {
  front_end_.Clear();
  compilations_.Clear();
}

}  // namespace qo::cache

#include "engine/engine.h"

#include <utility>

#include "cache/fingerprint.h"
#include "scope/compiler.h"

namespace qo::engine {

ScopeEngine::ScopeEngine(opt::OptimizerOptions optimizer_options,
                         exec::ClusterConfig cluster_config,
                         cache::CompileCacheOptions cache_options)
    : optimizer_options_(optimizer_options),
      simulator_(cluster_config),
      options_fingerprint_(
          cache::OptimizerOptionsFingerprint(optimizer_options)) {
  if (cache_options.enabled) {
    cache_ = std::make_unique<cache::CompilationCache>(cache_options);
  }
}

cache::FrontEndKey ScopeEngine::FrontEndKeyOf(
    const workload::JobInstance& job) const {
  cache::FrontEndKey key;
  key.script_hash = HashString(job.script);
  key.catalog_fingerprint =
      job.catalog.StatsFingerprint() ^ options_fingerprint_;
  return key;
}

Result<opt::CompilationOutput> ScopeEngine::Optimize(
    const scope::LogicalPlan& logical, const workload::JobInstance& job,
    const opt::RuleConfig& config) const {
  opt::Optimizer optimizer(job.catalog, optimizer_options_);
  return optimizer.Optimize(logical, config);
}

Result<std::shared_ptr<const scope::LogicalPlan>> ScopeEngine::CompileFrontEnd(
    const workload::JobInstance& job) const {
  if (cache_ == nullptr) {
    QO_ASSIGN_OR_RETURN(scope::LogicalPlan logical,
                        scope::CompileSource(job.script, job.catalog));
    return std::shared_ptr<const scope::LogicalPlan>(
        std::make_shared<scope::LogicalPlan>(std::move(logical)));
  }
  cache::FrontEndPtr entry = cache_->GetOrParse(FrontEndKeyOf(job), [&] {
    return scope::CompileSource(job.script, job.catalog);
  });
  if (!entry->status.ok()) return entry->status;
  // Alias the plan to the cache entry: one refcount, zero copies.
  return std::shared_ptr<const scope::LogicalPlan>(entry, &entry->plan);
}

Result<std::shared_ptr<const opt::CompilationOutput>>
ScopeEngine::CompileShared(const workload::JobInstance& job,
                           const opt::RuleConfig& config) const {
  if (cache_ == nullptr) {
    QO_ASSIGN_OR_RETURN(scope::LogicalPlan logical,
                        scope::CompileSource(job.script, job.catalog));
    QO_ASSIGN_OR_RETURN(opt::CompilationOutput output,
                        Optimize(logical, job, config));
    return std::shared_ptr<const opt::CompilationOutput>(
        std::make_shared<opt::CompilationOutput>(std::move(output)));
  }
  cache::CompilationKey key;
  key.front_end = FrontEndKeyOf(job);
  key.config = config.bits();
  cache::CompilationPtr entry = cache_->GetOrCompile(
      key, [&]() -> Result<opt::CompilationOutput> {
        // Miss handler: level 1 still memoizes the front end, so the other
        // configs of this job skip straight to the optimizer.
        cache::FrontEndPtr fe = cache_->GetOrParse(key.front_end, [&] {
          return scope::CompileSource(job.script, job.catalog);
        });
        if (!fe->status.ok()) return fe->status;
        return Optimize(fe->plan, job, config);
      });
  if (!entry->status.ok()) return entry->status;
  return std::shared_ptr<const opt::CompilationOutput>(entry, &entry->output);
}

Result<opt::CompilationOutput> ScopeEngine::Compile(
    const workload::JobInstance& job, const opt::RuleConfig& config) const {
  if (cache_ == nullptr) {
    // No cache to share with: compile straight into the caller's value,
    // skipping the shared_ptr wrap + deep copy of the cached path.
    QO_ASSIGN_OR_RETURN(scope::LogicalPlan logical,
                        scope::CompileSource(job.script, job.catalog));
    return Optimize(logical, job, config);
  }
  QO_ASSIGN_OR_RETURN(std::shared_ptr<const opt::CompilationOutput> shared,
                      CompileShared(job, config));
  return opt::CompilationOutput(*shared);
}

Result<JobRunResult> ScopeEngine::Run(const workload::JobInstance& job,
                                      const opt::RuleConfig& config,
                                      uint64_t run_salt) const {
  QO_ASSIGN_OR_RETURN(std::shared_ptr<const opt::CompilationOutput> compiled,
                      CompileShared(job, config));
  JobRunResult result;
  result.metrics = Execute(job, compiled->plan, run_salt);
  result.compilation = std::move(compiled);
  return result;
}

exec::JobMetrics ScopeEngine::Execute(const workload::JobInstance& job,
                                      const opt::PhysicalPlan& plan,
                                      uint64_t run_salt) const {
  uint64_t seed = job.run_seed ^ (run_salt * 0xbf58476d1ce4e5b9ULL + 1);
  return simulator_.Execute(plan, job.catalog, seed);
}

telemetry::CompileCacheTelemetry ScopeEngine::compile_cache_telemetry() const {
  if (cache_ == nullptr) return telemetry::CompileCacheTelemetry{};
  return cache_->Telemetry();
}

}  // namespace qo::engine

#include "engine/engine.h"

#include "scope/compiler.h"

namespace qo::engine {

ScopeEngine::ScopeEngine(opt::OptimizerOptions optimizer_options,
                         exec::ClusterConfig cluster_config)
    : optimizer_options_(optimizer_options), simulator_(cluster_config) {}

Result<opt::CompilationOutput> ScopeEngine::Compile(
    const workload::JobInstance& job, const opt::RuleConfig& config) const {
  QO_ASSIGN_OR_RETURN(scope::LogicalPlan logical,
                      scope::CompileSource(job.script, job.catalog));
  opt::Optimizer optimizer(job.catalog, optimizer_options_);
  return optimizer.Optimize(logical, config);
}

Result<JobRunResult> ScopeEngine::Run(const workload::JobInstance& job,
                                      const opt::RuleConfig& config,
                                      uint64_t run_salt) const {
  QO_ASSIGN_OR_RETURN(opt::CompilationOutput compiled, Compile(job, config));
  JobRunResult result;
  result.metrics = Execute(job, compiled.plan, run_salt);
  result.compilation = std::move(compiled);
  return result;
}

exec::JobMetrics ScopeEngine::Execute(const workload::JobInstance& job,
                                      const opt::PhysicalPlan& plan,
                                      uint64_t run_salt) const {
  uint64_t seed = job.run_seed ^ (run_salt * 0xbf58476d1ce4e5b9ULL + 1);
  return simulator_.Execute(plan, job.catalog, seed);
}

}  // namespace qo::engine

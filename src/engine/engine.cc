#include "engine/engine.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>

#include "cache/fingerprint.h"
#include "common/symbol_table.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "scope/compiler.h"

namespace qo::engine {

namespace {

// Phase histograms for the manually timed wrappers (CompileShared/Execute
// need the measured duration twice — phase + per-template — so they read the
// clock themselves instead of using QO_OBS_SPAN).
obs::Histogram& CompileSpanHist() {
  static obs::Histogram* h = &obs::Registry::Get().histogram("span.compile");
  return *h;
}

obs::Histogram& ExecuteSpanHist() {
  static obs::Histogram* h = &obs::Registry::Get().histogram("span.execute");
  return *h;
}

}  // namespace

ExecOptions ExecOptions::FromEnv() {
  ExecOptions options;
  const char* prepared = std::getenv("QO_PREPARED_EXEC");
  if (prepared != nullptr && std::strcmp(prepared, "0") == 0) {
    options.prepared = false;
  }
  return options;
}

ScopeEngine::ScopeEngine(opt::OptimizerOptions optimizer_options,
                         exec::ClusterConfig cluster_config,
                         cache::CompileCacheOptions cache_options,
                         ExecOptions exec_options,
                         opt::CrossConfigMemoOptions memo_options)
    : optimizer_options_(optimizer_options),
      simulator_(cluster_config),
      exec_options_(exec_options),
      memo_options_(memo_options),
      options_fingerprint_(
          cache::OptimizerOptionsFingerprint(optimizer_options)) {
  if (cache_options.enabled) {
    cache_ = std::make_unique<cache::CompilationCache>(cache_options);
  }
  // Export the engine's three telemetry surfaces as registry series. The
  // callback only reads counters and writes to the sink — it never calls
  // back into the registry (whose lock is held during Snapshot()).
  collector_id_ =
      obs::Registry::Get().AddCollector([this](obs::SeriesSink& sink) {
        telemetry::ExportSeries(compile_cache_telemetry(), sink);
        telemetry::ExportSeries(optimizer_telemetry(), sink);
        telemetry::ExportSeries(exec_profile_telemetry(), sink);
      });
}

ScopeEngine::~ScopeEngine() {
  obs::Registry::Get().RemoveCollector(collector_id_);
}

cache::FrontEndKey ScopeEngine::FrontEndKeyOf(
    const workload::JobInstance& job) const {
  cache::FrontEndKey key;
  key.script_hash = HashString(job.script);
  key.catalog_fingerprint =
      job.catalog.StatsFingerprint() ^ options_fingerprint_;
  return key;
}

Result<opt::CompilationOutput> ScopeEngine::Optimize(
    const scope::LogicalPlan& logical, const workload::JobInstance& job,
    const opt::RuleConfig& config) const {
  QO_OBS_SPAN("optimize");
  opt::Optimizer optimizer(job.catalog, optimizer_options_);
  return optimizer.Optimize(logical, config);
}

Result<std::shared_ptr<const opt::CompilationOutput>>
ScopeEngine::OptimizeWithMemo(const cache::CachedFrontEnd& fe,
                              const workload::JobInstance& job,
                              const opt::RuleConfig& config) const {
  QO_OBS_SPAN("optimize");
  opt::CrossConfigMemo& memo = fe.cross_config_memo;

  // Full-tier probe: some earlier compile consulted only bits this config
  // agrees on, so its output (or deterministic error) is this config's too.
  Status stored_status = Status::OK();
  std::shared_ptr<const opt::CompilationOutput> stored_output;
  if (memo.FindFull(config.bits(), &stored_status, &stored_output)) {
    memo_full_hits_.fetch_add(1, std::memory_order_relaxed);
    if (!stored_status.ok()) return stored_status;
    return stored_output;
  }

  opt::Optimizer optimizer(job.catalog, optimizer_options_);

  // Normalized-tier probe: reuse the validated + normalized plan and rerun
  // only the cost-based search under this config.
  BitVector256 norm_consulted;
  if (std::shared_ptr<const opt::NormalizedPlan> normalized =
          memo.FindNorm(config.bits(), &norm_consulted)) {
    memo_norm_hits_.fetch_add(1, std::memory_order_relaxed);
    BitVector256 post_consulted;
    Result<opt::CompilationOutput> result =
        optimizer.OptimizeFromNormalized(*normalized, config, &post_consulted);
    BitVector256 footprint = norm_consulted | post_consulted;
    if (!result.ok()) {
      memo.InsertFull(footprint, config.bits(), result.status(), nullptr);
      return result.status();
    }
    auto shared = std::make_shared<const opt::CompilationOutput>(
        std::move(result).value());
    memo.InsertFull(footprint, config.bits(), Status::OK(), shared);
    return std::shared_ptr<const opt::CompilationOutput>(std::move(shared));
  }

  // Miss: full pipeline, recording both footprints for future configs.
  memo_misses_.fetch_add(1, std::memory_order_relaxed);
  BitVector256 post_consulted;
  std::shared_ptr<const opt::NormalizedPlan> normalized;
  Result<opt::CompilationOutput> result = optimizer.OptimizeTracked(
      fe.plan, config, &norm_consulted, &post_consulted, &normalized);
  if (normalized != nullptr) {
    memo.InsertNorm(norm_consulted, config.bits(), normalized);
  }
  BitVector256 footprint = norm_consulted | post_consulted;
  if (!result.ok()) {
    memo.InsertFull(footprint, config.bits(), result.status(), nullptr);
    return result.status();
  }
  auto shared = std::make_shared<const opt::CompilationOutput>(
      std::move(result).value());
  memo.InsertFull(footprint, config.bits(), Status::OK(), shared);
  return std::shared_ptr<const opt::CompilationOutput>(std::move(shared));
}

Result<std::shared_ptr<const scope::LogicalPlan>> ScopeEngine::CompileFrontEnd(
    const workload::JobInstance& job) const {
  if (cache_ == nullptr) {
    QO_OBS_SPAN("parse");
    QO_ASSIGN_OR_RETURN(scope::LogicalPlan logical,
                        scope::CompileSource(job.script, job.catalog));
    return std::shared_ptr<const scope::LogicalPlan>(
        std::make_shared<scope::LogicalPlan>(std::move(logical)));
  }
  cache::FrontEndPtr entry = cache_->GetOrParse(FrontEndKeyOf(job), [&] {
    QO_OBS_SPAN("parse");
    return scope::CompileSource(job.script, job.catalog);
  });
  if (!entry->status.ok()) return entry->status;
  // Alias the plan to the cache entry: one refcount, zero copies.
  return std::shared_ptr<const scope::LogicalPlan>(entry, &entry->plan);
}

Result<std::shared_ptr<const opt::CompilationOutput>>
ScopeEngine::CompileShared(const workload::JobInstance& job,
                           const opt::RuleConfig& config) const {
  if (!obs::MetricsEnabled()) return CompileSharedImpl(job, config);
  const uint64_t start_ns = obs::MonotonicNowNs();
  auto result = CompileSharedImpl(job, config);
  const uint64_t end_ns = obs::MonotonicNowNs();
  const uint64_t dur = end_ns >= start_ns ? end_ns - start_ns : 0;
  CompileSpanHist().Record(dur);
  if (job.recurring) {
    if (obs::Histogram* tpl = TemplateHistsFor(job).compile_ns) {
      tpl->Record(dur);
    }
  }
  if (obs::TraceEnabled()) obs::TraceRecordSpan("compile", start_ns, end_ns);
  return result;
}

Result<std::shared_ptr<const opt::CompilationOutput>>
ScopeEngine::CompileSharedImpl(const workload::JobInstance& job,
                               const opt::RuleConfig& config) const {
  if (cache_ == nullptr) {
    Result<scope::LogicalPlan> logical = [&] {
      QO_OBS_SPAN("parse");
      return scope::CompileSource(job.script, job.catalog);
    }();
    if (!logical.ok()) return logical.status();
    QO_ASSIGN_OR_RETURN(opt::CompilationOutput output,
                        Optimize(*logical, job, config));
    return std::shared_ptr<const opt::CompilationOutput>(
        std::make_shared<opt::CompilationOutput>(std::move(output)));
  }
  cache::CompilationKey key;
  key.front_end = FrontEndKeyOf(job);
  key.config = config.bits();
  cache::CompilationPtr entry = cache_->GetOrCompile(
      key, [&]() -> Result<std::shared_ptr<const opt::CompilationOutput>> {
        // Miss handler: level 1 still memoizes the front end, so the other
        // configs of this job skip straight to the optimizer — and the
        // front-end entry's cross-config memo lets configs that only differ
        // in unconsulted rule bits skip the optimizer too.
        cache::FrontEndPtr fe = cache_->GetOrParse(key.front_end, [&] {
          QO_OBS_SPAN("parse");
          return scope::CompileSource(job.script, job.catalog);
        });
        if (!fe->status.ok()) return fe->status;
        if (!memo_options_.enabled) {
          QO_ASSIGN_OR_RETURN(opt::CompilationOutput output,
                              Optimize(fe->plan, job, config));
          return std::shared_ptr<const opt::CompilationOutput>(
              std::make_shared<opt::CompilationOutput>(std::move(output)));
        }
        return OptimizeWithMemo(*fe, job, config);
      });
  if (!entry->status.ok()) return entry->status;
  return entry->output;
}

Result<opt::CompilationOutput> ScopeEngine::Compile(
    const workload::JobInstance& job, const opt::RuleConfig& config) const {
  if (cache_ == nullptr) {
    // No cache to share with: compile straight into the caller's value,
    // skipping the shared_ptr wrap + deep copy of the cached path.
    Result<scope::LogicalPlan> logical = [&] {
      QO_OBS_SPAN("parse");
      return scope::CompileSource(job.script, job.catalog);
    }();
    if (!logical.ok()) return logical.status();
    return Optimize(*logical, job, config);
  }
  QO_ASSIGN_OR_RETURN(std::shared_ptr<const opt::CompilationOutput> shared,
                      CompileShared(job, config));
  return opt::CompilationOutput(*shared);
}

Result<JobRunResult> ScopeEngine::Run(const workload::JobInstance& job,
                                      const opt::RuleConfig& config,
                                      uint64_t run_salt) const {
  QO_ASSIGN_OR_RETURN(std::shared_ptr<const opt::CompilationOutput> compiled,
                      CompileShared(job, config));
  JobRunResult result;
  result.metrics = Execute(job, *compiled, run_salt);
  result.compilation = std::move(compiled);
  return result;
}

uint64_t ScopeEngine::RunSeed(const workload::JobInstance& job,
                              uint64_t run_salt) {
  return job.run_seed ^ (run_salt * 0xbf58476d1ce4e5b9ULL + 1);
}

exec::JobMetrics ScopeEngine::Execute(const workload::JobInstance& job,
                                      const opt::PhysicalPlan& plan,
                                      uint64_t run_salt) const {
  return simulator_.Execute(plan, job.catalog, RunSeed(job, run_salt));
}

exec::JobMetrics ScopeEngine::Execute(const workload::JobInstance& job,
                                      const opt::CompilationOutput& compilation,
                                      uint64_t run_salt) const {
  if (!obs::MetricsEnabled()) return ExecuteImpl(job, compilation, run_salt);
  const uint64_t start_ns = obs::MonotonicNowNs();
  exec::JobMetrics metrics = ExecuteImpl(job, compilation, run_salt);
  const uint64_t end_ns = obs::MonotonicNowNs();
  const uint64_t dur = end_ns >= start_ns ? end_ns - start_ns : 0;
  ExecuteSpanHist().Record(dur);
  if (job.recurring) {
    if (obs::Histogram* tpl = TemplateHistsFor(job).exec_ns) tpl->Record(dur);
  }
  if (obs::TraceEnabled()) obs::TraceRecordSpan("execute", start_ns, end_ns);
  return metrics;
}

exec::JobMetrics ScopeEngine::ExecuteImpl(
    const workload::JobInstance& job, const opt::CompilationOutput& compilation,
    uint64_t run_salt) const {
  if (!exec_options_.prepared) {
    return Execute(job, compilation.plan, run_salt);
  }
  std::shared_ptr<const exec::ExecutionProfile> profile =
      PrepareProfile(job, compilation);
  return simulator_.Execute(*profile, RunSeed(job, run_salt));
}

std::vector<exec::JobMetrics> ScopeEngine::ExecuteRuns(
    const workload::JobInstance& job, const opt::CompilationOutput& compilation,
    uint64_t first_salt, int runs) const {
  // Batch granularity on purpose: per-run clocking would dominate the
  // ~300ns prepared-run path. Per-call latency lives under "span.execute".
  QO_OBS_SPAN("exec.run_batch");
  std::vector<exec::JobMetrics> out;
  out.reserve(runs > 0 ? static_cast<size_t>(runs) : 0);
  if (!exec_options_.prepared) {
    for (int i = 0; i < runs; ++i) {
      out.push_back(Execute(job, compilation.plan,
                            first_salt + static_cast<uint64_t>(i)));
    }
    return out;
  }
  std::shared_ptr<const exec::ExecutionProfile> profile =
      PrepareProfile(job, compilation);
  for (int i = 0; i < runs; ++i) {
    out.push_back(simulator_.Execute(
        *profile, RunSeed(job, first_salt + static_cast<uint64_t>(i))));
  }
  return out;
}

std::shared_ptr<const exec::ExecutionProfile> ScopeEngine::PrepareProfile(
    const workload::JobInstance& job,
    const opt::CompilationOutput& compilation) const {
  // Reuse requires the stored profile to match both the cluster config and
  // the catalog statistics: scan work bakes in table sizes, so a compilation
  // executed against drifted stats must re-prepare.
  const uint64_t catalog_fp = job.catalog.StatsFingerprint();  // O(1)
  auto matches = [&](const exec::ExecutionProfile& p) {
    return p.config_fingerprint == simulator_.config_fingerprint() &&
           p.catalog_fingerprint == catalog_fp;
  };
  std::shared_ptr<const exec::ExecutionProfile> existing =
      compilation.exec_profile.Load();
  if (existing != nullptr && matches(*existing)) {
    profile_hits_.fetch_add(1, std::memory_order_relaxed);
    return existing;
  }
  profile_misses_.fetch_add(1, std::memory_order_relaxed);
  QO_OBS_SPAN("exec.prepare");
  std::shared_ptr<const exec::ExecutionProfile> fresh =
      simulator_.PrepareShared(compilation.plan, job.catalog);
  std::shared_ptr<const exec::ExecutionProfile> winner =
      compilation.exec_profile.TryStore(fresh);
  // The slot can hold a foreign profile when a compilation is shared across
  // engines with different cluster configs (or executed against drifted
  // statistics); keep ours local then instead of clobbering the slot.
  return matches(*winner) ? winner : fresh;
}

ScopeEngine::TemplateHists ScopeEngine::TemplateHistsFor(
    const workload::JobInstance& job) const {
  {
    std::shared_lock<std::shared_mutex> lock(tpl_mu_);
    auto it = tpl_hists_.find(job.template_id);
    if (it != tpl_hists_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(tpl_mu_);
  auto [it, inserted] = tpl_hists_.try_emplace(job.template_id);
  if (inserted) {
    const std::string base = "tpl." + job.template_name;
    it->second.compile_ns = &obs::Registry::Get().histogram(base + ".compile_ns");
    it->second.exec_ns = &obs::Registry::Get().histogram(base + ".exec_ns");
  }
  return it->second;
}

telemetry::CompileCacheTelemetry ScopeEngine::compile_cache_telemetry() const {
  if (cache_ == nullptr) return telemetry::CompileCacheTelemetry{};
  return cache_->Telemetry();
}

telemetry::OptimizerTelemetry ScopeEngine::optimizer_telemetry() const {
  telemetry::OptimizerTelemetry t;
  t.memo_enabled = cross_config_memo_enabled();
  t.memo_full_hits = memo_full_hits_.load(std::memory_order_relaxed);
  t.memo_norm_hits = memo_norm_hits_.load(std::memory_order_relaxed);
  t.memo_misses = memo_misses_.load(std::memory_order_relaxed);
  t.interned_symbols = SymbolTable::Global().size();
  return t;
}

telemetry::ExecProfileTelemetry ScopeEngine::exec_profile_telemetry() const {
  telemetry::ExecProfileTelemetry t;
  t.prepared_enabled = exec_options_.prepared;
  t.prepares = simulator_.profile_prepares();
  t.prepared_runs = simulator_.prepared_runs();
  t.unprepared_runs = simulator_.unprepared_runs();
  t.profile_hits = profile_hits_.load(std::memory_order_relaxed);
  t.profile_misses = profile_misses_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace qo::engine

// The SCOPE engine facade: compile (parse -> logical plan -> optimize) and
// execute (cluster simulation) a job instance under a rule configuration.
//
// This is the component QO-Advisor steers: the pipeline talks to it for
// recompilation, and the flighting service uses it for pre-production runs.
#ifndef QO_ENGINE_ENGINE_H_
#define QO_ENGINE_ENGINE_H_

#include "common/status.h"
#include "exec/cluster.h"
#include "exec/metrics.h"
#include "optimizer/optimizer.h"
#include "optimizer/rules.h"
#include "workload/template_gen.h"

namespace qo::engine {

/// Compilation + one execution of a job.
struct JobRunResult {
  opt::CompilationOutput compilation;
  exec::JobMetrics metrics;
};

/// Stateless facade bundling the compiler, optimizer and cluster simulator.
///
/// Audited for the parallel runtime: no hidden mutable state. The compiler
/// and optimizer are constructed per Compile call; the cluster simulator
/// seeds a local RNG per Execute call; the only process-wide state touched
/// (RuleRegistry, lexer keyword table) is immutable after its thread-safe
/// first-use initialization.
class ScopeEngine {
 public:
  explicit ScopeEngine(opt::OptimizerOptions optimizer_options = {},
                       exec::ClusterConfig cluster_config = {});

  /// Parses, compiles and optimizes the instance's script under `config`.
  /// CompileError on parse/semantic errors or infeasible configurations.
  /// Thread-safety: const and pure — deterministic per (job, config), safe
  /// to call concurrently.
  Result<opt::CompilationOutput> Compile(const workload::JobInstance& job,
                                         const opt::RuleConfig& config) const;

  /// Compile + execute. `run_salt` differentiates repeated executions of the
  /// same instance (A/A and A/B runs); identical salts replay identically.
  /// Thread-safety: const and pure — all randomness derives from
  /// (job.run_seed, run_salt), safe to call concurrently.
  Result<JobRunResult> Run(const workload::JobInstance& job,
                           const opt::RuleConfig& config,
                           uint64_t run_salt) const;

  /// Executes an already-compiled plan.
  /// Thread-safety: const and pure — see Run(); safe to call concurrently.
  exec::JobMetrics Execute(const workload::JobInstance& job,
                           const opt::PhysicalPlan& plan,
                           uint64_t run_salt) const;

  const opt::OptimizerOptions& optimizer_options() const {
    return optimizer_options_;
  }
  const exec::ClusterConfig& cluster_config() const {
    return simulator_.config();
  }

 private:
  opt::OptimizerOptions optimizer_options_;
  exec::ClusterSimulator simulator_;
};

}  // namespace qo::engine

#endif  // QO_ENGINE_ENGINE_H_

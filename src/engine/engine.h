// The SCOPE engine facade: compile (parse -> logical plan -> optimize) and
// execute (cluster simulation) a job instance under a rule configuration.
//
// This is the component QO-Advisor steers: the pipeline talks to it for
// recompilation, and the flighting service uses it for pre-production runs.
//
// Compilation is served through a two-level cache (src/cache/): a
// config-independent front-end memo (script -> LogicalPlan) plus a full
// (job, config) compilation cache, both sharded/LRU-bounded and keyed by
// content fingerprints. The cache is transparent — results are byte-
// identical with it on (default), off (QO_COMPILE_CACHE=0) and at any
// thread count — it only changes how often the compiler actually runs.
#ifndef QO_ENGINE_ENGINE_H_
#define QO_ENGINE_ENGINE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "cache/compilation_cache.h"
#include "common/status.h"
#include "exec/cluster.h"
#include "exec/metrics.h"
#include "obs/metrics.h"
#include "optimizer/cross_config_memo.h"
#include "optimizer/optimizer.h"
#include "optimizer/rules.h"
#include "telemetry/cache_telemetry.h"
#include "telemetry/exec_telemetry.h"
#include "telemetry/optimizer_telemetry.h"
#include "workload/template_gen.h"

namespace qo::engine {

/// Execution-side engine options.
struct ExecOptions {
  /// Serve repeated executions of one compilation from a prepared
  /// ExecutionProfile cached on the shared CompilationOutput. Transparent:
  /// metrics are byte-identical either way (asserted by exec_test); off only
  /// costs a fresh stage decomposition per run.
  bool prepared = true;

  /// Reads QO_PREPARED_EXEC (0 disables; unset/anything else keeps the
  /// default on).
  static ExecOptions FromEnv();
};

/// Compilation + one execution of a job. The compilation is shared with the
/// engine's cache (immutable; copy `*compilation` if mutation is needed).
struct JobRunResult {
  std::shared_ptr<const opt::CompilationOutput> compilation;
  exec::JobMetrics metrics;
};

/// Facade bundling the compiler, optimizer and cluster simulator.
///
/// Audited for the parallel runtime: compilation results are immutable and
/// the compilation cache is internally synchronized (sharded mutexes); the
/// cluster simulator seeds a local RNG per Execute call; the only
/// process-wide state touched (RuleRegistry, lexer keyword table) is
/// immutable after its thread-safe first-use initialization.
class ScopeEngine {
 public:
  explicit ScopeEngine(
      opt::OptimizerOptions optimizer_options = {},
      exec::ClusterConfig cluster_config = {},
      cache::CompileCacheOptions cache_options =
          cache::CompileCacheOptions::FromEnv(),
      ExecOptions exec_options = ExecOptions::FromEnv(),
      opt::CrossConfigMemoOptions memo_options =
          opt::CrossConfigMemoOptions::FromEnv());
  /// Deregisters the engine's registry collector.
  ~ScopeEngine();
  ScopeEngine(const ScopeEngine&) = delete;
  ScopeEngine& operator=(const ScopeEngine&) = delete;

  /// Parses, compiles and optimizes the instance's script under `config`.
  /// CompileError on parse/semantic errors or infeasible configurations.
  /// Thread-safety: const and deterministic per (job, config), safe to call
  /// concurrently. Returns an owned copy; prefer CompileShared on hot paths.
  Result<opt::CompilationOutput> Compile(const workload::JobInstance& job,
                                         const opt::RuleConfig& config) const;

  /// Compile without copying: the returned output is shared with the cache
  /// and must not be mutated. This is the path the advisor pipeline uses —
  /// a cache hit is O(1) regardless of plan size.
  /// [[deprecated]]-in-spirit for steered compile traffic: callers that want
  /// hint resolution should go through service::TenantSession::Compile,
  /// which resolves the tenant's published hint snapshot and then lands
  /// here. Direct use remains supported for unsteered/experiment paths.
  Result<std::shared_ptr<const opt::CompilationOutput>> CompileShared(
      const workload::JobInstance& job, const opt::RuleConfig& config) const;

  /// Front end only (lex + parse + resolve, no optimization), memoized
  /// across every configuration of the job. Exposed for tests and tools.
  Result<std::shared_ptr<const scope::LogicalPlan>> CompileFrontEnd(
      const workload::JobInstance& job) const;

  /// Compile + execute. `run_salt` differentiates repeated executions of the
  /// same instance (A/A and A/B runs); identical salts replay identically.
  /// Thread-safety: const and pure — all randomness derives from
  /// (job.run_seed, run_salt), safe to call concurrently.
  /// [[deprecated]]-in-spirit for production-shaped callers: prefer
  /// service::TenantSession::Compile + engine().Execute so the compile half
  /// picks up the tenant's published hints.
  Result<JobRunResult> Run(const workload::JobInstance& job,
                           const opt::RuleConfig& config,
                           uint64_t run_salt) const;

  /// Executes an already-compiled plan. This is the unprepared path: the
  /// simulator re-derives the execution profile on every call. Prefer the
  /// CompilationOutput overload on hot paths.
  /// Thread-safety: const and pure — see Run(); safe to call concurrently.
  exec::JobMetrics Execute(const workload::JobInstance& job,
                           const opt::PhysicalPlan& plan,
                           uint64_t run_salt) const;

  /// Executes a shared compilation through its cached execution profile
  /// (prepared lazily on first use, then reused by every later run — A/A,
  /// A/B arms, eval loops). Byte-identical to the plan overload for every
  /// salt. Thread-safety: const; the profile slot is internally
  /// synchronized, safe to call concurrently.
  exec::JobMetrics Execute(const workload::JobInstance& job,
                           const opt::CompilationOutput& compilation,
                           uint64_t run_salt) const;

  /// Batched A/A runs over one prepared profile: the runs for salts
  /// `first_salt + i`, i in [0, runs). Element i is byte-identical to
  /// Execute(job, compilation, first_salt + i).
  std::vector<exec::JobMetrics> ExecuteRuns(
      const workload::JobInstance& job,
      const opt::CompilationOutput& compilation, uint64_t first_salt,
      int runs) const;

  /// The compilation's execution profile: reuses the slot when it already
  /// holds a profile for this engine's cluster config, otherwise prepares
  /// (and publishes) one. Always prepares, regardless of the QO_PREPARED_EXEC
  /// knob — the knob only steers Run/Execute routing.
  std::shared_ptr<const exec::ExecutionProfile> PrepareProfile(
      const workload::JobInstance& job,
      const opt::CompilationOutput& compilation) const;

  const opt::OptimizerOptions& optimizer_options() const {
    return optimizer_options_;
  }
  const exec::ClusterConfig& cluster_config() const {
    return simulator_.config();
  }

  /// True when the two-level compilation cache is active.
  bool compile_cache_enabled() const { return cache_ != nullptr; }
  /// Hit/miss/eviction counters (all zero when the cache is disabled).
  telemetry::CompileCacheTelemetry compile_cache_telemetry() const;

  /// True when Run/Execute serve repeated runs from prepared profiles.
  bool prepared_exec_enabled() const { return exec_options_.prepared; }
  /// Prepare/reuse counters for the prepared-execution path.
  telemetry::ExecProfileTelemetry exec_profile_telemetry() const;

  /// True when L2 misses probe the per-job cross-config memo. Requires the
  /// compile cache (the memo rides on front-end entries).
  bool cross_config_memo_enabled() const {
    return memo_options_.enabled && cache_ != nullptr;
  }
  /// Cross-config memo hit/miss counters plus the process-wide interned
  /// symbol count.
  telemetry::OptimizerTelemetry optimizer_telemetry() const;

 private:
  /// The seed the simulator derives all of a run's stochastic draws from.
  static uint64_t RunSeed(const workload::JobInstance& job, uint64_t run_salt);
  /// Untimed bodies of CompileShared / Execute: the public entry points wrap
  /// these with one shared timing read feeding both the phase histogram
  /// ("span.compile" / "span.execute") and the job's per-template latency
  /// histogram. Purely observational — results are byte-identical with
  /// metrics on or off.
  Result<std::shared_ptr<const opt::CompilationOutput>> CompileSharedImpl(
      const workload::JobInstance& job, const opt::RuleConfig& config) const;
  exec::JobMetrics ExecuteImpl(const workload::JobInstance& job,
                               const opt::CompilationOutput& compilation,
                               uint64_t run_salt) const;
  /// Per-template latency histograms ("tpl.<template_name>.compile_ns" /
  /// ".exec_ns"), resolved once per template then served under a shared
  /// lock. Recurring templates only: one-off jobs carry a unique day-scoped
  /// template id each, so tracking them would grow the registry without
  /// bound (they still land in the aggregate span.compile/span.execute
  /// histograms).
  struct TemplateHists {
    obs::Histogram* compile_ns = nullptr;
    obs::Histogram* exec_ns = nullptr;
  };
  TemplateHists TemplateHistsFor(const workload::JobInstance& job) const;
  /// The uncached compile path (also the cache's miss handler when the
  /// cross-config memo is off).
  Result<opt::CompilationOutput> Optimize(const scope::LogicalPlan& logical,
                                          const workload::JobInstance& job,
                                          const opt::RuleConfig& config) const;
  /// L2-miss handler with the cross-config memo: probes the front-end
  /// entry's footprint memo before (and feeds it after) a real optimizer
  /// run. Returns a shared output — a full-tier hit and the memo insert are
  /// both refcount bumps on the one immutable CompilationOutput.
  Result<std::shared_ptr<const opt::CompilationOutput>> OptimizeWithMemo(
      const cache::CachedFrontEnd& fe, const workload::JobInstance& job,
      const opt::RuleConfig& config) const;
  cache::FrontEndKey FrontEndKeyOf(const workload::JobInstance& job) const;

  opt::OptimizerOptions optimizer_options_;
  exec::ClusterSimulator simulator_;
  ExecOptions exec_options_;
  opt::CrossConfigMemoOptions memo_options_;
  /// Folded into every cache key so options changes can never alias.
  uint64_t options_fingerprint_ = 0;
  /// Null when disabled. Mutable state behind const Compile; internally
  /// synchronized.
  std::unique_ptr<cache::CompilationCache> cache_;
  /// Profile-slot reuse counters (relaxed; monotone under concurrency).
  mutable std::atomic<uint64_t> profile_hits_{0};
  mutable std::atomic<uint64_t> profile_misses_{0};
  /// Cross-config memo counters (relaxed; monotone under concurrency).
  mutable std::atomic<uint64_t> memo_full_hits_{0};
  mutable std::atomic<uint64_t> memo_norm_hits_{0};
  mutable std::atomic<uint64_t> memo_misses_{0};
  /// template_id -> latency histograms (read-mostly: shared lock on hit).
  mutable std::shared_mutex tpl_mu_;
  mutable std::unordered_map<int, TemplateHists> tpl_hists_;
  /// Registry collector exporting the cache/optimizer/exec telemetry
  /// surfaces as series (removed in the destructor).
  int collector_id_ = -1;
};

}  // namespace qo::engine

#endif  // QO_ENGINE_ENGINE_H_

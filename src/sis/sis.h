// The Stats & Insight Service (SIS): versioned hint files mapping job
// templates to rule-flip hints, consumed by the SCOPE optimizer at compile
// time (paper Secs. 2.5 and 4.4; [16]).
//
// SIS "makes deploying models and configurations in SCOPE easier as it
// manages versioning and validates the format before installing them".
#ifndef QO_SIS_SIS_H_
#define QO_SIS_SIS_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "optimizer/rules.h"

namespace qo::sis {

/// One hint row: flip `rule_id` (to `enable`) for every future occurrence of
/// the job template.
struct HintEntry {
  std::string template_name;
  int rule_id = 0;
  bool enable = true;  ///< true = turn the rule on, false = turn it off

  /// The single-flip configuration this hint induces.
  opt::RuleConfig ToConfig() const;
};

/// A hint file produced by one pipeline run.
struct HintFile {
  int day = 0;  ///< pipeline date the hints were generated from
  std::vector<HintEntry> entries;

  /// Text format: one "template,rule_id,on|off" row per line, with a header.
  std::string Serialize() const;
  /// Strict parser: requires the "# ... day=N" header, exactly three fields
  /// per row, a numeric in-range rule id, an "on"/"off" direction and no
  /// duplicate templates. ParseError on garbage lines, truncated rows and
  /// every other malformation — corrupt files are rejected whole, never
  /// partially installed. Round-trips Serialize() exactly.
  static Result<HintFile> Parse(const std::string& text);
};

struct SisConfig {
  /// Hint-file versions retained in history(); older files are dropped from
  /// the front (0 = unbounded). current_version() and the monotonic
  /// counters are unaffected by trimming, as are active hints.
  size_t history_retention = 128;
};

/// An immutable point-in-time view of the active hint set — the read side of
/// the service layer's RCU double-buffer (src/service/). A writer builds a
/// fresh view from the live StatsInsightService after every upload/revert
/// and publishes it through the service's SnapshotSlot; concurrent readers
/// resolve templates against whichever view they loaded, with no lock
/// anywhere on the lookup path. Entries are sorted by template name (binary-search
/// probes), and a view can never change after construction, so a reader
/// always sees a hint set that existed in full at some version.
class SnapshotView {
 public:
  /// Builds a view from a sorted-by-construction hint map (what the live
  /// service maintains) at the given version.
  SnapshotView(int version,
               const std::map<std::string, HintEntry>& active_hints);

  /// The hint in effect for the template in this view, if any.
  std::optional<HintEntry> LookupHint(std::string_view template_name) const;

  /// Compile configuration under this view: default, or default+flip.
  opt::RuleConfig ConfigForTemplate(std::string_view template_name) const;

  /// The SIS version this view was built from (monotonic across swaps).
  int version() const { return version_; }
  size_t active_hints() const { return entries_.size(); }
  const std::vector<HintEntry>& entries() const { return entries_; }

 private:
  int version_ = 0;
  std::vector<HintEntry> entries_;  ///< sorted by template_name
};

/// The service: stores versioned hint files and serves the effective hint
/// for a template (the newest version wins).
///
/// Thread-safety: thread-compatible, not thread-safe — the offline pipeline
/// drives it from one thread. The always-on advisor service wraps it behind
/// a short writer lock and serves concurrent compile traffic from published
/// SnapshotViews instead (see src/service/advisor_service.h).
class StatsInsightService {
 public:
  StatsInsightService() = default;
  explicit StatsInsightService(SisConfig config) : config_(config) {}

  /// Validates and installs a hint file as the next version.
  /// InvalidArgument for malformed entries (unknown rule id, duplicate
  /// template, flip that matches the default — i.e. a no-op hint).
  /// [[deprecated]]-in-comment for direct service callers: go through
  /// service::TenantSession::UploadHints, which also republishes the
  /// tenant's snapshot so concurrent compiles see the new hints.
  Result<int> UploadHintFile(const HintFile& file);

  /// Immutable snapshot of the active hint set at the current version — the
  /// unit the advisor service publishes for lock-free readers.
  std::shared_ptr<const SnapshotView> BuildSnapshotView() const;

  /// The hint currently in effect for the template, if any.
  std::optional<HintEntry> LookupHint(const std::string& template_name) const;

  /// The compile configuration the optimizer should use for this template:
  /// default, or default+flip when a hint is installed.
  opt::RuleConfig ConfigForTemplate(const std::string& template_name) const;

  /// Removes the hint for one template (the paper's "easily reversible"
  /// property of single rule flips, Sec. 2.4).
  Status RevertHint(const std::string& template_name);

  int current_version() const { return version_; }
  size_t active_hints() const { return active_.size(); }
  /// Retained versions only (bounded by SisConfig::history_retention).
  const std::deque<HintFile>& history() const { return history_; }
  /// Versions trimmed out of history() by the retention window (monotonic).
  size_t history_dropped() const { return history_dropped_; }
  /// Hint entries installed across every uploaded version (monotonic).
  size_t total_hints_uploaded() const { return hints_uploaded_; }
  /// Hints rolled back via RevertHint (monotonic).
  size_t hints_reverted() const { return hints_reverted_; }

 private:
  SisConfig config_;
  int version_ = 0;
  std::deque<HintFile> history_;
  std::map<std::string, HintEntry> active_;
  size_t history_dropped_ = 0;
  size_t hints_uploaded_ = 0;
  size_t hints_reverted_ = 0;
};

}  // namespace qo::sis

#endif  // QO_SIS_SIS_H_

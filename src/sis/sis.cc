#include "sis/sis.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace qo::sis {

opt::RuleConfig HintEntry::ToConfig() const {
  opt::RuleConfig config = opt::RuleConfig::Default();
  if (enable) {
    config.Enable(rule_id);
  } else {
    config.Disable(rule_id);
  }
  return config;
}

std::string HintFile::Serialize() const {
  std::string out = "# qo-advisor hints day=" + std::to_string(day) + "\n";
  for (const HintEntry& e : entries) {
    out += e.template_name + "," + std::to_string(e.rule_id) + "," +
           (e.enable ? "on" : "off") + "\n";
  }
  return out;
}

namespace {

/// Strict non-negative integer parse: every character a digit, value within
/// [0, limit). Rejects what std::atoi silently accepts (trailing garbage,
/// empty fields, overflow).
bool ParseBoundedInt(const std::string& s, int limit, int* out) {
  if (s.empty() || s.size() > 9) return false;
  long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  if (v >= limit) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

Result<HintFile> HintFile::Parse(const std::string& text) {
  HintFile file;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  std::set<std::string> seen;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      auto pos = line.find("day=");
      if (pos == std::string::npos ||
          !ParseBoundedInt(line.substr(pos + 4), 1 << 30, &file.day)) {
        return Status::ParseError("malformed hint file header: " + line);
      }
      if (saw_header) {
        return Status::ParseError("duplicate hint file header");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return Status::ParseError("hint row before header: " + line);
    }
    auto c1 = line.find(',');
    auto c2 = line.find(',', c1 == std::string::npos ? c1 : c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        line.find(',', c2 + 1) != std::string::npos) {
      return Status::ParseError("malformed hint row: " + line);
    }
    HintEntry e;
    e.template_name = line.substr(0, c1);
    if (e.template_name.empty()) {
      return Status::ParseError("hint row with empty template: " + line);
    }
    if (!ParseBoundedInt(line.substr(c1 + 1, c2 - c1 - 1),
                         opt::RuleRegistry::kNumRules, &e.rule_id)) {
      return Status::ParseError("bad rule id in hint row: " + line);
    }
    std::string dir = line.substr(c2 + 1);
    if (dir == "on") {
      e.enable = true;
    } else if (dir == "off") {
      e.enable = false;
    } else {
      return Status::ParseError("bad flip direction: " + dir);
    }
    if (!seen.insert(e.template_name).second) {
      return Status::ParseError("duplicate template in hint file: " +
                                e.template_name);
    }
    file.entries.push_back(std::move(e));
  }
  if (!saw_header) return Status::ParseError("missing hint file header");
  return file;
}

SnapshotView::SnapshotView(
    int version, const std::map<std::string, HintEntry>& active_hints)
    : version_(version) {
  entries_.reserve(active_hints.size());
  // std::map iterates in key order, so entries_ is born sorted by template
  // name — the invariant the binary-search lookup below relies on.
  for (const auto& [name, entry] : active_hints) {
    entries_.push_back(entry);
  }
}

std::optional<HintEntry> SnapshotView::LookupHint(
    std::string_view template_name) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), template_name,
      [](const HintEntry& e, std::string_view name) {
        return e.template_name < name;
      });
  if (it == entries_.end() || it->template_name != template_name) {
    return std::nullopt;
  }
  return *it;
}

opt::RuleConfig SnapshotView::ConfigForTemplate(
    std::string_view template_name) const {
  auto hint = LookupHint(template_name);
  if (!hint.has_value()) return opt::RuleConfig::Default();
  return hint->ToConfig();
}

std::shared_ptr<const SnapshotView> StatsInsightService::BuildSnapshotView()
    const {
  return std::make_shared<const SnapshotView>(version_, active_);
}

Result<int> StatsInsightService::UploadHintFile(const HintFile& file) {
  // Format validation before installation.
  std::set<std::string> seen;
  const opt::RuleConfig default_config = opt::RuleConfig::Default();
  for (const HintEntry& e : file.entries) {
    if (e.template_name.empty()) {
      return Status::InvalidArgument("hint with empty template name");
    }
    if (e.rule_id < 0 || e.rule_id >= opt::RuleRegistry::kNumRules) {
      return Status::InvalidArgument("unknown rule id " +
                                     std::to_string(e.rule_id));
    }
    if (opt::RuleRegistry::Get().category(e.rule_id) ==
        opt::RuleCategory::kRequired) {
      return Status::InvalidArgument("hint flips required rule " +
                                     opt::RuleRegistry::Get().name(e.rule_id));
    }
    if (default_config.IsEnabled(e.rule_id) == e.enable) {
      return Status::InvalidArgument(
          "no-op hint (matches default) for rule " +
          opt::RuleRegistry::Get().name(e.rule_id));
    }
    if (!seen.insert(e.template_name).second) {
      return Status::InvalidArgument("duplicate template in hint file: " +
                                     e.template_name);
    }
  }
  ++version_;
  history_.push_back(file);
  while (config_.history_retention > 0 &&
         history_.size() > config_.history_retention) {
    history_.pop_front();
    ++history_dropped_;
  }
  for (const HintEntry& e : file.entries) {
    active_[e.template_name] = e;
  }
  hints_uploaded_ += file.entries.size();
  return version_;
}

std::optional<HintEntry> StatsInsightService::LookupHint(
    const std::string& template_name) const {
  auto it = active_.find(template_name);
  if (it == active_.end()) return std::nullopt;
  return it->second;
}

opt::RuleConfig StatsInsightService::ConfigForTemplate(
    const std::string& template_name) const {
  auto hint = LookupHint(template_name);
  if (!hint.has_value()) return opt::RuleConfig::Default();
  return hint->ToConfig();
}

Status StatsInsightService::RevertHint(const std::string& template_name) {
  auto it = active_.find(template_name);
  if (it == active_.end()) {
    return Status::NotFound("no active hint for " + template_name);
  }
  active_.erase(it);
  ++hints_reverted_;
  return Status::OK();
}

}  // namespace qo::sis

// Post-deployment guardrails for the steering loop (paper Secs. 2.4 and
// 4.5): the paper's safety story is that hints are single reversible rule
// flips — this module is the machinery that actually drives the reversal.
//
// Three cooperating pieces:
//   * HintWatchdog — after a hint activates for a template, compares the
//     template's per-day mean runtime against a rolling pre-hint baseline;
//     on a sustained measured regression (hysteresis + min-sample
//     thresholds) it calls SIS::RevertHint and quarantines the
//     (template, rule) pair so the pipeline cannot re-recommend it until a
//     cool-down expires.
//   * CircuitBreaker — day-windowed failure-rate breaker (per template and
//     global): when steering failures cross a threshold the breaker opens
//     and steering is disabled for a probation window, after which a
//     half-open probe decides between re-arming and re-opening.
//   * SteeringGuard — bundles the watchdog, the breakers and the guardrail
//     counters the pipeline exports as "guard.*" series.
//
// Everything here runs on the pipeline's serial path (day boundaries), so
// decisions are deterministic for any thread count by construction.
#ifndef QO_GUARD_GUARDRAIL_H_
#define QO_GUARD_GUARDRAIL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "guard/fault_injector.h"
#include "sis/sis.h"
#include "telemetry/guard_telemetry.h"
#include "telemetry/workload_view.h"

namespace qo::guard {

struct WatchdogConfig {
  /// Mean-runtime inflation vs the pre-hint baseline that counts as a
  /// regression (0.25 = +25%).
  double regress_threshold = 0.25;
  /// Minimum occurrences of the template on a day for that day to vote.
  size_t min_samples = 2;
  /// Consecutive regressing days required before the hint is reverted.
  int hysteresis_days = 2;
  /// Days a reverted (template, rule) pair stays quarantined.
  int quarantine_days = 14;
  /// Rolling window (days) of un-hinted means forming the baseline.
  size_t baseline_window = 8;
};

/// One watchdog decision, for day reports and goldens.
struct WatchdogAction {
  std::string template_name;
  int rule_id = 0;
  bool enable = false;
  int day = 0;
  /// Measured mean-runtime inflation vs baseline at revert time.
  double regression = 0.0;
};

/// Tracks per-template production runtimes and reverts regressing hints.
class HintWatchdog {
 public:
  explicit HintWatchdog(WatchdogConfig config = {}) : config_(config) {}

  /// Ingests one day of production telemetry (the same denormalized view
  /// the pipeline consumes). Reverts any hint whose template has regressed
  /// for `hysteresis_days` consecutive qualifying days and quarantines the
  /// (template, rule) pair. Returns the reverts performed, in template
  /// order.
  std::vector<WatchdogAction> ObserveDay(const telemetry::WorkloadView& view,
                                         sis::StatsInsightService* sis);

  /// True while (template, rule) is inside its quarantine cool-down.
  bool Quarantined(const std::string& template_name, int rule_id,
                   int day) const;

  /// Quarantine entries still in cool-down on `day`.
  size_t ActiveQuarantines(int day) const;

  uint64_t reverts() const { return reverts_; }
  uint64_t quarantines() const { return quarantines_; }
  const WatchdogConfig& config() const { return config_; }

 private:
  struct TemplateState {
    /// Rolling per-day means observed while the template ran un-hinted.
    std::deque<double> baseline_days;
    double baseline_sum = 0.0;
    /// Hint currently under observation (-1: none).
    int hint_rule = -1;
    bool hint_enable = false;
    int consecutive_regressing = 0;
  };

  WatchdogConfig config_;
  std::map<std::string, TemplateState> templates_;
  /// (template, rule) -> first day the pair may be recommended again.
  std::map<std::pair<std::string, int>, int> quarantine_;
  uint64_t reverts_ = 0;
  uint64_t quarantines_ = 0;
};

struct BreakerConfig {
  /// Failure fraction of a day's steering events that trips the breaker.
  double failure_rate_threshold = 0.5;
  /// Minimum events on the day before the rate is meaningful.
  size_t min_events = 8;
  /// Days steering stays disabled after a trip.
  int probation_days = 3;
};

/// Day-windowed failure-rate circuit breaker. States: closed (steering on),
/// open (disabled until a probation window passes), then a half-open probe
/// day whose outcome either re-arms (closed) or re-opens the breaker.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {}) : config_(config) {}

  /// False while the breaker is open and the probation window has not
  /// passed. The first allowed day after probation is the half-open probe.
  bool AllowSteering(int day) const {
    return !open_ || day >= open_until_day_;
  }

  /// Records one steering event of the current day.
  void Record(bool failure) {
    ++day_events_;
    if (failure) ++day_failures_;
  }

  /// Evaluates the day's failure rate and advances the state machine.
  /// Returns true when the breaker tripped (or re-tripped) on this day.
  bool CloseDay(int day);

  bool open() const { return open_; }
  int open_until_day() const { return open_until_day_; }
  uint64_t trips() const { return trips_; }

 private:
  BreakerConfig config_;
  bool open_ = false;
  int open_until_day_ = 0;
  size_t day_events_ = 0;
  size_t day_failures_ = 0;
  uint64_t trips_ = 0;
};

/// Pipeline-facing guardrail configuration. Disabled by default so the
/// existing pipelines and figure benches are bit-for-bit unaffected; the
/// chaos tests and the daily_pipeline demo turn it on.
struct GuardConfig {
  /// Master switch for watchdog + breakers + flight retry.
  bool enabled = false;
  /// Fault-injection probabilities for the pipeline's boundaries (inert by
  /// default; independent of `enabled` so plain pipelines can be
  /// chaos-tested without guardrails and vice versa).
  FaultConfig faults;
  WatchdogConfig watchdog;
  BreakerConfig global_breaker;
  /// Per-template breakers see few events per day; trip them on a higher
  /// rate over a smaller minimum.
  BreakerConfig template_breaker{.failure_rate_threshold = 0.75,
                                 .min_events = 3,
                                 .probation_days = 5};
  /// Graceful degradation: re-flight transient flight failures up to this
  /// many times (deterministic fresh salts) before giving up on the day.
  int flight_max_retries = 2;

  /// enabled <- QO_GUARD=1, faults <- FaultConfig::FromEnv().
  static GuardConfig FromEnv();
};

/// The pipeline's guardrail bundle: watchdog + breakers + counters.
class SteeringGuard {
 public:
  explicit SteeringGuard(GuardConfig config = {})
      : config_(config),
        watchdog_(config.watchdog),
        global_breaker_(config.global_breaker) {}

  bool enabled() const { return config_.enabled; }
  const GuardConfig& config() const { return config_; }
  HintWatchdog& watchdog() { return watchdog_; }
  const HintWatchdog& watchdog() const { return watchdog_; }

  /// Global breaker state for the day.
  bool SteeringAllowed(int day) const {
    return global_breaker_.AllowSteering(day);
  }
  /// Per-template breaker state for the day (templates with no breaker yet
  /// are allowed).
  bool TemplateAllowed(const std::string& template_name, int day) const;

  /// Records one steering event (a flight result, a hinted-compile
  /// fallback, ...) against both breaker scopes.
  void RecordSteeringEvent(const std::string& template_name, bool failure);

  /// Day-boundary breaker evaluation; updates trip counters.
  void CloseDay(int day);

  /// Mutable guardrail counters (pipeline commit path only).
  telemetry::GuardTelemetry& counters() { return counters_; }
  /// Snapshot including watchdog / breaker state.
  telemetry::GuardTelemetry telemetry() const;

 private:
  GuardConfig config_;
  HintWatchdog watchdog_;
  CircuitBreaker global_breaker_;
  std::map<std::string, CircuitBreaker> template_breakers_;
  telemetry::GuardTelemetry counters_;
};

}  // namespace qo::guard

#endif  // QO_GUARD_GUARDRAIL_H_

#include "guard/fault_injector.h"

#include <cstdlib>

#include "common/hash.h"

namespace qo::guard {

namespace {

double EnvProb(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (end == raw || v < 0.0) return fallback;
  return v > 1.0 ? 1.0 : v;
}

/// hash(seed, site, day, key) -> uniform double in [0, 1).
double UniformDraw(uint64_t seed, FaultSite site, int day, uint64_t key) {
  uint64_t h = HashU64(seed, kFnvOffsetBasis);
  h = HashU64(static_cast<uint64_t>(site), h);
  h = HashU64(static_cast<uint64_t>(day), h);
  h = HashU64(key, h);
  return static_cast<double>(MixHash(h) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultSiteToString(FaultSite site) {
  switch (site) {
    case FaultSite::kCompile:
      return "compile";
    case FaultSite::kFlightFailure:
      return "flight_failure";
    case FaultSite::kFlightTimeout:
      return "flight_timeout";
    case FaultSite::kHintFile:
      return "hint_file";
    case FaultSite::kRewardJoin:
      return "reward_join";
    case FaultSite::kTelemetry:
      return "telemetry";
    case FaultSite::kHintRegression:
      return "hint_regression";
  }
  return "unknown";
}

FaultConfig FaultConfig::FromEnv() {
  FaultConfig config;
  if (const char* raw = std::getenv("QO_FAULT_SEED")) {
    config.seed = std::strtoull(raw, nullptr, 10);
  }
  config.compile_error_prob = EnvProb("QO_FAULT_COMPILE", 0.0);
  config.flight_failure_prob = EnvProb("QO_FAULT_FLIGHT_FAILURE", 0.0);
  config.flight_timeout_prob = EnvProb("QO_FAULT_FLIGHT_TIMEOUT", 0.0);
  config.hint_corrupt_prob = EnvProb("QO_FAULT_HINT_CORRUPT", 0.0);
  config.reward_drop_prob = EnvProb("QO_FAULT_REWARD_DROP", 0.0);
  config.telemetry_drop_prob = EnvProb("QO_FAULT_TELEMETRY_DROP", 0.0);
  config.hint_regression_prob = EnvProb("QO_FAULT_HINT_REGRESSION", 0.0);
  if (const char* raw = std::getenv("QO_FAULT_HINT_REGRESSION_FACTOR")) {
    char* end = nullptr;
    double v = std::strtod(raw, &end);
    if (end != raw && v >= 1.0) config.hint_regression_factor = v;
  }
  return config;
}

double FaultInjector::SiteProb(FaultSite site) const {
  switch (site) {
    case FaultSite::kCompile:
      return config_.compile_error_prob;
    case FaultSite::kFlightFailure:
      return config_.flight_failure_prob;
    case FaultSite::kFlightTimeout:
      return config_.flight_timeout_prob;
    case FaultSite::kHintFile:
      return config_.hint_corrupt_prob;
    case FaultSite::kRewardJoin:
      return config_.reward_drop_prob;
    case FaultSite::kTelemetry:
      return config_.telemetry_drop_prob;
    case FaultSite::kHintRegression:
      return config_.hint_regression_prob;
  }
  return 0.0;
}

bool FaultInjector::ShouldInject(FaultSite site, int day, uint64_t key) const {
  double p = SiteProb(site);
  if (p <= 0.0) return false;
  return UniformDraw(config_.seed, site, day, key) < p;
}

bool FaultInjector::ShouldInject(FaultSite site, int day,
                                 const std::string& key) const {
  if (SiteProb(site) <= 0.0) return false;
  return ShouldInject(site, day, HashString(key));
}

std::string FaultInjector::CorruptHintText(const std::string& text,
                                           int day) const {
  uint64_t h = MixHash(HashU64(static_cast<uint64_t>(day),
                               HashU64(config_.seed, kFnvOffsetBasis)));
  switch (h % 4) {
    case 0:
      // Truncate mid-row: chop the trailing part of the file.
      return text.substr(0, text.size() - text.size() / 3 - 1);
    case 1:
      // Garbage line spliced into the body.
      return text + "!!corrupt;;garbage row\n";
    case 2: {
      // Out-of-range rule id on the first data row.
      auto nl = text.find('\n');
      if (nl == std::string::npos || nl + 1 >= text.size()) return text + ",";
      auto c1 = text.find(',', nl + 1);
      if (c1 == std::string::npos) return text + ",";
      return text.substr(0, c1 + 1) + "9999" +
             text.substr(text.find(',', c1 + 1));
    }
    default: {
      // Duplicate the first data row at the end of the file.
      auto nl = text.find('\n');
      if (nl == std::string::npos || nl + 1 >= text.size()) return text + ",";
      auto end = text.find('\n', nl + 1);
      if (end == std::string::npos) return text + ",";
      return text + text.substr(nl + 1, end - nl);
    }
  }
}

}  // namespace qo::guard

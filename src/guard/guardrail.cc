#include "guard/guardrail.h"

#include <cstdlib>

namespace qo::guard {

namespace {

/// Per-day per-template mean pn_hours, accumulated in row order (the view's
/// rows commit in job order, so this map is identical for any thread count).
struct DayStats {
  double sum = 0.0;
  size_t count = 0;
  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

}  // namespace

std::vector<WatchdogAction> HintWatchdog::ObserveDay(
    const telemetry::WorkloadView& view, sis::StatsInsightService* sis) {
  std::vector<WatchdogAction> actions;
  std::map<std::string, DayStats> day_stats;
  for (const auto& row : view.rows) {
    DayStats& s = day_stats[row.normalized_job_name];
    s.sum += row.pn_hours;
    ++s.count;
  }

  for (const auto& [name, stats] : day_stats) {
    TemplateState& state = templates_[name];
    auto hint = sis->LookupHint(name);

    if (!hint.has_value()) {
      // Un-hinted day: extend the rolling baseline, clear any observation.
      state.hint_rule = -1;
      state.consecutive_regressing = 0;
      state.baseline_days.push_back(stats.mean());
      state.baseline_sum += stats.mean();
      if (state.baseline_days.size() > config_.baseline_window) {
        state.baseline_sum -= state.baseline_days.front();
        state.baseline_days.pop_front();
      }
      continue;
    }

    if (state.hint_rule != hint->rule_id) {
      // A new hint activated for this template; the baseline stays frozen
      // at its pre-hint state and the hysteresis counter restarts.
      state.hint_rule = hint->rule_id;
      state.hint_enable = hint->enable;
      state.consecutive_regressing = 0;
    }
    if (state.baseline_days.empty()) continue;  // nothing to compare against
    if (stats.count < config_.min_samples) continue;  // day does not vote

    double baseline =
        state.baseline_sum / static_cast<double>(state.baseline_days.size());
    double regression =
        baseline > 0.0 ? stats.mean() / baseline - 1.0 : 0.0;
    if (regression > config_.regress_threshold) {
      ++state.consecutive_regressing;
    } else {
      state.consecutive_regressing = 0;
    }
    if (state.consecutive_regressing < config_.hysteresis_days) continue;

    // Sustained regression: revert the hint, quarantine the pair.
    if (sis->RevertHint(name).ok()) {
      ++reverts_;
      auto key = std::make_pair(name, state.hint_rule);
      if (quarantine_.emplace(key, 0).second) ++quarantines_;
      quarantine_[key] = view.day + config_.quarantine_days;
      actions.push_back({name, state.hint_rule, state.hint_enable, view.day,
                         regression});
    }
    state.hint_rule = -1;
    state.consecutive_regressing = 0;
  }
  return actions;
}

bool HintWatchdog::Quarantined(const std::string& template_name, int rule_id,
                               int day) const {
  auto it = quarantine_.find(std::make_pair(template_name, rule_id));
  return it != quarantine_.end() && day < it->second;
}

size_t HintWatchdog::ActiveQuarantines(int day) const {
  size_t n = 0;
  for (const auto& [key, until] : quarantine_) {
    if (day < until) ++n;
  }
  return n;
}

bool CircuitBreaker::CloseDay(int day) {
  const size_t events = day_events_;
  const size_t failures = day_failures_;
  day_events_ = 0;
  day_failures_ = 0;
  const double rate =
      events == 0 ? 0.0
                  : static_cast<double>(failures) / static_cast<double>(events);

  if (!open_) {
    if (events >= config_.min_events &&
        rate >= config_.failure_rate_threshold) {
      open_ = true;
      open_until_day_ = day + 1 + config_.probation_days;
      ++trips_;
      return true;
    }
    return false;
  }
  if (day < open_until_day_) return false;  // probation: nothing ran today
  // Half-open probe day. A single bad probe is enough to re-open; any
  // non-failing traffic re-arms the breaker. No traffic leaves it half-open.
  if (events > 0 && rate >= config_.failure_rate_threshold) {
    open_until_day_ = day + 1 + config_.probation_days;
    ++trips_;
    return true;
  }
  if (events > 0) open_ = false;
  return false;
}

GuardConfig GuardConfig::FromEnv() {
  GuardConfig config;
  const char* raw = std::getenv("QO_GUARD");
  config.enabled = raw != nullptr && raw[0] == '1' && raw[1] == '\0';
  config.faults = FaultConfig::FromEnv();
  return config;
}

bool SteeringGuard::TemplateAllowed(const std::string& template_name,
                                    int day) const {
  auto it = template_breakers_.find(template_name);
  return it == template_breakers_.end() || it->second.AllowSteering(day);
}

void SteeringGuard::RecordSteeringEvent(const std::string& template_name,
                                        bool failure) {
  global_breaker_.Record(failure);
  auto it =
      template_breakers_.try_emplace(template_name, config_.template_breaker)
          .first;
  it->second.Record(failure);
}

void SteeringGuard::CloseDay(int day) {
  if (!global_breaker_.AllowSteering(day)) ++counters_.steering_disabled_days;
  if (global_breaker_.CloseDay(day)) ++counters_.breaker_trips_global;
  for (auto& [name, breaker] : template_breakers_) {
    if (breaker.CloseDay(day)) ++counters_.breaker_trips_template;
  }
}

telemetry::GuardTelemetry SteeringGuard::telemetry() const {
  telemetry::GuardTelemetry t = counters_;
  t.watchdog_reverts = watchdog_.reverts();
  t.watchdog_quarantines = watchdog_.quarantines();
  return t;
}

}  // namespace qo::guard

// Deterministic fault injection for chaos-testing the steering pipeline
// (paper Sec. 4.5: the deployment had to survive compile errors, flight
// failures, corrupt hint files and telemetry gaps without regressing
// production).
//
// Every injection decision is a pure function of (seed, site, day, key):
// no draw depends on call order or thread count, so a chaos run is
// byte-identical at QO_THREADS=1 and 64, and two runs with the same seed
// make exactly the same failures happen at exactly the same places.
//
// The injector is inert by default: armed() is true only when at least one
// site probability is positive, and callers skip the hash entirely when it
// is not. Setting QO_FAULT_SEED alone therefore changes nothing — the CI
// chaos leg relies on that to assert arming-without-probabilities keeps the
// figure benches byte-identical.
#ifndef QO_GUARD_FAULT_INJECTOR_H_
#define QO_GUARD_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

namespace qo::guard {

/// Pipeline boundaries where faults can be injected.
enum class FaultSite : uint32_t {
  kCompile = 1,         ///< steered / flip recompilation errors
  kFlightFailure = 2,   ///< transient flight environment failures
  kFlightTimeout = 3,   ///< per-job flight timeouts (timeout storms)
  kHintFile = 4,        ///< corrupt / truncated SIS hint files
  kRewardJoin = 5,      ///< dropped bandit reward joins
  kTelemetry = 6,       ///< stale telemetry: view rows that never arrive
  kHintRegression = 7,  ///< hints that regress in production (watchdog prey)
};

const char* FaultSiteToString(FaultSite site);

/// Per-site injection probabilities. All default to 0 (off).
struct FaultConfig {
  uint64_t seed = 0;
  double compile_error_prob = 0.0;
  double flight_failure_prob = 0.0;
  double flight_timeout_prob = 0.0;
  double hint_corrupt_prob = 0.0;
  double reward_drop_prob = 0.0;
  double telemetry_drop_prob = 0.0;
  /// Fraction of templates whose hints secretly regress in production. The
  /// decision is sticky per template (day-independent), modeling a hint
  /// that is genuinely bad on the production distribution rather than a
  /// transient blip — the scenario the watchdog exists for.
  double hint_regression_prob = 0.0;
  /// Runtime inflation applied to steered runs of regressing templates.
  double hint_regression_factor = 1.5;

  /// True when any site can fire.
  bool armed() const {
    return compile_error_prob > 0.0 || flight_failure_prob > 0.0 ||
           flight_timeout_prob > 0.0 || hint_corrupt_prob > 0.0 ||
           reward_drop_prob > 0.0 || telemetry_drop_prob > 0.0 ||
           hint_regression_prob > 0.0;
  }

  /// Reads QO_FAULT_SEED, QO_FAULT_COMPILE, QO_FAULT_FLIGHT_FAILURE,
  /// QO_FAULT_FLIGHT_TIMEOUT, QO_FAULT_HINT_CORRUPT, QO_FAULT_REWARD_DROP,
  /// QO_FAULT_TELEMETRY_DROP, QO_FAULT_HINT_REGRESSION and
  /// QO_FAULT_HINT_REGRESSION_FACTOR. Unset knobs keep the defaults above.
  static FaultConfig FromEnv();
};

/// Stateless decision oracle: subsystems ask it whether a given fault fires
/// at a given (site, day, key) and count what they actually acted on at
/// their own serial commit points.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config = {}) : config_(config) {}

  const FaultConfig& config() const { return config_; }
  bool armed() const { return config_.armed(); }

  /// Pure: depends only on (config.seed, site, day, key). Thread-safe.
  bool ShouldInject(FaultSite site, int day, uint64_t key) const;
  bool ShouldInject(FaultSite site, int day, const std::string& key) const;

  /// Deterministically mangles a serialized hint file (truncation, garbage
  /// rows, out-of-range rule ids, duplicated templates — the corpus
  /// HintFile::Parse must reject). The mutation mode rotates with `day`.
  std::string CorruptHintText(const std::string& text, int day) const;

 private:
  double SiteProb(FaultSite site) const;

  FaultConfig config_;
};

}  // namespace qo::guard

#endif  // QO_GUARD_FAULT_INJECTOR_H_

#include "telemetry/optimizer_telemetry.h"

#include <cstdio>

namespace qo::telemetry {

std::string OptimizerTelemetry::ToString() const {
  if (!memo_enabled) {
    char line[96];
    std::snprintf(line, sizeof(line),
                  "cross-config memo: disabled (symbols=%zu)\n",
                  interned_symbols);
    return line;
  }
  char line[192];
  std::snprintf(line, sizeof(line),
                "cross-config memo: full_hits=%llu norm_hits=%llu "
                "misses=%llu hit_rate=%.1f%% symbols=%zu\n",
                static_cast<unsigned long long>(memo_full_hits),
                static_cast<unsigned long long>(memo_norm_hits),
                static_cast<unsigned long long>(memo_misses),
                100.0 * memo_hit_rate(), interned_symbols);
  return line;
}

void ExportSeries(const OptimizerTelemetry& t, obs::SeriesSink& sink) {
  sink.Add("optimizer.memo.enabled", t.memo_enabled ? 1.0 : 0.0);
  sink.Add("optimizer.memo.full_hits", static_cast<double>(t.memo_full_hits));
  sink.Add("optimizer.memo.norm_hits", static_cast<double>(t.memo_norm_hits));
  sink.Add("optimizer.memo.misses", static_cast<double>(t.memo_misses));
  sink.Add("optimizer.memo.hit_rate", t.memo_hit_rate());
  sink.Add("optimizer.symbols", static_cast<double>(t.interned_symbols));
}

}  // namespace qo::telemetry

// Telemetry counters for the compilation caches (src/cache/).
//
// The caches themselves keep per-shard counters under their shard locks;
// this header defines the merged snapshot shape the rest of the system
// consumes — pipeline reports, benches and tests read these instead of
// poking at cache internals.
#ifndef QO_TELEMETRY_CACHE_TELEMETRY_H_
#define QO_TELEMETRY_CACHE_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace qo::telemetry {

/// Counter snapshot for one cache level, merged across shards.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;   ///< live entries at snapshot time
  size_t capacity = 0;  ///< configured total bound (always enforced; each
                        ///< shard holds at least one entry)

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// Snapshot of the two-level compilation cache: the config-independent
/// front-end memo (script -> logical plan) and the full (job, config)
/// compilation cache.
struct CompileCacheTelemetry {
  bool enabled = false;
  CacheCounters front_end;
  CacheCounters compilations;

  /// Human-readable multi-line dump for benches and debugging.
  std::string ToString() const;
};

/// Exports the snapshot as registry series ("cache.enabled",
/// "cache.front_end.hits", "cache.compilations.hit_rate", ...). The engine
/// registers this as a registry collector, so every MetricsSnapshot / run
/// report carries the cache surface. "cache.enabled"=0 with zero counters
/// distinguishes cache-off from an idle cache.
void ExportSeries(const CompileCacheTelemetry& t, obs::SeriesSink& sink);

}  // namespace qo::telemetry

#endif  // QO_TELEMETRY_CACHE_TELEMETRY_H_

// Telemetry counters for the contextual-bandit Personalizer (src/bandit/):
// rank traffic, the combined-feature cache, incremental retraining, and
// event-log retention.
//
// As with the compile-cache and exec-profile counters, this header defines
// the merged snapshot shape the rest of the system consumes — pipeline
// reports, benches and tests read these instead of poking at service
// internals.
#ifndef QO_TELEMETRY_BANDIT_TELEMETRY_H_
#define QO_TELEMETRY_BANDIT_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace qo::telemetry {

/// Snapshot of Personalizer activity: how many Rank calls ran, how many
/// per-action combined vectors were computed inside Rank vs shared from a
/// caller's combined-feature cache, how much the incremental retrainer
/// consumed, and how many events the retention policy compacted away.
struct BanditTelemetry {
  uint64_t ranks = 0;               ///< Rank calls that logged an event
  uint64_t combines = 0;            ///< combined vectors computed inside Rank
  uint64_t precombined_reused = 0;  ///< combined vectors shared from the caller
  uint64_t reward_joins = 0;        ///< successful Reward() joins
  uint64_t reward_failures = 0;     ///< rejected Reward() calls
  uint64_t retrains = 0;            ///< Retrain() invocations
  uint64_t examples_trained = 0;    ///< examples consumed by retrains
  uint64_t events_compacted = 0;    ///< events dropped by retention
  /// Events currently retained in the log at snapshot time. Read together
  /// with retention_window this exposes retention occupancy — a log pinned
  /// at its window means compaction is active, not that traffic stopped.
  uint64_t resident_events = 0;
  uint64_t retention_window = 0;  ///< configured retention bound (0 = none)

  uint64_t combined_vectors() const { return combines + precombined_reused; }
  /// Fraction of the retention window occupied by retained events (0 when
  /// no window is configured).
  double retention_occupancy() const {
    return retention_window == 0
               ? 0.0
               : static_cast<double>(resident_events) /
                     static_cast<double>(retention_window);
  }
  /// Fraction of per-action combined vectors served by the shared cache.
  double combine_reuse_rate() const {
    uint64_t n = combined_vectors();
    return n == 0 ? 0.0
                  : static_cast<double>(precombined_reused) /
                        static_cast<double>(n);
  }

  /// Human-readable multi-line dump for benches and debugging.
  std::string ToString() const;
};

/// Exports the snapshot as registry series ("bandit.ranks",
/// "bandit.reward_failures", "bandit.retention_occupancy", ...).
void ExportSeries(const BanditTelemetry& t, obs::SeriesSink& sink);

}  // namespace qo::telemetry

#endif  // QO_TELEMETRY_BANDIT_TELEMETRY_H_

#include "telemetry/cache_telemetry.h"

#include <cstdio>

namespace qo::telemetry {

namespace {

void AppendLevel(std::string* out, const char* name, const CacheCounters& c) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "  %-12s hits=%llu misses=%llu evictions=%llu "
                "entries=%zu/%zu hit_rate=%.1f%%\n",
                name, static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.misses),
                static_cast<unsigned long long>(c.evictions), c.entries,
                c.capacity, 100.0 * c.hit_rate());
  *out += line;
}

}  // namespace

std::string CompileCacheTelemetry::ToString() const {
  if (!enabled) return "compile cache: disabled\n";
  std::string out = "compile cache:\n";
  AppendLevel(&out, "front_end", front_end);
  AppendLevel(&out, "compilations", compilations);
  return out;
}

namespace {

void ExportLevel(const char* prefix, const CacheCounters& c,
                 obs::SeriesSink& sink) {
  std::string base(prefix);
  sink.Add(base + ".hits", static_cast<double>(c.hits));
  sink.Add(base + ".misses", static_cast<double>(c.misses));
  sink.Add(base + ".evictions", static_cast<double>(c.evictions));
  sink.Add(base + ".entries", static_cast<double>(c.entries));
  sink.Add(base + ".capacity", static_cast<double>(c.capacity));
  sink.Add(base + ".hit_rate", c.hit_rate());
}

}  // namespace

void ExportSeries(const CompileCacheTelemetry& t, obs::SeriesSink& sink) {
  sink.Add("cache.enabled", t.enabled ? 1.0 : 0.0);
  ExportLevel("cache.front_end", t.front_end, sink);
  ExportLevel("cache.compilations", t.compilations, sink);
}

}  // namespace qo::telemetry

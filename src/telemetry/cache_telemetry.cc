#include "telemetry/cache_telemetry.h"

#include <cstdio>

namespace qo::telemetry {

namespace {

void AppendLevel(std::string* out, const char* name, const CacheCounters& c) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "  %-12s hits=%llu misses=%llu evictions=%llu "
                "entries=%zu/%zu hit_rate=%.1f%%\n",
                name, static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.misses),
                static_cast<unsigned long long>(c.evictions), c.entries,
                c.capacity, 100.0 * c.hit_rate());
  *out += line;
}

}  // namespace

std::string CompileCacheTelemetry::ToString() const {
  if (!enabled) return "compile cache: disabled\n";
  std::string out = "compile cache:\n";
  AppendLevel(&out, "front_end", front_end);
  AppendLevel(&out, "compilations", compilations);
  return out;
}

}  // namespace qo::telemetry

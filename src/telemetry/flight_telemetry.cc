#include "telemetry/flight_telemetry.h"

#include <cstdio>

namespace qo::telemetry {

std::string FlightTelemetry::ToString() const {
  char line[288];
  std::snprintf(
      line, sizeof(line),
      "flighting:\n"
      "  success=%llu failure=%llu timeout=%llu (per_job=%llu "
      "budget_rejected=%llu) filtered=%llu batches=%llu aa_runs=%llu\n"
      "  budget=%.1f/%.1f machine-hours (%.1f%%)\n",
      static_cast<unsigned long long>(flights_success),
      static_cast<unsigned long long>(flights_failure),
      static_cast<unsigned long long>(flights_timeout),
      static_cast<unsigned long long>(flights_timeout_per_job),
      static_cast<unsigned long long>(flights_budget_rejected),
      static_cast<unsigned long long>(flights_filtered),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(aa_runs), budget_used_hours,
      budget_total_hours, 100.0 * budget_utilization());
  return line;
}

void ExportSeries(const FlightTelemetry& t, obs::SeriesSink& sink) {
  sink.Add("flight.success", static_cast<double>(t.flights_success));
  sink.Add("flight.failure", static_cast<double>(t.flights_failure));
  sink.Add("flight.timeout", static_cast<double>(t.flights_timeout));
  sink.Add("flight.timeout_per_job",
           static_cast<double>(t.flights_timeout_per_job));
  sink.Add("flight.budget_rejected",
           static_cast<double>(t.flights_budget_rejected));
  sink.Add("flight.fault_injected",
           static_cast<double>(t.flights_fault_injected));
  sink.Add("flight.filtered", static_cast<double>(t.flights_filtered));
  sink.Add("flight.batches", static_cast<double>(t.batches));
  sink.Add("flight.aa_runs", static_cast<double>(t.aa_runs));
  sink.Add("flight.budget_used_hours", t.budget_used_hours);
  sink.Add("flight.budget_total_hours", t.budget_total_hours);
  sink.Add("flight.budget_utilization", t.budget_utilization());
}

}  // namespace qo::telemetry

#include "telemetry/exec_telemetry.h"

#include <cstdio>

namespace qo::telemetry {

std::string ExecProfileTelemetry::ToString() const {
  char line[224];
  std::snprintf(
      line, sizeof(line),
      "exec profiles:%s\n"
      "  prepares=%llu prepared_runs=%llu unprepared_runs=%llu "
      "slot_hits=%llu slot_misses=%llu reuse_rate=%.1f%%\n",
      prepared_enabled ? "" : " (prepared exec disabled)",
      static_cast<unsigned long long>(prepares),
      static_cast<unsigned long long>(prepared_runs),
      static_cast<unsigned long long>(unprepared_runs),
      static_cast<unsigned long long>(profile_hits),
      static_cast<unsigned long long>(profile_misses), 100.0 * reuse_rate());
  return line;
}

void ExportSeries(const ExecProfileTelemetry& t, obs::SeriesSink& sink) {
  sink.Add("exec.prepared_enabled", t.prepared_enabled ? 1.0 : 0.0);
  sink.Add("exec.prepares", static_cast<double>(t.prepares));
  sink.Add("exec.prepared_runs", static_cast<double>(t.prepared_runs));
  sink.Add("exec.unprepared_runs", static_cast<double>(t.unprepared_runs));
  sink.Add("exec.profile_hits", static_cast<double>(t.profile_hits));
  sink.Add("exec.profile_misses", static_cast<double>(t.profile_misses));
  sink.Add("exec.reuse_rate", t.reuse_rate());
}

}  // namespace qo::telemetry

// Telemetry counters for the optimizer hot path: the per-job cross-config
// memo (src/optimizer/cross_config_memo.h) and the global symbol table
// (src/common/symbol_table.h).
//
// Mirrors the cache/exec telemetry shape: the engine keeps relaxed atomic
// counters and exposes a merged snapshot here for pipeline reports, benches
// and tests.
#ifndef QO_TELEMETRY_OPTIMIZER_TELEMETRY_H_
#define QO_TELEMETRY_OPTIMIZER_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace qo::telemetry {

/// Snapshot of one engine's cross-config memo counters plus the process-wide
/// interned-symbol count.
struct OptimizerTelemetry {
  bool memo_enabled = false;
  /// Whole compilations served from a matching footprint.
  uint64_t memo_full_hits = 0;
  /// Compilations that reused a stored normalized plan and reran only the
  /// cost-based search.
  uint64_t memo_norm_hits = 0;
  /// Compilations that ran the full pipeline.
  uint64_t memo_misses = 0;
  /// Strings interned in the global symbol table at snapshot time.
  size_t interned_symbols = 0;

  uint64_t memo_lookups() const {
    return memo_full_hits + memo_norm_hits + memo_misses;
  }
  /// Fraction of optimizer invocations that reused prior work (either tier).
  double memo_hit_rate() const {
    uint64_t n = memo_lookups();
    return n == 0 ? 0.0
                  : static_cast<double>(memo_full_hits + memo_norm_hits) /
                        static_cast<double>(n);
  }

  /// Human-readable multi-line dump for benches and debugging.
  std::string ToString() const;
};

/// Exports the snapshot as registry series ("optimizer.memo.enabled",
/// "optimizer.memo.full_hits", ..., "optimizer.symbols"). The explicit
/// enabled series distinguishes a disabled memo from an enabled memo that
/// saw no traffic — both report zero hits.
void ExportSeries(const OptimizerTelemetry& t, obs::SeriesSink& sink);

}  // namespace qo::telemetry

#endif  // QO_TELEMETRY_OPTIMIZER_TELEMETRY_H_

// Telemetry counters for the execution simulator's prepared profiles
// (src/exec/ + the engine's profile slot on shared compilations).
//
// As with the compile-cache counters, this header defines the merged
// snapshot shape the rest of the system consumes — pipeline reports, benches
// and tests read these instead of poking at simulator internals.
#ifndef QO_TELEMETRY_EXEC_TELEMETRY_H_
#define QO_TELEMETRY_EXEC_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace qo::telemetry {

/// Snapshot of prepared-execution activity: how many execution profiles were
/// prepared, how many runs were served from a profile vs re-derived the
/// deterministic work inline, and how often the engine's per-compilation
/// profile slot was reused vs filled.
struct ExecProfileTelemetry {
  /// False when QO_PREPARED_EXEC=0 pinned the engine to the legacy path.
  bool prepared_enabled = false;
  uint64_t prepares = 0;         ///< full Prepare() computations
  uint64_t prepared_runs = 0;    ///< Execute(profile, seed) runs
  uint64_t unprepared_runs = 0;  ///< legacy Execute(plan, catalog, seed) runs
  uint64_t profile_hits = 0;     ///< engine slot lookups served by a profile
  uint64_t profile_misses = 0;   ///< engine slot lookups that had to prepare

  uint64_t runs() const { return prepared_runs + unprepared_runs; }
  uint64_t slot_lookups() const { return profile_hits + profile_misses; }
  /// Fraction of slot lookups that reused an already-prepared profile.
  double reuse_rate() const {
    uint64_t n = slot_lookups();
    return n == 0 ? 0.0
                  : static_cast<double>(profile_hits) / static_cast<double>(n);
  }

  /// Human-readable multi-line dump for benches and debugging.
  std::string ToString() const;
};

/// Exports the snapshot as registry series ("exec.prepared_enabled",
/// "exec.prepares", "exec.reuse_rate", ...).
void ExportSeries(const ExecProfileTelemetry& t, obs::SeriesSink& sink);

}  // namespace qo::telemetry

#endif  // QO_TELEMETRY_EXEC_TELEMETRY_H_

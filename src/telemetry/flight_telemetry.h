// Telemetry counters for the flighting service (src/flighting/): committed
// flight outcomes, batch traffic, A/A runs and machine-hour budget health.
//
// Same shape as the other telemetry surfaces: the service keeps the
// counters, this header defines the snapshot the rest of the system
// consumes (pipeline reports, benches, tests) plus the registry exporter.
#ifndef QO_TELEMETRY_FLIGHT_TELEMETRY_H_
#define QO_TELEMETRY_FLIGHT_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace qo::telemetry {

/// Snapshot of one flighting service's committed activity. Outcome counts
/// cover admitted flights only (speculative flights refunded at the batch
/// commit are not outcomes the service reported to anyone).
struct FlightTelemetry {
  uint64_t flights_success = 0;
  uint64_t flights_failure = 0;
  /// Legacy total: per-job timeouts + budget rejections (the pre-split
  /// counter; kept as the sum so long-lived consumers see stable numbers).
  uint64_t flights_timeout = 0;
  uint64_t flights_timeout_per_job = 0;   ///< real per-job flight timeouts
  uint64_t flights_budget_rejected = 0;   ///< never admitted: budget ran out
  uint64_t flights_fault_injected = 0;    ///< outcomes forced by chaos faults
  uint64_t flights_filtered = 0;
  uint64_t batches = 0;           ///< FlightBatch calls
  uint64_t aa_runs = 0;           ///< individual A/A executions
  double budget_used_hours = 0.0;
  double budget_total_hours = 0.0;

  uint64_t flights() const {
    return flights_success + flights_failure + flights_timeout +
           flights_filtered;
  }
  double budget_utilization() const {
    return budget_total_hours == 0.0 ? 0.0
                                     : budget_used_hours / budget_total_hours;
  }

  /// Human-readable multi-line dump for benches and debugging.
  std::string ToString() const;
};

/// Exports the snapshot as registry series ("flight.success",
/// "flight.budget_used_hours", ...).
void ExportSeries(const FlightTelemetry& t, obs::SeriesSink& sink);

}  // namespace qo::telemetry

#endif  // QO_TELEMETRY_FLIGHT_TELEMETRY_H_

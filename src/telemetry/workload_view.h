// The denormalized workload view: one row per executed job, aggregating
// compile-time and runtime information (paper Sec. 4 and Table 1).
//
// SCOPE jobs are DAGs with one tree per output; features are computed per
// tree or per job and aggregated to job level through a synthetic super-root
// (Sec. 4.1). Aggregation functions follow Table 1: min for job-level
// features, sum for estimated cardinalities / bytes read / row counts, avg
// for average row length.
#ifndef QO_TELEMETRY_WORKLOAD_VIEW_H_
#define QO_TELEMETRY_WORKLOAD_VIEW_H_

#include <string>
#include <vector>

#include "common/bitvector.h"
#include "exec/metrics.h"
#include "optimizer/physical_plan.h"
#include "workload/template_gen.h"

namespace qo::telemetry {

/// One row of the denormalized view (all Table 1 features, job level).
struct WorkloadViewRow {
  // Identity.
  std::string job_id;
  std::string normalized_job_name;  ///< template name (J, min)
  int template_id = 0;
  int day = 0;
  bool recurring = true;

  // Optimizer features.
  BitVector256 rule_signature;        ///< (J, min)
  double est_cost = 0.0;              ///< (J, min)
  double est_cardinalities = 0.0;     ///< (Q, sum) summed over query trees
  double avg_row_length = 0.0;        ///< (Q, avg)
  double row_count = 0.0;             ///< (Q, sum) actual rows
  // Runtime statistics.
  double latency_sec = 0.0;           ///< (J, min)
  int total_vertices = 0;             ///< (J, min)
  double bytes_read = 0.0;            ///< (Q, sum)
  double bytes_written = 0.0;
  double max_memory = 0.0;            ///< (J, min)
  double avg_memory = 0.0;            ///< (J, min)
  double pn_hours = 0.0;              ///< (J, min)

  /// Snapshot of the instance so the offline pipeline can recompile the job
  /// (stands in for the job metadata the real view carries).
  workload::JobInstance instance;
};

/// Builds a view row from a finished run, performing the per-tree -> job
/// aggregation of Table 1.
WorkloadViewRow MakeViewRow(const workload::JobInstance& instance,
                            const opt::CompilationOutput& compilation,
                            const exec::JobMetrics& metrics);

/// A day's worth of view rows (what the daily QO-Advisor pipeline ingests).
struct WorkloadView {
  int day = 0;
  std::vector<WorkloadViewRow> rows;
};

}  // namespace qo::telemetry

#endif  // QO_TELEMETRY_WORKLOAD_VIEW_H_

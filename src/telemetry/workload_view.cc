#include "telemetry/workload_view.h"

namespace qo::telemetry {

WorkloadViewRow MakeViewRow(const workload::JobInstance& instance,
                            const opt::CompilationOutput& compilation,
                            const exec::JobMetrics& metrics) {
  WorkloadViewRow row;
  row.job_id = instance.job_id;
  row.normalized_job_name = instance.template_name;
  row.template_id = instance.template_id;
  row.day = instance.day;
  row.recurring = instance.recurring;
  row.rule_signature = compilation.signature;
  row.est_cost = compilation.est_cost;

  // Per-tree features aggregated through the super-root (Table 1): sums over
  // all plan operators, average for row length.
  double width_sum = 0.0;
  for (const auto& node : compilation.plan.nodes) {
    row.est_cardinalities += node.est_rows;
    row.row_count += node.true_rows;
    width_sum += node.schema ? node.schema->RowWidthBytes() : 0.0;
  }
  if (!compilation.plan.nodes.empty()) {
    row.avg_row_length =
        width_sum / static_cast<double>(compilation.plan.nodes.size());
  }

  row.latency_sec = metrics.latency_sec;
  row.total_vertices = metrics.vertices;
  row.bytes_read = metrics.data_read_bytes;
  row.bytes_written = metrics.data_written_bytes;
  row.max_memory = metrics.max_memory_bytes;
  row.avg_memory = metrics.avg_memory_bytes;
  row.pn_hours = metrics.pn_hours;
  row.instance = instance;
  return row;
}

}  // namespace qo::telemetry

#include "telemetry/bandit_telemetry.h"

#include <cstdio>

namespace qo::telemetry {

std::string BanditTelemetry::ToString() const {
  char line[288];
  std::snprintf(
      line, sizeof(line),
      "bandit personalizer:\n"
      "  ranks=%llu combines=%llu precombined_reused=%llu reuse_rate=%.1f%%\n"
      "  reward_joins=%llu reward_failures=%llu retrains=%llu "
      "examples_trained=%llu events_compacted=%llu\n",
      static_cast<unsigned long long>(ranks),
      static_cast<unsigned long long>(combines),
      static_cast<unsigned long long>(precombined_reused),
      100.0 * combine_reuse_rate(),
      static_cast<unsigned long long>(reward_joins),
      static_cast<unsigned long long>(reward_failures),
      static_cast<unsigned long long>(retrains),
      static_cast<unsigned long long>(examples_trained),
      static_cast<unsigned long long>(events_compacted));
  return line;
}

}  // namespace qo::telemetry

#include "telemetry/bandit_telemetry.h"

#include <cstdio>

namespace qo::telemetry {

std::string BanditTelemetry::ToString() const {
  char line[384];
  std::snprintf(
      line, sizeof(line),
      "bandit personalizer:\n"
      "  ranks=%llu combines=%llu precombined_reused=%llu reuse_rate=%.1f%%\n"
      "  reward_joins=%llu reward_failures=%llu retrains=%llu "
      "examples_trained=%llu events_compacted=%llu\n"
      "  resident_events=%llu/%llu occupancy=%.1f%%\n",
      static_cast<unsigned long long>(ranks),
      static_cast<unsigned long long>(combines),
      static_cast<unsigned long long>(precombined_reused),
      100.0 * combine_reuse_rate(),
      static_cast<unsigned long long>(reward_joins),
      static_cast<unsigned long long>(reward_failures),
      static_cast<unsigned long long>(retrains),
      static_cast<unsigned long long>(examples_trained),
      static_cast<unsigned long long>(events_compacted),
      static_cast<unsigned long long>(resident_events),
      static_cast<unsigned long long>(retention_window),
      100.0 * retention_occupancy());
  return line;
}

void ExportSeries(const BanditTelemetry& t, obs::SeriesSink& sink) {
  sink.Add("bandit.ranks", static_cast<double>(t.ranks));
  sink.Add("bandit.combines", static_cast<double>(t.combines));
  sink.Add("bandit.precombined_reused",
           static_cast<double>(t.precombined_reused));
  sink.Add("bandit.combine_reuse_rate", t.combine_reuse_rate());
  sink.Add("bandit.reward_joins", static_cast<double>(t.reward_joins));
  sink.Add("bandit.reward_failures", static_cast<double>(t.reward_failures));
  sink.Add("bandit.retrains", static_cast<double>(t.retrains));
  sink.Add("bandit.examples_trained", static_cast<double>(t.examples_trained));
  sink.Add("bandit.events_compacted",
           static_cast<double>(t.events_compacted));
  sink.Add("bandit.resident_events", static_cast<double>(t.resident_events));
  sink.Add("bandit.retention_window",
           static_cast<double>(t.retention_window));
  sink.Add("bandit.retention_occupancy", t.retention_occupancy());
}

}  // namespace qo::telemetry

// Telemetry counters for the guardrail layer (src/guard/): injected
// faults the pipeline acted on, watchdog reverts and quarantines, circuit
// breaker trips and the graceful-degradation recovery traffic.
//
// Same shape as the other telemetry surfaces: SteeringGuard keeps the
// counters, this header defines the snapshot (day reports, tests) plus the
// registry exporter.
#ifndef QO_TELEMETRY_GUARD_TELEMETRY_H_
#define QO_TELEMETRY_GUARD_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace qo::telemetry {

/// Snapshot of one pipeline's guardrail activity (all counters monotonic;
/// mutated only on the pipeline's serial commit path).
struct GuardTelemetry {
  // Watchdog.
  uint64_t watchdog_reverts = 0;      ///< hints auto-reverted on regression
  uint64_t watchdog_quarantines = 0;  ///< (template, rule) pairs quarantined
  uint64_t quarantine_blocked = 0;    ///< recommendations blocked by cool-down
  // Circuit breakers.
  uint64_t breaker_trips_global = 0;
  uint64_t breaker_trips_template = 0;
  uint64_t steering_disabled_days = 0;  ///< days the global breaker was open
  uint64_t template_blocked = 0;  ///< candidates dropped by open breakers
  // Graceful degradation.
  uint64_t flight_retries = 0;
  uint64_t flight_recoveries = 0;  ///< retries that turned into success
  uint64_t hint_files_rejected = 0;  ///< corrupt uploads caught by Parse/SIS
  // Injected faults the pipeline acted on (commit-side counts).
  uint64_t faults_compile = 0;
  uint64_t faults_flight = 0;
  uint64_t faults_hint_file = 0;
  uint64_t faults_reward_drop = 0;
  uint64_t faults_telemetry_drop = 0;

  uint64_t faults_injected() const {
    return faults_compile + faults_flight + faults_hint_file +
           faults_reward_drop + faults_telemetry_drop;
  }

  /// Human-readable multi-line dump for demos and debugging.
  std::string ToString() const;
};

/// Exports the snapshot as registry series ("guard.watchdog_reverts", ...).
void ExportSeries(const GuardTelemetry& t, obs::SeriesSink& sink);

}  // namespace qo::telemetry

#endif  // QO_TELEMETRY_GUARD_TELEMETRY_H_

#include "telemetry/guard_telemetry.h"

#include <cstdio>

namespace qo::telemetry {

std::string GuardTelemetry::ToString() const {
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "guardrails:\n"
      "  watchdog: reverts=%llu quarantines=%llu blocked=%llu\n"
      "  breakers: global_trips=%llu template_trips=%llu disabled_days=%llu "
      "template_blocked=%llu\n"
      "  degradation: retries=%llu recoveries=%llu hint_files_rejected=%llu\n"
      "  faults: compile=%llu flight=%llu hint_file=%llu reward=%llu "
      "telemetry=%llu\n",
      static_cast<unsigned long long>(watchdog_reverts),
      static_cast<unsigned long long>(watchdog_quarantines),
      static_cast<unsigned long long>(quarantine_blocked),
      static_cast<unsigned long long>(breaker_trips_global),
      static_cast<unsigned long long>(breaker_trips_template),
      static_cast<unsigned long long>(steering_disabled_days),
      static_cast<unsigned long long>(template_blocked),
      static_cast<unsigned long long>(flight_retries),
      static_cast<unsigned long long>(flight_recoveries),
      static_cast<unsigned long long>(hint_files_rejected),
      static_cast<unsigned long long>(faults_compile),
      static_cast<unsigned long long>(faults_flight),
      static_cast<unsigned long long>(faults_hint_file),
      static_cast<unsigned long long>(faults_reward_drop),
      static_cast<unsigned long long>(faults_telemetry_drop));
  return line;
}

void ExportSeries(const GuardTelemetry& t, obs::SeriesSink& sink) {
  sink.Add("guard.watchdog_reverts",
           static_cast<double>(t.watchdog_reverts));
  sink.Add("guard.watchdog_quarantines",
           static_cast<double>(t.watchdog_quarantines));
  sink.Add("guard.quarantine_blocked",
           static_cast<double>(t.quarantine_blocked));
  sink.Add("guard.breaker_trips_global",
           static_cast<double>(t.breaker_trips_global));
  sink.Add("guard.breaker_trips_template",
           static_cast<double>(t.breaker_trips_template));
  sink.Add("guard.steering_disabled_days",
           static_cast<double>(t.steering_disabled_days));
  sink.Add("guard.template_blocked", static_cast<double>(t.template_blocked));
  sink.Add("guard.flight_retries", static_cast<double>(t.flight_retries));
  sink.Add("guard.flight_recoveries",
           static_cast<double>(t.flight_recoveries));
  sink.Add("guard.hint_files_rejected",
           static_cast<double>(t.hint_files_rejected));
  sink.Add("guard.faults_compile", static_cast<double>(t.faults_compile));
  sink.Add("guard.faults_flight", static_cast<double>(t.faults_flight));
  sink.Add("guard.faults_hint_file", static_cast<double>(t.faults_hint_file));
  sink.Add("guard.faults_reward_drop",
           static_cast<double>(t.faults_reward_drop));
  sink.Add("guard.faults_telemetry_drop",
           static_cast<double>(t.faults_telemetry_drop));
  sink.Add("guard.faults_injected", static_cast<double>(t.faults_injected()));
}

}  // namespace qo::telemetry

// Distributed execution simulator for SCOPE physical plans.
//
// The simulator decomposes a physical plan into stages at exchange
// boundaries, assigns vertices (tasks) per stage from the compile-time
// partition counts, and derives runtime metrics from the plan's ground-truth
// cardinalities. Its *cloud variability model* reproduces the statistical
// structure the paper measures in Sec. 5.1:
//
//  - Latency is dominated by the stage critical path with per-stage
//    congestion noise, wave scheduling against the token budget, and
//    heavy-tailed (Pareto) stragglers -> high A/A variance (Fig. 3).
//  - PNhours sums CPU and I/O time over all vertices; I/O bytes are
//    deterministic given the plan and inputs, so PNhours variance stays
//    bounded (Fig. 5).
//
// A/A and A/B flighting execute the *same* physical plan dozens of times
// with only the run seed varying (paper Sec. 4.3), so the deterministic part
// of a run — stage decomposition, per-stage noiseless work, byte counters,
// vertex counts — is split out into an ExecutionProfile built once by
// Prepare(). Execute(profile, seed) then performs only the stochastic draws
// plus a linear walk over the pre-toposorted stages, and is byte-identical
// to Execute(plan, catalog, seed) for every seed.
#ifndef QO_EXEC_CLUSTER_H_
#define QO_EXEC_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "exec/metrics.h"
#include "optimizer/physical_plan.h"
#include "scope/catalog.h"

namespace qo::exec {

/// Ground-truth timing constants and noise parameters of the simulated
/// cluster. The timing constants deliberately differ from the optimizer's
/// CostParams — that mismatch (plus cardinality estimation error) is what
/// makes estimated cost an unreliable predictor of runtime (paper Sec. 5.2).
struct ClusterConfig {
  // Per-job container budget ("tokens" in SCOPE terminology).
  int tokens = 64;

  // CPU seconds per row by operator class.
  double cpu_scan_row = 1.2e-8;
  double cpu_filter_row = 8.0e-9;
  double cpu_project_row = 4.0e-9;
  double cpu_hash_build_row = 3.0e-8;
  double cpu_hash_probe_row = 1.5e-8;
  double cpu_sort_row_log = 8.0e-9;
  double cpu_agg_row = 2.5e-8;
  double cpu_union_row = 2.0e-9;
  double cpu_exchange_byte = 3.0e-9;  ///< serialization CPU

  // I/O seconds per byte. Shuffle I/O is substantially more expensive than
  // the optimizer's cost model believes (disk spill + network contention) —
  // the systematic misestimation that makes exchange-removing rule flips
  // genuinely valuable, as observed in SCOPE [37].
  double io_storage_read_byte = 1.0 / 400.0e6;
  double io_storage_write_byte = 1.0 / 150.0e6;
  double io_shuffle_byte = 1.0 / 45.0e6;

  // Scheduling.
  double stage_startup_sec = 0.8;
  double job_overhead_sec = 25.0;

  // Variability model.
  double stage_congestion_sigma = 0.30;  ///< lognormal per stage, latency only
  double job_congestion_sigma = 0.10;    ///< lognormal per run, latency only
  double straggler_prob = 0.07;          ///< per-stage heavy-tail event
  double straggler_alpha = 1.4;          ///< Pareto shape of the straggler
  double straggler_cap = 14.0;           ///< at most this slowdown
  double pn_cpu_sigma = 0.05;            ///< lognormal on total CPU time
  double pn_io_sigma = 0.008;            ///< lognormal on total I/O time
  double retry_prob = 0.03;              ///< a stage re-runs some vertices
  double retry_fraction = 0.35;          ///< extra work fraction on retry
};

/// One pipeline of operators between exchange boundaries.
struct Stage {
  std::vector<int> node_ids;
  std::vector<int> upstream;  ///< stages this stage waits for
  int partitions = 1;
  double cpu_sec = 0.0;  ///< total across vertices, noiseless
  double io_sec = 0.0;
  double memory_bytes_per_vertex = 0.0;
};

/// Deterministic decomposition of a plan into stages (exposed for tests and
/// for the latency model).
std::vector<Stage> DecomposeIntoStages(const opt::PhysicalPlan& plan,
                                       const scope::Catalog& catalog,
                                       const ClusterConfig& config);

/// The deterministic, noiseless slice of one stage, precomputed by
/// ClusterSimulator::Prepare so the per-run inner loop touches no plan or
/// catalog state.
struct StageProfile {
  int partitions = 1;
  double cpu_sec = 0.0;  ///< total across vertices, noiseless
  double io_sec = 0.0;
  double memory_bytes_per_vertex = 0.0;
  /// waves * ((cpu_sec + io_sec) / max(1, partitions)): the noiseless wave
  /// time the per-run stage noise multiplies.
  double waves_per_vertex_sec = 0.0;
  /// Expected-max inflation for the slowest vertex of the wave.
  double tail_inflation = 1.0;
  std::vector<int> upstream;  ///< stages this stage waits for
};

/// Everything about a (plan, catalog, cluster config) triple that does not
/// depend on the run seed: the stage DAG with per-stage noiseless work, the
/// plan-level byte counters and work totals, and a topological evaluation
/// order for the latency critical path. Immutable after Prepare() returns —
/// safe to Execute() from any number of threads concurrently.
struct ExecutionProfile {
  /// Stages in decomposition order. This order fixes the RNG draw sequence,
  /// so it must match DecomposeIntoStages exactly.
  std::vector<StageProfile> stages;
  /// Stage indices in upstream-before-consumer order (finish times resolve
  /// in one linear walk). Empty only when `stages` is empty.
  std::vector<int> topo_order;

  // --- SoA mirror of `stages`, in stage-index order (built by Prepare). ---
  // The batched ExecuteRuns sweep reads only these parallel columns: the
  // per-seed draw loops stream each column contiguously instead of striding
  // across StageProfile records, and the columns are the direct operands of
  // the 4-lane critical-path kernel (see common/kernels/kernels.h).
  std::vector<double> stage_cpu_sec;      ///< = stages[i].cpu_sec
  std::vector<double> stage_io_sec;       ///< = stages[i].io_sec
  std::vector<double> stage_waves_sec;    ///< = stages[i].waves_per_vertex_sec
  std::vector<double> stage_tail;         ///< = stages[i].tail_inflation
  std::vector<double> stage_memory;       ///< = stages[i].memory_bytes_per_vertex
  std::vector<int32_t> stage_partitions;  ///< = stages[i].partitions
  /// topo_order as a dense int32 kernel operand.
  std::vector<int32_t> topo32;
  /// Upstream adjacency in CSR form: stage s waits on
  /// upstream_list[upstream_offsets[s] .. upstream_offsets[s + 1]).
  std::vector<int32_t> upstream_offsets;
  std::vector<int32_t> upstream_list;

  /// Defensive: the stage graph of a shared-subtree DAG could in principle
  /// contain a cycle; Execute then falls back to the legacy memoized
  /// recursion so metrics stay byte-identical with the unprepared path.
  bool has_cycle = false;
  double total_cpu_sec = 0.0;
  double total_io_sec = 0.0;
  double data_read_bytes = 0.0;
  double data_written_bytes = 0.0;
  int vertices = 0;  ///< total task instances across stages
  /// Fingerprint of the ClusterConfig this profile was prepared under; a
  /// profile must only be executed by a simulator with the same config.
  uint64_t config_fingerprint = 0;
  /// Catalog-stats fingerprint at Prepare time: scan work bakes in table
  /// sizes, so reuse is only sound while the statistics are unchanged.
  uint64_t catalog_fingerprint = 0;
};

/// Content fingerprint over every ClusterConfig field (timing constants and
/// noise parameters); used to guard profile reuse across simulators.
uint64_t ClusterConfigFingerprint(const ClusterConfig& config);

/// The cluster simulator. Each Execute() call is one run of the job; the
/// `run_seed` determines all stochastic draws, so A/A runs with different
/// seeds reproduce cluster variance while identical seeds are exactly
/// repeatable.
class ClusterSimulator {
 public:
  explicit ClusterSimulator(ClusterConfig config = {})
      : config_(config),
        config_fingerprint_(ClusterConfigFingerprint(config)) {}

  /// Telemetry counters do not transfer: a copy starts counting from zero.
  ClusterSimulator(const ClusterSimulator& o)
      : config_(o.config_), config_fingerprint_(o.config_fingerprint_) {}

  const ClusterConfig& config() const { return config_; }
  uint64_t config_fingerprint() const { return config_fingerprint_; }

  /// Executes `plan` once. The catalog supplies ground-truth table sizes for
  /// scan I/O. Byte counters in the result are noise-free (paper Sec. 4.3:
  /// "data read and data written remain constant" across A/A runs).
  /// Re-derives the execution profile on every call; repeated runs of one
  /// plan should Prepare() once and use the profile overload instead.
  /// Thread-safety: const and pure — every stochastic draw comes from a
  /// local Rng seeded with `run_seed` (no shared generator), and `config_`
  /// is immutable after construction; safe to call concurrently.
  JobMetrics Execute(const opt::PhysicalPlan& plan,
                     const scope::Catalog& catalog, uint64_t run_seed) const;

  /// Builds the deterministic execution profile of `plan`: one pass of
  /// ComputeNodeWork + DecomposeIntoStages, amortized across every later
  /// Execute(profile, seed) call. Thread-safety: const and pure.
  ExecutionProfile Prepare(const opt::PhysicalPlan& plan,
                           const scope::Catalog& catalog) const;

  /// Prepare() wrapped for shared caching (the engine attaches this to the
  /// compilation cache's immutable CompilationOutput).
  std::shared_ptr<const ExecutionProfile> PrepareShared(
      const opt::PhysicalPlan& plan, const scope::Catalog& catalog) const;

  /// Executes a prepared profile once: only the stochastic draws and the
  /// linear critical-path walk run. Byte-identical to the plan overload for
  /// every seed (asserted by exec_test). The profile must come from a
  /// simulator with the same ClusterConfig. Thread-safety: const and pure;
  /// one profile may be executed from many threads concurrently.
  JobMetrics Execute(const ExecutionProfile& profile, uint64_t run_seed) const;

  /// Batched A/A runs: Execute(profile, base_seed + i) for i in [0, runs).
  /// Seeds are processed in lane blocks of four: each lane performs its
  /// stochastic draws sequentially in the exact legacy order, then one
  /// vectorized critical-path sweep resolves all four lanes' stage DAG walks
  /// at once. Every JobMetrics is bit-identical to Execute(profile, seed)
  /// for that seed (asserted by exec_test across dispatch tables).
  std::vector<JobMetrics> ExecuteRuns(const ExecutionProfile& profile,
                                      uint64_t base_seed, int runs) const;

  /// Lifetime counters (relaxed atomics; exact under serial use, monotone
  /// under concurrency): profile preparations, runs served from a profile,
  /// and legacy runs that re-derived the profile in-line.
  uint64_t profile_prepares() const {
    return prepares_.load(std::memory_order_relaxed);
  }
  uint64_t prepared_runs() const {
    return prepared_runs_.load(std::memory_order_relaxed);
  }
  uint64_t unprepared_runs() const {
    return unprepared_runs_.load(std::memory_order_relaxed);
  }

 private:
  JobMetrics ExecuteProfile(const ExecutionProfile& profile,
                            uint64_t run_seed) const;

  ClusterConfig config_;
  uint64_t config_fingerprint_ = 0;
  mutable std::atomic<uint64_t> prepares_{0};
  mutable std::atomic<uint64_t> prepared_runs_{0};
  mutable std::atomic<uint64_t> unprepared_runs_{0};
};

}  // namespace qo::exec

#endif  // QO_EXEC_CLUSTER_H_

// Distributed execution simulator for SCOPE physical plans.
//
// The simulator decomposes a physical plan into stages at exchange
// boundaries, assigns vertices (tasks) per stage from the compile-time
// partition counts, and derives runtime metrics from the plan's ground-truth
// cardinalities. Its *cloud variability model* reproduces the statistical
// structure the paper measures in Sec. 5.1:
//
//  - Latency is dominated by the stage critical path with per-stage
//    congestion noise, wave scheduling against the token budget, and
//    heavy-tailed (Pareto) stragglers -> high A/A variance (Fig. 3).
//  - PNhours sums CPU and I/O time over all vertices; I/O bytes are
//    deterministic given the plan and inputs, so PNhours variance stays
//    bounded (Fig. 5).
#ifndef QO_EXEC_CLUSTER_H_
#define QO_EXEC_CLUSTER_H_

#include <vector>

#include "common/rng.h"
#include "exec/metrics.h"
#include "optimizer/physical_plan.h"
#include "scope/catalog.h"

namespace qo::exec {

/// Ground-truth timing constants and noise parameters of the simulated
/// cluster. The timing constants deliberately differ from the optimizer's
/// CostParams — that mismatch (plus cardinality estimation error) is what
/// makes estimated cost an unreliable predictor of runtime (paper Sec. 5.2).
struct ClusterConfig {
  // Per-job container budget ("tokens" in SCOPE terminology).
  int tokens = 64;

  // CPU seconds per row by operator class.
  double cpu_scan_row = 1.2e-8;
  double cpu_filter_row = 8.0e-9;
  double cpu_project_row = 4.0e-9;
  double cpu_hash_build_row = 3.0e-8;
  double cpu_hash_probe_row = 1.5e-8;
  double cpu_sort_row_log = 8.0e-9;
  double cpu_agg_row = 2.5e-8;
  double cpu_union_row = 2.0e-9;
  double cpu_exchange_byte = 3.0e-9;  ///< serialization CPU

  // I/O seconds per byte. Shuffle I/O is substantially more expensive than
  // the optimizer's cost model believes (disk spill + network contention) —
  // the systematic misestimation that makes exchange-removing rule flips
  // genuinely valuable, as observed in SCOPE [37].
  double io_storage_read_byte = 1.0 / 400.0e6;
  double io_storage_write_byte = 1.0 / 150.0e6;
  double io_shuffle_byte = 1.0 / 45.0e6;

  // Scheduling.
  double stage_startup_sec = 0.8;
  double job_overhead_sec = 25.0;

  // Variability model.
  double stage_congestion_sigma = 0.30;  ///< lognormal per stage, latency only
  double job_congestion_sigma = 0.10;    ///< lognormal per run, latency only
  double straggler_prob = 0.07;          ///< per-stage heavy-tail event
  double straggler_alpha = 1.4;          ///< Pareto shape of the straggler
  double straggler_cap = 14.0;           ///< at most this slowdown
  double pn_cpu_sigma = 0.05;            ///< lognormal on total CPU time
  double pn_io_sigma = 0.008;            ///< lognormal on total I/O time
  double retry_prob = 0.03;              ///< a stage re-runs some vertices
  double retry_fraction = 0.35;          ///< extra work fraction on retry
};

/// One pipeline of operators between exchange boundaries.
struct Stage {
  std::vector<int> node_ids;
  std::vector<int> upstream;  ///< stages this stage waits for
  int partitions = 1;
  double cpu_sec = 0.0;  ///< total across vertices, noiseless
  double io_sec = 0.0;
  double memory_bytes_per_vertex = 0.0;
};

/// Deterministic decomposition of a plan into stages (exposed for tests and
/// for the latency model).
std::vector<Stage> DecomposeIntoStages(const opt::PhysicalPlan& plan,
                                       const scope::Catalog& catalog,
                                       const ClusterConfig& config);

/// The cluster simulator. Each Execute() call is one run of the job; the
/// `run_seed` determines all stochastic draws, so A/A runs with different
/// seeds reproduce cluster variance while identical seeds are exactly
/// repeatable.
class ClusterSimulator {
 public:
  explicit ClusterSimulator(ClusterConfig config = {}) : config_(config) {}

  const ClusterConfig& config() const { return config_; }

  /// Executes `plan` once. The catalog supplies ground-truth table sizes for
  /// scan I/O. Byte counters in the result are noise-free (paper Sec. 4.3:
  /// "data read and data written remain constant" across A/A runs).
  /// Thread-safety: const and pure — every stochastic draw comes from a
  /// local Rng seeded with `run_seed` (no shared generator), and `config_`
  /// is immutable after construction; safe to call concurrently.
  JobMetrics Execute(const opt::PhysicalPlan& plan,
                     const scope::Catalog& catalog, uint64_t run_seed) const;

 private:
  ClusterConfig config_;
};

}  // namespace qo::exec

#endif  // QO_EXEC_CLUSTER_H_

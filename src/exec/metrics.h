// Runtime metrics logged by the (simulated) SCOPE runtime for each job run.
#ifndef QO_EXEC_METRICS_H_
#define QO_EXEC_METRICS_H_

#include <string>

namespace qo::exec {

/// Metrics of interest (paper Sec. 2.1): job latency, PNhours (total CPU +
/// I/O time over all vertices), vertices count, plus the I/O byte counters
/// the validation model consumes (Sec. 4.3).
struct JobMetrics {
  double latency_sec = 0.0;
  double pn_hours = 0.0;
  int vertices = 0;
  double data_read_bytes = 0.0;
  double data_written_bytes = 0.0;
  double max_memory_bytes = 0.0;
  double avg_memory_bytes = 0.0;
  double cpu_hours = 0.0;  ///< CPU component of pn_hours
  double io_hours = 0.0;   ///< I/O component of pn_hours

  std::string ToString() const;
};

/// Relative delta helper: (new / old) - 1, the convention used throughout
/// the paper's figures (delta > 0 is a regression).
inline double RelativeDelta(double new_value, double old_value) {
  if (old_value == 0.0) return 0.0;
  return new_value / old_value - 1.0;
}

}  // namespace qo::exec

#endif  // QO_EXEC_METRICS_H_

#include "exec/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/hash.h"
#include "common/kernels/kernels.h"

namespace qo::exec {

namespace {

using opt::PhysOpKind;
using opt::PhysicalNode;
using opt::PhysicalPlan;

/// Per-node resource usage, noiseless.
struct NodeWork {
  double cpu_sec = 0.0;
  double io_read_bytes = 0.0;
  double io_write_bytes = 0.0;
  double io_sec = 0.0;
  double memory_bytes = 0.0;  ///< per-vertex working set
};

NodeWork ComputeNodeWork(const PhysicalPlan& plan, const PhysicalNode& n,
                         const scope::Catalog& catalog,
                         const ClusterConfig& c) {
  NodeWork w;
  auto child = [&](size_t i) -> const PhysicalNode& {
    return plan.node(n.children[i]);
  };
  double rows_out = n.true_rows;
  double bytes_out = n.true_bytes;
  int parts = std::max(1, n.partitions);
  switch (n.kind) {
    case PhysOpKind::kScan: {
      // Scans read the whole table regardless of embedded predicates.
      double table_bytes = bytes_out;
      auto stats = catalog.Lookup(n.table_path);
      if (stats.ok()) table_bytes = stats.value()->true_bytes();
      double table_rows = stats.ok() ? stats.value()->true_rows : rows_out;
      w.io_read_bytes = table_bytes;
      w.io_sec = table_bytes * c.io_storage_read_byte;
      w.cpu_sec = table_rows * c.cpu_scan_row;
      if (!n.predicates.empty()) {
        w.cpu_sec += table_rows * c.cpu_filter_row;
      }
      w.memory_bytes = 64.0e6;  // extractor buffers
      break;
    }
    case PhysOpKind::kFilter:
      w.cpu_sec = child(0).true_rows * c.cpu_filter_row;
      w.memory_bytes = 16.0e6;
      break;
    case PhysOpKind::kProject:
      w.cpu_sec = child(0).true_rows * c.cpu_project_row;
      w.memory_bytes = 16.0e6;
      break;
    case PhysOpKind::kHashJoin:
      w.cpu_sec = child(1).true_rows * c.cpu_hash_build_row +
                  child(0).true_rows * c.cpu_hash_probe_row +
                  rows_out * c.cpu_project_row;
      w.memory_bytes = child(1).true_bytes / parts * 1.5;
      break;
    case PhysOpKind::kBroadcastJoin: {
      // Every partition fetches a replica of the broadcast side and builds
      // a full copy of its hash table.
      double fanout = static_cast<double>(parts);
      w.io_read_bytes = child(1).true_bytes * fanout;
      w.io_sec = w.io_read_bytes * c.io_shuffle_byte;
      w.cpu_sec = child(1).true_rows * fanout * c.cpu_hash_build_row +
                  child(0).true_rows * c.cpu_hash_probe_row +
                  rows_out * c.cpu_project_row;
      w.memory_bytes = child(1).true_bytes * 1.5;
      break;
    }
    case PhysOpKind::kMergeJoin: {
      double l = child(0).true_rows;
      double r = child(1).true_rows;
      double sort = 0.0;
      if (l > 1) sort += l * std::log2(l) * c.cpu_sort_row_log;
      if (r > 1) sort += r * std::log2(r) * c.cpu_sort_row_log;
      w.cpu_sec = sort + (l + r) * c.cpu_hash_probe_row;
      w.memory_bytes =
          (child(0).true_bytes + child(1).true_bytes) / parts;
      break;
    }
    case PhysOpKind::kHashAgg:
    case PhysOpKind::kPartialHashAgg:
      w.cpu_sec = child(0).true_rows * c.cpu_agg_row;
      w.memory_bytes = bytes_out / parts * 1.5;
      break;
    case PhysOpKind::kStreamAgg: {
      double r = child(0).true_rows;
      double sort = r > 1 ? r * std::log2(r) * c.cpu_sort_row_log : 0.0;
      w.cpu_sec = sort + r * c.cpu_agg_row * 0.5;
      w.memory_bytes = child(0).true_bytes / parts;
      break;
    }
    case PhysOpKind::kUnionAll:
      w.cpu_sec = (child(0).true_rows + child(1).true_rows) * c.cpu_union_row;
      w.memory_bytes = 8.0e6;
      break;
    case PhysOpKind::kOutput:
      w.io_write_bytes = bytes_out;
      w.io_sec = bytes_out * c.io_storage_write_byte;
      w.cpu_sec = rows_out * c.cpu_project_row;
      w.memory_bytes = 32.0e6;
      break;
    case PhysOpKind::kExchangeShuffle:
    case PhysOpKind::kExchangeGather: {
      double bytes = child(0).true_bytes;
      w.io_write_bytes = bytes;
      w.io_read_bytes = bytes;
      w.io_sec = 2.0 * bytes * c.io_shuffle_byte;
      w.cpu_sec = bytes * c.cpu_exchange_byte;
      w.memory_bytes = 32.0e6;
      break;
    }
    case PhysOpKind::kExchangeBroadcast: {
      // The producer writes the broadcast payload once; the replicated
      // reads are accounted to the consuming join (they run in the
      // consumer's partitions).
      double bytes = child(0).true_bytes;
      w.io_write_bytes = bytes;
      w.io_sec = bytes * c.io_shuffle_byte;
      w.cpu_sec = bytes * c.cpu_exchange_byte;
      w.memory_bytes = bytes;
      break;
    }
  }
  return w;
}

/// One ComputeNodeWork pass over the whole plan, indexed by node id (ids are
/// dense: PhysicalPlan::AddNode assigns them from the vector index).
std::vector<NodeWork> ComputeAllNodeWork(const PhysicalPlan& plan,
                                         const scope::Catalog& catalog,
                                         const ClusterConfig& config) {
  std::vector<NodeWork> works;
  works.reserve(plan.nodes.size());
  for (const auto& n : plan.nodes) {
    works.push_back(ComputeNodeWork(plan, n, catalog, config));
  }
  return works;
}

/// Stage decomposition over precomputed per-node work. Iterative DFS that
/// replays the historical recursive assignment order exactly: stages are
/// created the moment a root or exchange child is visited, node_ids are
/// appended in pre-order, so stage indices and per-stage sums match the
/// legacy implementation bit-for-bit.
std::vector<Stage> DecomposeWithWork(const PhysicalPlan& plan,
                                     const std::vector<NodeWork>& works) {
  std::vector<Stage> stages;
  std::vector<int> node_stage(plan.nodes.size(), -1);

  // Assign nodes to stages top-down from the roots; exchanges start a new
  // stage for their subtree (the exchange itself models the boundary and is
  // accounted to the producer stage). A pending visit with stage == -1 opens
  // a new stage when popped (root or exchange child); shared nodes (DAGs)
  // already run in their first stage, later consumers just depend on it.
  struct Visit {
    int node;
    int stage;  ///< -1: allocate a fresh stage when popped
  };
  std::vector<Visit> dfs;
  for (size_t r = plan.roots.size(); r-- > 0;) {
    dfs.push_back({plan.roots[r], -1});
  }
  while (!dfs.empty()) {
    Visit v = dfs.back();
    dfs.pop_back();
    int stage_idx = v.stage;
    if (stage_idx < 0) {
      stage_idx = static_cast<int>(stages.size());
      stages.emplace_back();
    }
    if (node_stage[v.node] >= 0) continue;  // shared node
    node_stage[v.node] = stage_idx;
    stages[stage_idx].node_ids.push_back(v.node);
    const std::vector<int>& children = plan.node(v.node).children;
    for (size_t c = children.size(); c-- > 0;) {
      int child = children[c];
      bool boundary = opt::IsExchange(plan.node(child).kind);
      dfs.push_back({child, boundary ? -1 : stage_idx});
    }
  }

  // Stage dependencies: an edge crossing stages makes the consumer stage
  // wait on the producer stage. Emitted deduplicated in ascending order
  // (duplicates and ordering cannot affect the ready-time max).
  for (int node_id = 0; node_id < static_cast<int>(plan.nodes.size());
       ++node_id) {
    int stage_idx = node_stage[node_id];
    if (stage_idx < 0) continue;  // unreachable from any root
    for (int c : plan.node(node_id).children) {
      int child_stage = node_stage[c];
      if (child_stage != stage_idx) {
        stages[stage_idx].upstream.push_back(child_stage);
      }
    }
  }
  for (Stage& stage : stages) {
    std::sort(stage.upstream.begin(), stage.upstream.end());
    stage.upstream.erase(
        std::unique(stage.upstream.begin(), stage.upstream.end()),
        stage.upstream.end());
  }

  // Aggregate per-stage work and parallelism. Exchange operators execute
  // their write phase in the *producer's* partitions (their own partition
  // annotation is the downstream fan-out), so they do not raise the stage's
  // vertex count.
  for (Stage& stage : stages) {
    int non_exchange_parts = 0;
    int exchange_child_parts = 1;
    for (int id : stage.node_ids) {
      const PhysicalNode& n = plan.node(id);
      const NodeWork& w = works[id];
      stage.cpu_sec += w.cpu_sec;
      stage.io_sec += w.io_sec;
      if (opt::IsExchange(n.kind)) {
        exchange_child_parts = std::max(
            exchange_child_parts, plan.node(n.children[0]).partitions);
      } else {
        non_exchange_parts = std::max(non_exchange_parts, n.partitions);
      }
      stage.memory_bytes_per_vertex =
          std::max(stage.memory_bytes_per_vertex, w.memory_bytes);
    }
    stage.partitions =
        non_exchange_parts > 0 ? non_exchange_parts : exchange_child_parts;
  }
  return stages;
}

}  // namespace

std::vector<Stage> DecomposeIntoStages(const PhysicalPlan& plan,
                                       const scope::Catalog& catalog,
                                       const ClusterConfig& config) {
  return DecomposeWithWork(plan, ComputeAllNodeWork(plan, catalog, config));
}

uint64_t ClusterConfigFingerprint(const ClusterConfig& c) {
  // Field-count tripwire: this binding list must decompose every
  // ClusterConfig field, so adding or removing one fails to compile here —
  // forcing the hash to be revisited (a sizeof assert would miss fields
  // that fit existing padding).
  const auto& [tokens, cpu_scan_row, cpu_filter_row, cpu_project_row,
               cpu_hash_build_row, cpu_hash_probe_row, cpu_sort_row_log,
               cpu_agg_row, cpu_union_row, cpu_exchange_byte,
               io_storage_read_byte, io_storage_write_byte, io_shuffle_byte,
               stage_startup_sec, job_overhead_sec, stage_congestion_sigma,
               job_congestion_sigma, straggler_prob, straggler_alpha,
               straggler_cap, pn_cpu_sigma, pn_io_sigma, retry_prob,
               retry_fraction] = c;
  uint64_t h = HashU64(static_cast<uint64_t>(tokens), kFnvOffsetBasis);
  for (double v :
       {cpu_scan_row, cpu_filter_row, cpu_project_row, cpu_hash_build_row,
        cpu_hash_probe_row, cpu_sort_row_log, cpu_agg_row, cpu_union_row,
        cpu_exchange_byte, io_storage_read_byte, io_storage_write_byte,
        io_shuffle_byte, stage_startup_sec, job_overhead_sec,
        stage_congestion_sigma, job_congestion_sigma, straggler_prob,
        straggler_alpha, straggler_cap, pn_cpu_sigma, pn_io_sigma, retry_prob,
        retry_fraction}) {
    h = HashDouble(v, h);
  }
  return MixHash(h);
}

ExecutionProfile ClusterSimulator::Prepare(const PhysicalPlan& plan,
                                           const scope::Catalog& catalog) const {
  prepares_.fetch_add(1, std::memory_order_relaxed);
  ExecutionProfile p;
  p.config_fingerprint = config_fingerprint_;
  p.catalog_fingerprint = catalog.StatsFingerprint();

  // Plan-level byte counters and total work, accumulated in node order (the
  // exact summation order of the legacy Execute, so the doubles match
  // bit-for-bit). One ComputeNodeWork pass serves both these totals and the
  // per-stage aggregation below.
  std::vector<NodeWork> works = ComputeAllNodeWork(plan, catalog, config_);
  for (const NodeWork& w : works) {
    p.data_read_bytes += w.io_read_bytes;
    p.data_written_bytes += w.io_write_bytes;
    p.total_cpu_sec += w.cpu_sec;
    p.total_io_sec += w.io_sec;
  }

  std::vector<Stage> stages = DecomposeWithWork(plan, works);
  p.stages.reserve(stages.size());
  for (const Stage& s : stages) {
    StageProfile sp;
    sp.partitions = s.partitions;
    sp.cpu_sec = s.cpu_sec;
    sp.io_sec = s.io_sec;
    sp.memory_bytes_per_vertex = s.memory_bytes_per_vertex;
    sp.upstream = s.upstream;
    int parts = std::max(1, s.partitions);
    double per_vertex = (s.cpu_sec + s.io_sec) / parts;
    int waves = (parts + config_.tokens - 1) / config_.tokens;
    sp.waves_per_vertex_sec = static_cast<double>(waves) * per_vertex;
    // The slowest vertex governs the wave; approximate the expected max of
    // `parts` lognormals with a sqrt(log P) inflation.
    sp.tail_inflation =
        1.0 + 0.12 * std::sqrt(std::log(static_cast<double>(parts) + 1.0));
    p.vertices += s.partitions;
    p.stages.push_back(std::move(sp));
  }

  // SoA transpose of the per-stage columns + CSR upstream adjacency: the
  // operands of the batched ExecuteRuns sweep.
  const size_t n_stages = p.stages.size();
  p.stage_cpu_sec.reserve(n_stages);
  p.stage_io_sec.reserve(n_stages);
  p.stage_waves_sec.reserve(n_stages);
  p.stage_tail.reserve(n_stages);
  p.stage_memory.reserve(n_stages);
  p.stage_partitions.reserve(n_stages);
  p.upstream_offsets.reserve(n_stages + 1);
  p.upstream_offsets.push_back(0);
  for (const StageProfile& sp : p.stages) {
    p.stage_cpu_sec.push_back(sp.cpu_sec);
    p.stage_io_sec.push_back(sp.io_sec);
    p.stage_waves_sec.push_back(sp.waves_per_vertex_sec);
    p.stage_tail.push_back(sp.tail_inflation);
    p.stage_memory.push_back(sp.memory_bytes_per_vertex);
    p.stage_partitions.push_back(sp.partitions);
    for (int up : sp.upstream) p.upstream_list.push_back(up);
    p.upstream_offsets.push_back(
        static_cast<int32_t>(p.upstream_list.size()));
  }

  // Topological evaluation order matching the legacy memoized recursion
  // (iterative DFS, roots visited in index order, upstream in vector order).
  // Cycles cannot arise from exchange boundaries alone but are conceivable
  // for shared-subtree DAGs; detect them so Execute can keep the legacy
  // recursion's exact cycle-breaking semantics.
  enum : uint8_t { kUnvisited = 0, kOnStack = 1, kDone = 2 };
  std::vector<uint8_t> state(p.stages.size(), kUnvisited);
  std::vector<std::pair<int, size_t>> dfs;  // (stage, next upstream position)
  p.topo_order.reserve(p.stages.size());
  for (size_t root = 0; root < p.stages.size(); ++root) {
    if (state[root] != kUnvisited) continue;
    state[root] = kOnStack;
    dfs.emplace_back(static_cast<int>(root), 0);
    while (!dfs.empty()) {
      auto& [idx, pos] = dfs.back();
      const std::vector<int>& upstream = p.stages[idx].upstream;
      if (pos < upstream.size()) {
        int up = upstream[pos++];
        if (state[up] == kUnvisited) {
          state[up] = kOnStack;
          dfs.emplace_back(up, 0);
        } else if (state[up] == kOnStack) {
          p.has_cycle = true;
        }
      } else {
        state[idx] = kDone;
        p.topo_order.push_back(idx);
        dfs.pop_back();
      }
    }
  }
  p.topo32.assign(p.topo_order.begin(), p.topo_order.end());
  return p;
}

std::shared_ptr<const ExecutionProfile> ClusterSimulator::PrepareShared(
    const PhysicalPlan& plan, const scope::Catalog& catalog) const {
  return std::make_shared<const ExecutionProfile>(Prepare(plan, catalog));
}

JobMetrics ClusterSimulator::Execute(const PhysicalPlan& plan,
                                     const scope::Catalog& catalog,
                                     uint64_t run_seed) const {
  unprepared_runs_.fetch_add(1, std::memory_order_relaxed);
  return ExecuteProfile(Prepare(plan, catalog), run_seed);
}

JobMetrics ClusterSimulator::Execute(const ExecutionProfile& profile,
                                     uint64_t run_seed) const {
  prepared_runs_.fetch_add(1, std::memory_order_relaxed);
  return ExecuteProfile(profile, run_seed);
}

std::vector<JobMetrics> ClusterSimulator::ExecuteRuns(
    const ExecutionProfile& profile, uint64_t base_seed, int runs) const {
  std::vector<JobMetrics> out;
  if (runs <= 0) return out;
  out.reserve(static_cast<size_t>(runs));
  if (profile.has_cycle) {
    // The cyclic fallback keeps the legacy memoized recursion per seed.
    for (int i = 0; i < runs; ++i) {
      prepared_runs_.fetch_add(1, std::memory_order_relaxed);
      out.push_back(
          ExecuteProfile(profile, base_seed + static_cast<uint64_t>(i)));
    }
    return out;
  }

  using kernels::kLanes;
  const kernels::KernelTable& kt = kernels::Active();
  const size_t n_stages = profile.stages.size();
  const ExecutionProfile& p = profile;
  // Stage-major lane blocks: noise[s * kLanes + j] is lane j's (seed i + j)
  // multiplicative noise for stage s. Reused across blocks.
  std::vector<double> noise(n_stages * kLanes);
  std::vector<double> finish(n_stages * kLanes);
  int i = 0;
  for (; i + static_cast<int>(kLanes) <= runs;
       i += static_cast<int>(kLanes)) {
    double job_scale[kLanes];
    double overhead[kLanes];
    double critical[kLanes];
    for (size_t j = 0; j < kLanes; ++j) {
      // Draw phase, per lane, in the exact legacy draw order: PNhours
      // noise, per-stage retries, per-stage latency noise, job congestion,
      // job overhead, per-stage memory. Only the DAG walk (which draws
      // nothing) leaves the lane for the vectorized sweep below.
      Rng rng(base_seed + static_cast<uint64_t>(i) + j);
      JobMetrics m;
      m.data_read_bytes = p.data_read_bytes;
      m.data_written_bytes = p.data_written_bytes;
      m.vertices = p.vertices;
      double cpu_noisy =
          p.total_cpu_sec * rng.LogNormal(0.0, config_.pn_cpu_sigma);
      double io_noisy =
          p.total_io_sec * rng.LogNormal(0.0, config_.pn_io_sigma);
      for (size_t s = 0; s < n_stages; ++s) {
        if (rng.Bernoulli(config_.retry_prob)) {
          double extra = config_.retry_fraction * rng.Uniform();
          cpu_noisy += p.stage_cpu_sec[s] * extra;
          io_noisy += p.stage_io_sec[s] * extra;
        }
      }
      m.cpu_hours = cpu_noisy / 3600.0;
      m.io_hours = io_noisy / 3600.0;
      m.pn_hours = m.cpu_hours + m.io_hours;
      for (size_t s = 0; s < n_stages; ++s) {
        double congestion =
            rng.LogNormal(0.0, config_.stage_congestion_sigma);
        double straggler = 1.0;
        if (rng.Bernoulli(config_.straggler_prob)) {
          straggler = std::min(rng.Pareto(1.0, config_.straggler_alpha),
                               config_.straggler_cap);
        }
        noise[s * kLanes + j] = congestion * straggler;
      }
      job_scale[j] = rng.LogNormal(0.0, config_.job_congestion_sigma);
      overhead[j] = config_.job_overhead_sec * rng.LogNormal(0.0, 0.15);
      double max_mem = 0.0, sum_mem = 0.0;
      for (size_t s = 0; s < n_stages; ++s) {
        double mem = p.stage_memory[s] * rng.LogNormal(0.0, 0.05);
        max_mem = std::max(max_mem, mem);
        sum_mem += mem;
      }
      m.max_memory_bytes = max_mem;
      m.avg_memory_bytes =
          n_stages == 0 ? 0.0 : sum_mem / static_cast<double>(n_stages);
      out.push_back(m);
    }
    // All four lanes' critical paths in one kernel sweep.
    kt.critical_path4(n_stages, p.topo32.data(), p.upstream_offsets.data(),
                      p.upstream_list.data(), p.stage_waves_sec.data(),
                      p.stage_tail.data(), config_.stage_startup_sec,
                      noise.data(), finish.data(), critical);
    for (size_t j = 0; j < kLanes; ++j) {
      out[static_cast<size_t>(i) + j].latency_sec =
          overhead[j] + critical[j] * job_scale[j];
    }
    prepared_runs_.fetch_add(kLanes, std::memory_order_relaxed);
  }
  for (; i < runs; ++i) {
    prepared_runs_.fetch_add(1, std::memory_order_relaxed);
    out.push_back(
        ExecuteProfile(profile, base_seed + static_cast<uint64_t>(i)));
  }
  return out;
}

// The stochastic inner loop. Every arithmetic expression here mirrors the
// legacy one-shot Execute exactly (same draw order, same association), so
// prepared and unprepared runs produce bit-identical JobMetrics.
JobMetrics ClusterSimulator::ExecuteProfile(const ExecutionProfile& p,
                                            uint64_t run_seed) const {
  Rng rng(run_seed);
  JobMetrics m;
  m.data_read_bytes = p.data_read_bytes;
  m.data_written_bytes = p.data_written_bytes;
  m.vertices = p.vertices;

  // --- PNhours: bounded noise, occasional retries. ---
  double cpu_noisy =
      p.total_cpu_sec * rng.LogNormal(0.0, config_.pn_cpu_sigma);
  double io_noisy = p.total_io_sec * rng.LogNormal(0.0, config_.pn_io_sigma);
  for (const StageProfile& s : p.stages) {
    if (rng.Bernoulli(config_.retry_prob)) {
      double extra = config_.retry_fraction * rng.Uniform();
      cpu_noisy += s.cpu_sec * extra;
      io_noisy += s.io_sec * extra;
    }
  }
  m.cpu_hours = cpu_noisy / 3600.0;
  m.io_hours = io_noisy / 3600.0;
  m.pn_hours = m.cpu_hours + m.io_hours;

  // --- Latency: critical path over stages with wave scheduling, per-stage
  // congestion and heavy-tailed stragglers. ---
  // Draw per-stage noise first so the values do not depend on traversal
  // order (keeps runs reproducible for a given seed).
  std::vector<double> stage_noise(p.stages.size(), 1.0);
  for (size_t i = 0; i < p.stages.size(); ++i) {
    double congestion = rng.LogNormal(0.0, config_.stage_congestion_sigma);
    double straggler = 1.0;
    if (rng.Bernoulli(config_.straggler_prob)) {
      straggler = std::min(rng.Pareto(1.0, config_.straggler_alpha),
                           config_.straggler_cap);
    }
    stage_noise[i] = congestion * straggler;
  }
  auto duration_of = [&](int idx) {
    const StageProfile& s = p.stages[idx];
    return config_.stage_startup_sec +
           s.waves_per_vertex_sec * stage_noise[idx] * s.tail_inflation;
  };
  std::vector<double> finish(p.stages.size(), -1.0);
  if (!p.has_cycle) {
    // Upstream finishes are resolved before their consumers in topo order:
    // the memoized recursion collapses to one linear walk.
    for (int idx : p.topo_order) {
      double ready = 0.0;
      for (int up : p.stages[idx].upstream) {
        ready = std::max(ready, finish[up]);
      }
      finish[idx] = ready + duration_of(idx);
    }
  } else {
    // Legacy memoized recursion, kept verbatim for its cycle-breaking
    // semantics (finish reads 0.0 for a stage currently being computed).
    std::function<double(size_t)> finish_of = [&](size_t idx) -> double {
      if (finish[idx] >= 0.0) return finish[idx];
      finish[idx] = 0.0;  // break cycles defensively
      double ready = 0.0;
      for (int up : p.stages[idx].upstream) {
        ready = std::max(ready, finish_of(static_cast<size_t>(up)));
      }
      finish[idx] = ready + duration_of(static_cast<int>(idx));
      return finish[idx];
    };
    for (size_t i = 0; i < p.stages.size(); ++i) finish_of(i);
  }
  double critical = 0.0;
  for (size_t i = 0; i < p.stages.size(); ++i) {
    critical = std::max(critical, finish[i]);
  }
  double job_congestion = rng.LogNormal(0.0, config_.job_congestion_sigma);
  m.latency_sec = config_.job_overhead_sec * rng.LogNormal(0.0, 0.15) +
                  critical * job_congestion;

  // --- Memory. ---
  double max_mem = 0.0, sum_mem = 0.0;
  for (const StageProfile& s : p.stages) {
    double mem = s.memory_bytes_per_vertex * rng.LogNormal(0.0, 0.05);
    max_mem = std::max(max_mem, mem);
    sum_mem += mem;
  }
  m.max_memory_bytes = max_mem;
  m.avg_memory_bytes = p.stages.empty() ? 0.0 : sum_mem / p.stages.size();
  return m;
}

}  // namespace qo::exec

#include "exec/cluster.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

namespace qo::exec {

namespace {

using opt::PhysOpKind;
using opt::PhysicalNode;
using opt::PhysicalPlan;

/// Per-node resource usage, noiseless.
struct NodeWork {
  double cpu_sec = 0.0;
  double io_read_bytes = 0.0;
  double io_write_bytes = 0.0;
  double io_sec = 0.0;
  double memory_bytes = 0.0;  ///< per-vertex working set
};

NodeWork ComputeNodeWork(const PhysicalPlan& plan, const PhysicalNode& n,
                         const scope::Catalog& catalog,
                         const ClusterConfig& c) {
  NodeWork w;
  auto child = [&](size_t i) -> const PhysicalNode& {
    return plan.node(n.children[i]);
  };
  double rows_out = n.true_rows;
  double bytes_out = n.true_bytes;
  int parts = std::max(1, n.partitions);
  switch (n.kind) {
    case PhysOpKind::kScan: {
      // Scans read the whole table regardless of embedded predicates.
      double table_bytes = bytes_out;
      auto stats = catalog.Lookup(n.table_path);
      if (stats.ok()) table_bytes = stats.value()->true_bytes();
      double table_rows = stats.ok() ? stats.value()->true_rows : rows_out;
      w.io_read_bytes = table_bytes;
      w.io_sec = table_bytes * c.io_storage_read_byte;
      w.cpu_sec = table_rows * c.cpu_scan_row;
      if (!n.predicates.empty()) {
        w.cpu_sec += table_rows * c.cpu_filter_row;
      }
      w.memory_bytes = 64.0e6;  // extractor buffers
      break;
    }
    case PhysOpKind::kFilter:
      w.cpu_sec = child(0).true_rows * c.cpu_filter_row;
      w.memory_bytes = 16.0e6;
      break;
    case PhysOpKind::kProject:
      w.cpu_sec = child(0).true_rows * c.cpu_project_row;
      w.memory_bytes = 16.0e6;
      break;
    case PhysOpKind::kHashJoin:
      w.cpu_sec = child(1).true_rows * c.cpu_hash_build_row +
                  child(0).true_rows * c.cpu_hash_probe_row +
                  rows_out * c.cpu_project_row;
      w.memory_bytes = child(1).true_bytes / parts * 1.5;
      break;
    case PhysOpKind::kBroadcastJoin: {
      // Every partition fetches a replica of the broadcast side and builds
      // a full copy of its hash table.
      double fanout = static_cast<double>(parts);
      w.io_read_bytes = child(1).true_bytes * fanout;
      w.io_sec = w.io_read_bytes * c.io_shuffle_byte;
      w.cpu_sec = child(1).true_rows * fanout * c.cpu_hash_build_row +
                  child(0).true_rows * c.cpu_hash_probe_row +
                  rows_out * c.cpu_project_row;
      w.memory_bytes = child(1).true_bytes * 1.5;
      break;
    }
    case PhysOpKind::kMergeJoin: {
      double l = child(0).true_rows;
      double r = child(1).true_rows;
      double sort = 0.0;
      if (l > 1) sort += l * std::log2(l) * c.cpu_sort_row_log;
      if (r > 1) sort += r * std::log2(r) * c.cpu_sort_row_log;
      w.cpu_sec = sort + (l + r) * c.cpu_hash_probe_row;
      w.memory_bytes =
          (child(0).true_bytes + child(1).true_bytes) / parts;
      break;
    }
    case PhysOpKind::kHashAgg:
    case PhysOpKind::kPartialHashAgg:
      w.cpu_sec = child(0).true_rows * c.cpu_agg_row;
      w.memory_bytes = bytes_out / parts * 1.5;
      break;
    case PhysOpKind::kStreamAgg: {
      double r = child(0).true_rows;
      double sort = r > 1 ? r * std::log2(r) * c.cpu_sort_row_log : 0.0;
      w.cpu_sec = sort + r * c.cpu_agg_row * 0.5;
      w.memory_bytes = child(0).true_bytes / parts;
      break;
    }
    case PhysOpKind::kUnionAll:
      w.cpu_sec = (child(0).true_rows + child(1).true_rows) * c.cpu_union_row;
      w.memory_bytes = 8.0e6;
      break;
    case PhysOpKind::kOutput:
      w.io_write_bytes = bytes_out;
      w.io_sec = bytes_out * c.io_storage_write_byte;
      w.cpu_sec = rows_out * c.cpu_project_row;
      w.memory_bytes = 32.0e6;
      break;
    case PhysOpKind::kExchangeShuffle:
    case PhysOpKind::kExchangeGather: {
      double bytes = child(0).true_bytes;
      w.io_write_bytes = bytes;
      w.io_read_bytes = bytes;
      w.io_sec = 2.0 * bytes * c.io_shuffle_byte;
      w.cpu_sec = bytes * c.cpu_exchange_byte;
      w.memory_bytes = 32.0e6;
      break;
    }
    case PhysOpKind::kExchangeBroadcast: {
      // The producer writes the broadcast payload once; the replicated
      // reads are accounted to the consuming join (they run in the
      // consumer's partitions).
      double bytes = child(0).true_bytes;
      w.io_write_bytes = bytes;
      w.io_sec = bytes * c.io_shuffle_byte;
      w.cpu_sec = bytes * c.cpu_exchange_byte;
      w.memory_bytes = bytes;
      break;
    }
  }
  return w;
}

}  // namespace

std::vector<Stage> DecomposeIntoStages(const PhysicalPlan& plan,
                                       const scope::Catalog& catalog,
                                       const ClusterConfig& config) {
  std::vector<Stage> stages;
  std::unordered_map<int, int> node_stage;  // node id -> stage index

  // Assign nodes to stages top-down from the roots; exchanges start a new
  // stage for their subtree (the exchange itself models the boundary and is
  // accounted to the producer stage).
  std::function<void(int, int)> assign = [&](int node_id, int stage_idx) {
    if (node_stage.count(node_id) > 0) {
      // Shared node (DAG): it already runs in its first stage; later
      // consumers just depend on that stage.
      return;
    }
    node_stage[node_id] = stage_idx;
    stages[stage_idx].node_ids.push_back(node_id);
    const PhysicalNode& n = plan.node(node_id);
    for (int c : n.children) {
      if (opt::IsExchange(plan.node(c).kind)) {
        int next = static_cast<int>(stages.size());
        stages.emplace_back();
        assign(c, next);
      } else {
        assign(c, stage_idx);
      }
    }
  };
  for (int r : plan.roots) {
    int idx = static_cast<int>(stages.size());
    stages.emplace_back();
    assign(r, idx);
  }

  // Stage dependencies: an edge crossing stages makes the consumer stage
  // wait on the producer stage.
  for (const auto& [node_id, stage_idx] : node_stage) {
    for (int c : plan.node(node_id).children) {
      int child_stage = node_stage[c];
      if (child_stage != stage_idx) {
        stages[stage_idx].upstream.push_back(child_stage);
      }
    }
  }

  // Aggregate per-stage work and parallelism. Exchange operators execute
  // their write phase in the *producer's* partitions (their own partition
  // annotation is the downstream fan-out), so they do not raise the stage's
  // vertex count.
  for (Stage& stage : stages) {
    int non_exchange_parts = 0;
    int exchange_child_parts = 1;
    for (int id : stage.node_ids) {
      const PhysicalNode& n = plan.node(id);
      NodeWork w = ComputeNodeWork(plan, n, catalog, config);
      stage.cpu_sec += w.cpu_sec;
      stage.io_sec += w.io_sec;
      if (opt::IsExchange(n.kind)) {
        exchange_child_parts = std::max(
            exchange_child_parts, plan.node(n.children[0]).partitions);
      } else {
        non_exchange_parts = std::max(non_exchange_parts, n.partitions);
      }
      stage.memory_bytes_per_vertex =
          std::max(stage.memory_bytes_per_vertex, w.memory_bytes);
    }
    stage.partitions =
        non_exchange_parts > 0 ? non_exchange_parts : exchange_child_parts;
  }
  return stages;
}

JobMetrics ClusterSimulator::Execute(const PhysicalPlan& plan,
                                     const scope::Catalog& catalog,
                                     uint64_t run_seed) const {
  Rng rng(run_seed);
  JobMetrics m;

  // Deterministic byte counters and total work.
  double total_cpu = 0.0;
  double total_io_sec = 0.0;
  for (const auto& n : plan.nodes) {
    NodeWork w = ComputeNodeWork(plan, n, catalog, config_);
    m.data_read_bytes += w.io_read_bytes;
    m.data_written_bytes += w.io_write_bytes;
    total_cpu += w.cpu_sec;
    total_io_sec += w.io_sec;
  }

  std::vector<Stage> stages = DecomposeIntoStages(plan, catalog, config_);

  // Vertices = total task instances across stages.
  for (const Stage& s : stages) m.vertices += s.partitions;

  // --- PNhours: bounded noise, occasional retries. ---
  double cpu_noisy =
      total_cpu * rng.LogNormal(0.0, config_.pn_cpu_sigma);
  double io_noisy = total_io_sec * rng.LogNormal(0.0, config_.pn_io_sigma);
  for (const Stage& s : stages) {
    if (rng.Bernoulli(config_.retry_prob)) {
      double extra = config_.retry_fraction * rng.Uniform();
      cpu_noisy += s.cpu_sec * extra;
      io_noisy += s.io_sec * extra;
    }
  }
  m.cpu_hours = cpu_noisy / 3600.0;
  m.io_hours = io_noisy / 3600.0;
  m.pn_hours = m.cpu_hours + m.io_hours;

  // --- Latency: critical path over stages with wave scheduling, per-stage
  // congestion and heavy-tailed stragglers. ---
  // Draw per-stage noise first so the values do not depend on traversal
  // order (keeps runs reproducible for a given seed).
  std::vector<double> stage_noise(stages.size(), 1.0);
  for (size_t i = 0; i < stages.size(); ++i) {
    double congestion = rng.LogNormal(0.0, config_.stage_congestion_sigma);
    double straggler = 1.0;
    if (rng.Bernoulli(config_.straggler_prob)) {
      straggler = std::min(rng.Pareto(1.0, config_.straggler_alpha),
                           config_.straggler_cap);
    }
    stage_noise[i] = congestion * straggler;
  }
  // Finish times via memoized recursion over the stage DAG (upstream stage
  // indices are not monotonic when plans share subtrees).
  std::vector<double> finish(stages.size(), -1.0);
  std::function<double(size_t)> finish_of = [&](size_t idx) -> double {
    if (finish[idx] >= 0.0) return finish[idx];
    finish[idx] = 0.0;  // break (impossible) cycles defensively
    const Stage& s = stages[idx];
    double ready = 0.0;
    for (int up : s.upstream) {
      ready = std::max(ready, finish_of(static_cast<size_t>(up)));
    }
    int parts = std::max(1, s.partitions);
    double per_vertex = (s.cpu_sec + s.io_sec) / parts;
    int waves = (parts + config_.tokens - 1) / config_.tokens;
    // The slowest vertex governs the wave; approximate the expected max of
    // `parts` lognormals with a sqrt(log P) inflation.
    double tail_inflation =
        1.0 + 0.12 * std::sqrt(std::log(static_cast<double>(parts) + 1.0));
    double duration = config_.stage_startup_sec +
                      static_cast<double>(waves) * per_vertex *
                          stage_noise[idx] * tail_inflation;
    finish[idx] = ready + duration;
    return finish[idx];
  };
  double critical = 0.0;
  for (size_t i = 0; i < stages.size(); ++i) {
    critical = std::max(critical, finish_of(i));
  }
  double job_congestion = rng.LogNormal(0.0, config_.job_congestion_sigma);
  m.latency_sec = config_.job_overhead_sec * rng.LogNormal(0.0, 0.15) +
                  critical * job_congestion;

  // --- Memory. ---
  double max_mem = 0.0, sum_mem = 0.0;
  for (const Stage& s : stages) {
    double mem = s.memory_bytes_per_vertex * rng.LogNormal(0.0, 0.05);
    max_mem = std::max(max_mem, mem);
    sum_mem += mem;
  }
  m.max_memory_bytes = max_mem;
  m.avg_memory_bytes = stages.empty() ? 0.0 : sum_mem / stages.size();
  return m;
}

}  // namespace qo::exec

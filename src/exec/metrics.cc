#include "exec/metrics.h"

#include <cstdio>

namespace qo::exec {

std::string JobMetrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "latency=%.1fs pnhours=%.3f vertices=%d read=%.1fMB "
                "written=%.1fMB",
                latency_sec, pn_hours, vertices, data_read_bytes / 1e6,
                data_written_bytes / 1e6);
  return buf;
}

}  // namespace qo::exec

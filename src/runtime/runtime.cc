#include "runtime/runtime.h"

#include <algorithm>
#include <cstdlib>

namespace qo::runtime {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

RuntimeOptions RuntimeOptions::FromEnv() {
  RuntimeOptions options;
  if (const char* env = std::getenv("QO_THREADS")) {
    int threads = std::atoi(env);
    if (threads >= 1) options.num_threads = threads;
  }
  return options;
}

ParallelRuntime::ParallelRuntime(RuntimeOptions options)
    : options_(options),
      queue_(options.num_shards > 0
                 ? options.num_shards
                 : std::max(16, 4 * options.num_threads)) {
  if (options_.num_threads > 1) {
    workers_.reserve(static_cast<size_t>(options_.num_threads));
    for (int i = 0; i < options_.num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ParallelRuntime::~ParallelRuntime() {
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelRuntime::WorkerLoop() {
  t_in_worker = true;
  while (auto lease = queue_.PopBlocking()) {
    lease->fn();
    queue_.Release(lease->shard);
  }
}

bool ParallelRuntime::InWorkerThread() { return t_in_worker; }

}  // namespace qo::runtime

// A sharded, priority-ordered work queue: the scheduling core of the
// deterministic parallel runtime (mirroring the production QO-Advisor, which
// runs recompilation and flighting as services over a shared queue rather
// than as a single-threaded loop — paper Secs. 2.5 and 4.3).
//
// Tasks are submitted with a shard key and a priority. The queue guarantees:
//
//   (1) Shard exclusion: tasks sharing a shard (key modulo shard count)
//       never run concurrently. Callers shard by template id, so any
//       per-template state downstream of a task can never race.
//   (2) Shard order: within a shard, tasks run in ascending
//       (priority, submission sequence) order.
//   (3) Best-first dispatch: across shards, a worker always picks the
//       eligible task with the lowest (priority, submission sequence) —
//       "most promising first", the flighting service's cost-delta ordering.
//
// The queue is a dispatch mechanism only: it promises nothing about
// *completion* order. Deterministic result ordering is layered on top by
// ParallelRuntime::ForEachOrdered, which commits results in submission
// order on the calling thread.
#ifndef QO_RUNTIME_WORK_QUEUE_H_
#define QO_RUNTIME_WORK_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

namespace qo::runtime {

/// Thread-safe sharded priority queue of void() tasks.
class ShardedWorkQueue {
 public:
  /// A popped task plus the shard it checked out. The caller must run `fn`
  /// and then call Release(shard) to make the shard's remaining tasks
  /// eligible again.
  struct Lease {
    std::function<void()> fn;
    int shard = -1;
  };

  explicit ShardedWorkQueue(int num_shards = 16);

  /// Enqueues `fn` under `shard_key` (reduced modulo the shard count).
  /// Lower `priority` values dispatch first; ties break by submission order.
  /// Returns the task's global submission sequence number.
  uint64_t Push(uint64_t shard_key, double priority, std::function<void()> fn);

  /// Blocks until a task whose shard is not checked out becomes available,
  /// then checks the shard out and returns the task. Returns nullopt once
  /// the queue is closed and fully drained.
  std::optional<Lease> PopBlocking();

  /// Returns a shard checked out by PopBlocking, waking waiters if the
  /// shard still has pending tasks.
  void Release(int shard);

  /// Wakes all blocked workers; PopBlocking returns nullopt once the
  /// remaining tasks are drained.
  void Close();

  /// Tasks submitted but not yet popped.
  size_t pending() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    bool busy = false;
    /// (priority, sequence) -> task; begin() is the shard's head.
    std::map<std::pair<double, uint64_t>, std::function<void()>> tasks;
  };

  /// Re-inserts `shard`'s head task into the ready index. Caller holds mu_.
  void IndexHead(int shard);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Shard> shards_;
  /// Best-first index over heads of non-busy, non-empty shards:
  /// (priority, sequence, shard index).
  std::set<std::tuple<double, uint64_t, int>> ready_;
  uint64_t next_seq_ = 0;
  size_t pending_ = 0;
  bool closed_ = false;
};

}  // namespace qo::runtime

#endif  // QO_RUNTIME_WORK_QUEUE_H_

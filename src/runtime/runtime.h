// The deterministic parallel runtime: a fixed-size thread pool draining a
// sharded, priority-ordered work queue, with results committed in
// submission order on the calling thread.
//
// Determinism contract: for pure work functions, ForEachOrdered /
// TransformOrdered produce a commit sequence that is byte-identical for any
// thread count, including the inline (num_threads <= 1) path — the thread
// count only changes wall-clock time, never results. Stateful decisions
// (budget admission, stats accumulation, bandit updates) belong in the
// commit callback, which always runs single-threaded in submission order.
//
// This is the shape of the production QO-Advisor (paper Secs. 2.5, 4.3):
// recompilation and flighting are services fanning out across a cluster,
// while pipeline outputs (hint files, telemetry) stay reproducible
// day-over-day.
#ifndef QO_RUNTIME_RUNTIME_H_
#define QO_RUNTIME_RUNTIME_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/work_queue.h"

namespace qo::runtime {

struct RuntimeOptions {
  /// Worker threads in the pool. <= 1 runs every task inline on the calling
  /// thread (no threads are spawned).
  int num_threads = 1;
  /// Work-queue shards; 0 picks max(16, 4 * num_threads). Tasks sharing a
  /// shard key (modulo this count) never run concurrently.
  int num_shards = 0;

  /// Reads QO_THREADS from the environment (default: 1 = serial). Benches
  /// and the experiment harness use this so `QO_THREADS=4 ./fig10_...`
  /// parallelizes without a flag plumbed through every layer.
  static RuntimeOptions FromEnv();
};

/// Fixed-size thread pool + sharded work queue + ordered commit.
class ParallelRuntime {
 public:
  explicit ParallelRuntime(RuntimeOptions options = {});
  ~ParallelRuntime();

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  const RuntimeOptions& options() const { return options_; }
  int num_threads() const { return options_.num_threads; }
  /// True when a pool exists; false means every call runs inline.
  bool parallel() const { return !workers_.empty(); }

  /// Core primitive. Computes work(i) for i in [0, n) — fanned out across
  /// the pool, same-shard tasks serialized, lowest priority value first —
  /// and invokes commit(i, result) on the CALLING thread in strict
  /// submission order. Commits stream: commit(i) runs as soon as tasks
  /// 0..i have completed, while later tasks are still in flight, so
  /// commit-side state (e.g. a budget) advances during the run.
  ///
  /// Exceptions thrown by `work` or `commit` are rethrown on the calling
  /// thread only after all queued tasks finish (they reference this frame's
  /// state); commits stop at the first failed index.
  ///
  /// Reentrancy: calls from inside a worker thread (or while the options
  /// say serial) run inline — work/commit interleaved in submission order —
  /// which is byte-identical for pure work functions.
  template <typename R>
  void ForEachOrdered(size_t n,
                      const std::function<uint64_t(size_t)>& shard_of,
                      const std::function<double(size_t)>& priority_of,
                      const std::function<R(size_t)>& work,
                      const std::function<void(size_t, R&&)>& commit) {
    if (n == 0) return;
    if (!parallel() || n == 1 || InWorkerThread()) {
      for (size_t i = 0; i < n; ++i) commit(i, work(i));
      return;
    }
    struct Slot {
      std::optional<R> result;
      std::exception_ptr error;
      bool done = false;
    };
    std::vector<Slot> slots(n);
    std::mutex mu;
    std::condition_variable cv;
    for (size_t i = 0; i < n; ++i) {
      queue_.Push(shard_of(i), priority_of(i),
                  [&slots, &mu, &cv, &work, i] {
                    std::optional<R> result;
                    std::exception_ptr error;
                    try {
                      result.emplace(work(i));
                    } catch (...) {
                      error = std::current_exception();
                    }
                    // Notify under the lock: the caller may destroy `cv`
                    // the moment it observes the last done flag, so an
                    // unlocked notify could touch a dead condvar.
                    std::lock_guard<std::mutex> lock(mu);
                    slots[i].result = std::move(result);
                    slots[i].error = error;
                    slots[i].done = true;
                    cv.notify_all();
                  });
    }
    std::exception_ptr first_error;
    for (size_t i = 0; i < n; ++i) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return slots[i].done; });
      if (first_error != nullptr) continue;  // drain remaining tasks
      if (slots[i].error != nullptr) {
        first_error = slots[i].error;
        continue;
      }
      std::optional<R> result = std::move(slots[i].result);
      lock.unlock();
      // A throwing commit must not unwind past the wait loop either: queued
      // tasks still reference slots/mu/cv on this frame.
      try {
        commit(i, std::move(*result));
      } catch (...) {
        first_error = std::current_exception();
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
  }

  /// ForEachOrdered collecting results into a vector indexed by submission
  /// order.
  template <typename R>
  std::vector<R> TransformOrdered(size_t n,
                                  const std::function<uint64_t(size_t)>& shard_of,
                                  const std::function<double(size_t)>& priority_of,
                                  const std::function<R(size_t)>& work) {
    std::vector<R> out;
    out.reserve(n);
    ForEachOrdered<R>(n, shard_of, priority_of, work,
                      [&out](size_t, R&& r) { out.push_back(std::move(r)); });
    return out;
  }

 private:
  void WorkerLoop();
  /// True on pool worker threads; nested fan-out runs inline there.
  static bool InWorkerThread();

  RuntimeOptions options_;
  ShardedWorkQueue queue_;
  std::vector<std::thread> workers_;
};

/// Null-tolerant helpers: a null runtime degrades to a serial loop, so
/// library code can take an optional `ParallelRuntime*` without branching.
template <typename R>
void ForEachOrdered(ParallelRuntime* runtime, size_t n,
                    const std::function<uint64_t(size_t)>& shard_of,
                    const std::function<double(size_t)>& priority_of,
                    const std::function<R(size_t)>& work,
                    const std::function<void(size_t, R&&)>& commit) {
  if (runtime != nullptr) {
    runtime->ForEachOrdered<R>(n, shard_of, priority_of, work, commit);
    return;
  }
  for (size_t i = 0; i < n; ++i) commit(i, work(i));
}

}  // namespace qo::runtime

#endif  // QO_RUNTIME_RUNTIME_H_

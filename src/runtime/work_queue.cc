#include "runtime/work_queue.h"

#include <algorithm>

namespace qo::runtime {

ShardedWorkQueue::ShardedWorkQueue(int num_shards)
    : shards_(static_cast<size_t>(std::max(1, num_shards))) {}

void ShardedWorkQueue::IndexHead(int shard) {
  const Shard& s = shards_[static_cast<size_t>(shard)];
  if (s.busy || s.tasks.empty()) return;
  const auto& [key, fn] = *s.tasks.begin();
  ready_.emplace(key.first, key.second, shard);
}

uint64_t ShardedWorkQueue::Push(uint64_t shard_key, double priority,
                                std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  int shard = static_cast<int>(shard_key % shards_.size());
  Shard& s = shards_[static_cast<size_t>(shard)];
  uint64_t seq = next_seq_++;
  // The new task may displace the shard's head in the ready index.
  if (!s.busy && !s.tasks.empty()) {
    const auto& head = s.tasks.begin()->first;
    ready_.erase({head.first, head.second, shard});
  }
  s.tasks.emplace(std::make_pair(priority, seq), std::move(fn));
  ++pending_;
  IndexHead(shard);
  cv_.notify_one();
  return seq;
}

std::optional<ShardedWorkQueue::Lease> ShardedWorkQueue::PopBlocking() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !ready_.empty() || (closed_ && pending_ == 0); });
  if (ready_.empty()) return std::nullopt;  // closed and drained
  auto [priority, seq, shard] = *ready_.begin();
  ready_.erase(ready_.begin());
  Shard& s = shards_[static_cast<size_t>(shard)];
  s.busy = true;
  Lease lease;
  lease.shard = shard;
  lease.fn = std::move(s.tasks.begin()->second);
  s.tasks.erase(s.tasks.begin());
  --pending_;
  return lease;
}

void ShardedWorkQueue::Release(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& s = shards_[static_cast<size_t>(shard)];
  s.busy = false;
  IndexHead(shard);
  // Wake a worker for the released shard's head, or everyone at shutdown so
  // drained workers can exit.
  if (!s.tasks.empty() || closed_) cv_.notify_all();
}

void ShardedWorkQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

size_t ShardedWorkQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace qo::runtime

#include "runtime/budget_gate.h"

#include <algorithm>

namespace qo::runtime {

double BudgetGate::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

double BudgetGate::reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

bool BudgetGate::Admissible() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_ < capacity_;
}

void BudgetGate::Reserve(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ += hours;
  ++outstanding_reservations_;
}

void BudgetGate::ReleaseReservationLocked(double hours) {
  reserved_ = std::max(0.0, reserved_ - hours);
  if (outstanding_reservations_ > 0) --outstanding_reservations_;
  // Float addition is not associative: reservations settled in a
  // timing-dependent order can cancel to ~1e-17 dust instead of zero. With
  // nothing outstanding the true value IS zero, so snap to it.
  if (outstanding_reservations_ == 0) reserved_ = 0.0;
}

void BudgetGate::Refund(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  ReleaseReservationLocked(hours);
}

bool BudgetGate::CommitReserved(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  ReleaseReservationLocked(hours);
  if (committed_ + hours > capacity_) return false;
  committed_ += hours;
  return true;
}

bool BudgetGate::TrySpend(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  if (committed_ + hours > capacity_) return false;
  committed_ += hours;
  return true;
}

void BudgetGate::Spend(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  committed_ += hours;
}

void BudgetGate::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  committed_ = 0.0;
  reserved_ = 0.0;
  outstanding_reservations_ = 0;
}

}  // namespace qo::runtime

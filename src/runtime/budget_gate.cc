#include "runtime/budget_gate.h"

#include <algorithm>

namespace qo::runtime {

double BudgetGate::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

double BudgetGate::reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

bool BudgetGate::Admissible() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_ < capacity_;
}

void BudgetGate::Reserve(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ += hours;
}

void BudgetGate::Refund(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ = std::max(0.0, reserved_ - hours);
}

bool BudgetGate::CommitReserved(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ = std::max(0.0, reserved_ - hours);
  if (committed_ + hours > capacity_) return false;
  committed_ += hours;
  return true;
}

bool BudgetGate::TrySpend(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  if (committed_ + hours > capacity_) return false;
  committed_ += hours;
  return true;
}

void BudgetGate::Spend(double hours) {
  std::lock_guard<std::mutex> lock(mu_);
  committed_ += hours;
}

void BudgetGate::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  committed_ = 0.0;
  reserved_ = 0.0;
}

}  // namespace qo::runtime

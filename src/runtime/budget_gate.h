// Thread-safe machine-hour budget arbiter for budget-aware admission
// (paper Sec. 4.3: the flighting service runs under a constrained total
// machine-hour budget).
//
// Hours move through three states:
//
//   reserve  — a worker holds hours for speculative in-flight work
//              (reserved at dequeue);
//   commit   — the hours were genuinely spent and count against capacity;
//   refund   — the reservation is released without spending (environmental
//              failure, filtered job, or admission rejected).
//
// Admission through CommitReserved/TrySpend is strict: committed spend
// never exceeds capacity. Spend() is the legacy single-flight path
// (admission is a pre-check, the actual hours land afterwards), which may
// overshoot capacity by at most one flight.
//
// Reservations are deliberately *observability only* — admission ignores
// reserved_ by design. Reservations are made by workers in timing-dependent
// order, so letting them gate admission would make results depend on thread
// interleaving; deterministic admission must read only committed_, which
// advances solely at the ordered commit. The cost is bounded speculation:
// up to one in-flight task per worker may run past the cap and be refunded.
//
// Thread-safety: all methods are safe to call concurrently. committed() is
// monotonically non-decreasing between Reset() calls — callers exploit this
// for deterministic early-skip (once Exhausted(), always Exhausted()).
#ifndef QO_RUNTIME_BUDGET_GATE_H_
#define QO_RUNTIME_BUDGET_GATE_H_

#include <cstddef>
#include <mutex>

namespace qo::runtime {

class BudgetGate {
 public:
  explicit BudgetGate(double capacity_hours) : capacity_(capacity_hours) {}

  double capacity() const { return capacity_; }
  double committed() const;
  double reserved() const;

  /// Legacy pre-check admission: true while any budget remains.
  bool Admissible() const;
  bool Exhausted() const { return !Admissible(); }

  /// Holds `hours` for in-flight speculative work.
  void Reserve(double hours);

  /// Releases a reservation without spending.
  void Refund(double hours);

  /// Releases the reservation and commits it iff the spend fits:
  /// requires committed + hours <= capacity. Returns whether the hours were
  /// committed (false = refused, reservation refunded, nothing spent).
  bool CommitReserved(double hours);

  /// Strict spend without a prior reservation; same admission rule as
  /// CommitReserved.
  bool TrySpend(double hours);

  /// Unchecked spend: always lands, may overshoot capacity (legacy
  /// FlightOne/RunAA semantics where admission is a pre-check).
  void Spend(double hours);

  /// Zeroes committed and reserved hours.
  void Reset();

 private:
  /// Settles one reservation (mu_ held): subtracts the hours and, when no
  /// reservations remain outstanding, snaps rounding dust to exactly 0.0.
  void ReleaseReservationLocked(double hours);

  const double capacity_;
  mutable std::mutex mu_;
  double committed_ = 0.0;
  double reserved_ = 0.0;
  /// Reservations made but not yet refunded/committed.
  size_t outstanding_reservations_ = 0;
};

}  // namespace qo::runtime

#endif  // QO_RUNTIME_BUDGET_GATE_H_

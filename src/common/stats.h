// Summary statistics, correlation, and small regression models used by the
// validation stage and by the benchmark harnesses that regenerate the
// paper's figures.
#ifndef QO_COMMON_STATS_H_
#define QO_COMMON_STATS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace qo {

/// Streaming accumulator for mean / variance / extrema (Welford's method).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  /// Coefficient of variation: stddev / |mean| (0 when mean == 0).
  double cv() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sample; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1); 0 for fewer than two samples.
double StdDev(const std::vector<double>& xs);

/// Exact percentile via sorting a copy; p in [0, 100].
double Percentile(std::vector<double> xs, double p);

/// Pearson correlation coefficient; 0 if either side is degenerate.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Fraction of elements satisfying pred-like threshold helpers.
double FractionBelow(const std::vector<double>& xs, double threshold);
double FractionAbove(const std::vector<double>& xs, double threshold);

/// Ordinary least squares fit y = a*x + b.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination of the fit.
  double r2 = 0.0;

  double Predict(double x) const { return slope * x + intercept; }
};

Result<LinearFit> FitLinear(const std::vector<double>& xs,
                            const std::vector<double>& ys);

/// Multiple linear regression y = w . x + b via normal equations with a tiny
/// ridge term for numerical stability. Feature count must be small (the
/// validation model uses 2 features).
class LinearRegression {
 public:
  /// Fits the model; every row of `features` must have the same width.
  Status Fit(const std::vector<std::vector<double>>& features,
             const std::vector<double>& targets, double ridge = 1e-9);

  /// Predicted target for one feature row. Must be called after Fit.
  double Predict(const std::vector<double>& features) const;

  bool fitted() const { return fitted_; }
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

  /// R^2 on the given dataset.
  double Score(const std::vector<std::vector<double>>& features,
               const std::vector<double>& targets) const;

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// Least-squares polynomial fit of the requested degree (used for the Fig. 7
/// and Fig. 8 trend lines).
struct PolynomialFit {
  std::vector<double> coefficients;  ///< c0 + c1*x + c2*x^2 + ...
  double Predict(double x) const;
};

Result<PolynomialFit> FitPolynomial(const std::vector<double>& xs,
                                    const std::vector<double>& ys, int degree);

/// Solves the linear system A x = b with Gaussian elimination and partial
/// pivoting. A is row-major n x n.
Status SolveLinearSystem(std::vector<std::vector<double>> a,
                         std::vector<double> b, std::vector<double>* out);

}  // namespace qo

#endif  // QO_COMMON_STATS_H_

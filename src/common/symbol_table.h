// Process-wide string interning.
//
// The compile hot path (catalog lookups, cardinality derivation, memo
// fingerprints, physical-property keys) used to hash and compare
// `std::string` table/column names on every probe. A `Symbol` is a dense
// uint32 id assigned by the global `SymbolTable`; equal strings always map
// to the same id within a process, so every string compare/hash on the hot
// path becomes a single integer compare/mix.
//
// Ids are assigned in first-intern order and are therefore *not* stable
// across processes or thread interleavings — nothing may order results by
// id value or persist ids. All outputs keep rendering through the original
// strings (or `Resolve`), which preserves byte-identity of every figure.
#ifndef QO_COMMON_SYMBOL_TABLE_H_
#define QO_COMMON_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace qo {

using Symbol = uint32_t;

/// Sentinel for "not yet interned". Structures that carry a Symbol alongside
/// their string default to this; `scope::InternPlanSymbols` fills them in.
inline constexpr Symbol kNoSymbol = 0xffffffffu;
/// Pre-interned constants (registered by the table's constructor, in order).
inline constexpr Symbol kSymEmpty = 0;  ///< ""
inline constexpr Symbol kSymStar = 1;   ///< "*"

/// Append-only, thread-safe intern table. Interning is off the per-probe
/// hot path (done once per compiled plan / registered catalog); lookups by
/// id take a shared lock only because the deque's block map may grow
/// concurrently.
class SymbolTable {
 public:
  SymbolTable();

  /// The process-wide table used by all interning helpers.
  static SymbolTable& Global();

  /// Returns the id for `text`, assigning the next dense id on first use.
  Symbol Intern(std::string_view text);

  /// The id for `text` if it was ever interned, kNoSymbol otherwise. Never
  /// grows the table — the probe for "was this string ever assigned an id"
  /// (e.g. a reward join keyed by an event id the caller typed wrong).
  Symbol Find(std::string_view text) const;

  /// The string for an id previously returned by Intern. Returned reference
  /// stays valid for the table's lifetime (strings are never removed).
  const std::string& Resolve(Symbol id) const;

  /// Number of distinct strings interned so far.
  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  // deque: growing never moves existing strings, so Resolve can hand out
  // stable references.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, Symbol> index_;  // views into strings_
};

/// Interns into the global table.
inline Symbol Sym(std::string_view text) {
  return SymbolTable::Global().Intern(text);
}

/// Resolves from the global table.
inline const std::string& SymName(Symbol id) {
  return SymbolTable::Global().Resolve(id);
}

/// Lazy-intern fallback: uses `sym` when already assigned, otherwise interns
/// `text`. Lets hot paths accept structures that skipped the intern pass.
/// Empty text short-circuits to the pre-interned kSymEmpty — optimizer
/// structures leave unused key/path fields empty, so this skips the table
/// probe (and its lock) on the most common fallback by far.
inline Symbol SymOf(Symbol sym, std::string_view text) {
  if (sym != kNoSymbol) return sym;
  if (text.empty()) return kSymEmpty;
  return Sym(text);
}

}  // namespace qo

#endif  // QO_COMMON_SYMBOL_TABLE_H_

#include "common/symbol_table.h"

#include <mutex>

namespace qo {

SymbolTable::SymbolTable() {
  // Stable constants usable without a lookup (see kSymEmpty / kSymStar).
  Intern("");
  Intern("*");
}

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();  // leaked: process lifetime
  return *table;
}

Symbol SymbolTable::Intern(std::string_view text) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(text);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(text);  // raced insert by another thread
  if (it != index_.end()) return it->second;
  Symbol id = static_cast<Symbol>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

Symbol SymbolTable::Find(std::string_view text) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(text);
  return it != index_.end() ? it->second : kNoSymbol;
}

const std::string& SymbolTable::Resolve(Symbol id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return strings_[id];
}

size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return strings_.size();
}

}  // namespace qo

// Status / Result error handling, modeled after the RocksDB/Arrow style:
// fallible functions return a qo::Status or qo::Result<T> instead of
// throwing. Exceptions are not used on any library path.
#ifndef QO_COMMON_STATUS_H_
#define QO_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace qo {

/// Machine-readable error category carried by every non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kTimeout,
  kParseError,
  kCompileError,
  kUnsupported,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// The default-constructed Status is OK. Non-OK statuses are created via the
/// named factory functions, e.g. `Status::InvalidArgument("bad span")`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status CompileError(std::string msg) {
    return Status(StatusCode::kCompileError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCompileError() const { return code_ == StatusCode::kCompileError; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or a non-OK Status explaining why the value is
/// absent. Accessing the value of a failed Result aborts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this Result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qo

/// Propagates a non-OK Status from the current function.
#define QO_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::qo::Status _qo_status = (expr);       \
    if (!_qo_status.ok()) return _qo_status; \
  } while (0)

#define QO_CONCAT_IMPL(a, b) a##b
#define QO_CONCAT(a, b) QO_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error Status from the current function.
#define QO_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto QO_CONCAT(_qo_result_, __LINE__) = (expr);               \
  if (!QO_CONCAT(_qo_result_, __LINE__).ok())                   \
    return QO_CONCAT(_qo_result_, __LINE__).status();           \
  lhs = std::move(QO_CONCAT(_qo_result_, __LINE__)).value()

#endif  // QO_COMMON_STATUS_H_

// Fixed-width text table used by the bench harnesses to print the rows /
// series that the paper's tables and figures report.
#ifndef QO_COMMON_TABLE_PRINTER_H_
#define QO_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace qo {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; it may have fewer cells than there are headers.
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table with a header separator to `os`.
  void Print(std::ostream& os) const;

  /// Formats a double with the given precision (helper for cells).
  static std::string Num(double v, int precision = 3);
  /// Formats a fraction as a percentage string, e.g. -0.143 -> "-14.3%".
  static std::string Pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qo

#endif  // QO_COMMON_TABLE_PRINTER_H_

// Shared content-hash primitives: FNV-1a chaining plus a splitmix64
// avalanche. Used by the catalog stats fingerprint (src/scope/) and the
// compilation-cache keys (src/cache/) — one definition, so the two sides of
// a fingerprint can never drift apart.
#ifndef QO_COMMON_HASH_H_
#define QO_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace qo {

inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;

/// FNV-1a over a byte range, chained through `seed`.
inline uint64_t HashBytes(const void* data, size_t n,
                          uint64_t seed = kFnvOffsetBasis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashString(const std::string& s,
                           uint64_t seed = kFnvOffsetBasis) {
  return HashBytes(s.data(), s.size(), seed);
}

inline uint64_t HashU64(uint64_t v, uint64_t seed) {
  return HashBytes(&v, sizeof(v), seed);
}

inline uint64_t HashDouble(double v, uint64_t seed) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return HashU64(bits, seed);
}

/// Final avalanche (splitmix64 tail): spreads FNV's weak low bits before a
/// hash is used for shard selection or order-independent (+) combination.
inline uint64_t MixHash(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace qo

#endif  // QO_COMMON_HASH_H_

#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace qo {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / std::abs(mean_);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0) return xs.front();
  if (p >= 100) return xs.back();
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double FractionBelow(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0.0;
  size_t c = 0;
  for (double x : xs) {
    if (x < threshold) ++c;
  }
  return static_cast<double>(c) / static_cast<double>(xs.size());
}

double FractionAbove(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0.0;
  size_t c = 0;
  for (double x : xs) {
    if (x > threshold) ++c;
  }
  return static_cast<double>(c) / static_cast<double>(xs.size());
}

Result<LinearFit> FitLinear(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument("need at least 2 points");
  }
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0, sxx = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx == 0) return Status::InvalidArgument("degenerate x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0, ss_tot = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double pred = fit.Predict(xs[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  return fit;
}

Status SolveLinearSystem(std::vector<std::vector<double>> a,
                         std::vector<double> b, std::vector<double>* out) {
  const size_t n = a.size();
  if (n == 0 || b.size() != n) {
    return Status::InvalidArgument("bad system dimensions");
  }
  for (const auto& row : a) {
    if (row.size() != n) return Status::InvalidArgument("non-square matrix");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-14) {
      return Status::InvalidArgument("singular matrix");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = col + 1; r < n; ++r) {
      double f = a[r][col] / a[col][col];
      for (size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  out->assign(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double s = b[i];
    for (size_t c = i + 1; c < n; ++c) s -= a[i][c] * (*out)[c];
    (*out)[i] = s / a[i][i];
  }
  return Status::OK();
}

Status LinearRegression::Fit(const std::vector<std::vector<double>>& features,
                             const std::vector<double>& targets, double ridge) {
  if (features.size() != targets.size() || features.empty()) {
    return Status::InvalidArgument("feature/target size mismatch");
  }
  const size_t d = features[0].size();
  for (const auto& row : features) {
    if (row.size() != d) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  // Augment with an intercept column; solve (X^T X + ridge I) w = X^T y.
  const size_t k = d + 1;
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (size_t i = 0; i < features.size(); ++i) {
    std::vector<double> row(k);
    for (size_t j = 0; j < d; ++j) row[j] = features[i][j];
    row[d] = 1.0;
    for (size_t r = 0; r < k; ++r) {
      for (size_t c = 0; c < k; ++c) xtx[r][c] += row[r] * row[c];
      xty[r] += row[r] * targets[i];
    }
  }
  for (size_t r = 0; r < k; ++r) xtx[r][r] += ridge;
  std::vector<double> solution;
  QO_RETURN_IF_ERROR(SolveLinearSystem(std::move(xtx), std::move(xty),
                                       &solution));
  weights_.assign(solution.begin(), solution.begin() + static_cast<long>(d));
  intercept_ = solution[d];
  fitted_ = true;
  return Status::OK();
}

double LinearRegression::Predict(const std::vector<double>& features) const {
  double y = intercept_;
  for (size_t i = 0; i < weights_.size() && i < features.size(); ++i) {
    y += weights_[i] * features[i];
  }
  return y;
}

double LinearRegression::Score(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets) const {
  if (features.size() != targets.size() || features.empty()) return 0.0;
  double my = Mean(targets);
  double ss_res = 0, ss_tot = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    double pred = Predict(features[i]);
    ss_res += (targets[i] - pred) * (targets[i] - pred);
    ss_tot += (targets[i] - my) * (targets[i] - my);
  }
  return ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
}

double PolynomialFit::Predict(double x) const {
  double y = 0.0;
  double xp = 1.0;
  for (double c : coefficients) {
    y += c * xp;
    xp *= x;
  }
  return y;
}

Result<PolynomialFit> FitPolynomial(const std::vector<double>& xs,
                                    const std::vector<double>& ys,
                                    int degree) {
  if (degree < 0) return Status::InvalidArgument("negative degree");
  if (xs.size() != ys.size() ||
      xs.size() < static_cast<size_t>(degree) + 1) {
    return Status::InvalidArgument("not enough points for degree");
  }
  const size_t k = static_cast<size_t>(degree) + 1;
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> row(k);
    double xp = 1.0;
    for (size_t j = 0; j < k; ++j) {
      row[j] = xp;
      xp *= xs[i];
    }
    for (size_t r = 0; r < k; ++r) {
      for (size_t c = 0; c < k; ++c) xtx[r][c] += row[r] * row[c];
      xty[r] += row[r] * ys[i];
    }
  }
  for (size_t r = 0; r < k; ++r) xtx[r][r] += 1e-12;
  std::vector<double> solution;
  QO_RETURN_IF_ERROR(SolveLinearSystem(std::move(xtx), std::move(xty),
                                       &solution));
  PolynomialFit fit;
  fit.coefficients = std::move(solution);
  return fit;
}

}  // namespace qo

#include "common/status.h"

namespace qo {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCompileError:
      return "CompileError";
    case StatusCode::kUnsupported:
      return "Unsupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace qo

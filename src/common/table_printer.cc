#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace qo {

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace qo

// Fixed-width 256-bit vector used for optimizer rule signatures and rule
// configurations (the SCOPE optimizer in the paper has exactly 256 rules).
#ifndef QO_COMMON_BITVECTOR_H_
#define QO_COMMON_BITVECTOR_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__has_include)
#if __has_include(<version>)
#include <version>
#endif
#endif

#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
#include <bit>
#endif

// The library targets C++20 but this header degrades gracefully to C++17
// consumers (the bit intrinsics above fall back to builtins / SWAR). Below
// C++17 there is no <version>, structured bindings, or std::clamp anywhere
// in the tree, so fail loudly instead of drowning the consumer in errors.
// MSVC reports __cplusplus as 199711L unless /Zc:__cplusplus is set;
// _MSVC_LANG always carries the real language level there.
#if defined(_MSVC_LANG)
#define QO_CPLUSPLUS_LEVEL _MSVC_LANG
#else
#define QO_CPLUSPLUS_LEVEL __cplusplus
#endif
static_assert(QO_CPLUSPLUS_LEVEL >= 201703L,
              "qo requires at least C++17 (C++20 recommended); "
              "compile with -std=c++20 or -std=c++17");
#undef QO_CPLUSPLUS_LEVEL

namespace qo {

namespace internal {

/// Portable 64-bit popcount: <bit> when the library provides it (C++20),
/// compiler builtins otherwise, with a SWAR fallback for anything else.
inline int Popcount64(uint64_t w) {
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
  return std::popcount(w);
#elif defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(w);
#else
  w = w - ((w >> 1) & 0x5555555555555555ULL);
  w = (w & 0x3333333333333333ULL) + ((w >> 2) & 0x3333333333333333ULL);
  w = (w + (w >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
  return static_cast<int>((w * 0x0101010101010101ULL) >> 56);
#endif
}

/// Portable count of trailing zero bits; `w` must be non-zero.
inline int CountrZero64(uint64_t w) {
  assert(w != 0);
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
  return std::countr_zero(w);
#elif defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(w);
#else
  int n = 0;
  while ((w & 1) == 0) {
    w >>= 1;
    ++n;
  }
  return n;
#endif
}

}  // namespace internal

/// A compact set of up to 256 bit positions with value semantics.
///
/// Used as both a *rule signature* (bits = rules that contributed to the
/// final plan) and a *rule configuration* (bits = rules enabled for a
/// compilation). Equality, hashing and set algebra are all O(1) over the
/// four underlying 64-bit words.
class BitVector256 {
 public:
  static constexpr int kBits = 256;

  constexpr BitVector256() : words_{0, 0, 0, 0} {}

  /// Builds a vector with the given positions set. Positions must be in
  /// [0, 256).
  static BitVector256 FromPositions(const std::vector<int>& positions) {
    BitVector256 v;
    for (int p : positions) v.Set(p);
    return v;
  }

  /// Builds a vector with all bits in [0, n) set.
  static BitVector256 FirstN(int n) {
    BitVector256 v;
    for (int i = 0; i < n; ++i) v.Set(i);
    return v;
  }

  void Set(int pos) {
    assert(pos >= 0 && pos < kBits);
    words_[pos >> 6] |= (uint64_t{1} << (pos & 63));
  }
  void Clear(int pos) {
    assert(pos >= 0 && pos < kBits);
    words_[pos >> 6] &= ~(uint64_t{1} << (pos & 63));
  }
  void Flip(int pos) {
    assert(pos >= 0 && pos < kBits);
    words_[pos >> 6] ^= (uint64_t{1} << (pos & 63));
  }
  bool Test(int pos) const {
    assert(pos >= 0 && pos < kBits);
    return (words_[pos >> 6] >> (pos & 63)) & 1;
  }

  /// Number of set bits.
  int Count() const {
    int c = 0;
    for (uint64_t w : words_) c += internal::Popcount64(w);
    return c;
  }

  bool None() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
  }
  bool Any() const { return !None(); }

  /// All set positions, ascending.
  std::vector<int> Positions() const {
    std::vector<int> out;
    out.reserve(Count());
    for (int w = 0; w < 4; ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = internal::CountrZero64(word);
        out.push_back(w * 64 + bit);
        word &= word - 1;
      }
    }
    return out;
  }

  BitVector256 operator|(const BitVector256& o) const {
    BitVector256 r;
    for (int i = 0; i < 4; ++i) r.words_[i] = words_[i] | o.words_[i];
    return r;
  }
  BitVector256 operator&(const BitVector256& o) const {
    BitVector256 r;
    for (int i = 0; i < 4; ++i) r.words_[i] = words_[i] & o.words_[i];
    return r;
  }
  BitVector256 operator^(const BitVector256& o) const {
    BitVector256 r;
    for (int i = 0; i < 4; ++i) r.words_[i] = words_[i] ^ o.words_[i];
    return r;
  }
  /// Set difference: bits in *this that are not in `o`.
  BitVector256 AndNot(const BitVector256& o) const {
    BitVector256 r;
    for (int i = 0; i < 4; ++i) r.words_[i] = words_[i] & ~o.words_[i];
    return r;
  }
  BitVector256& operator|=(const BitVector256& o) {
    for (int i = 0; i < 4; ++i) words_[i] |= o.words_[i];
    return *this;
  }
  BitVector256& operator&=(const BitVector256& o) {
    for (int i = 0; i < 4; ++i) words_[i] &= o.words_[i];
    return *this;
  }

  bool operator==(const BitVector256& o) const { return words_ == o.words_; }
  bool operator!=(const BitVector256& o) const { return words_ != o.words_; }

  /// True if every bit of `o` is also set in *this.
  bool Contains(const BitVector256& o) const {
    for (int i = 0; i < 4; ++i) {
      if ((words_[i] & o.words_[i]) != o.words_[i]) return false;
    }
    return true;
  }

  /// '0'/'1' string, bit 0 first (matching the paper's "1100000000" example).
  std::string ToString(int width = kBits) const {
    std::string s;
    s.reserve(width);
    for (int i = 0; i < width; ++i) s.push_back(Test(i) ? '1' : '0');
    return s;
  }

  /// 64-bit mixing hash suitable for unordered containers.
  uint64_t Hash() const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t w : words_) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
    }
    return h;
  }

 private:
  std::array<uint64_t, 4> words_;
};

struct BitVector256Hasher {
  size_t operator()(const BitVector256& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace qo

#endif  // QO_COMMON_BITVECTOR_H_

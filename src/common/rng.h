// Deterministic random number generation. All stochastic components of the
// simulator (cluster noise, workload drift, bandit exploration) draw from
// explicitly seeded Rng instances so every experiment is reproducible.
#ifndef QO_COMMON_RNG_H_
#define QO_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace qo {

/// xoshiro256++ generator seeded via splitmix64. Small, fast and good enough
/// for simulation workloads; not cryptographic.
/// Thread-safety: NOT thread-safe — every draw mutates the 256-bit state.
/// Code running under the parallel runtime constructs a local Rng from an
/// explicit per-task seed instead of sharing one (shared sequential draws
/// would also make results depend on execution order).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 to spread a single word across the 256-bit state.
    uint64_t z = seed;
    for (int i = 0; i < 4; ++i) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = t ^ (t >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box-Muller.
  double Normal() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Lognormal with parameters of the underlying normal.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Pareto with scale x_m and shape alpha (heavy-tailed straggler model).
  double Pareto(double xm, double alpha) {
    double u = Uniform();
    if (u < 1e-300) u = 1e-300;
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Exponential with the given rate.
  double Exponential(double rate) {
    double u = Uniform();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  /// Zipf-like rank sampling over [0, n) with skew s (s=0 is uniform).
  uint64_t Zipf(uint64_t n, double s) {
    // Rejection-free approximate inverse-CDF sampling; adequate for workload
    // template popularity.
    double u = Uniform();
    double x = std::pow(u, 1.0 / (1.0 - s <= 0.05 ? 0.05 : 1.0 - s));
    uint64_t k = static_cast<uint64_t>(x * static_cast<double>(n));
    return k >= n ? n - 1 : k;
  }

  /// Picks one index from [0, weights.size()) proportional to weights.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Derives an independent child generator; used to give each job / day /
  /// vertex its own stream without correlation.
  Rng Fork(uint64_t salt) {
    return Rng(Next() ^ (salt * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace qo

#endif  // QO_COMMON_RNG_H_

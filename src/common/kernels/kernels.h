// The vectorized kernel layer of the data plane.
//
// Every hot inner loop that was transposed to structure-of-arrays (batched
// A/A execution, multi-arm bandit scoring, arena-built feature combination,
// SoA stats capping) runs through one of the kernels below. Each kernel has
// two implementations with *bit-identical* per-lane semantics:
//
//  - kernels_scalar.cc: plain C++, compiled at the tree's base ISA. This is
//    the reference implementation; its FP operations are written in exactly
//    the per-lane order the legacy (pre-SoA) code used.
//  - kernels_avx2.cc: AVX2 intrinsics, compiled in its own TU with -mavx2.
//    Only per-lane vector ops are used (mulpd/addpd/maxpd/minpd and masked
//    compares) — no FMA contractions and no horizontal reductions, because
//    both change IEEE rounding versus the scalar order. A vector lane
//    therefore computes the same bit pattern the scalar kernel computes for
//    that lane.
//
// Dispatch is chosen once at startup: QO_SIMD=0 forces the scalar table,
// otherwise the AVX2 table is used when the CPU supports it (runtime
// __builtin_cpu_supports check, so one binary serves old and new machines).
// All 17 figure benches are byte-identical across the two tables at any
// thread count — CI diffs fig10/fig11 with QO_SIMD on/off to prove it.
//
// Adding a kernel: add a function pointer here, implement it in BOTH
// kernels_scalar.cc and kernels_avx2.cc with identical per-lane FP order,
// and cover it in tests/kernels_test.cc (scalar vs AVX2 bit-equivalence on
// edge lanes and tails).
#ifndef QO_COMMON_KERNELS_KERNELS_H_
#define QO_COMMON_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace qo::kernels {

/// Lane width of every column-major SoA block. Four doubles = one 256-bit
/// AVX2 register; the scalar table processes the same blocks lane by lane.
inline constexpr size_t kLanes = 4;

/// One dispatchable kernel set. All pointers are always non-null.
struct KernelTable {
  /// Human-readable table name ("scalar" / "avx2") for diagnostics.
  const char* name;

  /// Lockstep 4-lane dot-product accumulate over per-lane rows:
  ///   acc[j] += sum_i v[j][i] * w[j][i]   (j = 0..3)
  /// `v` and `w` each point at four row pointers; every row has `columns`
  /// entries. Row-major operands mean callers never pack an interleaved
  /// block — an arm's contiguous value column is passed as-is and the
  /// weight gather writes lane-contiguous rows. The AVX2 implementation
  /// transposes 4x4 blocks in registers on load and accumulates one column
  /// at a time with vertical ops only, so each lane's additions stay
  /// strictly sequential in i — the exact accumulation order of a scalar
  /// per-arm dot product — and lane j's result is bit-identical to scoring
  /// arm j alone.
  void (*dot4)(const double* const* v, const double* const* w, size_t columns,
               double* acc);

  /// 4-lane critical-path walk over a prepared stage DAG. Stages are
  /// visited in `topo` order; upstream edges come from the CSR arrays
  /// (up_offsets has num_stages + 1 entries indexing into up_list). For
  /// each lane j:
  ///   finish[s][j] = max over upstream u of finish[u][j]
  ///                  + (startup + (waves[s] * noise[s][j]) * tail[s])
  ///   critical[j]  = max over s (in stage-index order) of finish[s][j]
  /// `noise` and `finish` are stage-major kLanes-wide blocks. The FP
  /// association (waves*noise first, then *tail, then +startup, then
  /// +ready) replicates the legacy per-seed walk exactly.
  void (*critical_path4)(size_t num_stages, const int32_t* topo,
                         const int32_t* up_offsets, const int32_t* up_list,
                         const double* waves, const double* tail,
                         double startup, const double* noise, double* finish,
                         double* critical);

  /// In-place x[i] = max(lo, min(x[i], hi)). Mirrors the stats layer's
  /// NDV cap (CapNdv). Inputs must be NaN-free (NDVs and row counts are).
  void (*clamp_range)(double* x, size_t n, double lo, double hi);

  /// Writes the indices of every nonzero word in [begin, end) to `out` in
  /// ascending order and returns how many were written. `out` must hold at
  /// least end - begin entries. One bulk call per drain replaces a
  /// per-word probe through the dispatch pointer — the sparse-emit scan of
  /// the combine arena. The AVX2 table tests four 64-bit words (256 dense
  /// slots) per compare.
  size_t (*collect_nonzero_words)(const uint64_t* words, size_t begin,
                                  size_t end, uint32_t* out);
};

/// The scalar reference table. Always available.
const KernelTable& ScalarTable();

/// The AVX2 table. Only valid to call when Avx2Compiled() — the returned
/// reference is the scalar table on builds without AVX2 support.
const KernelTable& Avx2Table();

/// True when the AVX2 TU was compiled into this binary.
bool Avx2Compiled();

/// The active table, chosen once at startup: scalar when QO_SIMD=0 or when
/// the CPU lacks AVX2, the AVX2 table otherwise. Stable for the process
/// lifetime (modulo the test hook below).
const KernelTable& Active();

/// True when Active() is a SIMD table.
bool SimdActive();

/// Test hook: override the active table (nullptr restores the startup
/// choice). Tests use this to run both dispatch states in one binary; never
/// call it from production code.
void SetActiveTableForTest(const KernelTable* table);

}  // namespace qo::kernels

#endif  // QO_COMMON_KERNELS_KERNELS_H_

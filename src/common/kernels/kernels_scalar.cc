// Scalar reference implementations of the data-plane kernels.
//
// These loops define the bit pattern every other table must reproduce: the
// per-lane FP operation order here matches the legacy (pre-SoA) code paths
// exactly, and kernels_avx2.cc mirrors it lane for lane.

#include "common/kernels/kernels.h"

namespace qo::kernels {
namespace {

void Dot4Scalar(const double* const* v, const double* const* w,
                size_t columns, double* acc) {
  const double* v0 = v[0];
  const double* v1 = v[1];
  const double* v2 = v[2];
  const double* v3 = v[3];
  const double* w0 = w[0];
  const double* w1 = w[1];
  const double* w2 = w[2];
  const double* w3 = w[3];
  double a0 = acc[0], a1 = acc[1], a2 = acc[2], a3 = acc[3];
  for (size_t i = 0; i < columns; ++i) {
    a0 += v0[i] * w0[i];
    a1 += v1[i] * w1[i];
    a2 += v2[i] * w2[i];
    a3 += v3[i] * w3[i];
  }
  acc[0] = a0;
  acc[1] = a1;
  acc[2] = a2;
  acc[3] = a3;
}

void CriticalPath4Scalar(size_t num_stages, const int32_t* topo,
                         const int32_t* up_offsets, const int32_t* up_list,
                         const double* waves, const double* tail,
                         double startup, const double* noise, double* finish,
                         double* critical) {
  for (size_t t = 0; t < num_stages; ++t) {
    const size_t idx = static_cast<size_t>(topo[t]);
    const double* nz = noise + idx * kLanes;
    double* fz = finish + idx * kLanes;
    double r0 = 0.0, r1 = 0.0, r2 = 0.0, r3 = 0.0;
    for (int32_t e = up_offsets[idx]; e < up_offsets[idx + 1]; ++e) {
      const double* fu = finish + static_cast<size_t>(up_list[e]) * kLanes;
      r0 = r0 > fu[0] ? r0 : fu[0];
      r1 = r1 > fu[1] ? r1 : fu[1];
      r2 = r2 > fu[2] ? r2 : fu[2];
      r3 = r3 > fu[3] ? r3 : fu[3];
    }
    const double wv = waves[idx];
    const double tl = tail[idx];
    fz[0] = r0 + (startup + (wv * nz[0]) * tl);
    fz[1] = r1 + (startup + (wv * nz[1]) * tl);
    fz[2] = r2 + (startup + (wv * nz[2]) * tl);
    fz[3] = r3 + (startup + (wv * nz[3]) * tl);
  }
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  for (size_t s = 0; s < num_stages; ++s) {
    const double* fz = finish + s * kLanes;
    c0 = c0 > fz[0] ? c0 : fz[0];
    c1 = c1 > fz[1] ? c1 : fz[1];
    c2 = c2 > fz[2] ? c2 : fz[2];
    c3 = c3 > fz[3] ? c3 : fz[3];
  }
  critical[0] = c0;
  critical[1] = c1;
  critical[2] = c2;
  critical[3] = c3;
}

void ClampRangeScalar(double* x, size_t n, double lo, double hi) {
  for (size_t i = 0; i < n; ++i) {
    const double capped = x[i] < hi ? x[i] : hi;
    x[i] = capped > lo ? capped : lo;
  }
}

size_t CollectNonzeroWordsScalar(const uint64_t* words, size_t begin,
                                 size_t end, uint32_t* out) {
  size_t n = 0;
  for (size_t w = begin; w < end; ++w) {
    if (words[w] != 0) out[n++] = static_cast<uint32_t>(w);
  }
  return n;
}

}  // namespace

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      "scalar", &Dot4Scalar, &CriticalPath4Scalar, &ClampRangeScalar,
      &CollectNonzeroWordsScalar,
  };
  return table;
}

}  // namespace qo::kernels

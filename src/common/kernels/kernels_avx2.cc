// AVX2 implementations of the data-plane kernels.
//
// This TU is the only one compiled with -mavx2 (see src/CMakeLists.txt);
// nothing here may be inlined into callers built at the base ISA, which is
// why every entry point is reached through the KernelTable function
// pointers. Bit-identity contract with kernels_scalar.cc: only per-lane
// vector ops (mulpd/addpd/maxpd/minpd) in the exact scalar operation
// order — no FMA, no horizontal sums, no reassociation.

#include "common/kernels/kernels.h"

#if defined(QO_HAVE_AVX2)

#include <immintrin.h>

namespace qo::kernels {
namespace {

/// Transposes four row registers (lane-major) into four column registers:
/// out k holds element k of every lane.
inline void Transpose4x4(__m256d r0, __m256d r1, __m256d r2, __m256d r3,
                         __m256d* c0, __m256d* c1, __m256d* c2, __m256d* c3) {
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);  // a0 b0 a2 b2
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);  // a1 b1 a3 b3
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);  // c0 d0 c2 d2
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);  // c1 d1 c3 d3
  *c0 = _mm256_permute2f128_pd(t0, t2, 0x20);     // a0 b0 c0 d0
  *c1 = _mm256_permute2f128_pd(t1, t3, 0x20);     // a1 b1 c1 d1
  *c2 = _mm256_permute2f128_pd(t0, t2, 0x31);     // a2 b2 c2 d2
  *c3 = _mm256_permute2f128_pd(t1, t3, 0x31);     // a3 b3 c3 d3
}

void Dot4Avx2(const double* const* v, const double* const* w, size_t columns,
              double* acc) {
  __m256d a = _mm256_loadu_pd(acc);
  size_t i = 0;
  // Four columns per step. Multiply first — per-lane vertical muls on
  // contiguous loads produce the exact scalar products with zero shuffles
  // (an IEEE product does not depend on accumulation order) — then a single
  // 4x4 transpose turns the product rows into column vectors, accumulated
  // one at a time in ascending index order so each lane keeps the scalar
  // sequential-accumulation order. Transposing products instead of both
  // operands halves the shuffle-port traffic, the bottleneck of this loop.
  for (; i + 4 <= columns; i += 4) {
    const __m256d p0 =
        _mm256_mul_pd(_mm256_loadu_pd(v[0] + i), _mm256_loadu_pd(w[0] + i));
    const __m256d p1 =
        _mm256_mul_pd(_mm256_loadu_pd(v[1] + i), _mm256_loadu_pd(w[1] + i));
    const __m256d p2 =
        _mm256_mul_pd(_mm256_loadu_pd(v[2] + i), _mm256_loadu_pd(w[2] + i));
    const __m256d p3 =
        _mm256_mul_pd(_mm256_loadu_pd(v[3] + i), _mm256_loadu_pd(w[3] + i));
    __m256d q0, q1, q2, q3;
    Transpose4x4(p0, p1, p2, p3, &q0, &q1, &q2, &q3);
    a = _mm256_add_pd(a, q0);
    a = _mm256_add_pd(a, q1);
    a = _mm256_add_pd(a, q2);
    a = _mm256_add_pd(a, q3);
  }
  for (; i < columns; ++i) {
    const __m256d vv =
        _mm256_set_pd(v[3][i], v[2][i], v[1][i], v[0][i]);
    const __m256d wv =
        _mm256_set_pd(w[3][i], w[2][i], w[1][i], w[0][i]);
    a = _mm256_add_pd(a, _mm256_mul_pd(vv, wv));
  }
  _mm256_storeu_pd(acc, a);
}

void CriticalPath4Avx2(size_t num_stages, const int32_t* topo,
                       const int32_t* up_offsets, const int32_t* up_list,
                       const double* waves, const double* tail, double startup,
                       const double* noise, double* finish, double* critical) {
  const __m256d startup_v = _mm256_set1_pd(startup);
  for (size_t t = 0; t < num_stages; ++t) {
    const size_t idx = static_cast<size_t>(topo[t]);
    __m256d ready = _mm256_setzero_pd();
    for (int32_t e = up_offsets[idx]; e < up_offsets[idx + 1]; ++e) {
      const __m256d fu =
          _mm256_loadu_pd(finish + static_cast<size_t>(up_list[e]) * kLanes);
      ready = _mm256_max_pd(ready, fu);
    }
    const __m256d nz = _mm256_loadu_pd(noise + idx * kLanes);
    const __m256d dur = _mm256_add_pd(
        startup_v, _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(waves[idx]), nz),
                                 _mm256_set1_pd(tail[idx])));
    _mm256_storeu_pd(finish + idx * kLanes, _mm256_add_pd(ready, dur));
  }
  __m256d crit = _mm256_setzero_pd();
  for (size_t s = 0; s < num_stages; ++s) {
    crit = _mm256_max_pd(crit, _mm256_loadu_pd(finish + s * kLanes));
  }
  _mm256_storeu_pd(critical, crit);
}

void ClampRangeAvx2(double* x, size_t n, double lo, double hi) {
  const __m256d lo_v = _mm256_set1_pd(lo);
  const __m256d hi_v = _mm256_set1_pd(hi);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d capped = _mm256_min_pd(_mm256_loadu_pd(x + i), hi_v);
    _mm256_storeu_pd(x + i, _mm256_max_pd(capped, lo_v));
  }
  for (; i < n; ++i) {
    const double capped = x[i] < hi ? x[i] : hi;
    x[i] = capped > lo ? capped : lo;
  }
}

size_t CollectNonzeroWordsAvx2(const uint64_t* words, size_t begin,
                               size_t end, uint32_t* out) {
  size_t n = 0;
  size_t w = begin;
  const __m256i zero = _mm256_setzero_si256();
  // Four 64-bit words per testz — one compare covers 256 dense slots; only
  // blocks with a hot word pay the per-word mask walk.
  for (; w + 4 <= end; w += 4) {
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (_mm256_testz_si256(block, block)) continue;
    const int zero_mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(block, zero)));
    for (int j = 0; j < 4; ++j) {
      if ((zero_mask & (1 << j)) == 0) {
        out[n++] = static_cast<uint32_t>(w) + static_cast<uint32_t>(j);
      }
    }
  }
  for (; w < end; ++w) {
    if (words[w] != 0) out[n++] = static_cast<uint32_t>(w);
  }
  return n;
}

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      "avx2", &Dot4Avx2, &CriticalPath4Avx2, &ClampRangeAvx2,
      &CollectNonzeroWordsAvx2,
  };
  return table;
}

bool Avx2Compiled() { return true; }

}  // namespace qo::kernels

#else  // !defined(QO_HAVE_AVX2)

namespace qo::kernels {

const KernelTable& Avx2Table() { return ScalarTable(); }

bool Avx2Compiled() { return false; }

}  // namespace qo::kernels

#endif  // defined(QO_HAVE_AVX2)

// Startup dispatch for the data-plane kernel tables.

#include "common/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qo::kernels {
namespace {

bool CpuHasAvx2() {
#if defined(QO_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelTable* ChooseStartupTable() {
  // QO_SIMD=0 forces the scalar fallback; any other value (or unset) lets
  // the CPU decide. Read once — dispatch is stable for the process.
  const char* env = std::getenv("QO_SIMD");
  if (env != nullptr && std::strcmp(env, "0") == 0) return &ScalarTable();
  if (Avx2Compiled() && CpuHasAvx2()) return &Avx2Table();
  return &ScalarTable();
}

const KernelTable* StartupTable() {
  static const KernelTable* chosen = ChooseStartupTable();
  return chosen;
}

std::atomic<const KernelTable*> g_test_override{nullptr};

}  // namespace

const KernelTable& Active() {
  const KernelTable* over = g_test_override.load(std::memory_order_acquire);
  return over != nullptr ? *over : *StartupTable();
}

bool SimdActive() { return &Active() != &ScalarTable(); }

void SetActiveTableForTest(const KernelTable* table) {
  g_test_override.store(table, std::memory_order_release);
}

}  // namespace qo::kernels

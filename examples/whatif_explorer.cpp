// What-if explorer: for one job, compute its span and evaluate *every*
// single rule flip — the offline exploration QO-Advisor runs at scale. This
// is the tool a SCOPE engineer would use to debug a hint ("which rule moved
// the needle, and why?" — paper Sec. 6, "Simplicity first").
//
//   ./build/examples/whatif_explorer [template_seed]
#include <cstdio>
#include <cstdlib>

#include "core/feature_gen.h"
#include "core/recommend.h"
#include "core/span.h"
#include "engine/engine.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace qo;  // NOLINT
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;

  // Pick the first non-trivial recurring job of the day.
  workload::WorkloadDriver driver(
      {.num_templates = 40, .jobs_per_day = 60, .seed = seed});
  engine::ScopeEngine engine;

  for (const auto& job : driver.DayJobs(0)) {
    auto span = advisor::ComputeJobSpan(engine, job);
    if (!span.ok() || span->span.Count() < 4) continue;

    std::printf("job: %s (template %s)\n", job.job_id.c_str(),
                job.template_name.c_str());
    std::printf("script:\n%s\n", job.script.c_str());
    std::printf("default est cost: %.3f, span size: %d (%d iterations)\n\n",
                span->default_compilation->est_cost, span->span.Count(),
                span->iterations);

    // Evaluate every flip in the span.
    bandit::PersonalizerService personalizer({.seed = 1});
    advisor::Recommender recommender(&engine, &personalizer, {});
    advisor::JobFeatures features;
    features.row.job_id = job.job_id;
    features.row.normalized_job_name = job.template_name;
    features.row.instance = job;
    features.span = span->span;
    features.default_compilation = span->default_compilation;

    std::printf("%-34s %-14s %12s %10s\n", "rule", "category", "est cost",
                "delta");
    for (int bit : span->span.Positions()) {
      auto rec = recommender.EvaluateFlip(features, bit);
      const auto& info = opt::RuleRegistry::Get().info(bit);
      if (rec.outcome == advisor::RecompileOutcome::kRecompileFailure) {
        std::printf("%-34s %-14s %12s %10s\n", info.name.c_str(),
                    opt::RuleCategoryToString(info.category), "-",
                    "FAILS");
        continue;
      }
      double delta = rec.est_cost_new / rec.est_cost_default - 1.0;
      std::printf("%-34s %-14s %12.3f %+9.1f%%\n", info.name.c_str(),
                  opt::RuleCategoryToString(info.category), rec.est_cost_new,
                  100.0 * delta);
    }

    // Show the best flip's plans side by side.
    auto best = recommender.EvaluateFlip(features, -1);
    double best_delta = 0.0;
    for (int bit : span->span.Positions()) {
      auto rec = recommender.EvaluateFlip(features, bit);
      if (rec.outcome != advisor::RecompileOutcome::kLowerCost) continue;
      double delta = rec.est_cost_new / rec.est_cost_default - 1.0;
      if (delta < best_delta) {
        best_delta = delta;
        best = rec;
      }
    }
    if (best.rule_id >= 0) {
      std::printf("\nbest flip: %s (%+.1f%% est cost)\n",
                  opt::RuleRegistry::Get().name(best.rule_id).c_str(),
                  100.0 * best_delta);
      auto compiled = engine.Compile(job, best.ToConfig());
      std::printf("\n--- default plan ---\n%s\n--- steered plan ---\n%s",
                  span->default_compilation->plan.ToString().c_str(),
                  compiled.ok() ? compiled->plan.ToString().c_str() : "?");
    } else {
      std::printf("\nno estimated-cost-improving flip for this job\n");
    }
    return 0;
  }
  std::printf("no job with a span of >=4 rules today; try another seed\n");
  return 0;
}

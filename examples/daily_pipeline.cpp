// End-to-end QO-Advisor deployment through the advisor service: open a
// tenant on the AdvisorService, run the full daily pipeline (feature
// generation -> contextual-bandit recommendation -> recompilation ->
// flighting -> validation -> hint generation -> SIS) over two weeks of a
// recurring workload, then show the published hint snapshot steering
// production jobs.
//
//   ./build/examples/daily_pipeline [days]
//
// Every environment knob is snapshotted exactly once into AdvisorOptions at
// startup and threaded explicitly — the service constructs each subsystem
// from the captured values, never from a later env read.
//
// Observability: every per-subsystem counter (cache, memo, exec profiles,
// bandit, flighting, SIS, service) plus the phase timers surface through
// the metrics registry, so the closing summary is one registry-wide report
// dump. Each day also appends a JSONL run-report line to QO_OBS_REPORT
// (default: daily_pipeline_report.jsonl), and QO_TRACE=<path> additionally
// writes a Chrome-trace span dump loadable in Perfetto.
//
// Guardrails: QO_GUARD=1 arms the watchdog/breaker/retry layer, and the
// QO_FAULT_* knobs inject deterministic chaos. Try
//   QO_GUARD=1 QO_FAULT_SEED=7 QO_FAULT_HINT_REGRESSION=0.5
//   QO_FAULT_HINT_REGRESSION_FACTOR=6 ./build/examples/daily_pipeline
// (one command line) to watch deployed hints regress in production, get
// auto-reverted within the hysteresis window, and stay quarantined.
#include <cstdio>
#include <cstdlib>

#include "experiments/experiments.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "service/advisor_service.h"

int main(int argc, char** argv) {
  using namespace qo;  // NOLINT
  int days = argc > 1 ? std::atoi(argv[1]) : 14;

  // One env snapshot for the whole process; everything below is threaded
  // from these captured values.
  service::AdvisorOptions options = service::AdvisorOptions::FromEnv();

  experiments::ExperimentEnv env(
      {.num_templates = 60, .jobs_per_day = 100, .seed = 7});

  service::AdvisorService advisor(options);
  service::TenantConfig tenant;
  // Share the harness engine so uploaded hints steer the same compile cache
  // the production runs hit.
  tenant.engine = &env.engine();
  // Offline-pipeline learner cadence: retrain every N rewards inside the
  // day loop (the service-owned cadence is for always-on serving tenants).
  tenant.service_owns_retrain = false;
  tenant.personalizer.epsilon = 0.15;
  tenant.pipeline.flighting.total_budget_machine_hours = 1.0e6;
  tenant.pipeline.validation.min_training_samples = 30;
  tenant.pipeline.recommender.uniform_probes_per_job = 3;
  auto session = advisor.OpenTenant("daily", tenant);
  if (!session.ok()) {
    std::printf("open tenant failed: %s\n",
                session.status().ToString().c_str());
    return 1;
  }

  // Per-day JSONL sink: QO_OBS_REPORT when set, a local default otherwise.
  std::unique_ptr<obs::RunReportWriter> report_writer =
      obs::RunReportWriter::FromEnv();
  if (report_writer == nullptr && obs::MetricsEnabled()) {
    report_writer =
        std::make_unique<obs::RunReportWriter>("daily_pipeline_report.jsonl");
  }
  const std::string report_label =
      !options.obs.label.empty() ? options.obs.label : "daily_pipeline";

  std::printf("%4s %6s %6s %9s %8s %8s %10s %6s %7s %5s\n", "day", "jobs",
              "spans", "forwarded", "flights", "validated", "hints(new)",
              "active", "revert", "quar");
  for (int day = 0; day < days; ++day) {
    // The view includes jobs already steered by previously uploaded hints —
    // the closed loop of Fig. 1.
    telemetry::WorkloadView view = env.BuildDayView(day, &session->sis());
    auto report = session->RunPipelineDay(view);
    if (!report.ok()) {
      std::printf("day %d failed: %s\n", day, report.status().ToString().c_str());
      continue;
    }
    std::printf("%4d %6zu %6zu %9zu %8zu %8zu %10zu %6zu %7zu %5zu\n", day,
                report->feature_gen.input_jobs, report->feature_gen.emitted,
                report->recommender.forwarded, report->flights_success,
                report->validated, report->hints_uploaded,
                session->sis().active_hints(), report->hints_reverted,
                report->quarantine_blocked);
    if (report_writer != nullptr) {
      report_writer->Append(obs::RunReportJsonLine(
          report_label, day, obs::Registry::Get().Snapshot()));
    }
  }

  // The published RCU snapshot is what concurrent compile traffic would
  // see; its version tracks the SIS version the day loop left behind.
  auto snapshot = session->snapshot();
  std::printf("\nactive hints after %d days (SIS version %d, snapshot seq "
              "%llu):\n",
              days, snapshot->hints->version(),
              static_cast<unsigned long long>(snapshot->sequence));
  for (const auto& file : session->sis().history()) {
    for (const auto& entry : file.entries) {
      std::printf("  %-16s -> %s rule %d (%s)\n",
                  entry.template_name.c_str(),
                  entry.enable ? "enable " : "disable",
                  entry.rule_id,
                  opt::RuleRegistry::Get().name(entry.rule_id).c_str());
    }
  }

  // Show the steering effect on the next day's matching jobs: compile
  // through the advisor API (which resolves hints from the published
  // snapshot), execute through the tenant engine.
  std::printf("\nnext-day impact on hint-matched jobs:\n");
  int shown = 0;
  for (const auto& job : env.driver().DayJobs(days)) {
    if (shown >= 8) break;
    auto steered = session->Compile(job);
    if (!steered.ok() || !steered->hint_applied) continue;
    auto base = session->Compile(job, /*apply_hints=*/false);
    if (!base.ok()) continue;
    exec::JobMetrics base_m = env.engine().Execute(job, *base->compilation, 1);
    exec::JobMetrics steered_m =
        env.engine().Execute(job, *steered->compilation, 2);
    std::printf("  %-28s PNhours %+6.1f%%  latency %+6.1f%%\n",
                job.job_id.c_str(),
                100.0 * exec::RelativeDelta(steered_m.pn_hours,
                                            base_m.pn_hours),
                100.0 * exec::RelativeDelta(steered_m.latency_sec,
                                            base_m.latency_sec));
    ++shown;
  }
  if (shown == 0) {
    std::printf("  (no hint matched on day %d — try more days)\n", days);
  }

  // Guardrail activity: watchdog reverts, quarantines still in cool-down,
  // breaker trips and the chaos faults the pipeline absorbed. The guard
  // config came from the AdvisorOptions snapshot (QO_GUARD + QO_FAULT_*).
  advisor::QoAdvisorPipeline* pipeline = session->pipeline();
  if (pipeline != nullptr && pipeline->steering_guard().enabled()) {
    std::printf("\n%s",
                pipeline->steering_guard().telemetry().ToString().c_str());
    std::printf("  quarantines active on day %d: %zu\n", days,
                pipeline->steering_guard().watchdog().ActiveQuarantines(days));
    std::printf("  steered-run fallbacks (injected compile faults): %llu\n",
                static_cast<unsigned long long>(env.steered_fallbacks()));
    std::printf("  production runs inflated by injected regressions: %llu\n",
                static_cast<unsigned long long>(env.regressions_injected()));
  }

  // One registry-wide dump covers every subsystem the service wires
  // together: cache/memo/exec-profile absorption, the bandit's
  // combined-feature cache and retention health, flighting budget, SIS hint
  // lifecycle, the advisor service's request counters and the phase latency
  // quantiles. Gated on the metrics switch: QO_METRICS=0 keeps stdout free
  // of timer-dependent lines (what the CI chaos-determinism diff relies on).
  if (obs::MetricsEnabled()) {
    std::printf("\n%s",
                obs::RunReportText(obs::Registry::Get().Snapshot()).c_str());
  }
  if (report_writer != nullptr) {
    std::printf("\nper-day run report appended to %s\n",
                report_writer->path().c_str());
  }
  return 0;
}

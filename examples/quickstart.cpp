// Quickstart: compile a SCOPE-like script, inspect the plan / rule
// signature / estimated cost, execute it on the simulated cluster, and steer
// the optimizer with a single rule flip.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "engine/engine.h"
#include "scope/compiler.h"

int main() {
  using namespace qo;  // NOLINT

  // 1. Describe the inputs. The catalog carries both ground-truth statistics
  //    (used by the execution simulator) and the optimizer-visible estimates
  //    (which may be stale — here the fact table is underestimated 2x).
  scope::Catalog catalog;
  scope::TableStats facts;
  facts.true_rows = 2.0e8;
  facts.est_rows = 1.0e8;  // stale estimate
  facts.avg_row_bytes = 96;
  facts.columns["user_id"] = {5.0e5, 4.0e5};
  facts.columns["event"] = {40, 40};
  facts.columns["amount"] = {1.0e6, 1.0e6};
  catalog.RegisterTable("store://logs/events", facts);

  scope::TableStats users;
  users.true_rows = 3.0e6;
  users.est_rows = 3.2e6;
  users.avg_row_bytes = 64;
  users.columns["id"] = {3.0e6, 3.2e6};
  users.columns["country"] = {200, 190};
  catalog.RegisterTable("store://dims/users", users);

  // 2. A job: two extracts, a filter (with its ground-truth selectivity
  //    annotated after '@'), an FK join, and a grouped aggregation.
  workload::JobInstance job;
  job.job_id = "quickstart_job";
  job.template_name = "Quickstart";
  job.catalog = catalog;
  job.run_seed = 42;
  job.script = R"(
    events = EXTRACT user_id:long, event:string, amount:double
             FROM "store://logs/events";
    users = EXTRACT id:long, country:string FROM "store://dims/users";
    purchases = SELECT user_id, event, amount FROM events
                WHERE event == "purchase" @ 0.03;
    enriched = SELECT user_id, country, amount FROM purchases
               JOIN users ON user_id == id @ 1.0;
    by_country = SELECT country, SUM(amount) AS revenue, COUNT(*) AS n
                 FROM enriched GROUP BY country;
    OUTPUT by_country TO "store://out/revenue";
  )";

  engine::ScopeEngine engine;

  // 3. Compile + run under the default rule configuration.
  auto base = engine.Run(job, opt::RuleConfig::Default(), /*run_salt=*/0);
  if (!base.ok()) {
    std::cerr << "compile failed: " << base.status() << "\n";
    return 1;
  }
  std::printf("--- default plan (est cost %.3f) ---\n%s\n",
              base->compilation->est_cost,
              base->compilation->plan.ToString().c_str());
  std::printf("rule signature bits: ");
  for (int bit : base->compilation->signature.Positions()) {
    std::printf("%d ", bit);
  }
  std::printf("\nmetrics: %s\n\n", base->metrics.ToString().c_str());

  // 4. Steer: flip a single rule (enable the estimate-sensitive aggressive
  //    broadcast join) and compare — exactly what a QO-Advisor hint does.
  auto flip =
      opt::RuleConfig::DefaultWithFlip(opt::rules::kBroadcastJoinAggressive);
  auto steered = engine.Run(job, flip, /*run_salt=*/0);
  if (!steered.ok()) {
    std::cerr << "steered compile failed: " << steered.status() << "\n";
    return 1;
  }
  std::printf("--- steered plan (est cost %.3f) ---\n%s\n",
              steered->compilation->est_cost,
              steered->compilation->plan.ToString().c_str());
  std::printf("metrics: %s\n\n", steered->metrics.ToString().c_str());
  std::printf("PNhours delta: %+.1f%%   latency delta: %+.1f%%   "
              "vertices delta: %+.1f%%\n",
              100.0 * exec::RelativeDelta(steered->metrics.pn_hours,
                                          base->metrics.pn_hours),
              100.0 * exec::RelativeDelta(steered->metrics.latency_sec,
                                          base->metrics.latency_sec),
              100.0 * exec::RelativeDelta(
                          static_cast<double>(steered->metrics.vertices),
                          static_cast<double>(base->metrics.vertices)));
  return 0;
}
